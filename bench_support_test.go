package teccl

import (
	"math/rand"
	"testing"

	"teccl/internal/lp"
)

// benchSimplexOnce solves one 20x30 random transportation LP and returns
// the solution so callers can report solver-effort metrics.
func benchSimplexOnce(b *testing.B) *lp.Solution {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	const m, n = 20, 30
	p := lp.NewProblem(lp.Minimize)
	vars := make([][]lp.VarID, m)
	supply := make([]float64, m)
	demand := make([]float64, n)
	for j := 0; j < n; j++ {
		demand[j] = float64(1 + rng.Intn(9))
	}
	total := 0.0
	for _, v := range demand {
		total += v
	}
	for i := 0; i < m; i++ {
		supply[i] = total / m
	}
	for i := 0; i < m; i++ {
		vars[i] = make([]lp.VarID, n)
		for j := 0; j < n; j++ {
			vars[i][j] = p.AddVar("", 0, lp.Inf, float64(1+rng.Intn(20)))
		}
	}
	for i := 0; i < m; i++ {
		terms := make([]lp.Term, n)
		for j := 0; j < n; j++ {
			terms[j] = lp.Term{Var: vars[i][j], Coeff: 1}
		}
		p.AddRow(terms, lp.LE, supply[i])
	}
	for j := 0; j < n; j++ {
		terms := make([]lp.Term, m)
		for i := 0; i < m; i++ {
			terms[i] = lp.Term{Var: vars[i][j], Coeff: 1}
		}
		p.AddRow(terms, lp.EQ, demand[j])
	}
	sol, err := lp.Solve(p, lp.Options{})
	if err != nil || sol.Status != lp.StatusOptimal {
		b.Fatalf("simplex bench solve failed: %v %v", err, sol.Status)
	}
	return sol
}
