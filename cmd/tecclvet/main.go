// Command tecclvet is the repo's custom multichecker: it runs the
// internal/analysis suite — the load-bearing invariants of this
// codebase, machine-checked — over Go package patterns.
//
// Usage:
//
//	tecclvet [packages]            # analyze (default ./...)
//	tecclvet -list                 # describe the analyzers
//	tecclvet -write-wire-lock      # regenerate wire/schema.lock.json
//
// Diagnostics print as file:line:col: message (analyzer), one per line;
// the exit status is 1 when any diagnostic fires, 2 on operational
// failure. `make vet` runs it over ./..., and `go generate ./wire`
// invokes -write-wire-lock after an intentional additive schema change.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"teccl/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	writeLock := flag.Bool("write-wire-lock", false,
		"regenerate the wire schema lock ("+analysis.WireLockFile+") from the teccl/wire sources and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tecclvet [-list] [-write-wire-lock] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *writeLock {
		if err := writeWireLock(); err != nil {
			fmt.Fprintln(os.Stderr, "tecclvet:", err)
			os.Exit(2)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run(".", patterns, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tecclvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// writeWireLock extracts the wire schema from the teccl/wire sources
// and rewrites the lock file next to them. Run via `go generate ./wire`
// after an intentional additive schema change.
func writeWireLock() error {
	loaded, err := analysis.Load(".", []string{"teccl/wire"})
	if err != nil {
		return err
	}
	if len(loaded) != 1 {
		return fmt.Errorf("expected one package for teccl/wire, got %d", len(loaded))
	}
	lp := loaded[0]
	lock := analysis.BuildLock(&analysis.Pass{
		Fset:    lp.Fset,
		Files:   lp.Files,
		PkgPath: lp.Path,
		Dir:     lp.Dir,
	})
	raw, err := json.MarshalIndent(lock, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(lp.Dir, analysis.WireLockFile)
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("tecclvet: wrote %s (%d structs)\n", path, len(lock.Structs))
	return nil
}
