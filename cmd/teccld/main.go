// Command teccld is the TE-CCL planner daemon: a long-lived planning
// service owning a pool of Planner sessions keyed by topology
// fingerprint and serving the v1 HTTP/JSON management plane (plan,
// replan, sessions, stats, healthz, metrics).
//
// Usage:
//
//	teccld -listen :7447 -max-concurrency 8 -max-time-limit 5m
//
// Clients are teccl.Dial (Go), the teccl CLI subcommands (teccl plan,
// teccl sessions, ...), or anything speaking the v1 wire schema; see
// the README in this directory. SIGTERM/SIGINT drain gracefully:
// in-flight solves finish (up to -drain-timeout), new solves get 503,
// and /healthz goes unhealthy so load balancers rotate the instance
// out.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"teccl"
)

func main() {
	var (
		listen        = flag.String("listen", ":7447", "HTTP listen address")
		maxSessions   = flag.Int("max-sessions", 64, "planner sessions kept live (LRU eviction past this)")
		maxConcurrent = flag.Int("max-concurrency", 4, "solves running at once")
		queueDepth    = flag.Int("queue-depth", 16, "solves waiting beyond -max-concurrency before 429")
		workers       = flag.Int("workers", 0, "default branch-and-bound workers per solve (0 = solver default)")
		defaultTL     = flag.Duration("default-time-limit", 2*time.Minute, "time limit for requests that carry none (0 = unlimited)")
		maxTL         = flag.Duration("max-time-limit", 0, "hard cap on any request's time limit (0 = no cap)")
		drainTimeout  = flag.Duration("drain-timeout", 60*time.Second, "how long SIGTERM waits for in-flight solves")
	)
	flag.Parse()

	srv := teccl.NewServer(teccl.ServerOptions{
		MaxSessions:      *maxSessions,
		MaxConcurrent:    *maxConcurrent,
		QueueDepth:       *queueDepth,
		Workers:          *workers,
		DefaultTimeLimit: *defaultTL,
		MaxTimeLimit:     *maxTL,
	})
	hs := &http.Server{Addr: *listen, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("teccld: serving v1 API on %s (max %d sessions, %d concurrent solves, queue %d)",
		*listen, *maxSessions, *maxConcurrent, *queueDepth)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "teccld:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	log.Printf("teccld: draining (timeout %v)", *drainTimeout)
	srv.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("teccld: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("teccld: shutdown: %v", err)
	}
	srv.Close()
	log.Printf("teccld: stopped")
}
