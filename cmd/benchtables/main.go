// Command benchtables regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints the rows the paper plots;
// EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Usage:
//
//	benchtables            # run everything (slow)
//	benchtables -short     # trimmed sweeps
//	benchtables fig4and5   # one experiment
//	benchtables -json      # machine-readable BENCH_*.json-style output
//	benchtables -workers 4 # evaluate B&B nodes and sweep points concurrently
//	benchtables -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"teccl/internal/experiments"
)

// benchRecord is one experiment in -json mode: the benchmark identity,
// its wall clock, the solver-effort counters, and the regenerated rows.
type benchRecord struct {
	Name    string `json:"name"`
	Title   string `json:"title"`
	NsPerOp int64  `json:"ns_per_op"`
	// AllocsPerOp is the heap allocation count of the regeneration (one
	// experiment = one op), measured as the runtime's Mallocs delta.
	AllocsPerOp      uint64  `json:"allocs_per_op"`
	Iterations       float64 `json:"iterations"`
	Refactorizations float64 `json:"refactorizations"`
	FTUpdates        float64 `json:"ft_updates"`
	UpdateNnz        float64 `json:"update_nnz"`
	// Replan fields are populated by the churn experiment only: the
	// incremental-reoptimization pivots, their wall clock, and how many
	// replans degraded to cold solves.
	ReplanPivots    float64 `json:"replan_pivots,omitempty"`
	ReplanWallMs    float64 `json:"replan_wall_ms,omitempty"`
	ReplanFallbacks float64 `json:"replan_fallbacks,omitempty"`
	// Serving fields are populated by the loadgen experiment only: the
	// daemon saturation benchmark's throughput and client-side latency
	// percentiles over the wire API.
	PlansPerSec float64    `json:"plans_per_sec,omitempty"`
	P50Ms       float64    `json:"p50_ms,omitempty"`
	P99Ms       float64    `json:"p99_ms,omitempty"`
	P99BudgetMs float64    `json:"p99_budget_ms,omitempty"`
	Header      []string   `json:"header,omitempty"`
	Rows        [][]string `json:"rows,omitempty"`
	Notes       string     `json:"notes,omitempty"`
	// Metrics carries every experiment-specific counter not hoisted into
	// a dedicated field above (e.g. churnstream's per-platform
	// incremental/fallback/re-base counts and max replan regret).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// hoisted are the Table.Metrics keys benchRecord promotes to dedicated
// JSON fields; everything else flows through the generic metrics map.
var hoisted = map[string]bool{
	"iterations": true, "refactorizations": true, "ft_updates": true,
	"update_nnz": true, "replan_pivots": true, "replan_wall_ms": true,
	"replan_fallbacks": true, "plans_per_sec": true, "p50_ms": true,
	"p99_ms": true, "p99_budget_ms": true,
}

func extraMetrics(m map[string]float64) map[string]float64 {
	var out map[string]float64
	for k, v := range m {
		if hoisted[k] {
			continue
		}
		if out == nil {
			out = map[string]float64{}
		}
		out[k] = v
	}
	return out
}

func main() {
	short := flag.Bool("short", false, "trim sweeps for a quick run")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of formatted tables")
	workers := flag.Int("workers", 0, "solver worker-pool size (branch-and-bound nodes and batched sweep points evaluated concurrently; 0 = serial)")
	flag.Parse()

	experiments.SetWorkers(*workers)

	// Regenerations run under a signal-aware context: Ctrl-C cancels the
	// in-flight solve (mid-simplex, mid-branch, or between A* rounds)
	// instead of killing the process with a table half-printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	experiments.SetContext(ctx)

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	var records []benchRecord
	overBudget := false
	var ms runtime.MemStats
	for _, id := range ids {
		runtime.ReadMemStats(&ms)
		mallocs0 := ms.Mallocs
		start := time.Now()
		tab := experiments.ByID(id, *short)
		if tab == nil {
			fmt.Fprintf(os.Stderr, "benchtables: unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		allocs := ms.Mallocs - mallocs0

		// The serving-latency budget is a CI gate: a p99 regression in the
		// wire path fails the whole regeneration, not just a row.
		if budget := tab.Metrics["p99_budget_ms"]; budget > 0 && tab.Metrics["p99_ms"] > budget {
			fmt.Fprintf(os.Stderr, "benchtables: %s p99 %.2fms exceeds the %.0fms budget\n",
				tab.ID, tab.Metrics["p99_ms"], budget)
			overBudget = true
		}

		if *jsonOut {
			records = append(records, benchRecord{
				Name:             tab.ID,
				Title:            tab.Title,
				NsPerOp:          elapsed.Nanoseconds(),
				AllocsPerOp:      allocs,
				Iterations:       tab.Metrics["iterations"],
				Refactorizations: tab.Metrics["refactorizations"],
				FTUpdates:        tab.Metrics["ft_updates"],
				UpdateNnz:        tab.Metrics["update_nnz"],
				ReplanPivots:     tab.Metrics["replan_pivots"],
				ReplanWallMs:     tab.Metrics["replan_wall_ms"],
				ReplanFallbacks:  tab.Metrics["replan_fallbacks"],
				PlansPerSec:      tab.Metrics["plans_per_sec"],
				P50Ms:            tab.Metrics["p50_ms"],
				P99Ms:            tab.Metrics["p99_ms"],
				P99BudgetMs:      tab.Metrics["p99_budget_ms"],
				Metrics:          extraMetrics(tab.Metrics),
				Header:           tab.Header,
				Rows:             tab.Rows,
				Notes:            tab.Notes,
			})
			continue
		}
		fmt.Println(tab.String())
		fmt.Printf("(%s regenerated in %v, %d allocs)\n\n", tab.ID, elapsed.Round(time.Millisecond), allocs)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
			os.Exit(1)
		}
	}
	if overBudget {
		os.Exit(1)
	}
}
