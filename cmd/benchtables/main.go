// Command benchtables regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints the rows the paper plots;
// EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Usage:
//
//	benchtables            # run everything (slow)
//	benchtables -short     # trimmed sweeps
//	benchtables fig4and5   # one experiment
//	benchtables -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"teccl/internal/experiments"
)

func main() {
	short := flag.Bool("short", false, "trim sweeps for a quick run")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		tab := experiments.ByID(id, *short)
		if tab == nil {
			fmt.Fprintf(os.Stderr, "benchtables: unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		fmt.Println(tab.String())
		fmt.Printf("(%s regenerated in %v)\n\n", tab.ID, time.Since(start).Round(time.Millisecond))
	}
}
