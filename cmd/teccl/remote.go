package main

// remote.go is the CLI face of a running teccld daemon: subcommands
// that plan through the shared service instead of solving in-process.
// Sessions are keyed daemon-side by topology fingerprint, so repeated
// CLI invocations over one fabric hit the same session's caches —
// the CLI deliberately does not close its session on exit.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"teccl"
)

// runSubcommand dispatches "teccl <cmd> ..." for the daemon-backed
// subcommands; main falls through to the legacy flag interface when
// the first argument is a flag.
func runSubcommand(cmd string, args []string) {
	switch cmd {
	case "plan":
		cmdPlan(args)
	case "sessions":
		cmdSessions(args)
	case "stats":
		cmdStats(args)
	case "health":
		cmdHealth(args)
	default:
		fatal(fmt.Errorf("unknown subcommand %q (want plan, sessions, stats, or health)", cmd))
	}
}

// daemonAddr returns the daemon base URL: -daemon flag, else
// TECCLD_ADDR, else localhost.
func daemonFlag(fs *flag.FlagSet) *string {
	def := os.Getenv("TECCLD_ADDR")
	if def == "" {
		def = "http://localhost:7447"
	}
	return fs.String("daemon", def, "teccld base URL (or $TECCLD_ADDR)")
}

func dial(addr string) *teccl.Client {
	c, err := teccl.Dial(addr, teccl.ClientOptions{})
	if err != nil {
		fatal(err)
	}
	return c
}

func cmdPlan(args []string) {
	fs := flag.NewFlagSet("teccl plan", flag.ExitOnError)
	var (
		daemon     = daemonFlag(fs)
		topoSpec   = fs.String("topo", "dgx1", "topology: dgx1, ndv2:N, ndv2mini:N, dgx2:N, dgx2mini:N, internal1:N, internal2:N, ring:N, mesh:N, star:N")
		topoJSON   = fs.String("topo-json", "", "load topology from a JSON file instead of -topo")
		coll       = fs.String("coll", "allgather", "collective: allgather, alltoall, broadcast, scatter, gather, reducescatter")
		chunks     = fs.Int("chunks", 1, "chunks per GPU (allgather) or per destination (alltoall)")
		chunkBytes = fs.Float64("chunk-bytes", 25e3, "chunk size in bytes")
		solver     = fs.String("solver", "auto", "solver: auto, milp, lp, astar, horizon")
		epochs     = fs.Int("epochs", 0, "epoch horizon K (0 = estimate)")
		gap        = fs.Float64("gap", 0, "MILP early-stop optimality gap (e.g. 0.3)")
		timeout    = fs.Duration("timeout", 2*time.Minute, "solver time limit")
		quiet      = fs.Bool("q", false, "metrics only, no per-epoch schedule dump")
	)
	fs.Parse(args)

	t, err := buildTopology(*topoSpec, *topoJSON)
	if err != nil {
		fatal(err)
	}
	if err := t.Validate(); err != nil {
		fatal(err)
	}
	d, err := buildDemand(t, *coll, *chunks, *chunkBytes)
	if err != nil {
		fatal(err)
	}
	force := map[string]teccl.Solver{
		"auto": teccl.SolverAuto, "milp": teccl.SolverMILP,
		"lp": teccl.SolverLP, "astar": teccl.SolverAStar,
		"horizon": teccl.SolverHorizon,
	}[*solver]
	if force == teccl.SolverAuto && *solver != "auto" {
		fatal(fmt.Errorf("unknown solver %q (the daemon serves auto, milp, lp, astar, horizon)", *solver))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	planner := dial(*daemon).Planner(t)
	opt := teccl.Options{Epochs: *epochs, GapLimit: *gap, TimeLimit: *timeout}
	plan, err := planner.Plan(ctx, teccl.Request{Demand: d, Options: &opt, Solver: force})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("session: %s  solver: %s  optimal: %v  gap: %.1f%%  epochs: %d  tau: %.3g s\n",
		planner.SessionID(), plan.Solver, plan.Optimal, 100*plan.Gap, plan.Epochs, plan.Tau)
	if plan.CacheHit {
		fmt.Println("served from the session's schedule-replay cache")
	}
	sim, err := teccl.Simulate(plan.Schedule)
	if err != nil {
		fatal(fmt.Errorf("schedule failed simulation: %w", err))
	}
	fmt.Printf("solve time: %v\n", plan.SolveTime.Round(time.Millisecond))
	fmt.Printf("transfer time: %.3f us\n", sim.FinishTime*1e6)
	fmt.Printf("algorithmic bandwidth: %.3f GB/s\n", sim.AlgoBandwidth/1e9)
	if !*quiet {
		printSchedule(t, plan.Schedule)
	}
}

func cmdSessions(args []string) {
	fs := flag.NewFlagSet("teccl sessions", flag.ExitOnError)
	daemon := daemonFlag(fs)
	fs.Parse(args)
	sessions, err := dial(*daemon).Sessions(context.Background())
	if err != nil {
		fatal(err)
	}
	if len(sessions) == 0 {
		fmt.Println("no live sessions")
		return
	}
	fmt.Printf("%-6s %-14s %-16s %6s %6s %9s  %s\n",
		"ID", "TOPOLOGY", "FINGERPRINT", "NODES", "LINKS", "REQUESTS", "LAST USED")
	for _, s := range sessions {
		fmt.Printf("%-6s %-14s %-16s %6d %6d %9d  %s\n",
			s.ID, s.Topology, s.Fingerprint, s.NumNodes, s.NumLinks, s.Requests,
			time.UnixMilli(s.LastUsedMs).Format(time.RFC3339))
	}
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("teccl stats", flag.ExitOnError)
	daemon := daemonFlag(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("usage: teccl stats [-daemon URL] <session-id>"))
	}
	st, err := dial(*daemon).SessionStats(context.Background(), fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("requests:          %d\n", st.Requests)
	fmt.Printf("schedule replays:  %d\n", st.ScheduleReplays)
	fmt.Printf("warm-start hits:   %d\n", st.WarmStartHits)
	fmt.Printf("crash starts:      %d\n", st.CrashStarts)
	fmt.Printf("exact basis hits:  %d\n", st.ExactBasisHits)
	fmt.Printf("tau cache hits:    %d\n", st.TauCacheHits)
	fmt.Printf("epoch cache hits:  %d\n", st.EpochCacheHits)
	fmt.Printf("replans:           %d (%d fallbacks, %d re-bases)\n",
		st.Replans, st.ReplanFallbacks, st.ReBases)
}

func cmdHealth(args []string) {
	fs := flag.NewFlagSet("teccl health", flag.ExitOnError)
	daemon := daemonFlag(fs)
	fs.Parse(args)
	if err := dial(*daemon).Health(context.Background()); err != nil {
		fatal(err)
	}
	fmt.Println("ok")
}
