// Command teccl solves one collective-communication instance from the
// command line and prints the schedule, its metrics, and (optionally) an
// MSCCL-style XML export.
//
// Usage:
//
//	teccl -topo dgx1 -coll allgather -chunk-bytes 25000
//	teccl -topo internal2:4 -coll alltoall -solver lp -out sched.xml
//	teccl -topo-json cluster.json -coll allgather -solver astar
//
// With a subcommand, teccl talks to a running teccld daemon instead of
// solving in-process (see remote.go and cmd/teccld):
//
//	teccl plan -daemon http://localhost:7447 -topo dgx1 -coll alltoall
//	teccl sessions
//	teccl stats s1
//	teccl health
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"teccl"
)

func main() {
	// A non-flag first argument selects a daemon-backed subcommand; the
	// historical flag interface (local in-process solve) is unchanged.
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		runSubcommand(os.Args[1], os.Args[2:])
		return
	}
	var (
		topoSpec   = flag.String("topo", "dgx1", "topology: dgx1, ndv2:N, ndv2mini:N, dgx2:N, dgx2mini:N, internal1:N, internal2:N, ring:N, mesh:N, star:N")
		topoJSON   = flag.String("topo-json", "", "load topology from a JSON file instead of -topo")
		coll       = flag.String("coll", "allgather", "collective: allgather, alltoall, broadcast, scatter, gather, reducescatter")
		chunks     = flag.Int("chunks", 1, "chunks per GPU (allgather) or per destination (alltoall)")
		chunkBytes = flag.Float64("chunk-bytes", 25e3, "chunk size in bytes")
		solver     = flag.String("solver", "auto", "solver: auto, milp, lp, astar, horizon, taccl, sccl, spf")
		epochs     = flag.Int("epochs", 0, "epoch horizon K (0 = estimate)")
		epochMode  = flag.String("epoch-mode", "fastest", "epoch duration from the fastest or slowest link")
		gap        = flag.Float64("gap", 0, "MILP early-stop optimality gap (e.g. 0.3)")
		timeout    = flag.Duration("timeout", 2*time.Minute, "solver time limit")
		out        = flag.String("out", "", "write MSCCL-style XML to this file")
		quiet      = flag.Bool("q", false, "metrics only, no per-epoch schedule dump")
	)
	flag.Parse()

	t, err := buildTopology(*topoSpec, *topoJSON)
	if err != nil {
		fatal(err)
	}
	if err := t.Validate(); err != nil {
		fatal(err)
	}
	d, err := buildDemand(t, *coll, *chunks, *chunkBytes)
	if err != nil {
		fatal(err)
	}

	mode := teccl.FastestLink
	if strings.HasPrefix(*epochMode, "slow") {
		mode = teccl.SlowestLink
	}
	opt := teccl.Options{
		Epochs: *epochs, EpochMode: mode,
		GapLimit: *gap, TimeLimit: *timeout,
	}

	var sched *teccl.Schedule
	var solveTime time.Duration
	switch *solver {
	case "auto", "milp", "lp", "astar", "horizon":
		// The optimizer runs as a Planner session under a signal-aware
		// context: Ctrl-C cancels the solve mid-iteration instead of
		// killing the process, and -timeout is the TimeLimit budget
		// enforced uniformly across all the solvers.
		force := map[string]teccl.Solver{
			"auto": teccl.SolverAuto, "milp": teccl.SolverMILP,
			"lp": teccl.SolverLP, "astar": teccl.SolverAStar,
			"horizon": teccl.SolverHorizon,
		}[*solver]
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		planner := teccl.NewPlanner(t, teccl.PlannerOptions{Defaults: opt})
		plan, err := planner.Plan(ctx, teccl.Request{Demand: d, Solver: force})
		if err != nil {
			fatal(err)
		}
		sched, solveTime = plan.Schedule, plan.SolveTime
		fmt.Printf("solver: %s  optimal: %v  gap: %.1f%%  epochs: %d  tau: %.3g s\n",
			plan.Solver, plan.Optimal, 100*plan.Gap, plan.Epochs, plan.Tau)
	case "taccl":
		r := teccl.BaselineTACCL(t, d, teccl.TACCLOptions{Seed: 1, Restarts: 100})
		if !r.Feasible {
			fatal(fmt.Errorf("taccl baseline found no feasible schedule"))
		}
		sched, solveTime = r.Schedule, r.SolveTime
	case "sccl":
		r := teccl.BaselineSCCL(t, d, teccl.SCCLOptions{TimeLimit: *timeout})
		if !r.Feasible {
			fatal(fmt.Errorf("sccl baseline found no feasible schedule"))
		}
		sched, solveTime = r.Schedule, r.SolveTime
		fmt.Printf("sccl: %d steps, barrier transfer %.2f us\n", r.Steps, r.TransferTime*1e6)
	case "spf":
		r := teccl.BaselineSPF(t, d, 0)
		if !r.Feasible {
			fatal(fmt.Errorf("spf baseline found no feasible schedule"))
		}
		sched, solveTime = r.Schedule, r.SolveTime
	default:
		fatal(fmt.Errorf("unknown solver %q", *solver))
	}

	sim, err := teccl.Simulate(sched)
	if err != nil {
		fatal(fmt.Errorf("schedule failed simulation: %w", err))
	}
	fmt.Printf("solve time: %v\n", solveTime.Round(time.Millisecond))
	fmt.Printf("transfer time: %.3f us\n", sim.FinishTime*1e6)
	fmt.Printf("algorithmic bandwidth: %.3f GB/s\n", sim.AlgoBandwidth/1e9)
	fmt.Printf("bytes on wire: %.0f (demand %.0f)\n", sim.TotalBytes, d.TotalBytes())

	if !*quiet {
		printSchedule(t, sched)
	}

	if *out != "" {
		xml, err := teccl.ExportMSCCL(sched, *coll)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, xml, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, len(xml))
	}
}

func printSchedule(t *teccl.Topology, sched *teccl.Schedule) {
	fmt.Println("\nschedule:")
	for epoch := 0; epoch <= sched.FinishEpoch(); epoch++ {
		for _, snd := range sched.Sends {
			if snd.Epoch != epoch {
				continue
			}
			l := t.Link(snd.Link)
			frac := ""
			if snd.Fraction != 1 {
				frac = fmt.Sprintf(" (%.0f%%)", 100*snd.Fraction)
			}
			fmt.Printf("  epoch %d: %s -> %s chunk(%d,%d)%s\n",
				epoch, t.Node(l.Src).Name, t.Node(l.Dst).Name, snd.Src, snd.Chunk, frac)
		}
	}
}

func buildTopology(spec, jsonPath string) (*teccl.Topology, error) {
	if jsonPath != "" {
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			return nil, err
		}
		var t teccl.Topology
		if err := json.Unmarshal(data, &t); err != nil {
			return nil, err
		}
		return &t, nil
	}
	name := spec
	n := 1
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name = spec[:i]
		v, err := strconv.Atoi(spec[i+1:])
		if err != nil {
			return nil, fmt.Errorf("bad topology spec %q: %v", spec, err)
		}
		n = v
	}
	switch name {
	case "dgx1":
		return teccl.DGX1(), nil
	case "ndv2":
		return teccl.NDv2(n), nil
	case "ndv2mini":
		return teccl.NDv2Mini(n), nil
	case "dgx2":
		return teccl.DGX2(n), nil
	case "dgx2mini":
		return teccl.DGX2Mini(n), nil
	case "internal1":
		return teccl.Internal1(n), nil
	case "internal2":
		return teccl.Internal2(n), nil
	case "ring":
		return teccl.Ring(n, 25e9, 0.7e-6), nil
	case "mesh":
		return teccl.FullMesh(n, 25e9, 0.7e-6), nil
	case "star":
		return teccl.Star(n, 12.5e9, 1.3e-6), nil
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}

func buildDemand(t *teccl.Topology, coll string, chunks int, chunkBytes float64) (*teccl.Demand, error) {
	gpus := t.GPUs()
	if len(gpus) == 0 {
		return nil, fmt.Errorf("topology has no GPUs")
	}
	root := gpus[0]
	switch coll {
	case "allgather":
		return teccl.AllGather(t, chunks, chunkBytes), nil
	case "alltoall":
		return teccl.AllToAll(t, chunks, chunkBytes), nil
	case "broadcast":
		return teccl.Broadcast(t, root, chunks, chunkBytes), nil
	case "scatter":
		return teccl.Scatter(t, root, chunks, chunkBytes), nil
	case "gather":
		return teccl.Gather(t, root, chunks, chunkBytes), nil
	case "reducescatter":
		return teccl.ReduceScatter(t, chunkBytes), nil
	}
	return nil, fmt.Errorf("unknown collective %q", coll)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teccl:", err)
	os.Exit(1)
}
