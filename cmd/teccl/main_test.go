package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"teccl"
)

func TestBuildTopologySpecs(t *testing.T) {
	cases := []struct {
		spec string
		gpus int
	}{
		{"dgx1", 8},
		{"ndv2:2", 16},
		{"ndv2mini:2", 8},
		{"dgx2:1", 16},
		{"dgx2mini:2", 8},
		{"internal1:2", 8},
		{"internal2:3", 6},
		{"ring:5", 5},
		{"mesh:4", 4},
		{"star:6", 6},
	}
	for _, c := range cases {
		tp, err := buildTopology(c.spec, "")
		if err != nil {
			t.Errorf("%s: %v", c.spec, err)
			continue
		}
		if got := len(tp.GPUs()); got != c.gpus {
			t.Errorf("%s: %d GPUs, want %d", c.spec, got, c.gpus)
		}
	}
}

func TestBuildTopologyErrors(t *testing.T) {
	for _, spec := range []string{"nope", "ring:x", "unknown:3"} {
		if _, err := buildTopology(spec, ""); err == nil {
			t.Errorf("%s: expected error", spec)
		}
	}
}

func TestBuildTopologyJSON(t *testing.T) {
	src := teccl.Ring(3, 1e9, 1e-6)
	data, err := json.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	tp, err := buildTopology("ignored", path)
	if err != nil {
		t.Fatalf("load json: %v", err)
	}
	if tp.NumLinks() != src.NumLinks() {
		t.Fatal("json topology shape changed")
	}
	if _, err := buildTopology("x", filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected missing-file error")
	}
}

func TestBuildDemand(t *testing.T) {
	tp := teccl.Ring(4, 1e9, 0)
	cases := []struct {
		coll  string
		count int
	}{
		{"allgather", 12},     // 4 src x 3 dst
		{"alltoall", 12},      // 4 src x 3 dst x 1 chunk
		{"broadcast", 3},      // root to 3
		{"scatter", 3},        // root to 3 distinct
		{"gather", 3},         // 3 to root
		{"reducescatter", 12}, // shard routing
	}
	for _, c := range cases {
		d, err := buildDemand(tp, c.coll, 1, 1e6)
		if err != nil {
			t.Errorf("%s: %v", c.coll, err)
			continue
		}
		if got := d.Count(); got != c.count {
			t.Errorf("%s: count %d, want %d", c.coll, got, c.count)
		}
	}
	if _, err := buildDemand(tp, "nope", 1, 1e6); err == nil {
		t.Fatal("expected unknown-collective error")
	}
}
