package teccl

import (
	"teccl/internal/baseline"
)

// TACCLOptions tunes the TACCL-like baseline heuristic.
type TACCLOptions = baseline.TACCLOptions

// TACCLResult is the outcome of the TACCL-like baseline.
type TACCLResult = baseline.TACCLResult

// SCCLOptions tunes the SCCL-like baseline synthesizer.
type SCCLOptions = baseline.SCCLOptions

// SCCLResult is the outcome of the SCCL-like baseline.
type SCCLResult = baseline.SCCLResult

// SPFResult is the outcome of the shortest-path-first baseline.
type SPFResult = baseline.SPFResult

// BaselineTACCL runs the TACCL-like two-phase heuristic (routing then
// list scheduling, randomized; §2.1's characterization of TACCL).
func BaselineTACCL(t *Topology, d *Demand, opt TACCLOptions) *TACCLResult {
	return baseline.SolveTACCL(t, d, opt)
}

// BaselineSCCL runs the SCCL-like synchronous-step synthesizer with
// least-steps search (§6.1's SCCL comparison).
func BaselineSCCL(t *Topology, d *Demand, opt SCCLOptions) *SCCLResult {
	return baseline.SolveSCCL(t, d, opt)
}

// BaselineSPF runs the shortest-path-first scheduler (reference [31]),
// which routes each demand unit independently and cannot copy.
func BaselineSPF(t *Topology, d *Demand, maxEpochs int) *SPFResult {
	return baseline.SolveSPF(t, d, maxEpochs)
}

// BaselineRingAllGather generates the classic ring ALLGATHER over the
// GPUs of t in ID order (they must form a cycle in the topology).
func BaselineRingAllGather(t *Topology, chunkBytes float64) (*Schedule, error) {
	return baseline.RingAllGather(t, gpuInts(t), chunkBytes)
}

// BaselineRingReduceScatter generates a ring REDUCESCATTER communication
// schedule over the GPUs of t in ID order.
func BaselineRingReduceScatter(t *Topology, chunkBytes float64) (*Schedule, error) {
	return baseline.RingReduceScatter(t, gpuInts(t), chunkBytes)
}
