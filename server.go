package teccl

// server.go re-exports the planner daemon, so embedding the planning
// service into another process is one import:
//
//	srv := teccl.NewServer(teccl.ServerOptions{MaxConcurrent: 8})
//	http.ListenAndServe(":7447", srv)
//
// The standalone daemon lives in cmd/teccld; the v1 wire schema it
// speaks is package wire; teccl.Dial is the matching client.

import "teccl/internal/daemon"

// Server is the teccld planning service: an http.Handler owning a pool
// of Planner sessions keyed by topology fingerprint and serving the v1
// management plane (plan, replan, sessions, stats, healthz, metrics).
// Solve endpoints are admission-controlled; see ServerOptions.
type Server = daemon.Server

// ServerOptions configures a Server: session-pool bound, solve
// concurrency cap and queue depth, default worker count, and the
// default/maximum per-request time limits.
type ServerOptions = daemon.Options

// NewServer creates a planning service ready to mount on an
// http.Server. Stop it with BeginDrain + Drain + Close.
func NewServer(opts ServerOptions) *Server { return daemon.New(opts) }
