// Package client implements the Go client of the teccld planning
// service over the v1 wire schema. The root teccl package re-exports
// everything here (teccl.Dial, teccl.Client, teccl.RemotePlanner), so
// most callers never import this package directly.
package client

// Dial returns a Client for the daemon-level endpoints; Client.Planner
// opens a RemotePlanner — the wire twin of *core.Planner, satisfying
// the same teccl.PlannerAPI interface — so local and remote planning
// are interchangeable behind one small seam:
//
//	var p teccl.PlannerAPI
//	if remote {
//		c, _ := teccl.Dial("http://planner:7447", teccl.ClientOptions{})
//		p = c.Planner(topology)
//	} else {
//		p = teccl.NewPlanner(topology, teccl.PlannerOptions{})
//	}
//	plan, err := p.Plan(ctx, teccl.Request{Demand: demand})
//
// Function-valued options cannot cross the wire: Options.LinkCapacity
// is rejected, Request.Progress/Options.Progress are dropped (progress
// is daemon-side observability — scrape /metrics instead), and the
// multi-tenant Options.Priority function is sampled exactly over the
// request's demanded triples and sent as explicit weights.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/topo"
	"teccl/internal/wireconv"
	"teccl/wire"
)

// ErrPlannerClosed is returned by Plan and Replan on a closed session,
// local or remote.
var ErrPlannerClosed = core.ErrPlannerClosed

// ClientOptions configures Dial.
type ClientOptions struct {
	// HTTPClient, when non-nil, replaces http.DefaultClient. Set one
	// with a Timeout for production use; solve calls can run as long as
	// the request's TimeLimit allows.
	HTTPClient *http.Client
}

// Client speaks the v1 wire API to one teccld daemon.
type Client struct {
	base string
	http *http.Client
}

// Dial creates a client for the daemon at baseURL (e.g.
// "http://localhost:7447"). No connection is made until the first call.
func Dial(baseURL string, opts ClientOptions) (*Client, error) {
	if !strings.HasPrefix(baseURL, "http://") && !strings.HasPrefix(baseURL, "https://") {
		return nil, fmt.Errorf("teccl: Dial: base URL %q is not http(s)", baseURL)
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: hc}, nil
}

// apiError is a non-2xx daemon response.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("teccl: server error (http %d): %s", e.status, e.msg)
}

// do runs one JSON round trip. in is encoded when non-nil; a 2xx body
// is decoded into out when non-nil.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		js, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("teccl: encoding %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(js)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("teccl: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("teccl: reading %s %s response: %w", method, path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var we wire.Error
		if json.Unmarshal(raw, &we) == nil && we.Error != "" {
			return &apiError{status: resp.StatusCode, msg: we.Error}
		}
		return &apiError{status: resp.StatusCode, msg: strings.TrimSpace(string(raw))}
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("teccl: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// Health checks the daemon's /healthz, returning an error when it is
// unreachable or draining.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Sessions lists the daemon's live planner sessions.
func (c *Client) Sessions(ctx context.Context) ([]wire.SessionInfo, error) {
	var resp wire.SessionsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Sessions, nil
}

// SessionStats fetches one session's cumulative counters.
func (c *Client) SessionStats(ctx context.Context, id string) (core.PlannerStats, error) {
	var resp wire.StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/stats", nil, &resp); err != nil {
		return core.PlannerStats{}, err
	}
	return wireconv.ToStats(resp.Stats), nil
}

// CloseSession closes and drops a daemon session by ID.
func (c *Client) CloseSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// Planner opens a remote planning session on a topology. Like
// NewPlanner, the topology is snapshotted. The daemon session is
// created lazily on the first Plan call; topologies with equal
// fingerprints share one daemon session (and its caches) across
// clients.
func (c *Client) Planner(t *topo.Topology) *RemotePlanner {
	return &RemotePlanner{client: c, topo: t.Clone()}
}

// RemotePlanner is a planning session backed by a teccld daemon. It
// mirrors *Planner: Plan, Replan, Stats, Topology, Close — see
// PlannerAPI. Methods are safe for concurrent use.
//
// Provenance semantics are the daemon session's: a fresh RemotePlanner
// can see CacheHit on its first request when another client already
// solved the same model in the shared session.
type RemotePlanner struct {
	client *Client

	mu        sync.Mutex
	sessionID string
	topo      *topo.Topology     // current (post-churn) topology snapshot
	demand    *collective.Demand // last demand, for schedule rebinding
	stats     core.PlannerStats
	closed    bool
}

// buildRequest converts one in-process request to wire form, holding
// back the session routing (filled per attempt).
func buildRequest(req core.Request) (wire.PlanRequest, error) {
	out := wire.PlanRequest{
		Demand: wireconv.FromDemand(req.Demand),
		Solver: wireconv.SolverName(req.Solver),
	}
	if req.Options != nil {
		if req.Options.LinkCapacity != nil {
			return out, errors.New("teccl: Options.LinkCapacity cannot cross the wire; model per-epoch capacity on the daemon side or use a local Planner")
		}
		wopts := wireconv.FromOptions(*req.Options)
		wopts.Priority = wireconv.SamplePriority(req.Options.Priority, req.Demand)
		out.Options = &wopts
	}
	return out, nil
}

// Plan solves one request on the daemon session, opening it on first
// use. If the daemon evicted the session between calls (404/410), Plan
// transparently reopens it once with the topology and retries.
func (r *RemotePlanner) Plan(ctx context.Context, req core.Request) (*core.Plan, error) {
	if req.Demand == nil {
		return nil, errors.New("teccl: Plan requires a Demand")
	}
	wreq, err := buildRequest(req)
	if err != nil {
		return nil, err
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrPlannerClosed
	}
	sessionID := r.sessionID
	topoSnap := r.topo
	r.mu.Unlock()

	var resp wire.PlanResponse
	if sessionID != "" {
		wreq.SessionID = sessionID
		err = r.client.do(ctx, http.MethodPost, "/v1/plan", wreq, &resp)
		var ae *apiError
		if errors.As(err, &ae) && (ae.status == http.StatusNotFound || ae.status == http.StatusGone) {
			sessionID = "" // evicted server-side: reopen below
		} else if err != nil {
			return nil, err
		}
	}
	if sessionID == "" {
		wreq.SessionID = ""
		wreq.Topology, err = wireconv.FromTopology(topoSnap)
		if err != nil {
			return nil, err
		}
		if err := r.client.do(ctx, http.MethodPost, "/v1/plan", wreq, &resp); err != nil {
			return nil, err
		}
	}
	if resp.API != wire.Version {
		return nil, fmt.Errorf("teccl: daemon speaks api %q, client %q", resp.API, wire.Version)
	}
	plan, err := wireconv.ToPlan(resp.Plan, topoSnap, req.Demand)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.sessionID = resp.SessionID
	r.demand = req.Demand
	r.mu.Unlock()
	return plan, nil
}

// Replan applies session-scoped churn on the daemon and reoptimizes.
// It requires a prior successful Plan (like a local session, which
// replans its last request). The daemon returns post-churn topology and
// demand snapshots; Replan adopts them, so Topology() and returned
// schedules track the churned fabric.
func (r *RemotePlanner) Replan(ctx context.Context, d core.Delta) (*core.Plan, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrPlannerClosed
	}
	sessionID := r.sessionID
	topoSnap, demandSnap := r.topo, r.demand
	r.mu.Unlock()
	if sessionID == "" {
		return nil, errors.New("teccl: Replan needs a prior successful Plan on this session")
	}

	var resp wire.ReplanResponse
	wreq := wire.ReplanRequest{SessionID: sessionID, Delta: wireconv.FromDelta(d)}
	if err := r.client.do(ctx, http.MethodPost, "/v1/replan", wreq, &resp); err != nil {
		var ae *apiError
		if errors.As(err, &ae) && ae.status == http.StatusGone {
			return nil, fmt.Errorf("%w (daemon session %s)", ErrPlannerClosed, sessionID)
		}
		return nil, err
	}
	if resp.API != wire.Version {
		return nil, fmt.Errorf("teccl: daemon speaks api %q, client %q", resp.API, wire.Version)
	}
	if resp.Topology != nil {
		nt, err := wireconv.ToTopology(resp.Topology)
		if err != nil {
			return nil, fmt.Errorf("teccl: bad replan topology snapshot: %w", err)
		}
		topoSnap = nt
	}
	if resp.Demand != nil {
		nd, err := wireconv.ToDemand(*resp.Demand)
		if err != nil {
			return nil, fmt.Errorf("teccl: bad replan demand snapshot: %w", err)
		}
		demandSnap = nd
	}
	plan, err := wireconv.ToPlan(resp.Plan, topoSnap, demandSnap)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.topo = topoSnap
	r.demand = demandSnap
	r.mu.Unlock()
	return plan, nil
}

// Stats snapshots the daemon session's counters. Planner.Stats has no
// error path, so a failed fetch (daemon down, session evicted) returns
// the last successfully fetched snapshot.
func (r *RemotePlanner) Stats() core.PlannerStats {
	r.mu.Lock()
	sessionID := r.sessionID
	last := r.stats
	r.mu.Unlock()
	if sessionID == "" {
		return last
	}
	st, err := r.client.SessionStats(context.Background(), sessionID)
	if err != nil {
		return last
	}
	r.mu.Lock()
	r.stats = st
	r.mu.Unlock()
	return st
}

// Topology returns the session's current topology snapshot (the churned
// one after Replan calls). Callers must not mutate it.
func (r *RemotePlanner) Topology() *topo.Topology {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.topo
}

// SessionID reports the daemon session backing this planner ("" before
// the first successful Plan).
func (r *RemotePlanner) SessionID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sessionID
}

// Close marks the planner closed and best-effort closes the daemon
// session. The daemon session may be shared by other clients planning
// the same topology; they will transparently reopen it on their next
// Plan. Close is idempotent.
func (r *RemotePlanner) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	sessionID := r.sessionID
	r.mu.Unlock()
	if sessionID == "" {
		return nil
	}
	err := r.client.CloseSession(context.Background(), sessionID)
	var ae *apiError
	if errors.As(err, &ae) && ae.status == http.StatusNotFound {
		return nil // already evicted
	}
	return err
}
