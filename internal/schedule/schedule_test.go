package schedule

import (
	"math"
	"strings"
	"testing"

	"teccl/internal/collective"
	"teccl/internal/topo"
)

// lineTopo returns a 3-GPU path a-b-c with 1 GB/s links and zero alpha.
func lineTopo() *topo.Topology {
	return topo.Line(3, 1e9, 0)
}

// chunkBytes sized so one chunk exactly fills one 1ms epoch on a 1 GB/s link.
const (
	tau   = 1e-3
	chunk = 1e6
)

func bcast02Demand() *collective.Demand {
	d := collective.New(3, 1, chunk)
	d.Set(0, 0, 1)
	d.Set(0, 0, 2)
	return d
}

func TestValidSimpleForward(t *testing.T) {
	tp := lineTopo()
	d := bcast02Demand()
	l01 := tp.FindLink(0, 1)
	l12 := tp.FindLink(1, 2)
	s := &Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 3, AllowCopy: true,
		Sends: []Send{
			{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 1},
			{Src: 0, Chunk: 0, Link: l12, Epoch: 1, Fraction: 1},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if fe := s.FinishEpoch(); fe != 1 {
		t.Fatalf("finish epoch = %d, want 1", fe)
	}
	if ft := s.FinishTime(); math.Abs(ft-2*tau) > 1e-12 {
		t.Fatalf("finish time = %g, want %g", ft, 2*tau)
	}
}

func TestCausalityViolation(t *testing.T) {
	tp := lineTopo()
	d := bcast02Demand()
	l01 := tp.FindLink(0, 1)
	l12 := tp.FindLink(1, 2)
	s := &Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 3, AllowCopy: true,
		Sends: []Send{
			{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 1},
			// Node 1 forwards in the same epoch it is still receiving.
			{Src: 0, Chunk: 0, Link: l12, Epoch: 0, Fraction: 1},
		},
	}
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "does not hold") {
		t.Fatalf("want causality error, got %v", err)
	}
}

func TestCapacityViolation(t *testing.T) {
	tp := lineTopo()
	d := collective.New(3, 2, chunk)
	d.Set(0, 0, 1)
	d.Set(0, 1, 1)
	l01 := tp.FindLink(0, 1)
	s := &Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 2, AllowCopy: true,
		Sends: []Send{
			// Two full chunks in one epoch on a one-chunk-per-epoch link.
			{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 1},
			{Src: 0, Chunk: 1, Link: l01, Epoch: 0, Fraction: 1},
		},
	}
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Fatalf("want capacity error, got %v", err)
	}
}

func TestDemandUnmet(t *testing.T) {
	tp := lineTopo()
	d := bcast02Demand()
	l01 := tp.FindLink(0, 1)
	s := &Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 3, AllowCopy: true,
		Sends: []Send{
			{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 1},
			// Never forwarded to node 2.
		},
	}
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "demand unmet") {
		t.Fatalf("want demand error, got %v", err)
	}
	if s.FinishEpoch() != -1 {
		t.Fatal("FinishEpoch should be -1 for unmet demand")
	}
	if !math.IsInf(s.FinishTime(), 1) {
		t.Fatal("FinishTime should be +Inf for unmet demand")
	}
}

func TestAlphaDelaysForwarding(t *testing.T) {
	// alpha = 2.5 epochs -> delta = 3: chunk sent at 0 arrives end of
	// epoch 3, forwardable at 4.
	tp := topo.Line(3, 1e9, 2.5e-3)
	d := bcast02Demand()
	l01 := tp.FindLink(0, 1)
	l12 := tp.FindLink(1, 2)
	early := &Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 10, AllowCopy: true,
		Sends: []Send{
			{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 1},
			{Src: 0, Chunk: 0, Link: l12, Epoch: 3, Fraction: 1}, // too early
		},
	}
	if err := early.Validate(); err == nil {
		t.Fatal("forwarding before alpha delay should fail")
	}
	ok := &Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 10, AllowCopy: true,
		Sends: []Send{
			{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 1},
			{Src: 0, Chunk: 0, Link: l12, Epoch: 4, Fraction: 1},
		},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Finish: send at 4 arrives end of epoch 4+3=7.
	if fe := ok.FinishEpoch(); fe != 7 {
		t.Fatalf("finish epoch = %d, want 7", fe)
	}
}

func TestCopyDiscipline(t *testing.T) {
	// Star: gpu0 -> switchless hub? Use 3-GPU mesh: node0 sends the same
	// chunk to both 1 and 2 in the same epoch — needs copy.
	tp := topo.FullMesh(3, 1e9, 0)
	d := bcast02Demand()
	l01 := tp.FindLink(0, 1)
	l02 := tp.FindLink(0, 2)
	sends := []Send{
		{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 1},
		{Src: 0, Chunk: 0, Link: l02, Epoch: 0, Fraction: 1},
	}
	withCopy := &Schedule{Topo: tp, Demand: d, Tau: tau, NumEpochs: 2, AllowCopy: true, Sends: sends}
	if err := withCopy.Validate(); err != nil {
		t.Fatalf("copy-enabled validate: %v", err)
	}
	noCopy := &Schedule{Topo: tp, Demand: d, Tau: tau, NumEpochs: 2, AllowCopy: false, Sends: sends}
	if err := noCopy.Validate(); err == nil {
		t.Fatal("duplicating a chunk without copy should fail")
	}
}

func TestSwitchCannotBuffer(t *testing.T) {
	tp := topo.Star(3, 1e9, 0)
	sw := tp.Switches()[0]
	g := tp.GPUs()
	d := collective.New(tp.NumNodes(), 1, chunk)
	d.Set(int(g[0]), 0, int(g[1]))
	lIn := tp.FindLink(g[0], sw)
	lOut := tp.FindLink(sw, g[1])
	// Arrival at switch end of epoch 0 -> forwardable only at epoch 1.
	late := &Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 5, AllowCopy: true,
		Sends: []Send{
			{Src: int(g[0]), Chunk: 0, Link: lIn, Epoch: 0, Fraction: 1},
			{Src: int(g[0]), Chunk: 0, Link: lOut, Epoch: 3, Fraction: 1}, // buffered 2 epochs
		},
	}
	if err := late.Validate(); err == nil {
		t.Fatal("switch buffering should fail validation")
	}
	ok := &Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 5, AllowCopy: true,
		Sends: []Send{
			{Src: int(g[0]), Chunk: 0, Link: lIn, Epoch: 0, Fraction: 1},
			{Src: int(g[0]), Chunk: 0, Link: lOut, Epoch: 1, Fraction: 1},
		},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFractionalFlows(t *testing.T) {
	// Two half-chunks along the line; no copy (LP semantics).
	tp := lineTopo()
	d := collective.New(3, 1, chunk)
	d.Set(0, 0, 2)
	l01 := tp.FindLink(0, 1)
	l12 := tp.FindLink(1, 2)
	s := &Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 4, AllowCopy: false,
		Sends: []Send{
			{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 0.5},
			{Src: 0, Chunk: 0, Link: l01, Epoch: 1, Fraction: 0.5},
			{Src: 0, Chunk: 0, Link: l12, Epoch: 1, Fraction: 0.5},
			{Src: 0, Chunk: 0, Link: l12, Epoch: 2, Fraction: 0.5},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Sending more total fraction than received must fail without copy.
	s.Sends = append(s.Sends, Send{Src: 0, Chunk: 0, Link: l12, Epoch: 3, Fraction: 0.5})
	if err := s.Validate(); err == nil {
		t.Fatal("overdraw without copy should fail")
	}
}

func TestKappaSlidingWindow(t *testing.T) {
	// Link needs 2 epochs per chunk: back-to-back full chunks violate the
	// window; alternating epochs are fine.
	tp := topo.Line(2, 1e9, 0)
	d := collective.New(2, 2, 2*chunk) // chunk takes 2 ms = 2 epochs
	d.Set(0, 0, 1)
	d.Set(0, 1, 1)
	l01 := tp.FindLink(0, 1)
	bad := &Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 6, AllowCopy: true,
		EpochsPerChunk: []int{2, 2},
		Sends: []Send{
			{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 1},
			{Src: 0, Chunk: 1, Link: l01, Epoch: 1, Fraction: 1},
		},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("window overflow should fail")
	}
	good := &Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 6, AllowCopy: true,
		EpochsPerChunk: []int{2, 2},
		Sends: []Send{
			{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 1},
			{Src: 0, Chunk: 1, Link: l01, Epoch: 2, Fraction: 1},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Arrival accounts for the kappa-1 extra transmission epochs.
	if ae := good.ArrivalEpoch(good.Sends[0]); ae != 1 {
		t.Fatalf("arrival epoch = %d, want 1", ae)
	}
}

func TestPruneRemovesWasteful(t *testing.T) {
	tp := topo.FullMesh(3, 1e9, 0)
	d := collective.New(3, 1, chunk)
	d.Set(0, 0, 1)
	l01 := tp.FindLink(0, 1)
	l02 := tp.FindLink(0, 2)
	l12 := tp.FindLink(1, 2)
	s := &Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 4, AllowCopy: true,
		Sends: []Send{
			{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 1}, // needed
			{Src: 0, Chunk: 0, Link: l02, Epoch: 0, Fraction: 1}, // wasteful
			{Src: 0, Chunk: 0, Link: l12, Epoch: 2, Fraction: 1}, // wasteful
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("pre-prune validate: %v", err)
	}
	p := s.Prune()
	if len(p.Sends) != 1 {
		t.Fatalf("pruned to %d sends, want 1", len(p.Sends))
	}
	if p.Sends[0].Link != l01 {
		t.Fatal("kept the wrong send")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("post-prune validate: %v", err)
	}
	// Original untouched.
	if len(s.Sends) != 3 {
		t.Fatal("prune mutated the receiver")
	}
}

func TestPruneKeepsRelayChains(t *testing.T) {
	tp := lineTopo()
	d := bcast02Demand()
	l01 := tp.FindLink(0, 1)
	l12 := tp.FindLink(1, 2)
	s := &Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 4, AllowCopy: true,
		Sends: []Send{
			{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 1},
			{Src: 0, Chunk: 0, Link: l12, Epoch: 1, Fraction: 1},
			{Src: 0, Chunk: 0, Link: l12, Epoch: 2, Fraction: 1}, // duplicate, wasteful
		},
	}
	p := s.Prune()
	if len(p.Sends) != 2 {
		t.Fatalf("pruned to %d sends, want 2", len(p.Sends))
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("post-prune validate: %v", err)
	}
}

func TestPruneFractionalPassthrough(t *testing.T) {
	tp := lineTopo()
	d := collective.New(3, 1, chunk)
	d.Set(0, 0, 1)
	l01 := tp.FindLink(0, 1)
	s := &Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 2, AllowCopy: false,
		Sends: []Send{
			{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 0.5},
			{Src: 0, Chunk: 0, Link: l01, Epoch: 1, Fraction: 0.5},
		},
	}
	if p := s.Prune(); len(p.Sends) != 2 {
		t.Fatal("fractional schedules must pass through prune unchanged")
	}
}

func TestBadSendFields(t *testing.T) {
	tp := lineTopo()
	d := bcast02Demand()
	l01 := tp.FindLink(0, 1)
	cases := []Send{
		{Src: 0, Chunk: 0, Link: l01, Epoch: -1, Fraction: 1},
		{Src: 0, Chunk: 0, Link: l01, Epoch: 9, Fraction: 1},
		{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 0},
		{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 1.5},
		{Src: 0, Chunk: 0, Link: 99, Epoch: 0, Fraction: 1},
		{Src: 9, Chunk: 0, Link: l01, Epoch: 0, Fraction: 1},
		{Src: 0, Chunk: 7, Link: l01, Epoch: 0, Fraction: 1},
	}
	for i, bad := range cases {
		s := &Schedule{Topo: tp, Demand: d, Tau: tau, NumEpochs: 3, AllowCopy: true, Sends: []Send{bad}}
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestAlgoBandwidth(t *testing.T) {
	tp := lineTopo()
	d := bcast02Demand()
	l01 := tp.FindLink(0, 1)
	l12 := tp.FindLink(1, 2)
	s := &Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 3, AllowCopy: true,
		Sends: []Send{
			{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 1},
			{Src: 0, Chunk: 0, Link: l12, Epoch: 1, Fraction: 1},
		},
	}
	// Output buffer = 1 chunk = 1e6 bytes; finish = 2ms.
	want := chunk / (2 * tau)
	if got := s.AlgoBandwidth(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("algo bandwidth = %g, want %g", got, want)
	}
	if got := s.TotalBytesSent(); got != 2*chunk {
		t.Fatalf("total bytes = %g, want %g", got, 2*chunk)
	}
}

func TestDownLinkRejected(t *testing.T) {
	tp := lineTopo()
	d := bcast02Demand()
	l01 := tp.FindLink(0, 1)
	l12 := tp.FindLink(1, 2)
	down, err := tp.ApplyDelta(topo.Delta{LinksDown: []topo.LinkID{l12}})
	if err != nil {
		t.Fatal(err)
	}
	s := &Schedule{
		Topo: down, Demand: d, Tau: tau, NumEpochs: 3, AllowCopy: true,
		Sends: []Send{
			{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 1},
			{Src: 0, Chunk: 0, Link: l12, Epoch: 1, Fraction: 1},
		},
	}
	err = s.Validate()
	if err == nil || !strings.Contains(err.Error(), "down") {
		t.Fatalf("want down-link error, got %v", err)
	}
}
