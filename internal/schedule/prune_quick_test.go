package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"

	"teccl/internal/collective"
	"teccl/internal/topo"
)

// randomValidSchedule floods chunks greedily over a random ring-plus-
// chords topology, yielding a valid whole-chunk schedule with deliberate
// over-sending (the raw pre-pruning state the MILP also produces).
func randomValidSchedule(rng *rand.Rand) *Schedule {
	n := 3 + rng.Intn(4)
	t := topo.Ring(n, 1e9, 0)
	gpus := make([]int, n)
	for i := range gpus {
		gpus[i] = i
	}
	d := collective.AllGather(n, gpus, 1, 1e6)

	const K = 12
	holds := make([]map[int]bool, n)
	for i := range holds {
		holds[i] = map[int]bool{i: true}
	}
	pending := map[int][]([2]int){} // epoch -> (node, src)
	var sends []Send
	for k := 0; k < K; k++ {
		for _, a := range pending[k] {
			holds[a[0]][a[1]] = true
		}
		delete(pending, k)
		for l := 0; l < t.NumLinks(); l++ {
			lk := t.Link(topo.LinkID(l))
			src, dst := int(lk.Src), int(lk.Dst)
			// Pick a random held chunk the receiver misses.
			var cands []int
			for c := range holds[src] {
				if !holds[dst][c] && !willHave(pending, dst, c) {
					cands = append(cands, c)
				}
			}
			if len(cands) == 0 {
				continue
			}
			// Random skips create wasteful-looking variety.
			if rng.Intn(4) == 0 {
				continue
			}
			c := cands[rng.Intn(len(cands))]
			sends = append(sends, Send{Src: c, Chunk: 0, Link: topo.LinkID(l), Epoch: k, Fraction: 1})
			pending[k+1] = append(pending[k+1], [2]int{dst, c})
		}
	}
	return &Schedule{Topo: t, Demand: d, Tau: 1e-3, NumEpochs: K, Sends: sends, AllowCopy: true}
}

func willHave(pending map[int][]([2]int), node, c int) bool {
	for _, arr := range pending {
		for _, a := range arr {
			if a[0] == node && a[1] == c {
				return true
			}
		}
	}
	return false
}

// TestQuickPrunePreservesValidity: pruning any valid, demand-satisfying
// schedule keeps it valid and satisfying, and never adds sends.
func TestQuickPrunePreservesValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomValidSchedule(rng)
		if err := s.Validate(); err != nil {
			// The greedy may not satisfy all demands within K; skip those.
			return true
		}
		p := s.Prune()
		if len(p.Sends) > len(s.Sends) {
			t.Logf("seed %d: prune grew the schedule", seed)
			return false
		}
		if err := p.Validate(); err != nil {
			t.Logf("seed %d: pruned schedule invalid: %v", seed, err)
			return false
		}
		// Pruning must not hurt the finish epoch.
		if p.FinishEpoch() > s.FinishEpoch() {
			t.Logf("seed %d: prune worsened finish %d -> %d", seed, s.FinishEpoch(), p.FinishEpoch())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFinishEpochMatchesSim: the epoch-quantized finish time must
// bound the continuous-time finish from above for whole-chunk schedules
// on α-free topologies (transmission exactly fills each epoch).
func TestQuickFinishEpochConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomValidSchedule(rng)
		if err := s.Validate(); err != nil {
			return true
		}
		fe := s.FinishEpoch()
		if fe < 0 {
			return true
		}
		// Epoch-quantized time = (fe+1)*tau must be >= any send's start.
		for _, snd := range s.Sends {
			if snd.Epoch > fe {
				// Wasteful late sends are allowed pre-prune; after prune
				// none may start beyond the finish epoch.
				p := s.Prune()
				for _, ps := range p.Sends {
					if ps.Epoch > p.FinishEpoch() {
						t.Logf("seed %d: pruned send after finish", seed)
						return false
					}
				}
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
