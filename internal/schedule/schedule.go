// Package schedule defines the output of collective-communication
// optimizers: which chunk crosses which link in which epoch. It provides
// validity checking (causality, capacity, switch memory, demand
// satisfaction), the reverse-DFS pruning of wasteful flows from §3.1 of
// the paper, and epoch-level completion-time accounting.
package schedule

import (
	"fmt"
	"math"
	"sort"

	"teccl/internal/collective"
	"teccl/internal/topo"
)

// Send is one chunk transmission (possibly a fraction of a chunk, for
// schedules derived from the LP form) over one link starting at the given
// epoch.
type Send struct {
	Src      int // origin source node of the chunk
	Chunk    int // chunk ID within the source
	Link     topo.LinkID
	Epoch    int
	Fraction float64 // in (0, 1]; 1 for whole-chunk (MILP) schedules
}

// Schedule is a complete collective schedule.
type Schedule struct {
	Topo   *topo.Topology
	Demand *collective.Demand
	// Tau is the epoch duration in seconds.
	Tau float64
	// NumEpochs is the horizon K+1 the schedule was solved with.
	NumEpochs int
	// Sends lists every transmission. Order is not significant.
	Sends []Send
	// AllowCopy records whether the schedule may duplicate chunks in the
	// network (affects validation semantics).
	AllowCopy bool
	// EpochsPerChunk is the sliding-window factor κ per link used when the
	// epoch duration is set from the fastest link (Appendix F); nil means
	// every link fits a chunk per epoch.
	EpochsPerChunk []int
}

// Delta returns ⌈α/τ⌉ for link l: the extra epochs a chunk spends in
// flight due to the link's fixed latency.
func (s *Schedule) Delta(l topo.LinkID) int {
	a := s.Topo.Link(l).Alpha
	if a <= 0 || s.Tau <= 0 {
		return 0
	}
	return int(math.Ceil(a/s.Tau - 1e-9))
}

// kappa returns the sliding-window factor for link l (Appendix F).
func (s *Schedule) kappa(l topo.LinkID) int {
	if s.EpochsPerChunk == nil || int(l) >= len(s.EpochsPerChunk) {
		return 1
	}
	if k := s.EpochsPerChunk[l]; k > 1 {
		return k
	}
	return 1
}

// ArrivalEpoch returns the epoch by whose end a send is resident at the
// link's destination: epoch + ⌈δ⌉ + (κ-1) for links that need κ epochs to
// transmit one chunk.
func (s *Schedule) ArrivalEpoch(send Send) int {
	return send.Epoch + s.Delta(send.Link) + s.kappa(send.Link) - 1
}

// FinishEpoch returns the epoch by whose end every demanded chunk has
// reached its destination, or -1 if the schedule does not satisfy the
// demand. Call Validate first to check full validity.
func (s *Schedule) FinishEpoch() int {
	type key struct{ src, chunk, dst int }
	arrive := map[key]int{}
	for _, snd := range s.Sends {
		dst := int(s.Topo.Link(snd.Link).Dst)
		k := key{snd.Src, snd.Chunk, dst}
		ae := s.ArrivalEpoch(snd)
		if cur, ok := arrive[k]; !ok || ae < cur {
			arrive[k] = ae
		}
	}
	finish := 0
	d := s.Demand
	for src := 0; src < d.NumNodes(); src++ {
		for c := 0; c < d.NumChunks(); c++ {
			for dst := 0; dst < d.NumNodes(); dst++ {
				if !d.Wants(src, c, dst) {
					continue
				}
				ae, ok := arrive[key{src, c, dst}]
				if !ok {
					return -1
				}
				if ae > finish {
					finish = ae
				}
			}
		}
	}
	return finish
}

// FinishTime returns the epoch-quantized completion time in seconds:
// (FinishEpoch+1) · τ. Returns +Inf if the demand is unsatisfied.
func (s *Schedule) FinishTime() float64 {
	fe := s.FinishEpoch()
	if fe < 0 {
		return math.Inf(1)
	}
	return float64(fe+1) * s.Tau
}

// AlgoBandwidth returns TACCL's algorithmic-bandwidth metric: the maximum
// per-GPU output buffer size divided by the completion time.
func (s *Schedule) AlgoBandwidth() float64 {
	ft := s.FinishTime()
	if math.IsInf(ft, 1) || ft == 0 {
		return 0
	}
	return s.Demand.MaxOutputBufferBytes() / ft
}

// TotalBytesSent sums the bytes placed on links by the schedule.
func (s *Schedule) TotalBytesSent() float64 {
	var total float64
	for _, snd := range s.Sends {
		total += snd.Fraction * s.Demand.ChunkBytes
	}
	return total
}

const fracTol = 1e-6

// Validate checks the schedule end to end:
//
//   - capacity: bytes per link per (windowed) epoch within T·τ·κ;
//   - causality: a node only sends fractions of chunks it holds, where
//     origin sources hold their chunks from epoch 0 and arrivals become
//     forwardable the epoch after they land;
//   - switch memory: switches cannot buffer — they forward an arrival only
//     in the epoch immediately after it lands;
//   - copy discipline: without copy, the total fraction leaving a node
//     never exceeds the fraction that entered it;
//   - completeness: every demanded (src, chunk, dst) fully arrives.
func (s *Schedule) Validate() error {
	t := s.Topo
	d := s.Demand
	nC := d.NumChunks()
	chunkKey := func(src, c int) int { return src*nC + c }

	// Horizon: allow arrivals past NumEpochs only if NumEpochs is 0 (not
	// tracked); otherwise sends must start within the horizon.
	for i, snd := range s.Sends {
		if snd.Epoch < 0 {
			return fmt.Errorf("send %d: negative epoch %d", i, snd.Epoch)
		}
		if s.NumEpochs > 0 && snd.Epoch >= s.NumEpochs {
			return fmt.Errorf("send %d: epoch %d beyond horizon %d", i, snd.Epoch, s.NumEpochs)
		}
		if snd.Fraction <= 0 || snd.Fraction > 1+fracTol {
			return fmt.Errorf("send %d: fraction %g out of (0,1]", i, snd.Fraction)
		}
		if int(snd.Link) < 0 || int(snd.Link) >= t.NumLinks() {
			return fmt.Errorf("send %d: bad link %d", i, snd.Link)
		}
		if t.LinkDown(snd.Link) {
			return fmt.Errorf("send %d: link %d is down", i, snd.Link)
		}
		if snd.Src < 0 || snd.Src >= d.NumNodes() || snd.Chunk < 0 || snd.Chunk >= nC {
			return fmt.Errorf("send %d: bad chunk identity (%d,%d)", i, snd.Src, snd.Chunk)
		}
	}

	// Capacity per link with sliding window κ (Appendix F).
	type le struct {
		link  topo.LinkID
		epoch int
	}
	load := map[le]float64{}
	maxEpoch := 0
	for _, snd := range s.Sends {
		load[le{snd.Link, snd.Epoch}] += snd.Fraction * d.ChunkBytes
		if ae := s.ArrivalEpoch(snd); ae > maxEpoch {
			maxEpoch = ae
		}
	}
	for key := range load {
		kap := s.kappa(key.link)
		var window float64
		for k := key.epoch; k > key.epoch-kap && k >= 0; k-- {
			window += load[le{key.link, k}]
		}
		budget := t.Link(key.link).Capacity * s.Tau * float64(kap)
		if window > budget*(1+1e-6)+1e-9 {
			return fmt.Errorf("link %d epoch %d: %g bytes exceed window budget %g",
				key.link, key.epoch, window, budget)
		}
	}

	// Causality and copy discipline, epoch by epoch.
	sends := append([]Send(nil), s.Sends...)
	sort.Slice(sends, func(i, j int) bool {
		if sends[i].Epoch != sends[j].Epoch {
			return sends[i].Epoch < sends[j].Epoch
		}
		return sends[i].Link < sends[j].Link
	})

	// availGPU[node][key]: fraction forwardable at the current epoch
	// (cumulative). availSwitchAt[node][key][epoch]: fraction arriving at
	// a switch that is forwardable exactly in that epoch.
	availGPU := make([]map[int]float64, t.NumNodes())
	usedNoCopy := make([]map[int]float64, t.NumNodes())
	availSwitchAt := make([]map[int]map[int]float64, t.NumNodes())
	for n := 0; n < t.NumNodes(); n++ {
		availGPU[n] = map[int]float64{}
		usedNoCopy[n] = map[int]float64{}
		availSwitchAt[n] = map[int]map[int]float64{}
	}
	for src := 0; src < d.NumNodes(); src++ {
		for c := 0; c < nC; c++ {
			if d.SourceHasChunk(src, c) {
				availGPU[src][chunkKey(src, c)] = 1
			}
		}
	}

	// pending arrivals indexed by forwardable epoch.
	type arrival struct {
		node int
		key  int
		frac float64
	}
	pending := map[int][]arrival{}
	addArrival := func(epoch, node, key int, frac float64) {
		pending[epoch] = append(pending[epoch], arrival{node, key, frac})
	}

	// Per-link, per-epoch sent fraction per chunk for the copy check:
	// each link may carry at most the available fraction of each chunk.
	si := 0
	delivered := make([]map[int]float64, t.NumNodes())
	for n := range delivered {
		delivered[n] = map[int]float64{}
	}
	for epoch := 0; epoch <= maxEpoch+1; epoch++ {
		// Materialize arrivals that became forwardable this epoch.
		for _, a := range pending[epoch] {
			if t.IsSwitch(topo.NodeID(a.node)) {
				m := availSwitchAt[a.node][a.key]
				if m == nil {
					m = map[int]float64{}
					availSwitchAt[a.node][a.key] = m
				}
				m[epoch] += a.frac
			} else {
				availGPU[a.node][a.key] += a.frac
			}
		}
		delete(pending, epoch)

		// Per-(node,link,chunk) totals within this epoch for copy check.
		perLink := map[string]float64{}
		perNodeOut := map[[2]int]float64{}
		for ; si < len(sends) && sends[si].Epoch == epoch; si++ {
			snd := sends[si]
			l := t.Link(snd.Link)
			n := int(l.Src)
			key := chunkKey(snd.Src, snd.Chunk)

			var avail float64
			if t.IsSwitch(l.Src) {
				avail = availSwitchAt[n][key][epoch]
			} else {
				avail = availGPU[n][key]
			}
			if avail <= 0 {
				return fmt.Errorf("epoch %d: node %d sends chunk (%d,%d) it does not hold",
					epoch, n, snd.Src, snd.Chunk)
			}

			lk := fmt.Sprintf("%d/%d/%d", snd.Link, snd.Src, snd.Chunk)
			perLink[lk] += snd.Fraction
			if perLink[lk] > avail+fracTol {
				return fmt.Errorf("epoch %d: link %d carries %g of chunk (%d,%d) but only %g is held",
					epoch, snd.Link, perLink[lk], snd.Src, snd.Chunk, avail)
			}
			if !s.AllowCopy {
				k2 := [2]int{n, key}
				perNodeOut[k2] += snd.Fraction
				// A switch's availability is per-epoch (it cannot hold
				// chunks), so only this epoch's outflow counts against it;
				// a GPU's availability is cumulative, so all prior outflow
				// counts.
				used := 0.0
				if !t.IsSwitch(l.Src) {
					used = usedNoCopy[n][key]
				}
				if perNodeOut[k2]+used > avail+fracTol {
					return fmt.Errorf("epoch %d: node %d duplicates chunk (%d,%d) without copy support",
						epoch, n, snd.Src, snd.Chunk)
				}
			}

			// Schedule the arrival.
			fwd := s.ArrivalEpoch(snd) + 1
			dst := int(l.Dst)
			addArrival(fwd, dst, key, snd.Fraction)
			if !t.IsSwitch(l.Dst) {
				delivered[dst][key] += snd.Fraction
			}
		}
		if !s.AllowCopy {
			for k2, out := range perNodeOut {
				usedNoCopy[k2[0]][k2[1]] += out
			}
		}
	}

	// Completeness.
	for src := 0; src < d.NumNodes(); src++ {
		for c := 0; c < nC; c++ {
			for dst := 0; dst < d.NumNodes(); dst++ {
				if !d.Wants(src, c, dst) {
					continue
				}
				if delivered[dst][chunkKey(src, c)] < 1-fracTol {
					return fmt.Errorf("demand unmet: dst %d holds %.4f of chunk (%d,%d)",
						dst, delivered[dst][chunkKey(src, c)], src, c)
				}
			}
		}
	}
	return nil
}

// Prune removes sends that do not contribute to satisfying any demand —
// the reverse-DFS post-processing of §3.1. It applies to whole-chunk
// schedules (every Fraction == 1); fractional schedules are returned
// unchanged. The receiver is not modified; a pruned copy is returned.
func (s *Schedule) Prune() *Schedule {
	for _, snd := range s.Sends {
		if snd.Fraction != 1 {
			return s
		}
	}
	t := s.Topo
	d := s.Demand
	nC := d.NumChunks()
	chunkKey := func(src, c int) int { return src*nC + c }

	// Index sends by (dstNode, chunkKey) with arrival epochs, and by
	// (srcNode, chunkKey) for the backward walk.
	type arr struct {
		idx     int // send index
		arrival int // forwardable epoch at dst (arrival+1)
	}
	into := map[[2]int][]arr{}
	for i, snd := range s.Sends {
		dst := int(t.Link(snd.Link).Dst)
		into[[2]int{dst, chunkKey(snd.Src, snd.Chunk)}] = append(
			into[[2]int{dst, chunkKey(snd.Src, snd.Chunk)}],
			arr{i, s.ArrivalEpoch(snd)})
	}
	for k := range into {
		a := into[k]
		sort.Slice(a, func(i, j int) bool { return a[i].arrival < a[j].arrival })
		into[k] = a
	}

	keep := make([]bool, len(s.Sends))
	// need marks (node, chunkKey, byEpoch): node must hold the chunk with
	// forwardable epoch <= byEpoch. Memoize visited states coarsely by
	// keeping the weakest requirement satisfied.
	type needKey struct {
		node, key, by int
	}
	visited := map[needKey]bool{}
	var require func(node, key, by int) bool
	require = func(node, key, by int) bool {
		src := key / nC
		if node == src {
			return true // origin holds it from epoch 0
		}
		nk := needKey{node, key, by}
		if visited[nk] {
			return true
		}
		visited[nk] = true
		// Choose the earliest arrival whose forwardable epoch meets the
		// deadline: an arrival landing by the end of epoch a.arrival can
		// be forwarded from epoch a.arrival+1 on.
		isSwitch := t.IsSwitch(topo.NodeID(node))
		for _, a := range into[[2]int{node, key}] {
			if a.arrival+1 > by {
				break
			}
			// A switch cannot buffer: the feeding arrival must be
			// forwardable exactly at the epoch the switch sends.
			if isSwitch && by <= s.NumEpochs && a.arrival+1 != by {
				continue
			}
			snd := s.Sends[a.idx]
			l := t.Link(snd.Link)
			if require(int(l.Src), key, snd.Epoch) {
				keep[a.idx] = true
				return true
			}
		}
		delete(visited, nk)
		return false
	}

	big := s.NumEpochs + 1000
	for src := 0; src < d.NumNodes(); src++ {
		for c := 0; c < nC; c++ {
			for dst := 0; dst < d.NumNodes(); dst++ {
				if d.Wants(src, c, dst) {
					require(dst, chunkKey(src, c), big)
				}
			}
		}
	}

	out := *s
	out.Sends = nil
	for i, snd := range s.Sends {
		if keep[i] {
			out.Sends = append(out.Sends, snd)
		}
	}
	return &out
}
