package lp

// factor.go implements the sparse basis factorization behind the revised
// simplex: an LU decomposition P·B·Q = L·U computed by Markowitz-ordered
// Gaussian elimination on the sparse basis matrix, plus a product-form
// ("eta file") update applied after each pivot so the factorization only
// needs to be rebuilt every refactorEvery basis changes.
//
// The factorization exploits the near-triangular structure of
// time-expanded flow bases: column and row singletons are peeled off with
// no fill-in (this typically eliminates the large majority of the basis),
// and only the residual kernel pays for general elimination with a
// minimum-degree style pivot search under threshold partial pivoting.
//
// FTRAN (solve B·w = a) and BTRAN (solve Bᵀ·y = c) run in time
// proportional to the nonzeros of L, U, and the eta file — never O(m²).

import "math"

const (
	// dropTol: values below this are dropped during elimination/updates.
	dropTol = 1e-12
	// stabRelTol: threshold partial pivoting — within the candidate row a
	// pivot must be at least this fraction of the row's largest entry.
	stabRelTol = 0.1
)

// etaCol is one product-form update: after a pivot where the FTRAN spike w
// replaced basis position r, the new inverse is Eᵣ(w)·B⁻¹.
type etaCol struct {
	r   int32 // pivot position
	piv float64
	idx []int32 // positions i != r with w[i] != 0
	val []float64
}

// luFactor is a sparse LU factorization of the basis in pivot order, plus
// the eta file accumulated since the last refactorization.
type luFactor struct {
	m int

	// L is unit lower triangular in pivot-position space: lIdx[k]/lVal[k]
	// are the below-diagonal multipliers of column k (positions > k).
	lIdx [][]int32
	lVal [][]float64

	// U is upper triangular in pivot-position space: uIdx[k]/uVal[k] are
	// row k's entries right of the diagonal; uDiag[k] is the pivot value.
	uIdx  [][]int32
	uVal  [][]float64
	uDiag []float64

	pivRow []int32 // elimination step k pivoted original row pivRow[k]...
	pivCol []int32 // ...against basis position pivCol[k]

	luNnz int // nonzeros in L + U (refactorization growth metric)

	etas   []etaCol
	etaNnz int

	work []float64 // dense scratch, len m

	// Elimination workspace, retained across factorizations so the hot
	// refactorization path reuses grown backing arrays instead of
	// reallocating the whole active submatrix every time.
	wsRowsIdx    [][]int32
	wsRowsVal    [][]float64
	wsColRows    [][]int32
	wsRowDone    []bool
	wsColDone    []bool
	wsWpos       []int32
	wsActiveRows []int32
}

func newLUFactor(m int) *luFactor {
	return &luFactor{
		m:      m,
		lIdx:   make([][]int32, m),
		lVal:   make([][]float64, m),
		uIdx:   make([][]int32, m),
		uVal:   make([][]float64, m),
		uDiag:  make([]float64, m),
		pivRow: make([]int32, m),
		pivCol: make([]int32, m),
		work:   make([]float64, m),
	}
}

// factorize computes the LU factors of the basis whose columns are given
// as parallel sparse (row index, value) slices, replacing any previous
// factorization and clearing the eta file. On success it returns nil
// slices. If the basis is structurally or numerically singular it returns
// the original rows left without a pivot and the basis positions left
// unpivoted; the caller repairs the basis (slotting in slacks for the
// uncovered rows) and retries.
func (f *luFactor) factorize(colIdx [][]int32, colVal [][]float64) (failRows, failCols []int32) {
	m := f.m
	f.etas = f.etas[:0]
	f.etaNnz = 0
	f.luNnz = 0

	// Active submatrix, maintained exactly: entries per original row and
	// the set of rows containing each basis position (column). The
	// workspace is retained on f across calls; only reset here.
	if f.wsRowsIdx == nil {
		f.wsRowsIdx = make([][]int32, m)
		f.wsRowsVal = make([][]float64, m)
		f.wsColRows = make([][]int32, m)
		f.wsRowDone = make([]bool, m)
		f.wsColDone = make([]bool, m)
		f.wsWpos = make([]int32, m)
		f.wsActiveRows = make([]int32, m)
	}
	rowsIdx := f.wsRowsIdx // per row: active basis positions
	rowsVal := f.wsRowsVal
	colRows := f.wsColRows // per basis position: active rows
	rowDone := f.wsRowDone
	colDone := f.wsColDone
	for i := 0; i < m; i++ {
		rowsIdx[i] = rowsIdx[i][:0]
		rowsVal[i] = rowsVal[i][:0]
		colRows[i] = colRows[i][:0]
		rowDone[i] = false
		colDone[i] = false
	}
	for pos := 0; pos < m; pos++ {
		for ki, r := range colIdx[pos] {
			rowsIdx[r] = append(rowsIdx[r], int32(pos))
			rowsVal[r] = append(rowsVal[r], colVal[pos][ki])
		}
	}
	for i := 0; i < m; i++ {
		for _, pos := range rowsIdx[i] {
			colRows[pos] = append(colRows[pos], int32(i))
		}
	}
	// Singleton queues; entries may be stale and are re-checked on pop.
	var colQ, rowQ []int32
	for pos := 0; pos < m; pos++ {
		if len(colRows[pos]) == 1 {
			colQ = append(colQ, int32(pos))
		}
	}
	for i := 0; i < m; i++ {
		if len(rowsIdx[i]) == 1 {
			rowQ = append(rowQ, int32(i))
		}
	}

	// wpos[pos] = index+1 of pos within the row currently being updated.
	wpos := f.wsWpos
	for i := range wpos {
		wpos[i] = 0
	}

	findInRow := func(r int, pos int32) int {
		for ki, c := range rowsIdx[r] {
			if c == pos {
				return ki
			}
		}
		return -1
	}
	removeFromCol := func(pos int32, r int32) {
		cr := colRows[pos]
		for ki, rr := range cr {
			if rr == r {
				cr[ki] = cr[len(cr)-1]
				colRows[pos] = cr[:len(cr)-1]
				return
			}
		}
	}
	// dropRowEntry removes rowsIdx[r][ki] and its column back-reference,
	// enqueueing any new singletons.
	dropRowEntry := func(r int, ki int) {
		pos := rowsIdx[r][ki]
		last := len(rowsIdx[r]) - 1
		rowsIdx[r][ki] = rowsIdx[r][last]
		rowsVal[r][ki] = rowsVal[r][last]
		rowsIdx[r] = rowsIdx[r][:last]
		rowsVal[r] = rowsVal[r][:last]
		removeFromCol(pos, int32(r))
		if !colDone[pos] && len(colRows[pos]) == 1 {
			colQ = append(colQ, pos)
		}
		if len(rowsIdx[r]) == 1 {
			rowQ = append(rowQ, int32(r))
		}
	}

	step := 0
	// pivotAt eliminates basis position pos using original row i. The
	// pivot entry must already be known to be acceptably large.
	pivotAt := func(i int, pos int32) {
		ki := findInRow(i, pos)
		piv := rowsVal[i][ki]
		f.pivRow[step] = int32(i)
		f.pivCol[step] = pos

		// L multipliers: eliminate pos from every other active row.
		lIdx := f.lIdx[step][:0]
		lVal := f.lVal[step][:0]
		spike := len(rowsIdx[i]) > 1 // pivot row has off-pivot entries
		// Snapshot: the column's row set shrinks as we eliminate.
		tgt := append([]int32(nil), colRows[pos]...)
		for _, r32 := range tgt {
			r := int(r32)
			if r == i {
				continue
			}
			kj := findInRow(r, pos)
			if kj < 0 {
				continue
			}
			mult := rowsVal[r][kj] / piv
			// Remove the pivot-column entry from row r first so the axpy
			// below never touches it.
			dropRowEntry(r, kj)
			if math.Abs(mult) <= dropTol {
				continue
			}
			lIdx = append(lIdx, r32) // original row; remapped to steps below
			lVal = append(lVal, mult)
			if !spike {
				continue
			}
			// row r -= mult * row i over the remaining active columns.
			for kk, c := range rowsIdx[r] {
				wpos[c] = int32(kk) + 1
			}
			nOld := len(rowsIdx[r])
			for kk, c := range rowsIdx[i] {
				if c == pos {
					continue
				}
				v := rowsVal[i][kk]
				if w := wpos[c]; w != 0 {
					rowsVal[r][w-1] -= mult * v
				} else {
					rowsIdx[r] = append(rowsIdx[r], c)
					rowsVal[r] = append(rowsVal[r], -mult*v)
					colRows[c] = append(colRows[c], r32)
				}
			}
			for kk := 0; kk < len(rowsIdx[r]); kk++ {
				wpos[rowsIdx[r][kk]] = 0
			}
			// Drop entries cancelled to (near) zero among the updated ones.
			for kk := nOld - 1; kk >= 0; kk-- {
				if math.Abs(rowsVal[r][kk]) <= dropTol {
					dropRowEntry(r, kk)
				}
			}
			if len(rowsIdx[r]) == 1 {
				rowQ = append(rowQ, r32)
			}
		}
		f.lIdx[step] = lIdx
		f.lVal[step] = lVal

		// U row: the pivot row's remaining entries.
		uIdx := f.uIdx[step][:0]
		uVal := f.uVal[step][:0]
		for kk, c := range rowsIdx[i] {
			if c == pos {
				continue
			}
			uIdx = append(uIdx, c) // basis position; remapped to steps below
			uVal = append(uVal, rowsVal[i][kk])
			removeFromCol(c, int32(i))
			if !colDone[c] && len(colRows[c]) == 1 {
				colQ = append(colQ, c)
			}
		}
		f.uIdx[step] = uIdx
		f.uVal[step] = uVal
		f.uDiag[step] = piv
		f.luNnz += len(lIdx) + len(uIdx) + 1

		rowDone[i] = true
		colDone[pos] = true
		rowsIdx[i] = rowsIdx[i][:0]
		rowsVal[i] = rowsVal[i][:0]
		colRows[pos] = colRows[pos][:0]
		step++
	}

	activeRows := f.wsActiveRows[:m]
	for i := range activeRows {
		activeRows[i] = int32(i)
	}

	for step < m {
		// 1. Column singletons: pivot with no elimination in the column.
		if len(colQ) > 0 {
			pos := colQ[len(colQ)-1]
			colQ = colQ[:len(colQ)-1]
			if colDone[pos] || len(colRows[pos]) != 1 {
				continue
			}
			i := int(colRows[pos][0])
			ki := findInRow(i, pos)
			if math.Abs(rowsVal[i][ki]) < pivotTol {
				continue // too small; leave for the general search
			}
			pivotAt(i, pos)
			continue
		}
		// 2. Row singletons: the eliminations only cancel, no fill.
		if len(rowQ) > 0 {
			i := rowQ[len(rowQ)-1]
			rowQ = rowQ[:len(rowQ)-1]
			if rowDone[i] || len(rowsIdx[i]) != 1 {
				continue
			}
			if math.Abs(rowsVal[i][0]) < pivotTol {
				continue
			}
			pivotAt(int(i), rowsIdx[i][0])
			continue
		}
		// 3. General step: pick the shortest active row, then within it the
		// entry with the fewest column occupants subject to the stability
		// threshold (a Markowitz (r-1)(c-1) approximation).
		w := 0
		bestRow, bestLen := -1, m+1
		for _, r32 := range activeRows {
			if rowDone[r32] {
				continue
			}
			activeRows[w] = r32
			w++
			if l := len(rowsIdx[r32]); l > 0 && l < bestLen {
				bestRow, bestLen = int(r32), l
			}
		}
		activeRows = activeRows[:w]
		f.wsActiveRows = activeRows[:cap(activeRows)]
		if bestRow == -1 {
			break // only empty rows remain: singular
		}
		amax := 0.0
		for _, v := range rowsVal[bestRow] {
			if a := math.Abs(v); a > amax {
				amax = a
			}
		}
		if amax < pivotTol {
			// Numerically dead row; no pivot possible here or later.
			break
		}
		thresh := stabRelTol * amax
		bestK, bestCnt, bestAbs := -1, m+1, 0.0
		for ki, pos := range rowsIdx[bestRow] {
			a := math.Abs(rowsVal[bestRow][ki])
			if a < thresh || a < pivotTol {
				continue
			}
			cnt := len(colRows[pos])
			if cnt < bestCnt || (cnt == bestCnt && a > bestAbs) {
				bestK, bestCnt, bestAbs = ki, cnt, a
			}
		}
		if bestK == -1 {
			break
		}
		// The L multipliers are column entries divided by the pivot, so
		// stability must also be judged against the pivot COLUMN's largest
		// entry; if the candidate is small relative to it, pivot at the
		// column's dominant row instead (multipliers then stay <= 1).
		pivRow, pivPos := bestRow, rowsIdx[bestRow][bestK]
		cmaxRow, cmax := pivRow, bestAbs
		for _, r32 := range colRows[pivPos] {
			r := int(r32)
			if kj := findInRow(r, pivPos); kj >= 0 {
				if a := math.Abs(rowsVal[r][kj]); a > cmax {
					cmaxRow, cmax = r, a
				}
			}
		}
		if bestAbs < stabRelTol*cmax {
			pivRow = cmaxRow
		}
		pivotAt(pivRow, pivPos)
	}

	if step < m {
		for i := 0; i < m; i++ {
			if !rowDone[i] {
				failRows = append(failRows, int32(i))
			}
			if !colDone[i] {
				failCols = append(failCols, int32(i))
			}
		}
		return failRows, failCols
	}

	// Remap L targets (original rows) and U columns (basis positions) into
	// pivot-step space so the solves run on triangular systems directly.
	rowStep := wpos // reuse
	colStep := make([]int32, m)
	for k := 0; k < m; k++ {
		rowStep[f.pivRow[k]] = int32(k)
		colStep[f.pivCol[k]] = int32(k)
	}
	for k := 0; k < m; k++ {
		li := f.lIdx[k]
		for ki := range li {
			li[ki] = rowStep[li[ki]]
		}
		ui := f.uIdx[k]
		for ki := range ui {
			ui[ki] = colStep[ui[ki]]
		}
	}
	return nil, nil
}

// ftran solves B·w = a in place: on entry x holds a indexed by original
// row; on return it holds w indexed by basis position.
func (f *luFactor) ftran(x []float64) {
	m := f.m
	work := f.work
	for k := 0; k < m; k++ {
		work[k] = x[f.pivRow[k]]
	}
	// L forward (scatter).
	for k := 0; k < m; k++ {
		v := work[k]
		if v == 0 {
			continue
		}
		idx := f.lIdx[k]
		val := f.lVal[k]
		for ki, tgt := range idx {
			work[tgt] -= val[ki] * v
		}
	}
	// U backward (gather).
	for k := m - 1; k >= 0; k-- {
		v := work[k]
		idx := f.uIdx[k]
		val := f.uVal[k]
		for ki, c := range idx {
			v -= val[ki] * work[c]
		}
		work[k] = v / f.uDiag[k]
	}
	for k := 0; k < m; k++ {
		x[f.pivCol[k]] = work[k]
	}
	// Product-form updates, oldest first.
	for ei := range f.etas {
		e := &f.etas[ei]
		xr := x[e.r]
		if xr == 0 {
			continue
		}
		xr /= e.piv
		for ki, i := range e.idx {
			x[i] -= e.val[ki] * xr
		}
		x[e.r] = xr
	}
}

// btran solves Bᵀ·y = c in place: on entry x holds c indexed by basis
// position; on return it holds y indexed by original row.
func (f *luFactor) btran(x []float64) {
	// Eta transposes, newest first.
	for ei := len(f.etas) - 1; ei >= 0; ei-- {
		e := &f.etas[ei]
		acc := x[e.r]
		for ki, i := range e.idx {
			acc -= e.val[ki] * x[i]
		}
		x[e.r] = acc / e.piv
	}
	m := f.m
	work := f.work
	for k := 0; k < m; k++ {
		work[k] = x[f.pivCol[k]]
	}
	// Uᵀ forward (scatter).
	for k := 0; k < m; k++ {
		v := work[k] / f.uDiag[k]
		work[k] = v
		if v == 0 {
			continue
		}
		idx := f.uIdx[k]
		val := f.uVal[k]
		for ki, c := range idx {
			work[c] -= val[ki] * v
		}
	}
	// Lᵀ backward (gather).
	for k := m - 1; k >= 0; k-- {
		v := work[k]
		idx := f.lIdx[k]
		val := f.lVal[k]
		for ki, tgt := range idx {
			v -= val[ki] * work[tgt]
		}
		work[k] = v
	}
	for k := 0; k < m; k++ {
		x[f.pivRow[k]] = work[k]
	}
}

// appendEta records the product-form update for a pivot whose FTRAN spike
// is w (dense, position space, nonzeros listed in wNnz) replacing basis
// position r.
func (f *luFactor) appendEta(w []float64, wNnz []int32, r int32) {
	e := etaCol{r: r, piv: w[r]}
	for _, i := range wNnz {
		if i == r {
			continue
		}
		v := w[i]
		if math.Abs(v) <= dropTol {
			continue
		}
		e.idx = append(e.idx, i)
		e.val = append(e.val, v)
	}
	f.etas = append(f.etas, e)
	f.etaNnz += len(e.idx) + 1
}

// shouldRefactor reports whether the eta file has grown enough that a
// fresh factorization is cheaper (and numerically safer) than continuing.
func (f *luFactor) shouldRefactor() bool {
	if len(f.etas) >= refactorEvery {
		return true
	}
	return f.etaNnz > 2*f.luNnz+8*f.m
}
