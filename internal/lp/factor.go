package lp

// factor.go implements the sparse basis factorization behind the revised
// simplex: an LU decomposition P·B·Q = L·U computed by Markowitz-ordered
// Gaussian elimination on the sparse basis matrix, kept current between
// refactorizations by Forrest–Tomlin updates — after each pivot the
// FTRAN spike is spliced into U as the replaced column, the replaced row
// is cyclically permuted to the end of the elimination order, and its
// off-diagonal entries are eliminated into a compact row eta (the FT "R"
// transform). Unlike the product-form eta file this used to be, the
// update file grows with the FILL the pivots actually cause, not with
// the dense spike length, so refactorization is triggered by measured
// L+U+update nonzero growth and numeric drift instead of a fixed pivot
// count.
//
// The factorization exploits the near-triangular structure of
// time-expanded flow bases: column and row singletons are peeled off with
// no fill-in (this typically eliminates the large majority of the basis),
// and only the residual kernel pays for general elimination with a
// minimum-degree style pivot search under threshold partial pivoting.
//
// FTRAN (solve B·w = a) and BTRAN (solve Bᵀ·y = c) run in time
// proportional to the nonzeros of L, U, and the update etas — never
// O(m²).

import "math"

const (
	// dropTol: values below this are dropped during elimination/updates.
	dropTol = 1e-12
	// stabRelTol: threshold partial pivoting — within the candidate row a
	// pivot must be at least this fraction of the row's largest entry.
	stabRelTol = 0.1

	// ftRejectRel rejects a Forrest–Tomlin update whose new diagonal is
	// tiny relative to the spike (a numerically singular replacement);
	// the caller refactorizes instead.
	ftRejectRel = 1e-11
	// ftDriftReject rejects an update when the FT diagonal identity
	// d = w_leave · u_tt disagrees with the eliminated value by more than
	// this relative error: the factorization has drifted too far to keep
	// updating.
	ftDriftReject = 1e-5
	// ftDriftRefactor schedules a refactorization (without rejecting the
	// update) once the accumulated diagonal-identity drift passes this.
	ftDriftRefactor = 1e-8
	// ftGrowthFactor triggers refactorization when the current
	// U + update-eta nonzeros exceed this multiple of the fresh L+U count
	// (plus an 8m allowance for small bases): past that point a fresh
	// factorization is cheaper than dragging the fill through every
	// FTRAN/BTRAN.
	ftGrowthFactor = 2
	// ftMaxUpdates is a hard safety cap on updates between
	// refactorizations, far above what the growth/drift triggers allow in
	// practice; it bounds worst-case floating-error accumulation.
	ftMaxUpdates = 2000
	// ftCostBalance scales the refactorization-cost estimate in the
	// cost-balance trigger: refactorize once the accumulated extra
	// FTRAN/BTRAN work from update fill exceeds this multiple of the
	// factor nonzeros (each iteration runs a small constant number of
	// solves, and a refactorization costs a few passes over the factor).
	ftCostBalance = 2.0
	// ftMinUpdates floors the cost-balance trigger: small problems whose
	// first updates already rival the (tiny) factor cost would otherwise
	// refactorize every handful of pivots for no measurable gain.
	ftMinUpdates = 12
)

// rEta is one Forrest–Tomlin row transform: row t of U gained
// row_t -= Σ val[k]·row_idx[k] during the update's re-triangularization.
// Applied to an FTRAN right-hand side as work[t] -= Σ val·work[idx];
// transposed for BTRAN as work[idx] -= val·work[t].
type rEta struct {
	t   int32
	idx []int32
	val []float64
}

// luFactor is a sparse LU factorization of the basis in pivot order, plus
// the Forrest–Tomlin update state accumulated since the last
// refactorization: mutable U rows, the elimination order permutation, and
// the row-eta file.
type luFactor struct {
	m int

	// L is unit lower triangular in pivot-position space: lIdx[k]/lVal[k]
	// are the below-diagonal multipliers of column k (positions > k).
	// L is static between refactorizations; updates only touch U.
	lIdx [][]int32
	lVal [][]float64

	// U is upper triangular with respect to the elimination order below:
	// uIdx[k]/uVal[k] are row k's off-diagonal entries (columns in step
	// space); uDiag[k] is the diagonal. Updates replace columns and
	// rows in place.
	uIdx  [][]int32
	uVal  [][]float64
	uDiag []float64

	// uColRows[c] lists the rows carrying an off-diagonal entry at column
	// c, so updates can splice a column out without scanning all rows.
	// Entries may be stale (a row edit does not eagerly prune the lists
	// of its old columns); consumers verify against the row itself.
	uColRows [][]int32

	// order is the triangular elimination order of the steps: row
	// order[q] has off-diagonal entries only in columns order[q+1:].
	// Fresh factorizations are triangular in step order (identity);
	// each FT update cyclically rotates the replaced step to the end.
	order   []int32
	stepPos []int32 // inverse of order

	pivRow  []int32 // elimination step k pivoted original row pivRow[k]...
	pivCol  []int32 // ...against basis position pivCol[k]
	colStep []int32 // inverse of pivCol: basis position -> step

	luNnz    int // L+U nonzeros of the fresh factorization
	uNnz     int // current U off-diagonal nonzeros (tracks update fill)
	baseUNnz int // U off-diagonal nonzeros of the fresh factorization

	// extraCost accumulates, one charge per update, the update-file
	// nonzeros every subsequent solve drags along; refactorization
	// triggers when it outweighs the (amortized) cost of refactorizing.
	extraCost float64

	retas []rEta
	rNnz  int // nonzeros across the row-eta file

	updates int     // FT updates since the last refactorization
	drift   float64 // worst FT diagonal-identity relative error so far
	stale   bool    // a rejected update left U unusable; must refactorize

	// statUpdates/statUpdNnz accumulate across refactorizations for
	// solver-effort reporting (Solution.FTUpdates / UpdateNnz).
	statUpdates int
	statUpdNnz  int

	work []float64 // dense scratch, len m

	// spike holds the most recent FTRAN's partial result L⁻¹R-applied
	// right-hand side (step space) — exactly the column an immediately
	// following update must splice into U.
	spike    []float64
	spikeNnz []int32
	acc      []float64 // update elimination accumulator, kept all-zero

	// Elimination workspace, retained across factorizations so the hot
	// refactorization path reuses grown backing arrays instead of
	// reallocating the whole active submatrix every time.
	wsRowsIdx    [][]int32
	wsRowsVal    [][]float64
	wsColRows    [][]int32
	wsRowDone    []bool
	wsColDone    []bool
	wsWpos       []int32
	wsActiveRows []int32
}

func newLUFactor(m int) *luFactor {
	return &luFactor{
		m:        m,
		lIdx:     make([][]int32, m),
		lVal:     make([][]float64, m),
		uIdx:     make([][]int32, m),
		uVal:     make([][]float64, m),
		uDiag:    make([]float64, m),
		uColRows: make([][]int32, m),
		order:    make([]int32, m),
		stepPos:  make([]int32, m),
		pivRow:   make([]int32, m),
		pivCol:   make([]int32, m),
		colStep:  make([]int32, m),
		work:     make([]float64, m),
		spike:    make([]float64, m),
		acc:      make([]float64, m),
	}
}

// factorize computes the LU factors of the basis whose columns are given
// as parallel sparse (row index, value) slices, replacing any previous
// factorization and clearing the update state. On success it returns nil
// slices. If the basis is structurally or numerically singular it returns
// the original rows left without a pivot and the basis positions left
// unpivoted; the caller repairs the basis (slotting in slacks for the
// uncovered rows) and retries.
func (f *luFactor) factorize(colIdx [][]int32, colVal [][]float64) (failRows, failCols []int32) {
	m := f.m
	f.retas = f.retas[:0]
	f.rNnz = 0
	f.luNnz = 0
	f.updates = 0
	f.drift = 0
	f.stale = false

	// Active submatrix, maintained exactly: entries per original row and
	// the set of rows containing each basis position (column). The
	// workspace is retained on f across calls; only reset here.
	if f.wsRowsIdx == nil {
		f.wsRowsIdx = make([][]int32, m)
		f.wsRowsVal = make([][]float64, m)
		f.wsColRows = make([][]int32, m)
		f.wsRowDone = make([]bool, m)
		f.wsColDone = make([]bool, m)
		f.wsWpos = make([]int32, m)
		f.wsActiveRows = make([]int32, m)
	}
	rowsIdx := f.wsRowsIdx // per row: active basis positions
	rowsVal := f.wsRowsVal
	colRows := f.wsColRows // per basis position: active rows
	rowDone := f.wsRowDone
	colDone := f.wsColDone
	for i := 0; i < m; i++ {
		rowsIdx[i] = rowsIdx[i][:0]
		rowsVal[i] = rowsVal[i][:0]
		colRows[i] = colRows[i][:0]
		rowDone[i] = false
		colDone[i] = false
	}
	for pos := 0; pos < m; pos++ {
		for ki, r := range colIdx[pos] {
			rowsIdx[r] = append(rowsIdx[r], int32(pos))
			rowsVal[r] = append(rowsVal[r], colVal[pos][ki])
		}
	}
	for i := 0; i < m; i++ {
		for _, pos := range rowsIdx[i] {
			colRows[pos] = append(colRows[pos], int32(i))
		}
	}
	// Singleton queues; entries may be stale and are re-checked on pop.
	var colQ, rowQ []int32
	for pos := 0; pos < m; pos++ {
		if len(colRows[pos]) == 1 {
			colQ = append(colQ, int32(pos))
		}
	}
	for i := 0; i < m; i++ {
		if len(rowsIdx[i]) == 1 {
			rowQ = append(rowQ, int32(i))
		}
	}

	// wpos[pos] = index+1 of pos within the row currently being updated.
	wpos := f.wsWpos
	for i := range wpos {
		wpos[i] = 0
	}

	findInRow := func(r int, pos int32) int {
		for ki, c := range rowsIdx[r] {
			if c == pos {
				return ki
			}
		}
		return -1
	}
	removeFromCol := func(pos int32, r int32) {
		cr := colRows[pos]
		for ki, rr := range cr {
			if rr == r {
				cr[ki] = cr[len(cr)-1]
				colRows[pos] = cr[:len(cr)-1]
				return
			}
		}
	}
	// dropRowEntry removes rowsIdx[r][ki] and its column back-reference,
	// enqueueing any new singletons.
	dropRowEntry := func(r int, ki int) {
		pos := rowsIdx[r][ki]
		last := len(rowsIdx[r]) - 1
		rowsIdx[r][ki] = rowsIdx[r][last]
		rowsVal[r][ki] = rowsVal[r][last]
		rowsIdx[r] = rowsIdx[r][:last]
		rowsVal[r] = rowsVal[r][:last]
		removeFromCol(pos, int32(r))
		if !colDone[pos] && len(colRows[pos]) == 1 {
			colQ = append(colQ, pos)
		}
		if len(rowsIdx[r]) == 1 {
			rowQ = append(rowQ, int32(r))
		}
	}

	step := 0
	// pivotAt eliminates basis position pos using original row i. The
	// pivot entry must already be known to be acceptably large.
	pivotAt := func(i int, pos int32) {
		ki := findInRow(i, pos)
		piv := rowsVal[i][ki]
		f.pivRow[step] = int32(i)
		f.pivCol[step] = pos

		// L multipliers: eliminate pos from every other active row.
		lIdx := f.lIdx[step][:0]
		lVal := f.lVal[step][:0]
		spike := len(rowsIdx[i]) > 1 // pivot row has off-pivot entries
		// Snapshot: the column's row set shrinks as we eliminate.
		tgt := append([]int32(nil), colRows[pos]...)
		for _, r32 := range tgt {
			r := int(r32)
			if r == i {
				continue
			}
			kj := findInRow(r, pos)
			if kj < 0 {
				continue
			}
			mult := rowsVal[r][kj] / piv
			// Remove the pivot-column entry from row r first so the axpy
			// below never touches it.
			dropRowEntry(r, kj)
			if math.Abs(mult) <= dropTol {
				continue
			}
			lIdx = append(lIdx, r32) // original row; remapped to steps below
			lVal = append(lVal, mult)
			if !spike {
				continue
			}
			// row r -= mult * row i over the remaining active columns.
			for kk, c := range rowsIdx[r] {
				wpos[c] = int32(kk) + 1
			}
			nOld := len(rowsIdx[r])
			for kk, c := range rowsIdx[i] {
				if c == pos {
					continue
				}
				v := rowsVal[i][kk]
				if w := wpos[c]; w != 0 {
					rowsVal[r][w-1] -= mult * v
				} else {
					rowsIdx[r] = append(rowsIdx[r], c)
					rowsVal[r] = append(rowsVal[r], -mult*v)
					colRows[c] = append(colRows[c], r32)
				}
			}
			for kk := 0; kk < len(rowsIdx[r]); kk++ {
				wpos[rowsIdx[r][kk]] = 0
			}
			// Drop entries cancelled to (near) zero among the updated ones.
			for kk := nOld - 1; kk >= 0; kk-- {
				if math.Abs(rowsVal[r][kk]) <= dropTol {
					dropRowEntry(r, kk)
				}
			}
			if len(rowsIdx[r]) == 1 {
				rowQ = append(rowQ, r32)
			}
		}
		f.lIdx[step] = lIdx
		f.lVal[step] = lVal

		// U row: the pivot row's remaining entries.
		uIdx := f.uIdx[step][:0]
		uVal := f.uVal[step][:0]
		for kk, c := range rowsIdx[i] {
			if c == pos {
				continue
			}
			uIdx = append(uIdx, c) // basis position; remapped to steps below
			uVal = append(uVal, rowsVal[i][kk])
			removeFromCol(c, int32(i))
			if !colDone[c] && len(colRows[c]) == 1 {
				colQ = append(colQ, c)
			}
		}
		f.uIdx[step] = uIdx
		f.uVal[step] = uVal
		f.uDiag[step] = piv
		f.luNnz += len(lIdx) + len(uIdx) + 1

		rowDone[i] = true
		colDone[pos] = true
		rowsIdx[i] = rowsIdx[i][:0]
		rowsVal[i] = rowsVal[i][:0]
		colRows[pos] = colRows[pos][:0]
		step++
	}

	activeRows := f.wsActiveRows[:m]
	for i := range activeRows {
		activeRows[i] = int32(i)
	}

	//teccl:allow-ctxcheck bounded: every pass pops a finite singleton queue or pivots a row (step++); at most m pivots
	for step < m {
		// 1. Column singletons: pivot with no elimination in the column.
		if len(colQ) > 0 {
			pos := colQ[len(colQ)-1]
			colQ = colQ[:len(colQ)-1]
			if colDone[pos] || len(colRows[pos]) != 1 {
				continue
			}
			i := int(colRows[pos][0])
			ki := findInRow(i, pos)
			if math.Abs(rowsVal[i][ki]) < pivotTol {
				continue // too small; leave for the general search
			}
			pivotAt(i, pos)
			continue
		}
		// 2. Row singletons: the eliminations only cancel, no fill.
		if len(rowQ) > 0 {
			i := rowQ[len(rowQ)-1]
			rowQ = rowQ[:len(rowQ)-1]
			if rowDone[i] || len(rowsIdx[i]) != 1 {
				continue
			}
			if math.Abs(rowsVal[i][0]) < pivotTol {
				continue
			}
			pivotAt(int(i), rowsIdx[i][0])
			continue
		}
		// 3. General step: pick the shortest active row, then within it the
		// entry with the fewest column occupants subject to the stability
		// threshold (a Markowitz (r-1)(c-1) approximation).
		w := 0
		bestRow, bestLen := -1, m+1
		for _, r32 := range activeRows {
			if rowDone[r32] {
				continue
			}
			activeRows[w] = r32
			w++
			if l := len(rowsIdx[r32]); l > 0 && l < bestLen {
				bestRow, bestLen = int(r32), l
			}
		}
		activeRows = activeRows[:w]
		f.wsActiveRows = activeRows[:cap(activeRows)]
		if bestRow == -1 {
			break // only empty rows remain: singular
		}
		amax := 0.0
		for _, v := range rowsVal[bestRow] {
			if a := math.Abs(v); a > amax {
				amax = a
			}
		}
		if amax < pivotTol {
			// Numerically dead row; no pivot possible here or later.
			break
		}
		thresh := stabRelTol * amax
		bestK, bestCnt, bestAbs := -1, m+1, 0.0
		for ki, pos := range rowsIdx[bestRow] {
			a := math.Abs(rowsVal[bestRow][ki])
			if a < thresh || a < pivotTol {
				continue
			}
			cnt := len(colRows[pos])
			if cnt < bestCnt || (cnt == bestCnt && a > bestAbs) {
				bestK, bestCnt, bestAbs = ki, cnt, a
			}
		}
		if bestK == -1 {
			break
		}
		// The L multipliers are column entries divided by the pivot, so
		// stability must also be judged against the pivot COLUMN's largest
		// entry; if the candidate is small relative to it, pivot at the
		// column's dominant row instead (multipliers then stay <= 1).
		pivRow, pivPos := bestRow, rowsIdx[bestRow][bestK]
		cmaxRow, cmax := pivRow, bestAbs
		for _, r32 := range colRows[pivPos] {
			r := int(r32)
			if kj := findInRow(r, pivPos); kj >= 0 {
				if a := math.Abs(rowsVal[r][kj]); a > cmax {
					cmaxRow, cmax = r, a
				}
			}
		}
		if bestAbs < stabRelTol*cmax {
			pivRow = cmaxRow
		}
		pivotAt(pivRow, pivPos)
	}

	if step < m {
		for i := 0; i < m; i++ {
			if !rowDone[i] {
				failRows = append(failRows, int32(i))
			}
			if !colDone[i] {
				failCols = append(failCols, int32(i))
			}
		}
		return failRows, failCols
	}

	// Remap L targets (original rows) and U columns (basis positions) into
	// pivot-step space so the solves run on triangular systems directly.
	rowStep := wpos // reuse
	for k := 0; k < m; k++ {
		rowStep[f.pivRow[k]] = int32(k)
		f.colStep[f.pivCol[k]] = int32(k)
	}
	f.uNnz = 0
	for k := 0; k < m; k++ {
		li := f.lIdx[k]
		for ki := range li {
			li[ki] = rowStep[li[ki]]
		}
		ui := f.uIdx[k]
		for ki := range ui {
			ui[ki] = f.colStep[ui[ki]]
		}
		f.uNnz += len(ui)
	}
	f.baseUNnz = f.uNnz
	f.extraCost = 0
	// Fresh factorizations are triangular in step order; rebuild the
	// column pattern for the update path.
	for k := 0; k < m; k++ {
		f.order[k] = int32(k)
		f.stepPos[k] = int32(k)
		f.uColRows[k] = f.uColRows[k][:0]
	}
	for k := 0; k < m; k++ {
		for _, c := range f.uIdx[k] {
			f.uColRows[c] = append(f.uColRows[c], int32(k))
		}
	}
	return nil, nil
}

// ftran solves B·w = a in place: on entry x holds a indexed by original
// row; on return it holds w indexed by basis position.
func (f *luFactor) ftran(x []float64) { f.ftranInto(x, false) }

// ftranPivot is ftran for an entering column: the partial result after L
// and the row etas (the Forrest–Tomlin spike of a) is additionally saved
// for the update call that follows the pivot.
func (f *luFactor) ftranPivot(x []float64) { f.ftranInto(x, true) }

func (f *luFactor) ftranInto(x []float64, save bool) {
	m := f.m
	work := f.work
	for k := 0; k < m; k++ {
		work[k] = x[f.pivRow[k]]
	}
	// L forward (scatter).
	for k := 0; k < m; k++ {
		v := work[k]
		if v == 0 {
			continue
		}
		idx := f.lIdx[k]
		val := f.lVal[k]
		for ki, tgt := range idx {
			work[tgt] -= val[ki] * v
		}
	}
	// Row etas, oldest first.
	for ei := range f.retas {
		e := &f.retas[ei]
		acc := work[e.t]
		for ki, k := range e.idx {
			acc -= e.val[ki] * work[k]
		}
		work[e.t] = acc
	}
	if save {
		// Save the spike — the partial result an immediately following
		// Forrest–Tomlin update splices into U as the replaced column.
		f.spikeNnz = f.spikeNnz[:0]
		for k := 0; k < m; k++ {
			v := work[k]
			f.spike[k] = v
			if v != 0 {
				f.spikeNnz = append(f.spikeNnz, int32(k))
			}
		}
	}
	// U backward (gather) in elimination order.
	for q := m - 1; q >= 0; q-- {
		k := f.order[q]
		v := work[k]
		idx := f.uIdx[k]
		val := f.uVal[k]
		for ki, c := range idx {
			v -= val[ki] * work[c]
		}
		work[k] = v / f.uDiag[k]
	}
	for k := 0; k < m; k++ {
		x[f.pivCol[k]] = work[k]
	}
}

// btran solves Bᵀ·y = c in place: on entry x holds c indexed by basis
// position; on return it holds y indexed by original row.
func (f *luFactor) btran(x []float64) {
	m := f.m
	work := f.work
	for k := 0; k < m; k++ {
		work[k] = x[f.pivCol[k]]
	}
	// Uᵀ forward (scatter) in elimination order.
	for q := 0; q < m; q++ {
		k := f.order[q]
		v := work[k] / f.uDiag[k]
		work[k] = v
		if v == 0 {
			continue
		}
		idx := f.uIdx[k]
		val := f.uVal[k]
		for ki, c := range idx {
			work[c] -= val[ki] * v
		}
	}
	// Row-eta transposes, newest first.
	for ei := len(f.retas) - 1; ei >= 0; ei-- {
		e := &f.retas[ei]
		vt := work[e.t]
		if vt == 0 {
			continue
		}
		for ki, k := range e.idx {
			work[k] -= e.val[ki] * vt
		}
	}
	// Lᵀ backward (gather).
	for k := m - 1; k >= 0; k-- {
		v := work[k]
		idx := f.lIdx[k]
		val := f.lVal[k]
		for ki, tgt := range idx {
			v -= val[ki] * work[tgt]
		}
		work[k] = v
	}
	for k := 0; k < m; k++ {
		x[f.pivRow[k]] = work[k]
	}
}

// update applies a Forrest–Tomlin update for a pivot that replaced basis
// position leavePos with the column whose FTRAN ran last (its spike was
// saved by ftran). wLeave is the FTRAN result at the leaving position,
// used for the FT diagonal cross-check d = wLeave·u_tt. Returns false —
// leaving the factorization untouched — when the update would be
// numerically unsafe (singular spike or excessive drift); the caller
// must then refactorize the (already pivoted) basis.
func (f *luFactor) update(leavePos int32, wLeave float64) bool {
	if f.stale {
		return false
	}
	m := f.m
	t := f.colStep[leavePos]
	posT := int(f.stepPos[t])
	spike := f.spike

	// Re-triangularize: move step t to the end of the order and eliminate
	// the old row t against the rows ordered after it. The elimination
	// runs on a scratch accumulator (acc, kept all-zero between calls) so
	// a rejected update leaves the U rows untouched; the order rotation
	// is fused into the same pass — rejection makes the factorization
	// stale, and the caller refactorizes (resetting the order) before
	// any further solve.
	acc := f.acc
	for ki, c := range f.uIdx[t] {
		acc[c] = f.uVal[t][ki]
	}
	d := spike[t]
	var eIdx []int32
	var eVal []float64
	for q := posT; q < m-1; q++ {
		k := f.order[q+1]
		f.order[q] = k
		f.stepPos[k] = int32(q)
		a := acc[k]
		if a == 0 {
			continue
		}
		acc[k] = 0
		if math.Abs(a) <= dropTol {
			continue
		}
		mult := a / f.uDiag[k]
		if math.Abs(mult) <= dropTol {
			continue
		}
		eIdx = append(eIdx, k)
		eVal = append(eVal, mult)
		// Row k's (pending) column-t entry is the spike value.
		d -= mult * spike[k]
		for ki, c := range f.uIdx[k] {
			acc[c] -= mult * f.uVal[k][ki]
		}
	}
	f.order[m-1] = t
	f.stepPos[t] = int32(m - 1)

	// Acceptance: the new diagonal must be solidly nonzero relative to
	// the spike, and must agree with the FT identity d = wLeave·u_tt
	// (both sides computed independently, so their disagreement measures
	// accumulated factorization drift).
	amax := 0.0
	for _, i := range f.spikeNnz {
		if a := math.Abs(spike[i]); a > amax {
			amax = a
		}
	}
	expect := wLeave * f.uDiag[t]
	scale := math.Max(1, math.Max(math.Abs(d), math.Abs(expect)))
	relErr := math.Abs(d-expect) / scale
	if math.Abs(d) < pivotTol || math.Abs(d) < ftRejectRel*amax || relErr > ftDriftReject {
		// U still describes the pre-pivot basis while the caller's
		// bookkeeping has moved on; mark it unusable until the caller's
		// mandatory refactorization.
		f.stale = true
		return false
	}
	if relErr > f.drift {
		f.drift = relErr
	}

	// Commit. Splice the old column t out of the rows that carry it...
	for _, i32 := range f.uColRows[t] {
		i := int(i32)
		if i == int(t) {
			continue
		}
		row := f.uIdx[i]
		for ki, c := range row {
			if c == t {
				last := len(row) - 1
				row[ki] = row[last]
				f.uVal[i][ki] = f.uVal[i][last]
				f.uIdx[i] = row[:last]
				f.uVal[i] = f.uVal[i][:last]
				f.uNnz--
				break
			}
		}
	}
	f.uColRows[t] = f.uColRows[t][:0]
	// ...retire the old row t (its columns' uColRows entries go stale;
	// consumers re-verify against the rows)...
	f.uNnz -= len(f.uIdx[t])
	f.uIdx[t] = f.uIdx[t][:0]
	f.uVal[t] = f.uVal[t][:0]
	// ...splice the spike in as the new column t...
	added := 0
	for _, i32 := range f.spikeNnz {
		i := int(i32)
		if i == int(t) {
			continue
		}
		v := spike[i]
		if math.Abs(v) <= dropTol {
			continue
		}
		f.uIdx[i] = append(f.uIdx[i], t)
		f.uVal[i] = append(f.uVal[i], v)
		f.uColRows[t] = append(f.uColRows[t], i32)
		added++
	}
	f.uNnz += added
	f.uDiag[t] = d
	// ...and record the row eta (the order was already rotated above).
	if len(eIdx) > 0 {
		f.retas = append(f.retas, rEta{t: t, idx: eIdx, val: eVal})
		f.rNnz += len(eIdx)
	}

	f.updates++
	f.statUpdates++
	f.statUpdNnz += added + len(eIdx)
	// Cost balance: every subsequent FTRAN/BTRAN pays for the update
	// fill, so charge the current extra nonzeros once per update (one
	// update ≈ one simplex iteration ≈ a constant number of solves).
	f.extraCost += float64(f.uNnz - f.baseUNnz + f.rNnz)
	return true
}

// shouldRefactor reports whether the update state has grown (in measured
// fill-induced solve cost, absolute fill, or numeric drift) to the point
// where a fresh factorization is cheaper and safer than continuing to
// update.
func (f *luFactor) shouldRefactor() bool {
	if f.stale || f.updates >= ftMaxUpdates {
		return true
	}
	if f.drift > ftDriftRefactor {
		return true
	}
	// Cost balance: extraCost is the cumulative per-iteration solve work
	// (in nonzero visits) the update fill has added since the last
	// refactorization; once it rivals the refactorization's own cost
	// (approximately a small multiple of the factor nonzeros plus the
	// O(m) bookkeeping passes), refactorizing is the cheaper path
	// forward. Sparse update streams (dual reoptimization chains) thus
	// run hundreds of updates per refactorization, while dense-spike
	// streams refactorize early instead of dragging the fill through
	// every FTRAN/BTRAN.
	if f.updates >= ftMinUpdates && f.extraCost > ftCostBalance*float64(f.luNnz+8*f.m) {
		return true
	}
	// Absolute fill bound, independent of amortization: never let the
	// update file outgrow the factorization itself by more than the
	// growth factor (memory, and the per-solve floor).
	return f.uNnz+f.rNnz > ftGrowthFactor*f.luNnz+8*f.m
}
