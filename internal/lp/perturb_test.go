package lp

// perturb_test.go audits the anti-stall bound-perturbation exit paths:
// whatever the perturbation machinery does internally, the reported
// solution — objective, point, and duals — must be priced against the
// pristine bounds. The testPerturb option hook pre-applies perturbation
// rounds so the restore/re-certification code runs deterministically.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickPerturbedSolveMatchesClean solves random feasible LPs with
// bound perturbation forced from the start (including at the restore
// cap, rounds=3, where no further perturbation rounds are allowed) and
// checks the result matches the clean solve: same objective, a point
// within the TRUE bounds, and duals consistent with the stated problem.
func TestQuickPerturbedSolveMatchesClean(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := randFeasibleLP(rng)
		clean, err := Solve(p, Options{})
		if err != nil || clean.Status != StatusOptimal {
			return true // pathological draw; covered elsewhere
		}
		for _, rounds := range []int{1, 3} {
			pert, err := Solve(p, Options{testPerturb: rounds, NoPresolve: true})
			if err != nil {
				t.Logf("seed %d rounds %d: error %v", seed, rounds, err)
				return false
			}
			if pert.Status != StatusOptimal {
				t.Logf("seed %d rounds %d: status %v", seed, rounds, pert.Status)
				return false
			}
			if math.Abs(pert.Objective-clean.Objective) > 1e-7*(1+math.Abs(clean.Objective)) {
				t.Logf("seed %d rounds %d: objective %g != clean %g",
					seed, rounds, pert.Objective, clean.Objective)
				return false
			}
			// The returned point must respect the PRISTINE bounds: a
			// perturbed-bound value leaking out is exactly the bug class
			// this guards against.
			for j := 0; j < p.NumVars(); j++ {
				lo, hi := p.Bounds(VarID(j))
				if pert.X[j] < lo-1e-7 || pert.X[j] > hi+1e-7 {
					t.Logf("seed %d rounds %d: var %d value %g outside [%g, %g]",
						seed, rounds, j, pert.X[j], lo, hi)
					return false
				}
			}
			// Duals must certify optimality against the stated rows: for
			// a maximization, y_i must have the sign its row sense allows.
			for i, d := range pert.Duals {
				switch {
				case p.senses[i] == LE && d < -1e-6:
					t.Logf("seed %d rounds %d: LE row %d has negative dual %g", seed, rounds, i, d)
					return false
				case p.senses[i] == GE && d > 1e-6:
					t.Logf("seed %d rounds %d: GE row %d has positive dual %g", seed, rounds, i, d)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPerturbRestoreCapRecertifies pins the exhausted-perturbation
// case on a degenerate instance: with the maximum perturbation rounds
// pre-applied the solver has no fresh rounds left (pertRound is at its
// cap), so the optimal exit must restore the pristine bounds and
// reoptimize exactly before reporting.
func TestPerturbRestoreCapRecertifies(t *testing.T) {
	// Degenerate transportation-like LP with many ties.
	p := NewProblem(Minimize)
	var vars []VarID
	for i := 0; i < 12; i++ {
		vars = append(vars, p.AddVar("", 0, 2, float64(1+i%3)))
	}
	for i := 0; i < 4; i++ {
		var terms []Term
		for j := 0; j < 3; j++ {
			terms = append(terms, Term{vars[3*i+j], 1})
		}
		p.AddRow(terms, EQ, 2)
	}
	clean, err := Solve(p, Options{})
	if err != nil || clean.Status != StatusOptimal {
		t.Fatalf("clean solve: %v %v", err, clean.Status)
	}
	pert, err := Solve(p, Options{testPerturb: 3, NoPresolve: true})
	if err != nil || pert.Status != StatusOptimal {
		t.Fatalf("perturbed solve: %v %v", err, pert.Status)
	}
	if math.Abs(pert.Objective-clean.Objective) > 1e-6 {
		t.Fatalf("objective %g != clean %g", pert.Objective, clean.Objective)
	}
	for j, v := range pert.X {
		lo, hi := p.Bounds(VarID(j))
		if v < lo-1e-6 || v > hi+1e-6 {
			t.Fatalf("var %d value %g outside pristine bounds [%g, %g]", j, v, lo, hi)
		}
	}
}
