package lp

// pricing.go implements entering-variable selection for the primal
// simplex. Candidates come from a rotating partial-pricing window (so an
// iteration does not touch all n columns; optimality is still exact
// because the scan wraps the full variable space before concluding), and
// candidates are ranked by devex reference-framework weights: each
// column's score is d_j² / γ_j where γ_j approximates the steepest-edge
// norm ‖B⁻¹a_j‖² relative to the reference framework, updated after every
// pivot from the priced pivot row. Devex pricing is what keeps the
// iteration count in check on massively degenerate time-expanded flow
// LPs, where static weights walk long plateaus. Under the Bland
// anti-cycling fallback the pricer degrades to a full least-index scan,
// preserving the termination guarantee.

import "math"

// minPriceWindow is the smallest number of columns examined per pricing
// pass; small problems are effectively fully priced.
const minPriceWindow = 256

// devexReset is the weight growth bound: when a weight passes it, the
// reference framework restarts from the current basis (all weights 1).
const devexReset = 1e10

// devexMinRows gates the dynamic devex update: below this row count the
// pricer keeps its static column-norm weights — the per-pivot BTRAN and
// row pass of the devex recurrence cost more than the iterations they
// save on small problems.
const devexMinRows = 2048

// priceWindow returns the partial-pricing window for n columns: a fixed
// fraction of the variable space, floored at minPriceWindow.
func priceWindow(n int) int {
	w := n / 8
	if w < minPriceWindow {
		w = minPriceWindow
	}
	return w
}

// price selects an entering variable given the duals y. cost may be nil,
// meaning the all-zero cost vector (used by the composite phase 1, whose
// objective lives entirely in the duals). It returns the entering index
// and its direction of motion, or (-1, 0) if no column prices out — which,
// because the scan wraps the full space before giving up, proves
// optimality for the current cost vector.
func (s *simplex) price(cost []float64, y []float64, useBland bool) (int, float64) {
	n := s.nTotal
	if useBland {
		// Bland's rule: first improving column by index.
		for j := 0; j < n; j++ {
			if d, dir := s.priceOne(j, cost, y); dir != 0 && math.Abs(d) > optTol {
				return j, dir
			}
		}
		return -1, 0
	}

	window := priceWindow(n)
	scanned := 0
	enter := -1
	var enterDir float64
	bestScore := 0.0
	j := s.priceCursor
	if j >= n {
		j = 0
	}
	//teccl:allow-ctxcheck bounded: one wrap of the pricing window, scanned++ every iteration up to n
	for scanned < n {
		d, dir := s.priceOne(j, cost, y)
		scanned++
		if dir != 0 {
			// Devex score: d_j² / γ_j, the reference-framework estimate
			// of the objective rate per unit of actual (edge-normalized)
			// movement, so long columns do not dominate entering choices
			// they barely improve.
			if score := d * d / s.gamma[j]; score > bestScore {
				bestScore, enter, enterDir = score, j, dir
			}
		}
		j++
		if j >= n {
			j = 0
		}
		if enter != -1 && scanned >= window {
			break
		}
	}
	s.priceCursor = j
	return enter, enterDir
}

// priceOne computes the reduced cost of column j and the improving
// direction it allows, or dir 0 when j cannot enter.
func (s *simplex) priceOne(j int, cost []float64, y []float64) (float64, float64) {
	st := s.status[j]
	if st == basic {
		return 0, 0
	}
	if boundsFixed(s.lo[j], s.hi[j]) && !math.IsInf(s.lo[j], 0) {
		return 0, 0 // fixed variable can never improve
	}
	d := -s.colDot(j, y)
	if cost != nil {
		d += cost[j]
	}
	switch st {
	case atLower:
		if d < -optTol {
			return d, 1
		}
	case atUpper:
		if d > optTol {
			return d, -1
		}
	case nonbasicFree:
		if d < -optTol {
			return d, 1
		} else if d > optTol {
			return d, -1
		}
	}
	return 0, 0
}

// devexUpdate refreshes the reference weights after a pivot where column
// enter (weight γ_q) replaced basis position leaveRow with FTRAN pivot
// wr. It prices the pivot row ρ = B⁻ᵀe_r against A (the same sparse
// row pass the dual simplex uses) and applies the devex recurrence
// γ_j = max(γ_j, (α_j/α_q)²·γ_q) to every touched nonbasic column; the
// leaving variable, now nonbasic, gets the transformed entering weight.
// Must run against the pre-pivot factorization (before the eta append).
func (s *simplex) devexUpdate(enter, leaveRow int, wr float64) {
	s.buildCSR()
	gq := s.gamma[enter]
	rho := s.y
	for i := range rho {
		rho[i] = 0
	}
	rho[leaveRow] = 1
	s.lu.btran(rho)
	s.pivotRow(rho)
	inv2 := gq / (wr * wr)
	grew := false
	for _, j32 := range s.alphaNnz {
		j := int(j32)
		if j == enter || s.status[j] == basic {
			continue
		}
		a := s.alpha[j]
		if cand := a * a * inv2; cand > s.gamma[j] {
			s.gamma[j] = cand
			if cand > devexReset {
				grew = true
			}
		}
	}
	out := s.basis[leaveRow] // still the pre-pivot occupant
	if w := inv2; w > 1 {
		s.gamma[out] = w
	} else {
		s.gamma[out] = 1
	}
	s.gamma[enter] = 1 // becomes basic; reset for its next nonbasic spell
	if grew || s.gamma[out] > devexReset {
		for j := range s.gamma {
			s.gamma[j] = 1 // new reference framework
		}
	}
}
