package lp

// pricing.go implements entering-variable selection. Instead of scanning
// every column each iteration (Dantzig pricing, O(n·nnz) per iteration),
// the pricer scans a rotating window of candidate columns starting where
// the previous scan left off, and only falls back to a full pass when the
// window yields no improving candidate. Optimality is still exact: the
// solver only concludes "optimal" after a complete wrap of the variable
// space finds no candidate. Under the Bland anti-cycling fallback the
// pricer degrades to a full least-index scan, preserving the termination
// guarantee.

import "math"

// minPriceWindow is the smallest number of columns examined per pricing
// pass; small problems are effectively fully priced.
const minPriceWindow = 256

// priceWindow returns the partial-pricing window for n columns: a fixed
// fraction of the variable space, floored at minPriceWindow.
func priceWindow(n int) int {
	w := n / 8
	if w < minPriceWindow {
		w = minPriceWindow
	}
	return w
}

// price selects an entering variable given the duals y. cost may be nil,
// meaning the all-zero cost vector (used by the composite phase 1, whose
// objective lives entirely in the duals). It returns the entering index
// and its direction of motion, or (-1, 0) if no column prices out — which,
// because the scan wraps the full space before giving up, proves
// optimality for the current cost vector.
func (s *simplex) price(cost []float64, y []float64, useBland bool) (int, float64) {
	n := s.nTotal
	if useBland {
		// Bland's rule: first improving column by index.
		for j := 0; j < n; j++ {
			if d, dir := s.priceOne(j, cost, y); dir != 0 && math.Abs(d) > optTol {
				return j, dir
			}
		}
		return -1, 0
	}

	window := priceWindow(n)
	scanned := 0
	enter := -1
	var enterDir float64
	bestScore := 0.0
	j := s.priceCursor
	if j >= n {
		j = 0
	}
	for scanned < n {
		d, dir := s.priceOne(j, cost, y)
		scanned++
		if dir != 0 {
			// Scale-invariant score (static devex-style reference weights):
			// d_j^2 / ||a_j||^2 rather than raw |d_j|, so long columns do
			// not dominate entering choices they barely improve.
			if score := d * d / s.colWeight[j]; score > bestScore {
				bestScore, enter, enterDir = score, j, dir
			}
		}
		j++
		if j >= n {
			j = 0
		}
		if enter != -1 && scanned >= window {
			break
		}
	}
	s.priceCursor = j
	return enter, enterDir
}

// priceOne computes the reduced cost of column j and the improving
// direction it allows, or dir 0 when j cannot enter.
func (s *simplex) priceOne(j int, cost []float64, y []float64) (float64, float64) {
	st := s.status[j]
	if st == basic {
		return 0, 0
	}
	if s.lo[j] == s.hi[j] && !math.IsInf(s.lo[j], 0) {
		return 0, 0 // fixed variable can never improve
	}
	d := -s.colDot(j, y)
	if cost != nil {
		d += cost[j]
	}
	switch st {
	case atLower:
		if d < -optTol {
			return d, 1
		}
	case atUpper:
		if d > optTol {
			return d, -1
		}
	case nonbasicFree:
		if d < -optTol {
			return d, 1
		} else if d > optTol {
			return d, -1
		}
	}
	return 0, 0
}
