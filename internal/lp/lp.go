// Package lp implements a bounded-variable revised simplex solver for
// linear programs. It is the solver substrate for TE-CCL: the paper uses
// Gurobi, which has no Go port, so this package provides an exact
// replacement built on the standard library only.
//
// Problems are stated as
//
//	maximize (or minimize)  c'x
//	subject to              A x  {<=, =, >=}  b
//	                        l <= x <= u
//
// with a sparse A. Solve uses a bounded-variable revised simplex whose
// basis is held as a sparse LU factorization (factor.go): Markowitz-ordered
// elimination with singleton peeling exploits the near-triangular structure
// of time-expanded flow bases, Forrest–Tomlin updates carry the
// factorization between refactorizations (the pivot's spike is spliced
// into U and the replaced row collapses to a compact row eta, so the
// update file grows with actual fill, and refactorization triggers on
// measured nonzero growth and numeric drift rather than a fixed pivot
// count), and FTRAN/BTRAN run in time proportional to the factor nonzeros
// rather than O(m²). Entering variables come from a rotating
// partial-pricing scan (pricing.go) so an iteration does not touch all n
// columns, with Bland's rule as the anti-cycling fallback. Feasibility is
// reached by a composite phase 1 that minimizes the bound violations of
// the basic variables directly — no artificial variables — which is also
// what makes warm starts cheap: Solve can resume from a Basis snapshot of
// an earlier solve (see Options.WarmStart), as branch-and-bound and
// re-solve loops do, or crash-start from a structural guess (see
// Options.Crash).
package lp

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"
)

// Inf is the bound value used for unbounded variables.
var Inf = math.Inf(1)

// Sense is the relation of a constraint row.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // <=
	GE              // >=
	EQ              // =
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Direction is the optimization direction.
type Direction int8

// Optimization directions.
const (
	Maximize Direction = iota
	Minimize
)

// VarID identifies a variable within a Problem.
type VarID int32

// Term is one coefficient of a constraint row.
type Term struct {
	Var   VarID
	Coeff float64
}

// Problem is a linear program under construction. The zero value is an
// empty maximization problem ready for use.
type Problem struct {
	Dir Direction

	names []string
	lo    []float64
	hi    []float64
	obj   []float64

	rows   [][]Term
	senses []Sense
	rhs    []float64

	// scratch is the reusable sort/merge buffer of combineTerms, so the
	// model-build hot path (AddRow per constraint, thousands per A* round)
	// performs exactly one allocation per row: the stored row itself.
	scratch []Term
}

// NewProblem returns an empty problem with the given direction.
func NewProblem(dir Direction) *Problem {
	return &Problem{Dir: dir}
}

// NumVars reports the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.lo) }

// NumRows reports the number of constraint rows added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddVar adds a variable with bounds [lo, hi] and objective coefficient
// obj. Use -Inf/Inf for unbounded sides. The name is used only for
// diagnostics and may be empty.
func (p *Problem) AddVar(name string, lo, hi, obj float64) VarID {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable %q has lo %g > hi %g", name, lo, hi))
	}
	p.names = append(p.names, name)
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	p.obj = append(p.obj, obj)
	return VarID(len(p.lo) - 1)
}

// SetObj replaces the objective coefficient of v.
func (p *Problem) SetObj(v VarID, obj float64) { p.obj[v] = obj }

// Obj returns the objective coefficient of v.
func (p *Problem) Obj(v VarID) float64 { return p.obj[v] }

// SetBounds replaces the bounds of v.
func (p *Problem) SetBounds(v VarID, lo, hi float64) {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable %q set to lo %g > hi %g", p.names[v], lo, hi))
	}
	p.lo[v] = lo
	p.hi[v] = hi
}

// Bounds returns the bounds of v.
func (p *Problem) Bounds(v VarID) (lo, hi float64) { return p.lo[v], p.hi[v] }

// Name returns the diagnostic name of v.
func (p *Problem) Name(v VarID) string { return p.names[v] }

// SetRHS replaces the right-hand side of row r. Together with SetBounds
// this is the whole dual-feasible edit surface: changing b or the
// variable bounds leaves the costs and the matrix — and therefore the
// incumbent basis's dual feasibility — intact, so a dual-simplex warm
// start from that basis reoptimizes in a handful of pivots.
func (p *Problem) SetRHS(r int, rhs float64) { p.rhs[r] = rhs }

// RHS returns the right-hand side of row r.
func (p *Problem) RHS(r int) float64 { return p.rhs[r] }

// AddRow adds a constraint row. Terms with duplicate variables are summed.
// Returns the row index. The terms slice is not retained (callers may
// reuse it); the stored row holds the merged terms in variable order.
func (p *Problem) AddRow(terms []Term, sense Sense, rhs float64) int {
	row := p.combineTerms(terms)
	p.rows = append(p.rows, row)
	p.senses = append(p.senses, sense)
	p.rhs = append(p.rhs, rhs)
	return len(p.rows) - 1
}

// AppendToRow merges additional terms into existing row r — the
// column-append counterpart of SetBounds/SetRHS for warm model growth:
// columns created by a later AddVar are wired into the rows they
// participate in without rebuilding the model. The stored row is
// replaced with a fresh merged slice, never mutated in place, so clones
// that share the previous term slice (see Clone's write-once contract)
// are unaffected. Note that unlike SetBounds/SetRHS this edits the
// matrix: a basis warm-started across an AppendToRow is only safe if
// the appended variables are nonbasic (see Basis.Extended).
func (p *Problem) AppendToRow(r int, terms []Term) {
	if len(terms) == 0 {
		return
	}
	merged := make([]Term, 0, len(p.rows[r])+len(terms))
	merged = append(merged, p.rows[r]...)
	merged = append(merged, terms...)
	p.rows[r] = p.combineTerms(merged)
}

// combineTerms merges duplicate variables and drops zero coefficients,
// returning a fresh exact-size slice in variable order. The sort+merge
// runs in place on a reusable scratch buffer — no map, and the only
// allocation is the stored row. Model builders emit terms in near-variable
// order, so the insertion sort is effectively linear; genuinely shuffled
// long rows fall back to sort.Slice.
func (p *Problem) combineTerms(terms []Term) []Term {
	if len(terms) == 0 {
		return nil
	}
	if len(terms) == 1 {
		if terms[0].Coeff == 0 {
			return nil
		}
		return []Term{terms[0]}
	}
	sc := p.scratch[:0]
	sc = append(sc, terms...)
	sorted := true
	for i := 1; i < len(sc); i++ {
		if sc[i-1].Var > sc[i].Var {
			sorted = false
			break
		}
	}
	if !sorted {
		if len(sc) > 64 {
			sort.Slice(sc, func(a, b int) bool { return sc[a].Var < sc[b].Var })
		} else {
			for i := 1; i < len(sc); i++ {
				t := sc[i]
				j := i - 1
				//teccl:allow-ctxcheck bounded: insertion-sort inner shift, j strictly decreases to 0
				for j >= 0 && sc[j].Var > t.Var {
					sc[j+1] = sc[j]
					j--
				}
				sc[j+1] = t
			}
		}
	}
	w := 0
	for i := 0; i < len(sc); {
		v := sc[i].Var
		c := sc[i].Coeff
		for i++; i < len(sc) && sc[i].Var == v; i++ {
			c += sc[i].Coeff
		}
		if c != 0 {
			sc[w] = Term{Var: v, Coeff: c}
			w++
		}
	}
	p.scratch = sc[:0]
	if w == 0 {
		return nil
	}
	out := make([]Term, w)
	copy(out, sc[:w])
	return out
}

// Status is the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	StatusOptimal Status = iota
	StatusInfeasible
	StatusUnbounded
	StatusIterLimit
	StatusNumericalError
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration limit"
	case StatusNumericalError:
		return "numerical error"
	}
	return "unknown"
}

// BasisStatus describes where a variable sits in a Basis snapshot.
type BasisStatus int8

// Basis statuses.
const (
	BasisAtLower BasisStatus = iota // nonbasic at its lower bound
	BasisAtUpper                    // nonbasic at its upper bound
	BasisBasic                      // in the basis
	BasisFree                       // nonbasic free variable (at 0)
)

// Basis is a compact snapshot of a simplex basis, sufficient to resume a
// later solve of the same problem (or a closely related one, e.g. after a
// bound change in branch-and-bound) from where this one finished. It is
// immutable once returned and safe to share between solves.
type Basis struct {
	Vars []BasisStatus // structural variables, in AddVar order
	Rows []BasisStatus // row slacks, in AddRow order
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	Objective float64 // objective value in the problem's direction
	// X holds one value per variable, in AddVar order. It is non-nil only
	// when the solve produced a point: StatusOptimal, or StatusIterLimit
	// when the budget expired after feasibility was reached (a limit hit
	// during the feasibility phase yields no point).
	X          []float64
	Iterations int
	// Duals holds one dual value per constraint row, in AddRow order and
	// in the problem's stated direction, populated when the solve reaches
	// an optimal basis. Rows presolve proved redundant report a zero
	// dual; rows presolve folded away but that bind at the optimum
	// (forcing rows, active singleton bounds, doubleton substitutions)
	// get their duals reconstructed during postsolve.
	Duals []float64
	// Refactorizations counts basis factorizations (including the initial
	// one), a measure of numerical churn alongside Iterations.
	Refactorizations int
	// FTUpdates counts Forrest–Tomlin basis updates applied between
	// refactorizations; Iterations-FTUpdates pivots were absorbed by a
	// refactorization instead. UpdateNnz is the total nonzeros the update
	// files accumulated (spike fill plus row-eta entries) — the memory
	// and FTRAN/BTRAN cost the fill-aware refactorization trigger bounds.
	FTUpdates int
	UpdateNnz int
	// Basis is the final basis of the solve, whatever its status; pass it
	// as Options.WarmStart to a later solve to resume from it. Even an
	// infeasible or out-of-budget solve's basis is a useful hint for a
	// related problem (e.g. a branch-and-bound sibling).
	Basis *Basis
}

// Value returns the solved value of v.
func (s *Solution) Value(v VarID) float64 { return s.X[v] }

// Method selects the simplex variant driving a solve.
type Method int8

const (
	// MethodAuto picks per solve: the dual simplex when a warm-start
	// basis prices out dual feasible (the branch-and-bound reoptimization
	// case — a parent optimum stays dual feasible after a bound change),
	// the primal simplex otherwise.
	MethodAuto Method = iota
	// MethodPrimal forces the primal simplex.
	MethodPrimal
	// MethodDual asks for the dual simplex. Boxed nonbasic variables are
	// bound-flipped to restore dual feasibility of the starting basis
	// where possible; if no dual-feasible start exists (or the dual
	// stalls), the solve falls back to the primal method, so MethodDual
	// is always safe to request.
	MethodDual
)

// Options tunes the solver. The zero value uses defaults.
type Options struct {
	// MaxIter caps simplex iterations; 0 means max(20000, 60*rows).
	MaxIter int
	// Deadline, when non-zero, stops the solve with StatusIterLimit once
	// the wall clock passes it (checked periodically between iterations).
	Deadline time.Time
	// Context, when non-nil, stops the solve with StatusIterLimit once the
	// context is done (cancelled or past its deadline), checked at the
	// same cadence as Deadline. The caller distinguishes an interrupt from
	// a genuine iteration limit by inspecting Context.Err() afterwards.
	Context context.Context
	// WarmStart, when non-nil, resumes from a basis snapshot of an
	// earlier solve instead of the all-slack basis. Dimension mismatches
	// are ignored (the solve falls back to a cold start), and bases that
	// are stale — singular after problem edits, or primal infeasible
	// after bound changes — are repaired or re-driven to feasibility by
	// the composite phase 1, so any snapshot of a related problem is a
	// safe hint.
	WarmStart *Basis
	// Crash, when non-nil and WarmStart is absent, seeds the starting
	// basis from a structural guess instead of the all-slack basis — a
	// "crash basis", typically built from a combinatorial heuristic's
	// support (the core layer derives one from the greedy schedule's flow
	// support). It is installed under the same contract as WarmStart
	// (statuses sanitized, short bases padded with slacks, singular bases
	// repaired), but it is only a phase-1 seed: it never routes the solve
	// through the dual-reoptimization path the way a warm basis does.
	Crash *Basis
	// Method selects the simplex variant; the default MethodAuto uses
	// the dual simplex exactly when a warm-start basis is dual feasible.
	Method Method
	// testPerturb pre-applies this many anti-stall bound-perturbation
	// rounds right after the basis is installed, forcing the solve to run
	// on shifted bounds and exit through the restore/re-certification
	// paths. Test hook only (unexported; settable from within the
	// package).
	testPerturb int
	// NoPresolve disables the presolve/scaling layer and solves the
	// problem as stated. Presolve is on by default: fixed variables,
	// empty/singleton/forcing/redundant rows, and safe doubleton
	// substitutions are eliminated and the remaining matrix is
	// equilibrated before the simplex runs; the solution (X, Duals, and
	// Basis) is mapped back to the original problem afterwards.
	NoPresolve bool
}

// Solve optimizes the problem. The problem is not modified.
func Solve(p *Problem, opt Options) (*Solution, error) {
	if !opt.NoPresolve {
		return solvePresolved(p, opt)
	}
	s := newSimplex(p, opt)
	return s.solve()
}
