// Package lp implements a bounded-variable revised simplex solver for
// linear programs. It is the solver substrate for TE-CCL: the paper uses
// Gurobi, which has no Go port, so this package provides an exact
// replacement built on the standard library only.
//
// Problems are stated as
//
//	maximize (or minimize)  c'x
//	subject to              A x  {<=, =, >=}  b
//	                        l <= x <= u
//
// with a sparse A. Solve uses a two-phase bounded-variable revised simplex
// with a dense product-form basis inverse, periodic refactorization, and
// Bland's rule as an anti-cycling fallback.
package lp

import (
	"fmt"
	"math"
	"time"
)

// Inf is the bound value used for unbounded variables.
var Inf = math.Inf(1)

// Sense is the relation of a constraint row.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // <=
	GE              // >=
	EQ              // =
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Direction is the optimization direction.
type Direction int8

// Optimization directions.
const (
	Maximize Direction = iota
	Minimize
)

// VarID identifies a variable within a Problem.
type VarID int32

// Term is one coefficient of a constraint row.
type Term struct {
	Var   VarID
	Coeff float64
}

// Problem is a linear program under construction. The zero value is an
// empty maximization problem ready for use.
type Problem struct {
	Dir Direction

	names []string
	lo    []float64
	hi    []float64
	obj   []float64

	rows   [][]Term
	senses []Sense
	rhs    []float64
}

// NewProblem returns an empty problem with the given direction.
func NewProblem(dir Direction) *Problem {
	return &Problem{Dir: dir}
}

// NumVars reports the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.lo) }

// NumRows reports the number of constraint rows added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddVar adds a variable with bounds [lo, hi] and objective coefficient
// obj. Use -Inf/Inf for unbounded sides. The name is used only for
// diagnostics and may be empty.
func (p *Problem) AddVar(name string, lo, hi, obj float64) VarID {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable %q has lo %g > hi %g", name, lo, hi))
	}
	p.names = append(p.names, name)
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	p.obj = append(p.obj, obj)
	return VarID(len(p.lo) - 1)
}

// SetObj replaces the objective coefficient of v.
func (p *Problem) SetObj(v VarID, obj float64) { p.obj[v] = obj }

// Obj returns the objective coefficient of v.
func (p *Problem) Obj(v VarID) float64 { return p.obj[v] }

// SetBounds replaces the bounds of v.
func (p *Problem) SetBounds(v VarID, lo, hi float64) {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable %q set to lo %g > hi %g", p.names[v], lo, hi))
	}
	p.lo[v] = lo
	p.hi[v] = hi
}

// Bounds returns the bounds of v.
func (p *Problem) Bounds(v VarID) (lo, hi float64) { return p.lo[v], p.hi[v] }

// Name returns the diagnostic name of v.
func (p *Problem) Name(v VarID) string { return p.names[v] }

// AddRow adds a constraint row. Terms with duplicate variables are summed.
// Returns the row index.
func (p *Problem) AddRow(terms []Term, sense Sense, rhs float64) int {
	row := combineTerms(terms)
	p.rows = append(p.rows, row)
	p.senses = append(p.senses, sense)
	p.rhs = append(p.rhs, rhs)
	return len(p.rows) - 1
}

// combineTerms merges duplicate variables and drops zero coefficients.
func combineTerms(terms []Term) []Term {
	if len(terms) < 2 {
		out := make([]Term, 0, len(terms))
		for _, t := range terms {
			if t.Coeff != 0 {
				out = append(out, t)
			}
		}
		return out
	}
	seen := make(map[VarID]int, len(terms))
	out := make([]Term, 0, len(terms))
	for _, t := range terms {
		if i, ok := seen[t.Var]; ok {
			out[i].Coeff += t.Coeff
			continue
		}
		seen[t.Var] = len(out)
		out = append(out, t)
	}
	w := 0
	for _, t := range out {
		if t.Coeff != 0 {
			out[w] = t
			w++
		}
	}
	return out[:w]
}

// Status is the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	StatusOptimal Status = iota
	StatusInfeasible
	StatusUnbounded
	StatusIterLimit
	StatusNumericalError
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration limit"
	case StatusNumericalError:
		return "numerical error"
	}
	return "unknown"
}

// Solution is the result of a solve.
type Solution struct {
	Status     Status
	Objective  float64   // objective value in the problem's direction
	X          []float64 // one value per variable, in AddVar order
	Iterations int
}

// Value returns the solved value of v.
func (s *Solution) Value(v VarID) float64 { return s.X[v] }

// Options tunes the solver. The zero value uses defaults.
type Options struct {
	// MaxIter caps simplex iterations; 0 means max(20000, 60*rows).
	MaxIter int
	// Deadline, when non-zero, stops the solve with StatusIterLimit once
	// the wall clock passes it (checked periodically between iterations).
	Deadline time.Time
}

// Solve optimizes the problem. The problem is not modified.
func Solve(p *Problem, opt Options) (*Solution, error) {
	s := newSimplex(p, opt)
	return s.solve()
}
