package lp

import (
	"math"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestTrivialBounds(t *testing.T) {
	// max 3x with 0 <= x <= 5 and no rows.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 5, 3)
	sol := solveOK(t, p)
	if !almostEq(sol.Objective, 15) || !almostEq(sol.Value(x), 5) {
		t.Fatalf("got obj %g x %g, want 15, 5", sol.Objective, sol.Value(x))
	}
}

func TestTwoVarLP(t *testing.T) {
	// Classic: max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
	// Optimum (2, 6) with value 36.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 3)
	y := p.AddVar("y", 0, Inf, 5)
	p.AddRow([]Term{{x, 1}}, LE, 4)
	p.AddRow([]Term{{y, 2}}, LE, 12)
	p.AddRow([]Term{{x, 3}, {y, 2}}, LE, 18)
	sol := solveOK(t, p)
	if !almostEq(sol.Objective, 36) {
		t.Fatalf("objective = %g, want 36", sol.Objective)
	}
	if !almostEq(sol.Value(x), 2) || !almostEq(sol.Value(y), 6) {
		t.Fatalf("solution = (%g, %g), want (2, 6)", sol.Value(x), sol.Value(y))
	}
}

func TestMinimize(t *testing.T) {
	// min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> x=1.6, y=1.2, obj 2.8.
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, Inf, 1)
	y := p.AddVar("y", 0, Inf, 1)
	p.AddRow([]Term{{x, 1}, {y, 2}}, GE, 4)
	p.AddRow([]Term{{x, 3}, {y, 1}}, GE, 6)
	sol := solveOK(t, p)
	if !almostEq(sol.Objective, 2.8) {
		t.Fatalf("objective = %g, want 2.8", sol.Objective)
	}
}

func TestEquality(t *testing.T) {
	// max x + 2y s.t. x + y = 10, x - y = 2 -> (6, 4), obj 14.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 1)
	y := p.AddVar("y", 0, Inf, 2)
	p.AddRow([]Term{{x, 1}, {y, 1}}, EQ, 10)
	p.AddRow([]Term{{x, 1}, {y, -1}}, EQ, 2)
	sol := solveOK(t, p)
	if !almostEq(sol.Value(x), 6) || !almostEq(sol.Value(y), 4) {
		t.Fatalf("solution = (%g, %g), want (6, 4)", sol.Value(x), sol.Value(y))
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 1)
	p.AddRow([]Term{{x, 1}}, GE, 5)
	p.AddRow([]Term{{x, 1}}, LE, 3)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 1)
	y := p.AddVar("y", 0, Inf, 0)
	p.AddRow([]Term{{x, 1}, {y, -1}}, LE, 1)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// max x + y with -3 <= x <= -1, -2 <= y <= 4, x + y <= 1.
	// Optimum: x = -1, y = 2 (row binds), obj 1.
	p := NewProblem(Maximize)
	x := p.AddVar("x", -3, -1, 1)
	y := p.AddVar("y", -2, 4, 1)
	p.AddRow([]Term{{x, 1}, {y, 1}}, LE, 1)
	sol := solveOK(t, p)
	if !almostEq(sol.Objective, 1) {
		t.Fatalf("objective = %g, want 1", sol.Objective)
	}
	if !almostEq(sol.Value(x), -1) {
		t.Fatalf("x = %g, want -1", sol.Value(x))
	}
}

func TestFreeVariable(t *testing.T) {
	// min x with x free and x >= -7 as a row: optimum -7.
	p := NewProblem(Minimize)
	x := p.AddVar("x", math.Inf(-1), Inf, 1)
	p.AddRow([]Term{{x, 1}}, GE, -7)
	sol := solveOK(t, p)
	if !almostEq(sol.Objective, -7) {
		t.Fatalf("objective = %g, want -7", sol.Objective)
	}
}

func TestFixedVariable(t *testing.T) {
	// y fixed at 3; max x s.t. x + y <= 5 -> x = 2.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 1)
	y := p.AddVar("y", 3, 3, 0)
	p.AddRow([]Term{{x, 1}, {y, 1}}, LE, 5)
	sol := solveOK(t, p)
	if !almostEq(sol.Value(x), 2) || !almostEq(sol.Value(y), 3) {
		t.Fatalf("solution = (%g, %g), want (2, 3)", sol.Value(x), sol.Value(y))
	}
}

func TestGEWithSlackStart(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x <= 8, y <= 8 -> (8, 2), obj 22.
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, 8, 2)
	y := p.AddVar("y", 0, 8, 3)
	p.AddRow([]Term{{x, 1}, {y, 1}}, GE, 10)
	sol := solveOK(t, p)
	if !almostEq(sol.Objective, 22) {
		t.Fatalf("objective = %g, want 22", sol.Objective)
	}
}

func TestDuplicateTermsCombined(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 1)
	// x + x <= 6 should behave as 2x <= 6.
	p.AddRow([]Term{{x, 1}, {x, 1}}, LE, 6)
	sol := solveOK(t, p)
	if !almostEq(sol.Value(x), 3) {
		t.Fatalf("x = %g, want 3", sol.Value(x))
	}
}

func TestDegenerateLP(t *testing.T) {
	// A classically degenerate instance (multiple bases at the optimum).
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 2)
	y := p.AddVar("y", 0, Inf, 1)
	p.AddRow([]Term{{x, 1}, {y, 1}}, LE, 4)
	p.AddRow([]Term{{x, 1}}, LE, 4)
	p.AddRow([]Term{{y, 1}}, LE, 4)
	p.AddRow([]Term{{x, 1}, {y, 2}}, LE, 8)
	sol := solveOK(t, p)
	if !almostEq(sol.Objective, 8) {
		t.Fatalf("objective = %g, want 8", sol.Objective)
	}
}

func TestBeale(t *testing.T) {
	// Beale's cycling example; must terminate via anti-cycling.
	p := NewProblem(Minimize)
	x1 := p.AddVar("x1", 0, Inf, -0.75)
	x2 := p.AddVar("x2", 0, Inf, 150)
	x3 := p.AddVar("x3", 0, Inf, -0.02)
	x4 := p.AddVar("x4", 0, Inf, 6)
	p.AddRow([]Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	p.AddRow([]Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	p.AddRow([]Term{{x3, 1}}, LE, 1)
	sol := solveOK(t, p)
	if !almostEq(sol.Objective, -0.05) {
		t.Fatalf("objective = %g, want -0.05", sol.Objective)
	}
}

func TestTransportation(t *testing.T) {
	// 2 supplies x 3 demands balanced transportation problem.
	supply := []float64{20, 30}
	demand := []float64{10, 25, 15}
	cost := [][]float64{{2, 4, 5}, {3, 1, 7}}
	p := NewProblem(Minimize)
	vars := make([][]VarID, 2)
	for i := range vars {
		vars[i] = make([]VarID, 3)
		for j := range vars[i] {
			vars[i][j] = p.AddVar("", 0, Inf, cost[i][j])
		}
	}
	for i := 0; i < 2; i++ {
		terms := make([]Term, 3)
		for j := 0; j < 3; j++ {
			terms[j] = Term{vars[i][j], 1}
		}
		p.AddRow(terms, EQ, supply[i])
	}
	for j := 0; j < 3; j++ {
		terms := make([]Term, 2)
		for i := 0; i < 2; i++ {
			terms[i] = Term{vars[i][j], 1}
		}
		p.AddRow(terms, EQ, demand[j])
	}
	sol := solveOK(t, p)
	// Optimum (verified by exhaustive enumeration): x00=5, x02=15,
	// x10=5, x11=25 with cost 10 + 75 + 15 + 25 = 125.
	if !almostEq(sol.Objective, 125) {
		t.Fatalf("objective = %g, want 125", sol.Objective)
	}
}

func TestMaxFlowAsLP(t *testing.T) {
	// Max flow s->a->t, s->b->t with caps 3, 2 and cross edge a->b cap 10.
	// Max flow = 5.
	p := NewProblem(Maximize)
	sa := p.AddVar("sa", 0, 3, 0)
	sb := p.AddVar("sb", 0, 2, 0)
	at := p.AddVar("at", 0, 3, 0)
	bt := p.AddVar("bt", 0, 2, 0)
	ab := p.AddVar("ab", 0, 10, 0)
	// Objective: flow out of s.
	p.SetObj(sa, 1)
	p.SetObj(sb, 1)
	// Conservation at a and b.
	p.AddRow([]Term{{sa, 1}, {at, -1}, {ab, -1}}, EQ, 0)
	p.AddRow([]Term{{sb, 1}, {ab, 1}, {bt, -1}}, EQ, 0)
	sol := solveOK(t, p)
	if !almostEq(sol.Objective, 5) {
		t.Fatalf("max flow = %g, want 5", sol.Objective)
	}
}

// TestSolutionRespectsConstraints re-checks the returned point against every
// row and bound for a moderately sized random-ish LP.
func TestSolutionRespectsConstraints(t *testing.T) {
	p := NewProblem(Maximize)
	const n = 30
	vars := make([]VarID, n)
	for i := range vars {
		vars[i] = p.AddVar("", 0, float64(1+i%5), float64((i*7)%11)-3)
	}
	for r := 0; r < 40; r++ {
		var terms []Term
		for i := 0; i < n; i++ {
			c := float64(((r+1)*(i+3))%7) - 3
			if c != 0 {
				terms = append(terms, Term{vars[i], c})
			}
		}
		sense := []Sense{LE, GE, EQ}[r%3]
		rhs := float64((r*13)%17 + 5)
		if sense == GE {
			rhs = -rhs
		}
		if sense == EQ {
			rhs = 0
		}
		p.AddRow(terms, sense, rhs)
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusOptimal {
		t.Skipf("instance not optimal: %v", sol.Status)
	}
	checkFeasible(t, p, sol.X, 1e-5)
}

// checkFeasible verifies x against all bounds and rows of p.
func checkFeasible(t *testing.T, p *Problem, x []float64, tol float64) {
	t.Helper()
	for j := 0; j < p.NumVars(); j++ {
		if x[j] < p.lo[j]-tol || x[j] > p.hi[j]+tol {
			t.Errorf("var %d = %g outside [%g, %g]", j, x[j], p.lo[j], p.hi[j])
		}
	}
	for r, row := range p.rows {
		var lhs float64
		for _, tm := range row {
			lhs += tm.Coeff * x[tm.Var]
		}
		switch p.senses[r] {
		case LE:
			if lhs > p.rhs[r]+tol {
				t.Errorf("row %d: %g > %g", r, lhs, p.rhs[r])
			}
		case GE:
			if lhs < p.rhs[r]-tol {
				t.Errorf("row %d: %g < %g", r, lhs, p.rhs[r])
			}
		case EQ:
			if math.Abs(lhs-p.rhs[r]) > tol {
				t.Errorf("row %d: %g != %g", r, lhs, p.rhs[r])
			}
		}
	}
}

func TestIterationLimit(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 10, 1)
	y := p.AddVar("y", 0, 10, 1)
	p.AddRow([]Term{{x, 1}, {y, 1}}, LE, 12)
	sol, err := Solve(p, Options{MaxIter: 1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusOptimal && sol.Status != StatusIterLimit {
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatal("sense strings wrong")
	}
	if Sense(9).String() != "?" {
		t.Fatal("unknown sense string wrong")
	}
}

func TestStatusString(t *testing.T) {
	want := map[Status]string{
		StatusOptimal:        "optimal",
		StatusInfeasible:     "infeasible",
		StatusUnbounded:      "unbounded",
		StatusIterLimit:      "iteration limit",
		StatusNumericalError: "numerical error",
	}
	for st, w := range want {
		if st.String() != w {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), w)
		}
	}
	if Status(99).String() != "unknown" {
		t.Error("unknown status string wrong")
	}
}
