package lp

// factor_test.go exercises the Forrest–Tomlin update machinery directly:
// long random pivot sequences must leave FTRAN/BTRAN agreeing with the
// true basis matrix (the property a fresh factorization would give),
// dense spikes must trip the fill-aware refactorization trigger instead
// of ballooning the update file, and numerically singular spikes must be
// rejected without corrupting the factorization.

import (
	"math"
	"math/rand"
	"testing"
)

// randBasisCols draws a random sparse nonsingular-ish m×m column set:
// a shuffled diagonal plus random off-diagonal entries.
func randBasisCols(rng *rand.Rand, m int, density float64) ([][]int32, [][]float64) {
	colIdx := make([][]int32, m)
	colVal := make([][]float64, m)
	perm := rng.Perm(m)
	for pos := 0; pos < m; pos++ {
		seen := map[int32]bool{}
		// Guaranteed structural nonsingularity via the permuted diagonal.
		d := int32(perm[pos])
		colIdx[pos] = append(colIdx[pos], d)
		colVal[pos] = append(colVal[pos], 1+rng.Float64()*4)
		seen[d] = true
		for i := 0; i < m; i++ {
			if rng.Float64() >= density || seen[int32(i)] {
				continue
			}
			colIdx[pos] = append(colIdx[pos], int32(i))
			colVal[pos] = append(colVal[pos], rng.NormFloat64())
			seen[int32(i)] = true
		}
	}
	return colIdx, colVal
}

// randSparseCol draws one random column with a strong anchor entry.
func randSparseCol(rng *rand.Rand, m int, density float64) ([]int32, []float64) {
	var idx []int32
	var val []float64
	seen := map[int32]bool{}
	a := int32(rng.Intn(m))
	idx = append(idx, a)
	val = append(val, 1+rng.Float64()*4)
	seen[a] = true
	for i := 0; i < m; i++ {
		if rng.Float64() >= density || seen[int32(i)] {
			continue
		}
		idx = append(idx, int32(i))
		val = append(val, rng.NormFloat64())
		seen[int32(i)] = true
	}
	return idx, val
}

// residFtran checks B·w = a for w = ftran(a) against the raw columns.
func residFtran(t *testing.T, colIdx [][]int32, colVal [][]float64, f *luFactor, rng *rand.Rand, tag string) {
	t.Helper()
	m := f.m
	a := make([]float64, m)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	w := append([]float64(nil), a...)
	f.ftran(w)
	resid := append([]float64(nil), a...)
	for pos := 0; pos < m; pos++ {
		if w[pos] == 0 {
			continue
		}
		for k, i := range colIdx[pos] {
			resid[i] -= colVal[pos][k] * w[pos]
		}
	}
	wmax := 0.0
	for _, v := range w {
		if a := math.Abs(v); a > wmax {
			wmax = a
		}
	}
	for i, r := range resid {
		if math.Abs(r) > 1e-7*(10+wmax) {
			t.Fatalf("%s: FTRAN residual %g at row %d (wmax %g)", tag, r, i, wmax)
		}
	}
}

// residBtran checks Bᵀ·y = c for y = btran(c) against the raw columns.
func residBtran(t *testing.T, colIdx [][]int32, colVal [][]float64, f *luFactor, rng *rand.Rand, tag string) {
	t.Helper()
	m := f.m
	c := make([]float64, m)
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	y := append([]float64(nil), c...)
	f.btran(y)
	ymax := 0.0
	for _, v := range y {
		if a := math.Abs(v); a > ymax {
			ymax = a
		}
	}
	for pos := 0; pos < m; pos++ {
		var dot float64
		for k, i := range colIdx[pos] {
			dot += colVal[pos][k] * y[i]
		}
		if math.Abs(dot-c[pos]) > 1e-7*(10+ymax) {
			t.Fatalf("%s: BTRAN residual %g at position %d (ymax %g)", tag, dot-c[pos], pos, ymax)
		}
	}
}

// TestFTUpdateMatchesFreshFactorization drives long random pivot
// sequences through the Forrest–Tomlin update path and asserts, after
// every pivot, that FTRAN/BTRAN still solve against the true (mutated)
// basis — exactly what a fresh full factorization would give.
func TestFTUpdateMatchesFreshFactorization(t *testing.T) {
	for _, m := range []int{5, 17, 60} {
		rng := rand.New(rand.NewSource(int64(m) * 7919))
		colIdx, colVal := randBasisCols(rng, m, 3.0/float64(m))
		f := newLUFactor(m)
		if fr, _ := f.factorize(colIdx, colVal); fr != nil {
			t.Fatalf("m=%d: initial factorization failed", m)
		}
		refactors := 0
		for step := 0; step < 40*m; step++ {
			pos := rng.Intn(m)
			nIdx, nVal := randSparseCol(rng, m, 2.0/float64(m))
			// FTRAN the candidate column (saves the spike), as the
			// simplex drivers do before a pivot.
			w := make([]float64, m)
			for k, i := range nIdx {
				w[i] += nVal[k]
			}
			f.ftranPivot(w)
			if math.Abs(w[pos]) < 1e-4 {
				// Too close to singular; the drivers' ratio tests prefer
				// large pivots, so only healthy replacements are realistic.
				continue
			}
			colIdx[pos], colVal[pos] = nIdx, nVal
			if !f.update(int32(pos), w[pos]) || f.shouldRefactor() {
				if fr, _ := f.factorize(colIdx, colVal); fr != nil {
					t.Fatalf("m=%d step=%d: refactorization failed", m, step)
				}
				refactors++
			}
			residFtran(t, colIdx, colVal, f, rng, "after update")
			residBtran(t, colIdx, colVal, f, rng, "after update")
		}
		if f.statUpdates == 0 {
			t.Fatalf("m=%d: no FT updates exercised", m)
		}
		t.Logf("m=%d: %d updates, %d refactorizations", m, f.statUpdates, refactors)
	}
}

// TestFTDenseSpikeTriggersRefactor is the regression test for the old
// count-only trigger: a dense instance whose FTRAN spikes splice large
// columns into U must trip shouldRefactor through the measured fill
// long before the update-count safety cap, keeping the update file
// bounded relative to the factorization.
func TestFTDenseSpikeTriggersRefactor(t *testing.T) {
	const m = 40
	rng := rand.New(rand.NewSource(99))
	colIdx, colVal := randBasisCols(rng, m, 0.9)
	f := newLUFactor(m)
	if fr, _ := f.factorize(colIdx, colVal); fr != nil {
		t.Fatal("initial factorization failed")
	}
	tripped := 0
	for step := 0; step < 30*m; step++ {
		pos := rng.Intn(m)
		nIdx, nVal := randSparseCol(rng, m, 0.9)
		w := make([]float64, m)
		for k, i := range nIdx {
			w[i] += nVal[k]
		}
		f.ftranPivot(w)
		if math.Abs(w[pos]) < pivotTol {
			continue
		}
		colIdx[pos], colVal[pos] = nIdx, nVal
		if !f.update(int32(pos), w[pos]) || f.shouldRefactor() {
			if f.updates >= ftMaxUpdates {
				t.Fatalf("step %d: dense spikes reached the count cap before the fill trigger", step)
			}
			// The trigger must fire while the update file is still
			// bounded by the growth factor (plus the small-m allowance).
			if f.uNnz+f.rNnz > 2*(ftGrowthFactor*f.luNnz+8*m) {
				t.Fatalf("step %d: update file grew to %d nnz (factor %d) before refactorizing",
					step, f.uNnz+f.rNnz, f.luNnz)
			}
			if fr, _ := f.factorize(colIdx, colVal); fr != nil {
				t.Fatalf("step %d: refactorization failed", step)
			}
			tripped++
		}
	}
	if tripped == 0 {
		t.Fatal("dense-spike stream never triggered a refactorization")
	}
	residFtran(t, colIdx, colVal, f, rng, "final")
}

// TestFTSingularSpikeRejected replaces a column so the basis becomes
// singular: the FT update must refuse (leaving the caller to repair and
// refactorize) rather than install a near-zero diagonal.
func TestFTSingularSpikeRejected(t *testing.T) {
	const m = 8
	// Identity basis.
	colIdx := make([][]int32, m)
	colVal := make([][]float64, m)
	for pos := 0; pos < m; pos++ {
		colIdx[pos] = []int32{int32(pos)}
		colVal[pos] = []float64{1}
	}
	f := newLUFactor(m)
	if fr, _ := f.factorize(colIdx, colVal); fr != nil {
		t.Fatal("identity factorization failed")
	}
	// Replace column 3 with a copy of column 5's unit vector: the new
	// basis is singular (two identical columns).
	w := make([]float64, m)
	w[5] = 1
	f.ftranPivot(w)
	if ok := f.update(3, w[3]); ok {
		t.Fatal("singular spike accepted")
	}
	if !f.shouldRefactor() {
		t.Fatal("rejected update must force a refactorization")
	}
}
