package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// checkX verifies a solution point against the problem's bounds and rows.
func checkX(t *testing.T, p *Problem, x []float64, tol float64) {
	t.Helper()
	for j := 0; j < p.NumVars(); j++ {
		if x[j] < p.lo[j]-tol || x[j] > p.hi[j]+tol {
			t.Fatalf("var %d = %g outside [%g, %g]", j, x[j], p.lo[j], p.hi[j])
		}
	}
	for r, row := range p.rows {
		var lhs float64
		for _, tm := range row {
			lhs += tm.Coeff * x[tm.Var]
		}
		switch p.senses[r] {
		case LE:
			if lhs > p.rhs[r]+tol {
				t.Fatalf("row %d: %g > %g", r, lhs, p.rhs[r])
			}
		case GE:
			if lhs < p.rhs[r]-tol {
				t.Fatalf("row %d: %g < %g", r, lhs, p.rhs[r])
			}
		case EQ:
			if math.Abs(lhs-p.rhs[r]) > tol {
				t.Fatalf("row %d: %g != %g", r, lhs, p.rhs[r])
			}
		}
	}
}

// randEQLP augments the random feasible generator with EQ rows (anchored
// at the interior point), the row class presolve's singleton/doubleton
// reductions act on most.
func randEQLP(rng *rand.Rand) (*Problem, []float64) {
	p, x0 := randFeasibleLP(rng)
	nEQ := rng.Intn(4)
	for r := 0; r < nEQ; r++ {
		var terms []Term
		var lhs float64
		for j := 0; j < p.NumVars() && len(terms) < 3; j++ {
			if rng.Intn(2) == 0 {
				continue
			}
			c := float64(rng.Intn(7)) - 3
			if c == 0 {
				continue
			}
			terms = append(terms, Term{VarID(j), c})
			lhs += c * x0[j]
		}
		if len(terms) == 0 {
			continue
		}
		// Anchor the EQ row at x0 via a fresh free variable, keeping the
		// instance feasible by construction.
		v := p.AddVar("", -100, 100, 0)
		terms = append(terms, Term{v, 1})
		x0 = append(x0, 0)
		p.AddRow(terms, EQ, lhs)
	}
	return p, x0
}

// TestQuickPresolveMatches is the presolve-equality property: across
// random LPs (including EQ rows), solving with and without presolve must
// agree on status and objective, and the presolved X must satisfy the
// ORIGINAL problem.
func TestQuickPresolveMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var p *Problem
		if seed%2 == 0 {
			p, _ = randFeasibleLP(rng)
		} else {
			p, _ = randEQLP(rng)
		}
		plain, err1 := Solve(p, Options{NoPresolve: true})
		pre, err2 := Solve(p, Options{})
		if err1 != nil || err2 != nil {
			t.Logf("seed %d: errors %v %v", seed, err1, err2)
			return false
		}
		if plain.Status != pre.Status {
			t.Logf("seed %d: plain %v presolve %v", seed, plain.Status, pre.Status)
			return false
		}
		if plain.Status == StatusOptimal {
			if math.Abs(plain.Objective-pre.Objective) > 1e-6 {
				t.Logf("seed %d: plain obj %g presolve obj %g", seed, plain.Objective, pre.Objective)
				return false
			}
			checkX(t, p, pre.X, 1e-6)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestPresolveBasisRoundTrip: a basis postsolved from a reduced solve
// must warm-start a NoPresolve re-solve of the original problem in a
// handful of iterations — the contract internal/core's warm-start
// chaining depends on.
func TestPresolveBasisRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := randEQLP(rng)
		pre, err := Solve(p, Options{})
		if err != nil || pre.Status != StatusOptimal {
			return true // not a round-trip scenario
		}
		if pre.Basis == nil {
			t.Logf("seed %d: presolved solve returned no basis", seed)
			return false
		}
		if len(pre.Basis.Vars) != p.NumVars() || len(pre.Basis.Rows) != p.NumRows() {
			t.Logf("seed %d: basis dims %dx%d, problem %dx%d", seed,
				len(pre.Basis.Vars), len(pre.Basis.Rows), p.NumVars(), p.NumRows())
			return false
		}
		warm, err := Solve(p, Options{NoPresolve: true, WarmStart: pre.Basis})
		if err != nil || warm.Status != StatusOptimal {
			t.Logf("seed %d: warm re-solve %v %v", seed, err, warm.Status)
			return false
		}
		if math.Abs(warm.Objective-pre.Objective) > 1e-6 {
			t.Logf("seed %d: warm obj %g != %g", seed, warm.Objective, pre.Objective)
			return false
		}
		// The postsolved basis describes (a vertex of) the optimal face:
		// resuming from it must be nearly free.
		if warm.Iterations > 10 {
			t.Logf("seed %d: warm restart took %d iterations", seed, warm.Iterations)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPresolveSingletonRows: singleton rows fold into bounds and the
// solve still reports the exact optimum and a usable basis.
func TestPresolveSingletonRows(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 3)
	y := p.AddVar("y", 0, Inf, 5)
	p.AddRow([]Term{{x, 1}}, LE, 4)  // singleton: x <= 4
	p.AddRow([]Term{{y, 2}}, LE, 12) // singleton: y <= 6
	p.AddRow([]Term{{x, 3}, {y, 2}}, LE, 18)
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("Solve: %v %v", err, sol.Status)
	}
	if math.Abs(sol.Objective-36) > 1e-6 {
		t.Fatalf("objective = %g, want 36", sol.Objective)
	}
	if math.Abs(sol.Value(x)-2) > 1e-6 || math.Abs(sol.Value(y)-6) > 1e-6 {
		t.Fatalf("point = (%g, %g), want (2, 6)", sol.Value(x), sol.Value(y))
	}
	nBasic := 0
	for _, st := range sol.Basis.Vars {
		if st == BasisBasic {
			nBasic++
		}
	}
	for _, st := range sol.Basis.Rows {
		if st == BasisBasic {
			nBasic++
		}
	}
	if nBasic != p.NumRows() {
		t.Fatalf("postsolved basis has %d basic entries, want %d", nBasic, p.NumRows())
	}
}

// TestPresolveFixedAndForcing: fixed variables substitute out, and a
// forcing row pins its variables.
func TestPresolveFixedAndForcing(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 2, 2, 10) // fixed
	y := p.AddVar("y", 0, 4, 1)
	z := p.AddVar("z", 0, 3, -2)
	// Forcing: y + z >= 7 touches its max activity exactly -> y=4, z=3.
	p.AddRow([]Term{{y, 1}, {z, 1}}, GE, 7)
	p.AddRow([]Term{{x, 1}, {y, 1}}, LE, 100) // redundant
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("Solve: %v %v", err, sol.Status)
	}
	want := 10*2.0 + 1*4 + (-2)*3
	if math.Abs(sol.Objective-want) > 1e-6 {
		t.Fatalf("objective = %g, want %g", sol.Objective, want)
	}
	checkX(t, p, sol.X, 1e-6)
}

// TestPresolveDoubleton: an implied-free column singleton in an EQ
// doubleton row substitutes out and reconstructs exactly.
func TestPresolveDoubleton(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, 10, 1)
	y := p.AddVar("y", -100, 100, 3)        // implied free: bounds never bind
	p.AddRow([]Term{{x, 1}, {y, 1}}, EQ, 8) // y = 8 - x, appears nowhere else
	p.AddRow([]Term{{x, 1}}, GE, 2)
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("Solve: %v %v", err, sol.Status)
	}
	// min x + 3(8-x) = 24 - 2x -> x = 10, y = -2.
	if math.Abs(sol.Value(x)-10) > 1e-6 || math.Abs(sol.Value(y)+2) > 1e-6 {
		t.Fatalf("point = (%g, %g), want (10, -2)", sol.Value(x), sol.Value(y))
	}
	checkX(t, p, sol.X, 1e-6)
}

// TestPresolveForcingRowDual: a binding forcing row must come back with
// a valid (generally nonzero) dual, matching the NoPresolve solve.
func TestPresolveForcingRowDual(t *testing.T) {
	build := func() *Problem {
		p := NewProblem(Maximize)
		x := p.AddVar("x", 1, 2, 1)
		y := p.AddVar("y", 1, 2, 1)
		z := p.AddVar("z", 0, Inf, 1)
		w := p.AddVar("w", 0, Inf, 1)
		p.AddRow([]Term{{x, 1}, {y, 1}}, LE, 2) // forcing: x=y=1
		p.AddRow([]Term{{z, 1}, {w, 1}}, LE, 5)
		p.AddRow([]Term{{z, 2}, {w, 1}}, LE, 8)
		return p
	}
	ref, err := Solve(build(), Options{NoPresolve: true})
	if err != nil || ref.Status != StatusOptimal {
		t.Fatalf("reference: %v %v", err, ref.Status)
	}
	got, err := Solve(build(), Options{})
	if err != nil || got.Status != StatusOptimal {
		t.Fatalf("presolved: %v %v", err, got.Status)
	}
	if got.Duals == nil {
		t.Fatal("presolved optimal solve returned no duals")
	}
	// Strong duality over rows plus bound terms: check via the reduced
	// costs instead — every variable at a bound must have a sign-correct
	// reduced cost under the returned duals (max: d<=0 at lower, d>=0 at
	// upper), which fails if the forcing row reports 0.
	p := build()
	for j := 0; j < p.NumVars(); j++ {
		d := p.Obj(VarID(j))
		for i, row := range p.rows {
			for _, tm := range row {
				if int(tm.Var) == j {
					d -= tm.Coeff * got.Duals[i]
				}
			}
		}
		lo, hi := p.Bounds(VarID(j))
		xv := got.X[j]
		switch {
		case math.Abs(xv-lo) < 1e-9 && xv < hi-1e-9:
			if d > 1e-7 {
				t.Fatalf("var %d at lower with reduced cost %g > 0", j, d)
			}
		case math.Abs(xv-hi) < 1e-9 && xv > lo+1e-9:
			if d < -1e-7 {
				t.Fatalf("var %d at upper with reduced cost %g < 0", j, d)
			}
		}
	}
}

// TestPresolveInfeasible: contradictions found during reduction surface
// as StatusInfeasible without a simplex run, with a well-formed basis.
func TestPresolveInfeasible(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 1)
	p.AddRow([]Term{{x, 1}}, LE, 3)
	p.AddRow([]Term{{x, 1}}, GE, 5)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
	if sol.Basis == nil || len(sol.Basis.Vars) != 1 || len(sol.Basis.Rows) != 2 {
		t.Fatalf("infeasible solve must still return a full-size basis, got %+v", sol.Basis)
	}
}

// TestPresolveEmptyAndScaling: empty rows/columns vanish, and the
// equilibration scaling round-trips a badly scaled instance exactly.
func TestPresolveEmptyAndScaling(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, Inf, 1e-6)
	y := p.AddVar("y", 0, Inf, 1e6)
	free := p.AddVar("free", -5, 5, 0) // empty column
	p.AddRow(nil, LE, 1)               // empty row
	p.AddRow([]Term{{x, 1e6}, {y, 1e-4}}, GE, 2e6)
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("Solve: %v %v", err, sol.Status)
	}
	// Cheapest: x = 2 (cost 2e-6), y = 0.
	if math.Abs(sol.Value(x)-2) > 1e-6 || math.Abs(sol.Value(y)) > 1e-9 {
		t.Fatalf("point = (%g, %g), want (2, 0)", sol.Value(x), sol.Value(y))
	}
	if v := sol.Value(free); v < -5-1e-9 || v > 5+1e-9 {
		t.Fatalf("empty column landed at %g, outside its bounds", v)
	}
	checkX(t, p, sol.X, 1e-5)
}
