package lp

// clone.go provides the copy and identity primitives the concurrent
// layers build on. Solve itself never mutates a Problem (the simplex and
// presolver copy what they edit), so any number of goroutines may solve
// the SAME Problem concurrently as long as none of them mutates it
// through SetBounds/SetObj/AddVar/AddRow. Callers that do need private
// mutable bounds — branch-and-bound workers applying per-node bound
// chains — take a Clone and edit that.

import (
	"hash/maphash"
	"math"
)

// Clone returns a deep copy of the basis. Basis snapshots are immutable
// by convention, but workers that resume solves concurrently clone their
// warm-start hint anyway so no goroutine ever shares mutable state with
// another. Clone of nil is nil.
func (b *Basis) Clone() *Basis {
	if b == nil {
		return nil
	}
	return &Basis{
		Vars: append([]BasisStatus(nil), b.Vars...),
		Rows: append([]BasisStatus(nil), b.Rows...),
	}
}

// Extended returns a copy of b padded to numVars variables and numRows
// rows: appended variables enter nonbasic at their lower bound and
// appended rows enter with their slack basic, so the padded basis keeps
// the original basis matrix nonsingular — exactly the invariant a warm
// start across a column/row append (AddVar + AppendToRow + AddRow on a
// solved model) relies on. Slacks of appended equality rows start
// primal-infeasible when the new right-hand side is nonzero; the dual
// simplex (or the warm-start repair's composite phase 1) drives them
// out. Returns nil if b is nil or already larger than the target shape.
func (b *Basis) Extended(numVars, numRows int) *Basis {
	if b == nil || len(b.Vars) > numVars || len(b.Rows) > numRows {
		return nil
	}
	out := &Basis{
		Vars: make([]BasisStatus, numVars),
		Rows: make([]BasisStatus, numRows),
	}
	copy(out.Vars, b.Vars) // appended vars default to BasisAtLower (zero value)
	copy(out.Rows, b.Rows)
	for i := len(b.Rows); i < numRows; i++ {
		out.Rows[i] = BasisBasic
	}
	return out
}

// Clone returns an independent copy of the problem: bound, objective,
// sense, and right-hand-side storage is owned by the copy, so SetBounds/
// SetObj/AddVar/AddRow on either side never touch the other. The per-row
// term slices are shared — they are write-once (AddRow stores a fresh
// merged slice and nothing mutates it afterwards) — which keeps a clone
// O(vars + rows) instead of O(nonzeros).
func (p *Problem) Clone() *Problem {
	q := &Problem{
		Dir:    p.Dir,
		names:  append([]string(nil), p.names...),
		lo:     append([]float64(nil), p.lo...),
		hi:     append([]float64(nil), p.hi...),
		obj:    append([]float64(nil), p.obj...),
		rows:   append([][]Term(nil), p.rows...),
		senses: append([]Sense(nil), p.senses...),
		rhs:    append([]float64(nil), p.rhs...),
	}
	return q
}

// fpSeed is the process-wide seed for Fingerprint, so fingerprints are
// comparable across problems within one process (which is all the batch
// cache needs).
var fpSeed = maphash.MakeSeed()

// Fingerprint returns a hash of the problem's full content — dimensions,
// direction, bounds, objective, rows (terms, senses, right-hand sides).
// Two problems with equal fingerprints are almost certainly structurally
// identical; confirm with EqualTo before treating them as the same model
// (the schedule-batching layer uses the pair as a presolve/solve cache
// key for sweep points that reduce to the same chunk-unit LP).
func (p *Problem) Fingerprint() uint64 {
	var h maphash.Hash
	h.SetSeed(fpSeed)
	writeInt := func(v int) {
		var b [8]byte
		u := uint64(v)
		for i := range b {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	writeF := func(v float64) {
		// Hash the bit pattern: fingerprint equality must mean bit
		// equality, including negative zero and NaN payloads.
		writeInt(int(math.Float64bits(v)))
	}
	writeInt(int(p.Dir))
	writeInt(len(p.lo))
	writeInt(len(p.rows))
	for j := range p.lo {
		writeF(p.lo[j])
		writeF(p.hi[j])
		writeF(p.obj[j])
	}
	for i, row := range p.rows {
		writeInt(int(p.senses[i]))
		writeF(p.rhs[i])
		writeInt(len(row))
		for _, t := range row {
			writeInt(int(t.Var))
			writeF(t.Coeff)
		}
	}
	return h.Sum64()
}

// EqualTo reports whether q states bit-for-bit the same program as p:
// same direction, variable bounds and objective, and identical rows.
// Variable names are ignored — they are diagnostics, not semantics.
func (p *Problem) EqualTo(q *Problem) bool {
	if p.Dir != q.Dir || len(p.lo) != len(q.lo) || len(p.rows) != len(q.rows) {
		return false
	}
	for j := range p.lo {
		if math.Float64bits(p.lo[j]) != math.Float64bits(q.lo[j]) ||
			math.Float64bits(p.hi[j]) != math.Float64bits(q.hi[j]) ||
			math.Float64bits(p.obj[j]) != math.Float64bits(q.obj[j]) {
			return false
		}
	}
	for i := range p.rows {
		if p.senses[i] != q.senses[i] || math.Float64bits(p.rhs[i]) != math.Float64bits(q.rhs[i]) {
			return false
		}
		a, b := p.rows[i], q.rows[i]
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if a[k].Var != b[k].Var || math.Float64bits(a[k].Coeff) != math.Float64bits(b[k].Coeff) {
				return false
			}
		}
	}
	return true
}
