package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickPrimalDualAgree is the method-equality property: over random
// feasible LPs (all boxed, so the dual's bound-flip start always exists),
// the primal and dual simplex must agree on status and objective.
func TestQuickPrimalDualAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := randFeasibleLP(rng)
		a, err1 := Solve(p, Options{Method: MethodPrimal, NoPresolve: true})
		b, err2 := Solve(p, Options{Method: MethodDual, NoPresolve: true})
		if err1 != nil || err2 != nil {
			t.Logf("seed %d: errors %v %v", seed, err1, err2)
			return false
		}
		if a.Status != b.Status {
			t.Logf("seed %d: primal %v dual %v", seed, a.Status, b.Status)
			return false
		}
		if a.Status == StatusOptimal && math.Abs(a.Objective-b.Objective) > 1e-6 {
			t.Logf("seed %d: primal obj %g dual obj %g", seed, a.Objective, b.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDualUsedOnWarmChild checks the reoptimization contract the MILP
// layer relies on: after a branching-style bound change, the dual method
// resumed from the parent basis reaches the child optimum, matching a
// cold primal solve.
func TestDualUsedOnWarmChild(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 10, 7)
	y := p.AddVar("y", 0, 10, 2)
	p.AddRow([]Term{{x, 2}, {y, 1}}, LE, 7)
	p.AddRow([]Term{{x, 1}, {y, 3}}, LE, 9)
	parent, err := Solve(p, Options{})
	if err != nil || parent.Status != StatusOptimal {
		t.Fatalf("parent: %v %v", err, parent.Status)
	}
	p.SetBounds(x, 0, math.Floor(parent.Value(x)))
	cold, err := Solve(p, Options{Method: MethodPrimal})
	if err != nil {
		t.Fatalf("cold child: %v", err)
	}
	dual, err := Solve(p, Options{Method: MethodDual, WarmStart: parent.Basis, NoPresolve: true})
	if err != nil {
		t.Fatalf("dual child: %v", err)
	}
	if dual.Status != cold.Status || math.Abs(dual.Objective-cold.Objective) > 1e-6 {
		t.Fatalf("dual child %v obj %g, cold %v obj %g",
			dual.Status, dual.Objective, cold.Status, cold.Objective)
	}
	if dual.Iterations > cold.Iterations+4 {
		t.Fatalf("dual reopt took %d iterations vs cold %d; warm dual not effective",
			dual.Iterations, cold.Iterations)
	}
}

// TestDualDegenerateCycling is the dual-cycling regression: a heavily
// degenerate LP (every vertex massively tied — the transportation-style
// structure that stalls naive ratio tests) must terminate optimally under
// MethodDual. Beale's classic cycling instance rides along.
func TestDualDegenerateCycling(t *testing.T) {
	// All-identical rows and costs: every basis is degenerate.
	p := NewProblem(Minimize)
	n := 8
	vars := make([]VarID, n)
	for j := 0; j < n; j++ {
		vars[j] = p.AddVar("", 0, 1, 1)
	}
	for r := 0; r < n; r++ {
		terms := make([]Term, 0, n/2)
		for j := r; j < r+n/2; j++ {
			terms = append(terms, Term{vars[j%n], 1})
		}
		p.AddRow(terms, GE, 1)
	}
	sol, err := Solve(p, Options{Method: MethodDual})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	primal, err := Solve(p, Options{Method: MethodPrimal})
	if err != nil || primal.Status != StatusOptimal {
		t.Fatalf("primal reference: %v %v", err, primal.Status)
	}
	if math.Abs(sol.Objective-primal.Objective) > 1e-6 {
		t.Fatalf("dual obj %g != primal obj %g", sol.Objective, primal.Objective)
	}

	// Beale's cycling LP under the dual method.
	b := NewProblem(Minimize)
	x1 := b.AddVar("x1", 0, Inf, -0.75)
	x2 := b.AddVar("x2", 0, Inf, 150)
	x3 := b.AddVar("x3", 0, Inf, -0.02)
	x4 := b.AddVar("x4", 0, Inf, 6)
	b.AddRow([]Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	b.AddRow([]Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	b.AddRow([]Term{{x3, 1}}, LE, 1)
	bs, err := Solve(b, Options{Method: MethodDual})
	if err != nil {
		t.Fatalf("Beale dual: %v", err)
	}
	if bs.Status != StatusOptimal || math.Abs(bs.Objective+0.05) > 1e-6 {
		t.Fatalf("Beale dual: %v obj %g, want optimal -0.05", bs.Status, bs.Objective)
	}
}

// TestDualInfeasibleVerdict: the dual's unboundedness verdict (confirmed
// by the primal phase 1) must classify infeasible children correctly.
func TestDualInfeasibleVerdict(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 5, 1)
	y := p.AddVar("y", 0, 5, 1)
	p.AddRow([]Term{{x, 1}, {y, 1}}, LE, 4)
	parent, err := Solve(p, Options{})
	if err != nil || parent.Status != StatusOptimal {
		t.Fatalf("parent: %v %v", err, parent.Status)
	}
	// Branch into an empty box: x >= 5 makes the row unsatisfiable.
	p.SetBounds(x, 5, 5)
	p.SetBounds(y, 1, 5)
	sol, err := Solve(p, Options{Method: MethodDual, WarmStart: parent.Basis, NoPresolve: true})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

// TestDualsReported: optimal solves report row duals consistent with
// strong duality on an all-LE, nonnegative-variable instance.
func TestDualsReported(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 3)
	y := p.AddVar("y", 0, Inf, 5)
	p.AddRow([]Term{{x, 1}}, LE, 4)
	p.AddRow([]Term{{y, 2}}, LE, 12)
	p.AddRow([]Term{{x, 3}, {y, 2}}, LE, 18)
	for _, opt := range []Options{{}, {NoPresolve: true}} {
		sol, err := Solve(p, opt)
		if err != nil || sol.Status != StatusOptimal {
			t.Fatalf("Solve: %v %v", err, sol.Status)
		}
		if sol.Duals == nil {
			t.Fatal("optimal solve returned no duals")
		}
		// Strong duality: c'x* = y'b for this all-LE x>=0 instance.
		var yb float64
		rhs := []float64{4, 12, 18}
		for i, d := range sol.Duals {
			if d < -1e-9 {
				t.Fatalf("dual %d = %g, want >= 0 for a max/LE row", i, d)
			}
			yb += d * rhs[i]
		}
		if math.Abs(yb-sol.Objective) > 1e-6 {
			t.Fatalf("duality gap: y'b = %g, c'x = %g (presolve=%v)", yb, sol.Objective, !opt.NoPresolve)
		}
	}
}
