package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randFeasibleLP builds a random LP that is feasible by construction: it
// first draws an interior point x0 within the variable bounds, then only
// emits rows that x0 satisfies strictly.
func randFeasibleLP(rng *rand.Rand) (*Problem, []float64) {
	n := 2 + rng.Intn(8)
	m := 1 + rng.Intn(12)
	p := NewProblem(Maximize)
	x0 := make([]float64, n)
	for j := 0; j < n; j++ {
		lo := float64(rng.Intn(7)) - 3
		hi := lo + float64(1+rng.Intn(6))
		p.AddVar("", lo, hi, float64(rng.Intn(11))-5)
		x0[j] = lo + (hi-lo)*rng.Float64()
	}
	for r := 0; r < m; r++ {
		var terms []Term
		var lhs float64
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				continue
			}
			c := float64(rng.Intn(9)) - 4
			if c == 0 {
				continue
			}
			terms = append(terms, Term{VarID(j), c})
			lhs += c * x0[j]
		}
		if len(terms) == 0 {
			continue
		}
		slack := 0.5 + 3*rng.Float64()
		if rng.Intn(2) == 0 {
			p.AddRow(terms, LE, lhs+slack)
		} else {
			p.AddRow(terms, GE, lhs-slack)
		}
	}
	return p, x0
}

// TestQuickFeasibleLPs checks, over many random feasible instances, that
// the solver (a) reports optimal, (b) returns a feasible point, and
// (c) returns an objective at least as good as the known feasible point.
func TestQuickFeasibleLPs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, x0 := randFeasibleLP(rng)
		sol, err := Solve(p, Options{})
		if err != nil {
			t.Logf("seed %d: error %v", seed, err)
			return false
		}
		if sol.Status != StatusOptimal {
			// All variables are bounded, and the instance is feasible by
			// construction, so optimal is the only acceptable status.
			t.Logf("seed %d: status %v", seed, sol.Status)
			return false
		}
		var obj0 float64
		for j := range x0 {
			obj0 += p.obj[j] * x0[j]
		}
		if sol.Objective < obj0-1e-6 {
			t.Logf("seed %d: objective %g < feasible %g", seed, sol.Objective, obj0)
			return false
		}
		// Feasibility of the returned point.
		for j := 0; j < p.NumVars(); j++ {
			if sol.X[j] < p.lo[j]-1e-6 || sol.X[j] > p.hi[j]+1e-6 {
				t.Logf("seed %d: var %d out of bounds", seed, j)
				return false
			}
		}
		for r, row := range p.rows {
			var lhs float64
			for _, tm := range row {
				lhs += tm.Coeff * sol.X[tm.Var]
			}
			switch p.senses[r] {
			case LE:
				if lhs > p.rhs[r]+1e-6 {
					t.Logf("seed %d: row %d violated", seed, r)
					return false
				}
			case GE:
				if lhs < p.rhs[r]-1e-6 {
					t.Logf("seed %d: row %d violated", seed, r)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterminism verifies that solving the same instance twice gives
// bit-identical results (the paper stresses that TE-CCL, unlike TACCL, is
// deterministic).
func TestQuickDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := randFeasibleLP(rng)
		a, err1 := Solve(p, Options{})
		b, err2 := Solve(p, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		if a.Status != b.Status || a.Objective != b.Objective {
			return false
		}
		for j := range a.X {
			if a.X[j] != b.X[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMinMaxAgree verifies max c'x == -min (-c)'x on random instances.
func TestQuickMinMaxAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := randFeasibleLP(rng)
		q := NewProblem(Minimize)
		for j := 0; j < p.NumVars(); j++ {
			q.AddVar("", p.lo[j], p.hi[j], -p.obj[j])
		}
		for r, row := range p.rows {
			q.AddRow(row, p.senses[r], p.rhs[r])
		}
		a, err1 := Solve(p, Options{})
		b, err2 := Solve(q, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		if a.Status != b.Status {
			return false
		}
		if a.Status == StatusOptimal && math.Abs(a.Objective+b.Objective) > 1e-6 {
			t.Logf("seed %d: max %g vs -min %g", seed, a.Objective, -b.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
