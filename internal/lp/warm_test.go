package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// reSolveWarm solves p cold, then again warm-started from the returned
// basis, and checks both reach the same objective.
func reSolveWarm(t *testing.T, p *Problem) (cold, warm *Solution) {
	t.Helper()
	cold, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	if cold.Status != StatusOptimal {
		t.Fatalf("cold status = %v, want optimal", cold.Status)
	}
	if cold.Basis == nil {
		t.Fatal("optimal solve returned no basis snapshot")
	}
	warm, err = Solve(p, Options{WarmStart: cold.Basis})
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if warm.Status != StatusOptimal {
		t.Fatalf("warm status = %v, want optimal", warm.Status)
	}
	if math.Abs(cold.Objective-warm.Objective) > optTol*10 {
		t.Fatalf("warm objective %g != cold %g", warm.Objective, cold.Objective)
	}
	return cold, warm
}

// TestWarmRestartIsCheap: resuming from the optimal basis must terminate
// almost immediately (one feasibility pass, one pricing pass).
func TestWarmRestartIsCheap(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 3)
	y := p.AddVar("y", 0, Inf, 5)
	p.AddRow([]Term{{x, 1}}, LE, 4)
	p.AddRow([]Term{{y, 2}}, LE, 12)
	p.AddRow([]Term{{x, 3}, {y, 2}}, LE, 18)
	cold, warm := reSolveWarm(t, p)
	if warm.Iterations > 4 {
		t.Fatalf("warm restart took %d iterations (cold %d); basis not reused",
			warm.Iterations, cold.Iterations)
	}
}

// TestWarmAfterBoundChange mimics one branch-and-bound step: tighten a
// bound through the fractional optimum and compare warm vs cold.
func TestWarmAfterBoundChange(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 10, 7)
	y := p.AddVar("y", 0, 10, 2)
	p.AddRow([]Term{{x, 2}, {y, 1}}, LE, 7)
	p.AddRow([]Term{{x, 1}, {y, 3}}, LE, 9)
	cold, err := Solve(p, Options{})
	if err != nil || cold.Status != StatusOptimal {
		t.Fatalf("base solve: %v %v", err, cold.Status)
	}
	// Branch down on x: x <= floor(x*).
	p.SetBounds(x, 0, math.Floor(cold.Value(x)))
	coldChild, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("cold child: %v", err)
	}
	warmChild, err := Solve(p, Options{WarmStart: cold.Basis})
	if err != nil {
		t.Fatalf("warm child: %v", err)
	}
	if coldChild.Status != warmChild.Status {
		t.Fatalf("status: cold %v warm %v", coldChild.Status, warmChild.Status)
	}
	if math.Abs(coldChild.Objective-warmChild.Objective) > 1e-6 {
		t.Fatalf("objective: cold %g warm %g", coldChild.Objective, warmChild.Objective)
	}
	if warmChild.Iterations > coldChild.Iterations {
		t.Fatalf("warm child took %d iterations, cold %d; warm start hurt",
			warmChild.Iterations, coldChild.Iterations)
	}
}

// TestWarmDegenerate: a heavily degenerate optimum (many ties) restarts
// cleanly from its own basis.
func TestWarmDegenerate(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 2)
	y := p.AddVar("y", 0, Inf, 1)
	p.AddRow([]Term{{x, 1}, {y, 1}}, LE, 4)
	p.AddRow([]Term{{x, 1}}, LE, 4)
	p.AddRow([]Term{{y, 1}}, LE, 4)
	p.AddRow([]Term{{x, 1}, {y, 2}}, LE, 8)
	_, warm := reSolveWarm(t, p)
	if math.Abs(warm.Objective-8) > 1e-6 {
		t.Fatalf("objective = %g, want 8", warm.Objective)
	}
}

// TestWarmUpperBounded: bound-flip-heavy instances (finite ranges on both
// sides) must round-trip through a warm restart.
func TestWarmUpperBounded(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", -2, 3, 1)
	y := p.AddVar("y", -1, 4, -2)
	z := p.AddVar("z", 0, 1, 0.5)
	p.AddRow([]Term{{x, 1}, {y, 1}, {z, 1}}, LE, 5)
	p.AddRow([]Term{{x, 1}, {y, -1}}, GE, -4)
	_, warm := reSolveWarm(t, p)
	checkFeasible(t, p, warm.X, 1e-6)
}

// TestWarmInfeasible: a stale basis pointed at an infeasible child must
// still prove infeasibility, exactly like a cold solve.
func TestWarmInfeasible(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 1)
	y := p.AddVar("y", 0, Inf, 1)
	p.AddRow([]Term{{x, 1}, {y, 1}}, LE, 10)
	cold, err := Solve(p, Options{})
	if err != nil || cold.Status != StatusOptimal {
		t.Fatalf("base solve: %v %v", err, cold.Status)
	}
	// Make the child infeasible: force x beyond what the row allows.
	p.AddRow([]Term{{x, 1}}, GE, 20)
	for _, opt := range []Options{{}, {WarmStart: cold.Basis}} {
		sol, err := Solve(p, opt)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if sol.Status != StatusInfeasible {
			t.Fatalf("warm=%v: status = %v, want infeasible", opt.WarmStart != nil, sol.Status)
		}
	}
}

// TestWarmBealeCycling: Beale's cycling LP solved from a warm basis still
// terminates (the Bland fallback must survive the warm-start path).
func TestWarmBealeCycling(t *testing.T) {
	build := func() (*Problem, []VarID) {
		p := NewProblem(Minimize)
		x1 := p.AddVar("x1", 0, Inf, -0.75)
		x2 := p.AddVar("x2", 0, Inf, 150)
		x3 := p.AddVar("x3", 0, Inf, -0.02)
		x4 := p.AddVar("x4", 0, Inf, 6)
		p.AddRow([]Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
		p.AddRow([]Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
		p.AddRow([]Term{{x3, 1}}, LE, 1)
		return p, []VarID{x1, x2, x3, x4}
	}
	p, _ := build()
	cold, err := Solve(p, Options{})
	if err != nil || cold.Status != StatusOptimal {
		t.Fatalf("cold Beale: %v %v", err, cold.Status)
	}
	// Restart from a deliberately unhelpful basis: everything nonbasic
	// except the slacks — then from the optimal one.
	for _, b := range []*Basis{cold.Basis, {Vars: make([]BasisStatus, 4), Rows: []BasisStatus{BasisBasic, BasisBasic, BasisBasic}}} {
		sol, err := Solve(p, Options{WarmStart: b})
		if err != nil {
			t.Fatalf("warm Beale: %v", err)
		}
		if sol.Status != StatusOptimal || math.Abs(sol.Objective+0.05) > 1e-6 {
			t.Fatalf("warm Beale: %v obj %g, want optimal -0.05", sol.Status, sol.Objective)
		}
	}
}

// TestQuickWarmMatchesCold is the property-style equality check: over
// random feasible LPs, branch-style bound tightenings solved warm and
// cold must agree on status and objective.
func TestQuickWarmMatchesCold(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := randFeasibleLP(rng)
		base, err := Solve(p, Options{})
		if err != nil || base.Status != StatusOptimal {
			return true // skip: not a warm-start scenario
		}
		// Tighten a random variable's bounds around its solved value, as
		// a branch-and-bound child would.
		j := VarID(rng.Intn(p.NumVars()))
		lo, hi := p.Bounds(j)
		xv := base.Value(j)
		if rng.Intn(2) == 0 {
			nhi := math.Floor(xv)
			if nhi < lo {
				nhi = lo
			}
			p.SetBounds(j, lo, nhi)
		} else {
			nlo := math.Ceil(xv)
			if nlo > hi {
				nlo = hi
			}
			p.SetBounds(j, nlo, hi)
		}
		cold, err1 := Solve(p, Options{})
		warm, err2 := Solve(p, Options{WarmStart: base.Basis})
		if err1 != nil || err2 != nil {
			t.Logf("seed %d: errors %v %v", seed, err1, err2)
			return false
		}
		if cold.Status != warm.Status {
			t.Logf("seed %d: cold %v warm %v", seed, cold.Status, warm.Status)
			return false
		}
		if cold.Status == StatusOptimal && math.Abs(cold.Objective-warm.Objective) > 1e-6 {
			t.Logf("seed %d: cold obj %g warm obj %g", seed, cold.Objective, warm.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestWarmDimensionMismatchIgnored: a basis from an unrelated problem must
// not corrupt the solve.
func TestWarmDimensionMismatchIgnored(t *testing.T) {
	small := NewProblem(Maximize)
	small.AddVar("x", 0, 1, 1)
	ssol, err := Solve(small, Options{})
	if err != nil || ssol.Status != StatusOptimal {
		t.Fatalf("small solve: %v %v", err, ssol.Status)
	}
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 3)
	y := p.AddVar("y", 0, Inf, 5)
	p.AddRow([]Term{{x, 1}}, LE, 4)
	p.AddRow([]Term{{y, 2}}, LE, 12)
	p.AddRow([]Term{{x, 3}, {y, 2}}, LE, 18)
	sol, err := Solve(p, Options{WarmStart: ssol.Basis})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-36) > 1e-6 {
		t.Fatalf("got %v obj %g, want optimal 36", sol.Status, sol.Objective)
	}
}

// TestRefactorizationCountReported: long solves must report at least the
// initial factorization.
func TestRefactorizationCountReported(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := bigLP(rng, 200, 150)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Refactorizations < 1 {
		t.Fatalf("Refactorizations = %d, want >= 1", sol.Refactorizations)
	}
}

// TestWarmCorruptedBasisRepaired: a warm basis with adversarially garbled
// statuses (wrong basic counts, statuses inconsistent with bounds,
// structurally singular variable sets) must never error the solve — the
// install/repair pass and, since the Forrest–Tomlin work, the
// refactorize-then-repair fallback on a rejected mid-solve update absorb
// it, and the solve still reaches the cold optimum.
func TestWarmCorruptedBasisRepaired(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 40; trial++ {
		p, _ := randFeasibleLP(rng)
		cold, err := Solve(p, Options{})
		if err != nil || cold.Status != StatusOptimal {
			t.Fatalf("trial %d: cold %v %v", trial, err, cold.Status)
		}
		// Corrupt: random statuses, heavily biased toward basic so the
		// basis is over-full and often singular (duplicate structure).
		bad := &Basis{
			Vars: make([]BasisStatus, p.NumVars()),
			Rows: make([]BasisStatus, p.NumRows()),
		}
		for j := range bad.Vars {
			bad.Vars[j] = BasisStatus(rng.Intn(4))
		}
		for i := range bad.Rows {
			if rng.Intn(3) == 0 {
				bad.Rows[i] = BasisBasic
			} else {
				bad.Rows[i] = BasisStatus(rng.Intn(4))
			}
		}
		for _, m := range []Method{MethodAuto, MethodPrimal, MethodDual} {
			sol, err := Solve(p, Options{WarmStart: bad, Method: m})
			if err != nil {
				t.Fatalf("trial %d method %v: %v", trial, m, err)
			}
			if sol.Status != StatusOptimal || math.Abs(sol.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
				t.Fatalf("trial %d method %v: got %v obj %g, want optimal %g",
					trial, m, sol.Status, sol.Objective, cold.Objective)
			}
		}
	}
}

// TestCrashBasisMatchesSlackStart: a crash basis — even a garbage one —
// only changes the starting basis, never the optimum: the crash-started
// solve must agree with the all-slack cold start on every corpus
// instance.
func TestCrashBasisMatchesSlackStart(t *testing.T) {
	rng := rand.New(rand.NewSource(654))
	for trial := 0; trial < 60; trial++ {
		p, _ := randFeasibleLP(rng)
		cold, err := Solve(p, Options{})
		if err != nil || cold.Status != StatusOptimal {
			t.Fatalf("trial %d: cold %v %v", trial, err, cold.Status)
		}
		crash := &Basis{
			Vars: make([]BasisStatus, p.NumVars()),
			Rows: make([]BasisStatus, p.NumRows()),
		}
		for j := range crash.Vars {
			if rng.Intn(2) == 0 {
				crash.Vars[j] = BasisBasic
			}
		}
		sol, err := Solve(p, Options{Crash: crash})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != StatusOptimal || math.Abs(sol.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
			t.Fatalf("trial %d: crash-start got %v obj %g, want optimal %g",
				trial, sol.Status, sol.Objective, cold.Objective)
		}
	}
}

// TestWarmDroppedColumnsRepaired: the replanning layer drops columns by
// fixing their bounds to a point (a downed link's flow variables go to
// [0,0]) and edits row right-hand sides, then resumes from the incumbent
// optimal basis — which may have any of the dropped columns basic. All
// three methods must absorb the stale basis (repair, not crash) and
// agree with a cold solve of the edited problem, whatever its status.
func TestWarmDroppedColumnsRepaired(t *testing.T) {
	rng := rand.New(rand.NewSource(987))
	for trial := 0; trial < 60; trial++ {
		p, _ := randFeasibleLP(rng)
		base, err := Solve(p, Options{})
		if err != nil || base.Status != StatusOptimal {
			t.Fatalf("trial %d: base %v %v", trial, err, base.Status)
		}

		// Edit a clone: fix a random subset of columns at their lower
		// bound (column drop) and perturb some right-hand sides. The
		// original must remain untouched for the incumbent basis to be
		// "stale but honestly obtained".
		fp := p.Fingerprint()
		q := p.Clone()
		dropped := 0
		for j := 0; j < q.NumVars(); j++ {
			if rng.Intn(3) == 0 {
				lo, _ := q.Bounds(VarID(j))
				q.SetBounds(VarID(j), lo, lo)
				dropped++
			}
		}
		if dropped == 0 {
			lo, _ := q.Bounds(0)
			q.SetBounds(0, lo, lo)
		}
		for r := 0; r < q.NumRows(); r++ {
			if rng.Intn(4) == 0 {
				q.SetRHS(r, q.RHS(r)+rng.Float64()-0.5)
			}
		}
		if p.Fingerprint() != fp {
			t.Fatalf("trial %d: editing the clone mutated the original", trial)
		}

		cold, err := Solve(q, Options{})
		if err != nil {
			t.Fatalf("trial %d: cold edited solve: %v", trial, err)
		}
		for _, m := range []Method{MethodAuto, MethodPrimal, MethodDual} {
			sol, err := Solve(q, Options{WarmStart: base.Basis, Method: m})
			if err != nil {
				t.Fatalf("trial %d method %v: %v", trial, m, err)
			}
			if sol.Status != cold.Status {
				t.Fatalf("trial %d method %v: status %v, cold %v",
					trial, m, sol.Status, cold.Status)
			}
			if cold.Status == StatusOptimal &&
				math.Abs(sol.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
				t.Fatalf("trial %d method %v: obj %g, cold %g",
					trial, m, sol.Objective, cold.Objective)
			}
		}
	}
}

// TestSetRHSAccessors pins the new RHS edit surface: SetRHS/RHS round
// trip, feed Fingerprint/EqualTo, and a pure RHS relaxation reoptimizes
// from the incumbent basis to the new optimum under the dual simplex.
func TestSetRHSAccessors(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 10, 1)
	r := p.AddRow([]Term{{x, 1}}, LE, 4)
	if p.RHS(r) != 4 {
		t.Fatalf("RHS = %g, want 4", p.RHS(r))
	}
	base, err := Solve(p, Options{})
	if err != nil || base.Objective != 4 {
		t.Fatalf("base solve: %v obj %g", err, base.Objective)
	}
	fpBefore := p.Fingerprint()
	p.SetRHS(r, 6)
	if p.RHS(r) != 6 {
		t.Fatalf("RHS after set = %g, want 6", p.RHS(r))
	}
	if p.Fingerprint() == fpBefore {
		t.Fatal("Fingerprint ignored the RHS edit")
	}
	sol, err := Solve(p, Options{WarmStart: base.Basis, Method: MethodDual})
	if err != nil || sol.Status != StatusOptimal || sol.Objective != 6 {
		t.Fatalf("warm resolve: %v %v obj %g, want optimal 6", err, sol.Status, sol.Objective)
	}
}
