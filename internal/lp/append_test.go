package lp

// Tests for the warm column-append API: AppendToRow's merge semantics
// (including the write-once contract clones rely on), Basis.Extended's
// padding rules, and the end-to-end property the replanning layer
// depends on — appending columns/rows to a solved model and resuming
// from the padded basis reaches the same optimum as building the grown
// model from scratch.

import (
	"math"
	"math/rand"
	"testing"
)

func TestAppendToRowMergesAndPreservesClones(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 10, 1)
	y := p.AddVar("y", 0, 10, 1)
	r := p.AddRow([]Term{{x, 2}, {y, 1}}, LE, 8)

	// Clones share row term slices write-once; an append on the original
	// must not be visible through the clone.
	c := p.Clone()

	// Empty append is a no-op.
	p.AppendToRow(r, nil)
	if got := len(p.rows[r]); got != 2 {
		t.Fatalf("empty append changed row: %d terms", got)
	}

	z := p.AddVar("z", 0, 10, 1)
	p.AppendToRow(r, []Term{{z, 3}, {x, 1}}) // new column + merge with existing
	row := p.rows[r]
	want := map[VarID]float64{x: 3, y: 1, z: 3}
	if len(row) != len(want) {
		t.Fatalf("merged row has %d terms, want %d", len(row), len(want))
	}
	for _, tm := range row {
		if want[tm.Var] != tm.Coeff {
			t.Fatalf("term %v coeff %g, want %g", tm.Var, tm.Coeff, want[tm.Var])
		}
	}
	if len(c.rows[r]) != 2 {
		t.Fatalf("append mutated a clone's shared row: %d terms", len(c.rows[r]))
	}

	// A zero-sum merge drops the term entirely.
	p.AppendToRow(r, []Term{{y, -1}})
	for _, tm := range p.rows[r] {
		if tm.Var == y {
			t.Fatalf("cancelled term survived with coeff %g", tm.Coeff)
		}
	}
}

func TestBasisExtendedPadding(t *testing.T) {
	b := &Basis{
		Vars: []BasisStatus{BasisBasic, BasisAtUpper},
		Rows: []BasisStatus{BasisAtLower},
	}
	ext := b.Extended(4, 3)
	if ext == nil {
		t.Fatal("valid extension returned nil")
	}
	if ext.Vars[0] != BasisBasic || ext.Vars[1] != BasisAtUpper {
		t.Fatal("existing variable statuses not preserved")
	}
	if ext.Vars[2] != BasisAtLower || ext.Vars[3] != BasisAtLower {
		t.Fatal("appended variables must enter nonbasic at lower bound")
	}
	if ext.Rows[0] != BasisAtLower {
		t.Fatal("existing row status not preserved")
	}
	if ext.Rows[1] != BasisBasic || ext.Rows[2] != BasisBasic {
		t.Fatal("appended rows must enter slack-basic")
	}
	// Same shape is a legal (pure copy) extension.
	if same := b.Extended(2, 1); same == nil {
		t.Fatal("same-shape extension returned nil")
	}
	// Shrinking or a nil receiver is not.
	if b.Extended(1, 1) != nil || b.Extended(2, 0) != nil {
		t.Fatal("shrinking extension must return nil")
	}
	var nb *Basis
	if nb.Extended(3, 3) != nil {
		t.Fatal("nil basis extension must return nil")
	}
}

// TestAppendThenWarmSolveMatchesFresh is the end-to-end contract of the
// append API: solve, append a column wired into an existing row plus a
// new row, pad the basis, re-solve warm — the optimum must match a
// from-scratch build of the grown model, cheaply.
func TestAppendThenWarmSolveMatchesFresh(t *testing.T) {
	build := func() (*Problem, VarID, VarID, int) {
		p := NewProblem(Maximize)
		x := p.AddVar("x", 0, 10, 3)
		y := p.AddVar("y", 0, 10, 2)
		r0 := p.AddRow([]Term{{x, 1}, {y, 1}}, LE, 12)
		p.AddRow([]Term{{x, 2}, {y, 1}}, LE, 16)
		return p, x, y, r0
	}

	p, x, y, r0 := build()
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("base solve: %v / %v", err, sol.Status)
	}

	// Grow: a new column z in the shared resource row plus its own row.
	z := p.AddVar("z", 0, 10, 4)
	p.AppendToRow(r0, []Term{{z, 1}})
	p.AddRow([]Term{{z, 1}, {x, 1}}, LE, 9)

	ext := sol.Basis.Extended(p.NumVars(), p.NumRows())
	if ext == nil {
		t.Fatal("basis extension failed")
	}
	warm, err := Solve(p, Options{WarmStart: ext, Method: MethodDual})
	if err != nil || warm.Status != StatusOptimal {
		t.Fatalf("warm grown solve: %v / %v", err, warm.Status)
	}

	fresh := NewProblem(Maximize)
	fx := fresh.AddVar("x", 0, 10, 3)
	fy := fresh.AddVar("y", 0, 10, 2)
	fz := fresh.AddVar("z", 0, 10, 4)
	fresh.AddRow([]Term{{fx, 1}, {fy, 1}, {fz, 1}}, LE, 12)
	fresh.AddRow([]Term{{fx, 2}, {fy, 1}}, LE, 16)
	fresh.AddRow([]Term{{fz, 1}, {fx, 1}}, LE, 9)
	ref, err := Solve(fresh, Options{})
	if err != nil || ref.Status != StatusOptimal {
		t.Fatalf("fresh grown solve: %v / %v", err, ref.Status)
	}
	if math.Abs(warm.Objective-ref.Objective) > 1e-7*(1+math.Abs(ref.Objective)) {
		t.Fatalf("warm grown objective %g != fresh %g", warm.Objective, ref.Objective)
	}
	_ = x
	_ = y
}

// TestAppendWarmProperty: randomized grown models — append several
// columns and rows (including EQ rows whose slack starts infeasible) to
// a solved random LP and check the padded-basis warm solve agrees with
// a cold solve of the grown model.
func TestAppendWarmProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		p := NewProblem(Maximize)
		nV := 3 + rng.Intn(4)
		for v := 0; v < nV; v++ {
			p.AddVar("", 0, 5+10*rng.Float64(), rng.Float64()*4)
		}
		nR := 2 + rng.Intn(3)
		for r := 0; r < nR; r++ {
			var terms []Term
			for v := 0; v < nV; v++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{VarID(v), 0.5 + rng.Float64()})
				}
			}
			if len(terms) == 0 {
				terms = []Term{{VarID(rng.Intn(nV)), 1}}
			}
			p.AddRow(terms, LE, 2+8*rng.Float64())
		}
		base, err := Solve(p, Options{})
		if err != nil || base.Status != StatusOptimal {
			t.Fatalf("trial %d: base solve %v / %v", trial, err, base.Status)
		}

		// Grow: new columns wired into existing rows, a fresh LE row over
		// a mix of old and new columns, and an EQ row pinning one new
		// column away from zero (its padded slack starts infeasible).
		nAdd := 1 + rng.Intn(2)
		var added []VarID
		for a := 0; a < nAdd; a++ {
			v := p.AddVar("", 0, 5+5*rng.Float64(), 1+4*rng.Float64())
			added = append(added, v)
			p.AppendToRow(rng.Intn(nR), []Term{{v, 0.5 + rng.Float64()}})
		}
		newRow := []Term{{added[0], 1}, {VarID(rng.Intn(nV)), 0.5 + rng.Float64()}}
		p.AddRow(newRow, LE, 1+6*rng.Float64())
		if rng.Intn(2) == 0 {
			p.AddRow([]Term{{added[len(added)-1], 1}}, EQ, 0.5+rng.Float64())
		}

		ext := base.Basis.Extended(p.NumVars(), p.NumRows())
		if ext == nil {
			t.Fatalf("trial %d: basis extension failed", trial)
		}
		warm, err := Solve(p, Options{WarmStart: ext, Method: MethodDual})
		if err != nil || warm.Status != StatusOptimal {
			t.Fatalf("trial %d: warm grown solve %v / %v", trial, err, warm.Status)
		}
		cold, err := Solve(p, Options{})
		if err != nil || cold.Status != StatusOptimal {
			t.Fatalf("trial %d: cold grown solve %v / %v", trial, err, cold.Status)
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
			t.Fatalf("trial %d: warm grown objective %g != cold %g", trial, warm.Objective, cold.Objective)
		}
	}
}
