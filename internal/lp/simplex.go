package lp

import (
	"math"
	"time"
)

// Numerical tolerances. These are conventional values for double-precision
// simplex implementations.
const (
	feasTol  = 1e-7  // bound/row feasibility
	optTol   = 1e-7  // reduced-cost optimality
	pivotTol = 1e-8  // smallest acceptable pivot magnitude
	zeroTol  = 1e-11 // values below this are treated as exact zero
)

// refactorEvery is the number of basis changes between full recomputations
// of the dense basis inverse, which bounds accumulated floating error.
const refactorEvery = 240

// varStatus describes where a variable currently sits.
type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	basic
	nonbasicFree // free variable resting at value 0
)

// simplex is the working state of one solve. All variables (structural,
// slack, artificial) live in a single index space:
//
//	[0, n)            structural variables
//	[n, n+m)          one slack per row (rows become equalities)
//	[n+m, n+m+a)      phase-1 artificials (subset of rows)
type simplex struct {
	p   *Problem
	opt Options

	m int // rows
	n int // structural variables

	// Sparse constraint matrix in column-major form, covering structural
	// columns only; slack and artificial columns are unit vectors handled
	// implicitly.
	colIdx [][]int32
	colVal [][]float64

	rhs []float64

	// Per-variable data across the full index space.
	lo, hi []float64
	cost   []float64 // phase-2 cost (internal minimization form)
	status []varStatus
	value  []float64

	nTotal int // structural + slack + artificial count

	artRow []int // artificial k corresponds to row artRow[k]

	basis  []int // basis[i] = variable basic in row i
	inBrow []int // inBrow[v] = row of basic variable v, or -1

	binv []float64 // dense m×m basis inverse, row-major (flat for cache locality)

	xB []float64 // basic variable values (mirrors value[] for basic vars)

	iter        int
	sincePivots int // pivots since last refactorization
	degenRun    int // consecutive degenerate pivots (Bland trigger)

	// scratch buffers
	y    []float64 // duals
	w    []float64 // B^-1 a_j
	erow []float64
}

func newSimplex(p *Problem, opt Options) *simplex {
	m := p.NumRows()
	n := p.NumVars()
	s := &simplex{p: p, opt: opt, m: m, n: n}

	s.colIdx = make([][]int32, n)
	s.colVal = make([][]float64, n)
	for j := 0; j < n; j++ {
		s.colIdx[j] = []int32{}
		s.colVal[j] = []float64{}
	}
	for i, row := range p.rows {
		for _, t := range row {
			j := int(t.Var)
			s.colIdx[j] = append(s.colIdx[j], int32(i))
			s.colVal[j] = append(s.colVal[j], t.Coeff)
		}
	}
	s.rhs = append([]float64(nil), p.rhs...)

	// Structural bounds and cost (convert to internal minimization).
	sign := 1.0
	if p.Dir == Maximize {
		sign = -1.0
	}
	total := n + m // artificials appended later
	s.lo = make([]float64, total, total+m)
	s.hi = make([]float64, total, total+m)
	s.cost = make([]float64, total, total+m)
	copy(s.lo, p.lo)
	copy(s.hi, p.hi)
	for j := 0; j < n; j++ {
		s.cost[j] = sign * p.obj[j]
	}
	// Slack bounds by row sense: row a'x + slack = b.
	for i := 0; i < m; i++ {
		sl := n + i
		switch p.senses[i] {
		case LE:
			s.lo[sl], s.hi[sl] = 0, Inf
		case GE:
			s.lo[sl], s.hi[sl] = math.Inf(-1), 0
		case EQ:
			s.lo[sl], s.hi[sl] = 0, 0
		}
	}
	s.nTotal = total
	return s
}

// colAppendTo accumulates column j of the full matrix into dst (len m).
// Slack/artificial columns are unit vectors.
func (s *simplex) colAppendTo(j int, dst []float64) {
	switch {
	case j < s.n:
		for k, i := range s.colIdx[j] {
			dst[i] += s.colVal[j][k]
		}
	case j < s.n+s.m:
		dst[j-s.n] += 1
	default:
		dst[s.artRow[j-s.n-s.m]] += 1
	}
}

// colDot returns a_j · y for column j.
func (s *simplex) colDot(j int, y []float64) float64 {
	switch {
	case j < s.n:
		var d float64
		idx := s.colIdx[j]
		val := s.colVal[j]
		for k := range idx {
			d += val[k] * y[idx[k]]
		}
		return d
	case j < s.n+s.m:
		return y[j-s.n]
	default:
		return y[s.artRow[j-s.n-s.m]]
	}
}

// restValue returns the value a nonbasic variable rests at.
func (s *simplex) restValue(j int) float64 {
	switch s.status[j] {
	case atLower:
		return s.lo[j]
	case atUpper:
		return s.hi[j]
	default:
		return 0 // nonbasicFree
	}
}

// initialBasisAndArtificials places every variable at a bound, installs
// slacks as basic where their natural value is feasible, and creates
// artificials for the remaining rows.
func (s *simplex) initialBasisAndArtificials() {
	n, m := s.n, s.m
	s.status = make([]varStatus, s.nTotal, s.nTotal+m)
	s.value = make([]float64, s.nTotal, s.nTotal+m)
	for j := 0; j < s.nTotal; j++ {
		s.status[j] = restStatus(s.lo[j], s.hi[j])
		s.value[j] = s.restValue(j)
	}

	// residual_i = b_i - sum_j a_ij x_j over nonbasic structurals
	resid := make([]float64, m)
	copy(resid, s.rhs)
	for j := 0; j < n; j++ {
		v := s.value[j]
		if v == 0 {
			continue
		}
		for k, i := range s.colIdx[j] {
			resid[i] -= s.colVal[j][k] * v
		}
	}

	s.basis = make([]int, m)
	s.xB = make([]float64, m)
	for i := 0; i < m; i++ {
		sl := n + i
		if resid[i] >= s.lo[sl]-feasTol && resid[i] <= s.hi[sl]+feasTol {
			// Slack is naturally feasible: make it basic.
			s.basis[i] = sl
			s.status[sl] = basic
			s.xB[i] = resid[i]
			continue
		}
		// Clamp slack to its nearest violated side and add an artificial
		// carrying the remaining residual.
		var slackVal float64
		if resid[i] < s.lo[sl] {
			slackVal = s.lo[sl]
			s.status[sl] = atLower
		} else {
			slackVal = s.hi[sl]
			s.status[sl] = atUpper
		}
		s.value[sl] = slackVal
		r := resid[i] - slackVal
		av := s.nTotal
		s.artRow = append(s.artRow, i)
		if r >= 0 {
			s.lo = append(s.lo, 0)
			s.hi = append(s.hi, Inf)
		} else {
			s.lo = append(s.lo, math.Inf(-1))
			s.hi = append(s.hi, 0)
		}
		s.cost = append(s.cost, 0)
		s.status = append(s.status, basic)
		s.value = append(s.value, r)
		s.nTotal++
		s.basis[i] = av
		s.xB[i] = r
	}

	s.inBrow = make([]int, s.nTotal)
	for j := range s.inBrow {
		s.inBrow[j] = -1
	}
	for i, v := range s.basis {
		s.inBrow[v] = i
	}

	// Initial basis inverse: identity (basis columns are unit vectors).
	s.binv = make([]float64, m*m)
	for i := 0; i < m; i++ {
		s.binv[i*m+i] = 1
	}
	for i := range s.xB {
		s.value[s.basis[i]] = s.xB[i]
	}

	s.y = make([]float64, m)
	s.w = make([]float64, m)
	s.erow = make([]float64, m)
}

func restStatus(lo, hi float64) varStatus {
	switch {
	case !math.IsInf(lo, -1) && (math.IsInf(hi, 1) || math.Abs(lo) <= math.Abs(hi)):
		return atLower
	case !math.IsInf(hi, 1):
		return atUpper
	default:
		return nonbasicFree
	}
}

func (s *simplex) solve() (*Solution, error) {
	s.initialBasisAndArtificials()

	maxIter := s.opt.MaxIter
	if maxIter == 0 {
		maxIter = 20000
		if v := 60 * s.m; v > maxIter {
			maxIter = v
		}
	}

	// Phase 1: minimize total artificial magnitude.
	if len(s.artRow) > 0 {
		phase1 := make([]float64, s.nTotal)
		for k := range s.artRow {
			j := s.n + s.m + k
			if math.IsInf(s.hi[j], 1) {
				phase1[j] = 1 // artificial in [0, inf): minimize it
			} else {
				phase1[j] = -1 // artificial in (-inf, 0]: maximize it
			}
		}
		st := s.iterate(phase1, maxIter)
		if st == StatusIterLimit || st == StatusNumericalError {
			return &Solution{Status: st, Iterations: s.iter}, nil
		}
		if st == StatusUnbounded {
			// The phase-1 objective is bounded below by zero; unbounded
			// here can only mean numerical trouble.
			return &Solution{Status: StatusNumericalError, Iterations: s.iter}, nil
		}
		// Feasible iff all artificials are (near) zero.
		sum := 0.0
		for k := range s.artRow {
			sum += math.Abs(s.value[s.n+s.m+k])
		}
		if sum > feasTol*float64(1+s.m) {
			return &Solution{Status: StatusInfeasible, Iterations: s.iter}, nil
		}
		// Pin artificials to zero for phase 2.
		for k := range s.artRow {
			j := s.n + s.m + k
			s.lo[j], s.hi[j] = 0, 0
			if s.status[j] != basic {
				s.status[j] = atLower
				s.value[j] = 0
			}
		}
	}

	// Phase 2: the real objective.
	cost := make([]float64, s.nTotal)
	copy(cost, s.cost[:s.nTotal])
	st := s.iterate(cost, maxIter)

	sol := &Solution{Status: st, Iterations: s.iter}
	if st == StatusOptimal || st == StatusIterLimit {
		sol.X = make([]float64, s.n)
		var objv float64
		for j := 0; j < s.n; j++ {
			v := s.value[j]
			if math.Abs(v) < zeroTol {
				v = 0
			}
			sol.X[j] = v
			objv += s.p.obj[j] * v
		}
		sol.Objective = objv
	}
	return sol, nil
}

// iterate runs primal simplex iterations with the given cost vector until
// optimality (returns StatusOptimal), unboundedness, or a limit.
func (s *simplex) iterate(cost []float64, maxIter int) Status {
	useBland := false
	checkDeadline := !s.opt.Deadline.IsZero()
	for {
		if s.iter >= maxIter {
			return StatusIterLimit
		}
		if checkDeadline && s.iter%64 == 0 && time.Now().After(s.opt.Deadline) {
			return StatusIterLimit
		}
		s.iter++

		// Duals: y = c_B' B^-1.
		for i := range s.y {
			s.y[i] = 0
		}
		m := s.m
		for i, v := range s.basis {
			cb := cost[v]
			if cb == 0 {
				continue
			}
			row := s.binv[i*m : i*m+m]
			for r, rv := range row {
				s.y[r] += cb * rv
			}
		}

		// Pricing: pick entering variable.
		enter := -1
		var enterDir float64
		bestScore := optTol
		for j := 0; j < s.nTotal; j++ {
			st := s.status[j]
			if st == basic {
				continue
			}
			if s.lo[j] == s.hi[j] && !math.IsInf(s.lo[j], 0) {
				continue // fixed variable can never improve
			}
			d := cost[j] - s.colDot(j, s.y)
			var score float64
			var dir float64
			switch st {
			case atLower:
				if d < -optTol {
					score, dir = -d, 1
				}
			case atUpper:
				if d > optTol {
					score, dir = d, -1
				}
			case nonbasicFree:
				if d < -optTol {
					score, dir = -d, 1
				} else if d > optTol {
					score, dir = d, -1
				}
			}
			if dir == 0 {
				continue
			}
			if useBland {
				enter, enterDir = j, dir
				break
			}
			if score > bestScore {
				bestScore, enter, enterDir = score, j, dir
			}
		}
		if enter == -1 {
			return StatusOptimal
		}

		// FTRAN: w = B^-1 a_enter.
		for i := range s.w {
			s.w[i] = 0
		}
		s.colToW(enter)

		// Ratio test.
		leave, t, leaveToUpper := s.ratioTest(enter, enterDir, useBland)
		if leave == -2 {
			return StatusUnbounded
		}

		if t < 1e-9 {
			s.degenRun++
			if s.degenRun > 2*s.m+200 {
				useBland = true
			}
		} else {
			s.degenRun = 0
			useBland = false
		}

		if leave == -1 {
			// Bound flip: entering variable moves to its other bound.
			for i := range s.basis {
				if s.w[i] != 0 {
					s.xB[i] -= t * enterDir * s.w[i]
					s.value[s.basis[i]] = s.xB[i]
				}
			}
			if enterDir > 0 {
				s.status[enter] = atUpper
				s.value[enter] = s.hi[enter]
			} else {
				s.status[enter] = atLower
				s.value[enter] = s.lo[enter]
			}
			continue
		}

		// Pivot: enter replaces basis[leave].
		out := s.basis[leave]
		newEnterVal := s.restValue(enter) + enterDir*t
		for i := range s.basis {
			if i == leave || s.w[i] == 0 {
				continue
			}
			s.xB[i] -= t * enterDir * s.w[i]
			s.value[s.basis[i]] = s.xB[i]
		}
		if leaveToUpper {
			s.status[out] = atUpper
			s.value[out] = s.hi[out]
		} else {
			s.status[out] = atLower
			s.value[out] = s.lo[out]
		}
		s.inBrow[out] = -1

		s.basis[leave] = enter
		s.inBrow[enter] = leave
		s.status[enter] = basic
		s.xB[leave] = newEnterVal
		s.value[enter] = newEnterVal

		// Product-form update of the dense inverse: Binv <- E * Binv.
		p := s.w[leave]
		if math.Abs(p) < pivotTol {
			if !s.refactorize() {
				return StatusNumericalError
			}
			continue
		}
		prow := s.binv[leave*m : leave*m+m]
		inv := 1 / p
		for r := range prow {
			prow[r] *= inv
		}
		for i := 0; i < m; i++ {
			if i == leave {
				continue
			}
			wi := s.w[i]
			if wi == 0 {
				continue
			}
			row := s.binv[i*m : i*m+m]
			for r, pv := range prow {
				row[r] -= wi * pv
			}
		}

		s.sincePivots++
		if s.sincePivots >= refactorEvery {
			if !s.refactorize() {
				return StatusNumericalError
			}
		}
	}
}

// colToW computes w = B^-1 a_enter into s.w using the dense inverse.
func (s *simplex) colToW(enter int) {
	m := s.m
	switch {
	case enter < s.n:
		idx := s.colIdx[enter]
		val := s.colVal[enter]
		for i := 0; i < m; i++ {
			var acc float64
			row := s.binv[i*m : i*m+m]
			for k, ix := range idx {
				acc += row[ix] * val[k]
			}
			s.w[i] = acc
		}
	default:
		var r int
		if enter < s.n+s.m {
			r = enter - s.n
		} else {
			r = s.artRow[enter-s.n-s.m]
		}
		for i := 0; i < m; i++ {
			s.w[i] = s.binv[i*m+r]
		}
	}
}

// ratioTest finds the blocking constraint for the entering variable moving
// in direction dir. Returns (leaveRow, step, leavesAtUpper). leaveRow -1
// means a bound flip of the entering variable; -2 means unbounded.
func (s *simplex) ratioTest(enter int, dir float64, useBland bool) (int, float64, bool) {
	t := math.Inf(1)
	// Entering variable's own range.
	if !math.IsInf(s.lo[enter], -1) && !math.IsInf(s.hi[enter], 1) {
		t = s.hi[enter] - s.lo[enter]
	}
	leave := -1
	leaveToUpper := false
	bestPivot := 0.0
	for i := 0; i < s.m; i++ {
		wi := dir * s.w[i]
		v := s.basis[i]
		var ti float64
		var toUpper bool
		switch {
		case wi > pivotTol:
			// Basic variable decreases toward its lower bound.
			if math.IsInf(s.lo[v], -1) {
				continue
			}
			ti = (s.xB[i] - s.lo[v]) / wi
			toUpper = false
		case wi < -pivotTol:
			// Basic variable increases toward its upper bound.
			if math.IsInf(s.hi[v], 1) {
				continue
			}
			ti = (s.hi[v] - s.xB[i]) / (-wi)
			toUpper = true
		default:
			continue
		}
		if ti < 0 {
			ti = 0 // basic var already (slightly) beyond bound
		}
		if ti < t-1e-10 {
			t, leave, leaveToUpper = ti, i, toUpper
			bestPivot = math.Abs(wi)
		} else if ti <= t+1e-10 && leave != -1 {
			// Tie-break: prefer the largest pivot for stability, or the
			// smallest basis index under Bland's rule.
			if useBland {
				if s.basis[i] < s.basis[leave] {
					leave, leaveToUpper = i, toUpper
					bestPivot = math.Abs(wi)
				}
			} else if math.Abs(wi) > bestPivot {
				leave, leaveToUpper = i, toUpper
				bestPivot = math.Abs(wi)
			}
		}
	}
	if math.IsInf(t, 1) {
		return -2, 0, false
	}
	return leave, t, leaveToUpper
}

// refactorize recomputes the dense basis inverse from scratch by
// Gauss-Jordan elimination with partial pivoting, and recomputes basic
// values. Returns false if the basis is numerically singular.
func (s *simplex) refactorize() bool {
	m := s.m
	// Build dense basis matrix.
	bm := make([][]float64, m)
	for i := range bm {
		bm[i] = make([]float64, m)
	}
	col := make([]float64, m)
	for c, v := range s.basis {
		for i := range col {
			col[i] = 0
		}
		s.colAppendTo(v, col)
		for i := 0; i < m; i++ {
			bm[i][c] = col[i]
		}
	}
	inv := make([][]float64, m)
	for i := range inv {
		inv[i] = make([]float64, m)
		inv[i][i] = 1
	}
	for c := 0; c < m; c++ {
		// Partial pivot.
		p, pv := -1, pivotTol
		for i := c; i < m; i++ {
			if a := math.Abs(bm[i][c]); a > pv {
				p, pv = i, a
			}
		}
		if p == -1 {
			return false
		}
		bm[c], bm[p] = bm[p], bm[c]
		inv[c], inv[p] = inv[p], inv[c]
		d := 1 / bm[c][c]
		for r := 0; r < m; r++ {
			bm[c][r] *= d
			inv[c][r] *= d
		}
		for i := 0; i < m; i++ {
			if i == c {
				continue
			}
			f := bm[i][c]
			if f == 0 {
				continue
			}
			for r := 0; r < m; r++ {
				bm[i][r] -= f * bm[c][r]
				inv[i][r] -= f * inv[c][r]
			}
		}
	}
	for i := 0; i < m; i++ {
		copy(s.binv[i*m:i*m+m], inv[i])
	}
	s.sincePivots = 0

	// Recompute basic values: x_B = B^-1 (b - A_N x_N).
	resid := make([]float64, m)
	copy(resid, s.rhs)
	for j := 0; j < s.nTotal; j++ {
		if s.status[j] == basic {
			continue
		}
		v := s.value[j]
		if v == 0 {
			continue
		}
		switch {
		case j < s.n:
			for k, i := range s.colIdx[j] {
				resid[i] -= s.colVal[j][k] * v
			}
		case j < s.n+s.m:
			resid[j-s.n] -= v
		default:
			resid[s.artRow[j-s.n-s.m]] -= v
		}
	}
	for i := 0; i < m; i++ {
		var acc float64
		row := s.binv[i*m : i*m+m]
		for r, rv := range resid {
			acc += row[r] * rv
		}
		s.xB[i] = acc
		s.value[s.basis[i]] = acc
	}
	return true
}
