package lp

// simplex.go is the revised-simplex driver. The basis is represented by
// the sparse LU factorization in factor.go (never a dense inverse), the
// entering variable is chosen by the partial pricer in pricing.go, and
// feasibility is reached by a composite phase 1 that minimizes the total
// bound violation of the basic variables directly — no artificial
// variables, so a warm-started basis that is already (nearly) feasible
// skips phase 1 in a handful of iterations.

import (
	"cmp"
	"fmt"
	"math"
	"os"
	"slices"
	"time"
)

var lpDebug = os.Getenv("LP_DEBUG") != ""

// Numerical tolerances. These are conventional values for double-precision
// simplex implementations.
const (
	feasTol  = 1e-7  // bound/row feasibility
	optTol   = 1e-7  // reduced-cost optimality
	pivotTol = 1e-8  // smallest acceptable pivot magnitude
	zeroTol  = 1e-11 // values below this are treated as exact zero
)

// boundsFixed reports whether a variable's bounds pin it to a single
// value (EQ slacks and presolve-fixed columns). Bounds are assigned,
// never computed, so identity — not tolerance — is the correct test:
// comparing the bit patterns says exactly that, and keeps a pair of
// bounds within feasTol of each other (a genuinely thin range) from
// being misread as fixed.
func boundsFixed(lo, hi float64) bool {
	return math.Float64bits(lo) == math.Float64bits(hi)
}

// varStatus describes where a variable currently sits.
type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	basic
	nonbasicFree // free variable resting at value 0
)

// simplex is the working state of one solve. All variables live in a
// single index space:
//
//	[0, n)    structural variables
//	[n, n+m)  one slack per row (rows become equalities)
type simplex struct {
	p   *Problem
	opt Options

	m int // rows
	n int // structural variables

	// Sparse constraint matrix in compressed-sparse-column form, covering
	// structural columns only; slack columns are unit vectors handled
	// implicitly. colRow/colVal share two backing arrays (one counted
	// allocation each) with per-column extents in colStart.
	colStart []int32
	colRow   []int32
	colVal   []float64

	rhs []float64

	// Per-variable data across the full index space.
	lo, hi []float64
	cost   []float64 // phase-2 cost (internal minimization form)
	status []varStatus
	value  []float64

	nTotal int // structural + slack count

	basis  []int // basis[i] = variable basic in position i
	inBrow []int // inBrow[v] = basis position of v, or -1

	lu *luFactor

	xB []float64 // basic variable values (mirrors value[] for basic vars)

	iter      int
	refactors int
	degenRun  int // consecutive degenerate pivots (Bland trigger)

	// Anti-stall bound perturbation state (see perturbBounds).
	pertRound int
	perturbed bool
	trueLo    []float64 // pristine bounds while perturbed
	trueHi    []float64

	priceCursor int       // partial-pricing rotation state
	gamma       []float64 // devex reference weights, one per column

	// scratch buffers
	y        []float64 // duals (BTRAN result)
	w        []float64 // FTRAN spike B^-1 a_j
	cb       []float64 // basic costs, position space
	resid    []float64
	wNnz     []int32
	p1events []p1event

	// Dual-simplex state (dual.go), allocated on first dual use.
	d         []float64 // reduced costs of nonbasic columns
	dwt       []float64 // devex reference weights, one per basis row
	alpha     []float64 // priced pivot row ρᵀA (full index space)
	alphaSeen []bool
	alphaNnz  []int32
	cand      []dualCand
	flipBuf   []int32
	// Row-wise (CSR) copy of the structural matrix for pivotRow.
	rowStart []int32
	rowColJ  []int32
	rowValR  []float64

	// per-position basis column views handed to the factorization
	fcolIdx [][]int32
	fcolVal [][]float64
	// unit-column backing for slack columns
	slackIdx []int32
	slackVal []float64
}

func newSimplex(p *Problem, opt Options) *simplex {
	m := p.NumRows()
	n := p.NumVars()
	s := &simplex{p: p, opt: opt, m: m, n: n}

	// Build the structural matrix in CSC form with a single counted pass:
	// count per-column entries, prefix-sum into extents, then fill the two
	// shared backing arrays.
	cnt := make([]int32, n+1)
	nnz := 0
	for _, row := range p.rows {
		for _, t := range row {
			cnt[t.Var+1]++
			nnz++
		}
	}
	s.colStart = cnt
	for j := 0; j < n; j++ {
		s.colStart[j+1] += s.colStart[j]
	}
	s.colRow = make([]int32, nnz)
	s.colVal = make([]float64, nnz)
	next := make([]int32, n)
	copy(next, s.colStart[:n])
	for i, row := range p.rows {
		for _, t := range row {
			k := next[t.Var]
			next[t.Var]++
			s.colRow[k] = int32(i)
			s.colVal[k] = t.Coeff
		}
	}

	s.rhs = append([]float64(nil), p.rhs...)

	// Structural bounds and cost (convert to internal minimization).
	sign := 1.0
	if p.Dir == Maximize {
		sign = -1.0
	}
	total := n + m
	s.nTotal = total
	s.lo = make([]float64, total)
	s.hi = make([]float64, total)
	s.cost = make([]float64, total)
	copy(s.lo, p.lo)
	copy(s.hi, p.hi)
	for j := 0; j < n; j++ {
		s.cost[j] = sign * p.obj[j]
	}
	// Slack bounds by row sense: row a'x + slack = b.
	for i := 0; i < m; i++ {
		sl := n + i
		switch p.senses[i] {
		case LE:
			s.lo[sl], s.hi[sl] = 0, Inf
		case GE:
			s.lo[sl], s.hi[sl] = math.Inf(-1), 0
		case EQ:
			s.lo[sl], s.hi[sl] = 0, 0
		}
	}
	return s
}

// column returns the sparse form of column j of the full matrix.
func (s *simplex) column(j int) ([]int32, []float64) {
	if j < s.n {
		return s.colRow[s.colStart[j]:s.colStart[j+1]], s.colVal[s.colStart[j]:s.colStart[j+1]]
	}
	r := j - s.n
	return s.slackIdx[r : r+1], s.slackVal[r : r+1]
}

// scatterCol accumulates column j into the dense vector dst (len m).
func (s *simplex) scatterCol(j int, dst []float64) {
	idx, val := s.column(j)
	for k, i := range idx {
		dst[i] += val[k]
	}
}

// colDot returns a_j · y for column j.
func (s *simplex) colDot(j int, y []float64) float64 {
	if j < s.n {
		var d float64
		lo, hi := s.colStart[j], s.colStart[j+1]
		idx := s.colRow[lo:hi]
		val := s.colVal[lo:hi]
		for k := range idx {
			d += val[k] * y[idx[k]]
		}
		return d
	}
	return y[j-s.n]
}

// restValue returns the value a nonbasic variable rests at.
func (s *simplex) restValue(j int) float64 {
	switch s.status[j] {
	case atLower:
		return s.lo[j]
	case atUpper:
		return s.hi[j]
	default:
		return 0 // nonbasicFree
	}
}

func restStatus(lo, hi float64) varStatus {
	switch {
	case !math.IsInf(lo, -1) && (math.IsInf(hi, 1) || math.Abs(lo) <= math.Abs(hi)):
		return atLower
	case !math.IsInf(hi, 1):
		return atUpper
	default:
		return nonbasicFree
	}
}

// sanitizeStatus reconciles a requested nonbasic status with the current
// bounds (warm starts may carry statuses from before a bound change).
func sanitizeStatus(st varStatus, lo, hi float64) varStatus {
	loInf, hiInf := math.IsInf(lo, -1), math.IsInf(hi, 1)
	switch st {
	case atLower:
		if !loInf {
			return atLower
		}
		if !hiInf {
			return atUpper
		}
		return nonbasicFree
	case atUpper:
		if !hiInf {
			return atUpper
		}
		if !loInf {
			return atLower
		}
		return nonbasicFree
	default:
		if loInf && hiInf {
			return nonbasicFree
		}
		return restStatus(lo, hi)
	}
}

// install sets up statuses, the starting basis (warm or cold), the LU
// factorization, and the basic values.
func (s *simplex) install() {
	n, m := s.n, s.m
	s.status = make([]varStatus, s.nTotal)
	s.value = make([]float64, s.nTotal)
	s.basis = make([]int, m)
	s.inBrow = make([]int, s.nTotal)
	s.xB = make([]float64, m)
	s.y = make([]float64, m)
	s.w = make([]float64, m)
	s.cb = make([]float64, m)
	s.resid = make([]float64, m)
	s.wNnz = make([]int32, 0, m)
	s.slackIdx = make([]int32, m)
	s.slackVal = make([]float64, m)
	for i := 0; i < m; i++ {
		s.slackIdx[i] = int32(i)
		s.slackVal[i] = 1
	}
	s.fcolIdx = make([][]int32, m)
	s.fcolVal = make([][]float64, m)
	// Pricing weights: static scale-invariant column norms by default
	// (cheap, adequate on small problems), upgraded in place by the devex
	// recurrence on large instances (see devexUpdate's caller).
	s.gamma = make([]float64, s.nTotal)
	for j := 0; j < s.nTotal; j++ {
		w := 1.0
		_, val := s.column(j)
		for _, v := range val {
			w += v * v
		}
		s.gamma[j] = w
	}
	s.lu = newLUFactor(m)
	for j := range s.inBrow {
		s.inBrow[j] = -1
	}

	warm := s.opt.WarmStart
	if warm == nil {
		// A crash basis is installed exactly like a warm start (statuses
		// sanitized, short bases padded, singular bases repaired); it only
		// differs in intent — a structural phase-1 seed, not a claim of
		// near-optimality — so it never triggers the dual-reoptimization
		// path the way Options.WarmStart does.
		warm = s.opt.Crash
	}
	useWarm := warm != nil && len(warm.Vars) == n && len(warm.Rows) == m
	nBasic := 0
	if useWarm {
		toVS := func(bs BasisStatus) varStatus {
			switch bs {
			case BasisBasic:
				return basic
			case BasisAtUpper:
				return atUpper
			case BasisFree:
				return nonbasicFree
			default:
				return atLower
			}
		}
		for j := 0; j < s.nTotal; j++ {
			var want varStatus
			if j < n {
				want = toVS(warm.Vars[j])
			} else {
				want = toVS(warm.Rows[j-n])
			}
			if want == basic {
				if nBasic < m {
					s.basis[nBasic] = j
					s.status[j] = basic
					nBasic++
					continue
				}
				want = restStatus(s.lo[j], s.hi[j]) // demote overflow
			}
			s.status[j] = sanitizeStatus(want, s.lo[j], s.hi[j])
			s.value[j] = s.restValue(j)
		}
		// Pad a short basis with nonbasic slacks.
		for i := 0; i < m && nBasic < m; i++ {
			sl := n + i
			if s.status[sl] == basic {
				continue
			}
			s.basis[nBasic] = sl
			s.status[sl] = basic
			nBasic++
		}
	}
	if !useWarm || nBasic < m {
		// Cold start: every structural at a bound, the slack basis (its
		// identity factorization is free, and the composite phase 1
		// reaches feasibility without artificial variables).
		for j := 0; j < n; j++ {
			s.status[j] = restStatus(s.lo[j], s.hi[j])
			s.value[j] = s.restValue(j)
		}
		for i := 0; i < m; i++ {
			sl := n + i
			s.basis[i] = sl
			s.status[sl] = basic
		}
	}
	for i, v := range s.basis {
		s.inBrow[v] = i
	}

	s.factorizeBasis()
	s.computeXB()
}

// factorizeBasis (re)factorizes the current basis, repairing singular
// bases by slotting row slacks into the uncovered rows. The all-slack
// fallback makes this effectively infallible; it reports false only if
// even that cannot be factorized (which would indicate corruption).
func (s *simplex) factorizeBasis() bool {
	for attempt := 0; attempt < 4; attempt++ {
		for pos, v := range s.basis {
			s.fcolIdx[pos], s.fcolVal[pos] = s.column(v)
		}
		failRows, failCols := s.lu.factorize(s.fcolIdx, s.fcolVal)
		if failRows == nil {
			s.refactors++
			return true
		}
		if attempt < 2 {
			s.repairBasis(failRows, failCols)
			continue
		}
		// Last resort: restart from the identity (all-slack) basis.
		for j := 0; j < s.nTotal; j++ {
			if s.status[j] == basic {
				s.status[j] = restStatus(s.lo[j], s.hi[j])
				s.value[j] = s.restValue(j)
			}
			s.inBrow[j] = -1
		}
		for i := 0; i < s.m; i++ {
			sl := s.n + i
			s.basis[i] = sl
			s.status[sl] = basic
			s.inBrow[sl] = i
		}
	}
	return false
}

// repairBasis replaces the basis entries at the unpivoted positions with
// the slacks of the unpivoted rows (unit columns covering exactly the
// uncovered part of the space), kicking the dependent variables out to
// their nearest bound.
func (s *simplex) repairBasis(failRows, failCols []int32) {
	assigned := make([]bool, len(failCols))
	var leftRows []int32
	for _, r := range failRows {
		sl := s.n + int(r)
		if p := s.inBrow[sl]; p >= 0 {
			// Already basic; its position must be among the failed ones.
			for ci, pc := range failCols {
				if int(pc) == p {
					assigned[ci] = true
					break
				}
			}
			continue
		}
		leftRows = append(leftRows, r)
	}
	li := 0
	for ci, pc := range failCols {
		if assigned[ci] || li >= len(leftRows) {
			continue
		}
		r := leftRows[li]
		li++
		pos := int(pc)
		out := s.basis[pos]
		s.inBrow[out] = -1
		s.status[out] = restStatus(s.lo[out], s.hi[out])
		s.value[out] = s.restValue(out)
		sl := s.n + int(r)
		s.basis[pos] = sl
		s.status[sl] = basic
		s.inBrow[sl] = pos
	}
}

// computeXB recomputes the basic values x_B = B^-1 (b - A_N x_N) from the
// current statuses and factorization.
func (s *simplex) computeXB() {
	copy(s.resid, s.rhs)
	for j := 0; j < s.nTotal; j++ {
		if s.status[j] == basic {
			continue
		}
		v := s.value[j]
		if v == 0 {
			continue
		}
		idx, val := s.column(j)
		for k, i := range idx {
			s.resid[i] -= val[k] * v
		}
	}
	s.lu.ftran(s.resid)
	copy(s.xB, s.resid)
	for i := range s.xB {
		s.value[s.basis[i]] = s.xB[i]
	}
}

// perturbBounds breaks ratio-test ties by shifting every non-fixed
// finite bound outward by a tiny deterministic pseudo-random amount —
// the standard anti-degeneracy device: on the massively degenerate
// polytopes of time-expanded flow LPs, exact bound ties let the simplex
// walk objective plateaus indefinitely, and distinct perturbed vertices
// make every step strictly improving again. The shifts only RELAX the
// problem, so an infeasibility verdict under perturbation still stands
// for the true problem; an optimality verdict is cleaned up by
// restoreBounds plus a short reoptimization. Each round uses fresh
// offsets (deterministic in the round number, preserving solve
// determinism).
func (s *simplex) perturbBounds() {
	if !s.perturbed {
		s.trueLo = append([]float64(nil), s.lo...)
		s.trueHi = append([]float64(nil), s.hi...)
		s.perturbed = true
	}
	s.pertRound++
	const pertScale = 1e-6
	seed := uint64(0x9e3779b97f4a7c15) * uint64(s.pertRound)
	next := func(j int) float64 {
		x := seed + uint64(j)*0xbf58476d1ce4e5b9
		x ^= x >> 31
		x *= 0x94d049bb133111eb
		x ^= x >> 29
		return 0.5 + float64(x>>40)/(2*float64(1<<24)) // in [0.5, 1)
	}
	for j := 0; j < s.nTotal; j++ {
		lo, hi := s.trueLo[j], s.trueHi[j]
		if boundsFixed(lo, hi) {
			continue // fixed (EQ slacks included): semantics must not move
		}
		if !math.IsInf(lo, -1) {
			s.lo[j] = lo - pertScale*(1+math.Abs(lo))*next(2*j)
		}
		if !math.IsInf(hi, 1) {
			s.hi[j] = hi + pertScale*(1+math.Abs(hi))*next(2*j+1)
		}
		if s.status[j] != basic {
			s.value[j] = s.restValue(j)
		}
	}
	s.computeXB()
}

// restoreBounds undoes perturbBounds: pristine bounds return, nonbasic
// variables snap back onto them, and the basic values are recomputed.
// The follow-up phase-1/phase-2 pass repairs the ~perturbation-sized
// violations and re-certifies optimality on the exact problem.
func (s *simplex) restoreBounds() {
	if !s.perturbed {
		return
	}
	copy(s.lo, s.trueLo)
	copy(s.hi, s.trueHi)
	s.perturbed = false
	for j := 0; j < s.nTotal; j++ {
		if s.status[j] != basic {
			s.value[j] = s.restValue(j)
		}
	}
	s.computeXB()
}

// totalInfeas sums the bound violations of the basic variables, ignoring
// sub-tolerance noise (which can otherwise accumulate across thousands of
// rows into an apparent infeasibility).
func (s *simplex) totalInfeas() float64 {
	var sum float64
	for i, v := range s.basis {
		if d := s.lo[v] - s.xB[i]; d > feasTol {
			sum += d
		} else if d := s.xB[i] - s.hi[v]; d > feasTol {
			sum += d
		}
	}
	return sum
}

// recertifyFeasible runs a phase-1 mop-up and reports the status the
// surrounding solve should continue with: StatusOptimal when the point
// is (within tolerance) primal feasible, StatusIterLimit when the
// budget expired mid-mop-up (passes through so the caller keeps its
// partial-point semantics), StatusNumericalError otherwise.
func (s *simplex) recertifyFeasible(maxIter int) Status {
	p1 := s.iterate(true, nil, maxIter)
	if p1 == StatusInfeasible && s.totalInfeas() <= feasTol*float64(1+s.m) {
		return StatusOptimal
	}
	if p1 == StatusOptimal || p1 == StatusIterLimit {
		return p1
	}
	return StatusNumericalError
}

func (s *simplex) solve() (*Solution, error) {
	s.install()

	maxIter := s.opt.MaxIter
	if maxIter == 0 {
		maxIter = 20000
		if v := 60 * s.m; v > maxIter {
			maxIter = v
		}
	}

	// done wraps up a solve that ends with the given status; the current
	// basis is always snapshotted (even infeasible or out-of-budget bases
	// are useful warm-start hints for related solves).
	done := func(st Status) (*Solution, error) {
		return &Solution{
			Status:           st,
			Iterations:       s.iter,
			Refactorizations: s.refactors,
			FTUpdates:        s.lu.statUpdates,
			UpdateNnz:        s.lu.statUpdNnz,
			Basis:            s.snapshot(),
		}, nil
	}

	// Test hook: pre-apply anti-stall bound perturbation rounds so the
	// restore/re-certification exit paths can be exercised directly.
	for i := 0; i < s.opt.testPerturb; i++ {
		s.perturbBounds()
	}

	// Method selection: the dual simplex runs first when requested (or,
	// under MethodAuto, when a warm-start basis prices out dual feasible
	// — the reoptimization case it exists for). Whatever the dual
	// concludes, the primal phases below still run from the basis it
	// leaves behind: after a dual optimum they certify and return in a
	// handful of iterations; after a dual-unboundedness verdict the
	// composite phase 1 independently confirms infeasibility; after a
	// stall the primal simply finishes the job.
	useDual := false
	switch s.opt.Method {
	case MethodPrimal:
	case MethodDual:
		useDual = s.prepareDual(true)
	default:
		useDual = s.opt.WarmStart != nil && s.prepareDual(false)
	}
	if useDual {
		switch st := s.dualIterate(maxIter); st {
		case StatusOptimal, StatusInfeasible, statusDualStall:
			// Fall through to the primal phases for certification,
			// confirmation, or completion respectively.
		default:
			return done(st)
		}
	}

	// The phase pair below may run under anti-stall bound perturbation
	// (see perturbBounds); an optimum found on perturbed bounds is cleaned
	// up by restoring the exact bounds and reoptimizing — normally a
	// handful of pivots from the adjacent perturbed vertex.
	var st Status
restart:
	for restores := 0; ; restores++ {
		// Phase 1: drive the basic bound violations to zero (a no-op when
		// the starting basis — cold or warm — is already primal feasible).
		// An infeasibility verdict is only accepted after it survives a
		// fresh factorization, so accumulated floating drift cannot fake
		// one. (Perturbation only relaxes bounds, so an infeasibility
		// verdict under perturbation stands for the true problem.)
	phase1:
		for tries := 0; ; tries++ {
			switch st := s.iterate(true, nil, maxIter); st {
			case StatusOptimal:
				break phase1 // feasible
			case StatusInfeasible:
				// Priced out at minimal infeasibility; decide by magnitude.
				if s.totalInfeas() <= feasTol*float64(1+s.m) {
					break phase1
				}
				if tries < 2 {
					if !s.factorizeBasis() {
						return done(StatusNumericalError)
					}
					s.computeXB()
					continue
				}
				return done(StatusInfeasible)
			case StatusUnbounded:
				// The phase-1 objective is bounded below by zero; unbounded
				// here can only mean numerical trouble.
				return done(StatusNumericalError)
			default:
				return done(st)
			}
		}

		// Phase 2: the real objective. An optimality verdict must describe
		// a primal-feasible point: a mid-phase singular-basis repair (or
		// plain drift) can silently kick the iterate out of feasibility, so
		// re-check and loop back through phase 1 if violations reappeared.
		// A statusPerturbed hand-back (anti-stall bound perturbation) also
		// routes through phase 1, which mops the perturbation-sized
		// violations in a few pivots.
		for tries, perts := 0, 0; ; {
			st = s.iterate(false, s.cost, maxIter)
			if st == StatusOptimal && s.totalInfeas() > feasTol*float64(1+s.m) {
				if tries++; tries > 2 {
					st = StatusNumericalError
					break
				}
			} else if st == statusPerturbed {
				if perts++; perts > 4 {
					st = StatusNumericalError
					break
				}
			} else {
				break
			}
			// The iterate was feasible when phase 2 started, so failing
			// to restore feasibility now is numerical trouble (or an
			// expired budget, which passes through).
			if p1 := s.recertifyFeasible(maxIter); p1 != StatusOptimal {
				st = p1
				break
			}
		}

		if st == StatusOptimal && s.perturbed {
			// An optimal verdict on perturbed bounds never leaves this
			// loop unrestored: the exact bounds return and the phases
			// reoptimize. The restore budget cannot actually be exhausted
			// while perturbation sessions are capped (perturbBounds runs
			// at most pertRound < 3 times plus one test pre-seed, so at
			// most three restores are ever needed); the branch below is a
			// defensive net should that invariant change — it re-certifies
			// feasibility on the pristine bounds so an "optimal" verdict
			// can never describe values (or an objective priced from them)
			// outside them.
			s.restoreBounds()
			if restores < 3 {
				continue restart
			}
			if p1 := s.recertifyFeasible(maxIter); p1 != StatusOptimal {
				st = p1
			}
		}
		break
	}
	if s.perturbed {
		// Non-optimal exit while perturbed (budget, numerical): report
		// against the true bounds.
		s.restoreBounds()
	}

	sol, _ := done(st)
	if st == StatusOptimal || st == StatusIterLimit {
		sol.X = make([]float64, s.n)
		var objv float64
		for j := 0; j < s.n; j++ {
			v := s.value[j]
			if math.Abs(v) < zeroTol {
				v = 0
			}
			sol.X[j] = v
			objv += s.p.obj[j] * v
		}
		sol.Objective = objv
	}
	if st == StatusOptimal && s.m > 0 {
		// Row duals y = B⁻ᵀc_B, converted from the internal minimization
		// form back to the problem's stated direction.
		for i := 0; i < s.m; i++ {
			s.cb[i] = s.cost[s.basis[i]]
		}
		copy(s.y, s.cb)
		s.lu.btran(s.y)
		sign := 1.0
		if s.p.Dir == Maximize {
			sign = -1.0
		}
		sol.Duals = make([]float64, s.m)
		for i := range sol.Duals {
			d := sign * s.y[i]
			if math.Abs(d) < zeroTol {
				d = 0
			}
			sol.Duals[i] = d
		}
	}
	return sol, nil
}

// snapshot captures the current basis for warm-starting a later solve.
func (s *simplex) snapshot() *Basis {
	toBS := func(st varStatus) BasisStatus {
		switch st {
		case basic:
			return BasisBasic
		case atUpper:
			return BasisAtUpper
		case nonbasicFree:
			return BasisFree
		default:
			return BasisAtLower
		}
	}
	b := &Basis{
		Vars: make([]BasisStatus, s.n),
		Rows: make([]BasisStatus, s.m),
	}
	for j := 0; j < s.n; j++ {
		b.Vars[j] = toBS(s.status[j])
	}
	for i := 0; i < s.m; i++ {
		b.Rows[i] = toBS(s.status[s.n+i])
	}
	return b
}

// interrupted reports whether the solve's wall-clock budget is spent: the
// Options deadline has passed or the Options context is done. Checked
// every 64 iterations by both simplex drivers, so a cancelled solve
// returns (with StatusIterLimit and a usable basis snapshot) promptly.
func (s *simplex) interrupted() bool {
	if !s.opt.Deadline.IsZero() && time.Now().After(s.opt.Deadline) {
		return true
	}
	if s.opt.Context != nil && s.opt.Context.Err() != nil {
		return true
	}
	return false
}

// iterate runs primal simplex iterations until the phase completes.
// Phase 1 (phase1 true, cost nil) minimizes the total bound violation of
// the basic variables and returns StatusOptimal once feasible or
// StatusInfeasible when violations remain at a phase-1 optimum. Phase 2
// minimizes the given cost vector and returns StatusOptimal or
// StatusUnbounded. Both return StatusIterLimit/StatusNumericalError on
// the respective failures.
func (s *simplex) iterate(phase1 bool, cost []float64, maxIter int) Status {
	useBland := false
	checkBudget := !s.opt.Deadline.IsZero() || s.opt.Context != nil
	m := s.m

	// Stall escalation: massively degenerate instances can walk objective
	// plateaus forever with nonzero-length steps, which the per-step
	// degeneracy counter below never sees (each step resets it). Track
	// the actual phase objective over fixed windows; a windowful of no
	// progress first forces a fresh factorization (drift can manufacture
	// phantom candidates), and a second consecutive one pins Bland's rule
	// on until progress resumes, restoring guaranteed termination.
	const stallWindow = 512
	phaseObj := func() float64 {
		if phase1 {
			return s.totalInfeas()
		}
		// Full objective, nonbasic values included: bound-flip progress
		// must register, or flip-heavy windows would read as stalls.
		var v float64
		for j := 0; j < s.nTotal; j++ {
			if x := s.value[j]; x != 0 {
				v += cost[j] * x
			}
		}
		return v
	}
	lastObj := math.Inf(1)
	stallWins := 0
	sinceCheck := 0

	for {
		if s.iter >= maxIter {
			return StatusIterLimit
		}
		if sinceCheck++; sinceCheck >= stallWindow {
			sinceCheck = 0
			cur := phaseObj()
			if cur >= lastObj-1e-9*(1+math.Abs(lastObj)) {
				stallWins++
				switch {
				case stallWins == 1:
					// Drift can manufacture phantom candidates; refresh.
					if !s.factorizeBasis() {
						return StatusNumericalError
					}
					s.computeXB()
				case stallWins == 2 && s.pertRound < 3:
					s.perturbBounds()
					if !phase1 {
						// The shifted bounds leave perturbation-sized
						// violations on the basics; hand control back so
						// a phase-1 mop-up runs before phase 2 resumes.
						return statusPerturbed
					}
					stallWins = 0
					cur = phaseObj() // bounds moved; rebase the window
				}
			} else {
				stallWins = 0
			}
			lastObj = cur
		}
		if stallWins >= 2 {
			useBland = true // sticky until the windowed objective moves
		}
		if checkBudget && s.iter%64 == 0 && s.interrupted() {
			return StatusIterLimit
		}
		if lpDebug && s.iter%5000 == 0 {
			fmt.Fprintf(os.Stderr, "lp: iter=%d refactors=%d updates=%d luNnz=%d uNnz=%d(base %d) rNnz=%d obj=%.6g p1=%v bland=%v\n",
				s.iter, s.refactors, s.lu.statUpdates, s.lu.luNnz, s.lu.uNnz, s.lu.baseUNnz, s.lu.rNnz, phaseObj(), phase1, useBland)
		}
		s.iter++

		// Basic costs in position space: the phase-1 objective is the
		// total violation, whose gradient on basic variables is ±1.
		if phase1 {
			any := false
			for i := 0; i < m; i++ {
				v := s.basis[i]
				switch {
				case s.xB[i] < s.lo[v]-feasTol:
					s.cb[i] = -1
					any = true
				case s.xB[i] > s.hi[v]+feasTol:
					s.cb[i] = 1
					any = true
				default:
					s.cb[i] = 0
				}
			}
			if !any {
				return StatusOptimal // primal feasible: phase 1 done
			}
		} else {
			for i := 0; i < m; i++ {
				s.cb[i] = cost[s.basis[i]]
			}
		}

		// BTRAN: y = B^-T c_B.
		copy(s.y, s.cb)
		s.lu.btran(s.y)

		// Pricing: pick the entering variable.
		var pcost []float64
		if !phase1 {
			pcost = cost
		}
		enter, enterDir := s.price(pcost, s.y, useBland)
		if enter == -1 {
			if phase1 {
				return StatusInfeasible
			}
			return StatusOptimal
		}

		// FTRAN: w = B^-1 a_enter (spike saved for the FT update below).
		for i := range s.w {
			s.w[i] = 0
		}
		s.scatterCol(enter, s.w)
		s.lu.ftranPivot(s.w)
		s.wNnz = s.wNnz[:0]
		for i := 0; i < m; i++ {
			if math.Abs(s.w[i]) > dropTol {
				s.wNnz = append(s.wNnz, int32(i))
			}
		}

		// Ratio test.
		var leave int
		var t float64
		var leaveToUpper bool
		if phase1 {
			slope0 := enterDir * -s.colDot(enter, s.y)
			leave, t, leaveToUpper = s.ratioTestPhase1(enter, enterDir, slope0, useBland)
		} else {
			leave, t, leaveToUpper = s.ratioTest(enter, enterDir, useBland)
		}
		if leave == -2 {
			if phase1 {
				// A feasibility-improving direction with no blocking bound
				// cannot exist; the factorization has drifted.
				return StatusNumericalError
			}
			return StatusUnbounded
		}

		if t < 1e-9 {
			s.degenRun++
			if s.degenRun > 2*s.m+200 {
				useBland = true
			}
		} else {
			s.degenRun = 0
			useBland = false
		}

		if leave == -1 {
			// Bound flip: the entering variable moves to its other bound.
			for _, i := range s.wNnz {
				s.xB[i] -= t * enterDir * s.w[i]
				s.value[s.basis[i]] = s.xB[i]
			}
			if enterDir > 0 {
				s.status[enter] = atUpper
				s.value[enter] = s.hi[enter]
			} else {
				s.status[enter] = atLower
				s.value[enter] = s.lo[enter]
			}
			continue
		}

		// Devex weight refresh from the pivot row, against the pre-pivot
		// factorization and statuses (skipped for unusable pivots, which
		// refactorize below anyway). The extra BTRAN + row pass per pivot
		// only pays for itself on large, degenerate instances; small
		// problems stay on the static norm weights.
		if m >= devexMinRows && math.Abs(s.w[leave]) >= pivotTol {
			s.devexUpdate(enter, leave, s.w[leave])
		}

		// Pivot: enter replaces basis[leave].
		out := s.basis[leave]
		newEnterVal := s.restValue(enter) + enterDir*t
		for _, i := range s.wNnz {
			if int(i) == leave {
				continue
			}
			s.xB[i] -= t * enterDir * s.w[i]
			s.value[s.basis[i]] = s.xB[i]
		}
		if leaveToUpper {
			s.status[out] = atUpper
			s.value[out] = s.hi[out]
		} else {
			s.status[out] = atLower
			s.value[out] = s.lo[out]
		}
		s.inBrow[out] = -1

		s.basis[leave] = enter
		s.inBrow[enter] = leave
		s.status[enter] = basic
		s.xB[leave] = newEnterVal
		s.value[enter] = newEnterVal

		// Factorization update: apply the Forrest–Tomlin update, or
		// refactorize when the pivot is too small, the update is rejected
		// as numerically unsafe (singular spike, drift), or the update
		// file's measured fill/drift has grown past the refactor point.
		if math.Abs(s.w[leave]) < pivotTol ||
			!s.lu.update(int32(leave), s.w[leave]) || s.lu.shouldRefactor() {
			if !s.factorizeBasis() {
				return StatusNumericalError
			}
			s.computeXB()
		}
	}
}

// ratioTest finds the blocking constraint for the entering variable moving
// in direction dir, for a primal-feasible basis. Returns (leavePos, step,
// leavesAtUpper). leavePos -1 means a bound flip of the entering variable;
// -2 means unbounded.
func (s *simplex) ratioTest(enter int, dir float64, useBland bool) (int, float64, bool) {
	t := math.Inf(1)
	// Entering variable's own range.
	if !math.IsInf(s.lo[enter], -1) && !math.IsInf(s.hi[enter], 1) {
		t = s.hi[enter] - s.lo[enter]
	}
	leave := -1
	leaveToUpper := false
	bestPivot := 0.0
	for _, i32 := range s.wNnz {
		i := int(i32)
		wi := dir * s.w[i]
		v := s.basis[i]
		var ti float64
		var toUpper bool
		switch {
		case wi > pivotTol:
			// Basic variable decreases toward its lower bound.
			if math.IsInf(s.lo[v], -1) {
				continue
			}
			ti = (s.xB[i] - s.lo[v]) / wi
			toUpper = false
		case wi < -pivotTol:
			// Basic variable increases toward its upper bound.
			if math.IsInf(s.hi[v], 1) {
				continue
			}
			ti = (s.hi[v] - s.xB[i]) / (-wi)
			toUpper = true
		default:
			continue
		}
		if ti < 0 {
			ti = 0 // basic var already (slightly) beyond bound
		}
		if ti < t-1e-10 {
			t, leave, leaveToUpper = ti, i, toUpper
			bestPivot = math.Abs(wi)
		} else if ti <= t+1e-10 && leave != -1 {
			// Tie-break: prefer the largest pivot for stability, or the
			// smallest basis index under Bland's rule.
			if useBland {
				if s.basis[i] < s.basis[leave] {
					leave, leaveToUpper = i, toUpper
					bestPivot = math.Abs(wi)
				}
			} else if math.Abs(wi) > bestPivot {
				leave, leaveToUpper = i, toUpper
				bestPivot = math.Abs(wi)
			}
		}
	}
	if math.IsInf(t, 1) {
		return -2, 0, false
	}
	return leave, t, leaveToUpper
}

// p1event is one breakpoint of the piecewise-linear phase-1 objective
// along the entering ray: at step t the directional derivative increases
// by dSlope, and pos (if >= 0) could leave the basis at that point.
type p1event struct {
	t       float64
	dSlope  float64
	pos     int32
	toUpper bool
	rate    float64
}

// ratioTestPhase1 is the long-step piecewise-linear phase-1 ratio test:
// instead of blocking at the first bound crossing, it walks the
// breakpoints of the infeasibility sum along the entering ray in order of
// step length, accumulating the slope, and stops at the minimizer — the
// breakpoint where the slope turns nonnegative. One iteration can thus
// carry basic variables through bounds (even making feasible ones
// temporarily infeasible) whenever that reduces the total violation,
// which removes the degenerate crawl of first-blocking phase-1 variants.
// slope0 is the entering variable's phase-1 reduced cost in its direction
// of motion (negative). Under useBland the long step is abandoned for the
// short-step rule — block at the first breakpoint, ties broken by least
// basis index — which together with Bland pricing restores the classic
// anti-cycling termination guarantee. Returns (leavePos, step,
// leavesAtUpper); -1 means a bound flip of the entering variable, -2 a
// numerical failure (the phase-1 objective is bounded below, so an
// unbounded ray is impossible).
func (s *simplex) ratioTestPhase1(enter int, dir float64, slope0 float64, useBland bool) (int, float64, bool) {
	ev := s.p1events[:0]
	if !math.IsInf(s.lo[enter], -1) && !math.IsInf(s.hi[enter], 1) {
		// The entering variable's own range is a hard stop.
		ev = append(ev, p1event{t: s.hi[enter] - s.lo[enter], dSlope: math.Inf(1), pos: -1})
	}
	for _, i32 := range s.wNnz {
		i := int(i32)
		rate := -dir * s.w[i] // d x_B[i] / dt
		if rate > -pivotTol && rate < pivotTol {
			continue
		}
		v := s.basis[i]
		xv := s.xB[i]
		lo, hi := s.lo[v], s.hi[v]
		ar := math.Abs(rate)
		switch {
		case xv < lo-feasTol:
			if rate > 0 {
				// Becomes feasible at lo; starts violating above at hi.
				ev = append(ev, p1event{t: (lo - xv) / rate, dSlope: ar, pos: i32, rate: rate})
				if !math.IsInf(hi, 1) {
					ev = append(ev, p1event{t: (hi - xv) / rate, dSlope: ar, pos: i32, toUpper: true, rate: rate})
				}
			}
		case xv > hi+feasTol:
			if rate < 0 {
				ev = append(ev, p1event{t: (hi - xv) / rate, dSlope: ar, pos: i32, toUpper: true, rate: rate})
				if !math.IsInf(lo, -1) {
					ev = append(ev, p1event{t: (lo - xv) / rate, dSlope: ar, pos: i32, rate: rate})
				}
			}
		default:
			// Feasible: passing the bound it moves toward starts a new
			// violation.
			if rate < 0 && !math.IsInf(lo, -1) {
				ev = append(ev, p1event{t: (xv - lo) / ar, dSlope: ar, pos: i32, rate: rate})
			} else if rate > 0 && !math.IsInf(hi, 1) {
				ev = append(ev, p1event{t: (hi - xv) / rate, dSlope: ar, pos: i32, toUpper: true, rate: rate})
			}
		}
	}
	s.p1events = ev
	if len(ev) == 0 {
		return -2, 0, false
	}
	for k := range ev {
		if ev[k].t < 0 {
			ev[k].t = 0
		}
	}
	slices.SortFunc(ev, func(a, b p1event) int { return cmp.Compare(a.t, b.t) })

	if useBland {
		// Short-step Bland rule: the first breakpoint blocks; among
		// (near-)coincident ones the lowest basis index leaves.
		best := -1
		for k := range ev {
			e := &ev[k]
			if best >= 0 && e.t > ev[best].t+1e-10 {
				break
			}
			if e.pos < 0 {
				return -1, e.t, false
			}
			if best < 0 || s.basis[e.pos] < s.basis[ev[best].pos] {
				best = k
			}
		}
		return int(ev[best].pos), ev[best].t, ev[best].toUpper
	}

	slope := slope0
	leave, leaveToUpper := -1, false
	t := 0.0
	bestRate := 0.0
	for k := range ev {
		e := &ev[k]
		if e.pos < 0 {
			// Entering variable exhausted its range: bound flip.
			return -1, e.t, false
		}
		// Among (near-)coincident breakpoints prefer the largest pivot.
		if leave == -1 || e.t > t+1e-10 || math.Abs(e.rate) > bestRate {
			leave, leaveToUpper = int(e.pos), e.toUpper
			t = e.t
			bestRate = math.Abs(e.rate)
		}
		slope += e.dSlope
		if slope >= 0 {
			return leave, t, leaveToUpper
		}
	}
	// Slope stayed negative past every breakpoint: numerically impossible
	// for the bounded phase-1 objective.
	return -2, 0, false
}
