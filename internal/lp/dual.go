package lp

// dual.go implements the dual simplex method: devex reference-framework
// pricing over rows, a bound-flipping (long-step) dual ratio test with
// Harris-style two-pass tolerances, and reduced costs maintained
// incrementally from the pivot row. The basis machinery (the sparse LU
// and Forrest–Tomlin updates of factor.go) is shared with the primal
// method;
// the dual is BTRAN-heavy — each iteration prices the leaving row via
// ρ = B⁻ᵀe_r and a sparse row-wise pass over A — where the primal is
// FTRAN-heavy.
//
// The dual method shines on reoptimization: a basis that was optimal
// before a bound change (a branch-and-bound child, a tightened horizon)
// stays DUAL feasible, so the dual simplex walks straight back to
// optimality with no feasibility phase. solve() selects it through
// Options.Method: prepareDual reports whether a dual-feasible start
// exists (bound-flipping boxed variables into sign agreement when
// allowed), and dualIterate runs the method proper, handing back
// statusDualStall when it stops making progress so the caller can fall
// back to the primal path from the current (never corrupted) basis.

import (
	"cmp"
	"math"
	"slices"
)

const (
	// dualTol is the reduced-cost sign tolerance (dual feasibility).
	dualTol = 1e-7
	// dualAcceptTol is the looser acceptance threshold prepareDual uses:
	// a warm basis whose worst reduced-cost violation sits within an
	// order of magnitude of optTol is still a dual-feasible start for
	// practical purposes (the violating column enters at a zero-length
	// ratio and self-corrects).
	dualAcceptTol = 10 * dualTol
	// dualPivTol is the smallest pivot-row entry considered for entering.
	dualPivTol = 1e-9
)

// statusDualStall is the internal verdict "the dual simplex stopped
// making progress; resume with the primal method from the current basis."
const statusDualStall Status = -1

// statusPerturbed is the internal verdict "anti-stall perturbation was
// applied mid-phase-2; run a phase-1 mop-up before resuming."
const statusPerturbed Status = -2

// dualCand is one entering candidate of the dual ratio test.
type dualCand struct {
	j     int32
	abar  float64 // σ·α_j: positive slope direction of the candidate
	ratio float64 // Harris-relaxed dual ratio (ordering key)
}

// buildCSR materializes a row-wise copy of the structural matrix, used by
// pivotRow to form α = ρᵀA in time proportional to the nonzeros of the
// rows ρ touches. Built once, on first dual use.
func (s *simplex) buildCSR() {
	if s.rowStart != nil {
		return
	}
	s.alpha = make([]float64, s.nTotal)
	s.alphaSeen = make([]bool, s.nTotal)
	s.alphaNnz = make([]int32, 0, s.m)
	m := s.m
	cnt := make([]int32, m+1)
	for _, r := range s.colRow {
		cnt[r+1]++
	}
	s.rowStart = cnt
	for i := 0; i < m; i++ {
		s.rowStart[i+1] += s.rowStart[i]
	}
	nnz := len(s.colRow)
	s.rowColJ = make([]int32, nnz)
	s.rowValR = make([]float64, nnz)
	next := make([]int32, m)
	copy(next, s.rowStart[:m])
	for j := 0; j < s.n; j++ {
		for k := s.colStart[j]; k < s.colStart[j+1]; k++ {
			i := s.colRow[k]
			s.rowColJ[next[i]] = int32(j)
			s.rowValR[next[i]] = s.colVal[k]
			next[i]++
		}
	}
}

// computeDuals recomputes y = B⁻ᵀc_B and the reduced costs d_j of every
// nonbasic column from scratch (basic columns get exactly zero). Called on
// dual startup and after each refactorization to kill accumulated drift.
func (s *simplex) computeDuals() {
	for i := 0; i < s.m; i++ {
		s.cb[i] = s.cost[s.basis[i]]
	}
	copy(s.y, s.cb)
	s.lu.btran(s.y)
	for j := 0; j < s.nTotal; j++ {
		if s.status[j] == basic {
			s.d[j] = 0
			continue
		}
		s.d[j] = s.cost[j] - s.colDot(j, s.y)
	}
}

// prepareDual decides whether the current (installed) basis is a usable
// dual-feasible start, allocating the dual working state on first use.
// When allowFlips is set, boxed nonbasic variables whose reduced cost has
// the wrong sign are flipped to their other bound — a free dual
// feasibility repair — before giving up. Flips are only applied when the
// whole basis can be made dual feasible, so a false return leaves the
// simplex state untouched for the primal path.
func (s *simplex) prepareDual(allowFlips bool) bool {
	if s.m == 0 {
		return false
	}
	if s.d == nil {
		s.d = make([]float64, s.nTotal)
		s.dwt = make([]float64, s.m)
	}
	s.buildCSR()
	s.computeDuals()

	flips := s.flipBuf[:0]
	for j := 0; j < s.nTotal; j++ {
		st := s.status[j]
		if st == basic {
			continue
		}
		lo, hi := s.lo[j], s.hi[j]
		if boundsFixed(lo, hi) && !math.IsInf(lo, 0) {
			continue // fixed: reduced-cost sign is unconstrained
		}
		d := s.d[j]
		switch st {
		case atLower:
			if d < -dualAcceptTol {
				if !allowFlips || math.IsInf(hi, 1) {
					return false
				}
				flips = append(flips, int32(j))
			}
		case atUpper:
			if d > dualAcceptTol {
				if !allowFlips || math.IsInf(lo, -1) {
					return false
				}
				flips = append(flips, int32(j))
			}
		default: // nonbasicFree
			if d < -dualAcceptTol || d > dualAcceptTol {
				return false
			}
		}
	}
	s.flipBuf = flips[:0]
	if len(flips) > 0 {
		for _, j32 := range flips {
			j := int(j32)
			if s.status[j] == atLower {
				s.status[j] = atUpper
				s.value[j] = s.hi[j]
			} else {
				s.status[j] = atLower
				s.value[j] = s.lo[j]
			}
		}
		s.computeXB()
	}
	for i := range s.dwt {
		s.dwt[i] = 1
	}
	return true
}

// pivotRow computes α_j = ρᵀa_j for every column touched by the nonzeros
// of ρ, sparsely: structural columns through the CSR rows, slack columns
// directly from ρ. Results land in s.alpha with the touched set listed in
// s.alphaNnz (previous contents are cleared first).
func (s *simplex) pivotRow(rho []float64) {
	alpha, seen := s.alpha, s.alphaSeen
	for _, j := range s.alphaNnz {
		alpha[j] = 0
		seen[j] = false
	}
	nnz := s.alphaNnz[:0]
	for i := 0; i < s.m; i++ {
		ri := rho[i]
		if ri > -dropTol && ri < dropTol {
			continue
		}
		sj := int32(s.n + i)
		if !seen[sj] {
			seen[sj] = true
			nnz = append(nnz, sj)
		}
		alpha[sj] += ri
		lo, hi := s.rowStart[i], s.rowStart[i+1]
		cols := s.rowColJ[lo:hi]
		vals := s.rowValR[lo:hi]
		for k := range cols {
			j := cols[k]
			if !seen[j] {
				seen[j] = true
				nnz = append(nnz, j)
			}
			alpha[j] += ri * vals[k]
		}
	}
	s.alphaNnz = nnz
}

// dualIterate runs dual simplex iterations from a dual-feasible basis
// until primal feasibility (StatusOptimal), a proof of primal
// infeasibility via dual unboundedness (StatusInfeasible; the caller
// re-confirms with the primal phase 1), an expired budget, numerical
// failure, or a progress stall (statusDualStall → primal fallback).
func (s *simplex) dualIterate(maxIter int) Status {
	m := s.m
	checkBudget := !s.opt.Deadline.IsZero() || s.opt.Context != nil
	stall := 0
	retries := 0
	for {
		if s.iter >= maxIter {
			return StatusIterLimit
		}
		if checkBudget && s.iter%64 == 0 && s.interrupted() {
			return StatusIterLimit
		}
		s.iter++

		// Leaving row: devex-weighted largest primal infeasibility.
		r := -1
		var delta, best float64
		for i := 0; i < m; i++ {
			v := s.basis[i]
			var di float64
			if d := s.lo[v] - s.xB[i]; d > feasTol {
				di = -d
			} else if d := s.xB[i] - s.hi[v]; d > feasTol {
				di = d
			} else {
				continue
			}
			if sc := di * di / s.dwt[i]; sc > best {
				best, r, delta = sc, i, di
			}
		}
		if r == -1 {
			return StatusOptimal // primal feasible; dual feasibility held throughout
		}
		sigma := 1.0
		if delta < 0 {
			sigma = -1
		}

		// Pivot row: ρ = B⁻ᵀe_r, then α = ρᵀA over the touched columns.
		rho := s.y
		for i := range rho {
			rho[i] = 0
		}
		rho[r] = 1
		s.lu.btran(rho)
		s.pivotRow(rho)

		// Collect entering candidates with Harris-relaxed ratios. abar is
		// the slope σ·α_j; a candidate's reduced cost moves by -θ·abar as
		// the dual step θ grows, so dual feasibility bounds θ by d/abar.
		cands := s.cand[:0]
		for _, j32 := range s.alphaNnz {
			j := int(j32)
			st := s.status[j]
			if st == basic {
				continue
			}
			lo, hi := s.lo[j], s.hi[j]
			if boundsFixed(lo, hi) && !math.IsInf(lo, 0) {
				continue // fixed: can never enter
			}
			abar := sigma * s.alpha[j]
			var rr float64
			switch st {
			case atLower:
				if abar <= dualPivTol {
					continue
				}
				rr = (s.d[j] + dualTol) / abar
			case atUpper:
				if abar >= -dualPivTol {
					continue
				}
				rr = (s.d[j] - dualTol) / abar
			default: // nonbasicFree: blocks immediately in either direction
				if abar > -dualPivTol && abar < dualPivTol {
					continue
				}
				rr = 0
			}
			if rr < 0 {
				rr = 0
			}
			cands = append(cands, dualCand{j: j32, abar: abar, ratio: rr})
		}
		s.cand = cands
		if len(cands) == 0 {
			return StatusInfeasible // dual unbounded ⇒ primal infeasible
		}
		slices.SortFunc(cands, func(a, b dualCand) int { return cmp.Compare(a.ratio, b.ratio) })

		// Bound-flipping (long-step) walk: passing a boxed candidate's
		// breakpoint flips it to its other bound and reduces the rate at
		// which the leaving row's infeasibility shrinks; keep walking
		// while the slope stays positive, so one dual iteration can sweep
		// many bound flips.
		slope := math.Abs(delta)
		flips := s.flipBuf[:0]
		sel := -1
		for k := range cands {
			c := &cands[k]
			j := int(c.j)
			if !math.IsInf(s.lo[j], -1) && !math.IsInf(s.hi[j], 1) {
				drop := math.Abs(c.abar) * (s.hi[j] - s.lo[j])
				if slope-drop > dualTol {
					slope -= drop
					flips = append(flips, int32(k))
					continue
				}
			}
			sel = k
			break
		}
		s.flipBuf = flips
		if sel == -1 {
			// Every candidate flips and the row stays infeasible in the
			// same direction: nothing can enter — dual unbounded.
			return StatusInfeasible
		}

		// Harris pass 2: any candidate whose strict ratio fits under the
		// blocking candidate's relaxed ratio is eligible; take the
		// largest pivot among them for numerical stability.
		rrSel := cands[sel].ratio
		q := sel
		bestPiv := math.Abs(cands[sel].abar)
		for k := range cands {
			c := &cands[k]
			strict := s.d[c.j] / c.abar
			if strict < 0 {
				strict = 0
			}
			if strict <= rrSel && math.Abs(c.abar) > bestPiv {
				q, bestPiv = k, math.Abs(c.abar)
			}
		}
		enter := int(cands[q].j)
		theta := s.d[enter] / cands[q].abar
		if theta < 0 {
			theta = 0
		}

		// Apply the bound flips that the chosen step actually passes
		// (flipping a candidate the step stops short of would manufacture
		// a dual infeasibility). Their aggregate effect on the basic
		// values is one FTRAN of the accumulated column.
		flipped := false
		fd := s.resid
		for _, k32 := range s.flipBuf {
			c := &cands[k32]
			j := int(c.j)
			if j == enter {
				continue
			}
			dAfter := s.d[j] - theta*c.abar
			var dx float64
			if s.status[j] == atLower {
				if dAfter > dualTol {
					continue // step stops short of this breakpoint
				}
				dx = s.hi[j] - s.lo[j]
				s.status[j] = atUpper
				s.value[j] = s.hi[j]
			} else {
				if dAfter < -dualTol {
					continue
				}
				dx = s.lo[j] - s.hi[j]
				s.status[j] = atLower
				s.value[j] = s.lo[j]
			}
			if !flipped {
				for i := range fd {
					fd[i] = 0
				}
				flipped = true
			}
			idx, val := s.column(j)
			for kk, i := range idx {
				fd[i] += val[kk] * dx
			}
		}
		if flipped {
			s.lu.ftran(fd)
			for i := 0; i < m; i++ {
				if fd[i] != 0 {
					s.xB[i] -= fd[i]
					s.value[s.basis[i]] = s.xB[i]
				}
			}
		}

		// FTRAN the entering column and pivot (spike saved for the FT
		// update below).
		for i := range s.w {
			s.w[i] = 0
		}
		s.scatterCol(enter, s.w)
		s.lu.ftranPivot(s.w)
		s.wNnz = s.wNnz[:0]
		for i := 0; i < m; i++ {
			if math.Abs(s.w[i]) > dropTol {
				s.wNnz = append(s.wNnz, int32(i))
			}
		}
		pivot := s.w[r]
		if math.Abs(pivot) < pivotTol {
			// The FTRAN pivot disagrees with the priced row badly enough
			// to be unusable: refresh the factorization and retry.
			if retries++; retries > 4 {
				return statusDualStall
			}
			if !s.factorizeBasis() {
				return StatusNumericalError
			}
			s.computeXB()
			s.computeDuals()
			continue
		}
		retries = 0

		out := s.basis[r]
		var bound float64
		if sigma > 0 {
			bound = s.hi[out]
		} else {
			bound = s.lo[out]
		}
		t := (s.xB[r] - bound) / pivot

		// Incremental dual update from the priced row: y moves along
		// θ·σ·ρ, so every touched nonbasic reduced cost moves by
		// -θ·σ·α_j; the leaving variable's becomes -θ·σ (its α is 1).
		if theta != 0 {
			for _, j32 := range s.alphaNnz {
				j := int(j32)
				if s.status[j] == basic || j == enter {
					continue
				}
				s.d[j] -= theta * sigma * s.alpha[j]
			}
		}
		s.d[out] = -theta * sigma
		s.d[enter] = 0

		// Devex weight update over the FTRAN spike (the reference-
		// framework approximation of steepest-edge row norms).
		wq := s.dwt[r]
		for _, i32 := range s.wNnz {
			i := int(i32)
			if i == r {
				continue
			}
			g := s.w[i] / pivot
			if cand := g * g * wq; cand > s.dwt[i] {
				s.dwt[i] = cand
			}
		}
		if w := wq / (pivot * pivot); w > 1 {
			s.dwt[r] = w
		} else {
			s.dwt[r] = 1
		}
		if s.dwt[r] > devexReset {
			for i := range s.dwt {
				s.dwt[i] = 1 // new reference framework
			}
		}

		// Primal bookkeeping, identical to the primal pivot.
		newVal := s.restValue(enter) + t
		for _, i32 := range s.wNnz {
			i := int(i32)
			if i == r {
				continue
			}
			s.xB[i] -= t * s.w[i]
			s.value[s.basis[i]] = s.xB[i]
		}
		if sigma > 0 {
			s.status[out] = atUpper
			s.value[out] = s.hi[out]
		} else {
			s.status[out] = atLower
			s.value[out] = s.lo[out]
		}
		s.inBrow[out] = -1
		s.basis[r] = enter
		s.inBrow[enter] = r
		s.status[enter] = basic
		s.xB[r] = newVal
		s.value[enter] = newVal

		if theta <= 1e-12 && math.Abs(t) <= 1e-12 {
			if stall++; stall > 2*m+200 {
				return statusDualStall
			}
		} else {
			stall = 0
		}

		if !s.lu.update(int32(r), pivot) || s.lu.shouldRefactor() {
			if !s.factorizeBasis() {
				return StatusNumericalError
			}
			s.computeXB()
			s.computeDuals()
		}
	}
}
