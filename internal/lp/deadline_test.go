package lp

import (
	"math/rand"
	"testing"
	"time"
)

// bigLP builds a dense-ish LP large enough that a solve takes visible time.
func bigLP(rng *rand.Rand, n, m int) *Problem {
	p := NewProblem(Maximize)
	vars := make([]VarID, n)
	for j := range vars {
		vars[j] = p.AddVar("", 0, float64(1+rng.Intn(10)), rng.Float64())
	}
	for r := 0; r < m; r++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				terms = append(terms, Term{Var: vars[j], Coeff: rng.Float64() + 0.1})
			}
		}
		if len(terms) == 0 {
			continue
		}
		p.AddRow(terms, LE, float64(5+rng.Intn(50)))
	}
	return p
}

func TestDeadlineStopsSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := bigLP(rng, 400, 400)
	start := time.Now()
	sol, err := Solve(p, Options{Deadline: time.Now().Add(time.Millisecond)})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline ignored: took %v", elapsed)
	}
	if sol.Status != StatusIterLimit && sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestExpiredDeadlineStillReturns(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 1, 1)
	_ = x
	sol, err := Solve(p, Options{Deadline: time.Now().Add(-time.Hour)})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Tiny problems may finish before the first deadline check; either
	// outcome must be coherent.
	if sol.Status != StatusOptimal && sol.Status != StatusIterLimit {
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestZeroDeadlineMeansNoLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := bigLP(rng, 60, 60)
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("unlimited solve failed: %v %v", err, sol.Status)
	}
}

func TestDegenerateManyEqualities(t *testing.T) {
	// A chain of equalities x_i = x_{i+1} with one anchored value: heavy
	// phase-1 usage and lots of degenerate pivots.
	p := NewProblem(Maximize)
	const n = 40
	vars := make([]VarID, n)
	for i := range vars {
		vars[i] = p.AddVar("", 0, 10, 0)
	}
	p.SetObj(vars[n-1], 1)
	for i := 0; i+1 < n; i++ {
		p.AddRow([]Term{{Var: vars[i], Coeff: 1}, {Var: vars[i+1], Coeff: -1}}, EQ, 0)
	}
	p.AddRow([]Term{{Var: vars[0], Coeff: 1}}, LE, 7)
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("solve: %v %v", err, sol.Status)
	}
	if sol.Objective != 7 {
		t.Fatalf("objective = %g, want 7", sol.Objective)
	}
}

func TestUpperBoundedEnteringFlip(t *testing.T) {
	// Entering variable hits its own upper bound before any basic leaves
	// (a pure bound flip).
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 2, 1)
	y := p.AddVar("y", 0, 100, 0)
	p.AddRow([]Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 1}}, LE, 50)
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("solve: %v", err)
	}
	if sol.Value(x) != 2 {
		t.Fatalf("x = %g, want 2 (bound flip)", sol.Value(x))
	}
}

func TestNegativeRHSGE(t *testing.T) {
	// min x subject to -x >= -5, x >= 0 -> 0; max -> 5.
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, Inf, 1)
	p.AddRow([]Term{{Var: x, Coeff: -1}}, GE, -5)
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("solve: %v", err)
	}
	if sol.Objective != 5 {
		t.Fatalf("objective = %g, want 5", sol.Objective)
	}
}

func TestEmptyProblem(t *testing.T) {
	p := NewProblem(Minimize)
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("empty problem: %v %v", err, sol.Status)
	}
	if sol.Objective != 0 {
		t.Fatalf("objective = %g", sol.Objective)
	}
}

func TestRowWithOnlyZeroCoeffs(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x", 0, 3, 1)
	p.AddRow([]Term{{Var: x, Coeff: 0}}, LE, 10)
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("solve: %v", err)
	}
	if sol.Objective != 3 {
		t.Fatalf("objective = %g", sol.Objective)
	}
}

func TestInfeasibleEqualityPair(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x", 0, Inf, 1)
	p.AddRow([]Term{{Var: x, Coeff: 1}}, EQ, 3)
	p.AddRow([]Term{{Var: x, Coeff: 1}}, EQ, 4)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v", sol.Status)
	}
}
