package lp

// presolve.go implements the presolve/postsolve layer that fronts both
// simplex methods. Before a solve, the problem is reduced — fixed
// variables substituted out, empty/singleton rows folded into variable
// bounds, forcing and redundant rows detected from activity bounds, safe
// doubleton (implied-free column singleton) substitutions applied — and
// the surviving matrix is equilibrated with Curtis–Reid-style iterative
// geometric-mean scaling, rounded to powers of two so the scaling itself
// introduces no floating-point error. After the solve, postsolve maps the
// reduced Solution (X, Duals, and the Basis snapshot) back onto the
// original problem, reconstructing a valid square basis: every dropped
// row regains exactly one basic variable (its own slack, or the variable
// the row determined), so warm-start chaining across solves — including
// the variable-name basis transfer in internal/core — works unchanged
// whether presolve ran or not.
//
// Time-expanded flow LPs are the target workload: their horizons produce
// long chains of fixed/implied variables, per-epoch capacity singletons,
// and rows made redundant by reachability windows, which presolve removes
// before the simplex ever factorizes a basis.

import "math"

const (
	// psFixTol: a variable whose bound gap shrinks below this is fixed.
	psFixTol = 1e-9
	// psActTol: activity-bound comparisons (forcing/redundant/infeasible).
	psActTol = 1e-7
)

// psKind enumerates the recorded presolve transformations.
type psKind int8

const (
	opFixVar     psKind = iota // variable fixed at val and substituted out
	opDropRow                  // row dropped (empty/redundant): slack basic, dual 0
	opSingleton                // singleton row folded into a variable bound
	opDoubleton                // EQ doubleton: implied-free column singleton eliminated
	opForcingRow               // binding row whose activity bound pinned its variables
)

// psOp is one recorded transformation, replayed in reverse by postsolve.
type psOp struct {
	kind    psKind
	row     int // original row index (-1 when none)
	v       int // the variable acted on (fixed / singleton / eliminated)
	x       int // doubleton partner variable
	a       float64
	b       float64
	rhs     float64
	val     float64
	bs      BasisStatus
	sns     Sense
	maxSide bool   // forcing: activity pinned at its maximum (else minimum)
	terms   []Term // forcing: the row's terms (stable after dropRow)
}

// presolver is the working reduction state, kept in original index space
// until the reduced problem is materialized at the end.
type presolver struct {
	p *Problem

	lo, hi, obj []float64
	rows        [][]Term
	senses      []Sense
	rhs         []float64
	rowLive     []bool
	varLive     []bool

	origLo, origHi []float64

	colRows  [][]int32 // var -> rows referencing it at build time (stale-tolerant)
	colCount []int     // live occurrence count per var

	fixQ   []int
	queued []bool

	ops        []psOp
	infeasible bool
}

func newPresolver(p *Problem) *presolver {
	n, m := p.NumVars(), p.NumRows()
	ps := &presolver{
		p:        p,
		lo:       append([]float64(nil), p.lo...),
		hi:       append([]float64(nil), p.hi...),
		obj:      append([]float64(nil), p.obj...),
		senses:   append([]Sense(nil), p.senses...),
		rhs:      append([]float64(nil), p.rhs...),
		origLo:   p.lo,
		origHi:   p.hi,
		rowLive:  make([]bool, m),
		varLive:  make([]bool, n),
		colRows:  make([][]int32, n),
		colCount: make([]int, n),
		queued:   make([]bool, n),
	}
	ps.rows = make([][]Term, m)
	for i, row := range p.rows {
		ps.rows[i] = append([]Term(nil), row...)
		ps.rowLive[i] = true
		for _, t := range row {
			ps.colRows[t.Var] = append(ps.colRows[t.Var], int32(i))
			ps.colCount[t.Var]++
		}
	}
	for j := range ps.varLive {
		ps.varLive[j] = true
	}
	return ps
}

// queueFix marks a live variable whose bounds have collapsed for
// substitution.
func (ps *presolver) queueFix(v int) {
	if !ps.queued[v] && ps.varLive[v] {
		ps.queued[v] = true
		ps.fixQ = append(ps.fixQ, v)
	}
}

// tighten applies an implied bound to variable v, reporting whether the
// problem became infeasible. A collapsed range queues v for fixing.
func (ps *presolver) tighten(v int, newLo, newHi float64) {
	if newLo > ps.lo[v]+psFixTol {
		ps.lo[v] = newLo
	}
	if newHi < ps.hi[v]-psFixTol {
		ps.hi[v] = newHi
	}
	gap := ps.hi[v] - ps.lo[v]
	scale := 1 + math.Abs(ps.lo[v])
	if gap < -psActTol*scale {
		ps.infeasible = true
		return
	}
	if gap <= psFixTol*scale {
		// Collapse exactly so later passes see a clean fixed variable.
		mid := ps.lo[v]
		if gap > 0 {
			mid = (ps.lo[v] + ps.hi[v]) / 2
		}
		ps.lo[v], ps.hi[v] = mid, mid
		ps.queueFix(v)
	}
}

// dropRow removes a live row, decrementing the occurrence counts of its
// variables (the terms stay in place for any pending op bookkeeping).
func (ps *presolver) dropRow(i int) {
	ps.rowLive[i] = false
	for _, t := range ps.rows[i] {
		ps.colCount[t.Var]--
	}
}

// fixStatus classifies a fixed value against the variable's pristine
// bounds for basis reconstruction.
func (ps *presolver) fixStatus(v int, val float64) BasisStatus {
	lo, hi := ps.origLo[v], ps.origHi[v]
	switch {
	case !math.IsInf(lo, -1) && math.Abs(val-lo) <= psActTol*(1+math.Abs(lo)):
		return BasisAtLower
	case !math.IsInf(hi, 1) && math.Abs(val-hi) <= psActTol*(1+math.Abs(hi)):
		return BasisAtUpper
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return BasisFree
	default:
		return BasisAtLower
	}
}

// rowPass sweeps live rows: empty and singleton rows are folded away, and
// activity bounds expose redundant, forcing, and infeasible rows.
func (ps *presolver) rowPass() bool {
	changed := false
	for i := range ps.rows {
		if !ps.rowLive[i] || ps.infeasible {
			continue
		}
		row := ps.rows[i]
		rhs := ps.rhs[i]
		sns := ps.senses[i]
		tol := psActTol * (1 + math.Abs(rhs))
		switch len(row) {
		case 0:
			ok := true
			switch sns {
			case LE:
				ok = rhs >= -tol
			case GE:
				ok = rhs <= tol
			case EQ:
				ok = math.Abs(rhs) <= tol
			}
			if !ok {
				ps.infeasible = true
				continue
			}
			ps.dropRow(i)
			ps.ops = append(ps.ops, psOp{kind: opDropRow, row: i, v: -1})
			changed = true
			continue
		case 1:
			t := row[0]
			v := int(t.Var)
			a := t.Coeff
			if math.Abs(a) <= dropTol {
				// Numerically dead coefficient: treat as empty.
				row[0] = Term{}
				ps.rows[i] = row[:0]
				ps.colCount[v]--
				continue
			}
			bound := rhs / a
			switch {
			case sns == EQ:
				ps.tighten(v, bound, bound)
			case (sns == LE) == (a > 0):
				ps.tighten(v, math.Inf(-1), bound)
			default:
				ps.tighten(v, bound, math.Inf(1))
			}
			if ps.infeasible {
				continue
			}
			ps.dropRow(i)
			ps.ops = append(ps.ops, psOp{kind: opSingleton, row: i, v: v, a: a, rhs: rhs, sns: sns})
			changed = true
			continue
		}

		// Activity bounds over the row's variables.
		actLo, actHi := 0.0, 0.0
		for _, t := range row {
			v := int(t.Var)
			if t.Coeff > 0 {
				actLo += t.Coeff * ps.lo[v]
				actHi += t.Coeff * ps.hi[v]
			} else {
				actLo += t.Coeff * ps.hi[v]
				actHi += t.Coeff * ps.lo[v]
			}
		}
		infLo, infHi := math.IsInf(actLo, -1), math.IsInf(actHi, 1)
		switch sns {
		case LE:
			if !infLo && actLo > rhs+tol {
				ps.infeasible = true
				continue
			}
			if !infHi && actHi <= rhs+tol {
				ps.dropRow(i)
				ps.ops = append(ps.ops, psOp{kind: opDropRow, row: i, v: -1})
				changed = true
				continue
			}
			if !infLo && actLo >= rhs-tol {
				ps.forceRow(i) // activity pinned at its minimum
				changed = true
				continue
			}
		case GE:
			if !infHi && actHi < rhs-tol {
				ps.infeasible = true
				continue
			}
			if !infLo && actLo >= rhs-tol {
				ps.dropRow(i)
				ps.ops = append(ps.ops, psOp{kind: opDropRow, row: i, v: -1})
				changed = true
				continue
			}
			if !infHi && actHi <= rhs+tol {
				ps.forceRowMax(i)
				changed = true
				continue
			}
		case EQ:
			if (!infLo && actLo > rhs+tol) || (!infHi && actHi < rhs-tol) {
				ps.infeasible = true
				continue
			}
			if !infLo && actLo >= rhs-tol {
				ps.forceRow(i)
				changed = true
				continue
			}
			if !infHi && actHi <= rhs+tol {
				ps.forceRowMax(i)
				changed = true
				continue
			}
		}
	}
	return changed
}

// forceRow handles a row whose minimum activity already meets the
// constraint boundary: every variable is pinned at its min-contribution
// bound. The row itself drops with a basic slack (it is tight, so the
// slack value is 0, inside the slack bounds for every sense here); the
// recorded op lets postsolve reconstruct the row's dual, which is
// generally nonzero because the row is binding.
func (ps *presolver) forceRow(i int) {
	for _, t := range ps.rows[i] {
		v := int(t.Var)
		if t.Coeff > 0 {
			ps.tighten(v, ps.lo[v], ps.lo[v])
		} else {
			ps.tighten(v, ps.hi[v], ps.hi[v])
		}
	}
	if ps.infeasible {
		return
	}
	ps.dropRow(i)
	ps.ops = append(ps.ops, psOp{
		kind: opForcingRow, row: i, v: -1, sns: ps.senses[i], terms: ps.rows[i],
	})
}

// forceRowMax mirrors forceRow for a maximum activity pinned at the
// boundary.
func (ps *presolver) forceRowMax(i int) {
	for _, t := range ps.rows[i] {
		v := int(t.Var)
		if t.Coeff > 0 {
			ps.tighten(v, ps.hi[v], ps.hi[v])
		} else {
			ps.tighten(v, ps.lo[v], ps.lo[v])
		}
	}
	if ps.infeasible {
		return
	}
	ps.dropRow(i)
	ps.ops = append(ps.ops, psOp{
		kind: opForcingRow, row: i, v: -1, sns: ps.senses[i], terms: ps.rows[i], maxSide: true,
	})
}

// removeTerm deletes the term for v from row i (swap-delete) and adjusts
// the occurrence count.
func (ps *presolver) removeTerm(i, v int) (coeff float64, found bool) {
	row := ps.rows[i]
	for k := range row {
		if int(row[k].Var) == v {
			coeff = row[k].Coeff
			row[k] = row[len(row)-1]
			ps.rows[i] = row[:len(row)-1]
			ps.colCount[v]--
			return coeff, true
		}
	}
	return 0, false
}

// fixPass substitutes every queued fixed variable out of its rows.
func (ps *presolver) fixPass() bool {
	changed := false
	//teccl:allow-ctxcheck bounded: every iteration pops fixQ, and a variable is queued at most once (queued[v] gate)
	for len(ps.fixQ) > 0 && !ps.infeasible {
		v := ps.fixQ[len(ps.fixQ)-1]
		ps.fixQ = ps.fixQ[:len(ps.fixQ)-1]
		ps.queued[v] = false
		if !ps.varLive[v] {
			continue
		}
		val := ps.lo[v]
		for _, r32 := range ps.colRows[v] {
			i := int(r32)
			if !ps.rowLive[i] {
				continue
			}
			if a, ok := ps.removeTerm(i, v); ok && val != 0 {
				ps.rhs[i] -= a * val
			}
		}
		ps.varLive[v] = false
		ps.ops = append(ps.ops, psOp{kind: opFixVar, row: -1, v: v, val: val, bs: ps.fixStatus(v, val)})
		changed = true
	}
	return changed
}

// doubletonPass eliminates implied-free column singletons from EQ
// doubleton rows: in a·x + b·y = rhs where y appears in no other row and
// the bounds x carries already confine y within its own bounds, y is
// determined by x. The row and y vanish, y's objective folds into x's,
// and no other row is touched — the "safe" doubleton class.
func (ps *presolver) doubletonPass() bool {
	changed := false
	for i := range ps.rows {
		if !ps.rowLive[i] || ps.senses[i] != EQ || len(ps.rows[i]) != 2 || ps.infeasible {
			continue
		}
		row := ps.rows[i]
		for pick := 0; pick < 2; pick++ {
			yv := int(row[pick].Var)
			xv := int(row[1-pick].Var)
			b := row[pick].Coeff
			a := row[1-pick].Coeff
			if ps.colCount[yv] != 1 || math.Abs(b) <= 1e-9 || math.Abs(a/b) > 1e7 {
				continue
			}
			// y = (rhs - a·x)/b over x's range. Implied free means y's own
			// bounds can never bind: each finite y bound must contain the
			// whole implied range (an infinite implied end against a
			// finite bound fails, as does a NaN from ∞-∞ arithmetic).
			rhs := ps.rhs[i]
			y1 := (rhs - a*ps.lo[xv]) / b
			y2 := (rhs - a*ps.hi[xv]) / b
			yMin, yMax := math.Min(y1, y2), math.Max(y1, y2)
			if math.IsNaN(yMin) || math.IsNaN(yMax) {
				continue
			}
			loOK := math.IsInf(ps.lo[yv], -1) ||
				yMin >= ps.lo[yv]-psActTol*(1+math.Abs(ps.lo[yv]))
			hiOK := math.IsInf(ps.hi[yv], 1) ||
				yMax <= ps.hi[yv]+psActTol*(1+math.Abs(ps.hi[yv]))
			if !loOK || !hiOK {
				continue // y's own bounds could bind: not implied free
			}
			// Fold y's objective into x: c_y·y = c_y·rhs/b - (c_y·a/b)·x.
			ps.obj[xv] -= ps.obj[yv] * a / b
			ps.dropRow(i)
			ps.varLive[yv] = false
			ps.ops = append(ps.ops, psOp{kind: opDoubleton, row: i, v: yv, x: xv, a: a, b: b, rhs: rhs})
			changed = true
			break
		}
	}
	return changed
}

// emptyColPass pins variables that appear in no live row at their
// objective-preferred bound. Variables whose improving direction is
// unbounded are left in the problem so the simplex reports unboundedness.
func (ps *presolver) emptyColPass() bool {
	changed := false
	sign := 1.0
	if ps.p.Dir == Maximize {
		sign = -1.0
	}
	for v := range ps.varLive {
		if !ps.varLive[v] || ps.colCount[v] != 0 {
			continue
		}
		c := sign * ps.obj[v] // minimization form: want the smaller c·x
		var val float64
		var bs BasisStatus
		switch {
		case c > 0 && !math.IsInf(ps.lo[v], -1):
			val, bs = ps.lo[v], BasisAtLower
		case c < 0 && !math.IsInf(ps.hi[v], 1):
			val, bs = ps.hi[v], BasisAtUpper
		case c == 0 && !math.IsInf(ps.lo[v], -1):
			val, bs = ps.lo[v], BasisAtLower
		case c == 0 && !math.IsInf(ps.hi[v], 1):
			val, bs = ps.hi[v], BasisAtUpper
		case c == 0:
			val, bs = 0, BasisFree
		default:
			continue // improving direction unbounded: leave for the solver
		}
		ps.varLive[v] = false
		ps.ops = append(ps.ops, psOp{kind: opFixVar, row: -1, v: v, val: val, bs: bs})
		changed = true
	}
	return changed
}

// run drives the reduction passes to a fixpoint (bounded by a handful of
// sweeps; each pass only fires on work the previous one created).
func (ps *presolver) run() {
	for pass := 0; pass < 8 && !ps.infeasible; pass++ {
		changed := ps.rowPass()
		changed = ps.fixPass() || changed
		changed = ps.doubletonPass() || changed
		changed = ps.fixPass() || changed
		if !changed {
			break
		}
	}
	if !ps.infeasible {
		ps.emptyColPass()
	}
}

// presolved is the finished reduction: the reduced problem, the index
// maps and scales connecting it to the original, and the op log.
type presolved struct {
	orig *Problem
	red  *Problem

	varMap  []int32 // orig var -> reduced var, -1 when eliminated
	redVars []int32 // reduced var -> orig var
	rowMap  []int32
	redRows []int32

	rowScale []float64 // original index space; 1 for dropped rows
	colScale []float64

	ops            []psOp
	origLo, origHi []float64
}

// pow2Round rounds a positive scale to the nearest power of two, so
// applying it is exact in floating point.
func pow2Round(s float64) float64 {
	if s <= 0 || math.IsInf(s, 0) || math.IsNaN(s) {
		return 1
	}
	e := math.Round(math.Log2(s))
	if e > 20 {
		e = 20
	} else if e < -20 {
		e = -20
	}
	return math.Ldexp(1, int(e))
}

// build materializes the reduced problem, running the Curtis–Reid-style
// equilibration (iterative geometric-mean row/column scaling, rounded to
// powers of two) over the surviving matrix.
func (ps *presolver) build() *presolved {
	p := ps.p
	n, m := p.NumVars(), p.NumRows()
	pre := &presolved{
		orig:     p,
		varMap:   make([]int32, n),
		rowMap:   make([]int32, m),
		rowScale: make([]float64, m),
		colScale: make([]float64, n),
		ops:      ps.ops,
		origLo:   ps.origLo,
		origHi:   ps.origHi,
	}
	for i := range pre.rowScale {
		pre.rowScale[i] = 1
	}
	for j := range pre.colScale {
		pre.colScale[j] = 1
	}
	for j := 0; j < n; j++ {
		if ps.varLive[j] {
			pre.varMap[j] = int32(len(pre.redVars))
			pre.redVars = append(pre.redVars, int32(j))
		} else {
			pre.varMap[j] = -1
		}
	}
	for i := 0; i < m; i++ {
		if ps.rowLive[i] {
			pre.rowMap[i] = int32(len(pre.redRows))
			pre.redRows = append(pre.redRows, int32(i))
		} else {
			pre.rowMap[i] = -1
		}
	}

	// Equilibration on the live submatrix: alternate row and column
	// geometric-mean scaling, then snap to powers of two.
	const scaleIters = 3
	for it := 0; it < scaleIters; it++ {
		for _, i32 := range pre.redRows {
			i := int(i32)
			minA, maxA := math.Inf(1), 0.0
			for _, t := range ps.rows[i] {
				a := math.Abs(t.Coeff) * pre.rowScale[i] * pre.colScale[t.Var]
				if a < minA {
					minA = a
				}
				if a > maxA {
					maxA = a
				}
			}
			if maxA > 0 && minA > 0 {
				pre.rowScale[i] /= math.Sqrt(minA * maxA)
			}
		}
		colMin := make([]float64, len(pre.redVars))
		colMax := make([]float64, len(pre.redVars))
		for k := range colMin {
			colMin[k] = math.Inf(1)
		}
		for _, i32 := range pre.redRows {
			i := int(i32)
			for _, t := range ps.rows[i] {
				k := pre.varMap[t.Var]
				a := math.Abs(t.Coeff) * pre.rowScale[i] * pre.colScale[t.Var]
				if a < colMin[k] {
					colMin[k] = a
				}
				if a > colMax[k] {
					colMax[k] = a
				}
			}
		}
		for k, j32 := range pre.redVars {
			if colMax[k] > 0 && !math.IsInf(colMin[k], 1) && colMin[k] > 0 {
				pre.colScale[j32] /= math.Sqrt(colMin[k] * colMax[k])
			}
		}
	}
	for _, i32 := range pre.redRows {
		pre.rowScale[i32] = pow2Round(pre.rowScale[i32])
	}
	for _, j32 := range pre.redVars {
		pre.colScale[j32] = pow2Round(pre.colScale[j32])
	}

	// Materialize the reduced, scaled problem: A' = R·A·C, b' = R·b,
	// c' = C·c, bounds' = bounds/C (so x = C·x').
	red := NewProblem(p.Dir)
	for _, j32 := range pre.redVars {
		j := int(j32)
		c := pre.colScale[j]
		lo, hi := ps.lo[j], ps.hi[j]
		if !math.IsInf(lo, -1) {
			lo /= c
		}
		if !math.IsInf(hi, 1) {
			hi /= c
		}
		red.AddVar(p.names[j], lo, hi, ps.obj[j]*c)
	}
	terms := make([]Term, 0, 16)
	for _, i32 := range pre.redRows {
		i := int(i32)
		r := pre.rowScale[i]
		terms = terms[:0]
		for _, t := range ps.rows[i] {
			terms = append(terms, Term{
				Var:   VarID(pre.varMap[t.Var]),
				Coeff: t.Coeff * r * pre.colScale[t.Var],
			})
		}
		red.AddRow(terms, ps.senses[i], ps.rhs[i]*r)
	}
	pre.red = red
	return pre
}

// mapBasis projects a warm-start basis of the original problem onto the
// reduced one (statuses are scale-invariant). Mismatched dimensions fall
// back to a cold start, mirroring the solver's own warm-start contract.
func (pre *presolved) mapBasis(b *Basis) *Basis {
	if b == nil || len(b.Vars) != pre.orig.NumVars() || len(b.Rows) != pre.orig.NumRows() {
		return nil
	}
	rb := &Basis{
		Vars: make([]BasisStatus, len(pre.redVars)),
		Rows: make([]BasisStatus, len(pre.redRows)),
	}
	for k, j := range pre.redVars {
		rb.Vars[k] = b.Vars[j]
	}
	for k, i := range pre.redRows {
		rb.Rows[k] = b.Rows[i]
	}
	return rb
}

// tightSlackStatus is the nonbasic status of a dropped row's slack when
// the row is binding: LE slacks live in [0, ∞), GE in (-∞, 0], EQ in
// [0, 0] — binding means 0 in every case.
func tightSlackStatus(s Sense) BasisStatus {
	if s == GE {
		return BasisAtUpper
	}
	return BasisAtLower
}

// post maps the reduced solution back onto the original problem: values
// unscale, eliminated variables and dropped rows are reconstructed by
// replaying the op log in reverse, and the objective is recomputed from
// the original cost vector.
func (pre *presolved) post(rsol *Solution) *Solution {
	p := pre.orig
	n, m := p.NumVars(), p.NumRows()
	sol := &Solution{
		Status:           rsol.Status,
		Iterations:       rsol.Iterations,
		Refactorizations: rsol.Refactorizations,
		FTUpdates:        rsol.FTUpdates,
		UpdateNnz:        rsol.UpdateNnz,
	}

	var x []float64
	if rsol.X != nil {
		x = make([]float64, n)
		for k, j := range pre.redVars {
			x[j] = rsol.X[k] * pre.colScale[j]
		}
	}
	var duals []float64
	var colOf [][]Term // var -> (row, coeff) over the ORIGINAL matrix
	if rsol.Duals != nil || (rsol.Status == StatusOptimal && m > 0) {
		// An optimal reduction with every row eliminated yields no reduced
		// duals, but the original rows still deserve a dual vector (the op
		// replay below fills the binding ones).
		duals = make([]float64, m)
		for k, i := range pre.redRows {
			if rsol.Duals != nil {
				duals[i] = rsol.Duals[k] * pre.rowScale[i]
			}
		}
		// Column view for dual reconstruction: a dropped row that ends up
		// binding (an active folded bound, a doubleton) receives the dual
		// that zeroes its basic variable's reduced cost.
		colOf = make([][]Term, n)
		for i, row := range p.rows {
			for _, t := range row {
				colOf[t.Var] = append(colOf[t.Var], Term{Var: VarID(i), Coeff: t.Coeff})
			}
		}
	}
	// rowDual solves obj[v] - Σ a_iv·y_i = 0 for the dual of row (the one
	// row whose basic variable v pins it), taking every other row's dual
	// as already reconstructed.
	rowDual := func(v, row int, coeff float64) float64 {
		d := p.obj[v]
		for _, t := range colOf[v] {
			if int(t.Var) != row {
				d -= t.Coeff * duals[t.Var]
			}
		}
		return d / coeff
	}

	// Basis reconstruction: kept rows/vars inherit the reduced statuses;
	// the reverse op replay assigns exactly one basic variable per
	// dropped row, keeping the basis square.
	var varStat []BasisStatus
	var rowStat []BasisStatus
	if rsol.Basis != nil {
		varStat = make([]BasisStatus, n)
		rowStat = make([]BasisStatus, m)
		for i := range rowStat {
			rowStat[i] = BasisBasic // dropped-row default; ops may override
		}
		for k, j := range pre.redVars {
			varStat[j] = rsol.Basis.Vars[k]
		}
		for k, i := range pre.redRows {
			rowStat[i] = rsol.Basis.Rows[k]
		}
	}

	for oi := len(pre.ops) - 1; oi >= 0; oi-- {
		op := &pre.ops[oi]
		switch op.kind {
		case opFixVar:
			if x != nil {
				x[op.v] = op.val
			}
			if varStat != nil {
				varStat[op.v] = op.bs
			}
		case opDropRow:
			if rowStat != nil {
				rowStat[op.row] = BasisBasic
			}
		case opForcingRow:
			if rowStat != nil {
				rowStat[op.row] = BasisBasic // slack basic at value 0 (binding)
			}
			if duals == nil {
				break
			}
			// The row is binding with every variable pinned at a bound, so
			// its dual λ must give each pinned variable a sign-correct
			// reduced cost d_v = c̃_v − λ·a_v (c̃_v folding in every other
			// row's dual). Each variable bounds λ from the same side —
			// below when (min-side, Maximize) or (max-side, Minimize),
			// above otherwise — so the extreme ratio is the valid choice,
			// clamped toward zero where the row sense restricts the dual's
			// sign (the clamp always moves λ further into the feasible
			// side of every variable's inequality).
			wantMax := op.maxSide == (p.Dir == Minimize)
			lam, first := 0.0, true
			for _, tm := range op.terms {
				ctil := p.obj[tm.Var]
				for _, e := range colOf[tm.Var] {
					if int(e.Var) != op.row {
						ctil -= e.Coeff * duals[e.Var]
					}
				}
				r := ctil / tm.Coeff
				if first || (wantMax && r > lam) || (!wantMax && r < lam) {
					lam, first = r, false
				}
			}
			switch op.sns {
			case LE:
				if (p.Dir == Maximize && lam < 0) || (p.Dir == Minimize && lam > 0) {
					lam = 0
				}
			case GE:
				if (p.Dir == Maximize && lam > 0) || (p.Dir == Minimize && lam < 0) {
					lam = 0
				}
			}
			duals[op.row] = lam
		case opSingleton:
			// If the variable rests exactly where this row binds, the
			// vertex in the original space has the ROW active, not a
			// variable bound: the variable turns basic and the slack
			// rests at its binding side. Otherwise the slack is basic.
			if rowStat == nil {
				break
			}
			claimed := false
			if x != nil && varStat[op.v] != BasisBasic {
				if math.Abs(op.a*x[op.v]-op.rhs) <= psActTol*(1+math.Abs(op.rhs)) {
					varStat[op.v] = BasisBasic
					rowStat[op.row] = tightSlackStatus(op.sns)
					claimed = true
					if duals != nil {
						duals[op.row] = rowDual(op.v, op.row, op.a)
					}
				}
			}
			if !claimed {
				rowStat[op.row] = BasisBasic
			}
		case opDoubleton:
			if x != nil {
				x[op.v] = (op.rhs - op.a*x[op.x]) / op.b
			}
			if varStat != nil {
				varStat[op.v] = BasisBasic
				rowStat[op.row] = BasisAtLower // EQ slack, fixed at 0
			}
			if duals != nil {
				// Complementarity: the eliminated column is basic in this
				// row, so the row's dual zeroes its reduced cost.
				duals[op.row] = rowDual(op.v, op.row, op.b)
			}
		}
	}

	if x != nil {
		var objv float64
		for j := 0; j < n; j++ {
			if math.Abs(x[j]) < zeroTol {
				x[j] = 0
			}
			objv += p.obj[j] * x[j]
		}
		sol.X = x
		sol.Objective = objv
	}
	sol.Duals = duals
	if varStat != nil {
		sol.Basis = &Basis{Vars: varStat, Rows: rowStat}
	}
	return sol
}

// defaultBasis is the all-slack basis of a problem, used when presolve
// proves infeasibility before any simplex runs (Solution.Basis is
// documented to always be present).
func defaultBasis(p *Problem) *Basis {
	b := &Basis{
		Vars: make([]BasisStatus, p.NumVars()),
		Rows: make([]BasisStatus, p.NumRows()),
	}
	for j := range b.Vars {
		switch {
		case !math.IsInf(p.lo[j], -1):
			b.Vars[j] = BasisAtLower
		case !math.IsInf(p.hi[j], 1):
			b.Vars[j] = BasisAtUpper
		default:
			b.Vars[j] = BasisFree
		}
	}
	for i := range b.Rows {
		b.Rows[i] = BasisBasic
	}
	return b
}

// solvePresolved is the presolve-enabled solve path: reduce, solve the
// reduction (with the warm basis projected into reduced space), and map
// everything back.
func solvePresolved(p *Problem, opt Options) (*Solution, error) {
	ps := newPresolver(p)
	ps.run()
	if ps.infeasible {
		return &Solution{Status: StatusInfeasible, Basis: defaultBasis(p)}, nil
	}
	pre := ps.build()
	ropt := opt
	ropt.NoPresolve = true
	ropt.WarmStart = pre.mapBasis(opt.WarmStart)
	ropt.Crash = pre.mapBasis(opt.Crash)
	rs := newSimplex(pre.red, ropt)
	rsol, err := rs.solve()
	if err != nil {
		return nil, err
	}
	return pre.post(rsol), nil
}
