// Package wireconv converts between the wire schema (teccl/wire, pure
// serializable types, stdlib-only by machine-enforced rule) and the
// in-process planner types. All validation of wire input happens here,
// on the way in, so a malformed request fails at decode time rather
// than inside a solver: demand triples are range-checked, option
// enumerations are parsed strictly, and topologies are rebuilt through
// topo's own unmarshalling (which validates link endpoints and replays
// churn state).
package wireconv

import (
	"encoding/json"
	"fmt"
	"time"

	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/schedule"
	"teccl/internal/topo"
	"teccl/wire"
)

// FromDemand converts an in-process demand to its wire form.
func FromDemand(d *collective.Demand) wire.Demand {
	out := wire.Demand{
		NumNodes:   d.NumNodes(),
		NumChunks:  d.NumChunks(),
		ChunkBytes: d.ChunkBytes,
	}
	for src := 0; src < d.NumNodes(); src++ {
		for c := 0; c < d.NumChunks(); c++ {
			for dst := 0; dst < d.NumNodes(); dst++ {
				if d.Wants(src, c, dst) {
					out.Wants = append(out.Wants, wire.Want{Src: src, Chunk: c, Dst: dst})
				}
			}
		}
	}
	return out
}

// ToDemand converts a wire demand back to the in-process form,
// validating dimensions and every triple.
func ToDemand(d wire.Demand) (*collective.Demand, error) {
	if d.NumNodes <= 0 || d.NumChunks <= 0 {
		return nil, fmt.Errorf("wire: bad demand dimensions %d nodes, %d chunks", d.NumNodes, d.NumChunks)
	}
	if d.ChunkBytes <= 0 {
		return nil, fmt.Errorf("wire: bad demand chunk size %g", d.ChunkBytes)
	}
	out := collective.New(d.NumNodes, d.NumChunks, d.ChunkBytes)
	for _, w := range d.Wants {
		if w.Src < 0 || w.Src >= d.NumNodes || w.Dst < 0 || w.Dst >= d.NumNodes ||
			w.Chunk < 0 || w.Chunk >= d.NumChunks {
			return nil, fmt.Errorf("wire: demand triple (%d,%d,%d) out of range (%d nodes, %d chunks)",
				w.Src, w.Chunk, w.Dst, d.NumNodes, d.NumChunks)
		}
		if w.Src == w.Dst {
			continue // a node always has its own chunks
		}
		out.Set(w.Src, w.Chunk, w.Dst)
	}
	return out, nil
}

// FromTopology snapshots an in-process topology into its wire form. The
// wire.Topology mirrors topo's JSON schema byte for byte, so the
// conversion rides the topology's own marshaller (which records churn
// state in Down).
func FromTopology(t *topo.Topology) (*wire.Topology, error) {
	if t == nil {
		return nil, nil
	}
	raw, err := json.Marshal(t)
	if err != nil {
		return nil, fmt.Errorf("wire: snapshotting topology: %w", err)
	}
	out := new(wire.Topology)
	if err := json.Unmarshal(raw, out); err != nil {
		return nil, fmt.Errorf("wire: snapshotting topology: %w", err)
	}
	return out, nil
}

// ToTopology rebuilds an in-process topology from its wire form,
// through topo's unmarshaller so link endpoints are validated and the
// Down list is replayed.
func ToTopology(w *wire.Topology) (*topo.Topology, error) {
	if w == nil {
		return nil, nil
	}
	raw, err := json.Marshal(w)
	if err != nil {
		return nil, fmt.Errorf("wire: bad topology: %w", err)
	}
	out := new(topo.Topology)
	if err := json.Unmarshal(raw, out); err != nil {
		return nil, fmt.Errorf("wire: bad topology: %w", err)
	}
	return out, nil
}

// FromOptions converts the serializable fields of in-process options to
// wire form. Priority/LinkCapacity/Progress functions are NOT carried
// (see SamplePriority for the priority path); the caller decides
// whether their presence is an error.
func FromOptions(o core.Options) wire.Options {
	out := wire.Options{
		Epochs:            o.Epochs,
		Tau:               o.Tau,
		EpochMultiplier:   o.EpochMultiplier,
		NoBuffers:         o.NoBuffers,
		BufferLimitChunks: o.BufferLimitChunks,
		GapLimit:          o.GapLimit,
		TimeLimitMs:       o.TimeLimit.Milliseconds(),
		MinimizeMakespan:  o.MinimizeMakespan,
		Workers:           o.Workers,
		RoundEpochs:       o.RoundEpochs,
		MaxRounds:         o.MaxRounds,

		HorizonWindow:       o.HorizonWindow,
		HorizonOverlap:      o.HorizonOverlap,
		HorizonCertifyMs:    o.HorizonCertify.Milliseconds(),
		AutoEpochMultiplier: o.AutoEpochMultiplier,
		HorizonCellBudget:   o.HorizonCellBudget,
	}
	if o.EpochMode == core.SlowestLink {
		out.EpochMode = "slowest"
	}
	if o.SwitchMode == core.SwitchNoCopy {
		out.SwitchMode = "nocopy"
	}
	switch o.Crash {
	case core.CrashAll:
		out.Crash = "all"
	case core.CrashOff:
		out.Crash = "off"
	}
	return out
}

// SamplePriority samples a priority function over the demanded triples,
// returning the non-neutral weights in wire form. Only demanded triples
// carry delivery rewards, so the sample is exact.
func SamplePriority(pri func(src, chunk, dst int) float64, d *collective.Demand) []wire.PriorityWeight {
	if pri == nil || d == nil {
		return nil
	}
	var out []wire.PriorityWeight
	for src := 0; src < d.NumNodes(); src++ {
		for c := 0; c < d.NumChunks(); c++ {
			for dst := 0; dst < d.NumNodes(); dst++ {
				if !d.Wants(src, c, dst) {
					continue
				}
				if w := pri(src, c, dst); w != 1 {
					out = append(out, wire.PriorityWeight{Src: src, Chunk: c, Dst: dst, Weight: w})
				}
			}
		}
	}
	return out
}

// ToOptions converts wire options to the in-process form, validating
// the enumerations and rebuilding the Priority function from the
// sampled weights.
func ToOptions(o wire.Options) (core.Options, error) {
	out := core.Options{
		Epochs:            o.Epochs,
		Tau:               o.Tau,
		EpochMultiplier:   o.EpochMultiplier,
		NoBuffers:         o.NoBuffers,
		BufferLimitChunks: o.BufferLimitChunks,
		GapLimit:          o.GapLimit,
		TimeLimit:         time.Duration(o.TimeLimitMs) * time.Millisecond,
		MinimizeMakespan:  o.MinimizeMakespan,
		Workers:           o.Workers,
		RoundEpochs:       o.RoundEpochs,
		MaxRounds:         o.MaxRounds,

		HorizonWindow:       o.HorizonWindow,
		HorizonOverlap:      o.HorizonOverlap,
		HorizonCertify:      time.Duration(o.HorizonCertifyMs) * time.Millisecond,
		AutoEpochMultiplier: o.AutoEpochMultiplier,
		HorizonCellBudget:   o.HorizonCellBudget,
	}
	switch o.EpochMode {
	case "", "fastest":
	case "slowest":
		out.EpochMode = core.SlowestLink
	default:
		return out, fmt.Errorf("wire: unknown epoch_mode %q", o.EpochMode)
	}
	switch o.SwitchMode {
	case "", "copy":
	case "nocopy":
		out.SwitchMode = core.SwitchNoCopy
	default:
		return out, fmt.Errorf("wire: unknown switch_mode %q", o.SwitchMode)
	}
	switch o.Crash {
	case "", "auto":
	case "all":
		out.Crash = core.CrashAll
	case "off":
		out.Crash = core.CrashOff
	default:
		return out, fmt.Errorf("wire: unknown crash mode %q", o.Crash)
	}
	if len(o.Priority) > 0 {
		weights := make(map[[3]int]float64, len(o.Priority))
		for _, p := range o.Priority {
			if p.Weight <= 0 {
				return out, fmt.Errorf("wire: non-positive priority weight %g for (%d,%d,%d)",
					p.Weight, p.Src, p.Chunk, p.Dst)
			}
			weights[[3]int{p.Src, p.Chunk, p.Dst}] = p.Weight
		}
		out.Priority = func(src, chunk, dst int) float64 {
			if w, ok := weights[[3]int{src, chunk, dst}]; ok {
				return w
			}
			return 1
		}
	}
	return out, nil
}

// ParseSolver maps a wire solver name to the in-process identifier.
func ParseSolver(s string) (core.Solver, error) {
	switch s {
	case "", "auto":
		return core.SolverAuto, nil
	case "lp":
		return core.SolverLP, nil
	case "milp":
		return core.SolverMILP, nil
	case "astar":
		return core.SolverAStar, nil
	case "horizon":
		return core.SolverHorizon, nil
	}
	return core.SolverAuto, fmt.Errorf("wire: unknown solver %q", s)
}

// SolverName maps an in-process solver identifier to its wire name.
func SolverName(s core.Solver) string { return s.String() }

// FromDelta converts an in-process replan delta to wire form.
func FromDelta(d core.Delta) wire.Delta {
	var out wire.Delta
	for _, n := range d.AddNodes {
		out.AddNodes = append(out.AddNodes, wire.Node{Name: n.Name, Switch: n.Switch})
	}
	for _, l := range d.AddLinks {
		out.AddLinks = append(out.AddLinks, wire.Link{
			Src: int(l.Src), Dst: int(l.Dst), Capacity: l.Capacity, Alpha: l.Alpha,
		})
	}
	for _, l := range d.LinksDown {
		out.LinksDown = append(out.LinksDown, int(l))
	}
	for _, n := range d.NodesDown {
		out.NodesDown = append(out.NodesDown, int(n))
	}
	for _, s := range d.Scale {
		out.Scale = append(out.Scale, wire.LinkScale{Link: int(s.Link), Capacity: s.Capacity, Alpha: s.Alpha})
	}
	for _, p := range d.DropPairs {
		out.DropPairs = append(out.DropPairs, wire.Pair{Src: p.Src, Dst: p.Dst})
	}
	if d.AddDemand != nil {
		ad := FromDemand(d.AddDemand)
		out.AddDemand = &ad
	}
	return out
}

// ToDelta converts a wire delta to the in-process form. ID range
// checking is left to Planner.Replan, which validates against the live
// session topology.
func ToDelta(d wire.Delta) (core.Delta, error) {
	var out core.Delta
	for _, n := range d.AddNodes {
		out.AddNodes = append(out.AddNodes, topo.Node{Name: n.Name, Switch: n.Switch})
	}
	for _, l := range d.AddLinks {
		out.AddLinks = append(out.AddLinks, topo.Link{
			Src: topo.NodeID(l.Src), Dst: topo.NodeID(l.Dst), Capacity: l.Capacity, Alpha: l.Alpha,
		})
	}
	for _, l := range d.LinksDown {
		out.LinksDown = append(out.LinksDown, topo.LinkID(l))
	}
	for _, n := range d.NodesDown {
		out.NodesDown = append(out.NodesDown, topo.NodeID(n))
	}
	for _, s := range d.Scale {
		out.Scale = append(out.Scale, topo.LinkScale{Link: topo.LinkID(s.Link), Capacity: s.Capacity, Alpha: s.Alpha})
	}
	for _, p := range d.DropPairs {
		out.DropPairs = append(out.DropPairs, core.DemandPair{Src: p.Src, Dst: p.Dst})
	}
	if d.AddDemand != nil {
		ad, err := ToDemand(*d.AddDemand)
		if err != nil {
			return out, err
		}
		out.AddDemand = ad
	}
	return out, nil
}

// FromSchedule converts an in-process schedule to wire form.
func FromSchedule(s *schedule.Schedule) *wire.Schedule {
	if s == nil {
		return nil
	}
	out := &wire.Schedule{
		Tau:            s.Tau,
		NumEpochs:      s.NumEpochs,
		AllowCopy:      s.AllowCopy,
		EpochsPerChunk: s.EpochsPerChunk,
		Sends:          make([]wire.Send, len(s.Sends)),
	}
	for i, snd := range s.Sends {
		out.Sends[i] = wire.Send{
			Src: snd.Src, Chunk: snd.Chunk, Link: int(snd.Link),
			Epoch: snd.Epoch, Fraction: snd.Fraction,
		}
	}
	return out
}

// ToSchedule rebinds a wire schedule to a topology and demand (the
// session's current snapshots, client side).
func ToSchedule(s *wire.Schedule, t *topo.Topology, d *collective.Demand) *schedule.Schedule {
	if s == nil {
		return nil
	}
	out := &schedule.Schedule{
		Topo: t, Demand: d,
		Tau:            s.Tau,
		NumEpochs:      s.NumEpochs,
		AllowCopy:      s.AllowCopy,
		EpochsPerChunk: s.EpochsPerChunk,
		Sends:          make([]schedule.Send, len(s.Sends)),
	}
	for i, snd := range s.Sends {
		out.Sends[i] = schedule.Send{
			Src: snd.Src, Chunk: snd.Chunk, Link: topo.LinkID(snd.Link),
			Epoch: snd.Epoch, Fraction: snd.Fraction,
		}
	}
	return out
}

// FromPlan converts an in-process plan to wire form.
func FromPlan(p *core.Plan) wire.Plan {
	out := wire.Plan{
		Solver:         SolverName(p.Solver),
		CacheHit:       p.CacheHit,
		WarmStart:      p.WarmStart,
		CrashStart:     p.CrashStart,
		Replanned:      p.Replanned,
		ReplanFallback: p.ReplanFallback,
		ReBased:        p.ReBased,
	}
	if p.Result != nil {
		out.Optimal = p.Optimal
		out.Gap = p.Gap
		out.Objective = p.Objective
		out.Epochs = p.Epochs
		out.Tau = p.Tau
		out.Rounds = p.Rounds
		out.Windows = p.Windows
		out.SolveTimeMs = float64(p.SolveTime) / float64(time.Millisecond)
		out.Nodes = p.Nodes
		out.RootIterations = p.RootIterations
		out.NodeIterations = p.NodeIterations
		out.Refactorizations = p.Refactorizations
		out.FTUpdates = p.FTUpdates
		out.UpdateNnz = p.UpdateNnz
		out.Schedule = FromSchedule(p.Schedule)
	}
	return out
}

// ToPlan converts a wire plan back to the in-process form, rebinding
// the schedule to the given topology and demand.
func ToPlan(p wire.Plan, t *topo.Topology, d *collective.Demand) (*core.Plan, error) {
	solver, err := ParseSolver(p.Solver)
	if err != nil {
		return nil, err
	}
	return &core.Plan{
		Result: &core.Result{
			Schedule:         ToSchedule(p.Schedule, t, d),
			Objective:        p.Objective,
			Gap:              p.Gap,
			Optimal:          p.Optimal,
			SolveTime:        time.Duration(p.SolveTimeMs * float64(time.Millisecond)),
			Epochs:           p.Epochs,
			Tau:              p.Tau,
			Rounds:           p.Rounds,
			Windows:          p.Windows,
			Nodes:            p.Nodes,
			RootIterations:   p.RootIterations,
			NodeIterations:   p.NodeIterations,
			Refactorizations: p.Refactorizations,
			FTUpdates:        p.FTUpdates,
			UpdateNnz:        p.UpdateNnz,
			Reused:           p.CacheHit,
			WarmStarted:      p.WarmStart,
			CrashStarted:     p.CrashStart,
		},
		Solver:         solver,
		CacheHit:       p.CacheHit,
		WarmStart:      p.WarmStart,
		CrashStart:     p.CrashStart,
		Replanned:      p.Replanned,
		ReplanFallback: p.ReplanFallback,
		ReBased:        p.ReBased,
	}, nil
}

// FromStats converts in-process session counters to wire form.
func FromStats(s core.PlannerStats) wire.Stats {
	return wire.Stats{
		Requests:                 s.Requests,
		ScheduleReplays:          s.ScheduleReplays,
		WarmStartHits:            s.WarmStartHits,
		CrashStarts:              s.CrashStarts,
		ExactBasisHits:           s.ExactBasisHits,
		TauCacheHits:             s.TauCacheHits,
		EpochCacheHits:           s.EpochCacheHits,
		Replans:                  s.Replans,
		ReplanPivots:             s.ReplanPivots,
		ReplanIncrementalPivots:  s.ReplanIncrementalPivots,
		ColdEstimatePivots:       s.ColdEstimatePivots,
		ReplanFallbacks:          s.ReplanFallbacks,
		ReplanFallbackStructural: s.ReplanFallbackStructural,
		ReplanFallbackBudget:     s.ReplanFallbackBudget,
		ReplanFallbackSour:       s.ReplanFallbackSour,
		ReplanFallbackNoModel:    s.ReplanFallbackNoModel,
		ReBases:                  s.ReBases,
	}
}

// ToStats converts wire counters back to the in-process form.
func ToStats(s wire.Stats) core.PlannerStats {
	return core.PlannerStats{
		Requests:                 s.Requests,
		ScheduleReplays:          s.ScheduleReplays,
		WarmStartHits:            s.WarmStartHits,
		CrashStarts:              s.CrashStarts,
		ExactBasisHits:           s.ExactBasisHits,
		TauCacheHits:             s.TauCacheHits,
		EpochCacheHits:           s.EpochCacheHits,
		Replans:                  s.Replans,
		ReplanPivots:             s.ReplanPivots,
		ReplanIncrementalPivots:  s.ReplanIncrementalPivots,
		ColdEstimatePivots:       s.ColdEstimatePivots,
		ReplanFallbacks:          s.ReplanFallbacks,
		ReplanFallbackStructural: s.ReplanFallbackStructural,
		ReplanFallbackBudget:     s.ReplanFallbackBudget,
		ReplanFallbackSour:       s.ReplanFallbackSour,
		ReplanFallbackNoModel:    s.ReplanFallbackNoModel,
		ReBases:                  s.ReBases,
	}
}
