package wireconv

// Conversion round-trips between the wire schema and the in-process
// types. The golden JSON itself is pinned in the wire package; here the
// contract under test is that nothing is lost or mangled crossing the
// boundary in either direction.

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/topo"
	"teccl/wire"
)

// mustJSON marshals compactly and fails the test on error.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestStatsMirrorsPlannerStats(t *testing.T) {
	// wire.Stats must track PlannerStats field for field: a counter
	// added in core without a wire mapping would silently read zero at
	// every client. Round-trip a struct filled with distinct values and
	// require every field to survive.
	var ps core.PlannerStats
	v := reflect.ValueOf(&ps).Elem()
	if v.NumField() != reflect.TypeOf(wire.Stats{}).NumField() {
		t.Fatalf("PlannerStats has %d fields, wire.Stats %d — extend the wire mapping (and the golden)",
			v.NumField(), reflect.TypeOf(wire.Stats{}).NumField())
	}
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetInt(int64(i + 1))
	}
	if got := ToStats(FromStats(ps)); got != ps {
		t.Errorf("PlannerStats round-trip lost counters:\n got: %+v\nwant: %+v", got, ps)
	}
}

func TestTopologyRoundTrip(t *testing.T) {
	// The wire.Topology mirror must serialize to exactly the bytes the
	// in-process topology produces, churn state included — that identity
	// is what lets the stdlib-only wire package carry topologies at all.
	tt, err := topo.DGX1().ApplyDelta(topo.Delta{LinksDown: []topo.LinkID{3}})
	if err != nil {
		t.Fatal(err)
	}
	w, werr := FromTopology(tt)
	if werr != nil {
		t.Fatal(werr)
	}
	if got, want := mustJSON(t, w), mustJSON(t, tt); got != want {
		t.Fatalf("wire.Topology bytes diverge from topo.Topology:\n got: %s\nwant: %s", got, want)
	}
	back, err := ToTopology(w)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != tt.NumNodes() || back.NumLinks() != tt.NumLinks() {
		t.Fatalf("round-trip changed dimensions: %d/%d vs %d/%d",
			back.NumNodes(), back.NumLinks(), tt.NumNodes(), tt.NumLinks())
	}
	if !back.LinkDown(3) {
		t.Fatal("round-trip lost churn state (link 3 down)")
	}
	if got, want := mustJSON(t, back), mustJSON(t, tt); got != want {
		t.Fatalf("re-marshalled topology diverges:\n got: %s\nwant: %s", got, want)
	}

	// Invalid topologies must fail on the way in, not inside a solver.
	if _, err := ToTopology(&wire.Topology{
		Name:  "bad",
		Nodes: []wire.Node{{Name: "a"}},
		Links: []wire.Link{{Src: 0, Dst: 7, Capacity: 1, Alpha: 0}},
	}); err == nil {
		t.Fatal("topology with out-of-range link endpoint accepted")
	}

	// nil passes through untouched in both directions.
	if w, err := FromTopology(nil); err != nil || w != nil {
		t.Fatalf("FromTopology(nil) = %v, %v", w, err)
	}
	if tt, err := ToTopology(nil); err != nil || tt != nil {
		t.Fatalf("ToTopology(nil) = %v, %v", tt, err)
	}
}

func TestDemandRoundTrip(t *testing.T) {
	tt := topo.DGX1()
	var gpus []int
	for _, g := range tt.GPUs() {
		gpus = append(gpus, int(g))
	}
	d := collective.AllToAll(tt.NumNodes(), gpus, 2, 25e3)
	js := mustJSON(t, FromDemand(d))
	var w wire.Demand
	if err := json.Unmarshal([]byte(js), &w); err != nil {
		t.Fatal(err)
	}
	back, err := ToDemand(w)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != d.Fingerprint() {
		t.Fatal("demand fingerprint changed across the wire")
	}
}

func TestDemandValidation(t *testing.T) {
	cases := []wire.Demand{
		{NumNodes: 0, NumChunks: 1, ChunkBytes: 1},
		{NumNodes: 2, NumChunks: 1, ChunkBytes: 0},
		{NumNodes: 2, NumChunks: 1, ChunkBytes: 1, Wants: []wire.Want{{Src: 2, Chunk: 0, Dst: 0}}},
		{NumNodes: 2, NumChunks: 1, ChunkBytes: 1, Wants: []wire.Want{{Src: 0, Chunk: 1, Dst: 1}}},
		{NumNodes: 2, NumChunks: 1, ChunkBytes: 1, Wants: []wire.Want{{Src: 0, Chunk: 0, Dst: -1}}},
	}
	for i, c := range cases {
		if _, err := ToDemand(c); err == nil {
			t.Errorf("case %d: invalid demand accepted", i)
		}
	}
}

func TestOptionsRoundTrip(t *testing.T) {
	in := core.Options{
		Epochs: 5, EpochMode: core.SlowestLink, Tau: 2e-6, EpochMultiplier: 2,
		SwitchMode: core.SwitchNoCopy, NoBuffers: true, BufferLimitChunks: 3,
		GapLimit: 0.3, TimeLimit: 90 * time.Second, MinimizeMakespan: true,
		Crash: core.CrashAll, Workers: 4, RoundEpochs: 6, MaxRounds: 12,
		HorizonWindow: 16, HorizonOverlap: 12, HorizonCertify: 30 * time.Second,
		AutoEpochMultiplier: true, HorizonCellBudget: 50_000,
	}
	w := FromOptions(in)
	js := mustJSON(t, w)
	var back wire.Options
	if err := json.Unmarshal([]byte(js), &back); err != nil {
		t.Fatal(err)
	}
	out, err := ToOptions(back)
	if err != nil {
		t.Fatal(err)
	}
	// Function fields do not travel; compare the serializable rest.
	in.Priority, out.Priority = nil, nil
	if !reflect.DeepEqual(in, out) {
		t.Errorf("options round-trip:\n got: %+v\nwant: %+v", out, in)
	}

	for _, bad := range []wire.Options{
		{EpochMode: "medium"}, {SwitchMode: "maybe"}, {Crash: "sometimes"},
		{Priority: []wire.PriorityWeight{{Weight: 0}}},
	} {
		if _, err := ToOptions(bad); err == nil {
			t.Errorf("invalid options %+v accepted", bad)
		}
	}
}

func TestParseSolverNames(t *testing.T) {
	for name, want := range map[string]core.Solver{
		"": core.SolverAuto, "auto": core.SolverAuto, "lp": core.SolverLP,
		"milp": core.SolverMILP, "astar": core.SolverAStar, "horizon": core.SolverHorizon,
	} {
		got, err := ParseSolver(name)
		if err != nil || got != want {
			t.Errorf("ParseSolver(%q) = %v, %v; want %v", name, got, err, want)
		}
		if rt, err := ParseSolver(SolverName(want)); err != nil || rt != want {
			t.Errorf("solver %v does not round-trip through its wire name %q", want, SolverName(want))
		}
	}
	if _, err := ParseSolver("simplex"); err == nil {
		t.Error("unknown solver name accepted")
	}
}

func TestPrioritySampling(t *testing.T) {
	d := collective.New(3, 1, 1024)
	d.Set(0, 0, 1)
	d.Set(0, 0, 2)
	pri := func(src, chunk, dst int) float64 {
		if dst == 2 {
			return 10
		}
		return 1
	}
	sampled := SamplePriority(pri, d)
	if len(sampled) != 1 || sampled[0] != (wire.PriorityWeight{Src: 0, Chunk: 0, Dst: 2, Weight: 10}) {
		t.Fatalf("sampled = %+v, want the single non-neutral triple", sampled)
	}
	opt, err := ToOptions(wire.Options{Priority: sampled})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Priority(0, 0, 2) != 10 || opt.Priority(0, 0, 1) != 1 {
		t.Fatal("rebuilt priority function does not match the sample")
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	in := core.Delta{
		LinksDown: []topo.LinkID{0, 4},
		NodesDown: []topo.NodeID{2},
		Scale:     []topo.LinkScale{{Link: 1, Capacity: 0.5, Alpha: 2}},
		AddNodes:  []topo.Node{{Name: "c"}, {Name: "sw", Switch: true}},
		AddLinks:  []topo.Link{{Src: 0, Dst: 2, Capacity: 1e9, Alpha: 1e-6}},
		DropPairs: []core.DemandPair{{Src: 0, Dst: 1}},
	}
	back, err := ToDelta(FromDelta(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, back) {
		t.Fatalf("delta round-trip drifted:\n got: %+v\nwant: %+v", back, in)
	}
}

func TestPlanRoundTripThroughCore(t *testing.T) {
	tt := topo.DGX1()
	var gpus []int
	for _, g := range tt.GPUs() {
		gpus = append(gpus, int(g))
	}
	d := collective.AllToAll(tt.NumNodes(), gpus, 1, 25e3)
	pl := core.NewPlanner(tt, core.PlannerOptions{})
	defer pl.Close()
	plan, err := pl.Plan(t.Context(), core.Request{Demand: d})
	if err != nil {
		t.Fatal(err)
	}
	js := mustJSON(t, FromPlan(plan))
	var w wire.Plan
	if err := json.Unmarshal([]byte(js), &w); err != nil {
		t.Fatal(err)
	}
	back, err := ToPlan(w, tt, d)
	if err != nil {
		t.Fatal(err)
	}
	if back.Objective != plan.Objective || back.Solver != plan.Solver ||
		back.Optimal != plan.Optimal || back.Epochs != plan.Epochs {
		t.Fatalf("plan round-trip drifted: %+v vs %+v", back.Result, plan.Result)
	}
	if err := back.Schedule.Validate(); err != nil {
		t.Fatalf("rebound schedule invalid: %v", err)
	}
	if back.Schedule.FinishEpoch() != plan.Schedule.FinishEpoch() {
		t.Fatalf("finish epoch %d != %d", back.Schedule.FinishEpoch(), plan.Schedule.FinishEpoch())
	}
}
