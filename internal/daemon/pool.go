package daemon

// pool.go is the daemon's session tier: a bounded pool of live Planner
// sessions keyed by topology fingerprint. Two requests that plan over
// byte-identical topologies land on the same session and share its
// schedule-replay cache, warm-basis store, and estimate caches — the
// serving-side analogue of holding one Planner per topology in-process.
// The pool is LRU-bounded; evicting a session Closes its Planner so the
// retained LP models are released, and the session's final counters are
// folded into the daemon aggregates (metrics.go) before the handle is
// dropped.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"teccl/internal/core"
	"teccl/internal/topo"
)

// session is one live Planner plus its pool bookkeeping.
type session struct {
	id      string
	fp      string
	planner *core.Planner
	topo    *topo.Topology // the session's own snapshot (planner.Topology())
	created time.Time

	lastUsed atomic.Int64 // unix ms
	requests atomic.Int64
}

func (s *session) touch() { s.lastUsed.Store(time.Now().UnixMilli()) }

// fingerprint derives the pool key from a topology: the hash of its
// canonical JSON form (Topology.MarshalJSON is deterministic — fixed
// field order, ID-ordered nodes/links/down list).
func fingerprint(t *topo.Topology) (string, error) {
	js, err := json.Marshal(t)
	if err != nil {
		return "", fmt.Errorf("daemon: fingerprinting topology: %w", err)
	}
	sum := sha256.Sum256(js)
	return hex.EncodeToString(sum[:8]), nil
}

// pool owns the daemon's sessions.
type pool struct {
	limit int

	mu        sync.Mutex
	byFP      map[string]*session
	byID      map[string]*session
	seq       int64
	evictions int64
	// onEvict is called (outside mu is not guaranteed; it must be cheap)
	// with the final stats of every session leaving the pool, so the
	// daemon aggregates survive eviction.
	onEvict func(core.PlannerStats)
}

func newPool(limit int, onEvict func(core.PlannerStats)) *pool {
	if limit <= 0 {
		limit = 64
	}
	return &pool{
		limit:   limit,
		byFP:    make(map[string]*session),
		byID:    make(map[string]*session),
		onEvict: onEvict,
	}
}

// get returns the session serving the given topology, opening one (and
// evicting the least-recently-used session past the limit) on a
// fingerprint miss.
func (p *pool) get(t *topo.Topology) (*session, error) {
	fp, err := fingerprint(t)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.byFP[fp]; ok {
		s.touch()
		return s, nil
	}
	p.seq++
	s := &session{
		id:      fmt.Sprintf("s%d", p.seq),
		fp:      fp,
		planner: core.NewPlanner(t, core.PlannerOptions{}),
		created: time.Now(),
	}
	s.topo = s.planner.Topology()
	s.touch()
	p.byFP[fp] = s
	p.byID[s.id] = s
	for len(p.byID) > p.limit {
		p.evictLRULocked()
	}
	return s, nil
}

// byId returns the session with the given ID, or nil.
func (p *pool) byId(id string) *session {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.byID[id]; ok {
		s.touch()
		return s
	}
	return nil
}

// evictLRULocked closes and drops the least-recently-used session.
func (p *pool) evictLRULocked() {
	var victim *session
	for _, s := range p.byID {
		if victim == nil || s.lastUsed.Load() < victim.lastUsed.Load() {
			victim = s
		}
	}
	if victim == nil {
		return
	}
	p.removeLocked(victim)
	p.evictions++
}

// removeLocked closes a session and folds its counters into the daemon
// aggregates.
func (p *pool) removeLocked(s *session) {
	delete(p.byFP, s.fp)
	delete(p.byID, s.id)
	stats := s.planner.Stats()
	s.planner.Close()
	if p.onEvict != nil {
		p.onEvict(stats)
	}
}

// refingerprint re-keys a session after churn rewrote its topology:
// plan-by-topology requests carrying the churned fabric keep landing on
// this session, and ones carrying the original fabric open a fresh one.
func (p *pool) refingerprint(s *session, t *topo.Topology) {
	fp, err := fingerprint(t)
	if err != nil {
		return // unreachable for a topology the planner accepted
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.byID[s.id] != s {
		return // evicted while the replan ran
	}
	if cur, ok := p.byFP[s.fp]; ok && cur == s {
		delete(p.byFP, s.fp)
	}
	s.fp = fp
	s.topo = t
	// A session already serving the new fingerprint keeps it; this one
	// stays reachable by ID only.
	if _, taken := p.byFP[fp]; !taken {
		p.byFP[fp] = s
	}
}

// remove closes and drops the session with the given ID, reporting
// whether it existed.
func (p *pool) remove(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.byID[id]
	if ok {
		p.removeLocked(s)
	}
	return ok
}

// list snapshots the live sessions (unspecified order).
func (p *pool) list() []*session {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*session, 0, len(p.byID))
	for _, s := range p.byID {
		out = append(out, s)
	}
	return out
}

// size reports the live session count.
func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.byID)
}

// evicted reports the cumulative eviction count.
func (p *pool) evicted() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictions
}

// closeAll closes every session (daemon shutdown).
func (p *pool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.byID {
		p.removeLocked(s)
	}
}
