package daemon

// End-to-end tests of the daemon over real HTTP (httptest): the v1
// endpoints, fingerprint-keyed session reuse, admission control under
// saturation, and the lame-duck drain path. The suite runs under the
// race detector in CI.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"teccl/internal/collective"
	"teccl/internal/topo"
	"teccl/internal/wireconv"
	"teccl/wire"
)

func testDemand(t *topo.Topology, chunks int) wire.Demand {
	var gpus []int
	for _, g := range t.GPUs() {
		gpus = append(gpus, int(g))
	}
	// All-to-all routes to the LP via the default policy, whose replay
	// cache makes identical repeats deterministic cache hits.
	return wireconv.FromDemand(collective.AllToAll(t.NumNodes(), gpus, chunks, 25e3))
}

// wireTopo snapshots a topology into its wire form for request bodies.
func wireTopo(t *testing.T, tt *topo.Topology) *wire.Topology {
	t.Helper()
	w, err := wireconv.FromTopology(tt)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

// call POSTs (or GETs, for a nil body) and decodes the response into
// out, returning the status code.
func call(t *testing.T, method, url string, in, out any) int {
	t.Helper()
	var body io.Reader
	if in != nil {
		js, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(js)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

func TestDaemonPlanReplanStats(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	tt := topo.DGX1()

	// First plan opens a session and solves.
	var plan wire.PlanResponse
	req := wire.PlanRequest{Topology: wireTopo(t, tt), Demand: testDemand(tt, 1)}
	if st := call(t, "POST", hs.URL+"/v1/plan", req, &plan); st != 200 {
		t.Fatalf("plan status %d", st)
	}
	if plan.API != wire.Version || plan.SessionID == "" {
		t.Fatalf("bad plan envelope %+v", plan)
	}
	if plan.Plan.Schedule == nil || len(plan.Plan.Schedule.Sends) == 0 {
		t.Fatal("plan carries no schedule")
	}
	if plan.Plan.CacheHit {
		t.Fatal("first plan claims a cache hit")
	}

	// The identical request replays from the session cache.
	var again wire.PlanResponse
	if st := call(t, "POST", hs.URL+"/v1/plan", req, &again); st != 200 {
		t.Fatalf("second plan status %d", st)
	}
	if again.SessionID != plan.SessionID {
		t.Fatalf("identical topology split sessions: %q vs %q", again.SessionID, plan.SessionID)
	}
	if !again.Plan.CacheHit {
		t.Fatal("identical second request was not replayed")
	}
	if again.Plan.Objective != plan.Plan.Objective {
		t.Fatalf("replayed objective %g != %g", again.Plan.Objective, plan.Plan.Objective)
	}

	// Session-scoped churn: take a link down and reoptimize.
	var rp wire.ReplanResponse
	rreq := wire.ReplanRequest{SessionID: plan.SessionID, Delta: wire.Delta{LinksDown: []int{0}}}
	if st := call(t, "POST", hs.URL+"/v1/replan", rreq, &rp); st != 200 {
		t.Fatalf("replan status %d", st)
	}
	if !rp.Plan.Replanned {
		t.Fatal("replan response not marked replanned")
	}
	if rp.Topology == nil {
		t.Fatal("replan response carries no post-churn topology")
	}
	if rp.Plan.Schedule != nil && rp.Demand != nil {
		d, err := wireconv.ToDemand(*rp.Demand)
		if err != nil {
			t.Fatal(err)
		}
		nt, err := wireconv.ToTopology(rp.Topology)
		if err != nil {
			t.Fatal(err)
		}
		sched := wireconv.ToSchedule(rp.Plan.Schedule, nt, d)
		if err := sched.Validate(); err != nil {
			t.Fatalf("rebound replan schedule invalid: %v", err)
		}
		for _, snd := range sched.Sends {
			if int(snd.Link) == 0 {
				t.Fatal("replanned schedule uses the downed link")
			}
		}
	}

	// Stats over the wire reflect all three solves.
	var stats wire.StatsResponse
	if st := call(t, "GET", hs.URL+"/v1/sessions/"+plan.SessionID+"/stats", nil, &stats); st != 200 {
		t.Fatalf("stats status %d", st)
	}
	// A replan that falls back to a cold re-solve re-enters the plan
	// pipeline, so Requests may exceed the two wire-level plan calls.
	if stats.Stats.Requests < 2 || stats.Stats.ScheduleReplays != 1 || stats.Stats.Replans != 1 {
		t.Fatalf("stats = %+v, want ≥2 requests / 1 replay / 1 replan", stats.Stats)
	}

	var sessions wire.SessionsResponse
	if st := call(t, "GET", hs.URL+"/v1/sessions", nil, &sessions); st != 200 {
		t.Fatalf("sessions status %d", st)
	}
	if len(sessions.Sessions) != 1 || sessions.Sessions[0].Requests != 3 {
		t.Fatalf("sessions = %+v, want 1 session with 3 requests", sessions.Sessions)
	}

	var health map[string]any
	if st := call(t, "GET", hs.URL+"/healthz", nil, &health); st != 200 {
		t.Fatalf("healthz status %d", st)
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"teccld_sessions 1",
		`teccld_requests_total{endpoint="plan",code="200"} 2`,
		`teccld_planner_counters_total{counter="replans"} 1`,
		"teccld_solve_seconds_count 3",
	} {
		if !strings.Contains(string(met), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestDaemonSessionRouting(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	a := topo.DGX1()
	b := topo.Ring(4, 25e9, 0.6e-6) // different fabric → different fingerprint

	var pa, pb, pa2 wire.PlanResponse
	if st := call(t, "POST", hs.URL+"/v1/plan", wire.PlanRequest{Topology: wireTopo(t, a), Demand: testDemand(a, 1)}, &pa); st != 200 {
		t.Fatalf("plan A status %d", st)
	}
	if st := call(t, "POST", hs.URL+"/v1/plan", wire.PlanRequest{Topology: wireTopo(t, b), Demand: testDemand(b, 1)}, &pb); st != 200 {
		t.Fatalf("plan B status %d", st)
	}
	if pa.SessionID == pb.SessionID {
		t.Fatal("distinct topologies share a session")
	}
	// Planning by session ID reuses the session without a topology.
	if st := call(t, "POST", hs.URL+"/v1/plan", wire.PlanRequest{SessionID: pa.SessionID, Demand: testDemand(a, 2)}, &pa2); st != 200 {
		t.Fatalf("plan by session status %d", st)
	}
	if pa2.SessionID != pa.SessionID {
		t.Fatalf("session routing: got %q, want %q", pa2.SessionID, pa.SessionID)
	}

	var werr wire.Error
	if st := call(t, "POST", hs.URL+"/v1/plan", wire.PlanRequest{SessionID: "nope", Demand: testDemand(a, 1)}, &werr); st != 404 {
		t.Fatalf("unknown session: status %d, want 404", st)
	}
	if st := call(t, "GET", hs.URL+"/v1/sessions/nope/stats", nil, &werr); st != 404 {
		t.Fatalf("unknown session stats: status %d, want 404", st)
	}
	if st := call(t, "POST", hs.URL+"/v1/plan", wire.PlanRequest{Demand: testDemand(a, 1)}, &werr); st != 400 {
		t.Fatalf("no topology, no session: status %d, want 400", st)
	}

	// DELETE closes the session; subsequent use is a 404.
	if st := call(t, "DELETE", hs.URL+"/v1/sessions/"+pb.SessionID, nil, nil); st != 204 {
		t.Fatalf("delete status %d", st)
	}
	if st := call(t, "POST", hs.URL+"/v1/plan", wire.PlanRequest{SessionID: pb.SessionID, Demand: testDemand(b, 1)}, &werr); st != 404 {
		t.Fatalf("deleted session: status %d, want 404", st)
	}
}

func TestDaemonLRUEviction(t *testing.T) {
	_, hs := newTestServer(t, Options{MaxSessions: 1})
	a, b := topo.DGX1(), topo.Ring(4, 25e9, 0.6e-6)

	var pa, pb wire.PlanResponse
	if st := call(t, "POST", hs.URL+"/v1/plan", wire.PlanRequest{Topology: wireTopo(t, a), Demand: testDemand(a, 1)}, &pa); st != 200 {
		t.Fatalf("plan A status %d", st)
	}
	if st := call(t, "POST", hs.URL+"/v1/plan", wire.PlanRequest{Topology: wireTopo(t, b), Demand: testDemand(b, 1)}, &pb); st != 200 {
		t.Fatalf("plan B status %d", st)
	}
	var sessions wire.SessionsResponse
	call(t, "GET", hs.URL+"/v1/sessions", nil, &sessions)
	if len(sessions.Sessions) != 1 || sessions.Sessions[0].ID != pb.SessionID {
		t.Fatalf("sessions after eviction = %+v, want only %q", sessions.Sessions, pb.SessionID)
	}
	// The evicted session's counters survive in the /metrics aggregate.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"teccld_sessions_evicted_total 1",
		`teccld_planner_counters_total{counter="requests"} 2`,
	} {
		if !strings.Contains(string(met), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestDaemonSaturationReturns429(t *testing.T) {
	s, hs := newTestServer(t, Options{MaxConcurrent: 1, QueueDepth: 1})
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	s.testHookSolve = func() {
		entered <- struct{}{}
		<-gate
	}
	tt := topo.DGX1()
	req := wire.PlanRequest{Topology: wireTopo(t, tt), Demand: testDemand(tt, 1)}

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes[i] = call(t, "POST", hs.URL+"/v1/plan", req, nil)
		}()
		if i == 0 {
			<-entered // first solve holds the only slot before the next is fired
		} else {
			waitFor(t, func() bool { return s.queued.Load() == 2 })
		}
	}

	// Slot busy + queue full: the third request must be shed, not queued.
	var werr wire.Error
	if st := call(t, "POST", hs.URL+"/v1/plan", req, &werr); st != 429 {
		t.Fatalf("saturated status %d (%+v), want 429", st, werr)
	}
	close(gate)
	wg.Wait()
	for i, c := range codes {
		if c != 200 {
			t.Fatalf("admitted request %d finished with %d", i, c)
		}
	}
}

func TestDaemonDrain(t *testing.T) {
	s, hs := newTestServer(t, Options{MaxConcurrent: 2})
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	s.testHookSolve = func() {
		entered <- struct{}{}
		<-gate
	}
	tt := topo.DGX1()
	req := wire.PlanRequest{Topology: wireTopo(t, tt), Demand: testDemand(tt, 1)}

	inflightCode := make(chan int, 1)
	go func() { inflightCode <- call(t, "POST", hs.URL+"/v1/plan", req, nil) }()
	<-entered

	s.BeginDrain()

	// New solves are refused and the health check goes unhealthy, but the
	// in-flight solve keeps running.
	var werr wire.Error
	if st := call(t, "POST", hs.URL+"/v1/plan", req, &werr); st != 503 {
		t.Fatalf("draining plan status %d, want 503", st)
	}
	if st := call(t, "GET", hs.URL+"/healthz", nil, nil); st != 503 {
		t.Fatalf("draining healthz status %d, want 503", st)
	}

	// Drain blocks on the in-flight solve...
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := s.Drain(ctx); err == nil {
		t.Fatal("Drain returned before the in-flight solve finished")
	}
	cancel()

	// ...and completes once it does, with the solve answered normally.
	close(gate)
	ctx, cancel = context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if code := <-inflightCode; code != 200 {
		t.Fatalf("in-flight solve finished with %d", code)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
