package daemon

// metrics.go aggregates the daemon's observable state and renders it in
// Prometheus text exposition format for GET /metrics. Per-session solver
// counters come from the existing Planner.Stats plumbing: live sessions
// are summed on scrape, and the pool folds a session's final counters in
// here when it evicts, so totals are monotone across evictions.

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"teccl/internal/core"
)

// latencyBuckets are the fixed histogram bucket bounds, in seconds, for
// solve-request latency. Plans on cached sessions replay in well under a
// millisecond; cold MILP solves run seconds — the buckets span both.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metrics is the daemon-wide counter set. All methods are safe for
// concurrent use.
type metrics struct {
	mu sync.Mutex

	// requests[endpoint][status] counts finished HTTP requests.
	requests map[string]map[int]int64

	// Solve-latency histogram over /v1/plan and /v1/replan.
	bucketCounts []int64
	latencySum   float64
	latencyCount int64

	rejected429 int64
	rejected503 int64

	// evicted accumulates the final counters of sessions the pool has
	// closed; scrapes add the live sessions on top.
	evicted core.PlannerStats
}

func newMetrics() *metrics {
	return &metrics{
		requests:     make(map[string]map[int]int64),
		bucketCounts: make([]int64, len(latencyBuckets)),
	}
}

// observe records one finished HTTP request.
func (m *metrics) observe(endpoint string, status int, d time.Duration, solve bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus, ok := m.requests[endpoint]
	if !ok {
		byStatus = make(map[int]int64)
		m.requests[endpoint] = byStatus
	}
	byStatus[status]++
	switch status {
	case 429:
		m.rejected429++
	case 503:
		m.rejected503++
	}
	if !solve || status != 200 {
		return
	}
	sec := d.Seconds()
	m.latencySum += sec
	m.latencyCount++
	for i, b := range latencyBuckets {
		if sec <= b {
			m.bucketCounts[i]++
		}
	}
}

// foldEvicted absorbs a closed session's final counters.
func (m *metrics) foldEvicted(st core.PlannerStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evicted = addStats(m.evicted, st)
}

func addStats(a, b core.PlannerStats) core.PlannerStats {
	a.Requests += b.Requests
	a.ScheduleReplays += b.ScheduleReplays
	a.WarmStartHits += b.WarmStartHits
	a.CrashStarts += b.CrashStarts
	a.ExactBasisHits += b.ExactBasisHits
	a.TauCacheHits += b.TauCacheHits
	a.EpochCacheHits += b.EpochCacheHits
	a.Replans += b.Replans
	a.ReplanPivots += b.ReplanPivots
	a.ReplanFallbacks += b.ReplanFallbacks
	a.ReplanFallbackStructural += b.ReplanFallbackStructural
	a.ReplanFallbackBudget += b.ReplanFallbackBudget
	a.ReplanFallbackSour += b.ReplanFallbackSour
	a.ReplanFallbackNoModel += b.ReplanFallbackNoModel
	a.ReBases += b.ReBases
	return a
}

// render writes the Prometheus text exposition. live is the sum of the
// still-open sessions' counters; sessions/evictions/inflight/queued are
// point-in-time gauges supplied by the server.
func (m *metrics) render(w io.Writer, live core.PlannerStats, sessions int, evictions, inflight, queued int64) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP teccld_sessions Live planner sessions in the pool.\n")
	fmt.Fprintf(w, "# TYPE teccld_sessions gauge\n")
	fmt.Fprintf(w, "teccld_sessions %d\n", sessions)
	fmt.Fprintf(w, "# HELP teccld_sessions_evicted_total Sessions closed by LRU eviction or DELETE.\n")
	fmt.Fprintf(w, "# TYPE teccld_sessions_evicted_total counter\n")
	fmt.Fprintf(w, "teccld_sessions_evicted_total %d\n", evictions)
	fmt.Fprintf(w, "# HELP teccld_inflight_solves Solve requests currently holding a concurrency slot.\n")
	fmt.Fprintf(w, "# TYPE teccld_inflight_solves gauge\n")
	fmt.Fprintf(w, "teccld_inflight_solves %d\n", inflight)
	fmt.Fprintf(w, "# HELP teccld_queued_solves Solve requests admitted but waiting for a slot.\n")
	fmt.Fprintf(w, "# TYPE teccld_queued_solves gauge\n")
	fmt.Fprintf(w, "teccld_queued_solves %d\n", queued)

	fmt.Fprintf(w, "# HELP teccld_requests_total Finished HTTP requests by endpoint and status.\n")
	fmt.Fprintf(w, "# TYPE teccld_requests_total counter\n")
	endpoints := make([]string, 0, len(m.requests))
	for ep := range m.requests {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		statuses := make([]int, 0, len(m.requests[ep]))
		for st := range m.requests[ep] {
			statuses = append(statuses, st)
		}
		sort.Ints(statuses)
		for _, st := range statuses {
			fmt.Fprintf(w, "teccld_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, st, m.requests[ep][st])
		}
	}
	fmt.Fprintf(w, "# HELP teccld_rejected_total Requests rejected by admission control.\n")
	fmt.Fprintf(w, "# TYPE teccld_rejected_total counter\n")
	fmt.Fprintf(w, "teccld_rejected_total{reason=\"saturated\"} %d\n", m.rejected429)
	fmt.Fprintf(w, "teccld_rejected_total{reason=\"draining\"} %d\n", m.rejected503)

	fmt.Fprintf(w, "# HELP teccld_solve_seconds Latency of successful plan/replan requests.\n")
	fmt.Fprintf(w, "# TYPE teccld_solve_seconds histogram\n")
	for i, b := range latencyBuckets {
		fmt.Fprintf(w, "teccld_solve_seconds_bucket{le=\"%g\"} %d\n", b, m.bucketCounts[i])
	}
	fmt.Fprintf(w, "teccld_solve_seconds_bucket{le=\"+Inf\"} %d\n", m.latencyCount)
	fmt.Fprintf(w, "teccld_solve_seconds_sum %g\n", m.latencySum)
	fmt.Fprintf(w, "teccld_solve_seconds_count %d\n", m.latencyCount)

	total := addStats(m.evicted, live)
	fmt.Fprintf(w, "# HELP teccld_planner_counters_total Aggregated Planner session counters (live + evicted).\n")
	fmt.Fprintf(w, "# TYPE teccld_planner_counters_total counter\n")
	for _, c := range []struct {
		name string
		v    int
	}{
		{"requests", total.Requests},
		{"schedule_replays", total.ScheduleReplays},
		{"warm_start_hits", total.WarmStartHits},
		{"crash_starts", total.CrashStarts},
		{"exact_basis_hits", total.ExactBasisHits},
		{"tau_cache_hits", total.TauCacheHits},
		{"epoch_cache_hits", total.EpochCacheHits},
		{"replans", total.Replans},
		{"replan_pivots", total.ReplanPivots},
		{"replan_fallbacks", total.ReplanFallbacks},
		{"rebases", total.ReBases},
	} {
		fmt.Fprintf(w, "teccld_planner_counters_total{counter=%q} %d\n", c.name, c.v)
	}
}
