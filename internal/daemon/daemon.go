// Package daemon implements the teccld planning service: a long-lived
// HTTP server owning a pool of Planner sessions keyed by topology
// fingerprint, so repeated requests over the same fabric reuse one
// session's replay cache, warm-basis store, and estimate caches across
// clients and connections.
//
// The management plane is versioned JSON over HTTP (the v1 schema lives
// in package wire):
//
//	POST   /v1/plan                solve one collective (topology or session_id)
//	POST   /v1/replan              apply session-scoped churn and reoptimize
//	GET    /v1/sessions            list live sessions
//	GET    /v1/sessions/{id}/stats one session's cumulative counters
//	DELETE /v1/sessions/{id}       close and drop a session
//	GET    /healthz                liveness (503 while draining)
//	GET    /metrics                Prometheus text exposition
//
// Solve endpoints are admission-controlled: at most MaxConcurrent solves
// run at once, at most QueueDepth more wait; beyond that the daemon
// answers 429 so callers shed load instead of stacking goroutines on a
// saturated solver. BeginDrain flips the daemon into lame-duck mode (new
// solves get 503, /healthz goes unhealthy for load balancers) and
// Drain waits for the in-flight solves to finish — the SIGTERM path of
// cmd/teccld.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"teccl/internal/core"
	"teccl/internal/wireconv"
	"teccl/wire"
)

// maxBodyBytes bounds request bodies; topologies and demands for
// fabric-scale instances are well under this.
const maxBodyBytes = 16 << 20

// Options configures a Server. Zero values mean the documented defaults.
type Options struct {
	// MaxSessions bounds the session pool; past it the least-recently
	// used session is closed and evicted. Default 64.
	MaxSessions int
	// MaxConcurrent bounds simultaneously running solves. Default 4.
	MaxConcurrent int
	// QueueDepth bounds solves waiting for a slot beyond MaxConcurrent;
	// past it new solves get 429. Default 16.
	QueueDepth int
	// Workers is the default branch-and-bound worker count per solve
	// (core.Options.Workers) when the request does not set one.
	Workers int
	// DefaultTimeLimit applies when a request carries no time limit.
	// Zero means unlimited.
	DefaultTimeLimit time.Duration
	// MaxTimeLimit caps every request's time limit (and replaces an
	// unlimited one), so one client cannot hold a solver slot forever.
	// Zero means no cap.
	MaxTimeLimit time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 64
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	return o
}

// Server is the teccld planning service. Create with New, serve via
// http.Server (it implements http.Handler), stop with BeginDrain +
// Drain + Close.
type Server struct {
	opts Options
	pool *pool
	met  *metrics
	mux  *http.ServeMux

	sem      chan struct{} // MaxConcurrent slots
	queued   atomic.Int64  // admitted solves: waiting + running
	inflight atomic.Int64  // solves holding a slot
	draining atomic.Bool
	wg       sync.WaitGroup // solve requests between admission and response

	// testHookSolve, when set, runs in place of nothing while a solve
	// holds its concurrency slot — the seam the saturation and drain
	// tests use to keep solves in flight deterministically.
	testHookSolve func()
}

// New creates a Server. It is ready to serve immediately.
func New(opts Options) *Server {
	s := &Server{
		opts: opts.withDefaults(),
		met:  newMetrics(),
		mux:  http.NewServeMux(),
	}
	s.pool = newPool(s.opts.MaxSessions, s.met.foldEvicted)
	s.sem = make(chan struct{}, s.opts.MaxConcurrent)

	s.mux.HandleFunc("POST /v1/plan", s.instrument("plan", true, s.handlePlan))
	s.mux.HandleFunc("POST /v1/replan", s.instrument("replan", true, s.handleReplan))
	s.mux.HandleFunc("GET /v1/sessions", s.instrument("sessions", false, s.handleSessions))
	s.mux.HandleFunc("GET /v1/sessions/{id}/stats", s.instrument("stats", false, s.handleSessionStats))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument("delete", false, s.handleSessionDelete))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// BeginDrain puts the server into lame-duck mode: subsequent solve
// requests are refused with 503 and /healthz reports draining, while
// already-admitted solves run to completion.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain blocks until every in-flight solve has finished or ctx expires.
// Call BeginDrain first.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("daemon: drain interrupted with %d solve(s) in flight: %w",
			s.queued.Load(), ctx.Err())
	}
}

// Close releases every session in the pool. Call after Drain.
func (s *Server) Close() { s.pool.closeAll() }

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request metrics; solve marks the
// endpoints whose 200-latency feeds the solve histogram.
func (s *Server) instrument(endpoint string, solve bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		s.met.observe(endpoint, rec.status, time.Since(start), solve)
	}
}

// writeJSON writes a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError writes a wire.Error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, wire.Error{Error: fmt.Sprintf(format, args...), Code: status})
}

// admit performs admission control for one solve request. On success it
// returns a release function the caller must run when the solve
// finishes; otherwise it returns the HTTP status to answer with.
func (s *Server) admit(ctx context.Context) (release func(), status int, err error) {
	if s.draining.Load() {
		return nil, http.StatusServiceUnavailable, errors.New("daemon is draining")
	}
	s.wg.Add(1)
	if s.draining.Load() {
		// BeginDrain raced in between the check and the Add; refuse so
		// Drain's Wait cannot miss us.
		s.wg.Done()
		return nil, http.StatusServiceUnavailable, errors.New("daemon is draining")
	}
	if q := s.queued.Add(1); q > int64(s.opts.MaxConcurrent+s.opts.QueueDepth) {
		s.queued.Add(-1)
		s.wg.Done()
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("solver saturated: %d solves admitted (cap %d running + %d queued)",
				q-1, s.opts.MaxConcurrent, s.opts.QueueDepth)
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.queued.Add(-1)
		s.wg.Done()
		return nil, 499, fmt.Errorf("canceled while queued: %w", ctx.Err())
	}
	s.inflight.Add(1)
	return func() {
		<-s.sem
		s.inflight.Add(-1)
		s.queued.Add(-1)
		s.wg.Done()
	}, 0, nil
}

// resolveOptions converts wire options (possibly absent) to core
// options, applying the daemon's worker and time-limit policy.
func (s *Server) resolveOptions(wopts *wire.Options) (core.Options, error) {
	var opt core.Options
	if wopts != nil {
		var err error
		opt, err = wireconv.ToOptions(*wopts)
		if err != nil {
			return opt, err
		}
	}
	if opt.Workers == 0 {
		opt.Workers = s.opts.Workers
	}
	if opt.TimeLimit == 0 {
		opt.TimeLimit = s.opts.DefaultTimeLimit
	}
	if s.opts.MaxTimeLimit > 0 && (opt.TimeLimit == 0 || opt.TimeLimit > s.opts.MaxTimeLimit) {
		opt.TimeLimit = s.opts.MaxTimeLimit
	}
	return opt, nil
}

// solveStatus maps a Plan/Replan error to an HTTP status.
func solveStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrPlannerClosed):
		return http.StatusGone
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusUnprocessableEntity
	}
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req wire.PlanRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding plan request: %v", err)
		return
	}

	var sess *session
	switch {
	case req.SessionID != "":
		if req.Topology != nil {
			writeError(w, http.StatusBadRequest, "plan request sets both topology and session_id")
			return
		}
		if sess = s.pool.byId(req.SessionID); sess == nil {
			writeError(w, http.StatusNotFound, "no session %q", req.SessionID)
			return
		}
	case req.Topology != nil:
		t, err := wireconv.ToTopology(req.Topology)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid topology: %v", err)
			return
		}
		if err := t.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "invalid topology: %v", err)
			return
		}
		if sess, err = s.pool.get(t); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "plan request needs a topology or a session_id")
		return
	}

	demand, err := wireconv.ToDemand(req.Demand)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opt, err := s.resolveOptions(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	solver, err := wireconv.ParseSolver(req.Solver)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	release, status, err := s.admit(r.Context())
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	defer release()
	if s.testHookSolve != nil {
		s.testHookSolve()
	}

	sess.requests.Add(1)
	plan, err := sess.planner.Plan(r.Context(), core.Request{Demand: demand, Options: &opt, Solver: solver})
	if err != nil {
		writeError(w, solveStatus(err), "plan: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, wire.PlanResponse{
		API:       wire.Version,
		SessionID: sess.id,
		Plan:      wireconv.FromPlan(plan),
	})
}

func (s *Server) handleReplan(w http.ResponseWriter, r *http.Request) {
	var req wire.ReplanRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding replan request: %v", err)
		return
	}
	if req.SessionID == "" {
		writeError(w, http.StatusBadRequest, "replan request needs a session_id")
		return
	}
	sess := s.pool.byId(req.SessionID)
	if sess == nil {
		writeError(w, http.StatusNotFound, "no session %q", req.SessionID)
		return
	}
	delta, err := wireconv.ToDelta(req.Delta)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	release, status, err := s.admit(r.Context())
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	defer release()
	if s.testHookSolve != nil {
		s.testHookSolve()
	}

	sess.requests.Add(1)
	plan, err := sess.planner.Replan(r.Context(), delta)
	if err != nil {
		writeError(w, solveStatus(err), "replan: %v", err)
		return
	}
	// Churn rewrites the session topology, so re-key the pool entry and
	// ship the post-churn snapshots for the client to rebind against.
	newTopo := sess.planner.Topology()
	s.pool.refingerprint(sess, newTopo)
	wtopo, err := wireconv.FromTopology(newTopo)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "replan: snapshotting topology: %v", err)
		return
	}
	resp := wire.ReplanResponse{
		API:       wire.Version,
		SessionID: sess.id,
		Plan:      wireconv.FromPlan(plan),
		Topology:  wtopo,
	}
	if plan.Result != nil && plan.Schedule != nil && plan.Schedule.Demand != nil {
		d := wireconv.FromDemand(plan.Schedule.Demand)
		resp.Demand = &d
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	sessions := s.pool.list()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].created.Before(sessions[j].created) })
	resp := wire.SessionsResponse{API: wire.Version, Sessions: make([]wire.SessionInfo, 0, len(sessions))}
	for _, sess := range sessions {
		resp.Sessions = append(resp.Sessions, wire.SessionInfo{
			ID:          sess.id,
			Topology:    sess.topo.Name,
			Fingerprint: sess.fp,
			NumNodes:    sess.topo.NumNodes(),
			NumLinks:    sess.topo.NumLinks(),
			CreatedMs:   sess.created.UnixMilli(),
			LastUsedMs:  sess.lastUsed.Load(),
			Requests:    sess.requests.Load(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionStats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.pool.byId(id)
	if sess == nil {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	writeJSON(w, http.StatusOK, wire.StatsResponse{
		API:       wire.Version,
		SessionID: sess.id,
		Stats:     wireconv.FromStats(sess.planner.Stats()),
	})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.pool.remove(id) {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"api":      wire.Version,
		"sessions": s.pool.size(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var live core.PlannerStats
	for _, sess := range s.pool.list() {
		live = addStats(live, sess.planner.Stats())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.render(w, live, s.pool.size(), s.pool.evicted(), s.inflight.Load(), s.queued.Load()-s.inflight.Load())
}
