package experiments

// loadgen.go is the daemon saturation benchmark: an embedded teccld
// server (in-process httptest listener, so no ports or processes) under
// a concurrent client swarm, measuring served plans/sec and client-side
// p50/p99 latency over the real wire path — JSON encode, HTTP, admission
// control, session pool, solve or replay, JSON decode. The workload
// cycles a small set of chunk sizes over one topology, so after the
// first lap the daemon serves mostly schedule replays: the steady state
// of a serving tier, where wire and dispatch overhead dominates.

import (
	"fmt"
	"math"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"teccl/client"
	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/daemon"
	"teccl/internal/topo"
)

// P99BudgetMs is the client-side p99 latency budget of the saturation
// benchmark, in milliseconds. The steady state is schedule replays, so
// p99 measures wire + dispatch + admission cost, not solver time; a
// regression here means the serving path got slower, and CI fails the
// bench-smoke job on it (benchtables exits non-zero when the measured
// p99 exceeds the budget). The tail still includes the first-lap cold
// solves queuing behind admission control, so the budget is set ~3x
// over the p99 measured on the single-core container this repo
// benches on (~650ms).
const P99BudgetMs = 2000

// LoadGen drives the embedded daemon to saturation and reports
// throughput and latency percentiles.
func LoadGen(short bool) *Table {
	const clients = 8
	total := 240
	if short {
		total = 96
	}

	srv := daemon.New(daemon.Options{
		MaxConcurrent: 4,
		QueueDepth:    2 * clients,
		Workers:       Workers(),
	})
	hs := httptest.NewServer(srv)
	defer func() {
		hs.Close()
		srv.Close()
	}()

	tt := topo.DGX1()
	// Chunk-size cycle: distinct sizes are distinct models (cold solves
	// on the first lap), repeats replay from the session cache.
	sizes := []float64{25e3, 50e3, 100e3, 200e3}
	demands := make([]*collective.Demand, len(sizes))
	for i, bytes := range sizes {
		demands[i] = collective.AllToAll(tt.NumNodes(), gpuInts(tt), 1, bytes)
	}

	c, err := client.Dial(hs.URL, client.ClientOptions{})
	if err != nil {
		return &Table{ID: "loadgen", Title: "Daemon saturation", Notes: err.Error()}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		rejected  int
		failed    int
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker holds its own RemotePlanner; all of them map to
			// one daemon session by topology fingerprint.
			planner := c.Planner(tt)
			for i := w; i < total; i += clients {
				d := demands[i%len(demands)]
				t0 := time.Now()
				_, err := planner.Plan(Context(), core.Request{Demand: d.Clone()})
				dt := time.Since(t0)
				mu.Lock()
				switch {
				case err == nil:
					latencies = append(latencies, dt)
				default:
					// Admission rejections (429) surface as API errors; any
					// other failure counts separately and fails the table.
					if isRejection(err) {
						rejected++
					} else {
						failed++
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pctl := func(p float64) float64 {
		if len(latencies) == 0 {
			return math.NaN()
		}
		idx := int(p*float64(len(latencies)-1) + 0.5)
		return float64(latencies[idx]) / float64(time.Millisecond)
	}
	served := len(latencies)
	plansPerSec := float64(served) / wall.Seconds()
	p50, p99 := pctl(0.50), pctl(0.99)

	tab := &Table{
		ID:     "loadgen",
		Title:  "Daemon saturation: plans/sec through the wire API",
		Header: []string{"clients", "requests", "served", "rejected", "plans/sec", "p50 ms", "p99 ms"},
		Rows: [][]string{{
			fmt.Sprintf("%d", clients),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%d", served),
			fmt.Sprintf("%d", rejected),
			fmt.Sprintf("%.0f", plansPerSec),
			fmt.Sprintf("%.2f", p50),
			fmt.Sprintf("%.2f", p99),
		}},
		Notes: "embedded teccld, DGX1 all-to-all over a cycled chunk-size set; " +
			"steady state is schedule replays, so latency is wire + dispatch cost",
		Metrics: map[string]float64{
			"plans_per_sec": plansPerSec,
			"p50_ms":        p50,
			"p99_ms":        p99,
			"p99_budget_ms": P99BudgetMs,
			"rejected":      float64(rejected),
			"failed":        float64(failed),
		},
	}
	if failed > 0 {
		tab.Notes = fmt.Sprintf("%d requests FAILED; %s", failed, tab.Notes)
	}
	if p99 > P99BudgetMs {
		tab.Notes = fmt.Sprintf("p99 %.2fms OVER the %dms budget; %s", p99, P99BudgetMs, tab.Notes)
	}
	return tab
}

// isRejection reports whether a client error is daemon admission
// control (HTTP 429/503) rather than a solve failure.
func isRejection(err error) bool {
	s := err.Error()
	return strings.Contains(s, "http 429") || strings.Contains(s, "http 503")
}
