package experiments

// workers.go is the concurrency scoreboard: it records, per commit (the
// CI smoke job uploads benchtables -json output as an artifact), what
// the worker-pool branch and bound and the batched sweep solver buy over
// their serial counterparts. Two workloads are measured:
//
//   - bb-multiknapsack: a correlated multi-knapsack explored to a fixed
//     node budget at growing worker counts. The TE-CCL MILPs in this
//     corpus mostly solve at the root (the greedy incumbent plus the
//     paper's 30% gap leave nothing to branch on), so the scoreboard
//     uses an instance with a real tree; wall clock per fixed budget is
//     the node-evaluation throughput.
//   - sweep-rebuilt / sweep-batched: the Fig 5-style ALLTOALL size sweep
//     solved by rebuilding every point versus one BatchSolveLP call
//     (structure reuse + basis chaining + worker fan-out).
//
// On a single-core host the bb rows degenerate to an overhead check
// (ratios ~1.0x); the sweep-batched row wins regardless of core count
// because model replay and basis chaining save work, not just time.

import (
	"fmt"
	"math/rand"
	"time"

	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/lp"
	"teccl/internal/milp"
	"teccl/internal/topo"
)

// scoreKnapsack builds the branch-and-bound-heavy instance of the
// scoreboard: a correlated multi-knapsack over shared capacity rows
// (mirrors internal/milp's BenchmarkMILPWorkers).
func scoreKnapsack(rows, vars int, seed int64) *milp.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := lp.NewProblem(lp.Maximize)
	ints := make([]lp.VarID, vars)
	weights := make([][]float64, rows)
	for r := range weights {
		weights[r] = make([]float64, vars)
	}
	for j := 0; j < vars; j++ {
		var wsum float64
		for r := 0; r < rows; r++ {
			w := 1 + rng.Float64()*9
			weights[r][j] = w
			wsum += w
		}
		ints[j] = p.AddVar("", 0, 1, wsum/float64(rows)+rng.Float64())
	}
	for r := 0; r < rows; r++ {
		terms := make([]lp.Term, vars)
		var total float64
		for j := 0; j < vars; j++ {
			terms[j] = lp.Term{Var: ints[j], Coeff: weights[r][j]}
			total += weights[r][j]
		}
		p.AddRow(terms, lp.LE, total*0.4)
	}
	return &milp.Problem{LP: p, Integer: ints}
}

// WorkersSweep regenerates the concurrency scoreboard (see the file
// comment). Row order is stable: bb rows by worker count, then the
// rebuilt sweep, then the batched sweep.
func WorkersSweep(short bool) *Table {
	tab := &Table{
		ID:     "workers",
		Title:  "solver concurrency: parallel branch-and-bound and batched sweeps",
		Header: []string{"benchmark", "workers", "time", "nodes", "reused", "vs_serial"},
		Notes:  "bb rows: fixed-budget (by nodes) multi-knapsack, wall clock = node throughput; sweep rows: alpha-free DGX1 ALLTOALL size sweep, batched vs rebuilt",
	}

	workerCounts := []int{1, 2, 4, 8}
	nodeBudget := 1200
	if short {
		workerCounts = []int{1, 4}
		nodeBudget = 600
	}
	var serialBB time.Duration
	for _, w := range workerCounts {
		start := time.Now()
		sol := milp.Solve(scoreKnapsack(16, 50, 5), milp.Options{Workers: w, MaxNodes: nodeBudget})
		elapsed := time.Since(start)
		solveCounters.iters.Add(int64(sol.RootIterations + sol.NodeIterations))
		solveCounters.refactors.Add(int64(sol.Refactorizations))
		solveCounters.ftUpdates.Add(int64(sol.FTUpdates))
		solveCounters.updateNnz.Add(int64(sol.UpdateNnz))
		if w == workerCounts[0] {
			serialBB = elapsed
		}
		tab.Rows = append(tab.Rows, []string{
			"bb-multiknapsack", fmt.Sprint(w),
			elapsed.Round(time.Millisecond).String(), fmt.Sprint(sol.Nodes), "-",
			speedup(serialBB, elapsed),
		})
	}

	// Power-of-two size steps keep the chunk-unit ratios bit-exact in
	// floating point, so every point of the alpha-free sweep reduces to
	// one LP and replays from the first solve.
	t := topo.ZeroAlpha(topo.DGX1())
	gpus := gpuInts(t)
	sizes := []float64{64e3, 256e3, 1024e3, 4096e3, 16384e3}
	if short {
		sizes = []float64{64e3, 1024e3, 16384e3}
	}
	demands := make([]*collective.Demand, len(sizes))
	for i, size := range sizes {
		demands[i] = collective.AllToAll(t.NumNodes(), gpus, 1, size/float64(len(gpus)))
	}
	opt := core.Options{EpochMode: core.FastestLink, TimeLimit: solveLimit}

	start := time.Now()
	for _, d := range demands {
		res, err := core.SolveLPContext(Context(), t, d, opt)
		account(res, err)
	}
	rebuilt := time.Since(start)
	tab.Rows = append(tab.Rows, []string{
		"sweep-rebuilt", "1", rebuilt.Round(time.Millisecond).String(),
		"-", "0", speedup(rebuilt, rebuilt),
	})

	start = time.Now()
	rs, errs := core.BatchSolveLPContext(Context(), t, demands, opt, core.BatchOptions{Workers: maxInt(1, Workers())})
	batched := time.Since(start)
	reused := 0
	for i := range rs {
		account(rs[i], errs[i])
		if errs[i] == nil && rs[i].Reused {
			reused++
		}
	}
	tab.Rows = append(tab.Rows, []string{
		"sweep-batched", fmt.Sprint(maxInt(1, Workers())),
		batched.Round(time.Millisecond).String(),
		"-", fmt.Sprint(reused), speedup(rebuilt, batched),
	})

	// The same sweep through one Planner session (the serving-shaped
	// request stream): structurally identical points replay, the rest
	// warm-start from session bases. "reused" counts replays + warm hits.
	session := newSession(t)
	start = time.Now()
	for _, d := range demands {
		res, err := planVia(session, d, opt, core.SolverLP)
		account(res, err)
	}
	viaPlanner := time.Since(start)
	st := session.Stats()
	tab.Rows = append(tab.Rows, []string{
		"sweep-planner", "1", viaPlanner.Round(time.Millisecond).String(),
		"-", fmt.Sprint(st.ScheduleReplays + st.WarmStartHits), speedup(rebuilt, viaPlanner),
	})
	return tab
}

// speedup renders base/other as a ratio string.
func speedup(base, other time.Duration) string {
	if other <= 0 {
		return "X"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(other))
}
