//go:build !race

package experiments

// raceEnabled reports whether the race detector is compiled in; latency
// assertions are skipped under -race, where instrumentation overhead
// makes wall-clock budgets meaningless.
const raceEnabled = false
