// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) at laptop scale. Each experiment returns a Table whose
// rows mirror the series the paper plots; EXPERIMENTS.md records the
// paper-versus-measured comparison. The scale substitutions are listed in
// DESIGN.md: the shapes (who wins, by what factor, where the crossovers
// fall) are the reproduction target, not the absolute numbers from the
// authors' 80-core Gurobi testbed.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"

	"teccl/internal/baseline"
	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/schedule"
	"teccl/internal/sim"
	"teccl/internal/topo"
)

// Table is one regenerated paper artifact.
type Table struct {
	ID     string // e.g. "fig4", "table3"
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
	// Metrics carries solver-effort counters accumulated while the
	// experiment ran (simplex iterations, basis refactorizations), for
	// machine-readable bench output; best-effort — only solves routed
	// through the run helper are counted.
	Metrics map[string]float64
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// gpuInts lists a topology's GPUs as ints.
func gpuInts(t *topo.Topology) []int {
	var out []int
	for _, g := range t.GPUs() {
		out = append(out, int(g))
	}
	return out
}

// solveCounters accumulates solver-effort counters while an experiment
// regenerates; ByID snapshots them into the returned Table.Metrics.
// Atomics keep concurrent solves race-free, though concurrent ByID calls
// would still interleave their counts (experiments run serially today).
var solveCounters struct{ iters, refactors, ftUpdates, updateNnz atomic.Int64 }

// workersKnob is the harness-wide solver concurrency setting: the worker
// count experiments pass into core.Options.Workers (branch-and-bound
// node evaluation) and BatchSolveLP fan-outs. Zero means serial.
var workersKnob atomic.Int32

// SetWorkers sets the harness worker-pool size (cmd/benchtables
// -workers); 0 restores serial solves.
func SetWorkers(n int) { workersKnob.Store(int32(n)) }

// Workers reports the configured harness worker count.
func Workers() int { return int(workersKnob.Load()) }

// harnessCtx is the context every solve in the harness runs under
// (cmd/benchtables installs a signal-aware one, so Ctrl-C cancels a
// regeneration mid-simplex instead of killing the process). The
// interface is boxed in ctxHolder so atomic.Value sees one concrete
// type regardless of which context implementation callers pass.
var harnessCtx atomic.Value // of ctxHolder

type ctxHolder struct{ ctx context.Context }

// SetContext installs the harness-wide solve context; nil restores
// context.Background().
func SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	harnessCtx.Store(ctxHolder{ctx})
}

// Context reports the harness-wide solve context.
func Context() context.Context {
	if v := harnessCtx.Load(); v != nil {
		return v.(ctxHolder).ctx
	}
	return context.Background()
}

// newSession opens a Planner session for one experiment's topology, so
// the experiment's sweep points share cached epoch estimates, tau
// derivations, and warm bases across solves.
func newSession(t *topo.Topology) *core.Planner {
	return core.NewPlanner(t, core.PlannerOptions{})
}

// planVia solves one demand through a session under the harness context
// with a forced formulation, returning the plain Result the run/account
// bookkeeping consumes.
func planVia(pl *core.Planner, d *collective.Demand, opt core.Options, s core.Solver) (*core.Result, error) {
	plan, err := pl.Plan(Context(), core.Request{Demand: d, Options: &opt, Solver: s})
	if plan == nil {
		return nil, err
	}
	return plan.Result, err
}

// run solves and simulates, returning (transferTime, solveTime). A failed
// solve returns +Inf transfer time.
func run(solve func() (*core.Result, error)) (float64, time.Duration) {
	res, err := solve()
	return account(res, err)
}

// account folds one solve into the harness bookkeeping and simulates
// its schedule; shared by run and the batched sweep paths.
func account(res *core.Result, err error) (float64, time.Duration) {
	if err != nil {
		return math.Inf(1), 0
	}
	solveCounters.iters.Add(int64(res.RootIterations + res.NodeIterations))
	solveCounters.refactors.Add(int64(res.Refactorizations))
	solveCounters.ftUpdates.Add(int64(res.FTUpdates))
	solveCounters.updateNnz.Add(int64(res.UpdateNnz))
	r, err := sim.Run(res.Schedule)
	if err != nil {
		return math.Inf(1), res.SolveTime
	}
	return r.FinishTime, res.SolveTime
}

func us(sec float64) string {
	if math.IsInf(sec, 1) {
		return "X"
	}
	return fmt.Sprintf("%.2f", sec*1e6)
}

func pct(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return "X"
	}
	return fmt.Sprintf("%+.1f%%", v)
}

func gbps(bytesPerSec float64) string {
	if bytesPerSec <= 0 || math.IsInf(bytesPerSec, 0) {
		return "X"
	}
	return fmt.Sprintf("%.3f", bytesPerSec/1e9)
}

func sizeLabel(bytes float64) string {
	switch {
	case bytes >= 1e9:
		return fmt.Sprintf("%.0fGB", bytes/1e9)
	case bytes >= 1e6:
		return fmt.Sprintf("%.0fMB", bytes/1e6)
	case bytes >= 1e3:
		return fmt.Sprintf("%.0fKB", bytes/1e3)
	default:
		return fmt.Sprintf("%.0fB", bytes)
	}
}

// algoBW computes output-buffer / transfer-time for a demand.
func algoBW(d *collective.Demand, transfer float64) float64 {
	if transfer <= 0 || math.IsInf(transfer, 1) {
		return 0
	}
	return d.MaxOutputBufferBytes() / transfer
}

// tacclRun solves with the TACCL-like baseline and simulates.
func tacclRun(t *topo.Topology, d *collective.Demand, seed int64, restarts int) (float64, time.Duration) {
	r := baseline.SolveTACCL(t, d, baseline.TACCLOptions{Seed: seed, Restarts: restarts})
	if !r.Feasible {
		return math.Inf(1), r.SolveTime
	}
	res, err := sim.Run(r.Schedule)
	if err != nil {
		return math.Inf(1), r.SolveTime
	}
	return res.FinishTime, r.SolveTime
}

// validateOrInf simulates a schedule, returning +Inf on any failure.
func validateOrInf(s *schedule.Schedule) float64 {
	if s == nil {
		return math.Inf(1)
	}
	r, err := sim.Run(s)
	if err != nil {
		return math.Inf(1)
	}
	return r.FinishTime
}

// All runs every experiment (in paper order) and returns the tables.
// short trims sweeps for quick runs.
func All(short bool) []*Table {
	return []*Table{
		Fig2(short),
		Table3(short),
		Fig4and5(short),
		Fig6(short),
		Table4(short),
		Fig7(short),
		Fig8(short),
		Fig9(short),
		AStarVsOpt(short),
		Table7(short),
		Table8(short),
		WorkersSweep(short),
		Churn(short),
		ChurnStream(short),
		Horizon(short),
		LoadGen(short),
	}
}

// ByID returns the experiment with the given ID, or nil. The returned
// table's Metrics snapshot the solver-effort counters of the run.
func ByID(id string, short bool) *Table {
	solveCounters.iters.Store(0)
	solveCounters.refactors.Store(0)
	solveCounters.ftUpdates.Store(0)
	solveCounters.updateNnz.Store(0)
	tab := byID(id, short)
	if tab != nil {
		// Merge rather than assign: experiments may pre-populate Metrics
		// with their own counters (e.g. churn's replan pivots).
		if tab.Metrics == nil {
			tab.Metrics = map[string]float64{}
		}
		tab.Metrics["iterations"] = float64(solveCounters.iters.Load())
		tab.Metrics["refactorizations"] = float64(solveCounters.refactors.Load())
		tab.Metrics["ft_updates"] = float64(solveCounters.ftUpdates.Load())
		tab.Metrics["update_nnz"] = float64(solveCounters.updateNnz.Load())
	}
	return tab
}

func byID(id string, short bool) *Table {
	switch strings.ToLower(id) {
	case "fig2":
		return Fig2(short)
	case "table3":
		return Table3(short)
	case "fig4", "fig5", "fig4and5":
		return Fig4and5(short)
	case "fig6":
		return Fig6(short)
	case "table4":
		return Table4(short)
	case "fig7":
		return Fig7(short)
	case "fig8":
		return Fig8(short)
	case "fig9":
		return Fig9(short)
	case "astar":
		return AStarVsOpt(short)
	case "table7":
		return Table7(short)
	case "table8":
		return Table8(short)
	case "workers":
		return WorkersSweep(short)
	case "churn":
		return Churn(short)
	case "churnstream":
		return ChurnStream(short)
	case "horizon":
		return Horizon(short)
	case "loadgen":
		return LoadGen(short)
	}
	return nil
}

// IDs lists the available experiment identifiers.
func IDs() []string {
	return []string{"fig2", "table3", "fig4and5", "fig6", "table4",
		"fig7", "fig8", "fig9", "astar", "table7", "table8", "workers", "churn",
		"churnstream", "horizon", "loadgen"}
}
