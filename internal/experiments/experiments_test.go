package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// These tests run the -short variants of the cheaper experiments and
// assert on the paper's qualitative claims (the "shape" the reproduction
// targets), not exact numbers.

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(strings.TrimPrefix(s, "+"), "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig2ErrorShrinksWithSize(t *testing.T) {
	tab := Fig2(true)
	if len(tab.Rows) < 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	first := parseFloat(t, tab.Rows[0][3])              // smallest transfer
	last := parseFloat(t, tab.Rows[len(tab.Rows)-1][3]) // largest transfer
	if first <= last {
		t.Fatalf("alpha-blind error should shrink with size: %.3f -> %.3f", first, last)
	}
	if first <= 0 {
		t.Fatalf("small transfers must show positive error, got %.3f", first)
	}
}

func TestFig6LPBeatsOrMatchesTACCL(t *testing.T) {
	tab := Fig6(true)
	for _, row := range tab.Rows {
		if row[3] == "X" {
			continue
		}
		if gain := parseFloat(t, row[3]); gain < -5 {
			t.Fatalf("TE-CCL LP should not lose to TACCL on AtoA: %v", row)
		}
	}
}

func TestAStarVsOptShape(t *testing.T) {
	tab := AStarVsOpt(true)
	for _, row := range tab.Rows {
		if row[2] == "X" || row[3] == "X" {
			t.Fatalf("solves failed: %v", row)
		}
		// A* can never beat the optimum.
		if gap := parseFloat(t, row[4]); gap < -1 {
			t.Fatalf("A* beat OPT, impossible: %v", row)
		}
	}
}

func TestTableString(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  "n",
	}
	s := tab.String()
	for _, want := range []string{"== x: t ==", "333", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestByIDAndIDs(t *testing.T) {
	for _, id := range IDs() {
		// Existence only; running all would be slow. fig2 runs in the
		// dedicated test above.
		if id == "" {
			t.Fatal("empty id")
		}
	}
	if ByID("nope", true) != nil {
		t.Fatal("unknown id should return nil")
	}
}

func TestHelpers(t *testing.T) {
	if us(1e-6) != "1.00" {
		t.Fatalf("us: %s", us(1e-6))
	}
	if sizeLabel(2e9) != "2GB" || sizeLabel(5e6) != "5MB" ||
		sizeLabel(64e3) != "64KB" || sizeLabel(100) != "100B" {
		t.Fatal("size labels wrong")
	}
	if pct(12.34) != "+12.3%" {
		t.Fatalf("pct: %s", pct(12.34))
	}
	if gbps(2.5e9) != "2.500" {
		t.Fatalf("gbps: %s", gbps(2.5e9))
	}
}

func TestChurnHeadlineRatio(t *testing.T) {
	tab := ByID("churn", true)
	if tab == nil {
		t.Fatal("churn experiment missing")
	}
	// The acceptance criterion CI pins: a single-link-down replan on the
	// NDv2 ALLTOALL reoptimizes in at most 25% of the cold solve's
	// simplex iterations.
	ratio, ok := tab.Metrics["ndv2_linkdown_pivot_ratio"]
	if !ok {
		t.Fatalf("ndv2 link-down ratio missing from metrics: %v", tab.Metrics)
	}
	if ratio > 0.25 {
		t.Fatalf("NDv2 link-down replan used %.0f%% of cold pivots, want <= 25%%", ratio*100)
	}
	// ByID must merge the shared solver counters without clobbering the
	// experiment's own metrics.
	for _, key := range []string{"iterations", "replan_pivots", "replan_wall_ms", "replan_fallbacks"} {
		if _, ok := tab.Metrics[key]; !ok {
			t.Fatalf("metric %q missing after merge: %v", key, tab.Metrics)
		}
	}
	for _, row := range tab.Rows {
		if len(row) > 2 && (row[2] == "replan-failed" || row[2] == "base-failed" || row[2] == "delta-failed") {
			t.Fatalf("churn scenario failed: %v", row)
		}
	}
}

func TestLoadGenP99Budget(t *testing.T) {
	tab := ByID("loadgen", true)
	if tab == nil {
		t.Fatal("loadgen experiment missing")
	}
	if tab.Metrics["failed"] > 0 {
		t.Fatalf("%v requests failed: %s", tab.Metrics["failed"], tab.Notes)
	}
	if got := tab.Metrics["p99_budget_ms"]; got != P99BudgetMs {
		t.Fatalf("budget metric %v, want %v (benchtables gates CI on this key)", got, P99BudgetMs)
	}
	p99 := tab.Metrics["p99_ms"]
	if !(p99 > 0) {
		t.Fatalf("p99 not measured: %v", p99)
	}
	if raceEnabled {
		t.Logf("race detector on; skipping the %dms budget check (p99 %.2fms)", P99BudgetMs, p99)
		return
	}
	// The CI regression gate, asserted here too so a serving-path
	// regression fails `go test` as well as the bench-smoke job.
	if p99 > P99BudgetMs {
		t.Fatalf("p99 %.2fms over the %dms budget", p99, P99BudgetMs)
	}
}

func TestHorizonExperimentShort(t *testing.T) {
	tab := ByID("horizon", true)
	if tab == nil {
		t.Fatal("horizon experiment missing")
	}
	// Two instances in short mode, a horizon row and a monolithic row each.
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d: %v", len(tab.Rows), tab.Rows)
	}
	for _, row := range tab.Rows {
		for i, cell := range row {
			if cell == "?" || cell == "X" {
				t.Fatalf("row %v: column %d unsolved", row, i)
			}
		}
	}
	if w := tab.Metrics["horizon_windows"]; w < 2 {
		t.Fatalf("last instance used %v windows, want >= 2 (decomposition not exercised)", w)
	}
	if gap := tab.Metrics["gap_pct"]; gap > 5 {
		t.Fatalf("objective gap %.2f%% over the 5%% acceptance bound", gap)
	}
}
