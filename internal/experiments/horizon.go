package experiments

// horizon.go is the rolling-horizon experiment family: the same
// ALLTOALL instances solved twice — windowed (internal/horizon) and
// monolithic (one dual simplex over the full time-expanded model) — so
// the table reports the decomposition's wall-clock win next to its
// certified objective gap. Short mode keeps the corpus minis for CI
// bench-smoke; full mode adds the headline NDv2 two-chassis instance,
// where the monolithic simplex is the minutes-scale scaling wall.

import (
	"fmt"
	"math"
	"time"

	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/horizon"
	"teccl/internal/topo"
)

// Horizon regenerates the rolling-horizon comparison table.
func Horizon(short bool) *Table {
	tab := &Table{
		ID:     "horizon",
		Title:  "rolling-horizon decomposition vs monolithic LP (ALLTOALL)",
		Header: []string{"instance", "path", "windows", "epochs", "finish", "solver_time", "CT(us)", "gap_pct"},
		Notes:  "gap is (mono-horizon)/mono on the tail-weighted objective; full mode adds the NDv2 2-chassis headline",
	}

	type inst struct {
		name  string
		t     *topo.Topology
		chunk float64
		opt   core.Options
	}
	insts := []inst{
		// Corpus minis: forced-small windows with a one-epoch commit
		// stride, the regime the property suite pins to the monolithic
		// finish epoch.
		{"dgx1-atoa-50KB", topo.DGX1(), 50e3,
			core.Options{EpochMode: core.SlowestLink, HorizonWindow: 8, HorizonOverlap: 7}},
		{"ndv2mini2-atoa-25KB", topo.NDv2Mini(2), 25e3,
			core.Options{EpochMode: core.SlowestLink, HorizonWindow: 8, HorizonOverlap: 7}},
	}
	if !short {
		// The headline: auto-sized windows on the instance whose
		// monolithic solve is minutes of dual simplex on this substrate.
		insts = append(insts, inst{"ndv2x2-atoa-62KB", topo.NDv2(2), 1e6 / 16,
			core.Options{EpochMode: core.SlowestLink}})
	}

	for _, in := range insts {
		d := collective.AllToAll(in.t.NumNodes(), gpuInts(in.t), 1, in.chunk)

		hopt := in.opt
		hopt.Workers = Workers()
		t0 := time.Now()
		hres, herr := horizon.Solve(Context(), in.t, d, hopt)
		hwall := time.Since(t0)
		hct, _ := account(hres, herr)

		mopt := core.Options{EpochMode: in.opt.EpochMode, Workers: Workers()}
		t0 = time.Now()
		mres, merr := core.SolveLPContext(Context(), in.t, d, mopt)
		mwall := time.Since(t0)
		mct, _ := account(mres, merr)

		gap := math.NaN()
		if herr == nil && merr == nil && mres.Objective > 0 {
			gap = (mres.Objective - hres.Objective) / mres.Objective * 100
			if gap < 0 {
				gap = 0
			}
		}

		hrow := []string{in.name, "horizon", "?", "?", "?", "X", us(hct), pctOrX(gap)}
		if herr == nil {
			hrow[2] = fmt.Sprint(hres.Windows)
			hrow[3] = fmt.Sprint(hres.Epochs)
			hrow[4] = fmt.Sprint(hres.Schedule.FinishEpoch())
			hrow[5] = hwall.Round(time.Millisecond).String()
		}
		mrow := []string{in.name, "monolithic", "-", "?", "?", "X", us(mct), "-"}
		if merr == nil {
			mrow[3] = fmt.Sprint(mres.Epochs)
			mrow[4] = fmt.Sprint(mres.Schedule.FinishEpoch())
			mrow[5] = mwall.Round(time.Millisecond).String()
		}
		tab.Rows = append(tab.Rows, hrow, mrow)

		// Last instance wins (the headline in full mode): the machine-
		// readable comparison bench-smoke archives per PR.
		if tab.Metrics == nil {
			tab.Metrics = map[string]float64{}
		}
		tab.Metrics["horizon_wall_ms"] = float64(hwall) / float64(time.Millisecond)
		tab.Metrics["mono_wall_ms"] = float64(mwall) / float64(time.Millisecond)
		if herr == nil {
			tab.Metrics["horizon_windows"] = float64(hres.Windows)
		}
		if !math.IsNaN(gap) {
			tab.Metrics["gap_pct"] = gap
		}
	}
	return tab
}

func pctOrX(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "X"
	}
	return fmt.Sprintf("%.2f%%", v)
}
