package experiments

// churn.go is the fault-injection scenario family: it measures what
// Planner.Replan buys when a live session absorbs churn, against the
// operational alternative of re-solving the churned world from scratch.
// Each scenario plans a steady-state collective, injects one fault —
// a link failure, a straggler (α inflation), or bandwidth degradation —
// and reports the incremental reoptimization's simplex pivots and wall
// clock next to the cold re-solve's, plus whether the replan stayed
// incremental or degraded gracefully to a cold crash-started solve.
// The CI smoke job uploads the -json rows per commit, pinning the
// headline robustness number: a single-link-down replan on the NDv2
// ALLTOALL reoptimizes in a small fraction of the cold solve's pivots.

import (
	"fmt"
	"math"
	"time"

	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/topo"
)

// churnScenario is one fault-injection point: a platform, steady-state
// solve options, and the fault to inject once the session is warm.
type churnScenario struct {
	name  string
	topo  string
	build func() *topo.Topology
	opts  core.Options
	delta func(t *topo.Topology) core.Delta
}

// removableLink returns a link whose individual loss keeps the topology
// valid (every GPU pair still mutually reachable), or -1.
func removableLink(t *topo.Topology) topo.LinkID {
	for l := 0; l < t.NumLinks(); l++ {
		probe, err := t.ApplyDelta(topo.Delta{LinksDown: []topo.LinkID{topo.LinkID(l)}})
		if err == nil && probe.Validate() == nil {
			return topo.LinkID(l)
		}
	}
	return -1
}

// fastestLink returns the highest-capacity link (degradation target: at
// slowest-link τ its headroom keeps a mild downscale non-structural).
func fastestLink(t *topo.Topology) topo.LinkID {
	best, bestCap := topo.LinkID(0), 0.0
	for l := 0; l < t.NumLinks(); l++ {
		if c := t.Link(topo.LinkID(l)).Capacity; c > bestCap {
			best, bestCap = topo.LinkID(l), c
		}
	}
	return best
}

func churnScenarios(short bool) []churnScenario {
	linkDown := func(t *topo.Topology) core.Delta {
		return core.Delta{LinksDown: []topo.LinkID{removableLink(t)}}
	}
	// The headline NDv2 failure is deterministic: one intra-chassis
	// NVLink ring link (gpu2→gpu3 of chassis 0). Its flows reroute over
	// the quad's surviving ring and diagonal links, which is exactly the
	// local repair the incumbent basis pays few pivots for.
	nvlinkDown := func(t *topo.Topology) core.Delta {
		g := t.GPUs()
		return core.Delta{LinksDown: []topo.LinkID{t.FindLink(g[2], g[3])}}
	}
	// An IB uplink loss halves cross-chassis bandwidth: the incumbent
	// horizon becomes infeasible and the replan degrades gracefully to a
	// cold solve at a re-derived horizon.
	ibDown := func(t *topo.Topology) core.Delta {
		g, sw := t.GPUs(), t.Switches()
		return core.Delta{LinksDown: []topo.LinkID{t.FindLink(g[0], sw[0])}}
	}
	// NDv2Mini and DGX2Mini run at slowest-link τ: their fastest-link
	// horizons (tens of epochs, set by the slow cross-chassis hop) make
	// cold reference solves needlessly slow for a scoreboard, and the
	// κ=1 discretization keeps mild degradation non-structural.
	slowest := core.Options{EpochMode: core.SlowestLink, TimeLimit: solveLimit}
	fastest := core.Options{TimeLimit: solveLimit}
	scenarios := []churnScenario{
		{name: "link-down", topo: "NDv2", delta: nvlinkDown, opts: slowest,
			build: func() *topo.Topology { return topo.NDv2Mini(2) }},
		{name: "link-down", topo: "DGX1", delta: linkDown, opts: fastest,
			build: topo.DGX1},
		{name: "degradation", topo: "DGX2", opts: slowest,
			build: func() *topo.Topology { return topo.DGX2Mini(2) },
			delta: func(t *topo.Topology) core.Delta {
				return core.Delta{Scale: []topo.LinkScale{{Link: fastestLink(t), Capacity: 0.9}}}
			}},
		{name: "straggler", topo: "DGX1", opts: fastest,
			build: topo.DGX1,
			delta: func(t *topo.Topology) core.Delta {
				// A 3x α inflation changes the link's pipeline depth δ —
				// structural churn exercising the graceful cold fallback.
				return core.Delta{Scale: []topo.LinkScale{{Link: 0, Alpha: 3}}}
			}},
		{name: "degradation", topo: "NDv2", opts: slowest,
			build: func() *topo.Topology { return topo.NDv2Mini(2) },
			delta: func(t *topo.Topology) core.Delta {
				return core.Delta{Scale: []topo.LinkScale{{Link: fastestLink(t), Capacity: 0.9}}}
			}},
		// Losing an IB uplink leaves the incumbent horizon infeasible:
		// the row documents the graceful degradation path under churn
		// the incremental model cannot absorb.
		{name: "ib-uplink-down", topo: "NDv2", delta: ibDown, opts: slowest,
			build: func() *topo.Topology { return topo.NDv2Mini(2) }},
	}
	if short {
		// Keep the headline NDv2 link-down row plus one of each fault
		// kind; -short is what CI pins per commit.
		scenarios = scenarios[:4]
	}
	return scenarios
}

// Churn regenerates the fault-injection scoreboard (see the file
// comment). Row order is stable; the NDv2 link-down row leads because
// its pivot ratio is the acceptance criterion CI tracks.
func Churn(short bool) *Table {
	tab := &Table{
		ID:     "churn",
		Title:  "online replanning under churn: incremental reoptimization vs cold re-solve",
		Header: []string{"fault", "topo", "mode", "replan_pivots", "cold_iters", "pivot_ratio", "replan_wall", "cold_wall"},
		Notes: "each row: warm ALLTOALL session absorbs one fault via Planner.Replan; " +
			"cold columns re-solve the churned world from scratch (crash-started); " +
			"mode is incremental (dual-simplex reoptimization from the incumbent basis) or fallback (graceful cold re-solve)",
		Metrics: map[string]float64{},
	}

	var pivots, fallbacks, replanWall float64
	for _, sc := range churnScenarios(short) {
		t := sc.build()
		d := collective.AllToAll(t.NumNodes(), gpuInts(t), 1, 25e3)
		pl := core.NewPlanner(t, core.PlannerOptions{Defaults: sc.opts})
		if _, err := pl.Plan(Context(), core.Request{Demand: d, Solver: core.SolverLP}); err != nil {
			tab.Rows = append(tab.Rows, []string{sc.name, sc.topo, "base-failed", "X", "X", "X", "X", "X"})
			continue
		}
		delta := sc.delta(t)

		start := time.Now()
		rp, err := pl.Replan(Context(), delta)
		rpElapsed := time.Since(start)
		if err != nil {
			tab.Rows = append(tab.Rows, []string{sc.name, sc.topo, "replan-failed", "X", "X", "X", "X", "X"})
			continue
		}
		account(rp.Result, nil)

		churned, err := t.ApplyDelta(topo.Delta{
			LinksDown: delta.LinksDown, NodesDown: delta.NodesDown, Scale: delta.Scale,
		})
		if err != nil {
			tab.Rows = append(tab.Rows, []string{sc.name, sc.topo, "delta-failed", "X", "X", "X", "X", "X"})
			continue
		}
		start = time.Now()
		cold, coldErr := core.SolveLPContext(Context(), churned, d, sc.opts)
		coldElapsed := time.Since(start)
		account(cold, coldErr)

		mode := "incremental"
		if rp.ReplanFallback {
			mode = "fallback"
			fallbacks++
		}
		coldIters := math.Inf(1)
		ratio := "X"
		if coldErr == nil {
			coldIters = float64(cold.RootIterations)
			if coldIters > 0 {
				ratio = fmt.Sprintf("%.2f", float64(rp.RootIterations)/coldIters)
			}
		}
		pivots += float64(rp.RootIterations)
		replanWall += rpElapsed.Seconds() * 1e3
		tab.Rows = append(tab.Rows, []string{
			sc.name, sc.topo, mode,
			fmt.Sprint(rp.RootIterations), fmtIters(coldIters), ratio,
			rpElapsed.Round(time.Millisecond).String(),
			coldElapsed.Round(time.Millisecond).String(),
		})
		if sc.name == "link-down" && sc.topo == "NDv2" && coldErr == nil && coldIters > 0 {
			tab.Metrics["ndv2_linkdown_pivot_ratio"] = float64(rp.RootIterations) / coldIters
		}
	}
	tab.Metrics["replan_pivots"] = pivots
	tab.Metrics["replan_wall_ms"] = replanWall
	tab.Metrics["replan_fallbacks"] = fallbacks
	return tab
}

func fmtIters(v float64) string {
	if math.IsInf(v, 1) {
		return "X"
	}
	return fmt.Sprintf("%.0f", v)
}
