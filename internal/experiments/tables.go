package experiments

import (
	"fmt"
	"math"
	"time"

	"teccl/internal/baseline"
	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/topo"
)

// scclSolve wraps the SCCL-like baseline with experiment defaults.
func scclSolve(t *topo.Topology, d *collective.Demand) *baseline.SCCLResult {
	return baseline.SolveSCCL(t, d, baseline.SCCLOptions{
		MaxSteps: 4, MaxRounds: 3, TimeLimit: solveLimit,
	})
}

// Table7 reproduces Table 7: solver-time comparison between SCCL's
// instance mode (steps and rounds pinned) and TE-CCL, with α = 0 as in
// the paper's apples-to-apples setup.
func Table7(short bool) *Table {
	t := topo.ZeroAlpha(topo.DGX1())
	const chunk = 25e3
	type inst struct {
		coll          string
		chunks, steps int
	}
	insts := []inst{
		{"ALLGATHER", 1, 2},
		{"ALLGATHER", 2, 3},
		{"ALLTOALL", 1, 3},
	}
	if !short {
		insts = append(insts[:2],
			inst{"ALLGATHER", 3, 4},
			inst{"ALLTOALL", 1, 3},
			inst{"ALLTOALL", 2, 6},
		)
	}
	tab := &Table{
		ID:     "table7",
		Title:  "SCCL instance mode vs TE-CCL solver time (DGX1, alpha=0, 25 KB chunks)",
		Header: []string{"collective", "chunks", "steps", "SCCL_ST", "TECCL_ST", "CT_diff"},
		Notes:  "CT_diff = 100*(SCCL_CT - TECCL_CT)/SCCL_CT under barrier execution for SCCL",
	}
	gpus := gpuInts(t)
	session := newSession(t)
	for _, in := range insts {
		var d *collective.Demand
		if in.coll == "ALLGATHER" {
			d = collective.AllGather(t.NumNodes(), gpus, in.chunks, chunk)
		} else {
			d = collective.AllToAll(t.NumNodes(), gpus, in.chunks, chunk)
		}
		sres := baseline.SolveSCCL(t, d, baseline.SCCLOptions{
			Steps: in.steps, Rounds: maxInt(1, in.chunks), TimeLimit: solveLimit,
		})
		scclCT := math.Inf(1)
		scclST := sres.SolveTime
		if sres.Feasible {
			scclCT = sres.TransferTime
		}
		var tecCT float64
		var tecST time.Duration
		gap := 0.0
		if in.chunks > 1 {
			gap = esGap
		}
		if in.coll == "ALLGATHER" {
			tecCT, tecST = run(func() (*core.Result, error) {
				return planVia(session, d, core.Options{GapLimit: gap, TimeLimit: solveLimit}, core.SolverMILP)
			})
		} else {
			tecCT, tecST = run(func() (*core.Result, error) {
				return planVia(session, d, core.Options{}, core.SolverLP)
			})
		}
		diff := math.Inf(1)
		if !math.IsInf(scclCT, 1) && !math.IsInf(tecCT, 1) && scclCT > 0 {
			diff = 100 * (scclCT - tecCT) / scclCT
		}
		tab.Rows = append(tab.Rows, []string{
			in.coll, fmt.Sprint(in.chunks), fmt.Sprint(in.steps),
			scclST.Round(time.Millisecond).String(),
			tecST.Round(time.Millisecond).String(), pct(diff),
		})
	}
	return tab
}

// Table8 reproduces Table 8: the full metric table on the NDv2-style
// 2-chassis topology — epoch duration, collective finish time, solver
// time, and algorithmic bandwidth for TE-CCL variants against TACCL.
func Table8(short bool) *Table {
	t := topo.NDv2Mini(2)
	sizes := []float64{16e6, 1e6, 64e3}
	if short {
		sizes = []float64{1e6}
	}
	tab := &Table{
		ID:    "table8",
		Title: "NDv2-style 2-chassis metric table (TE-CCL variants vs TACCL)",
		Header: []string{"buffer", "variant", "ED(us)", "CT(us)", "ST",
			"AB(GB/s)", "TACCL_CT(us)", "TACCL_AB", "improve"},
		Notes: "variants: AtoA opt-ED (LP, fastest link), AtoA max-ED (LP, slowest link), AG A* (round-partitioned, early stop)",
	}
	gpus := gpuInts(t)
	session := newSession(t)
	for _, size := range sizes {
		chunk := size / float64(len(gpus))

		atoa := collective.AllToAll(t.NumNodes(), gpus, 1, chunk)
		tacCT, _ := tacclRun(t, atoa, 1, 60)
		// ALLTOALL at optimal (fastest-link) epoch duration.
		addT8Row(tab, session, atoa, size, "AtoA opt-ED", core.Options{
			EpochMode: core.FastestLink, MinimizeMakespan: true, TimeLimit: solveLimit}, tacCT, chunk, true)
		// ALLTOALL at max (slowest-link) epoch duration.
		addT8Row(tab, session, atoa, size, "AtoA max-ED", core.Options{
			EpochMode: core.SlowestLink, MinimizeMakespan: true, TimeLimit: solveLimit}, tacCT, chunk, true)

		ag := collective.AllGather(t.NumNodes(), gpus, 1, chunk)
		tacCT, _ = tacclRun(t, ag, 1, 60)
		addT8Row(tab, session, ag, size, "AG A*", core.Options{
			EpochMode: core.SlowestLink, GapLimit: 0.15, TimeLimit: solveLimit}, tacCT, chunk, false)
	}
	return tab
}

func addT8Row(tab *Table, session *core.Planner, d *collective.Demand, size float64,
	variant string, opt core.Options, tacCT, chunk float64, isLP bool) {
	var ct float64
	var st time.Duration
	var tau float64
	solve := func() (*core.Result, error) {
		solver := core.SolverAStar
		if isLP {
			solver = core.SolverLP
		} else if opt.TimeLimit == solveLimit {
			opt.TimeLimit = astarLimit // whole-round-sequence budget
		}
		r, err := planVia(session, d, opt, solver)
		if err == nil {
			tau = r.Tau
		}
		return r, err
	}
	ct, st = run(solve)
	improve := math.Inf(1)
	if !math.IsInf(ct, 1) && !math.IsInf(tacCT, 1) {
		improve = 100 * (algoBW(d, ct) - algoBW(d, tacCT)) / algoBW(d, tacCT)
	}
	tab.Rows = append(tab.Rows, []string{
		sizeLabel(size), variant, fmt.Sprintf("%.3f", tau*1e6), us(ct),
		st.Round(time.Millisecond).String(), gbps(algoBW(d, ct)),
		us(tacCT), gbps(algoBW(d, tacCT)), pct(improve),
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
