package experiments

import (
	"fmt"
	"math"
	"time"

	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/sim"
	"teccl/internal/topo"
)

// esGap is the early-stop optimality gap the paper uses with Gurobi for
// ALLGATHER solves (§6.1: "an aggressive optimality gap threshold of 30%").
const esGap = 0.3

// solveLimit caps individual MILP solves in the experiment harness; the
// paper's equivalent is its 2-hour Gurobi timeout.
const solveLimit = 90 * time.Second

// astarLimit is the budget for A* solves. Since the context plumbing,
// TimeLimit covers the WHOLE round sequence (it used to be one budget
// per round's MILP), so A* sites get round-count headroom — otherwise a
// slow host could burn the single budget mid-sequence and lose every
// completed round to an error where the old semantics still produced a
// schedule.
const astarLimit = 6 * solveLimit

// Fig2 reproduces Figure 2: the relative error in the algorithmic-
// bandwidth estimate of a schedule that does not model α, versus one that
// does, as a function of transfer size. Small transfers are α-dominated,
// so the α-blind estimate overshoots badly.
func Fig2(short bool) *Table {
	t := topo.Internal2(2) // 2 chassis of the Internal style (§2's setup)
	t0 := topo.ZeroAlpha(t)
	sizes := []float64{10e3, 40e3, 160e3, 640e3, 2.56e6, 10.24e6}
	if short {
		sizes = []float64{10e3, 640e3, 10.24e6}
	}
	tab := &Table{
		ID:     "fig2",
		Title:  "relative error of the α-blind algorithmic-bandwidth estimate",
		Header: []string{"transfer", "est_bw(GB/s)", "real_bw(GB/s)", "rel_error"},
		Notes:  "Internal2(2) stand-in; error shrinks as transfers grow, as in Figure 2",
	}
	session := newSession(t0)
	for _, size := range sizes {
		gpus := gpuInts(t)
		chunk := size / float64(len(gpus))
		d := collective.AllGather(t.NumNodes(), gpus, 1, chunk)
		// Solve without modeling α (on the α-zero topology)...
		res, err := planVia(session, d, core.Options{GapLimit: esGap, TimeLimit: solveLimit}, core.SolverMILP)
		if err != nil {
			tab.Rows = append(tab.Rows, []string{sizeLabel(size), "X", "X", "X"})
			continue
		}
		// ...estimate its bandwidth α-blind, then execute with real α.
		est, err1 := sim.Run(res.Schedule)
		real, err2 := sim.RunOn(res.Schedule, t)
		if err1 != nil || err2 != nil {
			tab.Rows = append(tab.Rows, []string{sizeLabel(size), "X", "X", "X"})
			continue
		}
		relErr := (est.AlgoBandwidth - real.AlgoBandwidth) / real.AlgoBandwidth
		tab.Rows = append(tab.Rows, []string{
			sizeLabel(size),
			gbps(est.AlgoBandwidth), gbps(real.AlgoBandwidth),
			fmt.Sprintf("%.2fx", relErr),
		})
	}
	return tab
}

// Table3 reproduces Table 3: SCCL least-steps versus TE-CCL transfer time
// on a DGX1 with 25 KB chunks. TE-CCL pipelines α across chunks, so it
// wins once there is more than one chunk; SCCL's barrier wins the
// single-chunk case.
func Table3(short bool) *Table {
	t := topo.DGX1()
	const chunk = 25e3
	maxChunks := 3
	if short {
		maxChunks = 2
	}
	tab := &Table{
		ID:     "table3",
		Title:  "SCCL least-steps vs TE-CCL transfer time (DGX1, 25 KB chunks)",
		Header: []string{"collective", "chunks", "SCCL(us)", "TE-CCL(us)"},
		Notes:  "paper: SCCL 3.4/5.1/8 us vs TE-CCL 4/5/6.1 us for AG 1-3 chunks",
	}
	gpus := gpuInts(t)
	session := newSession(t)
	for ch := 1; ch <= maxChunks; ch++ {
		d := collective.AllGather(t.NumNodes(), gpus, ch, chunk)
		sccl := scclTime(t, d)
		opt := core.Options{TimeLimit: solveLimit}
		if ch > 1 {
			// Larger chunk counts need the early stop and coarser epochs
			// to stay within the laptop budget (DESIGN.md #3).
			opt.GapLimit = esGap
			opt.EpochMode = core.SlowestLink
			opt.TimeLimit = 45 * time.Second
		}
		tec, _ := run(func() (*core.Result, error) {
			return planVia(session, d, opt, core.SolverMILP)
		})
		tab.Rows = append(tab.Rows, []string{"ALLGATHER", fmt.Sprint(ch), us(sccl), us(tec)})
	}
	// ALLTOALL, 1 chunk per destination.
	d := collective.AllToAll(t.NumNodes(), gpus, 1, chunk)
	sccl := scclTime(t, d)
	tec, _ := run(func() (*core.Result, error) {
		return planVia(session, d, core.Options{}, core.SolverLP)
	})
	tab.Rows = append(tab.Rows, []string{"ALLTOALL", "1", us(sccl), us(tec)})
	return tab
}

func scclTime(t *topo.Topology, d *collective.Demand) float64 {
	r := scclSolve(t, d)
	if r == nil || !r.Feasible {
		return math.Inf(1)
	}
	return r.TransferTime
}

// agSolve solves an ALLGATHER cell with the strongest affordable solver:
// the exact MILP (with the paper's 30% early stop) when the instance fits
// the substrate, otherwise the A* rounds of §4.2. The epoch mode follows
// the α regime: fine fastest-link epochs normally, slowest-link epochs
// when α dwarfs the fine epoch (where quantization is harmless and the
// fine-grained model explodes). Solves run through the experiment's
// session so repeated cells share epoch estimates and warm bases.
func agSolve(session *core.Planner, t *topo.Topology, d *collective.Demand) (float64, time.Duration) {
	mode := core.FastestLink
	if tauF := core.DeriveTau(t, d.ChunkBytes, core.FastestLink, 0); t.MaxAlpha() > 4*tauF {
		mode = core.SlowestLink
	}
	if len(t.GPUs()) <= 6 {
		return run(func() (*core.Result, error) {
			return planVia(session, d, core.Options{
				EpochMode: mode, GapLimit: esGap, TimeLimit: solveLimit,
				MinimizeMakespan: true, Workers: Workers()}, core.SolverMILP)
		})
	}
	return run(func() (*core.Result, error) {
		return planVia(session, d, core.Options{
			EpochMode: mode, GapLimit: 0.15, TimeLimit: astarLimit,
			Workers: Workers()}, core.SolverAStar)
	})
}

// Fig4and5 reproduces Figures 4 and 5: algorithmic bandwidth and solver
// time of TE-CCL versus the TACCL-like baseline across topologies,
// demands, and output-buffer sizes.
func Fig4and5(short bool) *Table {
	type inst struct {
		name string
		topo *topo.Topology
	}
	insts := []inst{
		{"ndv2mini-2c", topo.NDv2Mini(2)},
		{"dgx2mini-2c", topo.DGX2Mini(2)},
		{"internal1-2c", topo.Internal1(2)},
		{"internal2-2c", topo.Internal2(2)},
	}
	sizes := []float64{16e6, 4e6, 1e6, 256e3, 64e3}
	if short {
		insts = insts[2:]
		sizes = []float64{1e6, 64e3}
	}
	tab := &Table{
		ID:    "fig4and5",
		Title: "TE-CCL vs TACCL: algorithmic bandwidth (Fig 4) and solver time (Fig 5)",
		Header: []string{"topology", "demand", "buffer",
			"TECCL_CT(us)", "TACCL_CT(us)", "bw_gain", "TECCL_ST", "TACCL_ST"},
		Notes: "bw_gain = 100*(TECCL_bw - TACCL_bw)/TACCL_bw; X marks infeasible runs",
	}
	for _, in := range insts {
		gpus := gpuInts(in.topo)
		session := newSession(in.topo)
		// The ALLTOALL column is one size sweep per topology: solve it as
		// a batch (grouped by epoch mode, which follows the alpha regime
		// per size) so structurally identical points replay and the rest
		// chain bases instead of rebuilding the model per point.
		atoa := make([]*collective.Demand, len(sizes))
		modes := make([]core.EpochMode, len(sizes))
		for i, size := range sizes {
			chunk := size / float64(len(gpus))
			atoa[i] = collective.AllToAll(in.topo.NumNodes(), gpus, 1, chunk)
			modes[i] = core.FastestLink
			if tauF := core.DeriveTau(in.topo, atoa[i].ChunkBytes, core.FastestLink, 0); in.topo.MaxAlpha() > 4*tauF {
				modes[i] = core.SlowestLink
			}
		}
		atoaCT := make([]float64, len(sizes))
		atoaST := make([]time.Duration, len(sizes))
		for _, mode := range []core.EpochMode{core.FastestLink, core.SlowestLink} {
			var idxs []int
			var ds []*collective.Demand
			for i := range sizes {
				if modes[i] == mode {
					idxs = append(idxs, i)
					ds = append(ds, atoa[i])
				}
			}
			if len(ds) == 0 {
				continue
			}
			rs, errs := core.BatchSolveLPContext(Context(), in.topo, ds, core.Options{
				EpochMode: mode, TimeLimit: solveLimit, MinimizeMakespan: true,
				Workers: Workers()}, core.BatchOptions{Workers: Workers()})
			for k, i := range idxs {
				atoaCT[i], atoaST[i] = account(rs[k], errs[k])
			}
		}
		for i, size := range sizes {
			// ALLGATHER via the strongest affordable copy-capable solver.
			ag := collective.AllGather(in.topo.NumNodes(), gpus, 1, size/float64(len(gpus)))
			tecCT, tecST := agSolve(session, in.topo, ag)
			tacCT, tacST := tacclRun(in.topo, ag, 1, 60)
			tab.Rows = append(tab.Rows, fig4Row(in.name, "AG", size, ag, tecCT, tacCT, tecST, tacST))

			// ALLTOALL via the batched LP sweep above.
			tacCT, tacST = tacclRun(in.topo, atoa[i], 1, 60)
			tab.Rows = append(tab.Rows, fig4Row(in.name, "AtoA", size, atoa[i], atoaCT[i], tacCT, atoaST[i], tacST))
		}
	}
	return tab
}

func fig4Row(name, dem string, size float64, d *collective.Demand,
	tecCT, tacCT float64, tecST, tacST time.Duration) []string {
	gain := math.Inf(1)
	if !math.IsInf(tacCT, 1) && !math.IsInf(tecCT, 1) {
		gain = 100 * (algoBW(d, tecCT) - algoBW(d, tacCT)) / algoBW(d, tacCT)
	}
	return []string{
		name, dem, sizeLabel(size),
		us(tecCT), us(tacCT), pct(gain),
		tecST.Round(time.Millisecond).String(), tacST.Round(time.Millisecond).String(),
	}
}

// Fig6 reproduces Figure 6: Internal-2 ALLTOALL at growing chassis
// counts — TE-CCL's LP versus TACCL on both solver time and quality.
func Fig6(short bool) *Table {
	chassis := []int{2, 3, 4}
	if short {
		chassis = []int{2}
	}
	tab := &Table{
		ID:     "fig6",
		Title:  "Internal-2 ALLTOALL chassis sweep: TE-CCL LP vs TACCL",
		Header: []string{"chassis", "TECCL_CT(us)", "TACCL_CT(us)", "bw_gain", "TECCL_ST", "TACCL_ST"},
		Notes:  "paper sweeps 2-32 chassis; scale reduced per DESIGN.md substitution #3",
	}
	const size = 4e6
	for _, c := range chassis {
		t := topo.Internal2(c)
		gpus := gpuInts(t)
		chunk := size / float64(len(gpus))
		d := collective.AllToAll(t.NumNodes(), gpus, 1, chunk)
		tecCT, tecST := run(func() (*core.Result, error) {
			return core.SolveLPContext(Context(), t, d, core.Options{
				EpochMode: core.FastestLink, MinimizeMakespan: true})
		})
		tacCT, tacST := tacclRun(t, d, 1, 60)
		gain := math.Inf(1)
		if !math.IsInf(tacCT, 1) && !math.IsInf(tecCT, 1) {
			gain = 100 * (algoBW(d, tecCT) - algoBW(d, tacCT)) / algoBW(d, tacCT)
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprint(c), us(tecCT), us(tacCT), pct(gain),
			tecST.Round(time.Millisecond).String(), tacST.Round(time.Millisecond).String(),
		})
	}
	return tab
}

// Table4 reproduces Table 4: solver times at the largest scales the
// substrate reaches — ALLGATHER via A*, ALLTOALL via the LP, with the
// epoch multiplier (EM) trading granularity for tractability.
func Table4(short bool) *Table {
	tab := &Table{
		ID:     "table4",
		Title:  "large-topology solver times (AG via A*, AtoA via LP)",
		Header: []string{"topology", "collective", "GPUs", "EM", "solver_time", "CT(us)"},
		Notes:  "paper reaches 64-256 GPUs with Gurobi on 80 cores; scale per DESIGN.md #3",
	}
	type inst struct {
		t    *topo.Topology
		coll string
		em   float64
	}
	insts := []inst{
		{topo.Internal1(2), "AG (A*)", 1},
		{topo.Internal2(4), "AG (A*)", 1},
		{topo.Internal2(6), "AG (A*)", 2},
		{topo.Internal1(2), "AtoA", 1},
		{topo.Internal1(3), "AtoA", 2},
		{topo.Internal2(4), "AtoA", 1},
		{topo.Internal2(6), "AtoA", 2},
	}
	if short {
		insts = []inst{
			{topo.Internal2(4), "AG (A*)", 1},
			{topo.Internal2(4), "AtoA", 1},
		}
	}
	const size = 16e6
	for _, in := range insts {
		gpus := gpuInts(in.t)
		chunk := size / float64(len(gpus))
		opt := core.Options{EpochMode: core.SlowestLink, EpochMultiplier: in.em,
			GapLimit: esGap, TimeLimit: solveLimit, Workers: Workers()}
		var ct float64
		var st time.Duration
		if in.coll == "AtoA" {
			d := collective.AllToAll(in.t.NumNodes(), gpus, 1, chunk)
			ct, st = run(func() (*core.Result, error) { return core.SolveLPContext(Context(), in.t, d, opt) })
		} else {
			d := collective.AllGather(in.t.NumNodes(), gpus, 1, chunk)
			aopt := opt
			aopt.TimeLimit = astarLimit
			ct, st = run(func() (*core.Result, error) { return core.SolveAStarContext(Context(), in.t, d, aopt) })
		}
		tab.Rows = append(tab.Rows, []string{
			in.t.Name, in.coll, fmt.Sprint(len(gpus)), fmt.Sprintf("%.0f", math.Max(in.em, 1)),
			st.Round(time.Millisecond).String(), us(ct),
		})
	}
	return tab
}

// Fig7 reproduces Figure 7: the benefit of in-network copy. The copy
// solver is the general MILP; the no-copy comparator is the LP form on
// the same ALLGATHER demand (which must then ship one copy per
// destination). Copy wins on large transfers where capacity is scarce.
func Fig7(short bool) *Table {
	type inst struct {
		name string
		topo *topo.Topology
	}
	insts := []inst{
		{"dgx1", topo.DGX1()},
		{"internal1-2c(a=0)", topo.Internal1NoAlpha(2)},
		{"internal1-2c", topo.Internal1(2)},
		{"internal2-2c", topo.Internal2(2)},
	}
	sizes := []float64{64e3, 1e6, 16e6}
	if short {
		insts = insts[3:]
		sizes = []float64{64e3, 16e6}
	}
	tab := &Table{
		ID:     "fig7",
		Title:  "copy benefit: MILP (copy) vs LP (no copy) ALLGATHER finish time",
		Header: []string{"topology", "transfer", "copy_CT(us)", "nocopy_CT(us)", "saving"},
		Notes:  "paper: copy cuts large transfers up to 50%; no help on small ones",
	}
	for _, in := range insts {
		gpus := gpuInts(in.topo)
		session := newSession(in.topo)
		for _, size := range sizes {
			chunk := size / float64(len(gpus))
			d := collective.AllGather(in.topo.NumNodes(), gpus, 1, chunk)
			opt := core.Options{EpochMode: core.SlowestLink, GapLimit: esGap, TimeLimit: solveLimit}
			copySolver := core.SolverMILP
			copyOpt := opt
			if len(gpus) > 6 && len(in.topo.Switches()) > 0 {
				// Switched multi-chassis: the MILP does not fit; A* keeps
				// copy support (DESIGN.md substitution #3).
				copySolver = core.SolverAStar
				copyOpt.TimeLimit = astarLimit
			}
			withCopy, _ := run(func() (*core.Result, error) { return planVia(session, d, copyOpt, copySolver) })
			noCopy, _ := run(func() (*core.Result, error) { return planVia(session, d, opt, core.SolverLP) })
			saving := math.Inf(1)
			if !math.IsInf(noCopy, 1) && !math.IsInf(withCopy, 1) {
				saving = 100 * (noCopy - withCopy) / noCopy
			}
			tab.Rows = append(tab.Rows, []string{
				in.name, sizeLabel(size), us(withCopy), us(noCopy), pct(saving),
			})
		}
	}
	return tab
}

// Fig8 reproduces Figure 8: small (fastest-link) versus large
// (slowest-link) epoch durations — large epochs solve faster, small
// epochs schedule better on heterogeneous links.
func Fig8(short bool) *Table {
	type inst struct {
		name string
		topo *topo.Topology
	}
	insts := []inst{
		{"internal1-2c", topo.Internal1(2)},
		{"ndv2mini-2c", topo.NDv2Mini(2)},
		{"dgx2mini-2c", topo.DGX2Mini(2)},
	}
	if short {
		insts = insts[:1]
	}
	tab := &Table{
		ID:     "fig8",
		Title:  "small vs large epochs: solver time and transfer time",
		Header: []string{"topology", "demand", "small_CT(us)", "large_CT(us)", "CT_diff", "small_ST", "large_ST"},
		Notes:  "large epochs are faster to solve; small epochs win on heterogeneous links (NDv2/DGX2)",
	}
	const size = 1e6
	for _, in := range insts {
		gpus := gpuInts(in.topo)
		session := newSession(in.topo)
		chunk := size / float64(len(gpus))
		ag := collective.AllGather(in.topo.NumNodes(), gpus, 1, chunk)
		smallCT, smallST := run(func() (*core.Result, error) {
			return planVia(session, ag, core.Options{
				EpochMode: core.FastestLink, GapLimit: 0.15, TimeLimit: astarLimit}, core.SolverAStar)
		})
		largeCT, largeST := run(func() (*core.Result, error) {
			return planVia(session, ag, core.Options{
				EpochMode: core.SlowestLink, GapLimit: 0.15, TimeLimit: astarLimit}, core.SolverAStar)
		})
		tab.Rows = append(tab.Rows, fig8Row(in.name, "AG", smallCT, largeCT, smallST, largeST))

		atoa := collective.AllToAll(in.topo.NumNodes(), gpus, 1, chunk)
		smallCT, smallST = run(func() (*core.Result, error) {
			return planVia(session, atoa, core.Options{EpochMode: core.FastestLink}, core.SolverLP)
		})
		largeCT, largeST = run(func() (*core.Result, error) {
			return planVia(session, atoa, core.Options{EpochMode: core.SlowestLink}, core.SolverLP)
		})
		tab.Rows = append(tab.Rows, fig8Row(in.name, "AtoA", smallCT, largeCT, smallST, largeST))
	}
	return tab
}

func fig8Row(name, dem string, smallCT, largeCT float64, smallST, largeST time.Duration) []string {
	diff := math.Inf(1)
	if !math.IsInf(smallCT, 1) && !math.IsInf(largeCT, 1) && largeCT > 0 {
		diff = 100 * (smallCT - largeCT) / largeCT
	}
	return []string{name, dem, us(smallCT), us(largeCT), pct(diff),
		smallST.Round(time.Millisecond).String(), largeST.Round(time.Millisecond).String()}
}

// Fig9 reproduces Figure 9: store-and-forward buffers affect solver time,
// not solution quality, on ALLGATHER-style demands.
func Fig9(short bool) *Table {
	type inst struct {
		name string
		topo *topo.Topology
	}
	insts := []inst{
		{"internal2-2c(a=0)", topo.ZeroAlpha(topo.Internal2(2))},
		{"internal2-2c", topo.Internal2(2)},
		{"dgx1", topo.DGX1()},
	}
	if short {
		insts = insts[1:2]
	}
	tab := &Table{
		ID:     "fig9",
		Title:  "buffers on vs off: solver time and transfer time",
		Header: []string{"topology", "buf_CT(us)", "nobuf_CT(us)", "CT_diff", "buf_ST", "nobuf_ST"},
		Notes:  "quality should match (copy compensates); only solver time moves",
	}
	const size = 1e6
	for _, in := range insts {
		gpus := gpuInts(in.topo)
		session := newSession(in.topo)
		chunk := size / float64(len(gpus))
		d := collective.AllGather(in.topo.NumNodes(), gpus, 1, chunk)
		opt := core.Options{EpochMode: core.SlowestLink, GapLimit: esGap, TimeLimit: solveLimit}
		bufCT, bufST := run(func() (*core.Result, error) { return planVia(session, d, opt, core.SolverMILP) })
		noOpt := opt
		noOpt.NoBuffers = true
		noCT, noST := run(func() (*core.Result, error) { return planVia(session, d, noOpt, core.SolverMILP) })
		diff := math.Inf(1)
		if !math.IsInf(bufCT, 1) && !math.IsInf(noCT, 1) && noCT > 0 {
			diff = 100 * (bufCT - noCT) / noCT
		}
		tab.Rows = append(tab.Rows, []string{
			in.name, us(bufCT), us(noCT), pct(diff),
			bufST.Round(time.Millisecond).String(), noST.Round(time.Millisecond).String(),
		})
	}
	return tab
}

// AStarVsOpt reproduces the §6.3 microbenchmark: A* versus the optimal
// MILP — solve time drops, quality stays within a modest factor.
func AStarVsOpt(short bool) *Table {
	type inst struct {
		alpha  bool
		chunks int
	}
	insts := []inst{{false, 1}, {true, 1}, {false, 2}, {true, 2}}
	if short {
		insts = insts[:2]
	}
	tab := &Table{
		ID:     "astar",
		Title:  "A* vs OPT on Internal-2 ALLGATHER",
		Header: []string{"alpha", "chunks", "OPT_CT(us)", "A*_CT(us)", "quality_gap", "OPT_ST", "A*_ST"},
		Notes:  "paper: OPT 10-20% better, A* 2.5-4x faster (16-chassis); scale reduced",
	}
	for _, in := range insts {
		var t *topo.Topology
		name := "a=0"
		if in.alpha {
			t = topo.Internal2(2)
			name = "a>0"
		} else {
			t = topo.ZeroAlpha(topo.Internal2(2))
		}
		gpus := gpuInts(t)
		session := newSession(t)
		d := collective.AllGather(t.NumNodes(), gpus, in.chunks, 1e6)
		opt := core.Options{EpochMode: core.SlowestLink, TimeLimit: solveLimit}
		aopt := opt
		aopt.TimeLimit = astarLimit
		optCT, optST := run(func() (*core.Result, error) { return planVia(session, d, opt, core.SolverMILP) })
		astCT, astST := run(func() (*core.Result, error) { return planVia(session, d, aopt, core.SolverAStar) })
		gap := math.Inf(1)
		if !math.IsInf(optCT, 1) && !math.IsInf(astCT, 1) && optCT > 0 {
			gap = 100 * (astCT - optCT) / optCT
		}
		tab.Rows = append(tab.Rows, []string{
			name, fmt.Sprint(in.chunks), us(optCT), us(astCT), pct(gap),
			optST.Round(time.Millisecond).String(), astST.Round(time.Millisecond).String(),
		})
	}
	return tab
}
