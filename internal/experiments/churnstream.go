package experiments

// churnstream.go is the long-lived churn-stream scenario family: where
// churn.go injects ONE fault into a warm session, churnstream drives an
// adversarial 100-delta sequence through a single session and measures
// how the replanning layer holds up over time — the fraction of deltas
// absorbed incrementally, fallbacks by kind (structural / budget /
// sour), proactive re-base cadence, pivots-per-replan drift between the
// stream's halves, and the bounded-regret guarantee: the most expensive
// single replan relative to the measured cold-solve cost of the same
// churned problem (the budget abort caps it near 1 + RegretFraction,
// and aggressive re-basing keeps even that from being paid).
//
// The delta script rotates six adversarial kinds, per the degradation
// ladder: κ-preserving capacity degradation (×0.8) and restoration
// (×1.25) on the fastest link, demand pair drops and their AddDemand
// re-adds (exercising the incremental column-append path), permanent
// link failures, and a structural straggler whose α inflation changes δ
// (forced cold fallback), later recovered. CI pins the NDv2 rows per
// commit; the full run adds DGX1 and DGX2 minis.

import (
	"fmt"
	"math"
	"time"

	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/topo"
)

// streamScenario is one churn-stream platform configuration.
type streamScenario struct {
	name    string
	build   func() *topo.Topology
	opts    core.Options
	slowest bool // EpochMode: τ derived from the slowest vs fastest link
}

const streamDeltas = 100

func streamScenarios(short bool) []streamScenario {
	slowest := core.Options{EpochMode: core.SlowestLink, TimeLimit: solveLimit}
	fastest := core.Options{TimeLimit: solveLimit}
	scenarios := []streamScenario{
		{name: "NDv2", slowest: true, opts: slowest,
			build: func() *topo.Topology { return topo.NDv2Mini(2) }},
	}
	if !short {
		scenarios = append(scenarios,
			streamScenario{name: "DGX1", opts: fastest, build: topo.DGX1},
			streamScenario{name: "DGX2", slowest: true, opts: slowest,
				build: func() *topo.Topology { return topo.DGX2Mini(2) }},
		)
	}
	return scenarios
}

// droppedPair remembers a dropped demand pair's chunks so a later
// AddDemand delta can resurrect exactly that demand.
type droppedPair struct {
	src, dst int
	chunks   []int
}

// streamTau mirrors the session's epoch derivation closely enough to
// aim the structural straggler: the α inflation targets 3τ, which
// changes the link's pipeline depth δ no matter how small α started.
func streamTau(t *topo.Topology, chunkBytes float64, slowest bool) float64 {
	best := 0.0
	for l := 0; l < t.NumLinks(); l++ {
		if t.LinkDown(topo.LinkID(l)) {
			continue
		}
		c := t.Link(topo.LinkID(l)).Capacity
		if best == 0 || (slowest && c < best) || (!slowest && c > best) {
			best = c
		}
	}
	if best == 0 {
		return 1
	}
	return chunkBytes / best
}

// ChurnStream regenerates the churn-stream resilience scoreboard (see
// the file comment). One row per platform; metrics carry the headline
// acceptance numbers: fallbacks strictly below the always-fallback
// baseline (= deltas), and max_regret ≲ 1.2.
func ChurnStream(short bool) *Table {
	tab := &Table{
		ID:    "churnstream",
		Title: "churn-stream resilience: 100 adversarial deltas through one session",
		Header: []string{"topo", "deltas", "incremental", "fallbacks",
			"fb_structural", "fb_budget", "fb_sour", "rebases",
			"pivots_per_replan", "pivot_drift", "max_regret"},
		Notes: "each row: one warm ALLTOALL session absorbs a scripted adversarial delta stream " +
			"(degrade x0.8 / restore x1.25 / drop-pair / re-add via AddDemand / permanent link-down / structural straggler); " +
			"incremental = deltas absorbed by warm reoptimization; pivot_drift compares mean incremental pivots " +
			"between the stream's halves; max_regret is the most expensive single replan relative to a " +
			"from-scratch cold plan of the same churned problem (proactive re-basing keeps it near 1x; " +
			"the budget abort caps the worst case near 1 + RegretFraction)",
		Metrics: map[string]float64{},
	}

	const chunkBytes = 25e3
	for _, sc := range streamScenarios(short) {
		t := sc.build()
		d := collective.AllToAll(t.NumNodes(), gpuInts(t), 1, chunkBytes)
		// At mini scale the pivot-budget floor rivals a full cold solve,
		// so a budget abort is the most expensive replan there is: ~1
		// wasted cold solve on top of the real one. An aggressive re-base
		// threshold makes the session refactorize as soon as incremental
		// cost decays toward the budget, so decayed bases are replaced at
		// ~1x cold cost instead of blowing through the budget at ~2x.
		pl := core.NewPlanner(t, core.PlannerOptions{
			Defaults: sc.opts,
			Replan:   core.ReplanOptions{RebaseThreshold: 0.5},
		})
		if _, err := pl.Plan(Context(), core.Request{Demand: d, Solver: core.SolverLP}); err != nil {
			tab.Rows = append(tab.Rows, []string{sc.name, "base-failed", "X", "X", "X", "X", "X", "X", "X", "X", "X"})
			continue
		}

		world := t.Clone()
		demand := d.Clone()
		degradeLink := fastestLink(world)
		stragglerLink := topo.LinkID(1)
		tau := streamTau(world, chunkBytes, sc.slowest)
		stragglerUp := true
		gpus := gpuInts(world)
		var pending []droppedPair
		nextPair := 0

		applied, failed := 0, 0
		maxRegret := 0.0
		midPivots, midIncrementals := 0, 0
		for i := 0; i < streamDeltas; i++ {
			var delta core.Delta
			switch i % 6 {
			case 0: // κ-preserving degradation
				delta.Scale = []topo.LinkScale{{Link: degradeLink, Capacity: 0.8}}
			case 1: // exact restoration
				delta.Scale = []topo.LinkScale{{Link: degradeLink, Capacity: 1.25}}
			case 2: // drop a rotating demand pair
				src := gpus[nextPair%len(gpus)]
				dst := gpus[(nextPair+1)%len(gpus)]
				nextPair++
				chunks := demand.DestWantsFromSource(src, dst)
				if len(chunks) == 0 {
					delta.Scale = []topo.LinkScale{{Link: degradeLink, Capacity: 1}}
					break
				}
				delta.DropPairs = []core.DemandPair{{Src: src, Dst: dst}}
				pending = append(pending, droppedPair{src: src, dst: dst, chunks: chunks})
			case 3: // resurrect the oldest dropped pair via AddDemand
				if len(pending) == 0 {
					delta.Scale = []topo.LinkScale{{Link: degradeLink, Capacity: 1}}
					break
				}
				p := pending[0]
				pending = pending[1:]
				add := collective.New(demand.NumNodes(), demand.NumChunks(), demand.ChunkBytes)
				for _, c := range p.chunks {
					add.Set(p.src, c, p.dst)
				}
				delta.AddDemand = add
			case 4: // permanent link failure (keep the world connected)
				if l := removableLink(world); l >= 0 {
					delta.LinksDown = []topo.LinkID{l}
				} else {
					delta.Scale = []topo.LinkScale{{Link: degradeLink, Capacity: 0.8}}
				}
			case 5: // structural straggler: α jumps past 3τ, then recovers
				alpha := world.Link(stragglerLink).Alpha
				if alpha <= 0 {
					delta.Scale = []topo.LinkScale{{Link: degradeLink, Capacity: 1.25}}
					break
				}
				factor := 3 * tau / alpha
				if !stragglerUp {
					factor = 1 / factor
				}
				if factor == 1 || math.IsInf(factor, 0) {
					factor = 3
				}
				stragglerUp = !stragglerUp
				delta.Scale = []topo.LinkScale{{Link: stragglerLink, Alpha: factor}}
			}

			rStart := time.Now()
			rp, err := pl.Replan(Context(), delta)
			wall := time.Since(rStart).Seconds()
			if err != nil {
				failed++
				continue
			}
			applied++
			account(rp.Result, nil)

			// Mirror the churn for delta-script bookkeeping.
			world, err = world.ApplyDelta(topo.Delta{
				LinksDown: delta.LinksDown, Scale: delta.Scale,
			})
			if err != nil {
				failed++
				continue
			}
			for _, pr := range delta.DropPairs {
				demand.DropPair(pr.Src, pr.Dst)
			}
			if delta.AddDemand != nil {
				demand.Or(delta.AddDemand)
			}

			// Measure the regret denominator directly: a from-scratch cold
			// plan of the same churned problem through the same pipeline
			// (fresh session, horizon re-derivation included) — what the
			// operator would pay by discarding the session entirely.
			// Incremental replans land well below 1; fallbacks near
			// 1 + RegretFraction — the budget abort bounds the wasted
			// incremental attempt stacked on the unavoidable cold re-solve.
			cold := core.NewPlanner(world, core.PlannerOptions{Defaults: sc.opts})
			cStart := time.Now()
			if _, err := cold.Plan(Context(), core.Request{Demand: demand, Solver: core.SolverLP}); err == nil {
				if cs := time.Since(cStart).Seconds(); cs > 0 {
					if r := wall / cs; r > maxRegret {
						maxRegret = r
					}
				}
			}
			if i == streamDeltas/2 {
				st := pl.Stats()
				midPivots = st.ReplanIncrementalPivots
				midIncrementals = st.Replans - st.ReplanFallbacks - st.ReBases
			}
		}

		st := pl.Stats()
		incremental := st.Replans - st.ReplanFallbacks - st.ReBases
		pivotsPer := 0.0
		if incremental > 0 {
			pivotsPer = float64(st.ReplanIncrementalPivots) / float64(incremental)
		}
		drift := 1.0
		if h2 := incremental - midIncrementals; h2 > 0 && midIncrementals > 0 {
			firstHalf := float64(midPivots) / float64(midIncrementals)
			secondHalf := float64(st.ReplanIncrementalPivots-midPivots) / float64(h2)
			drift = (secondHalf + 1) / (firstHalf + 1)
		}

		tab.Rows = append(tab.Rows, []string{
			sc.name,
			fmt.Sprint(applied),
			fmt.Sprint(incremental),
			fmt.Sprint(st.ReplanFallbacks),
			fmt.Sprint(st.ReplanFallbackStructural),
			fmt.Sprint(st.ReplanFallbackBudget),
			fmt.Sprint(st.ReplanFallbackSour),
			fmt.Sprint(st.ReBases),
			fmt.Sprintf("%.0f", pivotsPer),
			fmt.Sprintf("%.2f", drift),
			fmt.Sprintf("%.2f", maxRegret),
		})

		key := func(s string) string { return sc.name + "_" + s }
		tab.Metrics[key("deltas")] = float64(applied)
		tab.Metrics[key("incremental")] = float64(incremental)
		tab.Metrics[key("fallbacks")] = float64(st.ReplanFallbacks)
		tab.Metrics[key("rebases")] = float64(st.ReBases)
		tab.Metrics[key("max_regret")] = maxRegret
		tab.Metrics[key("pivot_drift")] = drift
		if sc.name == "NDv2" {
			// Headline acceptance numbers: incrementals must exist (the
			// stream beats always-fallback) and regret stays bounded.
			tab.Metrics["ndv2_fallback_rate"] = float64(st.ReplanFallbacks) / math.Max(1, float64(applied))
			tab.Metrics["ndv2_max_regret"] = maxRegret
		}
		if failed > 0 {
			tab.Metrics[key("replan_errors")] = float64(failed)
		}
	}
	return tab
}
