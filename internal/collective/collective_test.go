package collective

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllGather(t *testing.T) {
	gpus := []int{0, 1, 2, 3}
	d := AllGather(4, gpus, 2, 1024)
	// Each of 4 sources: 2 chunks x 3 destinations = 24 triples.
	if got := d.Count(); got != 24 {
		t.Fatalf("count = %d, want 24", got)
	}
	if !d.Wants(0, 1, 3) {
		t.Fatal("gpu3 should want chunk 1 of gpu0")
	}
	if d.Wants(0, 0, 0) {
		t.Fatal("a node never demands its own chunk")
	}
	// Output buffer per GPU: 3 sources x 2 chunks x 1024 bytes.
	if got := d.OutputBufferBytes(2); got != 6*1024 {
		t.Fatalf("output buffer = %g, want 6144", got)
	}
}

func TestAllToAllDistinctChunks(t *testing.T) {
	gpus := []int{0, 1, 2}
	d := AllToAll(3, gpus, 2, 100)
	// Each chunk of a source is wanted by exactly one destination.
	for s := 0; s < 3; s++ {
		for c := 0; c < d.NumChunks(); c++ {
			count := 0
			for dst := 0; dst < 3; dst++ {
				if d.Wants(s, c, dst) {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("src %d chunk %d wanted by %d dests, want 1", s, c, count)
			}
		}
	}
	// 2 chunks to each of 2 other GPUs.
	if got := d.NumChunks(); got != 4 {
		t.Fatalf("chunks per source = %d, want 4", got)
	}
	if got := d.Count(); got != 12 {
		t.Fatalf("count = %d, want 12", got)
	}
}

func TestBroadcast(t *testing.T) {
	d := Broadcast(5, []int{0, 1, 2, 3}, 1, 3, 10)
	if got := d.Count(); got != 9 { // 3 chunks x 3 other GPUs
		t.Fatalf("count = %d, want 9", got)
	}
	if d.Wants(1, 0, 1) {
		t.Fatal("root wants nothing")
	}
	if !d.Wants(1, 2, 3) {
		t.Fatal("gpu3 should want root chunk 2")
	}
	// Node 4 not participating.
	if d.Wants(1, 0, 4) {
		t.Fatal("non-participant should not be a destination")
	}
}

func TestScatterGather(t *testing.T) {
	s := Scatter(4, []int{0, 1, 2, 3}, 0, 1, 10)
	if got := s.Count(); got != 3 {
		t.Fatalf("scatter count = %d, want 3", got)
	}
	// Each destination gets a unique chunk.
	seen := map[int]bool{}
	for dst := 1; dst < 4; dst++ {
		ch := s.DestWantsFromSource(0, dst)
		if len(ch) != 1 {
			t.Fatalf("dst %d wants %d chunks, want 1", dst, len(ch))
		}
		if seen[ch[0]] {
			t.Fatalf("chunk %d assigned twice", ch[0])
		}
		seen[ch[0]] = true
	}

	g := Gather(4, []int{0, 1, 2, 3}, 0, 2, 10)
	if got := g.Count(); got != 6 {
		t.Fatalf("gather count = %d, want 6", got)
	}
	if !g.Wants(3, 1, 0) {
		t.Fatal("root should want chunk 1 of gpu3")
	}
}

func TestReduceScatter(t *testing.T) {
	d := ReduceScatter(3, []int{0, 1, 2}, 10)
	// Shard i of every source goes to gpu i.
	if !d.Wants(0, 1, 1) || !d.Wants(2, 0, 0) {
		t.Fatal("shard routing wrong")
	}
	if d.Wants(1, 1, 1) {
		t.Fatal("self-demand present")
	}
	if got := d.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
}

func TestOrMultiTenant(t *testing.T) {
	a := AllGather(4, []int{0, 1}, 1, 10)
	b := AllGather(4, []int{2, 3}, 1, 10)
	a.Or(b)
	if !a.Wants(0, 0, 1) || !a.Wants(2, 0, 3) {
		t.Fatal("union missing demands")
	}
	if a.Count() != 4 {
		t.Fatalf("count = %d, want 4", a.Count())
	}
}

func TestOrShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := New(3, 1, 10)
	b := New(4, 1, 10)
	a.Or(b)
}

func TestClone(t *testing.T) {
	a := AllGather(3, []int{0, 1, 2}, 1, 10)
	b := a.Clone()
	b.Set(0, 0, 1) // no-op, already set
	if b.Count() != a.Count() {
		t.Fatal("clone diverged")
	}
	c := New(3, 1, 10)
	c.Or(a)
	c.Set(1, 0, 2)
	if a.Count() != 6 {
		t.Fatal("clone source mutated")
	}
}

func TestSourceHasChunk(t *testing.T) {
	d := Scatter(4, []int{0, 1, 2, 3}, 0, 1, 10)
	if !d.SourceHasChunk(0, 0) {
		t.Fatal("root chunk 0 should exist")
	}
	if d.SourceHasChunk(1, 0) {
		t.Fatal("gpu1 has no demanded chunks in scatter")
	}
}

func TestSetSelfIgnored(t *testing.T) {
	d := New(3, 1, 10)
	d.Set(1, 0, 1)
	if d.Count() != 0 {
		t.Fatal("self demand should be ignored")
	}
}

func TestBadDimensionsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1, 10) },
		func() { New(1, 0, 10) },
		func() { New(1, 1, 0) },
		func() { New(2, 1, 10).Wants(5, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTotalBytes(t *testing.T) {
	d := AllGather(3, []int{0, 1, 2}, 2, 100)
	if got := d.TotalBytes(); got != 1200 {
		t.Fatalf("total = %g, want 1200", got)
	}
	if got := d.MaxOutputBufferBytes(); got != 400 {
		t.Fatalf("max output buffer = %g, want 400", got)
	}
}

// TestQuickAllGatherSymmetry: in an ALLGATHER over any GPU subset, demand
// is symmetric — dst wants chunk c of src iff src wants chunk c of dst.
func TestQuickAllGatherSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		gpus := make([]int, n)
		for i := range gpus {
			gpus[i] = i
		}
		ch := 1 + rng.Intn(3)
		d := AllGather(n, gpus, ch, 64)
		for s := 0; s < n; s++ {
			for dst := 0; dst < n; dst++ {
				for c := 0; c < ch; c++ {
					if d.Wants(s, c, dst) != d.Wants(dst, c, s) {
						return false
					}
				}
			}
		}
		// Every node's output buffer equals (n-1)*ch chunks.
		for dst := 0; dst < n; dst++ {
			if d.OutputBufferBytes(dst) != float64((n-1)*ch)*64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAllToAllPartition: the chunk sets sent to distinct destinations
// partition each source's chunk space.
func TestQuickAllToAllPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		gpus := make([]int, n)
		for i := range gpus {
			gpus[i] = i
		}
		k := 1 + rng.Intn(3)
		d := AllToAll(n, gpus, k, 64)
		for s := 0; s < n; s++ {
			used := map[int]bool{}
			total := 0
			for dst := 0; dst < n; dst++ {
				if dst == s {
					continue
				}
				for _, c := range d.DestWantsFromSource(s, dst) {
					if used[c] {
						return false
					}
					used[c] = true
					total++
				}
			}
			if total != k*(n-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
