// Package collective models collective-communication demands: which
// destination wants which chunk from which source, the D_{s,c,d} demand
// function of the TE-CCL formulation (Table 1). Builders cover the
// standard collectives (ALLGATHER, ALLTOALL, BROADCAST, SCATTER, GATHER,
// REDUCESCATTER) plus multi-tenant sums (§5).
package collective

import (
	"encoding/binary"
	"fmt"
	"hash/maphash"
	"math"
)

// Demand is a demand matrix over n nodes with up to c chunks per source.
// Node indexes refer to topology node IDs; switches simply never appear as
// sources or destinations. The zero value is unusable; use New.
type Demand struct {
	n, c int
	want []bool // index: (src*c + chunk)*n + dst

	// ChunkBytes is the size of one chunk in bytes.
	ChunkBytes float64
}

// New returns an empty demand over numNodes nodes with chunksPerSource
// chunk slots per source and the given chunk size in bytes.
func New(numNodes, chunksPerSource int, chunkBytes float64) *Demand {
	if numNodes <= 0 || chunksPerSource <= 0 {
		panic(fmt.Sprintf("collective: bad dimensions %d nodes, %d chunks", numNodes, chunksPerSource))
	}
	if chunkBytes <= 0 {
		panic(fmt.Sprintf("collective: bad chunk size %g", chunkBytes))
	}
	return &Demand{
		n:          numNodes,
		c:          chunksPerSource,
		want:       make([]bool, numNodes*chunksPerSource*numNodes),
		ChunkBytes: chunkBytes,
	}
}

// NumNodes reports the node-space size.
func (d *Demand) NumNodes() int { return d.n }

// NumChunks reports the chunk slots per source.
func (d *Demand) NumChunks() int { return d.c }

func (d *Demand) idx(src, chunk, dst int) int {
	if src < 0 || src >= d.n || dst < 0 || dst >= d.n || chunk < 0 || chunk >= d.c {
		panic(fmt.Sprintf("collective: index (%d,%d,%d) out of range (%d nodes, %d chunks)",
			src, chunk, dst, d.n, d.c))
	}
	return (src*d.c+chunk)*d.n + dst
}

// Set marks that dst wants chunk of src.
func (d *Demand) Set(src, chunk, dst int) {
	if src == dst {
		return // a node always has its own chunks
	}
	d.want[d.idx(src, chunk, dst)] = true
}

// Wants reports whether dst wants chunk of src.
func (d *Demand) Wants(src, chunk, dst int) bool {
	return d.want[d.idx(src, chunk, dst)]
}

// Count returns the number of (src, chunk, dst) triples demanded.
func (d *Demand) Count() int {
	total := 0
	for _, w := range d.want {
		if w {
			total++
		}
	}
	return total
}

// SourceHasChunk reports whether any destination wants chunk of src, i.e.
// whether the chunk exists at the source at all (used to initialize
// source buffers: B_{n,n,0,c} = max_d D_{n,d,c}).
func (d *Demand) SourceHasChunk(src, chunk int) bool {
	base := (src*d.c + chunk) * d.n
	for dst := 0; dst < d.n; dst++ {
		if d.want[base+dst] {
			return true
		}
	}
	return false
}

// DestWantsFromSource returns the chunk IDs of src that dst wants.
func (d *Demand) DestWantsFromSource(src, dst int) []int {
	var out []int
	for c := 0; c < d.c; c++ {
		if d.want[d.idx(src, c, dst)] {
			out = append(out, c)
		}
	}
	return out
}

// OutputBufferBytes returns the bytes node dst receives when the demand is
// satisfied — TACCL's "output buffer size" metric.
func (d *Demand) OutputBufferBytes(dst int) float64 {
	count := 0
	for src := 0; src < d.n; src++ {
		for c := 0; c < d.c; c++ {
			if d.want[d.idx(src, c, dst)] {
				count++
			}
		}
	}
	return float64(count) * d.ChunkBytes
}

// MaxOutputBufferBytes returns the largest output buffer over all nodes.
func (d *Demand) MaxOutputBufferBytes() float64 {
	max := 0.0
	for dst := 0; dst < d.n; dst++ {
		if b := d.OutputBufferBytes(dst); b > max {
			max = b
		}
	}
	return max
}

// TotalBytes returns the total demanded bytes summed over destinations.
func (d *Demand) TotalBytes() float64 {
	return float64(d.Count()) * d.ChunkBytes
}

// Or merges another demand into d (multi-tenant modeling per §5: the
// multi-tenant demand is the union of tenant demands). Panics if shapes
// or chunk sizes differ.
func (d *Demand) Or(other *Demand) {
	if d.n != other.n || d.c != other.c || d.ChunkBytes != other.ChunkBytes {
		panic("collective: demand shape mismatch in Or")
	}
	for i, w := range other.want {
		if w {
			d.want[i] = true
		}
	}
}

// Clone returns a deep copy.
func (d *Demand) Clone() *Demand {
	out := New(d.n, d.c, d.ChunkBytes)
	copy(out.want, d.want)
	return out
}

// WithNodes returns a copy of d resized to numNodes nodes (numNodes ≥
// NumNodes()); every existing (src, chunk, dst) want is preserved at the
// same coordinates. Topology growth uses it so an incumbent demand can
// follow its session onto a grown node space: new nodes start with no
// demand, which a subsequent AddDemand delta then populates.
func (d *Demand) WithNodes(numNodes int) *Demand {
	if numNodes < d.n {
		panic("collective: WithNodes cannot shrink a demand")
	}
	if numNodes == d.n {
		return d.Clone()
	}
	out := New(numNodes, d.c, d.ChunkBytes)
	for s := 0; s < d.n; s++ {
		for c := 0; c < d.c; c++ {
			for dst := 0; dst < d.n; dst++ {
				if d.want[d.idx(s, c, dst)] {
					out.want[out.idx(s, c, dst)] = true
				}
			}
		}
	}
	return out
}

// DropPair removes every demand from src to dst: dst no longer wants any
// chunk of src. The replanning layer uses it for demand churn — a tenant
// leaving, or traffic to/from a failed node.
func (d *Demand) DropPair(src, dst int) {
	for c := 0; c < d.c; c++ {
		d.want[d.idx(src, c, dst)] = false
	}
}

// DropNode removes every demand touching node n, in either role: n stops
// wanting anything, and nothing wants n's chunks. Node churn uses it so a
// failed GPU's traffic leaves the demand with the node.
func (d *Demand) DropNode(n int) {
	for s := 0; s < d.n; s++ {
		d.DropPair(s, n)
		d.DropPair(n, s)
	}
}

// fpSeed makes Fingerprint comparable across demands within one process
// — the same convention as lp.Problem.Fingerprint, which is all the
// session caches keying on it need.
var fpSeed = maphash.MakeSeed()

// Fingerprint returns a hash of the demand's full content — dimensions,
// chunk size (bit pattern), and the want set. Two demands with equal
// fingerprints are almost certainly identical; session caches use it to
// key per-demand derived state (e.g. epoch estimates) without holding
// the demand itself.
func (d *Demand) Fingerprint() uint64 {
	var h maphash.Hash
	h.SetSeed(fpSeed)
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU64(uint64(d.n))
	writeU64(uint64(d.c))
	writeU64(math.Float64bits(d.ChunkBytes))
	var word uint64
	bits := 0
	for _, w := range d.want {
		word <<= 1
		if w {
			word |= 1
		}
		if bits++; bits == 64 {
			writeU64(word)
			word, bits = 0, 0
		}
	}
	if bits > 0 {
		writeU64(word)
	}
	return h.Sum64()
}

// AllGather builds an ALLGATHER demand: every GPU wants every chunk of
// every other GPU. gpus lists the participating node IDs; numNodes is the
// topology's node count.
func AllGather(numNodes int, gpus []int, chunksPerGPU int, chunkBytes float64) *Demand {
	d := New(numNodes, chunksPerGPU, chunkBytes)
	for _, s := range gpus {
		for c := 0; c < chunksPerGPU; c++ {
			for _, t := range gpus {
				if s != t {
					d.Set(s, c, t)
				}
			}
		}
	}
	return d
}

// AllToAll builds an ALLTOALL demand: every GPU sends a distinct set of
// chunksPerPair chunks to each other GPU. Following the paper's notation
// (Table 7 caption), chunksPerPair is the number of chunks a sender wants
// to deliver to each destination, so each source owns
// chunksPerPair*(len(gpus)-1) distinct chunks.
func AllToAll(numNodes int, gpus []int, chunksPerPair int, chunkBytes float64) *Demand {
	d := New(numNodes, chunksPerPair*max(1, len(gpus)-1), chunkBytes)
	for _, s := range gpus {
		slot := 0
		for _, t := range gpus {
			if s == t {
				continue
			}
			for j := 0; j < chunksPerPair; j++ {
				d.Set(s, slot, t)
				slot++
			}
		}
	}
	return d
}

// Broadcast builds a BROADCAST demand: root sends all its chunks to every
// other GPU.
func Broadcast(numNodes int, gpus []int, root, chunks int, chunkBytes float64) *Demand {
	d := New(numNodes, chunks, chunkBytes)
	for _, t := range gpus {
		if t == root {
			continue
		}
		for c := 0; c < chunks; c++ {
			d.Set(root, c, t)
		}
	}
	return d
}

// Scatter builds a SCATTER demand: root sends a distinct chunk block of
// chunksPerDest chunks to each other GPU.
func Scatter(numNodes int, gpus []int, root, chunksPerDest int, chunkBytes float64) *Demand {
	d := New(numNodes, chunksPerDest*max(1, len(gpus)-1), chunkBytes)
	slot := 0
	for _, t := range gpus {
		if t == root {
			continue
		}
		for j := 0; j < chunksPerDest; j++ {
			d.Set(root, slot, t)
			slot++
		}
	}
	return d
}

// Gather builds a GATHER demand: every GPU sends its chunks to root.
func Gather(numNodes int, gpus []int, root, chunksPerGPU int, chunkBytes float64) *Demand {
	d := New(numNodes, chunksPerGPU, chunkBytes)
	for _, s := range gpus {
		if s == root {
			continue
		}
		for c := 0; c < chunksPerGPU; c++ {
			d.Set(s, c, root)
		}
	}
	return d
}

// ReduceScatter builds the communication pattern of a REDUCESCATTER:
// shard i of every source must reach GPU i (the reduction itself is
// compute, not communication). Shards are indexed by position in gpus.
func ReduceScatter(numNodes int, gpus []int, chunkBytes float64) *Demand {
	d := New(numNodes, len(gpus), chunkBytes)
	for _, s := range gpus {
		for i, t := range gpus {
			if s != t {
				d.Set(s, i, t)
			}
		}
	}
	return d
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ExpandPerDestination rewrites a demand so every (chunk, destination)
// pair becomes a distinct chunk ID. This is how a no-copy solver treats a
// multicast demand: each destination's copy is its own commodity, since
// without in-network copy the copies are physically separate transfers.
// Chunk sizes and per-destination volumes are preserved.
func (d *Demand) ExpandPerDestination() *Demand {
	// Count the worst-case chunk fan-out per source.
	maxSlots := 1
	for s := 0; s < d.n; s++ {
		slots := 0
		for c := 0; c < d.c; c++ {
			for dst := 0; dst < d.n; dst++ {
				if d.Wants(s, c, dst) {
					slots++
				}
			}
		}
		if slots > maxSlots {
			maxSlots = slots
		}
	}
	out := New(d.n, maxSlots, d.ChunkBytes)
	for s := 0; s < d.n; s++ {
		slot := 0
		for c := 0; c < d.c; c++ {
			for dst := 0; dst < d.n; dst++ {
				if d.Wants(s, c, dst) {
					out.Set(s, slot, dst)
					slot++
				}
			}
		}
	}
	return out
}

// HasMulticast reports whether any chunk is wanted by more than one
// destination (the condition under which copy helps, §4.1).
func (d *Demand) HasMulticast() bool {
	for s := 0; s < d.n; s++ {
		for c := 0; c < d.c; c++ {
			count := 0
			for dst := 0; dst < d.n; dst++ {
				if d.Wants(s, c, dst) {
					count++
					if count > 1 {
						return true
					}
				}
			}
		}
	}
	return false
}
