package collective

import (
	"testing"
)

func TestExpandPerDestinationAllGather(t *testing.T) {
	d := AllGather(4, []int{0, 1, 2, 3}, 1, 100)
	e := d.ExpandPerDestination()
	// One chunk to 3 destinations becomes 3 distinct chunks.
	if e.NumChunks() != 3 {
		t.Fatalf("chunks = %d, want 3", e.NumChunks())
	}
	if e.Count() != d.Count() {
		t.Fatalf("triple count changed: %d -> %d", d.Count(), e.Count())
	}
	if e.HasMulticast() {
		t.Fatal("expanded demand must have no multicast chunks")
	}
	// Volumes preserved.
	for dst := 0; dst < 4; dst++ {
		if e.OutputBufferBytes(dst) != d.OutputBufferBytes(dst) {
			t.Fatalf("dst %d volume changed", dst)
		}
	}
	if e.ChunkBytes != d.ChunkBytes {
		t.Fatal("chunk size changed")
	}
}

func TestExpandIdempotentOnUnicast(t *testing.T) {
	d := AllToAll(3, []int{0, 1, 2}, 2, 50)
	if d.HasMulticast() {
		t.Fatal("alltoall should be unicast per chunk")
	}
	e := d.ExpandPerDestination()
	if e.Count() != d.Count() || e.TotalBytes() != d.TotalBytes() {
		t.Fatal("expansion changed a unicast demand's volume")
	}
}

func TestHasMulticast(t *testing.T) {
	d := New(3, 1, 10)
	d.Set(0, 0, 1)
	if d.HasMulticast() {
		t.Fatal("single destination is not multicast")
	}
	d.Set(0, 0, 2)
	if !d.HasMulticast() {
		t.Fatal("two destinations is multicast")
	}
}

func TestExpandBroadcast(t *testing.T) {
	d := Broadcast(5, []int{0, 1, 2, 3, 4}, 2, 2, 10)
	e := d.ExpandPerDestination()
	// 2 chunks x 4 destinations = 8 distinct commodities from the root.
	if e.NumChunks() != 8 {
		t.Fatalf("chunks = %d, want 8", e.NumChunks())
	}
	if e.Count() != 8 {
		t.Fatalf("count = %d, want 8", e.Count())
	}
	// Every expanded chunk has exactly one destination.
	for c := 0; c < e.NumChunks(); c++ {
		n := 0
		for dst := 0; dst < 5; dst++ {
			if e.Wants(2, c, dst) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("chunk %d has %d destinations", c, n)
		}
	}
}
