package analysis

import (
	"go/ast"
	"regexp"
	"strings"
)

// CtxCheck enforces cancellation discipline in the solver packages:
// every unbounded-form iteration loop (`for { ... }` or
// `for cond { ... }`) must poll cancellation somewhere in its body.
// This is the class of bug PR 4 fixed by hand when the LP and A*
// solvers silently ignored Options.TimeLimit: a pivot loop that never
// looks at its budget turns one oversized request into a wedged worker.
//
// A loop "polls" when its body (at any depth) does one of:
//
//   - call <expr>.Err() or <expr>.Done() — the context idiom, including
//     select-on-Done;
//   - call a function or method whose name matches the budget-helper
//     pattern (interrupted, limitsHit, budgetExpired, checkDeadline,
//     poll, timeout, cancel...);
//   - pass an identifier named ctx (or a Context-suffixed selector) to
//     a callee — delegation: the callee owns the poll.
//
// Counted three-clause loops and range loops are exempt: they are
// bounded by construction. A loop that is bounded for a reason the
// syntax cannot show carries //teccl:allow-ctxcheck <why>.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc: "unbounded solver iteration loops in internal/lp, internal/milp and internal/horizon " +
		"must poll cancellation on every iteration path",
	Run: runCtxCheck,
}

// ctxCheckPkgs are the package subtrees the rule governs.
var ctxCheckPkgs = []string{
	"teccl/internal/lp",
	"teccl/internal/milp",
	"teccl/internal/horizon",
}

// pollNameRE matches budget-helper callee names.
var pollNameRE = regexp.MustCompile(`(?i)interrupt|cancel|deadline|budget|poll|limit|expired|timeout`)

func runCtxCheck(pass *Pass) error {
	governed := false
	for _, p := range ctxCheckPkgs {
		if pass.PkgPath == p || strings.HasPrefix(pass.PkgPath, p+"/") {
			governed = true
			break
		}
	}
	if !governed {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			// Counted loops (any init or post clause) are bounded by
			// construction; only the while/forever forms iterate on
			// solver progress.
			if loop.Init != nil || loop.Post != nil {
				return true
			}
			if !pollsCancellation(loop.Body) {
				pass.Reportf(loop.For,
					"unbounded iteration loop never polls cancellation: check ctx.Err()/Done() or a budget helper "+
						"(interrupted/limitsHit/...) in the loop body, or annotate //teccl:allow-ctxcheck <why> if it is provably bounded")
			}
			return true
		})
	}
	return nil
}

// pollsCancellation reports whether any statement under body reads a
// cancellation source as defined in the analyzer doc.
func pollsCancellation(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if name == "Err" || name == "Done" {
				found = true
				return false
			}
			if pollNameRE.MatchString(name) {
				found = true
				return false
			}
		case *ast.Ident:
			if pollNameRE.MatchString(fun.Name) {
				found = true
				return false
			}
		}
		for _, arg := range call.Args {
			if isCtxExpr(arg) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isCtxExpr recognizes a context being handed to a callee: an
// identifier named ctx, or a selector whose final element is ctx or
// *Context.
func isCtxExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "ctx"
	case *ast.SelectorExpr:
		name := e.Sel.Name
		return name == "ctx" || name == "Context" || strings.HasSuffix(name, "Context")
	}
	return false
}
