package analysis_test

import (
	"testing"

	"teccl/internal/analysis"
	"teccl/internal/analysis/analysistest"
)

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, analysis.FloatCmp, "testdata/src/floatcmp", "teccl/internal/lp")
}

func TestFloatCmpGovernsSubtree(t *testing.T) {
	analysistest.Run(t, analysis.FloatCmp, "testdata/src/floatcmp", "teccl/internal/lp/sparse")
}
