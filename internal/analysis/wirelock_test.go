package analysis_test

import (
	"testing"

	"teccl/internal/analysis"
	"teccl/internal/analysis/analysistest"
)

func TestWireLockClean(t *testing.T) {
	analysistest.Run(t, analysis.WireLock, "testdata/src/wirelock/good", "teccl/wire")
}

func TestWireLockViolations(t *testing.T) {
	analysistest.Run(t, analysis.WireLock, "testdata/src/wirelock/broken", "teccl/wire")
}

func TestWireLockIgnoresOtherPackages(t *testing.T) {
	// The broken testdata fires only when the pass claims to be
	// teccl/wire; any other package path is out of scope.
	pass := analysistest.Load(t, "testdata/src/wirelock/broken", "teccl/other")
	diags, err := analysis.RunAnalyzer(analysis.WireLock, pass)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("wirelock fired outside teccl/wire: %v", diags)
	}
}
