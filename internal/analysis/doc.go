// Package analysis implements tecclvet: a suite of custom static
// analyzers that machine-enforce the invariants this repository's
// correctness rests on. Until now these existed only as prose in
// ROADMAP.md and as hand-written review caveats; cmd/tecclvet runs them
// over every package on every push (make vet, and the CI lint job).
//
// The framework mirrors the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, diagnostics, a testdata-driven test harness) but is
// built on the standard library alone — go/ast, go/types, go/importer
// and `go list -export` — because this build environment vendors no
// external modules. Loading is export-data based: `go list -export
// -json -deps` compiles the tree through the build cache and hands back
// export files, so type information is exact without re-typechecking
// dependencies from source.
//
// # Enforced invariants
//
// importrules — package layering:
//
//   - teccl/internal/experiments must never import the root teccl
//     package: the root bench test imports experiments, so the reverse
//     edge is an import cycle.
//   - teccl/internal/core must never import teccl/internal/horizon:
//     horizon registers itself into core's solver registry from an init
//     (blank import in the root facade); the reverse edge closes a
//     cycle.
//   - teccl/wire may import only the standard library: the v1 JSON
//     schema is a pure serialization contract and must not drag solver
//     internals across the API boundary (conversions live in
//     teccl/internal/wireconv).
//   - teccl/client must never import teccl/internal/daemon: the client
//     has to stay deployable without the serving tier.
//
// wirelock — additive-only wire schema evolution: the JSON tag and Go
// type of every exported struct field in teccl/wire is extracted and
// diffed against the committed wire/schema.lock.json. Removing,
// renaming or re-typing a locked field fails the build with a message
// naming the exact field; additions fail until the lock is regenerated
// (`go generate ./wire`, which runs `tecclvet -write-wire-lock`).
//
// ctxcheck — cancellation discipline in solver loops: unbounded-form
// iteration loops (`for { ... }` / `for cond { ... }`) in
// teccl/internal/lp, teccl/internal/milp and teccl/internal/horizon
// must poll cancellation somewhere in their body — ctx.Err()/Done(), an
// interrupted()/limitsHit()-style budget helper, or delegation to a
// callee that takes the context. This is the class of bug PR 4 fixed by
// hand when LP and A* silently ignored TimeLimit. Counted three-clause
// and range loops are exempt (bounded by construction); a loop that is
// bounded for a non-syntactic reason carries
// //teccl:allow-ctxcheck <why>.
//
// floatcmp — no == or != on floating-point operands in
// teccl/internal/lp. Tolerances are the simplex's lifeblood; exact
// float equality is allowed only for comparisons against the constant
// zero (sparsity checks on exact data), inside tolerance helpers
// (feq/approxEq-style), or under an explicit
// //teccl:allow-floatcmp <why> directive. Identity checks should
// compare math.Float64bits instead (see lp.boundsFixed, Problem.EqualTo).
//
// initregister — core.RegisterSolver may only be called from a package
// init function, matching the blank-import registration contract the
// Planner dispatch depends on (solvers must be installed before any
// Plan call can race them).
//
// # Suppression
//
// Every analyzer honors a line directive of the form
//
//	//teccl:allow-<analyzer> <justification>
//
// placed on the offending line or the line directly above it. The
// justification is not parsed, but reviewers treat a missing one as a
// defect: the directive exists to document why the invariant provably
// holds without the check, not to mute it.
//
// # Testing
//
// Each analyzer has an analysistest-style suite: testdata packages
// under testdata/src/<analyzer>/ annotated with `// want "regexp"`
// comments, loaded and checked by the harness in
// internal/analysis/analysistest. The suites run under the tier-1
// `go test ./...`.
package analysis
