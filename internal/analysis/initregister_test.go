package analysis_test

import (
	"testing"

	"teccl/internal/analysis"
	"teccl/internal/analysis/analysistest"
)

func TestInitRegister(t *testing.T) {
	// initregister keys off the import of teccl/internal/core, not the
	// package under analysis, so any impersonated path works.
	analysistest.Run(t, analysis.InitRegister, "testdata/src/initregister", "teccl/internal/horizon")
}
