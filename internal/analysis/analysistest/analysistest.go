// Package analysistest runs tecclvet analyzers over annotated testdata
// packages, in the style of golang.org/x/tools/go/analysis/analysistest
// but on the standard library alone.
//
// A testdata package is one directory of .go files. Lines that should
// trigger a diagnostic carry a trailing comment of the form
//
//	// want "regexp"
//
// (multiple quoted regexps allowed). The harness fails the test when a
// diagnostic appears on a line with no matching want, and when a want
// matches no diagnostic — so each case proves both that the analyzer
// fires and that it stays quiet elsewhere.
//
// Because the real analyzers key off import paths in the teccl module,
// Run takes the package path to impersonate: the testdata directory
// stands in for that package.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"teccl/internal/analysis"
)

// wantRE extracts the quoted expectations from a `// want` comment;
// both "double-quoted" (with \" escapes) and backquoted regexps work.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

// expectation is one `// want` entry.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Load parses the testdata package in dir into an untyped Pass that
// impersonates pkgPath. Tests that need to drive RunAnalyzer directly
// (scope checks with no want annotations in play) use it; Run wraps it.
func Load(t *testing.T, dir, pkgPath string) *analysis.Pass {
	t.Helper()
	pass, _ := load(t, dir, pkgPath)
	return pass
}

// load parses the package and collects its want annotations.
func load(t *testing.T, dir, pkgPath string) (*analysis.Pass, []*expectation) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading testdata dir: %v", err)
	}
	var files []*ast.File
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		files = append(files, f)
		wants = append(wants, parseWants(t, path, src)...)
	}
	if len(files) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}
	return &analysis.Pass{
		Fset:    fset,
		Files:   files,
		PkgPath: pkgPath,
		Dir:     dir,
	}, wants
}

// Run applies one analyzer to the testdata package in dir, pretending
// it is package pkgPath, and checks its diagnostics against the
// `// want` annotations.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	pass, wants := load(t, dir, pkgPath)
	if a.NeedTypes {
		pkg, info, err := typecheck(pass.Fset, pass.PkgPath, pass.Files)
		if err != nil {
			t.Fatalf("type-checking testdata: %v", err)
		}
		pass.Pkg, pass.TypesInfo = pkg, info
	}

	diags, err := analysis.RunAnalyzer(a, pass)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		if !consume(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, w.file, w.line, w.re)
		}
	}
}

// parseWants scans src for `// want "re" ...` comments.
func parseWants(t *testing.T, path string, src []byte) []*expectation {
	t.Helper()
	var out []*expectation
	for i, line := range strings.Split(string(src), "\n") {
		_, spec, ok := strings.Cut(line, "// want ")
		if !ok {
			continue
		}
		ms := wantRE.FindAllStringSubmatch(spec, -1)
		if len(ms) == 0 {
			t.Fatalf("%s:%d: malformed want comment (no quoted regexp)", path, i+1)
		}
		for _, m := range ms {
			expr := m[1]
			if m[2] != "" {
				expr = m[2]
			}
			re, err := regexp.Compile(expr)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, expr, err)
			}
			out = append(out, &expectation{file: path, line: i + 1, re: re})
		}
	}
	return out
}

// consume marks the first unmatched want on the diagnostic's line whose
// regexp matches its message.
func consume(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// typecheck type-checks a testdata package leniently: standard-library
// imports resolve from source; anything else resolves to an empty
// placeholder package, and residual type errors (references into a
// placeholder) are tolerated. Analyzers that set NeedTypes must confine
// their type queries to expressions testdata can type on its own.
func typecheck(fset *token.FileSet, pkgPath string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: &lenientImporter{std: importer.ForCompiler(fset, "source", nil)},
		Error:    func(error) {}, // collect best-effort info despite placeholder imports
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil && pkg == nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// lenientImporter resolves stdlib paths for real and fakes the rest.
type lenientImporter struct {
	std   types.Importer
	fakes map[string]*types.Package
}

func (li *lenientImporter) Import(path string) (*types.Package, error) {
	if isStdlib(path) {
		return li.std.Import(path)
	}
	if li.fakes == nil {
		li.fakes = make(map[string]*types.Package)
	}
	if p, ok := li.fakes[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	li.fakes[path] = p
	return p, nil
}

// isStdlib mirrors the analysis package's notion: no dot in the first
// segment and not in the teccl module.
func isStdlib(path string) bool {
	if path == "teccl" || strings.HasPrefix(path, "teccl/") {
		return false
	}
	first, _, _ := strings.Cut(path, "/")
	return !strings.Contains(first, ".")
}
