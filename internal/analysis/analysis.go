package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. The zero framework mirrors
// golang.org/x/tools/go/analysis: Run inspects a fully parsed (and,
// when NeedTypes is set, type-checked) package through its Pass and
// reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in output and in the
	// //teccl:allow-<name> suppression directive.
	Name string
	// Doc is a one-paragraph description shown by `tecclvet -list`.
	Doc string
	// NeedTypes requests Pkg/TypesInfo on the Pass. Analyzers that only
	// look at syntax leave it false so the test harness can load
	// testdata packages whose imports do not resolve.
	NeedTypes bool
	// Run performs the check.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test sources, with comments.
	Files []*ast.File
	// PkgPath is the package's import path. Path-scoped analyzers key
	// off it; the test harness overrides it to stand testdata packages
	// in for the real ones.
	PkgPath string
	// Dir is the package directory on disk (wirelock reads the schema
	// lock that lives next to the sources).
	Dir string
	// Pkg and TypesInfo carry type information when the analyzer set
	// NeedTypes; nil otherwise.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report receives each diagnostic. The driver and the test harness
	// install it; suppression directives are filtered afterwards.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// All returns the tecclvet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{ImportRules, WireLock, CtxCheck, FloatCmp, InitRegister}
}

// allowPrefix is the suppression directive stem; the analyzer name and
// an optional justification follow.
const allowPrefix = "//teccl:allow-"

// suppressedLines maps filename -> set of line numbers covered by a
// //teccl:allow-<name> directive: the directive's own line and the line
// after it, so the directive can sit trailing on the offending line or
// on its own line directly above.
func suppressedLines(fset *token.FileSet, files []*ast.File, name string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix+name)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					out[pos.Filename] = m
				}
				m[pos.Line] = true
				m[pos.Line+1] = true
			}
		}
	}
	return out
}

// RunAnalyzer runs one analyzer over one pass, returning its
// diagnostics with suppression directives applied, sorted by position.
// The caller fills in every Pass field except Report.
func RunAnalyzer(a *Analyzer, pass *Pass) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass.Analyzer = a
	pass.Report = func(d Diagnostic) { diags = append(diags, d) }
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	allowed := suppressedLines(pass.Fset, pass.Files, a.Name)
	kept := diags[:0]
	for _, d := range diags {
		if m := allowed[d.Pos.Filename]; m != nil && m[d.Pos.Line] {
			continue
		}
		kept = append(kept, d)
	}
	sortDiagnostics(kept)
	return kept, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// inModule reports whether path names the root module or one of its
// packages. The module path is fixed: this suite is repo-specific by
// design.
func inModule(path string) bool {
	return path == modulePath || strings.HasPrefix(path, modulePath+"/")
}

// modulePath is the import path of the module tecclvet polices.
const modulePath = "teccl"

// isStdlib reports whether an import path belongs to the standard
// library: not in this module, and its first segment carries no dot (a
// domain would make it an external module).
func isStdlib(path string) bool {
	if inModule(path) {
		return false
	}
	first, _, _ := strings.Cut(path, "/")
	return !strings.Contains(first, ".")
}
