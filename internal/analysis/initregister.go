package analysis

import (
	"go/ast"
	"strconv"
)

// InitRegister enforces the blank-import registration contract:
// core.RegisterSolver may only be called from a package init function.
// The Planner resolves solvers through core's registry at dispatch
// time; a registration that happens lazily (from an exported setup
// function, a sync.Once, a test helper...) can race a concurrent Plan
// call or simply never run when the caller forgets, and the policy
// layer silently degrades to SolverLP. Registering from init — driven
// by a blank import in the root facade — makes installation a
// link-time fact.
var InitRegister = &Analyzer{
	Name: "initregister",
	Doc:  "core.RegisterSolver may only be called from a package init func (blank-import registration contract)",
	Run:  runInitRegister,
}

// corePkgPath is the registry's home.
const corePkgPath = "teccl/internal/core"

func runInitRegister(pass *Pass) error {
	for _, f := range pass.Files {
		// Local names under which this file can reach the core package.
		aliases := make(map[string]bool)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != corePkgPath {
				continue
			}
			switch {
			case imp.Name == nil:
				aliases["core"] = true
			case imp.Name.Name == "_" || imp.Name.Name == ".":
				// Blank imports call nothing; dot imports are handled by
				// the bare-call case below.
				aliases[""] = aliases[""] || imp.Name.Name == "."
			default:
				aliases[imp.Name.Name] = true
			}
		}
		inCore := pass.PkgPath == corePkgPath
		dotImported := aliases[""]
		if len(aliases) == 0 && !inCore {
			continue
		}

		var fnStack []*ast.FuncDecl
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok {
				fnStack = append(fnStack, fd)
				return true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			isRegister := false
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok && aliases[id.Name] && fun.Sel.Name == "RegisterSolver" {
					isRegister = true
				}
			case *ast.Ident:
				if (inCore || dotImported) && fun.Name == "RegisterSolver" {
					isRegister = true
				}
			}
			if !isRegister {
				return true
			}
			fn := enclosing(fnStack, call.Pos())
			if fn == nil {
				pass.Reportf(call.Pos(),
					"core.RegisterSolver called from a package-level initializer: move it into func init() so registration is a link-time fact")
				return true
			}
			if fn.Recv != nil || fn.Name.Name != "init" {
				pass.Reportf(call.Pos(),
					"core.RegisterSolver called from %s: solvers may only register from a package init func (blank-import registration contract)",
					fn.Name.Name)
			}
			return true
		})
	}
	return nil
}
