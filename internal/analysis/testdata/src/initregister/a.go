// Testdata: stands in for a solver package registering into core's
// dispatch. Registration may only happen from init.
package horizon

import (
	core "teccl/internal/core"
)

func solve() {}

func init() {
	core.RegisterSolver(7, solve) // registration from init: the contract
}

// Enable is the anti-pattern: lazy registration that can race a
// concurrent Plan or never run at all.
func Enable() {
	core.RegisterSolver(8, solve) // want `solvers may only register from a package init func`
}

// A package-level initializer runs, but at an order the facade's blank
// import cannot pin down.
var _ = core.RegisterSolver(11, solve) // want `package-level initializer`

var registered = register()

func register() bool {
	core.RegisterSolver(9, solve) // want `solvers may only register from a package init func`
	return true
}

func initButMethod() {}

type t struct{}

// init as a method name is not the package init.
func (t) init() {
	core.RegisterSolver(10, solve) // want `solvers may only register from a package init func`
}
