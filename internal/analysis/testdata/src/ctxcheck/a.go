// Testdata: stands in for teccl/internal/lp. Unbounded-form loops must
// poll cancellation; counted and range loops are exempt; provably
// bounded loops carry the allow directive.
package lp

import "context"

func step() bool { return false }

type solver struct{ iter int }

func (s *solver) interrupted() bool { return false }
func (s *solver) limitsHit() bool   { return false }

// hotUnpolled is the PR 4 bug class: an iteration loop that never looks
// at its budget.
func hotUnpolled(ctx context.Context) {
	for { // want `never polls cancellation`
		if step() {
			return
		}
	}
}

// condUnpolled iterates on solver progress with no poll.
func condUnpolled(s *solver) {
	for s.iter < 1<<30 { // want `never polls cancellation`
		s.iter++
	}
}

// polledDirect checks the context itself.
func polledDirect(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		if step() {
			return
		}
	}
}

// polledSelect waits on Done.
func polledSelect(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		if step() {
			return
		}
	}
}

// polledHelper goes through a budget helper, the simplex idiom
// (s.interrupted(), s.limitsHit()).
func polledHelper(s *solver) {
	for {
		if s.iter%64 == 0 && s.interrupted() {
			return
		}
		s.iter++
	}
}

// polledDelegate hands the ctx to the callee, which owns the poll.
func polledDelegate(ctx context.Context, f func(context.Context) bool) {
	for {
		if f(ctx) {
			return
		}
	}
}

// counted loops are bounded by construction.
func countedLoops(n int, xs []int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	for _, x := range xs {
		sum += x
	}
	return sum
}

// annotated is bounded for a reason the syntax cannot show.
func annotated(q []int) int {
	n := 0
	//teccl:allow-ctxcheck bounded: every pop shrinks the queue for good
	for len(q) > 0 {
		q = q[:len(q)-1]
		n++
	}
	return n
}
