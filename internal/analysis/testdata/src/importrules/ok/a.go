// Testdata: a package no layering rule governs; nothing may fire even
// on edges banned elsewhere.
package ok

import (
	_ "teccl"
	_ "teccl/internal/daemon"
	_ "teccl/internal/horizon"
)
