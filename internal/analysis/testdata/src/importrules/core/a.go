// Testdata: stands in for teccl/internal/core. Importing horizon (or
// any subpackage of it) closes the registration cycle.
package core

import (
	_ "teccl/internal/horizon"         // want `must not import "teccl/internal/horizon"`
	_ "teccl/internal/horizon/windows" // want `must not import "teccl/internal/horizon/windows"`
	_ "teccl/internal/lp"              // legal
)
