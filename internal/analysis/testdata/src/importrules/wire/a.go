// Testdata: stands in for teccl/wire, which must stay stdlib-only.
package wire

import (
	"encoding/json"
	"fmt"
	"time"

	_ "example.com/x/mod"   // want `must import only the standard library`
	_ "teccl/internal/core" // want `must import only the standard library`
)

var (
	_ = json.Marshal
	_ = fmt.Sprint
	_ = time.Now
)
