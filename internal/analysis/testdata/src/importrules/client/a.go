// Testdata: stands in for teccl/client, which must stay deployable
// without the serving tier.
package client

import (
	_ "teccl/internal/core"     // legal
	_ "teccl/internal/daemon"   // want `must not import "teccl/internal/daemon"`
	_ "teccl/internal/wireconv" // legal
	_ "teccl/wire"              // legal
)
