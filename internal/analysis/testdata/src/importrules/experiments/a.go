// Testdata: stands in for teccl/internal/experiments. Importing the
// root facade is the banned edge (the root bench test imports
// experiments); the internal packages stay legal.
package experiments

import (
	"fmt"

	_ "teccl"               // want `must not import "teccl"`
	_ "teccl/client"        // a subpath of the root is not the root: legal
	_ "teccl/internal/topo" // legal
)

var _ = fmt.Sprint
