// Testdata: every non-additive schema change wirelock detects, one per
// struct, each diagnostic naming the exact field. The lock also pins a
// struct Gone that this source deleted outright.
package wire // want `locked struct Gone no longer exists`

// Plan dropped its locked Cost field and grew an unlocked Note field.
type Plan struct { // want `v1 field Plan.Cost .* was removed`
	Steps int    `json:"steps"`
	Note  string `json:"note"` // want `new field Plan.Note .* regenerate the lock`
}

// Stats renamed its Runs field but kept the json tag.
type Stats struct {
	RunsTotal int `json:"runs"` // want `v1 field Stats.Runs was renamed to RunsTotal`
}

// Error changed one field's type and another's json tag.
type Error struct {
	Code    int    `json:"code"` // want `changed type string -> int`
	Message string `json:"msg"`  // want `changed json tag "message" -> "msg"`
}

// Extra is a new struct the lock has never seen.
type Extra struct { // want `new struct Extra is not in schema.lock.json`
	X int `json:"x"`
}
