// Testdata: a wire-like schema package whose committed lock matches the
// source exactly; wirelock must stay silent.
package wire

// Version pins the schema generation.
const Version = "v1"

// Plan is a locked struct.
type Plan struct {
	Steps int     `json:"steps"`
	Cost  float64 `json:"cost"`
	Debug string  `json:"-"` // json:"-" is invisible on the wire
	note  string  // unexported: invisible on the wire
}

// Error is a locked struct with an omitempty tag option (the lock keeps
// only the name part).
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message,omitempty"`
}

func (p Plan) use() string { return p.note }
