// Testdata: stands in for teccl/internal/lp. Exact float equality is
// banned outside exact-zero checks, tolerance helpers, Float64bits
// identity, and the allow directive. This package must type-check on
// its own (the analyzer needs operand types).
package lp

import "math"

const tol = 1e-9

type entry struct {
	Var   int
	Coeff float64
}

// badEqual is the bug class: two computed floats compared exactly.
func badEqual(lo, hi float64) bool {
	return lo == hi // want `floating-point == comparison`
}

// badNotEqual on a struct field.
func badNotEqual(e entry, x float64) bool {
	return e.Coeff != x // want `floating-point != comparison`
}

// badConstCompare against a non-zero constant is still exact equality.
func badConstCompare(w float64) bool {
	return w != 1 // want `floating-point != comparison`
}

// zeroChecks are the sparsity escape: sparse data is exactly zero or
// exactly not.
func zeroChecks(v float64, e entry) bool {
	return v == 0 || e.Coeff != 0 || 0 == v
}

// feq is a designated tolerance helper: the one place exact comparison
// logic may live.
func feq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// bitsIdentity compares assigned values bitwise; uint64s never trip the
// analyzer.
func bitsIdentity(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// intCompares are not floats.
func intCompares(i, j int, e entry) bool {
	return i == j || e.Var != i
}

// annotated documents a deliberate exact comparison.
func annotated(replayed, recorded float64) bool {
	return replayed == recorded //teccl:allow-floatcmp replay must be bit-identical, not close
}
