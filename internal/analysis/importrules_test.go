package analysis_test

import (
	"testing"

	"teccl/internal/analysis"
	"teccl/internal/analysis/analysistest"
)

func TestImportRules(t *testing.T) {
	// Each testdata directory impersonates one governed package (plus
	// one ungoverned control).
	cases := []struct{ dir, pkg string }{
		{"experiments", "teccl/internal/experiments"},
		{"core", "teccl/internal/core"},
		{"wire", "teccl/wire"},
		{"client", "teccl/client"},
		{"ok", "teccl/internal/ok"},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			analysistest.Run(t, analysis.ImportRules, "testdata/src/importrules/"+c.dir, c.pkg)
		})
	}
}

func TestImportRulesSubpackage(t *testing.T) {
	// A rule governs the package's subtree too: core/internal-helper
	// paths inherit core's bans.
	analysistest.Run(t, analysis.ImportRules, "testdata/src/importrules/core", "teccl/internal/core/pool")
}
