package analysis_test

import (
	"testing"

	"teccl/internal/analysis"
	"teccl/internal/analysis/analysistest"
)

func TestCtxCheck(t *testing.T) {
	// The same testdata is valid for any of the three governed solver
	// subtrees; run it as each to pin the scope.
	for _, pkg := range []string{
		"teccl/internal/lp",
		"teccl/internal/milp",
		"teccl/internal/horizon/windows",
	} {
		t.Run(pkg, func(t *testing.T) {
			analysistest.Run(t, analysis.CtxCheck, "testdata/src/ctxcheck", pkg)
		})
	}
}

func TestCtxCheckIgnoresOtherPackages(t *testing.T) {
	pass := analysistest.Load(t, "testdata/src/ctxcheck", "teccl/internal/topo")
	diags, err := analysis.RunAnalyzer(analysis.CtxCheck, pass)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("ctxcheck fired outside the solver packages: %v", diags)
	}
}
