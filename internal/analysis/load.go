package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	DepOnly    bool
}

// goList runs `go list -export -json -deps patterns...` in dir and
// decodes the package stream. -export compiles through the build cache
// and records each package's export-data file, which is what lets the
// type checker import dependencies without re-typechecking them.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// LoadedPackage is one analysis target: parsed sources plus full type
// information.
type LoadedPackage struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Load resolves patterns (relative to dir) to the matched packages,
// parses and type-checks them. Dependencies are imported from export
// data, so only the targets themselves are parsed.
func Load(dir string, patterns []string) ([]*LoadedPackage, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listPackage, len(pkgs))
	importMap := make(map[string]string)
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if to, ok := importMap[path]; ok {
			path = to
		}
		dep := byPath[path]
		if dep == nil || dep.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(dep.Export)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var targets []*listPackage
	for _, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var out []*LoadedPackage
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		out = append(out, &LoadedPackage{
			Path: p.ImportPath, Dir: p.Dir, Fset: fset, Files: files, Pkg: tpkg, Info: info,
		})
	}
	return out, nil
}

// Run loads the packages matched by patterns and applies every analyzer
// to each, returning all diagnostics sorted by position.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	loaded, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, lp := range loaded {
		for _, a := range analyzers {
			pass := &Pass{
				Fset:    lp.Fset,
				Files:   lp.Files,
				PkgPath: lp.Path,
				Dir:     lp.Dir,
			}
			if a.NeedTypes {
				pass.Pkg = lp.Pkg
				pass.TypesInfo = lp.Info
			}
			diags, err := RunAnalyzer(a, pass)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", lp.Path, err)
			}
			all = append(all, diags...)
		}
	}
	sortDiagnostics(all)
	return all, nil
}
