package analysis

import (
	"strconv"
	"strings"
)

// ImportRules enforces the repo's package layering. Each rule binds to
// one package (and its subpackages) and either bans specific import
// edges or restricts the package to the standard library. The rules are
// the load-bearing facts from ROADMAP.md's architecture section, now
// checked by machine.
var ImportRules = &Analyzer{
	Name: "importrules",
	Doc: "enforce package layering: experiments must not import the teccl root, " +
		"core must not import horizon, wire stays stdlib-only, client must not import the daemon",
	Run: runImportRules,
}

// bannedImport is one forbidden edge. Subtree bans cover the path and
// everything under it; exact bans cover only the path itself (banning
// the root package "teccl" must not ban "teccl/...").
type bannedImport struct {
	path    string
	subtree bool
	why     string
}

// importRule scopes a set of bans (or a stdlib-only restriction) to one
// package subtree.
type importRule struct {
	pkg     string
	stdOnly bool
	why     string // stdlib-only rationale
	bans    []bannedImport
}

var importRules = []importRule{
	{
		pkg: "teccl/internal/experiments",
		bans: []bannedImport{{
			path: "teccl",
			why:  "the root bench test imports experiments, so the reverse edge is an import cycle; use the internal packages (or teccl/client) directly",
		}},
	},
	{
		pkg: "teccl/internal/core",
		bans: []bannedImport{{
			path: "teccl/internal/horizon", subtree: true,
			why: "horizon registers into core via init (blank import in the root facade); importing it back closes the cycle",
		}},
	},
	{
		pkg:     "teccl/wire",
		stdOnly: true,
		why:     "the v1 wire schema is a pure serialization contract; conversions live in teccl/internal/wireconv",
	},
	{
		pkg: "teccl/client",
		bans: []bannedImport{{
			path: "teccl/internal/daemon", subtree: true,
			why: "the client must stay deployable without the serving tier",
		}},
	},
}

func runImportRules(pass *Pass) error {
	for _, r := range importRules {
		if pass.PkgPath != r.pkg && !strings.HasPrefix(pass.PkgPath, r.pkg+"/") {
			continue
		}
		for _, f := range pass.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if r.stdOnly && !isStdlib(path) {
					pass.Reportf(imp.Pos(),
						"%s must import only the standard library, not %q: %s",
						r.pkg, path, r.why)
					continue
				}
				for _, b := range r.bans {
					if path == b.path || (b.subtree && strings.HasPrefix(path, b.path+"/")) {
						pass.Reportf(imp.Pos(),
							"%s must not import %q: %s", r.pkg, path, b.why)
					}
				}
			}
		}
	}
	return nil
}
