package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// FloatCmp bans == and != on floating-point operands in internal/lp.
// The sparse simplex lives and dies by tolerances (feasTol, optTol, the
// FT drift oracle); an exact float comparison in that code is almost
// always a latent bug that surfaces as a chaotic pivot path or a false
// "optimal". Three escapes exist, in order of preference:
//
//   - compare against the constant zero: sparse data is exactly zero or
//     exactly not, so sparsity checks (v == 0) are legitimate;
//   - a tolerance/identity helper (feq/approxEq-prefixed functions, or
//     math.Float64bits for assigned-value identity — the uint64 compare
//     never trips this analyzer);
//   - //teccl:allow-floatcmp <why> on the offending line.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "no ==/!= on floating-point operands in internal/lp outside tolerance helpers " +
		"and exact-zero sparsity checks",
	NeedTypes: true,
	Run:       runFloatCmp,
}

// floatCmpPkg is the package subtree the rule governs.
const floatCmpPkg = "teccl/internal/lp"

// toleranceHelperRE names the functions allowed to compare floats
// exactly: the designated tolerance/equality helpers themselves.
var toleranceHelperRE = regexp.MustCompile(`(?i)^(feq|fne|approxeq|toleq|almosteq)`)

func runFloatCmp(pass *Pass) error {
	if pass.PkgPath != floatCmpPkg && !strings.HasPrefix(pass.PkgPath, floatCmpPkg+"/") {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		var fnStack []*ast.FuncDecl
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fnStack = append(fnStack, n)
				return true
			case nil:
				return true
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isFloatOperand(info, n.X) && !isFloatOperand(info, n.Y) {
					return true
				}
				if isConstZero(info, n.X) || isConstZero(info, n.Y) {
					return true
				}
				if bothConst(info, n) {
					return true
				}
				if fn := enclosing(fnStack, n.Pos()); fn != nil && toleranceHelperRE.MatchString(fn.Name.Name) {
					return true
				}
				pass.Reportf(n.OpPos,
					"floating-point %s comparison: use a tolerance helper, compare math.Float64bits for assigned-value identity, "+
						"or annotate //teccl:allow-floatcmp <why>", n.Op)
			}
			return true
		})
	}
	return nil
}

// enclosing returns the function declaration whose span covers pos, if
// any. FuncDecls never nest, so scanning the visited list suffices.
func enclosing(fns []*ast.FuncDecl, pos token.Pos) *ast.FuncDecl {
	for i := len(fns) - 1; i >= 0; i-- {
		if fns[i].Pos() <= pos && pos <= fns[i].End() {
			return fns[i]
		}
	}
	return nil
}

// isFloatOperand reports whether e has floating-point type (directly or
// through a defined type).
func isFloatOperand(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConstZero reports whether e is a compile-time constant equal to
// zero — the exact-zero sparsity escape.
func isConstZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// bothConst reports whether both operands fold at compile time; such a
// comparison is evaluated by the compiler, not at run time.
func bothConst(info *types.Info, n *ast.BinaryExpr) bool {
	x, okx := info.Types[n.X]
	y, oky := info.Types[n.Y]
	return okx && oky && x.Value != nil && y.Value != nil
}
