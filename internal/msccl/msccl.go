// Package msccl serializes collective schedules into an MSCCL-style XML
// algorithm description. The paper converts TE-CCL's solutions "into
// MSCCL, which can then port it into a schedule that runs on the
// hardware" (§6); this package produces the equivalent structural
// artifact: per-GPU threadblocks holding ordered send/receive steps with
// cross-step dependencies implied by epoch order.
package msccl

import (
	"encoding/xml"
	"fmt"
	"sort"

	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// Algo is the root of an MSCCL-style algorithm description.
type Algo struct {
	XMLName        xml.Name `xml:"algo"`
	Name           string   `xml:"name,attr"`
	Proto          string   `xml:"proto,attr"`
	NChunksPerLoop int      `xml:"nchunksperloop,attr"`
	NGPUs          int      `xml:"ngpus,attr"`
	Coll           string   `xml:"coll,attr"`
	NChannels      int      `xml:"nchannels,attr"`
	GPUs           []GPU    `xml:"gpu"`
}

// GPU is one rank's program.
type GPU struct {
	ID      int  `xml:"id,attr"`
	IChunks int  `xml:"i_chunks,attr"`
	OChunks int  `xml:"o_chunks,attr"`
	TBs     []TB `xml:"tb"`
}

// TB is a threadblock: a serialized stream of steps against one peer.
type TB struct {
	ID    int    `xml:"id,attr"`
	Send  int    `xml:"send,attr"` // peer rank this TB sends to, -1 if none
	Recv  int    `xml:"recv,attr"` // peer rank this TB receives from, -1
	Chan  int    `xml:"chan,attr"`
	Steps []Step `xml:"step"`
}

// Step is one send or receive of one chunk.
type Step struct {
	S      int    `xml:"s,attr"`
	Type   string `xml:"type,attr"` // "s" send, "r" recv
	SrcBuf string `xml:"srcbuf,attr"`
	SrcOff int    `xml:"srcoff,attr"`
	DstBuf string `xml:"dstbuf,attr"`
	DstOff int    `xml:"dstoff,attr"`
	Cnt    int    `xml:"cnt,attr"`
	Epoch  int    `xml:"epoch,attr"` // scheduling epoch (TE-CCL extension)
}

// Export converts a schedule into the MSCCL-style XML document. Only GPU
// endpoints appear (switch hops become the receiving GPU's recv from the
// switch's feeding GPU is not reconstructed — the switch is modeled as a
// rank of its own, as MSCCL does for NVSwitch-routed designs).
func Export(s *schedule.Schedule, collName string) ([]byte, error) {
	t := s.Topo
	nC := s.Demand.NumChunks()

	// Global chunk offsets: chunk c of source s maps to s*nC + c.
	off := func(src, chunk int) int { return src*nC + chunk }

	type tbKey struct {
		gpu, peer int
		send      bool
	}
	tbs := map[tbKey]*TB{}
	order := []tbKey{}
	getTB := func(k tbKey) *TB {
		if tb, ok := tbs[k]; ok {
			return tb
		}
		tb := &TB{Send: -1, Recv: -1}
		if k.send {
			tb.Send = k.peer
		} else {
			tb.Recv = k.peer
		}
		tbs[k] = tb
		order = append(order, k)
		return tb
	}

	sends := append([]schedule.Send(nil), s.Sends...)
	sort.Slice(sends, func(i, j int) bool {
		if sends[i].Epoch != sends[j].Epoch {
			return sends[i].Epoch < sends[j].Epoch
		}
		return sends[i].Link < sends[j].Link
	})
	for _, snd := range sends {
		if snd.Fraction != 1 {
			return nil, fmt.Errorf("msccl: fractional schedules cannot be exported (chunk %d of %d is %.3f)",
				snd.Chunk, snd.Src, snd.Fraction)
		}
		l := t.Link(snd.Link)
		o := off(snd.Src, snd.Chunk)
		stb := getTB(tbKey{int(l.Src), int(l.Dst), true})
		stb.Steps = append(stb.Steps, Step{
			S: len(stb.Steps), Type: "s",
			SrcBuf: "o", SrcOff: o, DstBuf: "o", DstOff: o,
			Cnt: 1, Epoch: snd.Epoch,
		})
		rtb := getTB(tbKey{int(l.Dst), int(l.Src), false})
		rtb.Steps = append(rtb.Steps, Step{
			S: len(rtb.Steps), Type: "r",
			SrcBuf: "o", SrcOff: o, DstBuf: "o", DstOff: o,
			Cnt: 1, Epoch: snd.Epoch,
		})
	}

	algo := Algo{
		Name:           fmt.Sprintf("teccl-%s-%s", collName, t.Name),
		Proto:          "Simple",
		NChunksPerLoop: s.Demand.NumNodes() * nC,
		NGPUs:          t.NumNodes(),
		Coll:           collName,
		NChannels:      1,
	}
	perGPU := map[int][]*TB{}
	for _, k := range order {
		perGPU[k.gpu] = append(perGPU[k.gpu], tbs[k])
	}
	for n := 0; n < t.NumNodes(); n++ {
		g := GPU{
			ID:      n,
			IChunks: nC,
			OChunks: s.Demand.NumNodes() * nC,
		}
		for i, tb := range perGPU[n] {
			tb.ID = i
			g.TBs = append(g.TBs, *tb)
		}
		algo.GPUs = append(algo.GPUs, g)
	}

	out, err := xml.MarshalIndent(algo, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), out...), nil
}

// ranksInvolved counts distinct nodes touched by the schedule.
func ranksInvolved(s *schedule.Schedule) int {
	seen := map[topo.NodeID]bool{}
	for _, snd := range s.Sends {
		l := s.Topo.Link(snd.Link)
		seen[l.Src] = true
		seen[l.Dst] = true
	}
	return len(seen)
}
