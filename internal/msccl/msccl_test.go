package msccl

import (
	"encoding/xml"
	"strings"
	"testing"

	"teccl/internal/collective"
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

func testSchedule(t *testing.T) *schedule.Schedule {
	t.Helper()
	tp := topo.Line(3, 1e9, 0)
	d := collective.New(3, 1, 1e6)
	d.Set(0, 0, 1)
	d.Set(0, 0, 2)
	s := &schedule.Schedule{
		Topo: tp, Demand: d, Tau: 1e-3, NumEpochs: 3, AllowCopy: true,
		Sends: []schedule.Send{
			{Src: 0, Chunk: 0, Link: tp.FindLink(0, 1), Epoch: 0, Fraction: 1},
			{Src: 0, Chunk: 0, Link: tp.FindLink(1, 2), Epoch: 1, Fraction: 1},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return s
}

func TestExportWellFormed(t *testing.T) {
	out, err := Export(testSchedule(t), "broadcast")
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	var back Algo
	if err := xml.Unmarshal(out, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Coll != "broadcast" || back.NGPUs != 3 {
		t.Fatalf("header wrong: %+v", back)
	}
	// GPU 1 must both receive from 0 and send to 2.
	var g1 GPU
	for _, g := range back.GPUs {
		if g.ID == 1 {
			g1 = g
		}
	}
	var hasSend, hasRecv bool
	for _, tb := range g1.TBs {
		if tb.Send == 2 && len(tb.Steps) == 1 && tb.Steps[0].Type == "s" {
			hasSend = true
		}
		if tb.Recv == 0 && len(tb.Steps) == 1 && tb.Steps[0].Type == "r" {
			hasRecv = true
		}
	}
	if !hasSend || !hasRecv {
		t.Fatalf("gpu1 threadblocks wrong: %+v", g1.TBs)
	}
	if !strings.HasPrefix(string(out), xml.Header) {
		t.Fatal("missing XML header")
	}
}

func TestExportStepsOrderedByEpoch(t *testing.T) {
	out, err := Export(testSchedule(t), "broadcast")
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	var back Algo
	if err := xml.Unmarshal(out, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for _, g := range back.GPUs {
		for _, tb := range g.TBs {
			for i := 1; i < len(tb.Steps); i++ {
				if tb.Steps[i].Epoch < tb.Steps[i-1].Epoch {
					t.Fatal("steps out of epoch order within a threadblock")
				}
				if tb.Steps[i].S != tb.Steps[i-1].S+1 {
					t.Fatal("step sequence numbers not consecutive")
				}
			}
		}
	}
}

func TestExportRejectsFractional(t *testing.T) {
	s := testSchedule(t)
	s.Sends[0].Fraction = 0.5
	if _, err := Export(s, "x"); err == nil {
		t.Fatal("expected error for fractional schedule")
	}
}

func TestRanksInvolved(t *testing.T) {
	if got := ranksInvolved(testSchedule(t)); got != 3 {
		t.Fatalf("ranks = %d, want 3", got)
	}
}
