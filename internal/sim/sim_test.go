package sim

import (
	"math"
	"testing"

	"teccl/internal/collective"
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

const (
	tau   = 1e-3
	chunk = 1e6 // 1 ms on a 1 GB/s link
)

func TestSingleHopTiming(t *testing.T) {
	tp := topo.Line(2, 1e9, 5e-4) // alpha = 0.5 ms
	d := collective.New(2, 1, chunk)
	d.Set(0, 0, 1)
	s := &schedule.Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 3, AllowCopy: true,
		Sends: []schedule.Send{{Src: 0, Chunk: 0, Link: tp.FindLink(0, 1), Epoch: 0, Fraction: 1}},
	}
	r, err := Run(s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// trans 1 ms + alpha 0.5 ms.
	if math.Abs(r.FinishTime-1.5e-3) > 1e-12 {
		t.Fatalf("finish = %g, want 1.5e-3", r.FinishTime)
	}
	if math.Abs(r.AlgoBandwidth-chunk/1.5e-3) > 1 {
		t.Fatalf("bw = %g", r.AlgoBandwidth)
	}
	if r.TotalBytes != chunk {
		t.Fatalf("bytes = %g", r.TotalBytes)
	}
}

func TestPipelinedRelay(t *testing.T) {
	// Two-hop relay: node1 forwards in epoch 1; with zero alpha finish
	// should be 2 transmissions = 2 ms.
	tp := topo.Line(3, 1e9, 0)
	d := collective.New(3, 1, chunk)
	d.Set(0, 0, 2)
	s := &schedule.Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 4, AllowCopy: true,
		Sends: []schedule.Send{
			{Src: 0, Chunk: 0, Link: tp.FindLink(0, 1), Epoch: 0, Fraction: 1},
			{Src: 0, Chunk: 0, Link: tp.FindLink(1, 2), Epoch: 1, Fraction: 1},
		},
	}
	r, err := Run(s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(r.FinishTime-2e-3) > 1e-12 {
		t.Fatalf("finish = %g, want 2e-3", r.FinishTime)
	}
}

func TestLinkSerialization(t *testing.T) {
	// Two chunks in the same epoch on one link serialize: finish 2 ms even
	// though both sends claim epoch 0.
	tp := topo.Line(2, 1e9, 0)
	d := collective.New(2, 2, chunk)
	d.Set(0, 0, 1)
	d.Set(0, 1, 1)
	l := tp.FindLink(0, 1)
	s := &schedule.Schedule{
		Topo: tp, Demand: d, Tau: 2e-3, NumEpochs: 2, AllowCopy: true,
		Sends: []schedule.Send{
			{Src: 0, Chunk: 0, Link: l, Epoch: 0, Fraction: 1},
			{Src: 0, Chunk: 1, Link: l, Epoch: 0, Fraction: 1},
		},
	}
	r, err := Run(s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(r.FinishTime-2e-3) > 1e-12 {
		t.Fatalf("finish = %g, want 2e-3", r.FinishTime)
	}
	if math.Abs(r.LinkBusy[l]-2e-3) > 1e-12 {
		t.Fatalf("busy = %g, want 2e-3", r.LinkBusy[l])
	}
}

func TestCausalityError(t *testing.T) {
	tp := topo.Line(3, 1e9, 0)
	d := collective.New(3, 1, chunk)
	d.Set(0, 0, 2)
	s := &schedule.Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 4, AllowCopy: true,
		Sends: []schedule.Send{
			// Node 1 forwards a chunk that never arrives there.
			{Src: 0, Chunk: 0, Link: tp.FindLink(1, 2), Epoch: 1, Fraction: 1},
		},
	}
	if _, err := Run(s); err == nil {
		t.Fatal("expected causality error")
	}
}

func TestDemandUnmetError(t *testing.T) {
	tp := topo.Line(3, 1e9, 0)
	d := collective.New(3, 1, chunk)
	d.Set(0, 0, 2)
	s := &schedule.Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 4, AllowCopy: true,
		Sends: []schedule.Send{
			{Src: 0, Chunk: 0, Link: tp.FindLink(0, 1), Epoch: 0, Fraction: 1},
		},
	}
	if _, err := Run(s); err == nil {
		t.Fatal("expected demand error")
	}
}

func TestFractionalAccumulation(t *testing.T) {
	// Chunk delivered as two halves; destination finishes when the second
	// half lands.
	tp := topo.Line(2, 1e9, 0)
	d := collective.New(2, 1, chunk)
	d.Set(0, 0, 1)
	l := tp.FindLink(0, 1)
	s := &schedule.Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 4, AllowCopy: false,
		Sends: []schedule.Send{
			{Src: 0, Chunk: 0, Link: l, Epoch: 0, Fraction: 0.5},
			{Src: 0, Chunk: 0, Link: l, Epoch: 2, Fraction: 0.5},
		},
	}
	r, err := Run(s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Second half starts at epoch 2 (2 ms), 0.5 ms transmission.
	if math.Abs(r.FinishTime-2.5e-3) > 1e-12 {
		t.Fatalf("finish = %g, want 2.5e-3", r.FinishTime)
	}
}

func TestNoCopyOverdraw(t *testing.T) {
	tp := topo.FullMesh(3, 1e9, 0)
	d := collective.New(3, 1, chunk)
	d.Set(0, 0, 1)
	d.Set(0, 0, 2)
	s := &schedule.Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 3, AllowCopy: false,
		Sends: []schedule.Send{
			{Src: 0, Chunk: 0, Link: tp.FindLink(0, 1), Epoch: 0, Fraction: 1},
			{Src: 0, Chunk: 0, Link: tp.FindLink(0, 2), Epoch: 0, Fraction: 1},
		},
	}
	if _, err := Run(s); err == nil {
		t.Fatal("expected no-copy overdraw error")
	}
	s.AllowCopy = true
	if _, err := Run(s); err != nil {
		t.Fatalf("copy-enabled run: %v", err)
	}
}

func TestAlphaPipeliningBeatsBarrier(t *testing.T) {
	// The Figure 1a point: with per-chunk pipelining, alpha is paid once
	// per link in the steady state, not once per chunk per step.
	tp := topo.Line(2, 1e9, 2e-3) // alpha = 2 epochs
	d := collective.New(2, 3, chunk)
	for c := 0; c < 3; c++ {
		d.Set(0, c, 1)
	}
	l := tp.FindLink(0, 1)
	s := &schedule.Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 8, AllowCopy: true,
		Sends: []schedule.Send{
			{Src: 0, Chunk: 0, Link: l, Epoch: 0, Fraction: 1},
			{Src: 0, Chunk: 1, Link: l, Epoch: 1, Fraction: 1},
			{Src: 0, Chunk: 2, Link: l, Epoch: 2, Fraction: 1},
		},
	}
	r, err := Run(s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Last chunk: starts at 2 ms, trans 1 ms, alpha 2 ms -> 5 ms total;
	// a barrier design would pay (1+2)*3 = 9 ms.
	if math.Abs(r.FinishTime-5e-3) > 1e-12 {
		t.Fatalf("finish = %g, want 5e-3", r.FinishTime)
	}
}

func TestRunOnDifferentAlpha(t *testing.T) {
	// Solve-side topology has alpha 0; execution topology has alpha 1 ms.
	solveTopo := topo.Line(2, 1e9, 0)
	realTopo := topo.Line(2, 1e9, 1e-3)
	d := collective.New(2, 1, chunk)
	d.Set(0, 0, 1)
	s := &schedule.Schedule{
		Topo: solveTopo, Demand: d, Tau: tau, NumEpochs: 2, AllowCopy: true,
		Sends: []schedule.Send{{Src: 0, Chunk: 0, Link: solveTopo.FindLink(0, 1), Epoch: 0, Fraction: 1}},
	}
	r0, err := Run(s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r1, err := RunOn(s, realTopo)
	if err != nil {
		t.Fatalf("RunOn: %v", err)
	}
	if math.Abs(r1.FinishTime-r0.FinishTime-1e-3) > 1e-12 {
		t.Fatalf("alpha not applied: %g vs %g", r1.FinishTime, r0.FinishTime)
	}
	// Shape mismatch is rejected.
	if _, err := RunOn(s, topo.Line(3, 1e9, 0)); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestDestFinishPerNode(t *testing.T) {
	tp := topo.FullMesh(3, 1e9, 0)
	d := collective.New(3, 1, chunk)
	d.Set(0, 0, 1)
	d.Set(0, 0, 2)
	s := &schedule.Schedule{
		Topo: tp, Demand: d, Tau: tau, NumEpochs: 3, AllowCopy: true,
		Sends: []schedule.Send{
			{Src: 0, Chunk: 0, Link: tp.FindLink(0, 1), Epoch: 0, Fraction: 1},
			{Src: 0, Chunk: 0, Link: tp.FindLink(0, 2), Epoch: 1, Fraction: 1},
		},
	}
	r, err := Run(s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(r.DestFinish) != 2 {
		t.Fatalf("DestFinish has %d entries, want 2", len(r.DestFinish))
	}
	if !(r.DestFinish[1] < r.DestFinish[2]) {
		t.Fatalf("node1 (%g) should finish before node2 (%g)", r.DestFinish[1], r.DestFinish[2])
	}
}
