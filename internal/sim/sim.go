// Package sim executes collective schedules in continuous time under the
// α-β cost model: a send of S bytes on a link with capacity C and latency
// α occupies the link for S/C seconds and lands α seconds after its
// transmission completes. The paper computes its transfer-time and
// algorithmic-bandwidth numbers from schedules in exactly this way (§6
// "Platform"); the simulator also independently cross-checks causality,
// complementing schedule.Validate's epoch-level checks.
package sim

import (
	"fmt"
	"math"
	"sort"

	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// Result reports the continuous-time execution of a schedule.
type Result struct {
	// FinishTime is the time (seconds) the last demanded chunk lands.
	FinishTime float64
	// AlgoBandwidth is max-output-buffer / FinishTime (TACCL's metric).
	AlgoBandwidth float64
	// TotalBytes is the total bytes transmitted.
	TotalBytes float64
	// LinkBusy maps each used link to the seconds it spent transmitting.
	LinkBusy map[topo.LinkID]float64
	// DestFinish is the per-destination time its full demand landed,
	// keyed by node ID (only destinations with demand appear).
	DestFinish map[int]float64
}

// arrivalList tracks cumulative fraction arrivals of one chunk at a node.
type arrivalList struct {
	times []float64 // sorted event times
	fracs []float64 // fraction landing at each time
	total float64
}

func (a *arrivalList) add(t, f float64) {
	// Arrival times are appended in nondecreasing processing order per
	// epoch, but different links can interleave; insert sorted.
	i := sort.SearchFloat64s(a.times, t)
	a.times = append(a.times, 0)
	a.fracs = append(a.fracs, 0)
	copy(a.times[i+1:], a.times[i:])
	copy(a.fracs[i+1:], a.fracs[i:])
	a.times[i] = t
	a.fracs[i] = f
	a.total += f
}

// timeAtFraction returns the earliest time the cumulative arrived fraction
// reaches f, or +Inf if it never does.
func (a *arrivalList) timeAtFraction(f float64) float64 {
	if f <= 1e-12 {
		return 0
	}
	var cum float64
	for i, t := range a.times {
		cum += a.fracs[i]
		if cum >= f-1e-9 {
			return t
		}
	}
	return math.Inf(1)
}

// Run executes the schedule in continuous time. It returns an error if a
// send would have to begin before its chunk fraction is present at the
// sending node (a causality failure the epoch model missed) or if the
// demand is not fully delivered.
func Run(s *schedule.Schedule) (*Result, error) {
	t := s.Topo
	d := s.Demand
	nC := d.NumChunks()
	key := func(src, c int) int { return src*nC + c }

	sends := append([]schedule.Send(nil), s.Sends...)
	sort.Slice(sends, func(i, j int) bool {
		if sends[i].Epoch != sends[j].Epoch {
			return sends[i].Epoch < sends[j].Epoch
		}
		return sends[i].Link < sends[j].Link
	})

	avail := map[[2]int]*arrivalList{} // (node, chunkKey) -> arrivals
	at := func(node, k int) *arrivalList {
		a := avail[[2]int{node, k}]
		if a == nil {
			a = &arrivalList{}
			avail[[2]int{node, k}] = a
		}
		return a
	}
	// Origin sources hold their chunks at time 0.
	for src := 0; src < d.NumNodes(); src++ {
		for c := 0; c < nC; c++ {
			if d.SourceHasChunk(src, c) {
				at(src, key(src, c)).add(0, 1)
			}
		}
	}

	linkFree := map[topo.LinkID]float64{}
	linkBusy := map[topo.LinkID]float64{}
	sentFrom := map[[2]int]float64{} // no-copy accounting
	var totalBytes float64

	for i, snd := range sends {
		l := t.Link(snd.Link)
		node := int(l.Src)
		k := key(snd.Src, snd.Chunk)

		// When is the fraction available at the sender?
		need := snd.Fraction
		if !s.AllowCopy {
			need += sentFrom[[2]int{node, k}]
		}
		ready := at(node, k).timeAtFraction(need)
		if math.IsInf(ready, 1) {
			return nil, fmt.Errorf("send %d: node %d never holds %.3f of chunk (%d,%d)",
				i, node, need, snd.Src, snd.Chunk)
		}

		epochStart := float64(snd.Epoch) * s.Tau
		start := math.Max(epochStart, math.Max(ready, linkFree[snd.Link]))
		trans := snd.Fraction * d.ChunkBytes / l.Capacity
		linkFree[snd.Link] = start + trans
		linkBusy[snd.Link] += trans
		land := start + trans + l.Alpha
		totalBytes += snd.Fraction * d.ChunkBytes

		at(int(l.Dst), k).add(land, snd.Fraction)
		if !s.AllowCopy {
			sentFrom[[2]int{node, k}] += snd.Fraction
		}
	}

	// Demand satisfaction and finish times.
	res := &Result{
		TotalBytes: totalBytes,
		LinkBusy:   linkBusy,
		DestFinish: map[int]float64{},
	}
	for dst := 0; dst < d.NumNodes(); dst++ {
		finish := 0.0
		has := false
		for src := 0; src < d.NumNodes(); src++ {
			for c := 0; c < nC; c++ {
				if !d.Wants(src, c, dst) {
					continue
				}
				has = true
				ft := at(dst, key(src, c)).timeAtFraction(1)
				if math.IsInf(ft, 1) {
					return nil, fmt.Errorf("demand unmet: dst %d never receives chunk (%d,%d)", dst, src, c)
				}
				if ft > finish {
					finish = ft
				}
			}
		}
		if has {
			res.DestFinish[dst] = finish
			if finish > res.FinishTime {
				res.FinishTime = finish
			}
		}
	}
	if res.FinishTime > 0 {
		res.AlgoBandwidth = d.MaxOutputBufferBytes() / res.FinishTime
	}
	return res, nil
}

// RunOn executes the schedule against a different topology with the same
// link IDs (e.g. the real topology after solving on an α-zeroed copy, as
// the Figure 2 experiment requires). The schedule itself is unchanged.
func RunOn(s *schedule.Schedule, t *topo.Topology) (*Result, error) {
	if t.NumLinks() != s.Topo.NumLinks() || t.NumNodes() != s.Topo.NumNodes() {
		return nil, fmt.Errorf("sim: topology shape mismatch (%d/%d links, %d/%d nodes)",
			t.NumLinks(), s.Topo.NumLinks(), t.NumNodes(), s.Topo.NumNodes())
	}
	clone := *s
	clone.Topo = t
	return Run(&clone)
}
