package sim

import (
	"math"
	"testing"

	"teccl/internal/collective"
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

func TestKappaLinkTiming(t *testing.T) {
	// A chunk twice the epoch size on a link: transmission spans 2 ms even
	// though the schedule uses 1 ms epochs (Appendix F semantics).
	tp := topo.Line(2, 1e9, 0)
	d := collective.New(2, 1, 2e6)
	d.Set(0, 0, 1)
	s := &schedule.Schedule{
		Topo: tp, Demand: d, Tau: 1e-3, NumEpochs: 4, AllowCopy: true,
		EpochsPerChunk: []int{2, 2},
		Sends: []schedule.Send{
			{Src: 0, Chunk: 0, Link: tp.FindLink(0, 1), Epoch: 0, Fraction: 1},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	r, err := Run(s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(r.FinishTime-2e-3) > 1e-12 {
		t.Fatalf("finish = %g, want 2e-3", r.FinishTime)
	}
}

func TestLinkBusyAccounting(t *testing.T) {
	tp := topo.FullMesh(3, 1e9, 0)
	d := collective.New(3, 1, 1e6)
	d.Set(0, 0, 1)
	d.Set(0, 0, 2)
	l01 := tp.FindLink(0, 1)
	l02 := tp.FindLink(0, 2)
	s := &schedule.Schedule{
		Topo: tp, Demand: d, Tau: 1e-3, NumEpochs: 2, AllowCopy: true,
		Sends: []schedule.Send{
			{Src: 0, Chunk: 0, Link: l01, Epoch: 0, Fraction: 1},
			{Src: 0, Chunk: 0, Link: l02, Epoch: 0, Fraction: 1},
		},
	}
	r, err := Run(s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(r.LinkBusy) != 2 {
		t.Fatalf("busy links = %d, want 2", len(r.LinkBusy))
	}
	for l, busy := range r.LinkBusy {
		if math.Abs(busy-1e-3) > 1e-12 {
			t.Fatalf("link %d busy %g, want 1e-3", l, busy)
		}
	}
	if r.TotalBytes != 2e6 {
		t.Fatalf("bytes = %g", r.TotalBytes)
	}
}

func TestLateEpochIdleGap(t *testing.T) {
	// A send scheduled at epoch 5 waits for its epoch even when the link
	// is idle — the simulator honors the schedule, not earliest-start.
	tp := topo.Line(2, 1e9, 0)
	d := collective.New(2, 1, 1e6)
	d.Set(0, 0, 1)
	s := &schedule.Schedule{
		Topo: tp, Demand: d, Tau: 1e-3, NumEpochs: 8, AllowCopy: true,
		Sends: []schedule.Send{
			{Src: 0, Chunk: 0, Link: tp.FindLink(0, 1), Epoch: 5, Fraction: 1},
		},
	}
	r, err := Run(s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(r.FinishTime-6e-3) > 1e-12 {
		t.Fatalf("finish = %g, want 6e-3", r.FinishTime)
	}
}

func TestZeroByteResultFields(t *testing.T) {
	tp := topo.Line(2, 1e9, 0)
	d := collective.New(2, 1, 1e6) // no demands set
	s := &schedule.Schedule{Topo: tp, Demand: d, Tau: 1e-3, NumEpochs: 1, AllowCopy: true}
	r, err := Run(s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.FinishTime != 0 || r.TotalBytes != 0 || len(r.DestFinish) != 0 {
		t.Fatalf("empty schedule produced non-zero result: %+v", r)
	}
}
