// Package topo models GPU interconnect topologies for collective
// communication optimization: directed graphs of GPU and switch nodes
// whose links carry a capacity (bytes/second) and a fixed latency α
// (seconds), following the α-β cost model of Hockney that TE-CCL and its
// baselines all use.
package topo

import (
	"encoding/json"
	"fmt"
	"math"
)

// NodeID identifies a node within a Topology.
type NodeID int32

// LinkID identifies a directed link within a Topology.
type LinkID int32

// Node is a GPU or a switch.
type Node struct {
	Name   string `json:"name"`
	Switch bool   `json:"switch,omitempty"`
}

// Link is a unidirectional connection. Capacity is in bytes per second;
// Alpha is the fixed per-transfer latency in seconds.
type Link struct {
	Src      NodeID  `json:"src"`
	Dst      NodeID  `json:"dst"`
	Capacity float64 `json:"capacity"`
	Alpha    float64 `json:"alpha"`
}

// Topology is a directed graph of nodes and links. The zero value is an
// empty topology ready for use.
//
// A topology may carry churn state: links marked down (see ApplyDelta)
// keep their ID and metadata — so schedules and deltas stated against
// the original IDs stay meaningful — but are removed from the adjacency
// lists and skipped by every aggregate (shortest paths, capacity
// extrema), as if the wire were unplugged.
type Topology struct {
	Name  string
	nodes []Node
	links []Link
	out   [][]LinkID
	in    [][]LinkID
	// down marks links removed by ApplyDelta; nil when no link is down.
	down []bool
}

// New returns an empty topology with the given name.
func New(name string) *Topology { return &Topology{Name: name} }

// AddNode adds a node and returns its ID.
func (t *Topology) AddNode(name string, isSwitch bool) NodeID {
	t.nodes = append(t.nodes, Node{Name: name, Switch: isSwitch})
	t.out = append(t.out, nil)
	t.in = append(t.in, nil)
	return NodeID(len(t.nodes) - 1)
}

// AddLink adds a unidirectional link and returns its ID.
func (t *Topology) AddLink(src, dst NodeID, capacity, alpha float64) LinkID {
	if src == dst {
		panic(fmt.Sprintf("topo: self-loop on node %d", src))
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("topo: non-positive capacity %g on link %d->%d", capacity, src, dst))
	}
	t.links = append(t.links, Link{Src: src, Dst: dst, Capacity: capacity, Alpha: alpha})
	id := LinkID(len(t.links) - 1)
	t.out[src] = append(t.out[src], id)
	t.in[dst] = append(t.in[dst], id)
	return id
}

// AddDuplex adds a pair of opposite links with identical parameters.
func (t *Topology) AddDuplex(a, b NodeID, capacity, alpha float64) (LinkID, LinkID) {
	return t.AddLink(a, b, capacity, alpha), t.AddLink(b, a, capacity, alpha)
}

// NumNodes reports the node count.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumLinks reports the directed link count.
func (t *Topology) NumLinks() int { return len(t.links) }

// Node returns node metadata.
func (t *Topology) Node(n NodeID) Node { return t.nodes[n] }

// Link returns link metadata.
func (t *Topology) Link(l LinkID) Link { return t.links[l] }

// IsSwitch reports whether n is a switch.
func (t *Topology) IsSwitch(n NodeID) bool { return t.nodes[n].Switch }

// LinkDown reports whether l has been taken down by ApplyDelta. Down
// links keep their ID and metadata but carry no traffic: they are absent
// from Out/In and skipped by shortest paths and capacity aggregates.
func (t *Topology) LinkDown(l LinkID) bool {
	return t.down != nil && t.down[l]
}

// Out returns the IDs of links leaving n.
func (t *Topology) Out(n NodeID) []LinkID { return t.out[n] }

// In returns the IDs of links entering n.
func (t *Topology) In(n NodeID) []LinkID { return t.in[n] }

// GPUs returns all non-switch node IDs in ID order.
func (t *Topology) GPUs() []NodeID {
	var out []NodeID
	for i := range t.nodes {
		if !t.nodes[i].Switch {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Switches returns all switch node IDs in ID order.
func (t *Topology) Switches() []NodeID {
	var out []NodeID
	for i := range t.nodes {
		if t.nodes[i].Switch {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// FindLink returns the ID of the first link src->dst, or -1.
func (t *Topology) FindLink(src, dst NodeID) LinkID {
	for _, l := range t.out[src] {
		if t.links[l].Dst == dst {
			return l
		}
	}
	return -1
}

// MinCapacity returns the smallest link capacity, or 0 for an empty graph.
func (t *Topology) MinCapacity() float64 {
	if len(t.links) == 0 {
		return 0
	}
	min := math.Inf(1)
	for i := range t.links {
		if t.LinkDown(LinkID(i)) {
			continue
		}
		if t.links[i].Capacity < min {
			min = t.links[i].Capacity
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// MaxCapacity returns the largest link capacity, or 0 for an empty graph.
func (t *Topology) MaxCapacity() float64 {
	max := 0.0
	for i := range t.links {
		if t.LinkDown(LinkID(i)) {
			continue
		}
		if t.links[i].Capacity > max {
			max = t.links[i].Capacity
		}
	}
	return max
}

// MaxAlpha returns the largest link α.
func (t *Topology) MaxAlpha() float64 {
	max := 0.0
	for i := range t.links {
		if t.LinkDown(LinkID(i)) {
			continue
		}
		if t.links[i].Alpha > max {
			max = t.links[i].Alpha
		}
	}
	return max
}

// Validate checks structural invariants: GPU-to-GPU reachability among all
// non-switch nodes (collectives need every GPU to reach every other) and
// positive capacities.
func (t *Topology) Validate() error {
	gpus := t.GPUs()
	if len(gpus) == 0 {
		return fmt.Errorf("topology %q has no GPU nodes", t.Name)
	}
	dist := t.FloydWarshall(func(l Link) float64 { return 1 })
	for _, a := range gpus {
		for _, b := range gpus {
			if a != b && math.IsInf(dist[a][b], 1) {
				return fmt.Errorf("topology %q: GPU %s cannot reach GPU %s",
					t.Name, t.nodes[a].Name, t.nodes[b].Name)
			}
		}
	}
	return nil
}

// FloydWarshall returns all-pairs shortest distances under the given link
// weight function. Unreachable pairs are +Inf; diagonal is 0.
func (t *Topology) FloydWarshall(weight func(Link) float64) [][]float64 {
	n := len(t.nodes)
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = math.Inf(1)
			}
		}
	}
	for i, l := range t.links {
		if t.LinkDown(LinkID(i)) {
			continue
		}
		w := weight(l)
		if w < dist[l.Src][l.Dst] {
			dist[l.Src][l.Dst] = w
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := dist[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if d := dik + dist[k][j]; d < dist[i][j] {
					dist[i][j] = d
				}
			}
		}
	}
	return dist
}

// AlphaDistances returns all-pairs shortest α-path distances, the edge
// weights the A* technique uses for its progress reward (Appendix D).
func (t *Topology) AlphaDistances() [][]float64 {
	return t.FloydWarshall(func(l Link) float64 { return l.Alpha })
}

// ReachableWithout returns the all-pairs reachability of the topology
// with the given node (and its links) removed: reach[s][d] reports
// whether d can be reached from s avoiding skip. Pairs that lose
// reachability identify traffic that must relay through skip, which
// epoch estimation uses to account for relay serialization (e.g. the
// shared IB switch between NDv2 chassis).
func (t *Topology) ReachableWithout(skip NodeID) [][]bool {
	n := len(t.nodes)
	reach := make([][]bool, n)
	queue := make([]NodeID, 0, n)
	for s := 0; s < n; s++ {
		reach[s] = make([]bool, n)
		if NodeID(s) == skip {
			continue
		}
		reach[s][s] = true
		queue = append(queue[:0], NodeID(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, lid := range t.out[u] {
				v := t.links[lid].Dst
				if v == skip || reach[s][v] {
					continue
				}
				reach[s][v] = true
				queue = append(queue, v)
			}
		}
	}
	return reach
}

// Clone returns an independent deep copy of t: node, link, adjacency,
// and down-state storage are all owned by the copy, so mutation of
// either side (AddNode, AddLink, ApplyDelta) never touches the other.
// Sessions snapshot their topology with Clone so a caller mutating its
// *Topology after NewPlanner cannot corrupt cached derived state.
func (t *Topology) Clone() *Topology {
	out := &Topology{
		Name:  t.Name,
		nodes: append([]Node(nil), t.nodes...),
		links: append([]Link(nil), t.links...),
		out:   make([][]LinkID, len(t.out)),
		in:    make([][]LinkID, len(t.in)),
	}
	for i := range t.out {
		out.out[i] = append([]LinkID(nil), t.out[i]...)
	}
	for i := range t.in {
		out.in[i] = append([]LinkID(nil), t.in[i]...)
	}
	if t.down != nil {
		out.down = append([]bool(nil), t.down...)
	}
	return out
}

// LinkScale is one multiplicative link edit of a Delta: the link's
// capacity is multiplied by Capacity (0 < Capacity; use Delta.LinksDown
// for an outright failure) and its α by Alpha (0 allowed: the latency
// vanishes). A zero-valued multiplier field means "leave unchanged", so
// partial literals like {Link: l, Capacity: 0.5} do what they look like.
type LinkScale struct {
	Link     LinkID
	Capacity float64
	Alpha    float64
}

// Delta describes topology churn: links lost outright, nodes lost (all
// their links go down), links degraded or slowed by scaling, and
// structural growth (new nodes and links appended to the cluster).
// Deltas are applied immutably via ApplyDelta; IDs refer to the
// topology the delta is applied to, except that AddLinks may also name
// the nodes added by the same delta (IDs continue past the current
// node count, in AddNodes order).
type Delta struct {
	// LinksDown lists links that failed.
	LinksDown []LinkID
	// NodesDown lists nodes that failed; every link touching one goes
	// down. The node itself remains (IDs stay stable) but is isolated.
	NodesDown []NodeID
	// Scale lists per-link capacity/α multipliers — bandwidth
	// degradation and straggler slowdown.
	Scale []LinkScale
	// AddNodes appends new nodes; they receive the next NodeIDs in
	// order, so existing IDs stay stable.
	AddNodes []Node
	// AddLinks appends new links (next LinkIDs in order). Endpoints may
	// be existing nodes or nodes added by this delta. A link that
	// duplicates a live existing link, self-loops, or has non-positive
	// capacity or negative α is rejected.
	AddLinks []Link
}

// Empty reports whether the delta edits nothing.
func (d Delta) Empty() bool {
	return len(d.LinksDown) == 0 && len(d.NodesDown) == 0 && len(d.Scale) == 0 &&
		len(d.AddNodes) == 0 && len(d.AddLinks) == 0
}

// Grows reports whether the delta structurally grows the topology.
func (d Delta) Grows() bool {
	return len(d.AddNodes) > 0 || len(d.AddLinks) > 0
}

// ApplyDelta returns a new topology with the delta applied; t itself is
// never mutated. Downed links keep their ID and metadata but leave the
// adjacency lists (Out/In) and every aggregate, so link and node IDs —
// and therefore schedules and further deltas — stay aligned between the
// two topologies. Scaling a down link is allowed and has no effect
// until the link's metadata is read. An invalid delta (unknown IDs,
// negative scale factors) returns an error and no topology.
func (t *Topology) ApplyDelta(d Delta) (*Topology, error) {
	for _, l := range d.LinksDown {
		if int(l) < 0 || int(l) >= len(t.links) {
			return nil, fmt.Errorf("topo: delta downs unknown link %d", l)
		}
	}
	for _, n := range d.NodesDown {
		if int(n) < 0 || int(n) >= len(t.nodes) {
			return nil, fmt.Errorf("topo: delta downs unknown node %d", n)
		}
	}
	for _, s := range d.Scale {
		if int(s.Link) < 0 || int(s.Link) >= len(t.links) {
			return nil, fmt.Errorf("topo: delta scales unknown link %d", s.Link)
		}
		if s.Capacity < 0 || s.Alpha < 0 {
			return nil, fmt.Errorf("topo: delta scales link %d by negative factor", s.Link)
		}
	}
	// Growth validation happens before any mutation: a malformed delta
	// returns an error and leaves t (and any session holding it) intact.
	grownNodes := len(t.nodes) + len(d.AddNodes)
	for i, lk := range d.AddLinks {
		if int(lk.Src) < 0 || int(lk.Src) >= grownNodes || int(lk.Dst) < 0 || int(lk.Dst) >= grownNodes {
			return nil, fmt.Errorf("topo: delta adds link %d with unknown endpoint (%d→%d)", i, lk.Src, lk.Dst)
		}
		if lk.Src == lk.Dst {
			return nil, fmt.Errorf("topo: delta adds self-loop link %d on node %d", i, lk.Src)
		}
		if lk.Capacity <= 0 {
			return nil, fmt.Errorf("topo: delta adds link %d with non-positive capacity %g", i, lk.Capacity)
		}
		if lk.Alpha < 0 {
			return nil, fmt.Errorf("topo: delta adds link %d with negative alpha %g", i, lk.Alpha)
		}
		for j := 0; j < i; j++ {
			if d.AddLinks[j].Src == lk.Src && d.AddLinks[j].Dst == lk.Dst {
				return nil, fmt.Errorf("topo: delta adds duplicate link %d→%d", lk.Src, lk.Dst)
			}
		}
		for l := range t.links {
			if !t.LinkDown(LinkID(l)) && t.links[l].Src == lk.Src && t.links[l].Dst == lk.Dst {
				return nil, fmt.Errorf("topo: delta adds link %d→%d duplicating live link %d", lk.Src, lk.Dst, l)
			}
		}
	}

	out := t.Clone()
	for _, n := range d.AddNodes {
		out.nodes = append(out.nodes, n)
		out.out = append(out.out, nil)
		out.in = append(out.in, nil)
	}
	if len(d.AddLinks) > 0 {
		out.links = append(out.links, d.AddLinks...)
		if out.down != nil {
			out.down = append(out.down, make([]bool, len(d.AddLinks))...)
		}
	}
	if out.down == nil {
		out.down = make([]bool, len(out.links))
	}
	for _, l := range d.LinksDown {
		out.down[l] = true
	}
	for _, n := range d.NodesDown {
		for l := range out.links {
			if out.links[l].Src == n || out.links[l].Dst == n {
				out.down[l] = true
			}
		}
	}
	for _, s := range d.Scale {
		lk := &out.links[s.Link]
		if s.Capacity != 0 {
			lk.Capacity *= s.Capacity
		}
		if s.Alpha != 0 {
			lk.Alpha *= s.Alpha
		}
	}

	// Rebuild adjacency without the downed links, so every
	// adjacency-driven consumer (solvers, greedy bounds, baselines,
	// reachability) ignores them for free.
	for n := range out.out {
		out.out[n] = out.out[n][:0]
		out.in[n] = out.in[n][:0]
	}
	anyDown := false
	for l := range out.links {
		if out.down[l] {
			anyDown = true
			continue
		}
		lk := out.links[l]
		out.out[lk.Src] = append(out.out[lk.Src], LinkID(l))
		out.in[lk.Dst] = append(out.in[lk.Dst], LinkID(l))
	}
	if !anyDown {
		out.down = nil
	}
	return out, nil
}

// topologyJSON is the serialized form.
type topologyJSON struct {
	Name  string `json:"name"`
	Nodes []Node `json:"nodes"`
	Links []Link `json:"links"`
	// Down lists the IDs of links taken down by ApplyDelta.
	Down []LinkID `json:"down,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (t *Topology) MarshalJSON() ([]byte, error) {
	var down []LinkID
	for l := range t.links {
		if t.LinkDown(LinkID(l)) {
			down = append(down, LinkID(l))
		}
	}
	return json.Marshal(topologyJSON{Name: t.Name, Nodes: t.nodes, Links: t.links, Down: down})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Topology) UnmarshalJSON(data []byte) error {
	var tj topologyJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return err
	}
	*t = Topology{Name: tj.Name}
	for _, n := range tj.Nodes {
		t.AddNode(n.Name, n.Switch)
	}
	for _, l := range tj.Links {
		if int(l.Src) >= len(t.nodes) || int(l.Dst) >= len(t.nodes) || l.Src < 0 || l.Dst < 0 {
			return fmt.Errorf("topo: link %d->%d references missing node", l.Src, l.Dst)
		}
		t.AddLink(l.Src, l.Dst, l.Capacity, l.Alpha)
	}
	if len(tj.Down) > 0 {
		applied, err := t.ApplyDelta(Delta{LinksDown: tj.Down})
		if err != nil {
			return err
		}
		*t = *applied
	}
	return nil
}

// ZeroAlpha returns a copy of t with every link's α set to zero, keeping
// link IDs aligned so schedules transfer between the two (Figure 2's
// α-blind solve, SCCL's barrier model). Down-link state carries over.
func ZeroAlpha(t *Topology) *Topology {
	out := t.Clone()
	out.Name = t.Name + "-a0"
	for i := range out.links {
		out.links[i].Alpha = 0
	}
	return out
}
