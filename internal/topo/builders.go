package topo

import "fmt"

// Capacities and latencies used by the paper's public topologies (§6 and
// Appendix H). GB/s here means 1e9 bytes per second.
const (
	GB = 1e9
	us = 1e-6

	// NDv2 / DGX1 (Figure 11).
	ndv2FastCap   = 50 * GB   // double NVLink
	ndv2SlowCap   = 25 * GB   // single NVLink
	ndv2NVAlpha   = 0.7 * us  // NVLink α
	ndv2IBCap     = 12.5 * GB // GPU <-> IB switch
	ndv2IBAlpha   = 1.3 * us
	dgx2NVCap     = 125 * GB // DGX2 GPU <-> NVSwitch (Figure 12)
	dgx2NVAlpha   = 0.35 * us
	dgx2XCap      = 12.5 * GB // DGX2 cross-chassis
	dgx2XAlpha    = 2.6 * us
	internalAlpha = 0.6 * us // Internal GPU-GPU α (§2, Figure 2 caption)
	internalSwA   = 0.75 * us
	internalCap   = 25 * GB   // synthetic stand-in, homogeneous (Fig. 8)
	internalSwCap = 12.5 * GB // synthetic stand-in
)

// dgx1Chassis adds one 8-GPU NVLink chassis (DGX1/NDv2 style: two quads of
// four GPUs, 16 bidirectional NVLinks = 32 directed edges) and returns the
// GPU IDs. Ring links within a quad are double NVLinks (50 GB/s), quad
// diagonals and cross-quad links are single (25 GB/s).
func dgx1Chassis(t *Topology, prefix string) []NodeID {
	g := make([]NodeID, 8)
	for i := range g {
		g[i] = t.AddNode(fmt.Sprintf("%sgpu%d", prefix, i), false)
	}
	type pair struct {
		a, b int
		fast bool
	}
	pairs := []pair{
		// Quad 0 ring (fast) and diagonals (slow).
		{0, 1, true}, {1, 3, true}, {3, 2, true}, {2, 0, true},
		{0, 3, false}, {1, 2, false},
		// Quad 1 ring and diagonals.
		{4, 5, true}, {5, 7, true}, {7, 6, true}, {6, 4, true},
		{4, 7, false}, {5, 6, false},
		// Cross-quad NVLinks.
		{0, 4, false}, {1, 5, false}, {2, 6, false}, {3, 7, false},
	}
	for _, p := range pairs {
		cap := ndv2SlowCap
		if p.fast {
			cap = ndv2FastCap
		}
		t.AddDuplex(g[p.a], g[p.b], cap, ndv2NVAlpha)
	}
	return g
}

// DGX1 returns a single 8-GPU DGX1 chassis (no switch), the topology SCCL
// evaluates on.
func DGX1() *Topology {
	t := New("dgx1")
	dgx1Chassis(t, "")
	return t
}

// NDv2 returns an Azure NDv2-style topology with the given number of
// 8-GPU chassis. With more than one chassis, GPU0 and GPU1 of each chassis
// connect to a shared InfiniBand switch (12.5 GB/s, α = 1.3 µs), matching
// Figure 11.
func NDv2(chassis int) *Topology {
	t := New(fmt.Sprintf("ndv2-%dc", chassis))
	var sw NodeID = -1
	if chassis > 1 {
		sw = t.AddNode("ibswitch", true)
	}
	for c := 0; c < chassis; c++ {
		g := dgx1Chassis(t, fmt.Sprintf("c%d-", c))
		if sw >= 0 {
			t.AddDuplex(g[0], sw, ndv2IBCap, ndv2IBAlpha)
			t.AddDuplex(g[1], sw, ndv2IBCap, ndv2IBAlpha)
		}
	}
	return t
}

// DGX2 returns a DGX2-style topology with the given number of chassis.
// Each chassis is 16 GPUs plus an NVSwitch (17 nodes, 32 directed edges,
// per Table 2); GPUs connect to the local NVSwitch at 125 GB/s with
// α = 0.35 µs. Across chassis, the first 8 GPUs of each chassis send to
// the last 8 GPUs of every other chassis over 12.5 GB/s links with
// α = 2.6 µs, matching Figure 12.
func DGX2(chassis int) *Topology {
	t := New(fmt.Sprintf("dgx2-%dc", chassis))
	gpus := make([][]NodeID, chassis)
	for c := 0; c < chassis; c++ {
		sw := t.AddNode(fmt.Sprintf("c%d-nvswitch", c), true)
		gpus[c] = make([]NodeID, 16)
		for i := 0; i < 16; i++ {
			g := t.AddNode(fmt.Sprintf("c%d-gpu%d", c, i), false)
			gpus[c][i] = g
			t.AddDuplex(g, sw, dgx2NVCap, dgx2NVAlpha)
		}
	}
	for a := 0; a < chassis; a++ {
		for b := 0; b < chassis; b++ {
			if a == b {
				continue
			}
			// Sender GPU i of chassis a feeds receiver GPU 8+i of b.
			for i := 0; i < 8; i++ {
				t.AddLink(gpus[a][i], gpus[b][8+i], dgx2XCap, dgx2XAlpha)
			}
		}
	}
	return t
}

// Internal1 returns the synthetic stand-in for the paper's proprietary
// "Internal 1" topology: 4 GPUs and 8 directed GPU-GPU edges per chassis
// (a bidirectional ring), every GPU also connected to a shared switch.
// Links are near-homogeneous, matching the Figure 8 observation. α values
// follow §2: 0.6 µs GPU-GPU, 0.75 µs GPU-switch.
func Internal1(chassis int) *Topology {
	t := New(fmt.Sprintf("internal1-%dc", chassis))
	sw := t.AddNode("switch", true)
	for c := 0; c < chassis; c++ {
		g := make([]NodeID, 4)
		for i := range g {
			g[i] = t.AddNode(fmt.Sprintf("c%d-gpu%d", c, i), false)
		}
		for i := range g {
			t.AddDuplex(g[i], g[(i+1)%4], internalCap, internalAlpha)
		}
		for i := range g {
			t.AddDuplex(g[i], sw, internalSwCap, internalSwA)
		}
	}
	return t
}

// Internal1NoAlpha is Internal1 with all α set to zero, used by the copy
// and buffer microbenchmarks (Figures 7 and 9).
func Internal1NoAlpha(chassis int) *Topology {
	t := Internal1(chassis)
	t.Name = t.Name + "-a0"
	for i := range t.links {
		t.links[i].Alpha = 0
	}
	return t
}

// Internal2 returns the synthetic stand-in for the paper's proprietary
// "Internal 2" topology: 2 GPUs and 2 directed GPU-GPU edges per chassis
// (one bidirectional pair), both GPUs connected to a shared switch.
func Internal2(chassis int) *Topology {
	t := New(fmt.Sprintf("internal2-%dc", chassis))
	sw := t.AddNode("switch", true)
	for c := 0; c < chassis; c++ {
		a := t.AddNode(fmt.Sprintf("c%d-gpu0", c), false)
		b := t.AddNode(fmt.Sprintf("c%d-gpu1", c), false)
		t.AddDuplex(a, b, internalCap, internalAlpha)
		t.AddDuplex(a, sw, internalSwCap, internalSwA)
		t.AddDuplex(b, sw, internalSwCap, internalSwA)
	}
	return t
}

// Ring returns n GPUs in a bidirectional ring.
func Ring(n int, capacity, alpha float64) *Topology {
	t := New(fmt.Sprintf("ring-%d", n))
	g := make([]NodeID, n)
	for i := range g {
		g[i] = t.AddNode(fmt.Sprintf("gpu%d", i), false)
	}
	for i := range g {
		t.AddDuplex(g[i], g[(i+1)%n], capacity, alpha)
	}
	return t
}

// Line returns n GPUs in a bidirectional path.
func Line(n int, capacity, alpha float64) *Topology {
	t := New(fmt.Sprintf("line-%d", n))
	g := make([]NodeID, n)
	for i := range g {
		g[i] = t.AddNode(fmt.Sprintf("gpu%d", i), false)
		if i > 0 {
			t.AddDuplex(g[i-1], g[i], capacity, alpha)
		}
	}
	return t
}

// FullMesh returns n fully connected GPUs.
func FullMesh(n int, capacity, alpha float64) *Topology {
	t := New(fmt.Sprintf("mesh-%d", n))
	g := make([]NodeID, n)
	for i := range g {
		g[i] = t.AddNode(fmt.Sprintf("gpu%d", i), false)
	}
	for i := range g {
		for j := range g {
			if i != j {
				t.AddLink(g[i], g[j], capacity, alpha)
			}
		}
	}
	return t
}

// Star returns n GPUs all connected through one copy-capable switch.
func Star(n int, capacity, alpha float64) *Topology {
	t := New(fmt.Sprintf("star-%d", n))
	sw := t.AddNode("switch", true)
	for i := 0; i < n; i++ {
		g := t.AddNode(fmt.Sprintf("gpu%d", i), false)
		t.AddDuplex(g, sw, capacity, alpha)
	}
	return t
}

// ndv2MiniChassis adds a 4-GPU quad (ring fast links + diagonals) and
// returns the GPU IDs.
func ndv2MiniChassis(t *Topology, prefix string) []NodeID {
	g := make([]NodeID, 4)
	for i := range g {
		g[i] = t.AddNode(fmt.Sprintf("%sgpu%d", prefix, i), false)
	}
	for i := range g {
		t.AddDuplex(g[i], g[(i+1)%4], ndv2FastCap, ndv2NVAlpha)
	}
	t.AddDuplex(g[0], g[2], ndv2SlowCap, ndv2NVAlpha)
	t.AddDuplex(g[1], g[3], ndv2SlowCap, ndv2NVAlpha)
	return g
}

// NDv2Mini is a laptop-scale stand-in for NDv2: the same hierarchical
// structure (fast NVLink quad per chassis, two GPUs per chassis uplinked
// to a shared InfiniBand switch with the NDv2 α and capacity) with 4 GPUs
// per chassis instead of 8. Used where the solver substrate cannot reach
// the full 8-GPU-per-chassis scale; see DESIGN.md substitution #3.
func NDv2Mini(chassis int) *Topology {
	t := New(fmt.Sprintf("ndv2mini-%dc", chassis))
	var sw NodeID = -1
	if chassis > 1 {
		sw = t.AddNode("ibswitch", true)
	}
	for c := 0; c < chassis; c++ {
		g := ndv2MiniChassis(t, fmt.Sprintf("c%d-", c))
		if sw >= 0 {
			t.AddDuplex(g[0], sw, ndv2IBCap, ndv2IBAlpha)
			t.AddDuplex(g[1], sw, ndv2IBCap, ndv2IBAlpha)
		}
	}
	return t
}

// DGX2Mini is a laptop-scale stand-in for DGX2: per chassis an NVSwitch
// with 4 GPUs at DGX2 NVLink speed, and cross-chassis links from the
// first 2 GPUs of each chassis to the last 2 of every other chassis at
// DGX2 cross-chassis speed (Figure 12's structure at 1/4 scale).
func DGX2Mini(chassis int) *Topology {
	t := New(fmt.Sprintf("dgx2mini-%dc", chassis))
	gpus := make([][]NodeID, chassis)
	for c := 0; c < chassis; c++ {
		sw := t.AddNode(fmt.Sprintf("c%d-nvswitch", c), true)
		gpus[c] = make([]NodeID, 4)
		for i := 0; i < 4; i++ {
			g := t.AddNode(fmt.Sprintf("c%d-gpu%d", c, i), false)
			gpus[c][i] = g
			t.AddDuplex(g, sw, dgx2NVCap, dgx2NVAlpha)
		}
	}
	for a := 0; a < chassis; a++ {
		for b := 0; b < chassis; b++ {
			if a == b {
				continue
			}
			for i := 0; i < 2; i++ {
				t.AddLink(gpus[a][i], gpus[b][2+i], dgx2XCap, dgx2XAlpha)
			}
		}
	}
	return t
}
