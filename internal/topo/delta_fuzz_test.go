package topo

// Fuzz/property coverage for ApplyDelta — including the structural
// growth fields — and for JSON round-trips of grown topologies. The
// central invariants: an invalid delta errors without any observable
// mutation of the receiver, a valid delta grows/downs exactly what it
// says, and serialization preserves grown structure bit-for-bit.

import (
	"bytes"
	"encoding/json"
	"testing"
)

// deltaFromBytes decodes an arbitrary byte string into a Delta against
// t, deliberately spanning both valid and invalid edits: IDs one past
// the end, negative scales, self-loops, zero capacities, duplicate
// links. The fuzzer explores the acceptance boundary; the properties
// checked afterwards hold on both sides of it.
func deltaFromBytes(t *Topology, data []byte) Delta {
	var d Delta
	nL, nN := t.NumLinks(), t.NumNodes()
	added := 0
	for i := 0; i+2 < len(data); i += 3 {
		op, a, b := data[i]%6, int(data[i+1]), int(data[i+2])
		switch op {
		case 0:
			d.LinksDown = append(d.LinksDown, LinkID(a%(nL+2)-1))
		case 1:
			d.NodesDown = append(d.NodesDown, NodeID(a%(nN+2)-1))
		case 2:
			// Factors from -0.25 to ~7.7, hitting negative, zero (leave
			// unchanged), and valid ranges.
			d.Scale = append(d.Scale, LinkScale{
				Link:     LinkID(a%(nL+2) - 1),
				Capacity: float64(b)/32.0 - 0.25,
			})
		case 3:
			d.Scale = append(d.Scale, LinkScale{
				Link:  LinkID(a%(nL+2) - 1),
				Alpha: float64(b)/32.0 - 0.25,
			})
		case 4:
			d.AddNodes = append(d.AddNodes, Node{Name: "fz", Switch: a%2 == 1})
			added++
		case 5:
			span := nN + added + 1 // +1 reaches one past the grown end
			d.AddLinks = append(d.AddLinks, Link{
				Src:      NodeID(a % span),
				Dst:      NodeID(b % span),
				Capacity: float64(b%3) * 10e9, // 0 is invalid on purpose
				Alpha:    float64(a%3)*1e-6 - 1e-6,
			})
		}
	}
	return d
}

func FuzzApplyDelta(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0})                   // simple link down
	f.Add([]byte{4, 0, 0, 5, 8, 1})          // grow node + link onto it
	f.Add([]byte{5, 3, 3})                   // self-loop
	f.Add([]byte{2, 200, 0})                 // invalid link id scale
	f.Add([]byte{5, 1, 2, 5, 1, 2})          // duplicate added link
	f.Add([]byte{1, 9, 0, 3, 1, 200})        // node down + huge alpha
	f.Add([]byte{4, 1, 0, 4, 0, 0, 5, 9, 1}) // two nodes + cross link
	f.Fuzz(func(t *testing.T, data []byte) {
		tp := DGX1()
		pristine, err := json.Marshal(tp)
		if err != nil {
			t.Fatal(err)
		}
		d := deltaFromBytes(tp, data)
		out, err := tp.ApplyDelta(d)

		// Invariant 1: the receiver is immutable, success or failure.
		after, merr := json.Marshal(tp)
		if merr != nil {
			t.Fatal(merr)
		}
		if !bytes.Equal(pristine, after) {
			t.Fatalf("ApplyDelta mutated its receiver (delta %+v)", d)
		}
		if err != nil {
			if out != nil {
				t.Fatalf("error %v returned a topology", err)
			}
			return
		}

		// Invariant 2: growth is exactly what the delta declared.
		if out.NumNodes() != tp.NumNodes()+len(d.AddNodes) {
			t.Fatalf("node count %d, want %d", out.NumNodes(), tp.NumNodes()+len(d.AddNodes))
		}
		if out.NumLinks() != tp.NumLinks()+len(d.AddLinks) {
			t.Fatalf("link count %d, want %d", out.NumLinks(), tp.NumLinks()+len(d.AddLinks))
		}
		// Pre-existing node and link identities are stable.
		for n := 0; n < tp.NumNodes(); n++ {
			if out.Node(NodeID(n)).Name != tp.Node(NodeID(n)).Name {
				t.Fatalf("node %d renamed by delta", n)
			}
		}
		// Downed links carry no adjacency; live links appear exactly once.
		seen := make(map[LinkID]int)
		for n := 0; n < out.NumNodes(); n++ {
			for _, l := range out.Out(NodeID(n)) {
				seen[l]++
			}
		}
		for l := 0; l < out.NumLinks(); l++ {
			id := LinkID(l)
			want := 1
			if out.LinkDown(id) {
				want = 0
			}
			if seen[id] != want {
				t.Fatalf("link %d appears %d times in adjacency, want %d (down=%v)",
					l, seen[id], want, out.LinkDown(id))
			}
		}

		// Invariant 3: the grown/churned topology survives a JSON round
		// trip with structure, metadata, and down-state intact.
		blob, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		var back Topology
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumNodes() != out.NumNodes() || back.NumLinks() != out.NumLinks() {
			t.Fatal("round trip changed shape")
		}
		for l := 0; l < out.NumLinks(); l++ {
			id := LinkID(l)
			if back.LinkDown(id) != out.LinkDown(id) {
				t.Fatalf("down state of link %d lost in round trip", l)
			}
			a, b := back.Link(id), out.Link(id)
			if a.Src != b.Src || a.Dst != b.Dst || a.Capacity != b.Capacity || a.Alpha != b.Alpha {
				t.Fatalf("link %d metadata diverged: %+v vs %+v", l, a, b)
			}
		}
	})
}

// TestApplyDeltaGrowthValidation pins each growth rejection rule, and
// that growth composes with the legacy edits in one delta.
func TestApplyDeltaGrowthValidation(t *testing.T) {
	tp := DGX1()
	n := NodeID(tp.NumNodes())
	bad := []struct {
		name string
		d    Delta
	}{
		{"unknown src", Delta{AddLinks: []Link{{Src: n + 5, Dst: 0, Capacity: 1e9}}}},
		{"unknown dst", Delta{AddLinks: []Link{{Src: 0, Dst: -1, Capacity: 1e9}}}},
		{"self-loop", Delta{AddLinks: []Link{{Src: 2, Dst: 2, Capacity: 1e9}}}},
		{"zero capacity", Delta{AddLinks: []Link{{Src: n, Dst: 0}}, AddNodes: []Node{{Name: "x"}}}},
		{"negative alpha", Delta{AddLinks: []Link{{Src: 0, Dst: 1, Capacity: 1e9, Alpha: -1}}}},
		{"duplicate within delta", Delta{
			AddNodes: []Node{{Name: "x"}},
			AddLinks: []Link{{Src: n, Dst: 0, Capacity: 1e9}, {Src: n, Dst: 0, Capacity: 2e9}},
		}},
		{"duplicates live link", Delta{AddLinks: []Link{{
			Src: tp.Link(0).Src, Dst: tp.Link(0).Dst, Capacity: 1e9,
		}}}},
	}
	for _, tc := range bad {
		if _, err := tp.ApplyDelta(tc.d); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}

	// Replacing a downed link with a fresh one is legal growth: only
	// live duplicates are rejected.
	downed, err := tp.ApplyDelta(Delta{LinksDown: []LinkID{0}})
	if err != nil {
		t.Fatal(err)
	}
	lk := tp.Link(0)
	replaced, err := downed.ApplyDelta(Delta{AddLinks: []Link{{
		Src: lk.Src, Dst: lk.Dst, Capacity: lk.Capacity, Alpha: lk.Alpha,
	}}})
	if err != nil {
		t.Fatalf("re-provisioning a downed link's route should be legal: %v", err)
	}
	if replaced.NumLinks() != tp.NumLinks()+1 {
		t.Fatal("replacement link not appended")
	}

	// Growth composes with the legacy edits in a single delta, and the
	// added node participates in adjacency immediately.
	grown, err := tp.ApplyDelta(Delta{
		LinksDown: []LinkID{1},
		Scale:     []LinkScale{{Link: 2, Capacity: 0.5}},
		AddNodes:  []Node{{Name: "joiner"}},
		AddLinks: []Link{
			{Src: n, Dst: 0, Capacity: 5e9, Alpha: 1e-6},
			{Src: 0, Dst: n, Capacity: 5e9, Alpha: 1e-6},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(grown.Out(n)) != 1 || len(grown.In(n)) != 1 {
		t.Fatalf("joiner adjacency = out %d in %d, want 1/1", len(grown.Out(n)), len(grown.In(n)))
	}
	if !grown.LinkDown(1) {
		t.Fatal("legacy edit lost when combined with growth")
	}
	if got := grown.Link(2).Capacity; got != tp.Link(2).Capacity*0.5 {
		t.Fatalf("scale lost when combined with growth: %g", got)
	}
}
