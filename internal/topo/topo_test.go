package topo

import (
	"encoding/json"
	"math"
	"testing"
)

func TestAddNodesAndLinks(t *testing.T) {
	tp := New("t")
	a := tp.AddNode("a", false)
	b := tp.AddNode("b", false)
	l := tp.AddLink(a, b, 100, 1e-6)
	if tp.NumNodes() != 2 || tp.NumLinks() != 1 {
		t.Fatalf("counts: %d nodes %d links", tp.NumNodes(), tp.NumLinks())
	}
	lk := tp.Link(l)
	if lk.Src != a || lk.Dst != b || lk.Capacity != 100 || lk.Alpha != 1e-6 {
		t.Fatalf("link = %+v", lk)
	}
	if len(tp.Out(a)) != 1 || len(tp.In(b)) != 1 || len(tp.Out(b)) != 0 {
		t.Fatal("adjacency wrong")
	}
}

func TestAddDuplex(t *testing.T) {
	tp := New("t")
	a := tp.AddNode("a", false)
	b := tp.AddNode("b", false)
	tp.AddDuplex(a, b, 10, 0)
	if tp.NumLinks() != 2 {
		t.Fatalf("links = %d, want 2", tp.NumLinks())
	}
	if tp.FindLink(a, b) < 0 || tp.FindLink(b, a) < 0 {
		t.Fatal("duplex links missing")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp := New("t")
	a := tp.AddNode("a", false)
	tp.AddLink(a, a, 1, 0)
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp := New("t")
	a := tp.AddNode("a", false)
	b := tp.AddNode("b", false)
	tp.AddLink(a, b, 0, 0)
}

func TestGPUsAndSwitches(t *testing.T) {
	tp := Star(4, 10*GB, 1e-6)
	if got := len(tp.GPUs()); got != 4 {
		t.Fatalf("GPUs = %d, want 4", got)
	}
	if got := len(tp.Switches()); got != 1 {
		t.Fatalf("Switches = %d, want 1", got)
	}
	if !tp.IsSwitch(tp.Switches()[0]) {
		t.Fatal("switch not marked")
	}
}

func TestFloydWarshall(t *testing.T) {
	tp := Line(4, 10, 2e-6)
	d := tp.AlphaDistances()
	g := tp.GPUs()
	if got := d[g[0]][g[3]]; math.Abs(got-6e-6) > 1e-12 {
		t.Fatalf("alpha dist 0->3 = %g, want 6e-6", got)
	}
	if d[g[1]][g[1]] != 0 {
		t.Fatal("diagonal not zero")
	}
}

func TestFloydWarshallUnreachable(t *testing.T) {
	tp := New("t")
	a := tp.AddNode("a", false)
	b := tp.AddNode("b", false)
	tp.AddLink(a, b, 1, 0) // one direction only
	d := tp.FloydWarshall(func(l Link) float64 { return 1 })
	if !math.IsInf(d[b][a], 1) {
		t.Fatal("b->a should be unreachable")
	}
	if d[a][b] != 1 {
		t.Fatalf("a->b = %g, want 1", d[a][b])
	}
}

func TestValidate(t *testing.T) {
	for _, tp := range []*Topology{
		DGX1(), NDv2(1), NDv2(2), DGX2(1), DGX2(2),
		Internal1(2), Internal2(2), Ring(5, 10, 0), FullMesh(3, 10, 0),
		Star(4, 10, 0), Line(3, 10, 0), Internal1NoAlpha(2),
	} {
		if err := tp.Validate(); err != nil {
			t.Errorf("%s: %v", tp.Name, err)
		}
	}
}

func TestValidateDisconnected(t *testing.T) {
	tp := New("t")
	tp.AddNode("a", false)
	tp.AddNode("b", false)
	if err := tp.Validate(); err == nil {
		t.Fatal("expected error for disconnected GPUs")
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := New("t").Validate(); err == nil {
		t.Fatal("expected error for empty topology")
	}
}

func TestDGX1Shape(t *testing.T) {
	tp := DGX1()
	if tp.NumNodes() != 8 {
		t.Fatalf("nodes = %d, want 8", tp.NumNodes())
	}
	// Table 2: 32 directed edges per chassis.
	if tp.NumLinks() != 32 {
		t.Fatalf("links = %d, want 32", tp.NumLinks())
	}
	if len(tp.Switches()) != 0 {
		t.Fatal("DGX1 has no switches")
	}
}

func TestNDv2Shape(t *testing.T) {
	tp := NDv2(2)
	// 2 chassis x 8 GPUs + 1 switch.
	if got := len(tp.GPUs()); got != 16 {
		t.Fatalf("GPUs = %d, want 16", got)
	}
	if got := len(tp.Switches()); got != 1 {
		t.Fatalf("switches = %d, want 1", got)
	}
	// 2x32 NVLink edges + 2 chassis x 2 GPUs x 2 directions to switch.
	if got := tp.NumLinks(); got != 64+8 {
		t.Fatalf("links = %d, want 72", got)
	}
	// Single chassis NDv2 has no switch.
	if got := len(NDv2(1).Switches()); got != 0 {
		t.Fatalf("1-chassis NDv2 switches = %d, want 0", got)
	}
}

func TestDGX2Shape(t *testing.T) {
	tp := DGX2(2)
	// Table 2: 17 nodes per chassis.
	if tp.NumNodes() != 34 {
		t.Fatalf("nodes = %d, want 34", tp.NumNodes())
	}
	// 32 intra edges per chassis + 8 cross links per ordered pair.
	if got := tp.NumLinks(); got != 64+16 {
		t.Fatalf("links = %d, want 80", got)
	}
}

func TestInternalShapes(t *testing.T) {
	t1 := Internal1(2)
	// Table 2: 4 GPUs, 8 GPU-GPU edges per chassis.
	if got := len(t1.GPUs()); got != 8 {
		t.Fatalf("internal1 GPUs = %d, want 8", got)
	}
	t2 := Internal2(3)
	if got := len(t2.GPUs()); got != 6 {
		t.Fatalf("internal2 GPUs = %d, want 6", got)
	}
	// 2 GPU-GPU directed edges per chassis.
	var gg int
	for i := 0; i < t2.NumLinks(); i++ {
		l := t2.Link(LinkID(i))
		if !t2.IsSwitch(l.Src) && !t2.IsSwitch(l.Dst) {
			gg++
		}
	}
	if gg != 6 {
		t.Fatalf("internal2 GPU-GPU edges = %d, want 6", gg)
	}
}

func TestInternal1NoAlpha(t *testing.T) {
	tp := Internal1NoAlpha(2)
	if tp.MaxAlpha() != 0 {
		t.Fatalf("max alpha = %g, want 0", tp.MaxAlpha())
	}
}

func TestCapacityStats(t *testing.T) {
	tp := NDv2(2)
	if tp.MinCapacity() != 12.5*GB {
		t.Fatalf("min capacity = %g", tp.MinCapacity())
	}
	if tp.MaxCapacity() != 50*GB {
		t.Fatalf("max capacity = %g", tp.MaxCapacity())
	}
	empty := New("e")
	if empty.MinCapacity() != 0 || empty.MaxCapacity() != 0 {
		t.Fatal("empty capacity stats should be 0")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tp := NDv2(2)
	data, err := json.Marshal(tp)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Topology
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.NumNodes() != tp.NumNodes() || back.NumLinks() != tp.NumLinks() {
		t.Fatal("round trip changed shape")
	}
	for i := 0; i < tp.NumLinks(); i++ {
		if back.Link(LinkID(i)) != tp.Link(LinkID(i)) {
			t.Fatalf("link %d changed", i)
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("validate after round trip: %v", err)
	}
}

func TestJSONBadLink(t *testing.T) {
	var tp Topology
	err := json.Unmarshal([]byte(`{"name":"x","nodes":[{"name":"a"}],"links":[{"src":0,"dst":5,"capacity":1}]}`), &tp)
	if err == nil {
		t.Fatal("expected error for out-of-range link")
	}
}

func TestRingStructure(t *testing.T) {
	tp := Ring(6, 10, 0)
	for _, g := range tp.GPUs() {
		if len(tp.Out(g)) != 2 || len(tp.In(g)) != 2 {
			t.Fatalf("gpu %d degree wrong", g)
		}
	}
}

func TestFullMeshStructure(t *testing.T) {
	tp := FullMesh(4, 10, 0)
	if tp.NumLinks() != 12 {
		t.Fatalf("links = %d, want 12", tp.NumLinks())
	}
}

func TestCloneIndependent(t *testing.T) {
	tp := DGX1()
	cp := tp.Clone()
	if cp.NumNodes() != tp.NumNodes() || cp.NumLinks() != tp.NumLinks() {
		t.Fatal("clone changed shape")
	}
	// Mutating the original must not leak into the clone, and vice versa.
	n := tp.AddNode("extra", false)
	tp.AddLink(n, 0, 1, 0)
	if cp.NumNodes() == tp.NumNodes() || cp.NumLinks() == tp.NumLinks() {
		t.Fatal("clone shares node/link storage with original")
	}
	m := cp.AddNode("other", true)
	cp.AddLink(0, m, 1, 0)
	outBefore := len(tp.Out(0))
	cp.AddLink(0, 1, 1, 0)
	if len(tp.Out(0)) != outBefore {
		t.Fatal("clone shares adjacency storage with original")
	}
}

func TestApplyDeltaImmutable(t *testing.T) {
	tp := DGX1()
	before, _ := json.Marshal(tp)
	down := tp.Out(0)[0]
	edited, err := tp.ApplyDelta(Delta{
		LinksDown: []LinkID{down},
		Scale:     []LinkScale{{Link: tp.Out(1)[0], Capacity: 0.5}},
	})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	after, _ := json.Marshal(tp)
	if string(before) != string(after) {
		t.Fatal("ApplyDelta mutated the receiver")
	}
	if !edited.LinkDown(down) || tp.LinkDown(down) {
		t.Fatal("down state on wrong topology")
	}
	if edited.NumLinks() != tp.NumLinks() || edited.NumNodes() != tp.NumNodes() {
		t.Fatal("ApplyDelta changed ID space")
	}
}

func TestApplyDeltaAdjacencyAndAggregates(t *testing.T) {
	tp := DGX1()
	down := tp.Out(0)[0]
	src, dst := tp.Link(down).Src, tp.Link(down).Dst
	edited, err := tp.ApplyDelta(Delta{LinksDown: []LinkID{down}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	for _, l := range edited.Out(src) {
		if l == down {
			t.Fatal("down link still in Out")
		}
	}
	for _, l := range edited.In(dst) {
		if l == down {
			t.Fatal("down link still in In")
		}
	}
	if edited.FindLink(src, dst) == down {
		t.Fatal("FindLink returned a down link")
	}
	// Metadata survives for ID alignment.
	if edited.Link(down) != tp.Link(down) {
		t.Fatal("down link metadata changed")
	}

	// Degrade one link below the global minimum: capacity extrema must
	// follow the live links' edited values.
	factor := 0.5 * tp.MinCapacity() / tp.Link(down).Capacity
	half, err := tp.ApplyDelta(Delta{Scale: []LinkScale{{Link: down, Capacity: factor}}})
	if err != nil {
		t.Fatalf("scale delta: %v", err)
	}
	if half.Link(down).Capacity != tp.Link(down).Capacity*factor {
		t.Fatal("capacity scale not applied")
	}
	if half.MinCapacity() != tp.MinCapacity()*0.5 {
		t.Fatal("MinCapacity ignored degraded link")
	}
	// Aggregates skip down links entirely.
	if edited.MinCapacity() != tp.MinCapacity() {
		// DGX1 is uniform-capacity NVLink, so dropping one link must
		// leave the extrema unchanged.
		t.Fatal("MinCapacity counted a down link")
	}
}

func TestApplyDeltaNodeDown(t *testing.T) {
	tp := NDv2(2)
	var sw NodeID = -1
	for _, s := range tp.Switches() {
		sw = s
	}
	if sw < 0 {
		t.Fatal("NDv2(2) should have a switch")
	}
	edited, err := tp.ApplyDelta(Delta{NodesDown: []NodeID{sw}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if len(edited.Out(sw)) != 0 || len(edited.In(sw)) != 0 {
		t.Fatal("downed node still has live links")
	}
	for l := 0; l < tp.NumLinks(); l++ {
		lk := tp.Link(LinkID(l))
		wantDown := lk.Src == sw || lk.Dst == sw
		if edited.LinkDown(LinkID(l)) != wantDown {
			t.Fatalf("link %d down=%v, want %v", l, edited.LinkDown(LinkID(l)), wantDown)
		}
	}
	// Cross-chassis reachability is gone: Validate must now fail.
	if err := edited.Validate(); err == nil {
		t.Fatal("expected Validate to fail with the IB switch down")
	}
}

func TestApplyDeltaInvalid(t *testing.T) {
	tp := DGX1()
	cases := []Delta{
		{LinksDown: []LinkID{LinkID(tp.NumLinks())}},
		{LinksDown: []LinkID{-1}},
		{NodesDown: []NodeID{NodeID(tp.NumNodes())}},
		{Scale: []LinkScale{{Link: -1, Capacity: 0.5}}},
		{Scale: []LinkScale{{Link: 0, Capacity: -1}}},
		{Scale: []LinkScale{{Link: 0, Alpha: -0.5}}},
	}
	for i, d := range cases {
		if _, err := tp.ApplyDelta(d); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	if !(Delta{}).Empty() {
		t.Fatal("zero Delta should be Empty")
	}
	if (Delta{LinksDown: []LinkID{0}}).Empty() {
		t.Fatal("non-zero Delta should not be Empty")
	}
}

func TestApplyDeltaSequencedAndJSON(t *testing.T) {
	tp := DGX1()
	first, err := tp.ApplyDelta(Delta{LinksDown: []LinkID{0}})
	if err != nil {
		t.Fatalf("first delta: %v", err)
	}
	second, err := first.ApplyDelta(Delta{LinksDown: []LinkID{1}})
	if err != nil {
		t.Fatalf("second delta: %v", err)
	}
	if !second.LinkDown(0) || !second.LinkDown(1) {
		t.Fatal("deltas must accumulate")
	}
	if first.LinkDown(1) {
		t.Fatal("second delta mutated first topology")
	}

	data, err := json.Marshal(second)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Topology
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for l := 0; l < second.NumLinks(); l++ {
		if back.LinkDown(LinkID(l)) != second.LinkDown(LinkID(l)) {
			t.Fatalf("down state lost in round trip at link %d", l)
		}
	}
	if len(back.Out(second.Link(0).Src)) != len(second.Out(second.Link(0).Src)) {
		t.Fatal("adjacency diverged after round trip")
	}
}

func TestZeroAlphaKeepsDownState(t *testing.T) {
	tp := NDv2(2)
	edited, err := tp.ApplyDelta(Delta{LinksDown: []LinkID{3}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	za := ZeroAlpha(edited)
	if !za.LinkDown(3) {
		t.Fatal("ZeroAlpha dropped down state")
	}
	for l := 0; l < za.NumLinks(); l++ {
		if za.Link(LinkID(l)).Alpha != 0 {
			t.Fatalf("link %d alpha not zeroed", l)
		}
	}
	for _, lnk := range za.Out(za.Link(3).Src) {
		if lnk == 3 {
			t.Fatal("ZeroAlpha resurrected a down link into adjacency")
		}
	}
}
