package horizon

// em.go is the epoch-multiplier auto-selection in front of the windowed
// solves (Table 4's EM column): before any model is built, probe how
// large the time-expanded formulation would be at coarse multiplier
// grid points, then refine only around the feasibility boundary — the
// smallest multiplier whose demands×links×epochs cell count fits the
// budget. Scaling tau by EM trades schedule granularity for model size
// exactly as §6's Table 4 does, where larger instances carry larger EMs
// to stay solvable.

import (
	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/topo"
)

// DefaultEMCellBudget is the demands×links×epochs budget the chosen
// multiplier must fit when Options.HorizonCellBudget is zero. Calibrated
// against Table 4: on the 16 MB SlowestLink instances of figures.go the
// prober must keep EM=1 for Internal1(2) and Internal2(4) (<= 28 672
// cells) yet pick EM=2 for Internal1(3) ALLTOALL (139 392 cells at EM 1,
// 101 376 at EM 2) and Internal2(6) (118 800 at EM 1, 80 784 at EM 2) —
// any budget in [101 376, 118 800) reproduces the paper's EM column.
const DefaultEMCellBudget = 110_000

// EMProbe is one prober evaluation: the multiplier, the estimated model
// cells at that multiplier, and whether it fits the budget.
type EMProbe struct {
	EM    float64
	Cells int
	Fits  bool
}

// coarseEMs is the power-of-two grid probed first.
var coarseEMs = []float64{1, 2, 4, 8, 16, 32}

// SelectEM picks the smallest epoch multiplier whose estimated model
// size fits the cell budget (0 means DefaultEMCellBudget). The largest
// coarse grid point is returned when nothing fits.
func SelectEM(t *topo.Topology, d *collective.Demand, opt core.Options, budget int) float64 {
	em, _ := ProbeEM(t, d, opt, budget)
	return em
}

// ProbeEM is SelectEM plus the probe trace: the coarse power-of-two
// ascent and the integer refinement between the last miss and the first
// fit. Model cells are estimated without building anything — demand
// count × links × the Algorithm 1 horizon estimate at the scaled tau.
func ProbeEM(t *topo.Topology, d *collective.Demand, opt core.Options, budget int) (float64, []EMProbe) {
	if budget <= 0 {
		budget = DefaultEMCellBudget
	}
	// The LP path expands multicast demands per destination before
	// estimating; size the model the same way.
	if d.HasMulticast() {
		d = d.ExpandPerDestination()
	}
	var probes []EMProbe
	cells := func(em float64) int {
		tau := core.DeriveTau(t, d.ChunkBytes, opt.EpochMode, em)
		c := d.Count() * t.NumLinks() * core.EstimateEpochs(t, d, tau)
		probes = append(probes, EMProbe{EM: em, Cells: c, Fits: c <= budget})
		return c
	}

	fit := -1
	for i, em := range coarseEMs {
		if cells(em) <= budget {
			fit = i
			break
		}
	}
	if fit < 0 {
		return coarseEMs[len(coarseEMs)-1], probes
	}
	if fit == 0 {
		return 1, probes
	}
	// Refine on integers strictly between the last miss and the fit.
	for em := coarseEMs[fit-1] + 1; em < coarseEMs[fit]; em++ {
		if cells(em) <= budget {
			return em, probes
		}
	}
	return coarseEMs[fit], probes
}
