package horizon

import "teccl/internal/core"

// Importing this package makes SolverHorizon available to the Planner
// dispatch and to policies that route large LP-eligible instances to
// the rolling-horizon decomposition.
func init() {
	core.RegisterSolver(core.SolverHorizon, solve)
}
