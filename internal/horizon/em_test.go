package horizon

import (
	"context"
	"testing"

	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/topo"
)

// TestSelectEMTable4 pins the epoch-multiplier auto-selection to the
// paper's Table 4 EM column: the same internal topologies, collectives,
// and 16 MB buffers that figures.go solves must come out of the prober
// with the multipliers the paper hand-picked.
func TestSelectEMTable4(t *testing.T) {
	type inst struct {
		name string
		t    *topo.Topology
		coll string
		want float64
	}
	insts := []inst{
		{"internal1x2-allgather", topo.Internal1(2), "AG", 1},
		{"internal2x4-allgather", topo.Internal2(4), "AG", 1},
		{"internal2x6-allgather", topo.Internal2(6), "AG", 2},
		{"internal1x2-alltoall", topo.Internal1(2), "AtoA", 1},
		{"internal1x3-alltoall", topo.Internal1(3), "AtoA", 2},
		{"internal2x4-alltoall", topo.Internal2(4), "AtoA", 1},
		{"internal2x6-alltoall", topo.Internal2(6), "AtoA", 2},
	}
	const size = 16e6
	for _, in := range insts {
		t.Run(in.name, func(t *testing.T) {
			gpus := gpuIDs(in.t)
			chunk := size / float64(len(gpus))
			var d *collective.Demand
			if in.coll == "AtoA" {
				d = collective.AllToAll(in.t.NumNodes(), gpus, 1, chunk)
			} else {
				d = collective.AllGather(in.t.NumNodes(), gpus, 1, chunk)
			}
			opt := core.Options{EpochMode: core.SlowestLink}
			em, probes := ProbeEM(in.t, d, opt, 0)
			if em != in.want {
				for _, p := range probes {
					t.Logf("probe em=%g cells=%d fits=%v", p.EM, p.Cells, p.Fits)
				}
				t.Fatalf("EM = %g, Table 4 says %g", em, in.want)
			}
			// The refinement must land on the feasibility boundary: the
			// chosen EM fits, and (unless it is 1) EM-1 must not.
			fits := func(want float64) bool {
				for _, p := range probes {
					if p.EM == want {
						return p.Fits
					}
				}
				t.Fatalf("no probe at em=%g", want)
				return false
			}
			if !fits(em) {
				t.Errorf("chosen EM %g does not fit its own budget", em)
			}
			if em > 1 && fits(em-1) {
				t.Errorf("EM %g chosen but %g already fits", em, em-1)
			}
		})
	}
}

// TestAutoEMNeverInfeasible is the regression pin behind the coarse
// grid: whatever multiplier the prober picks, the solve at that
// multiplier must stay feasible — the Algorithm 1 horizon estimate at
// the scaled tau still leaves enough epochs to route all demand. Tiny
// budgets force the prober well up the grid.
func TestAutoEMNeverInfeasible(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name   string
		topo   *topo.Topology
		dem    func(*topo.Topology) *collective.Demand
		budget int
	}{
		{"dgx1-default-budget", topo.DGX1(), func(tp *topo.Topology) *collective.Demand {
			return collective.AllToAll(tp.NumNodes(), gpuIDs(tp), 1, 5e4)
		}, 0},
		{"dgx1-tight-budget", topo.DGX1(), func(tp *topo.Topology) *collective.Demand {
			return collective.AllToAll(tp.NumNodes(), gpuIDs(tp), 1, 5e4)
		}, 4_000},
		{"ndv2mini-tight-budget", topo.NDv2Mini(2), func(tp *topo.Topology) *collective.Demand {
			return collective.AllToAll(tp.NumNodes(), gpuIDs(tp), 1, 2.5e4)
		}, 6_000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.dem(tc.topo)
			opt := core.Options{EpochMode: core.SlowestLink}
			em := SelectEM(tc.topo, d, opt, tc.budget)
			if em < 1 {
				t.Fatalf("SelectEM returned %g < 1", em)
			}
			opt.EpochMultiplier = em
			res, err := core.SolveLPContext(ctx, tc.topo, d, opt)
			if err != nil {
				t.Fatalf("solve at auto EM %g: %v", em, err)
			}
			if res.Schedule == nil {
				t.Fatalf("solve at auto EM %g produced no schedule", em)
			}
			if err := res.Schedule.Validate(); err != nil {
				t.Fatalf("schedule at auto EM %g invalid: %v", em, err)
			}
			t.Logf("em=%g epochs=%d finish=%d", em, res.Epochs, res.Schedule.FinishEpoch())
		})
	}
}
