package horizon

import (
	"fmt"

	"teccl/internal/core"
	"teccl/internal/topo"
)

const (
	commitTol = 1e-9
	lossTol   = 1e-6
)

// stitcher accumulates the committed flow/read rates across windows and
// replays them into the next window's boundary state.
type stitcher struct {
	wi *core.WindowInstance
	// flows[si][l][k] and reads[si][dst][k]: committed rates over
	// absolute epochs. After the final window commits, these are the
	// full-horizon allocation handed to the peeling decomposition.
	flows [][][]float64
	reads [][][]float64
}

func newStitcher(wi *core.WindowInstance) *stitcher {
	t := wi.Topo()
	st := &stitcher{
		wi:    wi,
		flows: make([][][]float64, wi.NumSources()),
		reads: make([][][]float64, wi.NumSources()),
	}
	K := wi.Epochs()
	for si := 0; si < wi.NumSources(); si++ {
		st.flows[si] = make([][]float64, t.NumLinks())
		for l := range st.flows[si] {
			st.flows[si][l] = make([]float64, K)
		}
		st.reads[si] = make([][]float64, t.NumNodes())
		for n := range st.reads[si] {
			st.reads[si][n] = make([]float64, K)
		}
	}
	return st
}

// grow extends the committed arrays to a longer horizon (final-window
// extension); committed entries keep their absolute epochs.
func (st *stitcher) grow(K int) {
	for si := range st.flows {
		for l := range st.flows[si] {
			if len(st.flows[si][l]) < K {
				st.flows[si][l] = append(st.flows[si][l], make([]float64, K-len(st.flows[si][l]))...)
			}
		}
		for n := range st.reads[si] {
			if len(st.reads[si][n]) < K {
				st.reads[si][n] = append(st.reads[si][n], make([]float64, K-len(st.reads[si][n]))...)
			}
		}
	}
}

// prune strips degenerate stranded relay flow from a window solution.
// The LP's bufferless rows only bound forwarding (out(k+1) <= in(k)), so
// an optimal window may send chunks into a switch and silently drop
// them when the objective gains nothing from delivery; committing such
// a send would strand the chunk forever (the origin's inventory is
// already decremented). Landing epochs are processed descending so a
// pruned forward cascades to the arrivals feeding it.
func (st *stitcher) prune(wf [][][]float64) {
	wi := st.wi
	t := wi.Topo()
	K := wi.Epochs()
	nL := t.NumLinks()
	nN := t.NumNodes()

	type hop struct{ l, e int }
	// byLand[n] maps a landing epoch to the (link, departure) pairs that
	// arrive at bufferless node n then; outLinks[n] lists n's egress.
	byLand := make([]map[int][]hop, nN)
	outLinks := make([][]int, nN)
	for l := 0; l < nL; l++ {
		lk := t.Link(topo.LinkID(l))
		outLinks[lk.Src] = append(outLinks[lk.Src], l)
	}

	for si := range wf {
		for n := 0; n < nN; n++ {
			byLand[n] = nil
		}
		for l := 0; l < nL; l++ {
			dst := int(t.Link(topo.LinkID(l)).Dst)
			if wi.Buffered(si, dst) {
				continue
			}
			if byLand[dst] == nil {
				byLand[dst] = make(map[int][]hop)
			}
			for e, f := range wf[si][l] {
				if f > commitTol {
					land := wi.LandEpoch(l, e)
					byLand[dst][land] = append(byLand[dst][land], hop{l, e})
				}
			}
		}
		for k := K - 1; k >= 0; k-- {
			for n := 0; n < nN; n++ {
				hops := byLand[n][k]
				if len(hops) == 0 {
					continue
				}
				in := 0.0
				for _, h := range hops {
					in += wf[si][h.l][h.e]
				}
				out := 0.0
				if k+1 < K {
					for _, l := range outLinks[n] {
						out += wf[si][l][k+1]
					}
				}
				if in <= out+commitTol {
					continue
				}
				scale := 0.0
				if out > commitTol {
					scale = out / in
				}
				for _, h := range hops {
					wf[si][h.l][h.e] *= scale
				}
			}
		}
	}
}

// commit makes the window's tentative allocation over [lo, commitHi)
// permanent, closing committed flows over bufferless forwards: a flow
// departing a buffered node inside the stride commits fully; a flow
// departing a bufferless node commits the fraction of its node's
// arrivals (landed the epoch before) that is itself committed. Epochs
// are processed ascending, so chases follow chains through consecutive
// switches past commitHi. Reads inside the stride commit fully.
//
// Returns an error if any committed arrival at a bufferless node is not
// fully forwarded (the window solution dropped relayed traffic near its
// edge) — the caller falls back to the monolithic solve.
func (st *stitcher) commit(wf, wr [][][]float64, lo, commitHi int) error {
	wi := st.wi
	t := wi.Topo()
	K := wi.Epochs()
	nL := t.NumLinks()
	nN := t.NumNodes()

	for si := range wf {
		// Tentative arrivals at bufferless nodes, by landing epoch.
		tentIn := make([][]float64, nN)
		comIn := make([][]float64, nN)
		comOut := make([][]float64, nN)
		for n := 0; n < nN; n++ {
			if !wi.Buffered(si, n) {
				tentIn[n] = make([]float64, K)
				comIn[n] = make([]float64, K)
				comOut[n] = make([]float64, K)
			}
		}
		for l := 0; l < nL; l++ {
			dst := int(t.Link(topo.LinkID(l)).Dst)
			if tentIn[dst] == nil {
				continue
			}
			for e, f := range wf[si][l] {
				if f > commitTol {
					tentIn[dst][wi.LandEpoch(l, e)] += f
				}
			}
		}

		for e := lo; e < K; e++ {
			for l := 0; l < nL; l++ {
				f := wf[si][l][e]
				if f <= commitTol {
					continue
				}
				lk := t.Link(topo.LinkID(l))
				org := int(lk.Src)
				var cf float64
				if wi.Buffered(si, org) {
					if e < commitHi {
						cf = f
					}
				} else if e > 0 {
					// Forward the committed share of what landed at e-1.
					tent := tentIn[org][e-1]
					if tent > commitTol {
						share := comIn[org][e-1] / tent
						if share > 1 {
							share = 1
						}
						cf = f * share
					}
				}
				if cf <= commitTol {
					continue
				}
				st.flows[si][l][e] += cf
				if comOut[org] != nil {
					comOut[org][e] += cf
				}
				dst := int(lk.Dst)
				if comIn[dst] != nil {
					comIn[dst][wi.LandEpoch(l, e)] += cf
				}
			}
		}

		// Closure check: every committed arrival at a bufferless node must
		// be forwarded by a committed departure the next epoch.
		for n := 0; n < nN; n++ {
			if comIn[n] == nil {
				continue
			}
			for k := 0; k < K; k++ {
				in := comIn[n][k]
				if in <= lossTol {
					continue
				}
				out := 0.0
				if k+1 < K {
					out = comOut[n][k+1]
				}
				if in-out > lossTol {
					return fmt.Errorf("core: horizon commit [%d,%d): %.6g committed chunks of source %d dropped at bufferless node %d (epoch %d)",
						lo, commitHi, in-out, wi.Source(si), n, k)
				}
			}
		}

		for dst := 0; dst < nN; dst++ {
			for k := lo; k < commitHi; k++ {
				if r := wr[si][dst][k]; r > commitTol {
					st.reads[si][dst][k] += r
				}
			}
		}
	}
	return nil
}

// commitAll commits the final window's entire allocation from lo on.
func (st *stitcher) commitAll(wf, wr [][][]float64, lo int) {
	K := st.wi.Epochs()
	for si := range wf {
		for l := range wf[si] {
			for e := lo; e < K; e++ {
				if f := wf[si][l][e]; f > commitTol {
					st.flows[si][l][e] += f
				}
			}
		}
		for dst := range wr[si] {
			for k := lo; k < K; k++ {
				if r := wr[si][dst][k]; r > commitTol {
					st.reads[si][dst][k] += r
				}
			}
		}
	}
}

// boundary replays the committed prefix into the state window lo opens
// from: buffered inventory, in-flight arrivals landing at epochs >= lo,
// committed link usage, and remaining demand. Negative inventory or
// remaining demand signals a commit bookkeeping bug; the caller falls
// back to the monolithic solve.
func (st *stitcher) boundary(lo int) (*core.Boundary, error) {
	wi := st.wi
	t := wi.Topo()
	K := wi.Epochs()
	nL := t.NumLinks()
	nN := t.NumNodes()

	bd := wi.InitialBoundary()
	bd.Arr = make([][][]float64, wi.NumSources())
	bd.CapUsed = make([][]float64, nL)
	for l := 0; l < nL; l++ {
		bd.CapUsed[l] = make([]float64, K)
	}
	for si := range st.flows {
		bd.Arr[si] = make([][]float64, nN)
		for n := 0; n < nN; n++ {
			bd.Arr[si][n] = make([]float64, K)
		}
		for l := 0; l < nL; l++ {
			lk := t.Link(topo.LinkID(l))
			org, dst := int(lk.Src), int(lk.Dst)
			for e, cf := range st.flows[si][l] {
				if cf <= 0 {
					continue
				}
				bd.CapUsed[l][e] += cf
				if wi.Buffered(si, org) {
					bd.Inv[si][org] -= cf
				}
				land := wi.LandEpoch(l, e)
				if wi.Buffered(si, dst) {
					if land < lo {
						bd.Inv[si][dst] += cf
					} else {
						bd.Arr[si][dst][land] += cf
					}
				}
			}
		}
		for dst := 0; dst < nN; dst++ {
			for k := 0; k < lo; k++ {
				if r := st.reads[si][dst][k]; r > 0 {
					bd.Inv[si][dst] -= r
					bd.Rem[si][dst] -= r
				}
			}
		}
		for n := 0; n < nN; n++ {
			if bd.Inv[si][n] < -lossTol {
				return nil, fmt.Errorf("core: horizon boundary at epoch %d: negative inventory %.6g for source %d at node %d",
					lo, bd.Inv[si][n], wi.Source(si), n)
			}
			if bd.Inv[si][n] < 0 {
				bd.Inv[si][n] = 0
			}
		}
		for dst := 0; dst < nN; dst++ {
			if bd.Rem[si][dst] < -lossTol {
				return nil, fmt.Errorf("core: horizon boundary at epoch %d: demand (source %d, dst %d) over-consumed by %.6g",
					lo, wi.Source(si), dst, -bd.Rem[si][dst])
			}
			if bd.Rem[si][dst] < 0 {
				bd.Rem[si][dst] = 0
			}
		}
	}
	return bd, nil
}
