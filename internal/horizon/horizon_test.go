package horizon

import (
	"context"
	"math"
	"testing"
	"time"

	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/topo"
)

func gpuIDs(t *topo.Topology) []int {
	var out []int
	for _, g := range t.GPUs() {
		out = append(out, int(g))
	}
	return out
}

type propCase struct {
	name string
	topo *topo.Topology
	dem  func(*topo.Topology) *collective.Demand
	opt  core.Options
}

func propCorpus() []propCase {
	allToAll := func(chunk float64) func(*topo.Topology) *collective.Demand {
		return func(tp *topo.Topology) *collective.Demand {
			return collective.AllToAll(tp.NumNodes(), gpuIDs(tp), 1, chunk)
		}
	}
	return []propCase{
		{name: "dgx1-alltoall-fastest", topo: topo.DGX1(), dem: allToAll(25e3)},
		{name: "dgx1-alltoall-slowest", topo: topo.DGX1(), dem: allToAll(50e3),
			opt: core.Options{EpochMode: core.SlowestLink}},
		{name: "ndv2mini-alltoall-fastest-em2", topo: topo.NDv2Mini(2), dem: allToAll(25e3),
			opt: core.Options{EpochMultiplier: 2}},
		{name: "ndv2mini-alltoall-slowest", topo: topo.NDv2Mini(2), dem: allToAll(25e3),
			opt: core.Options{EpochMode: core.SlowestLink}},
		{name: "dgx1-allgather-expanded", topo: topo.DGX1(),
			dem: func(tp *topo.Topology) *collective.Demand {
				return collective.AllGather(tp.NumNodes(), gpuIDs(tp), 1, 25e3)
			}},
	}
}

// TestWindowedMatchesMonolithic is the windowed-vs-monolithic property
// suite: on small corpus instances, forced-small windows must stitch a
// schedule that validates, finishes in the same epoch as the monolithic
// LP optimum, and certifies within 5% of its objective.
func TestWindowedMatchesMonolithic(t *testing.T) {
	ctx := context.Background()
	for _, tc := range propCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.dem(tc.topo)
			mono, err := core.SolveLPContext(ctx, tc.topo, d, tc.opt)
			if err != nil {
				t.Fatalf("monolithic solve: %v", err)
			}

			hopt := tc.opt
			// Force windows small enough that the horizon splits into
			// several, to exercise commit/carry-forward. A one-epoch
			// commit stride (overlap W-1) keeps enough lookahead past
			// each commitment that the stitched schedule matches the
			// monolithic finish epoch on these small instances.
			hopt.HorizonWindow = 8
			hopt.HorizonOverlap = 7
			hopt.HorizonCertify = 30 * time.Second
			hres, err := Solve(ctx, tc.topo, d, hopt)
			if err != nil {
				t.Fatalf("horizon solve: %v", err)
			}
			if hres.Schedule == nil {
				t.Fatal("horizon solve returned no schedule")
			}
			if err := hres.Schedule.Validate(); err != nil {
				t.Fatalf("stitched schedule invalid: %v", err)
			}
			if mono.Epochs > hopt.HorizonWindow && hres.Windows < 2 {
				t.Errorf("expected >= 2 windows (K=%d, W=%d), got %d", mono.Epochs, hopt.HorizonWindow, hres.Windows)
			}
			if got, want := hres.Schedule.FinishEpoch(), mono.Schedule.FinishEpoch(); got != want {
				t.Errorf("finish epoch: windowed %d, monolithic %d", got, want)
			}
			if hres.Gap > 0.05 {
				t.Errorf("certified objective gap %.4f > 5%%", hres.Gap)
			}
			if math.IsNaN(hres.Gap) {
				t.Error("gap is NaN")
			}
		})
	}
}
