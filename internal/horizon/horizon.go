// Package horizon implements the rolling-horizon decomposition of the
// time-expanded LP (§4.1): instead of one monolithic simplex over all K
// epochs, the horizon is sliced into overlapping windows [S, S+W) that
// are solved in sequence, each a small LP in the same variable space as
// the monolithic model.
//
// # Window / commit / carry-forward invariants
//
// After window [lo, hi) solves, the driver commits the prefix [lo,
// lo+C) (C = W − V, V the overlap): every tentative flow departing a
// buffered node inside the committed stride becomes permanent, and
// flows departing bufferless nodes (switches, NoBuffers pass-through
// GPUs) are committed by proportional closure — each forwards the
// fraction of its node's arrivals that is itself committed, processed
// in ascending epoch order so the chase follows chains through
// consecutive switches. The closure keeps every committed chunk's full
// switch path committed together; if any committed arrival at a
// bufferless node would be dropped (committed-in exceeds committed-out),
// the decomposition is abandoned for one monolithic solve rather than
// ever producing an invalid schedule.
//
// The next window then starts from a Boundary replayed from the
// committed prefix: per-source inventory at buffered nodes, in-flight
// sends landing at epochs >= lo (fixed conservation right-hand sides),
// committed link usage (subtracted from the sliding capacity budgets),
// and remaining per-pair demand. Window flows are self-contained — they
// land inside their window — so the default overlap is sized to the
// longest committed forward chain (link span × (1 + longest
// consecutive-switch chain)), which guarantees a committed send's
// switch forwards never need epochs the next window cannot see.
//
// The final window must consume all remaining demand; if that is
// infeasible at the estimated K, the horizon is extended a few strides
// and, failing that, the driver falls back to the monolithic LP. The
// stitched flow/read arrays then pass through the same peeling
// decomposition and schedule validation as the monolithic path.
//
// Three safeguards keep the windowed optima committable. A pruning pass
// strips degenerate stranded relay flow before committing: the LP's
// bufferless rows only bound forwarding (out <= in), so a window optimum
// may park chunks at a switch it never forwards from — harmless to the
// LP, fatal to the commit closure. The window width is floored at the
// dk-weighted longest demanded route plus the commit stride: reads are
// the window objective's only terms, so a window too narrow to complete
// any read along a route has no incentive to advance that route at all
// and the decomposition stalls at zero objective. And as a safety net
// behind the floor, two consecutive zero-objective non-final windows
// double W in place (congestion can stretch the effective route length
// past the uncongested floor).
//
// Windows chain warm bases two ways: an exact fingerprint hit from the
// Planner session's basis store (identical window of an earlier
// request), else a name-matched projection of the previous window's
// basis — overlapping epochs share variable names, so the projection
// seeds most of the new basis and the dual simplex repairs the rest.
//
// Policy routes to this solver (SolverHorizon) when CostModelPolicy
// prices an LP-eligible request above HorizonCells — the regime where
// the monolithic model's demands×links×epochs product makes one simplex
// the scaling wall. ForceHorizon pins it for tests; importing this
// package (blank import from the facade, daemon, and experiments)
// registers the implementation with core.
package horizon

import (
	"context"
	"fmt"
	"math"
	"time"

	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/lp"
	"teccl/internal/topo"
)

// maxExtensions bounds how many times the final window may extend the
// horizon before degrading to a monolithic solve.
const maxExtensions = 4

// Solve runs the rolling-horizon decomposition as a one-shot solve (no
// session state). See the package comment for the invariants.
func Solve(ctx context.Context, t *topo.Topology, d *collective.Demand, opt core.Options) (*core.Result, error) {
	if opt.TimeLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.TimeLimit)
		defer cancel()
		opt.TimeLimit = 0
	}
	return solve(ctx, t, d, opt, nil)
}

func prog(opt *core.Options, p core.Progress) {
	if opt.Progress != nil {
		opt.Progress(p)
	}
}

func sample(phase string, round, iters int, obj float64, haveObj bool) core.Progress {
	p := core.Progress{
		Solver:     "horizon",
		Phase:      phase,
		Round:      round,
		Iterations: iters,
		Incumbent:  math.NaN(),
		Bound:      math.NaN(),
		Gap:        math.Inf(1),
	}
	if haveObj {
		p.Incumbent, p.Bound, p.Gap = obj, obj, 0
	}
	return p
}

// solve is the registered SolverFunc (register.go): the caller (Planner
// or Solve) has already layered TimeLimit onto ctx.
func solve(ctx context.Context, t *topo.Topology, d *collective.Demand, opt core.Options, hooks *core.SessionHooks) (*core.Result, error) {
	start := time.Now()

	// Makespan refinement re-solves whole horizons; it composes with the
	// monolithic path, not with windowed commitment.
	if opt.MinimizeMakespan {
		return core.SolveLPContext(ctx, t, d, opt)
	}

	if opt.AutoEpochMultiplier && opt.EpochMultiplier <= 1 && opt.Tau == 0 {
		em := SelectEM(t, d, opt, opt.HorizonCellBudget)
		opt.EpochMultiplier = em
		prog(&opt, sample("em", 0, 0, em, true))
	}

	wi := core.NewWindowInstance(t, d, opt)
	if wi.Empty() {
		return wi.EmptyResult(start), nil
	}

	maxdk := wi.MaxLinkSpan()
	span := maxdk * (1 + maxSwitchChain(t))
	W := opt.HorizonWindow
	if W <= 0 {
		W = 2 * span
		if W < 8 {
			W = 8
		}
	}
	V := opt.HorizonOverlap
	if V <= 0 {
		V = span - 1
	}
	if V > W-1 {
		V = W - 1
	}
	C := W - V
	// Reads are the window objective's only terms, so a window too
	// narrow to complete any read along a demanded route has no
	// incentive to advance that route's chunks at all and the
	// decomposition stalls. Floor the width so every departure inside
	// the commit stride can still see its longest route finish within
	// the same window. When the floor binds on an auto-sized request,
	// grow the commit stride along with the width: keeping the original
	// sliver stride would re-solve nearly the same epochs K/C times
	// (measured 1.5x slower than C = routeSpan on the NDv2 headline).
	if rs := routeSpan(wi); W < rs+C {
		if opt.HorizonWindow <= 0 && opt.HorizonOverlap <= 0 && rs > C {
			C = rs
		}
		W = rs + C
		V = W - C
	}

	st := newStitcher(wi)
	res := &core.Result{Tau: wi.Tau()}
	var prevProb *lp.Problem
	var prevBasis *lp.Basis
	warmFirst := false
	extensions := 0
	stalled := 0
	S := 0

	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: horizon solve interrupted at window %d: %w", res.Windows+1, context.Cause(ctx))
		}
		K := wi.Epochs()
		lo, hi := S, S+W
		final := false
		if hi >= K {
			hi, final = K, true
		}

		bd, err := st.boundary(lo)
		if err != nil {
			return fallbackMono(ctx, t, d, opt, start, err)
		}
		wlp, err := wi.BuildWindow(lo, hi, final, bd)
		if err != nil {
			return fallbackMono(ctx, t, d, opt, start, err)
		}

		// Warm start: an exact fingerprint hit from the session store
		// beats a name-matched projection of the previous window.
		var warm *lp.Basis
		exact := false
		if hooks != nil && hooks.LookupBasis != nil {
			if warm = hooks.LookupBasis(wlp.P); warm != nil {
				exact = true
			}
		}
		if warm == nil && prevProb != nil {
			warm = core.TransferBasis(prevProb, prevBasis, wlp.P)
		}
		lpOpt := lp.Options{Context: ctx}
		if warm != nil {
			lpOpt.WarmStart = warm
			lpOpt.Method = lp.MethodDual
		}
		sol, err := lp.Solve(wlp.P, lpOpt)
		if err != nil {
			return nil, err
		}
		switch sol.Status {
		case lp.StatusOptimal:
		case lp.StatusInfeasible:
			if final && extensions < maxExtensions {
				// The estimated K cannot finish the committed prefix's
				// remainder; extend the horizon by a stride and retry.
				extensions++
				ext := C
				if maxdk > ext {
					ext = maxdk
				}
				wi.SetEpochs(K + ext)
				st.grow(wi.Epochs())
				prevProb, prevBasis = nil, nil
				continue
			}
			return fallbackMono(ctx, t, d, opt, start,
				fmt.Errorf("window [%d,%d) infeasible (K=%d)", lo, hi, K))
		default:
			if ierr := ctx.Err(); ierr != nil {
				return nil, fmt.Errorf("core: horizon window [%d,%d) interrupted after %d iterations: %w",
					lo, hi, sol.Iterations, context.Cause(ctx))
			}
			return fallbackMono(ctx, t, d, opt, start,
				fmt.Errorf("window [%d,%d) solve ended %v", lo, hi, sol.Status))
		}

		// Safety net behind the route-span floor: if two consecutive
		// non-final windows schedule no reads at all, the remaining
		// routes evidently outrun the lookahead (longer-than-shortest
		// detours, congested shortest paths); widen the window in place
		// instead of rolling forward through dead epochs.
		if !final && sol.Objective <= commitTol {
			if stalled++; stalled >= 2 {
				W *= 2
				V = W - C
				prevProb, prevBasis = nil, nil
				stalled = 0
				continue
			}
		} else {
			stalled = 0
		}

		if res.Windows == 0 {
			warmFirst = warm != nil
			_ = exact
		}
		res.Windows++
		res.RootIterations += sol.Iterations
		res.Refactorizations += sol.Refactorizations
		res.FTUpdates += sol.FTUpdates
		res.UpdateNnz += sol.UpdateNnz
		prog(&opt, sample("window", res.Windows, sol.Iterations, sol.Objective, true))

		if hooks != nil && hooks.RecordBasis != nil {
			hooks.RecordBasis(wlp.P, sol.Basis)
		}

		flows, reads := wlp.Flows(sol.X)
		st.prune(flows)
		if final {
			st.commitAll(flows, reads, lo)
			break
		}
		if err := st.commit(flows, reads, lo, lo+C); err != nil {
			return fallbackMono(ctx, t, d, opt, start, err)
		}
		prevProb, prevBasis = wlp.P, sol.Basis
		S += C
	}

	// Stitch: the committed arrays hold a full-horizon rate allocation;
	// the same peeling pass as the monolithic path decomposes and
	// validates it (st.flows is consumed, st.reads survives for the
	// objective and the certify pass).
	obj := wi.Objective(st.reads)
	sch, err := wi.Decompose(st.flows, st.reads)
	if err != nil {
		return fallbackMono(ctx, t, d, opt, start, err)
	}
	prog(&opt, sample("stitch", res.Windows, res.RootIterations, obj, true))

	res.Schedule = sch
	res.Objective = obj
	res.Epochs = wi.Epochs()
	res.WarmStarted = warmFirst
	res.SolveTime = time.Since(start)

	if opt.HorizonCertify > 0 {
		certify(ctx, t, d, opt, wi, st.reads, res)
	}
	return res, nil
}

// certify re-solves the instance monolithically under its own budget and
// scores the stitched allocation at the monolithic horizon's tail
// weights, recording the relative objective gap. Certification time is
// excluded from SolveTime; a budget overrun or error leaves the result
// uncertified (Gap 0, Optimal false).
func certify(ctx context.Context, t *topo.Topology, d *collective.Demand, opt core.Options, wi *core.WindowInstance, reads [][][]float64, res *core.Result) {
	cctx, cancel := context.WithTimeout(ctx, opt.HorizonCertify)
	defer cancel()
	copt := opt
	copt.TimeLimit = 0
	copt.HorizonCertify = 0
	copt.Progress = nil
	mono, err := core.SolveLPContext(cctx, t, d, copt)
	if err != nil || mono.Objective <= 0 {
		return
	}
	stObj := wi.ObjectiveAt(reads, core.LPTailWeights(mono.Epochs))
	gap := (mono.Objective - stObj) / mono.Objective
	if gap < 0 {
		gap = 0
	}
	res.Gap = gap
	res.Optimal = mono.Optimal && gap <= 1e-6
	prog(&opt, sample("certify", res.Windows, mono.RootIterations, gap, true))
}

// fallbackMono abandons the decomposition for one monolithic LP solve —
// the safety net behind every invariant the windowed path checks
// (boundary bookkeeping, committed-flow closure, final-window
// feasibility, stitched-schedule validation).
func fallbackMono(ctx context.Context, t *topo.Topology, d *collective.Demand, opt core.Options, start time.Time, cause error) (*core.Result, error) {
	prog(&opt, sample("fallback", 0, 0, 0, false))
	res, err := core.SolveLPContext(ctx, t, d, opt)
	if err != nil {
		return nil, fmt.Errorf("core: horizon fallback (%v) failed: %w", cause, err)
	}
	res.SolveTime = time.Since(start)
	return res, nil
}

// routeSpan is the epoch span of the longest demanded shortest route:
// the maximum over demanded (source, destination) pairs of the
// dk-weighted (per-link epochs-in-flight) shortest-path distance. A
// chunk departing at epoch e along its shortest route lands at its
// destination no earlier than e + routeSpan - 1, so windows narrower
// than this can never schedule the pair's read. Unreachable demanded
// pairs are skipped — the monolithic model is just as infeasible for
// them, and the final-window fallback reports it.
func routeSpan(wi *core.WindowInstance) int {
	t := wi.Topo()
	nN := t.NumNodes()
	type edge struct{ to, dk int }
	adj := make([][]edge, nN)
	for l := 0; l < t.NumLinks(); l++ {
		lk := t.Link(topo.LinkID(l))
		adj[lk.Src] = append(adj[lk.Src], edge{int(lk.Dst), wi.LandEpoch(l, 0) + 1})
	}
	const inf = math.MaxInt32
	span := 0
	dist := make([]int, nN)
	done := make([]bool, nN)
	for si := 0; si < wi.NumSources(); si++ {
		for i := range dist {
			dist[i], done[i] = inf, false
		}
		dist[wi.Source(si)] = 0
		//teccl:allow-ctxcheck bounded: Dijkstra over nN nodes; every iteration marks one node done or exits
		for {
			u, best := -1, inf
			for i, v := range dist {
				if !done[i] && v < best {
					u, best = i, v
				}
			}
			if u < 0 {
				break
			}
			done[u] = true
			for _, e := range adj[u] {
				if nd := best + e.dk; nd < dist[e.to] {
					dist[e.to] = nd
				}
			}
		}
		for dst := 0; dst < nN; dst++ {
			if wi.Dem(si, dst) > 0 && dist[dst] < inf && dist[dst] > span {
				span = dist[dst]
			}
		}
	}
	return span
}

// maxSwitchChain is the longest chain of consecutive bufferless switch
// hops reachable in the topology — the number of extra forwards a
// committed send may need beyond its first landing. Cycles among
// switches are capped at the switch count.
func maxSwitchChain(t *topo.Topology) int {
	nN := t.NumNodes()
	var switches []int
	for n := 0; n < nN; n++ {
		if t.IsSwitch(topo.NodeID(n)) {
			switches = append(switches, n)
		}
	}
	if len(switches) == 0 {
		return 0
	}
	// chain[n]: switches on the longest switch-only path starting at n
	// (inclusive). Relax |switches| times; cycles saturate at the cap.
	chain := make([]int, nN)
	for _, n := range switches {
		chain[n] = 1
	}
	for iter := 0; iter < len(switches); iter++ {
		changed := false
		for _, n := range switches {
			best := 1
			for _, lid := range t.Out(topo.NodeID(n)) {
				m := int(t.Link(lid).Dst)
				if t.IsSwitch(topo.NodeID(m)) && 1+chain[m] > best {
					best = 1 + chain[m]
				}
			}
			if best > len(switches) {
				best = len(switches)
			}
			if best > chain[n] {
				chain[n] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	max := 0
	for _, n := range switches {
		if chain[n] > max {
			max = chain[n]
		}
	}
	return max
}
