package horizon

// Planner-path tests: the rolling-horizon solver reached through a
// session (core.Planner) rather than the one-shot Solve wrapper. The
// session's fingerprint-keyed basis store is what turns a repeated
// request into a chain of exact warm starts, and the policy routing is
// what sends large LP-eligible requests here without the caller asking.

import (
	"context"
	"sync"
	"testing"

	"teccl/internal/collective"
	"teccl/internal/core"
	"teccl/internal/topo"
)

// TestPlannerHorizonWarmStarts pins the session warm-basis contract: a
// second identical ForceHorizon request must warm-start its first
// window from the basis the first request recorded (exact fingerprint
// hits, not name-matched projections).
func TestPlannerHorizonWarmStarts(t *testing.T) {
	tp := topo.DGX1()
	pl := core.NewPlanner(tp, core.PlannerOptions{Policy: core.ForceHorizon})
	defer pl.Close()
	d := collective.AllToAll(tp.NumNodes(), gpuIDs(tp), 1, 25e3)
	opt := core.Options{HorizonWindow: 8, HorizonOverlap: 7}

	first, err := pl.Plan(context.Background(), core.Request{Demand: d.Clone(), Options: &opt})
	if err != nil {
		t.Fatalf("first plan: %v", err)
	}
	if first.Solver != core.SolverHorizon {
		t.Fatalf("first plan solved by %v, want horizon", first.Solver)
	}
	if first.WarmStart {
		t.Error("first plan claims a warm start on an empty session")
	}
	if first.Windows < 2 {
		t.Fatalf("expected a multi-window solve, got %d windows", first.Windows)
	}

	second, err := pl.Plan(context.Background(), core.Request{Demand: d.Clone(), Options: &opt})
	if err != nil {
		t.Fatalf("second plan: %v", err)
	}
	if !second.WarmStart {
		t.Error("second identical plan did not warm-start")
	}
	if second.Schedule.FinishEpoch() != first.Schedule.FinishEpoch() {
		t.Errorf("finish epoch changed across identical requests: %d then %d",
			first.Schedule.FinishEpoch(), second.Schedule.FinishEpoch())
	}

	st := pl.Stats()
	if st.WarmStartHits == 0 {
		t.Error("session counted no warm-start hits")
	}
	// Every window of the second solve should have hit the fingerprint
	// store exactly (same demand, same windows, same committed state).
	if st.ExactBasisHits < first.Windows {
		t.Errorf("exact basis hits %d < %d windows of the repeat solve",
			st.ExactBasisHits, first.Windows)
	}
}

// TestPlannerHorizonConcurrent hammers one session with concurrent
// identical horizon requests; under -race this pins the driver's use of
// the shared SessionHooks basis store as data-race-free, and every
// result must still validate and agree on the finish epoch.
func TestPlannerHorizonConcurrent(t *testing.T) {
	tp := topo.DGX1()
	pl := core.NewPlanner(tp, core.PlannerOptions{Policy: core.ForceHorizon})
	defer pl.Close()
	d := collective.AllToAll(tp.NumNodes(), gpuIDs(tp), 1, 25e3)
	opt := core.Options{HorizonWindow: 8, HorizonOverlap: 7}

	const workers = 4
	finish := make([]int, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := pl.Plan(context.Background(), core.Request{Demand: d.Clone(), Options: &opt})
			if err != nil {
				errs[w] = err
				return
			}
			if err := p.Schedule.Validate(); err != nil {
				errs[w] = err
				return
			}
			finish[w] = p.Schedule.FinishEpoch()
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w := 1; w < workers; w++ {
		if finish[w] != finish[0] {
			t.Errorf("worker %d finished at epoch %d, worker 0 at %d", w, finish[w], finish[0])
		}
	}
}

// TestCostModelPolicyHorizonRouting exercises the HorizonCells knob with
// the solver actually registered (this package's init): above the cell
// threshold an LP-eligible request routes to the horizon decomposition,
// a negative threshold disables the routing, and multicast requests are
// never routed here.
func TestCostModelPolicyHorizonRouting(t *testing.T) {
	tp := topo.DGX1()
	atoa := collective.AllToAll(tp.NumNodes(), gpuIDs(tp), 1, 25e3)
	ag := collective.AllGather(tp.NumNodes(), gpuIDs(tp), 1, 25e3)
	in := policyInput(tp, atoa)

	if got := (core.CostModelPolicy{HorizonCells: 1}).Choose(in); got != core.SolverHorizon {
		t.Errorf("one-cell threshold: got %v, want horizon", got)
	}
	if got := (core.CostModelPolicy{HorizonCells: 1 << 30}).Choose(in); got != core.SolverLP {
		t.Errorf("huge threshold: got %v, want lp", got)
	}
	if got := (core.CostModelPolicy{HorizonCells: -1}).Choose(in); got != core.SolverLP {
		t.Errorf("negative threshold must disable horizon routing: got %v, want lp", got)
	}
	if got := (core.CostModelPolicy{HorizonCells: 1}).Choose(policyInput(tp, ag)); got == core.SolverHorizon {
		t.Error("multicast request routed to the horizon LP decomposition")
	}

	// End to end: a session whose policy prices this request over the
	// threshold must answer it with the horizon solver.
	pl := core.NewPlanner(tp, core.PlannerOptions{Policy: core.CostModelPolicy{HorizonCells: 1}})
	defer pl.Close()
	p, err := pl.Plan(context.Background(), core.Request{Demand: atoa.Clone()})
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if p.Solver != core.SolverHorizon {
		t.Errorf("session solved with %v, want horizon", p.Solver)
	}
	if err := p.Schedule.Validate(); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

// policyInput builds a PolicyInput the way a Planner session does.
func policyInput(tp *topo.Topology, d *collective.Demand) core.PolicyInput {
	tau := core.DeriveTau(tp, d.ChunkBytes, core.FastestLink, 0)
	return core.PolicyInput{
		Topology:  tp,
		Demand:    d,
		NumGPUs:   len(tp.GPUs()),
		Multicast: d.HasMulticast(),
		Tau:       tau,
		EstimateEpochs: func() int {
			return core.EstimateEpochs(tp, d, tau)
		},
	}
}
