package milp

import (
	"math/rand"
	"testing"
	"time"

	"teccl/internal/lp"
)

// hardKnapsack builds an instance whose exact solve takes a while.
func hardKnapsack(rng *rand.Rand, n int) (*Problem, []lp.VarID) {
	p := lp.NewProblem(lp.Maximize)
	var ints []lp.VarID
	var terms []lp.Term
	for i := 0; i < n; i++ {
		v := p.AddVar("", 0, 1, 10+rng.Float64())
		ints = append(ints, v)
		terms = append(terms, lp.Term{Var: v, Coeff: 5 + rng.Float64()})
	}
	p.AddRow(terms, lp.LE, float64(n)*5.5/2)
	return &Problem{LP: p, Integer: ints}, ints
}

func TestTimeLimitPropagatesToLP(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p, _ := hardKnapsack(rng, 60)
	start := time.Now()
	sol := Solve(p, Options{TimeLimit: 50 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("time limit ignored: %v", elapsed)
	}
	// Any coherent outcome is acceptable under a tight limit.
	switch sol.Status {
	case StatusOptimal, StatusFeasible, StatusNoSolution:
	default:
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestRootIterLimitWithIncumbentReturnsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, ints := hardKnapsack(rng, 80)
	// All-zeros is integer feasible for a knapsack.
	x := make([]float64, p.LP.NumVars())
	sol := Solve(p, Options{
		TimeLimit:  time.Nanosecond, // expire immediately
		IncumbentX: x,
	})
	if sol.Status != StatusFeasible && sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want feasible fallback", sol.Status)
	}
	if sol.X == nil {
		t.Fatal("no incumbent returned")
	}
	for _, v := range ints {
		if sol.X[v] != 0 && sol.Status == StatusFeasible {
			// The provided incumbent was all zeros; a Feasible fallback
			// must return it unchanged (unless search improved it).
			break
		}
	}
}

func TestIncumbentOnlyPruning(t *testing.T) {
	// Provide the known optimum as incumbent: search should confirm it
	// quickly and return optimal.
	p := lp.NewProblem(lp.Maximize)
	a := p.AddVar("a", 0, 1, 3)
	b := p.AddVar("b", 0, 1, 2)
	p.AddRow([]lp.Term{{Var: a, Coeff: 1}, {Var: b, Coeff: 1}}, lp.LE, 1)
	x := make([]float64, 2)
	x[a] = 1
	sol := Solve(&Problem{LP: p, Integer: []lp.VarID{a, b}}, Options{IncumbentX: x})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective != 3 {
		t.Fatalf("objective = %g, want 3", sol.Objective)
	}
}

func TestMaxNodesLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, _ := hardKnapsack(rng, 40)
	sol := Solve(p, Options{MaxNodes: 3})
	if sol.Nodes > 3 {
		t.Fatalf("explored %d nodes despite limit 3", sol.Nodes)
	}
}
