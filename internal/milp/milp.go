// Package milp implements a branch-and-bound mixed-integer linear program
// solver on top of the internal/lp simplex. It provides the pieces of the
// Gurobi feature set that TE-CCL relies on: exact solves, relative
// optimality-gap reporting (the primal-dual gap of §5), an early-stop gap
// threshold (the paper stops Gurobi at a 30% gap for ALLGATHER), and time
// limits (the paper applies a 2-hour timeout).
//
// Every node below the root resumes the simplex from its parent's basis
// snapshot (lp.Options.WarmStart): after one branching bound change the
// parent optimum is a few pivots from the child's, so per-node iteration
// counts sit far below the root's (see Solution.RootIterations /
// NodeIterations). The root itself can be seeded from a related solve via
// Options.RootWarmStart, which the core layer uses to chain makespan
// re-solves and A* rounds.
package milp

import (
	"container/heap"
	"math"
	"time"

	"teccl/internal/lp"
)

// Problem is a mixed-integer linear program: an LP plus a set of variables
// constrained to integer values.
type Problem struct {
	LP      *lp.Problem
	Integer []lp.VarID
}

// Status is the outcome of a MILP solve.
type Status int8

// Solve outcomes.
const (
	// StatusOptimal means the incumbent is proven optimal (gap ~ 0).
	StatusOptimal Status = iota
	// StatusFeasible means a limit (time, nodes, gap) stopped the search
	// with an incumbent in hand; Gap reports how far it may be from optimal.
	StatusFeasible
	// StatusInfeasible means no integer-feasible point exists.
	StatusInfeasible
	// StatusNoSolution means a limit stopped the search before any
	// incumbent was found.
	StatusNoSolution
	// StatusError means the underlying LP solver failed numerically.
	StatusError
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusNoSolution:
		return "no solution"
	case StatusError:
		return "error"
	}
	return "unknown"
}

// Options tunes the search. The zero value searches to optimality.
type Options struct {
	// TimeLimit stops the search after this wall-clock duration; 0 means
	// no limit.
	TimeLimit time.Duration
	// GapLimit stops the search once the relative primal-dual gap falls
	// to or below this value (e.g. 0.3 reproduces the paper's Gurobi
	// early-stop). 0 means solve to optimality.
	GapLimit float64
	// MaxNodes caps branch-and-bound nodes; 0 means no limit.
	MaxNodes int
	// LP tunes the per-node LP solves.
	LP lp.Options
	// IncumbentX optionally provides a known integer-feasible point to
	// warm-start pruning (a caller-verified heuristic solution). Its
	// objective is computed from the problem's cost vector.
	IncumbentX []float64
	// RootWarmStart optionally seeds the root relaxation with a basis from
	// an earlier related solve (e.g. the previous horizon in a makespan
	// search, or the previous round of the A* decomposition).
	RootWarmStart *lp.Basis
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status    Status
	Objective float64   // incumbent objective (problem direction)
	X         []float64 // incumbent point
	Bound     float64   // best proven bound on the optimum
	Gap       float64   // relative gap between Objective and Bound
	Nodes     int       // branch-and-bound nodes explored
	Elapsed   time.Duration

	// RootIterations is the simplex iteration count of the root
	// relaxation; NodeIterations is the total across all non-root node
	// re-solves, each warm-started from its parent's basis, so
	// NodeIterations/Nodes is typically far below RootIterations.
	RootIterations int
	NodeIterations int
	// Refactorizations counts basis factorizations across the root and
	// every node re-solve.
	Refactorizations int
	// RootBasis is the root relaxation's final basis, reusable to
	// warm-start a related MILP solve via Options.RootWarmStart.
	RootBasis *lp.Basis
}

const intTol = 1e-6

// node is one branch-and-bound subproblem, defined by a chain of bound
// changes relative to the root problem.
type node struct {
	bound   float64 // LP relaxation objective (problem direction)
	changes *boundChange
	basis   *lp.Basis // parent's optimal basis (warm-start hint)
	id      int
	depth   int
}

type boundChange struct {
	v      lp.VarID
	lo, hi float64
	parent *boundChange
}

// nodeHeap is a best-first priority queue (best LP bound first).
type nodeHeap struct {
	nodes []*node
	max   bool // true when the problem maximizes
}

func (h *nodeHeap) Len() int { return len(h.nodes) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.nodes[i], h.nodes[j]
	if a.bound != b.bound {
		if h.max {
			return a.bound > b.bound
		}
		return a.bound < b.bound
	}
	return a.id < b.id
}
func (h *nodeHeap) Swap(i, j int)      { h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i] }
func (h *nodeHeap) Push(x interface{}) { h.nodes = append(h.nodes, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.nodes
	n := len(old)
	it := old[n-1]
	h.nodes = old[:n-1]
	return it
}

// Solve runs branch and bound. The problem's LP is temporarily mutated
// (variable bounds) during the search and restored before returning.
func Solve(p *Problem, opt Options) *Solution {
	start := time.Now()
	isMax := p.LP.Dir == lp.Maximize

	better := func(a, b float64) bool {
		if isMax {
			return a > b
		}
		return a < b
	}

	// Save original bounds of integer variables so we can restore them.
	origLo := make(map[lp.VarID]float64, len(p.Integer))
	origHi := make(map[lp.VarID]float64, len(p.Integer))
	for _, v := range p.Integer {
		lo, hi := p.LP.Bounds(v)
		origLo[v], origHi[v] = lo, hi
	}
	defer func() {
		for _, v := range p.Integer {
			p.LP.SetBounds(v, origLo[v], origHi[v])
		}
	}()

	applyChanges := func(c *boundChange) {
		// Reset then apply the chain root-to-leaf. Chains are short
		// (one entry per branching depth).
		for _, v := range p.Integer {
			p.LP.SetBounds(v, origLo[v], origHi[v])
		}
		var stack []*boundChange
		for ; c != nil; c = c.parent {
			stack = append(stack, c)
		}
		for i := len(stack) - 1; i >= 0; i-- {
			p.LP.SetBounds(stack[i].v, stack[i].lo, stack[i].hi)
		}
	}

	sol := &Solution{Status: StatusNoSolution}
	worst := math.Inf(-1)
	if !isMax {
		worst = math.Inf(1)
	}
	incumbent := worst
	var incumbentX []float64
	bestBound := worst // tightest bound proven so far (from open nodes)
	if opt.IncumbentX != nil {
		incumbentX = append([]float64(nil), opt.IncumbentX...)
		incumbent = 0
		for j := 0; j < p.LP.NumVars(); j++ {
			incumbent += p.LP.Obj(lp.VarID(j)) * incumbentX[j]
		}
	}

	relGap := func() float64 {
		if incumbentX == nil {
			return math.Inf(1)
		}
		return math.Abs(bestBound-incumbent) / math.Max(1e-9, math.Abs(incumbent))
	}

	// Fractionality-based branching variable selection.
	pickBranch := func(x []float64) (lp.VarID, float64, bool) {
		bestV, bestFrac, found := lp.VarID(-1), -1.0, false
		for _, v := range p.Integer {
			xv := x[v]
			f := xv - math.Floor(xv)
			frac := math.Min(f, 1-f)
			if frac <= intTol {
				continue
			}
			if frac > bestFrac {
				bestV, bestFrac, found = v, xv, true
			}
		}
		return bestV, bestFrac, found
	}
	_ = pickBranch

	h := &nodeHeap{max: isMax}
	heap.Init(h)
	nextID := 0
	push := func(bound float64, changes *boundChange, basis *lp.Basis, depth int) {
		heap.Push(h, &node{bound: bound, changes: changes, basis: basis, id: nextID, depth: depth})
		nextID++
	}

	// Propagate the wall-clock limit into individual LP solves so a
	// single slow relaxation cannot blow past the budget.
	lpOpt := opt.LP
	if opt.TimeLimit > 0 && lpOpt.Deadline.IsZero() {
		lpOpt.Deadline = start.Add(opt.TimeLimit)
	}

	// Child-node LP options: reoptimize from the parent basis with the
	// dual simplex — a parent optimum stays dual feasible after the
	// branching bound change, so the dual walks back to the child optimum
	// with no feasibility phase — and skip presolve, since a node LP
	// differs from its parent by a single bound, far too little to repay
	// a fresh reduction pass.
	childOpt := lpOpt
	if childOpt.Method == lp.MethodAuto {
		childOpt.Method = lp.MethodDual
	}
	childOpt.NoPresolve = true

	// Root.
	lpOpt.WarmStart = opt.RootWarmStart
	rootSol, err := lp.Solve(p.LP, lpOpt)
	if rootSol != nil {
		sol.RootIterations = rootSol.Iterations
		sol.Refactorizations = rootSol.Refactorizations
		sol.RootBasis = rootSol.Basis
	}
	if err != nil || rootSol.Status == lp.StatusNumericalError {
		sol.Status = StatusError
		sol.Elapsed = time.Since(start)
		return sol
	}
	switch rootSol.Status {
	case lp.StatusInfeasible:
		sol.Status = StatusInfeasible
		sol.Elapsed = time.Since(start)
		return sol
	case lp.StatusUnbounded:
		sol.Status = StatusError
		sol.Elapsed = time.Since(start)
		return sol
	case lp.StatusIterLimit:
		// The root relaxation ran out of budget. With a caller-provided
		// incumbent the search can still answer (gap unknown); without
		// one there is nothing to return.
		if incumbentX != nil {
			sol.Status = StatusFeasible
			sol.Objective = incumbent
			sol.X = incumbentX
			sol.Bound = bestBound
			sol.Gap = math.Inf(1)
			sol.Elapsed = time.Since(start)
			return sol
		}
		sol.Status = StatusError
		sol.Elapsed = time.Since(start)
		return sol
	}
	push(rootSol.Objective, nil, rootSol.Basis, 0)

	nodes := 0
	hitLimit := false
	for h.Len() > 0 {
		if opt.MaxNodes > 0 && nodes >= opt.MaxNodes {
			hitLimit = true
			break
		}
		if opt.TimeLimit > 0 && time.Since(start) > opt.TimeLimit {
			hitLimit = true
			break
		}

		nd := heap.Pop(h).(*node)
		bestBound = nd.bound
		// Prune by bound.
		if incumbentX != nil {
			if isMax && nd.bound <= incumbent+1e-9 {
				continue
			}
			if !isMax && nd.bound >= incumbent-1e-9 {
				continue
			}
		}
		if incumbentX != nil && opt.GapLimit > 0 && relGap() <= opt.GapLimit {
			hitLimit = true
			break
		}

		nodes++
		applyChanges(nd.changes)
		// Resume from the parent's basis: after a single bound change the
		// parent optimum is a few dual pivots from the child's.
		nodeOpt := childOpt
		nodeOpt.WarmStart = nd.basis
		lpSol, err := lp.Solve(p.LP, nodeOpt)
		if lpSol != nil {
			sol.NodeIterations += lpSol.Iterations
			sol.Refactorizations += lpSol.Refactorizations
		}
		if err != nil || lpSol.Status == lp.StatusNumericalError ||
			lpSol.Status == lp.StatusIterLimit || lpSol.Status == lp.StatusUnbounded {
			// Treat pathological subproblems as pruned but remember the
			// search is no longer exhaustive.
			hitLimit = true
			continue
		}
		if lpSol.Status == lp.StatusInfeasible {
			continue
		}
		// Re-prune with the fresh (tighter) LP bound.
		if incumbentX != nil {
			if isMax && lpSol.Objective <= incumbent+1e-9 {
				continue
			}
			if !isMax && lpSol.Objective >= incumbent-1e-9 {
				continue
			}
		}

		v, _, frac := pickBranch(lpSol.X)
		if !frac {
			// Integer feasible: candidate incumbent.
			if better(lpSol.Objective, incumbent) {
				incumbent = lpSol.Objective
				incumbentX = append([]float64(nil), lpSol.X...)
			}
			continue
		}

		xv := lpSol.X[v]
		// The chain may have tightened bounds; read the effective ones.
		elo, ehi := p.LP.Bounds(v)
		down := math.Floor(xv)
		up := math.Ceil(xv)
		if down >= elo-1e-9 {
			push(lpSol.Objective, &boundChange{v: v, lo: elo, hi: down, parent: nd.changes}, lpSol.Basis, nd.depth+1)
		}
		if up <= ehi+1e-9 {
			push(lpSol.Objective, &boundChange{v: v, lo: up, hi: ehi, parent: nd.changes}, lpSol.Basis, nd.depth+1)
		}
	}

	sol.Nodes = nodes
	sol.Elapsed = time.Since(start)

	if h.Len() == 0 && !hitLimit {
		// Tree exhausted: incumbent (if any) is optimal.
		if incumbentX == nil {
			sol.Status = StatusInfeasible
			return sol
		}
		sol.Status = StatusOptimal
		sol.Objective = incumbent
		sol.X = incumbentX
		sol.Bound = incumbent
		sol.Gap = 0
		return sol
	}

	if incumbentX == nil {
		sol.Status = StatusNoSolution
		return sol
	}
	sol.Status = StatusFeasible
	sol.Objective = incumbent
	sol.X = incumbentX
	sol.Bound = bestBound
	sol.Gap = relGap()
	if sol.Gap <= 1e-9 {
		sol.Status = StatusOptimal
		sol.Gap = 0
	}
	return sol
}
