// Package milp implements a branch-and-bound mixed-integer linear program
// solver on top of the internal/lp simplex. It provides the pieces of the
// Gurobi feature set that TE-CCL relies on: exact solves, relative
// optimality-gap reporting (the primal-dual gap of §5), an early-stop gap
// threshold (the paper stops Gurobi at a 30% gap for ALLGATHER), time
// limits (the paper applies a 2-hour timeout), and — like Gurobi — a
// concurrent tree search (Options.Workers).
//
// Every node below the root resumes the simplex from its parent's basis
// snapshot (lp.Options.WarmStart): after one branching bound change the
// parent optimum is a few pivots from the child's, so per-node iteration
// counts sit far below the root's (see Solution.RootIterations /
// NodeIterations). The root itself can be seeded from a related solve via
// Options.RootWarmStart, which the core layer uses to chain makespan
// re-solves and A* rounds.
//
// With Workers > 1 open nodes are evaluated concurrently: each worker
// owns a private clone of the problem (bound chains are applied to the
// clone, never the caller's LP) and resumes from a deep copy of the
// parent basis, so no two LP solves share mutable state. The default
// search is opportunistic — workers pull the best open node from a
// mutex-guarded heap and publish incumbents through an atomic for
// lock-free best-bound pruning — which maximizes throughput but lets
// equal-objective ties resolve by arrival order. Options.Deterministic
// instead evaluates nodes in synchronized rounds with a fixed ordering
// and a value-then-lexicographic incumbent rule, making the returned
// objective and point bit-identical for every worker count (see
// Options.Deterministic for the exact guarantee).
package milp

import (
	"container/heap"
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"teccl/internal/lp"
)

// Problem is a mixed-integer linear program: an LP plus a set of variables
// constrained to integer values.
type Problem struct {
	LP      *lp.Problem
	Integer []lp.VarID
}

// Status is the outcome of a MILP solve.
type Status int8

// Solve outcomes.
const (
	// StatusOptimal means the incumbent is proven optimal (gap ~ 0).
	StatusOptimal Status = iota
	// StatusFeasible means a limit (time, nodes, gap) stopped the search
	// with an incumbent in hand; Gap reports how far it may be from optimal.
	StatusFeasible
	// StatusInfeasible means no integer-feasible point exists.
	StatusInfeasible
	// StatusNoSolution means a limit stopped the search before any
	// incumbent was found.
	StatusNoSolution
	// StatusError means the underlying LP solver failed numerically.
	StatusError
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusNoSolution:
		return "no solution"
	case StatusError:
		return "error"
	}
	return "unknown"
}

// Options tunes the search. The zero value searches to optimality,
// serially.
type Options struct {
	// TimeLimit stops the search after this wall-clock duration; 0 means
	// no limit.
	TimeLimit time.Duration
	// Context, when non-nil, stops the search once the context is done
	// (cancelled or past its deadline). The search returns whatever it has
	// — the incumbent as StatusFeasible, or StatusNoSolution — exactly as
	// it does when TimeLimit expires; the context is also propagated into
	// every node LP solve so a cancellation interrupts a relaxation
	// mid-pivot rather than waiting for it to finish.
	Context context.Context
	// Progress, when non-nil, is called after every evaluated node (and on
	// root completion) with the search state so far. It must be fast and
	// must not call back into the solver. Calls never overlap — the
	// opportunistic driver invokes it under the search lock, the serial
	// and deterministic drivers from their single coordinating goroutine
	// — but successive calls may come from different goroutines.
	Progress func(ProgressInfo)
	// GapLimit stops the search once the relative primal-dual gap falls
	// to or below this value (e.g. 0.3 reproduces the paper's Gurobi
	// early-stop). 0 means solve to optimality.
	GapLimit float64
	// MaxNodes caps branch-and-bound nodes; 0 means no limit. With
	// Workers > 1 the cap is approximate: up to one extra round (at most
	// Workers-1 nodes) may be evaluated past it.
	MaxNodes int
	// Workers is the number of branch-and-bound nodes evaluated
	// concurrently; 0 or 1 evaluates serially. Each worker owns a private
	// clone of the LP (the caller's problem is never mutated) and a
	// private simplex instance warm-started from a deep copy of the
	// parent's basis, so worker count only changes scheduling, never what
	// any single node solve computes.
	Workers int
	// Deterministic makes the search result independent of Workers: open
	// nodes are evaluated in synchronized rounds in a fixed best-first
	// order, incumbents are applied in node order with a
	// value-then-lexicographic tie-break, and bound pruning is exact
	// (a node survives whenever its bound strictly beats the incumbent,
	// so equal-valued optima are always visited and the tie-break sees
	// the same candidate set regardless of evaluation order). For solves
	// run to optimality with no time/node limit, any Workers count
	// returns a bit-identical Objective and X. The price is a barrier
	// per round and the loss of equal-bound pruning; leave it off for
	// raw throughput.
	Deterministic bool
	// LP tunes the per-node LP solves.
	LP lp.Options
	// IncumbentX optionally provides a known integer-feasible point to
	// warm-start pruning (a caller-verified heuristic solution). Its
	// objective is computed from the problem's cost vector.
	IncumbentX []float64
	// RootWarmStart optionally seeds the root relaxation with a basis from
	// an earlier related solve (e.g. the previous horizon in a makespan
	// search, or the previous round of the A* decomposition).
	RootWarmStart *lp.Basis
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status    Status
	Objective float64   // incumbent objective (problem direction)
	X         []float64 // incumbent point
	Bound     float64   // best proven bound on the optimum
	Gap       float64   // relative gap between Objective and Bound
	Nodes     int       // branch-and-bound nodes explored
	Elapsed   time.Duration

	// RootIterations is the simplex iteration count of the root
	// relaxation; NodeIterations is the total across all non-root node
	// re-solves, each warm-started from its parent's basis, so
	// NodeIterations/Nodes is typically far below RootIterations.
	RootIterations int
	NodeIterations int
	// Refactorizations counts basis factorizations across the root and
	// every node re-solve; FTUpdates/UpdateNnz count the Forrest–Tomlin
	// updates (and their accumulated update-file nonzeros) that carried
	// pivots between them.
	Refactorizations int
	FTUpdates        int
	UpdateNnz        int
	// RootBasis is the root relaxation's final basis, reusable to
	// warm-start a related MILP solve via Options.RootWarmStart.
	RootBasis *lp.Basis
}

// ProgressInfo is a snapshot of the branch-and-bound search handed to
// Options.Progress after the root relaxation and after every evaluated
// node.
type ProgressInfo struct {
	Nodes      int     // nodes evaluated so far (0 right after the root)
	Open       int     // open nodes still on the heap
	Iterations int     // simplex iterations so far (root + all nodes)
	Incumbent  float64 // best integer-feasible objective (NaN when none)
	Bound      float64 // best proven bound on the optimum
	Gap        float64 // relative primal-dual gap (+Inf with no incumbent)
}

const intTol = 1e-6

// node is one branch-and-bound subproblem, defined by a chain of bound
// changes relative to the root problem.
type node struct {
	bound   float64 // LP relaxation objective (problem direction)
	changes *boundChange
	basis   *lp.Basis // parent's optimal basis (warm-start hint)
	id      int
	depth   int
}

type boundChange struct {
	v      lp.VarID
	lo, hi float64
	parent *boundChange
}

// nodeHeap is a best-first priority queue (best LP bound first).
type nodeHeap struct {
	nodes []*node
	max   bool // true when the problem maximizes
}

func (h *nodeHeap) Len() int { return len(h.nodes) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.nodes[i], h.nodes[j]
	if a.bound != b.bound {
		if h.max {
			return a.bound > b.bound
		}
		return a.bound < b.bound
	}
	return a.id < b.id
}
func (h *nodeHeap) Swap(i, j int)      { h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i] }
func (h *nodeHeap) Push(x interface{}) { h.nodes = append(h.nodes, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.nodes
	n := len(old)
	it := old[n-1]
	h.nodes = old[:n-1]
	return it
}

// atomicFloat publishes a float64 through an atomic word, for the
// lock-free incumbent reads of the opportunistic search.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) Store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) Load() float64   { return math.Float64frombits(a.bits.Load()) }

// search is the shared state of one branch-and-bound run. In the serial
// and deterministic drivers it is touched by one goroutine at a time; in
// the opportunistic driver every field below mu is guarded by it, and
// incObj mirrors the incumbent objective for lock-free pruning.
type search struct {
	p     *Problem
	opt   Options
	isMax bool
	start time.Time

	childOpt lp.Options // per-node LP options (dual reopt, no presolve)

	sol *Solution

	mu         sync.Mutex
	h          *nodeHeap
	nextID     int
	incumbent  float64 // worst value when incumbentX == nil
	incumbentX []float64
	bestBound  float64 // bound of the best node popped so far
	nodes      int
	hitLimit   bool

	incObj atomicFloat // mirrors incumbent for lock-free pruning
}

// worker owns the private problem clone one node evaluator uses. The
// clone's integer-variable bounds are reset to the root's and the node's
// bound chain applied before every solve, so evaluations on different
// workers never share mutable state.
type worker struct {
	prob           *lp.Problem
	origLo, origHi []float64 // root bounds per s.p.Integer entry
}

func (s *search) newWorker() *worker {
	w := &worker{
		prob:   s.p.LP.Clone(),
		origLo: make([]float64, len(s.p.Integer)),
		origHi: make([]float64, len(s.p.Integer)),
	}
	for i, v := range s.p.Integer {
		w.origLo[i], w.origHi[i] = w.prob.Bounds(v)
	}
	return w
}

// eval solves one node's LP on the worker's private clone, resuming from
// a deep copy of the parent basis.
func (w *worker) eval(s *search, nd *node) (*lp.Solution, error) {
	for i, v := range s.p.Integer {
		w.prob.SetBounds(v, w.origLo[i], w.origHi[i])
	}
	var stack []*boundChange
	for c := nd.changes; c != nil; c = c.parent {
		stack = append(stack, c)
	}
	for i := len(stack) - 1; i >= 0; i-- {
		w.prob.SetBounds(stack[i].v, stack[i].lo, stack[i].hi)
	}
	o := s.childOpt
	o.WarmStart = nd.basis.Clone()
	return lp.Solve(w.prob, o)
}

func (s *search) better(a, b float64) bool {
	if s.isMax {
		return a > b
	}
	return a < b
}

// pruned reports whether a node bound cannot beat the incumbent value
// inc. Exact pruning (the deterministic mode) discards only strictly
// worse bounds, keeping equal-bound nodes alive so every equal-valued
// optimum is visited and the lexicographic tie-break sees the same
// candidate set in every run; the slop variant additionally discards
// ties and bounds within 1e-9 of the incumbent.
func (s *search) pruned(bound, inc float64, exact bool) bool {
	if exact {
		if s.isMax {
			return bound < inc
		}
		return bound > inc
	}
	if s.isMax {
		return bound <= inc+1e-9
	}
	return bound >= inc-1e-9
}

func (s *search) relGap(bound, inc float64) float64 {
	return math.Abs(bound-inc) / math.Max(1e-9, math.Abs(inc))
}

// pickBranch selects the branching variable of x: fractionality-driven,
// with the same running-best rule the search has always used (the
// comparison key deliberately matches the historical implementation so
// the explored tree — and therefore which of several equally optimal
// schedules is returned — stays stable across refactors).
func (s *search) pickBranch(x []float64) (lp.VarID, bool) {
	bestV, bestKey, found := lp.VarID(-1), -1.0, false
	for _, v := range s.p.Integer {
		xv := x[v]
		f := xv - math.Floor(xv)
		frac := math.Min(f, 1-f)
		if frac <= intTol {
			continue
		}
		if frac > bestKey {
			bestV, bestKey, found = v, xv, true
		}
	}
	return bestV, found
}

// push enqueues a subproblem. Callers hold mu in the opportunistic driver.
func (s *search) push(bound float64, changes *boundChange, basis *lp.Basis, depth int) {
	heap.Push(s.h, &node{bound: bound, changes: changes, basis: basis, id: s.nextID, depth: depth})
	s.nextID++
}

// branch expands an evaluated node: updates the incumbent on an integer-
// feasible point, or pushes the two children of the branching variable.
// Callers hold mu in the opportunistic driver. effLo/effHi report the
// node's effective bounds for the branching variable.
func (s *search) branch(nd *node, lpSol *lp.Solution, exact bool) {
	v, frac := s.pickBranch(lpSol.X)
	if !frac {
		s.offerIncumbent(lpSol.Objective, lpSol.X, exact)
		return
	}
	xv := lpSol.X[v]
	elo, ehi := s.effBounds(nd, v)
	down := math.Floor(xv)
	up := math.Ceil(xv)
	if down >= elo-1e-9 {
		s.push(lpSol.Objective, &boundChange{v: v, lo: elo, hi: down, parent: nd.changes}, lpSol.Basis, nd.depth+1)
	}
	if up <= ehi+1e-9 {
		s.push(lpSol.Objective, &boundChange{v: v, lo: up, hi: ehi, parent: nd.changes}, lpSol.Basis, nd.depth+1)
	}
}

// effBounds resolves the effective bounds of v under nd's change chain
// (the chain may have tightened bounds; the caller's problem is pristine).
func (s *search) effBounds(nd *node, v lp.VarID) (float64, float64) {
	for c := nd.changes; c != nil; c = c.parent {
		if c.v == v {
			return c.lo, c.hi
		}
	}
	return s.p.LP.Bounds(v)
}

// offerIncumbent installs a candidate integer-feasible point. In exact
// (deterministic) mode equal-valued candidates are tie-broken toward the
// lexicographically smaller point, so the final incumbent does not depend
// on the order candidates arrive in.
func (s *search) offerIncumbent(obj float64, x []float64, exact bool) {
	replace := false
	if s.incumbentX == nil || s.better(obj, s.incumbent) {
		replace = true
	} else if exact && obj == s.incumbent && lexLess(x, s.incumbentX) {
		replace = true
	}
	if replace {
		s.incumbent = obj
		s.incumbentX = append([]float64(nil), x...)
		s.incObj.Store(obj)
	}
}

func lexLess(a, b []float64) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Solve runs branch and bound. The problem is treated as read-only: node
// bound changes are applied to private clones, so concurrent Solve calls
// may even share one Problem.
func Solve(p *Problem, opt Options) *Solution {
	s := &search{
		p:     p,
		opt:   opt,
		isMax: p.LP.Dir == lp.Maximize,
		start: time.Now(),
		sol:   &Solution{Status: StatusNoSolution},
	}

	worst := math.Inf(-1)
	if !s.isMax {
		worst = math.Inf(1)
	}
	s.incumbent = worst
	s.bestBound = worst
	s.incObj.Store(worst)
	if opt.IncumbentX != nil {
		x := append([]float64(nil), opt.IncumbentX...)
		obj := 0.0
		for j := 0; j < p.LP.NumVars(); j++ {
			obj += p.LP.Obj(lp.VarID(j)) * x[j]
		}
		s.incumbentX = x
		s.incumbent = obj
		s.incObj.Store(obj)
	}

	// Propagate the wall-clock limit and context into individual LP solves
	// so a single slow relaxation cannot blow past the budget or outlive a
	// cancellation.
	lpOpt := opt.LP
	if opt.TimeLimit > 0 && lpOpt.Deadline.IsZero() {
		lpOpt.Deadline = s.start.Add(opt.TimeLimit)
	}
	if opt.Context != nil && lpOpt.Context == nil {
		lpOpt.Context = opt.Context
	}

	// Child-node LP options: reoptimize from the parent basis with the
	// dual simplex — a parent optimum stays dual feasible after the
	// branching bound change, so the dual walks back to the child optimum
	// with no feasibility phase — and skip presolve, since a node LP
	// differs from its parent by a single bound, far too little to repay
	// a fresh reduction pass.
	s.childOpt = lpOpt
	if s.childOpt.Method == lp.MethodAuto {
		s.childOpt.Method = lp.MethodDual
	}
	s.childOpt.NoPresolve = true
	// Nodes always resume from their parent's basis; a root crash basis
	// must not leak into node re-solves.
	s.childOpt.Crash = nil

	// Root.
	lpOpt.WarmStart = opt.RootWarmStart
	rootSol, err := lp.Solve(p.LP, lpOpt)
	if rootSol != nil {
		s.sol.RootIterations = rootSol.Iterations
		s.sol.Refactorizations = rootSol.Refactorizations
		s.sol.FTUpdates = rootSol.FTUpdates
		s.sol.UpdateNnz = rootSol.UpdateNnz
		s.sol.RootBasis = rootSol.Basis
	}
	if err != nil || rootSol.Status == lp.StatusNumericalError {
		s.sol.Status = StatusError
		s.sol.Elapsed = time.Since(s.start)
		return s.sol
	}
	switch rootSol.Status {
	case lp.StatusInfeasible:
		s.sol.Status = StatusInfeasible
		s.sol.Elapsed = time.Since(s.start)
		return s.sol
	case lp.StatusUnbounded:
		s.sol.Status = StatusError
		s.sol.Elapsed = time.Since(s.start)
		return s.sol
	case lp.StatusIterLimit:
		// The root relaxation ran out of budget. With a caller-provided
		// incumbent the search can still answer (gap unknown); without
		// one there is nothing to return.
		if s.incumbentX != nil {
			s.sol.Status = StatusFeasible
			s.sol.Objective = s.incumbent
			s.sol.X = s.incumbentX
			s.sol.Bound = s.bestBound
			s.sol.Gap = math.Inf(1)
			s.sol.Elapsed = time.Since(s.start)
			return s.sol
		}
		s.sol.Status = StatusError
		s.sol.Elapsed = time.Since(s.start)
		return s.sol
	}

	s.h = &nodeHeap{max: s.isMax}
	heap.Init(s.h)
	s.push(rootSol.Objective, nil, rootSol.Basis, 0)
	s.bestBound = rootSol.Objective
	s.emitProgress()

	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	switch {
	case opt.Deterministic:
		s.runDeterministic(workers)
	case workers > 1:
		s.runOpportunistic(workers)
	default:
		s.runSerial()
	}

	s.sol.Nodes = s.nodes
	s.sol.Elapsed = time.Since(s.start)

	if s.h.Len() == 0 && !s.hitLimit {
		// Tree exhausted: incumbent (if any) is optimal.
		if s.incumbentX == nil {
			s.sol.Status = StatusInfeasible
			return s.sol
		}
		s.sol.Status = StatusOptimal
		s.sol.Objective = s.incumbent
		s.sol.X = s.incumbentX
		s.sol.Bound = s.incumbent
		s.sol.Gap = 0
		return s.sol
	}

	if s.incumbentX == nil {
		s.sol.Status = StatusNoSolution
		return s.sol
	}
	s.sol.Status = StatusFeasible
	s.sol.Objective = s.incumbent
	s.sol.X = s.incumbentX
	s.sol.Bound = s.bestBound
	s.sol.Gap = s.relGap(s.bestBound, s.incumbent)
	if s.sol.Gap <= 1e-9 {
		s.sol.Status = StatusOptimal
		s.sol.Gap = 0
	}
	return s.sol
}

// limitsHit checks the node, wall-clock, and context budgets.
func (s *search) limitsHit() bool {
	if s.opt.MaxNodes > 0 && s.nodes >= s.opt.MaxNodes {
		return true
	}
	if s.opt.TimeLimit > 0 && time.Since(s.start) > s.opt.TimeLimit {
		return true
	}
	if s.opt.Context != nil && s.opt.Context.Err() != nil {
		return true
	}
	return false
}

// emitProgress reports the current search state through Options.Progress.
// Callers hold mu in the opportunistic driver, so calls never overlap.
func (s *search) emitProgress() {
	if s.opt.Progress == nil {
		return
	}
	inc, gap := math.NaN(), math.Inf(1)
	if s.incumbentX != nil {
		inc = s.incumbent
		gap = s.relGap(s.bestBound, s.incumbent)
	}
	open := 0
	if s.h != nil {
		open = s.h.Len()
	}
	s.opt.Progress(ProgressInfo{
		Nodes:      s.nodes,
		Open:       open,
		Iterations: s.sol.RootIterations + s.sol.NodeIterations,
		Incumbent:  inc,
		Bound:      s.bestBound,
		Gap:        gap,
	})
}

// integrate folds one evaluated node back into the search: counters,
// pathological-status handling, re-pruning against the fresh LP bound,
// and incumbent update or branching. Callers hold mu in the opportunistic
// driver.
func (s *search) integrate(nd *node, lpSol *lp.Solution, err error, exact bool) {
	if lpSol != nil {
		s.sol.NodeIterations += lpSol.Iterations
		s.sol.Refactorizations += lpSol.Refactorizations
		s.sol.FTUpdates += lpSol.FTUpdates
		s.sol.UpdateNnz += lpSol.UpdateNnz
	}
	defer s.emitProgress()
	if err != nil || lpSol.Status == lp.StatusNumericalError ||
		lpSol.Status == lp.StatusIterLimit || lpSol.Status == lp.StatusUnbounded {
		// Treat pathological subproblems as pruned but remember the
		// search is no longer exhaustive.
		s.hitLimit = true
		return
	}
	if lpSol.Status == lp.StatusInfeasible {
		return
	}
	// Re-prune with the fresh (tighter) LP bound. In exact mode an
	// equal-valued node survives: an integer-feasible point must reach
	// the tie-break, and a fractional one may still hide one below it.
	if s.incumbentX != nil && s.pruned(lpSol.Objective, s.incumbent, exact) {
		return
	}
	s.branch(nd, lpSol, exact)
}

// runSerial is the single-threaded driver: the classic best-first loop,
// evaluating nodes one at a time on one private clone.
func (s *search) runSerial() {
	w := s.newWorker()
	for s.h.Len() > 0 {
		if s.limitsHit() {
			s.hitLimit = true
			return
		}
		nd := heap.Pop(s.h).(*node)
		s.bestBound = nd.bound
		if s.incumbentX != nil {
			if s.pruned(nd.bound, s.incumbent, false) {
				continue
			}
			if s.opt.GapLimit > 0 && s.relGap(s.bestBound, s.incumbent) <= s.opt.GapLimit {
				s.hitLimit = true
				return
			}
		}
		s.nodes++
		lpSol, err := w.eval(s, nd)
		s.integrate(nd, lpSol, err, false)
	}
}

// runDeterministic is the reproducible parallel driver: nodes are pulled
// in best-first order into rounds of up to `workers` entries, evaluated
// concurrently on private clones, and integrated in node order behind a
// barrier. Exact pruning plus the lexicographic incumbent tie-break make
// the result a pure function of the problem (see Options.Deterministic).
func (s *search) runDeterministic(workers int) {
	pool := make([]*worker, workers)
	for i := range pool {
		pool[i] = s.newWorker()
	}
	type slot struct {
		nd    *node
		lpSol *lp.Solution
		err   error
	}
	batch := make([]slot, 0, workers)
	for s.h.Len() > 0 {
		if s.limitsHit() {
			s.hitLimit = true
			return
		}
		batch = batch[:0]
		//teccl:allow-ctxcheck bounded: every iteration pops the heap or fills the batch; the round loop above polls limitsHit
		for len(batch) < workers && s.h.Len() > 0 {
			nd := heap.Pop(s.h).(*node)
			if len(batch) == 0 {
				s.bestBound = nd.bound // best-first: the round's first pop is the best open bound
			}
			if s.incumbentX != nil && s.pruned(nd.bound, s.incumbent, true) {
				continue
			}
			batch = append(batch, slot{nd: nd})
		}
		if len(batch) == 0 {
			return // every open node pruned: tree exhausted
		}
		if s.incumbentX != nil && s.opt.GapLimit > 0 &&
			s.relGap(s.bestBound, s.incumbent) <= s.opt.GapLimit {
			s.hitLimit = true
			return
		}
		if len(batch) == 1 {
			// No point paying goroutine fan-out for a singleton round.
			batch[0].lpSol, batch[0].err = pool[0].eval(s, batch[0].nd)
		} else {
			var wg sync.WaitGroup
			for i := range batch {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					batch[i].lpSol, batch[i].err = pool[i].eval(s, batch[i].nd)
				}(i)
			}
			wg.Wait()
		}
		for i := range batch {
			s.nodes++
			s.integrate(batch[i].nd, batch[i].lpSol, batch[i].err, true)
		}
	}
}

// runOpportunistic is the throughput driver: a free-running pool where
// each worker repeatedly pops the best open node under the heap mutex,
// evaluates it on its private clone, and folds the result back in. The
// incumbent objective is mirrored through an atomic so a worker returning
// from a long LP solve can notice it lost the race and drop its node
// without touching the lock ordering guarantees.
func (s *search) runOpportunistic(workers int) {
	cond := sync.NewCond(&s.mu)
	inFlight := make([]float64, workers)
	for i := range inFlight {
		inFlight[i] = math.NaN()
	}
	stopped := false

	// openBound is the tightest provable bound on the optimum: the best
	// of the open heap and the nodes currently being evaluated.
	openBound := func() float64 {
		best := math.NaN()
		if s.h.Len() > 0 {
			best = s.h.nodes[0].bound
		}
		for _, b := range inFlight {
			if math.IsNaN(b) {
				continue
			}
			if math.IsNaN(best) || s.better(b, best) {
				best = b
			}
		}
		return best
	}

	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := s.newWorker()
			s.mu.Lock()
			defer s.mu.Unlock()
			for {
				if stopped {
					return
				}
				if s.limitsHit() {
					s.hitLimit = true
					stopped = true
					if b := openBound(); !math.IsNaN(b) {
						s.bestBound = b
					}
					cond.Broadcast()
					return
				}
				if s.h.Len() == 0 {
					idle := true
					for _, b := range inFlight {
						if !math.IsNaN(b) {
							idle = false
							break
						}
					}
					if idle {
						cond.Broadcast() // everyone done: release the waiters
						return
					}
					cond.Wait()
					continue
				}
				nd := heap.Pop(s.h).(*node)
				s.bestBound = nd.bound
				// The popped node counts as in flight from here on, so
				// openBound() (and the gap check below) never forgets the
				// bound it still has to disprove.
				inFlight[wi] = nd.bound
				if s.incumbentX != nil {
					if s.pruned(nd.bound, s.incumbent, false) {
						inFlight[wi] = math.NaN()
						continue
					}
					if s.opt.GapLimit > 0 {
						if b := openBound(); !math.IsNaN(b) && s.relGap(b, s.incumbent) <= s.opt.GapLimit {
							s.bestBound = b
							s.hitLimit = true
							stopped = true
							cond.Broadcast()
							return
						}
					}
				}
				s.nodes++
				s.mu.Unlock()

				lpSol, err := w.eval(s, nd)

				// Lock-free last-chance prune: if a better incumbent
				// landed while this node was solving, drop it before
				// re-entering the critical section.
				drop := false
				if err == nil && lpSol.Status == lp.StatusOptimal {
					if inc := s.incObj.Load(); !math.IsInf(inc, 0) && s.pruned(lpSol.Objective, inc, false) {
						drop = true
					}
				}

				s.mu.Lock()
				inFlight[wi] = math.NaN()
				if drop {
					s.sol.NodeIterations += lpSol.Iterations
					s.sol.Refactorizations += lpSol.Refactorizations
					s.sol.FTUpdates += lpSol.FTUpdates
					s.sol.UpdateNnz += lpSol.UpdateNnz
					// The node was counted as evaluated; keep the
					// Progress contract (a sample per evaluated node)
					// even though integrate is skipped.
					s.emitProgress()
					cond.Broadcast()
					continue
				}
				s.integrate(nd, lpSol, err, false)
				cond.Broadcast()
			}
		}(wi)
	}
	wg.Wait()
}
