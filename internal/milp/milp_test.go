package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"teccl/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary -> a=1, c=1: 17? or
	// b=1, c=1: 20 with weight 6. Optimal 20.
	p := lp.NewProblem(lp.Maximize)
	a := p.AddVar("a", 0, 1, 10)
	b := p.AddVar("b", 0, 1, 13)
	c := p.AddVar("c", 0, 1, 7)
	p.AddRow([]lp.Term{{Var: a, Coeff: 3}, {Var: b, Coeff: 4}, {Var: c, Coeff: 2}}, lp.LE, 6)
	sol := Solve(&Problem{LP: p, Integer: []lp.VarID{a, b, c}}, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-20) > 1e-6 {
		t.Fatalf("objective = %g, want 20", sol.Objective)
	}
	if math.Abs(sol.X[b]-1) > 1e-6 || math.Abs(sol.X[c]-1) > 1e-6 {
		t.Fatalf("want b=c=1, got %v", sol.X)
	}
}

func TestIntegerRounding(t *testing.T) {
	// max x s.t. 2x <= 7, x integer -> 3 (LP gives 3.5).
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVar("x", 0, lp.Inf, 1)
	p.AddRow([]lp.Term{{Var: x, Coeff: 2}}, lp.LE, 7)
	sol := Solve(&Problem{LP: p, Integer: []lp.VarID{x}}, Options{})
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-3) > 1e-6 {
		t.Fatalf("got %v obj %g, want optimal 3", sol.Status, sol.Objective)
	}
}

func TestMinimizeMILP(t *testing.T) {
	// min 3x + 2y s.t. x + y >= 3.5, integers -> (0,4)=8 or (1,3)=9 or
	// (2,2)=10... best is x=0,y=4 -> 8.
	p := lp.NewProblem(lp.Minimize)
	x := p.AddVar("x", 0, 10, 3)
	y := p.AddVar("y", 0, 10, 2)
	p.AddRow([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 1}}, lp.GE, 3.5)
	sol := Solve(&Problem{LP: p, Integer: []lp.VarID{x, y}}, Options{})
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-8) > 1e-6 {
		t.Fatalf("got %v obj %g, want optimal 8", sol.Status, sol.Objective)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	// 0.4 <= x <= 0.6 with x integer: no integer point.
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVar("x", 0.4, 0.6, 1)
	sol := Solve(&Problem{LP: p, Integer: []lp.VarID{x}}, Options{})
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestLPInfeasible(t *testing.T) {
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVar("x", 0, 1, 1)
	p.AddRow([]lp.Term{{Var: x, Coeff: 1}}, lp.GE, 2)
	sol := Solve(&Problem{LP: p, Integer: []lp.VarID{x}}, Options{})
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 2x + y, x integer, y continuous; x + y <= 2.5; x <= 1.7.
	// x=1, y=1.5 -> 3.5.
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVar("x", 0, 1.7, 2)
	y := p.AddVar("y", 0, lp.Inf, 1)
	p.AddRow([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 1}}, lp.LE, 2.5)
	sol := Solve(&Problem{LP: p, Integer: []lp.VarID{x}}, Options{})
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-3.5) > 1e-6 {
		t.Fatalf("got %v obj %g, want optimal 3.5", sol.Status, sol.Objective)
	}
}

func TestBoundsRestoredAfterSolve(t *testing.T) {
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVar("x", 0, 5, 1)
	p.AddRow([]lp.Term{{Var: x, Coeff: 2}}, lp.LE, 7)
	Solve(&Problem{LP: p, Integer: []lp.VarID{x}}, Options{})
	lo, hi := p.Bounds(x)
	if lo != 0 || hi != 5 {
		t.Fatalf("bounds mutated: [%g, %g]", lo, hi)
	}
}

func TestGapLimitStopsEarly(t *testing.T) {
	// A knapsack big enough that early stop at a loose gap terminates with
	// a feasible (not necessarily optimal) incumbent.
	rng := rand.New(rand.NewSource(7))
	p := lp.NewProblem(lp.Maximize)
	var ints []lp.VarID
	var terms []lp.Term
	for i := 0; i < 30; i++ {
		v := p.AddVar("", 0, 1, 1+rng.Float64()*9)
		ints = append(ints, v)
		terms = append(terms, lp.Term{Var: v, Coeff: 1 + rng.Float64()*4})
	}
	p.AddRow(terms, lp.LE, 20)
	sol := Solve(&Problem{LP: p, Integer: ints}, Options{GapLimit: 0.5})
	if sol.Status != StatusOptimal && sol.Status != StatusFeasible {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.X == nil {
		t.Fatal("no incumbent returned")
	}
	if sol.Status == StatusFeasible && sol.Gap > 0.5+1e-9 {
		t.Fatalf("gap %g exceeds limit", sol.Gap)
	}
}

func TestTimeLimit(t *testing.T) {
	p := lp.NewProblem(lp.Maximize)
	var ints []lp.VarID
	var terms []lp.Term
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		v := p.AddVar("", 0, 1, 1+rng.Float64())
		ints = append(ints, v)
		terms = append(terms, lp.Term{Var: v, Coeff: 1 + rng.Float64()})
	}
	p.AddRow(terms, lp.LE, 17.5)
	sol := Solve(&Problem{LP: p, Integer: ints}, Options{TimeLimit: time.Millisecond})
	// Either it finished very fast or it respected the limit; both fine,
	// but the call must return promptly and coherently.
	if sol.Elapsed > 5*time.Second {
		t.Fatalf("took %v despite 1ms limit", sol.Elapsed)
	}
}

// knapsackBrute solves a small 0/1 knapsack exactly by enumeration.
func knapsackBrute(values, weights []float64, cap float64) float64 {
	n := len(values)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var v, w float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += values[i]
				w += weights[i]
			}
		}
		if w <= cap && v > best {
			best = v
		}
	}
	return best
}

// TestQuickKnapsackMatchesBruteForce cross-checks branch and bound against
// exhaustive enumeration on random small knapsacks.
func TestQuickKnapsackMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		values := make([]float64, n)
		weights := make([]float64, n)
		p := lp.NewProblem(lp.Maximize)
		var ints []lp.VarID
		var terms []lp.Term
		for i := 0; i < n; i++ {
			values[i] = float64(1 + rng.Intn(20))
			weights[i] = float64(1 + rng.Intn(10))
			v := p.AddVar("", 0, 1, values[i])
			ints = append(ints, v)
			terms = append(terms, lp.Term{Var: v, Coeff: weights[i]})
		}
		cap := float64(5 + rng.Intn(25))
		p.AddRow(terms, lp.LE, cap)
		want := knapsackBrute(values, weights, cap)
		sol := Solve(&Problem{LP: p, Integer: ints}, Options{})
		if sol.Status != StatusOptimal {
			t.Logf("seed %d: status %v", seed, sol.Status)
			return false
		}
		if math.Abs(sol.Objective-want) > 1e-6 {
			t.Logf("seed %d: got %g want %g", seed, sol.Objective, want)
			return false
		}
		// Incumbent must be integral and within capacity.
		var w float64
		for i, v := range ints {
			xv := sol.X[v]
			if math.Abs(xv-math.Round(xv)) > 1e-6 {
				t.Logf("seed %d: fractional incumbent", seed)
				return false
			}
			w += weights[i] * xv
		}
		return w <= cap+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIntegerEqualitySystems checks random assignment-style problems
// with equality rows, which exercise phase-1 artificials under branching.
func TestQuickIntegerEqualitySystems(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3) // n x n assignment
		p := lp.NewProblem(lp.Minimize)
		cost := make([][]float64, n)
		vars := make([][]lp.VarID, n)
		for i := 0; i < n; i++ {
			cost[i] = make([]float64, n)
			vars[i] = make([]lp.VarID, n)
			for j := 0; j < n; j++ {
				cost[i][j] = float64(rng.Intn(50))
				vars[i][j] = p.AddVar("", 0, 1, cost[i][j])
			}
		}
		var ints []lp.VarID
		for i := 0; i < n; i++ {
			var rowT, colT []lp.Term
			for j := 0; j < n; j++ {
				rowT = append(rowT, lp.Term{Var: vars[i][j], Coeff: 1})
				colT = append(colT, lp.Term{Var: vars[j][i], Coeff: 1})
				ints = append(ints, vars[i][j])
			}
			p.AddRow(rowT, lp.EQ, 1)
			p.AddRow(colT, lp.EQ, 1)
		}
		sol := Solve(&Problem{LP: p, Integer: ints}, Options{})
		if sol.Status != StatusOptimal {
			t.Logf("seed %d: status %v", seed, sol.Status)
			return false
		}
		// Brute-force optimal assignment.
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		best := math.Inf(1)
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				var c float64
				for i, j := range perm {
					c += cost[i][j]
				}
				if c < best {
					best = c
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
		if math.Abs(sol.Objective-best) > 1e-6 {
			t.Logf("seed %d: got %g want %g", seed, sol.Objective, best)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusString(t *testing.T) {
	want := map[Status]string{
		StatusOptimal:    "optimal",
		StatusFeasible:   "feasible",
		StatusInfeasible: "infeasible",
		StatusNoSolution: "no solution",
		StatusError:      "error",
	}
	for st, w := range want {
		if st.String() != w {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), w)
		}
	}
	if Status(99).String() != "unknown" {
		t.Error("unknown status string wrong")
	}
}
