package milp

// Concurrency coverage for the worker-pool branch and bound: the
// deterministic-mode property (any Workers count returns bit-identical
// results), opportunistic-mode optimality, and -race stress tests that
// hammer Solve from many goroutines — including over one shared Problem,
// which the clone-based node evaluation must keep read-only.

import (
	"math"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"teccl/internal/lp"
)

// corpusProblem builds one instance of the MILP regression corpus:
// even seeds draw a correlated 0/1 knapsack (weak LP bounds, deep
// trees), odd seeds an assignment system with equality rows (phase-1
// pressure under branching). Both families are the ones the serial
// regression tests cross-check against brute force.
func corpusProblem(seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := lp.NewProblem(lp.Maximize)
	var ints []lp.VarID
	if seed%2 == 0 {
		n := 10 + rng.Intn(10)
		var terms []lp.Term
		var total float64
		for i := 0; i < n; i++ {
			w := float64(1 + rng.Intn(10))
			// Correlated values make the LP relaxation tight and the
			// tree deep — and produce frequent equal-objective ties,
			// exactly what the deterministic tie-break must survive.
			v := w + float64(rng.Intn(3))
			terms = append(terms, lp.Term{Var: p.AddVar("", 0, 1, v), Coeff: w})
			ints = append(ints, terms[len(terms)-1].Var)
			total += w
		}
		p.AddRow(terms, lp.LE, math.Floor(total/2))
		return &Problem{LP: p, Integer: ints}
	}
	n := 3 + rng.Intn(3)
	vars := make([][]lp.VarID, n)
	for i := 0; i < n; i++ {
		vars[i] = make([]lp.VarID, n)
		for j := 0; j < n; j++ {
			vars[i][j] = p.AddVar("", 0, 1, float64(rng.Intn(12)))
			ints = append(ints, vars[i][j])
		}
	}
	for i := 0; i < n; i++ {
		var rowT, colT []lp.Term
		for j := 0; j < n; j++ {
			rowT = append(rowT, lp.Term{Var: vars[i][j], Coeff: 1})
			colT = append(colT, lp.Term{Var: vars[j][i], Coeff: 1})
		}
		p.AddRow(rowT, lp.EQ, 1)
		p.AddRow(colT, lp.EQ, 1)
	}
	return &Problem{LP: p, Integer: ints}
}

// TestWorkersDeterministic is the reproducibility property: in
// deterministic mode, Workers=1 and Workers=8 must return bit-identical
// objectives and points across the corpus.
func TestWorkersDeterministic(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		prob := corpusProblem(seed)
		a := Solve(prob, Options{Workers: 1, Deterministic: true})
		b := Solve(prob, Options{Workers: 8, Deterministic: true})
		if a.Status != b.Status {
			t.Fatalf("seed %d: status %v (W=1) vs %v (W=8)", seed, a.Status, b.Status)
		}
		if a.Status != StatusOptimal {
			t.Fatalf("seed %d: status %v, want optimal", seed, a.Status)
		}
		if math.Float64bits(a.Objective) != math.Float64bits(b.Objective) {
			t.Fatalf("seed %d: objective %v (W=1) vs %v (W=8) not bit-identical",
				seed, a.Objective, b.Objective)
		}
		if len(a.X) != len(b.X) {
			t.Fatalf("seed %d: point lengths differ", seed)
		}
		for j := range a.X {
			if math.Float64bits(a.X[j]) != math.Float64bits(b.X[j]) {
				t.Fatalf("seed %d: x[%d] = %v (W=1) vs %v (W=8)", seed, j, a.X[j], b.X[j])
			}
		}
	}
}

// TestDeterministicMatchesSerialObjective checks that deterministic mode
// (exact pruning, tie-broken incumbents) still lands on the same optimal
// value as the classic serial search.
func TestDeterministicMatchesSerialObjective(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		prob := corpusProblem(seed)
		serial := Solve(prob, Options{})
		det := Solve(prob, Options{Workers: 4, Deterministic: true})
		if serial.Status != StatusOptimal || det.Status != StatusOptimal {
			t.Fatalf("seed %d: status %v / %v", seed, serial.Status, det.Status)
		}
		if math.Abs(serial.Objective-det.Objective) > 1e-9 {
			t.Fatalf("seed %d: serial %v vs deterministic %v", seed, serial.Objective, det.Objective)
		}
	}
}

// TestOpportunisticOptimal checks the throughput mode proves the same
// optimum as the serial search on the corpus.
func TestOpportunisticOptimal(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		prob := corpusProblem(seed)
		serial := Solve(prob, Options{})
		opp := Solve(prob, Options{Workers: 4})
		if serial.Status != StatusOptimal || opp.Status != StatusOptimal {
			t.Fatalf("seed %d: status %v / %v", seed, serial.Status, opp.Status)
		}
		if math.Abs(serial.Objective-opp.Objective) > 1e-6 {
			t.Fatalf("seed %d: serial %v vs opportunistic %v", seed, serial.Objective, opp.Objective)
		}
	}
}

// TestSolveConcurrentStress hammers Solve from many goroutines on
// independent problems, each itself running a multi-worker search, so the
// race detector sees nested concurrency.
func TestSolveConcurrentStress(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for seed := int64(g * 10); seed < int64(g*10+6); seed++ {
				prob := corpusProblem(seed)
				want := Solve(prob, Options{})
				got := Solve(prob, Options{Workers: 1 + int(seed%4)})
				if got.Status != StatusOptimal || math.Abs(got.Objective-want.Objective) > 1e-6 {
					t.Errorf("goroutine %d seed %d: %v obj %v, want optimal %v",
						g, seed, got.Status, got.Objective, want.Objective)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSolveSharedProblemRace solves ONE shared Problem from many
// goroutines concurrently. Node bound changes land on private clones, so
// the shared problem must stay bit-for-bit untouched throughout.
func TestSolveSharedProblemRace(t *testing.T) {
	prob := corpusProblem(2)
	want := Solve(prob, Options{})
	if want.Status != StatusOptimal {
		t.Fatalf("status %v", want.Status)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got := Solve(prob, Options{Workers: 1 + g%3, Deterministic: g%2 == 0})
			if got.Status != StatusOptimal || math.Abs(got.Objective-want.Objective) > 1e-6 {
				t.Errorf("goroutine %d: %v obj %v, want %v", g, got.Status, got.Objective, want.Objective)
			}
		}(g)
	}
	wg.Wait()
	for _, v := range prob.Integer {
		lo, hi := prob.LP.Bounds(v)
		if lo != 0 || hi != 1 {
			t.Fatalf("shared problem bounds mutated: var %d [%g, %g]", v, lo, hi)
		}
	}
}

// benchProblem builds a branch-and-bound-heavy instance whose node LPs
// are substantial enough for parallel evaluation to pay: a correlated
// multi-knapsack over shared capacity rows.
func benchProblem(rows, vars int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := lp.NewProblem(lp.Maximize)
	ints := make([]lp.VarID, vars)
	weights := make([][]float64, rows)
	for r := range weights {
		weights[r] = make([]float64, vars)
	}
	for j := 0; j < vars; j++ {
		var wsum float64
		for r := 0; r < rows; r++ {
			w := 1 + rng.Float64()*9
			weights[r][j] = w
			wsum += w
		}
		ints[j] = p.AddVar("", 0, 1, wsum/float64(rows)+rng.Float64())
	}
	for r := 0; r < rows; r++ {
		terms := make([]lp.Term, vars)
		var total float64
		for j := 0; j < vars; j++ {
			terms[j] = lp.Term{Var: ints[j], Coeff: weights[r][j]}
			total += weights[r][j]
		}
		p.AddRow(terms, lp.LE, total*0.4)
	}
	return &Problem{LP: p, Integer: ints}
}

// BenchmarkMILPWorkers measures branch-and-bound node-evaluation
// throughput at growing worker counts: the same correlated multi-
// knapsack explored to a fixed node budget (its full tree is huge, so a
// budget keeps the denominator identical across worker counts). On a
// multi-core host the 4-worker run should finish the budget well over
// 1.5x faster than the serial one; on a single-core host it doubles as
// an overhead check (the pool should cost roughly nothing).
func BenchmarkMILPWorkers(b *testing.B) {
	const nodeBudget = 2000
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(strconv.Itoa(w), func(b *testing.B) {
			var nodes, iters int
			for i := 0; i < b.N; i++ {
				sol := Solve(benchProblem(16, 50, 5), Options{Workers: w, MaxNodes: nodeBudget})
				nodes += sol.Nodes
				iters += sol.NodeIterations
			}
			b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
			b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
		})
	}
}
