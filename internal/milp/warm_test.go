package milp

import (
	"math/rand"
	"testing"

	"teccl/internal/lp"
)

// knapsackMILP builds a 0/1 knapsack-style MILP with correlated weights
// so branch and bound has to explore a real tree.
func knapsackMILP(rng *rand.Rand, n int) *Problem {
	p := lp.NewProblem(lp.Maximize)
	var terms []lp.Term
	var ints []lp.VarID
	for j := 0; j < n; j++ {
		w := float64(3 + rng.Intn(17))
		v := w + float64(rng.Intn(9))
		x := p.AddVar("", 0, 1, v)
		terms = append(terms, lp.Term{Var: x, Coeff: w})
		ints = append(ints, x)
	}
	var cap float64
	for _, tm := range terms {
		cap += tm.Coeff
	}
	p.AddRow(terms, lp.LE, cap*0.37)
	return &Problem{LP: p, Integer: ints}
}

// TestWarmStartedNodesAreCheap asserts the acceptance criterion of the
// basis-reuse work: the average warm-started per-node simplex effort sits
// well below the cold root solve's.
func TestWarmStartedNodesAreCheap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := knapsackMILP(rng, 40)
	sol := Solve(p, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if sol.Nodes < 3 {
		t.Skipf("tree too small to measure (nodes=%d)", sol.Nodes)
	}
	if sol.RootIterations == 0 {
		t.Fatal("RootIterations not reported")
	}
	avg := float64(sol.NodeIterations) / float64(sol.Nodes)
	t.Logf("root=%d iters, nodes=%d, node total=%d (avg %.1f/node)",
		sol.RootIterations, sol.Nodes, sol.NodeIterations, avg)
	if avg >= float64(sol.RootIterations) {
		t.Fatalf("warm-started nodes average %.1f iterations, root took %d; warm start ineffective",
			avg, sol.RootIterations)
	}
}

// TestWarmVsColdSameIncumbent: the warm-start machinery must not change
// what branch and bound finds, only how fast it finds it.
func TestWarmVsColdSameIncumbent(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := knapsackMILP(rng, 25)
		sol := Solve(p, Options{})
		if sol.Status != StatusOptimal {
			t.Fatalf("seed %d: status %v", seed, sol.Status)
		}
		// Exhaustive-tree optimality is the equality oracle: re-solving
		// with the root basis as an external hint must agree.
		again := Solve(p, Options{RootWarmStart: sol.RootBasis})
		if again.Status != StatusOptimal {
			t.Fatalf("seed %d: rewarmed status %v", seed, again.Status)
		}
		if diff := sol.Objective - again.Objective; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("seed %d: objective %g vs rewarmed %g", seed, sol.Objective, again.Objective)
		}
	}
}
