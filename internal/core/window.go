package core

// window.go is the rolling-horizon half of the formulation split: the
// same §4.1 time-expanded LP, built over an epoch window [lo, hi)
// instead of the full horizon, with the committed prefix folded into
// boundary conditions. internal/horizon drives it; core owns it so the
// window model shares the exact variable naming, row ordering, and
// commodity indexing of buildLP — a single window spanning the full
// horizon produces a bit-identical problem (same fingerprint), which is
// what lets the session basis store and the name-transfer warm path
// treat window models like any other.

import (
	"fmt"
	"time"

	"teccl/internal/collective"
	"teccl/internal/lp"
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// WindowInstance is a preprocessed LP-form instance exposed to the
// rolling-horizon driver: the per-destination expanded demand, the
// derived epoch grid, and the shared commodity index. Construction
// mirrors prepLP (multicast expansion, auto-horizon estimate, greedy
// tightening) so the windowed and monolithic paths agree on K.
type WindowInstance struct {
	t    *topo.Topology
	d    *collective.Demand
	opt  Options
	in   *instance
	ix   *lpIndex
	tail []float64
}

// NewWindowInstance preprocesses (t, d, opt) exactly like the monolithic
// LP path: multicast demands are expanded per destination, an auto
// horizon is estimated and tightened by the greedy bound.
func NewWindowInstance(t *topo.Topology, d *collective.Demand, opt Options) *WindowInstance {
	if d.HasMulticast() {
		d = d.ExpandPerDestination()
	}
	in := newInstance(t, d, opt)
	wi := &WindowInstance{t: t, d: d, opt: opt, in: in}
	if len(in.comms) == 0 {
		return wi
	}
	if opt.Epochs == 0 {
		if bound, _ := lpGreedyBound(in); bound >= 0 && bound+1 < in.K {
			opt2 := opt
			opt2.Epochs = bound + 1
			in = newInstance(t, d, opt2)
			wi.in = in
		}
	}
	wi.ix = newLPIndex(in)
	wi.tail = lpTailWeights(in.K)
	return wi
}

// Empty reports whether the demand has no commodities (nothing to plan).
func (wi *WindowInstance) Empty() bool { return wi.ix == nil }

// EmptyResult is the trivial result for an empty instance.
func (wi *WindowInstance) EmptyResult(start time.Time) *Result {
	r := emptyResult(wi.in, start)
	r.Schedule.AllowCopy = false
	return r
}

// Epochs is the current horizon K in epochs.
func (wi *WindowInstance) Epochs() int { return wi.in.K }

// Tau is the derived epoch duration in seconds.
func (wi *WindowInstance) Tau() float64 { return wi.in.tau }

// SetEpochs rebuilds the instance over a longer horizon (same tau), used
// when the final window proves infeasible and the driver extends K.
func (wi *WindowInstance) SetEpochs(K int) {
	opt2 := wi.opt
	opt2.Epochs = K
	opt2.Tau = wi.in.tau
	wi.in = newInstance(wi.t, wi.d, opt2)
	wi.ix = newLPIndex(wi.in)
	wi.tail = lpTailWeights(wi.in.K)
}

// Topo is the instance's topology.
func (wi *WindowInstance) Topo() *topo.Topology { return wi.t }

// NumSources is the number of demanded-source commodities.
func (wi *WindowInstance) NumSources() int { return len(wi.ix.sources) }

// Source is the node ID of commodity si.
func (wi *WindowInstance) Source(si int) int { return wi.ix.sources[si] }

// Dem is the chunk count destination dst wants from commodity si.
func (wi *WindowInstance) Dem(si, dst int) float64 {
	if wi.ix.dem[si] == nil {
		return 0
	}
	return wi.ix.dem[si][dst]
}

// Buffered reports whether node n holds inventory for commodity si.
func (wi *WindowInstance) Buffered(si, n int) bool { return wi.ix.buffered(wi.in, si, n) }

// LandEpoch is the epoch by whose end a send at epoch e on link l is
// resident at the destination.
func (wi *WindowInstance) LandEpoch(l, e int) int { return wi.in.landEpoch(l, e) }

// MaxLinkSpan is the largest per-link delta+kappa: the number of epochs
// a single send can stay in flight. The driver sizes window overlaps
// from it so no committed send's landing falls outside its window.
func (wi *WindowInstance) MaxLinkSpan() int {
	m := 1
	for l := range wi.in.delta {
		if s := wi.in.delta[l] + wi.in.kappa[l]; s > m {
			m = s
		}
	}
	return m
}

// Objective evaluates the LP objective (priority-weighted discounted
// reads) of a stitched read allocation at this instance's horizon.
func (wi *WindowInstance) Objective(reads [][][]float64) float64 {
	return wi.ObjectiveAt(reads, wi.tail)
}

// ObjectiveAt evaluates the objective under a caller-supplied tail-weight
// vector (see LPTailWeights); reads at epochs past the vector's horizon
// contribute nothing. The certify pass uses it to score the stitched
// schedule at the monolithic solve's horizon for a like-for-like gap.
func (wi *WindowInstance) ObjectiveAt(reads [][][]float64, tail []float64) float64 {
	obj := 0.0
	for si, s := range wi.ix.sources {
		for dst := range reads[si] {
			if wi.Dem(si, dst) == 0 {
				continue
			}
			prio := 1.0
			if wi.opt.Priority != nil {
				if cs := wi.in.demand.DestWantsFromSource(s, dst); len(cs) > 0 {
					prio = wi.opt.priorityOf(s, cs[0], dst)
				}
			}
			for k, r := range reads[si][dst] {
				if r <= 0 || k >= len(tail)-1 {
					continue
				}
				obj += prio * tail[k] * r
			}
		}
	}
	return obj
}

// LPTailWeights exposes the LP objective's discounted tail weights for an
// arbitrary horizon K: consuming at epoch k earns sum_{j>=k} 1/(j+1).
func LPTailWeights(K int) []float64 { return lpTailWeights(K) }

// Decompose translates stitched full-horizon flow and read rates into a
// validated per-chunk schedule, via the same peeling pass the monolithic
// decompose uses. flows is consumed in place.
func (wi *WindowInstance) Decompose(flows, reads [][][]float64) (*schedule.Schedule, error) {
	return peelSchedule(wi.in, wi.ix.sources, wi.ix.dem, flows, reads)
}

// Boundary carries the committed prefix's state into a window solve.
// All quantities are in chunks, indexed over absolute epochs.
type Boundary struct {
	// Inv[si][n]: inventory of commodity si resident (and not yet
	// consumed or departed) at buffered node n when the window opens —
	// the pre-departure convention of the Appendix A init row, so the
	// boundary row "b[lo] + out(lo) = Inv" degenerates to exactly that
	// row at lo = 0.
	Inv [][]float64
	// Arr[si][n][k]: committed sends still in flight at the window
	// boundary, landing at buffered node n during epoch k >= lo. May be
	// nil (no in-flight state).
	Arr [][][]float64
	// CapUsed[l][k]: committed flow already occupying link l at epoch k;
	// subtracted from the window's sliding capacity budgets. May be nil.
	CapUsed [][]float64
	// Rem[si][dst]: demand not yet consumed by committed reads.
	Rem [][]float64
}

func (bd *Boundary) arrAt(si, n, k int) float64 {
	if bd.Arr == nil {
		return 0
	}
	return bd.Arr[si][n][k]
}

func (bd *Boundary) capUsedAt(l, k int) float64 {
	if bd.CapUsed == nil {
		return 0
	}
	return bd.CapUsed[l][k]
}

// InitialBoundary is the epoch-0 boundary: full supply at each source,
// nothing in flight, full demand remaining.
func (wi *WindowInstance) InitialBoundary() *Boundary {
	nN := wi.t.NumNodes()
	bd := &Boundary{
		Inv: make([][]float64, wi.NumSources()),
		Rem: make([][]float64, wi.NumSources()),
	}
	for si, s := range wi.ix.sources {
		bd.Inv[si] = make([]float64, nN)
		bd.Rem[si] = append([]float64(nil), wi.ix.dem[si]...)
		supply := 0.0
		for dst := 0; dst < nN; dst++ {
			supply += wi.ix.dem[si][dst]
		}
		bd.Inv[si][s] = supply
	}
	return bd
}

// WindowLP is one window's built problem plus the variable indexes
// needed to extract its solution.
type WindowLP struct {
	P     *lp.Problem
	Lo    int // first epoch in the window
	Hi    int // one past the last epoch in the window
	Final bool

	wi   *WindowInstance
	fvar [][][]int32
	bvar [][][]int32
	rvar [][][]int32
}

const remTol = 1e-9

// BuildWindow constructs the window LP over epochs [lo, hi): the same
// variables and rows as buildLP restricted to the window, with three
// boundary adaptations — inventory rows pin b[lo]+out(lo) to the carried
// inventory, conservation rows absorb committed in-flight arrivals on
// their right-hand side, and capacity budgets shrink by committed usage.
// Window flows are self-contained (they land by hi-1). Destination
// totals are <= remaining demand mid-stream and == remaining demand in
// the final window. With lo=0, hi=K, final=true and the initial
// boundary, the construction reduces term for term to buildLP.
func (wi *WindowInstance) BuildWindow(lo, hi int, final bool, bd *Boundary) (*WindowLP, error) {
	in, ix := wi.in, wi.ix
	t := in.topo
	K := in.K
	if hi > K {
		hi = K
	}
	if lo < 0 || lo >= hi {
		return nil, fmt.Errorf("core: window [%d,%d) out of range (K=%d)", lo, hi, K)
	}
	nL := t.NumLinks()
	nN := t.NumNodes()

	w := &WindowLP{P: lp.NewProblem(lp.Maximize), Lo: lo, Hi: hi, Final: final, wi: wi}
	p := w.P

	isBuffered := func(si, n int) bool { return ix.buffered(in, si, n) }

	// Flow variables: buildLP's construction restricted to departures in
	// [lo, hi) that also land inside the window.
	w.fvar = make([][][]int32, len(ix.sources))
	for si, s := range ix.sources {
		w.fvar[si] = make([][]int32, nL)
		for l := 0; l < nL; l++ {
			col := make([]int32, K)
			for k := range col {
				col[k] = noVar
			}
			w.fvar[si][l] = col
			if t.LinkDown(topo.LinkID(l)) {
				continue
			}
			lk := t.Link(topo.LinkID(l))
			for k := lo; k < hi; k++ {
				if ix.earliest[si][lk.Src] > k {
					continue
				}
				if in.landEpoch(l, k) > hi-1 {
					continue
				}
				if int(lk.Dst) == s {
					continue
				}
				col[k] = int32(p.AddVar(fmt.Sprintf("f[s%d,l%d,k%d]", s, l, k), 0, lp.Inf, 0))
			}
		}
	}

	// Buffer variables over the window's epoch boundaries [lo..hi].
	w.bvar = make([][][]int32, len(ix.sources))
	for si, s := range ix.sources {
		w.bvar[si] = make([][]int32, nN)
		for n := 0; n < nN; n++ {
			col := make([]int32, K+1)
			for k := range col {
				col[k] = noVar
			}
			w.bvar[si][n] = col
			if !isBuffered(si, n) {
				continue
			}
			blo := ix.earliest[si][n]
			if n == s {
				blo = 0
			}
			if blo < lo {
				blo = lo
			}
			for k := blo; k <= hi; k++ {
				col[k] = int32(p.AddVar(fmt.Sprintf("b[s%d,n%d,k%d]", s, n, k), 0, lp.Inf, 0))
			}
		}
	}

	// Read variables, bounded by the remaining (uncommitted) demand and
	// weighted by the full-horizon tails so window objectives are
	// comparable slices of the monolithic objective.
	tail := wi.tail
	w.rvar = make([][][]int32, len(ix.sources))
	for si, s := range ix.sources {
		w.rvar[si] = make([][]int32, nN)
		for dst := 0; dst < nN; dst++ {
			col := make([]int32, K)
			for k := range col {
				col[k] = noVar
			}
			w.rvar[si][dst] = col
			if ix.dem[si][dst] == 0 || bd.Rem[si][dst] <= remTol {
				continue
			}
			rlo := ix.earliest[si][dst] - 1
			if rlo < 0 {
				rlo = 0
			}
			if rlo < lo {
				rlo = lo
			}
			prio := 1.0
			if in.opt.Priority != nil {
				if cs := in.demand.DestWantsFromSource(s, dst); len(cs) > 0 {
					prio = in.opt.priorityOf(s, cs[0], dst)
				}
			}
			for k := rlo; k < hi; k++ {
				col[k] = int32(p.AddVar(fmt.Sprintf("r[s%d,d%d,k%d]", s, dst, k), 0, bd.Rem[si][dst], prio*tail[k]))
			}
		}
	}

	wfAt := func(si, l, k int) int32 {
		if k < lo || k >= hi {
			return noVar
		}
		return w.fvar[si][l][k]
	}

	// Boundary inventory rows: b[lo] plus epoch-lo departures equal the
	// carried-in inventory (the windowed init row; at lo=0 only sources
	// have a b[0] variable and Inv equals supply, reproducing Appendix A
	// exactly).
	for si := range ix.sources {
		for n := 0; n < nN; n++ {
			b := w.bvar[si][n][lo]
			inv := bd.Inv[si][n]
			if b == noVar {
				if inv > 1e-6 {
					return nil, fmt.Errorf("core: window [%d,%d): %.6g chunks of source %d stranded at bufferless node %d",
						lo, hi, inv, ix.sources[si], n)
				}
				continue
			}
			terms := []lp.Term{{Var: lp.VarID(b), Coeff: 1}}
			for _, lid := range t.Out(topo.NodeID(n)) {
				if f := w.fvar[si][int(lid)][lo]; f != noVar {
					terms = append(terms, lp.Term{Var: lp.VarID(f), Coeff: 1})
				}
			}
			p.AddRow(terms, lp.EQ, inv)
		}
	}

	// Conservation for buffered nodes, with committed in-flight arrivals
	// landing during epoch k credited on the right-hand side:
	//   B_k + in(k) + Arr(k) = B_{k+1} + R_k + out(k+1)
	for si := range ix.sources {
		for n := 0; n < nN; n++ {
			if !isBuffered(si, n) {
				continue
			}
			for k := lo; k < hi; k++ {
				var terms []lp.Term
				if b := w.bvar[si][n][k]; b != noVar {
					terms = append(terms, lp.Term{Var: lp.VarID(b), Coeff: 1})
				}
				for _, lid := range t.In(topo.NodeID(n)) {
					l := int(lid)
					if f := wfAt(si, l, k-in.delta[l]-in.kappa[l]+1); f != noVar {
						terms = append(terms, lp.Term{Var: lp.VarID(f), Coeff: 1})
					}
				}
				if b := w.bvar[si][n][k+1]; b != noVar {
					terms = append(terms, lp.Term{Var: lp.VarID(b), Coeff: -1})
				}
				if r := w.rvar[si][n][k]; r != noVar {
					terms = append(terms, lp.Term{Var: lp.VarID(r), Coeff: -1})
				}
				if k+1 < hi {
					for _, lid := range t.Out(topo.NodeID(n)) {
						if f := w.fvar[si][int(lid)][k+1]; f != noVar {
							terms = append(terms, lp.Term{Var: lp.VarID(f), Coeff: -1})
						}
					}
				}
				rhs := 0.0
				if arr := bd.arrAt(si, n, k); arr != 0 {
					rhs = -arr // avoid -0.0: fingerprints hash bit patterns
				}
				if len(terms) == 0 {
					if rhs != 0 {
						return nil, fmt.Errorf("core: window [%d,%d): committed arrival at (source %d, node %d, epoch %d) has no receiving variables",
							lo, hi, ix.sources[si], n, k)
					}
					continue
				}
				p.AddRow(terms, lp.EQ, rhs)
			}
		}
	}

	// Bufferless nodes: outgoing flow at k limited by window arrivals
	// forwardable exactly at k. Committed flows through a bufferless node
	// are closed under forwarding before they are committed (see
	// internal/horizon), so they never appear on either side here.
	for si := range ix.sources {
		for n := 0; n < nN; n++ {
			if isBuffered(si, n) {
				continue
			}
			for k := lo; k < hi; k++ {
				var out []lp.Term
				for _, lid := range t.Out(topo.NodeID(n)) {
					if f := w.fvar[si][int(lid)][k]; f != noVar {
						out = append(out, lp.Term{Var: lp.VarID(f), Coeff: 1})
					}
				}
				var inb []lp.Term
				for _, lid := range t.In(topo.NodeID(n)) {
					l := int(lid)
					if f := wfAt(si, l, k-in.delta[l]-in.kappa[l]); f != noVar {
						inb = append(inb, lp.Term{Var: lp.VarID(f), Coeff: -1})
					}
				}
				if len(out) == 0 {
					continue
				}
				if len(inb) == 0 {
					for _, tm := range out {
						p.SetBounds(tm.Var, 0, 0)
					}
					continue
				}
				p.AddRow(append(out, inb...), lp.LE, 0)
			}
		}
	}

	// Destination totals: the final window must consume exactly the
	// remaining demand; earlier windows may consume at most that much
	// (the rest arrives in later windows).
	for si := range ix.sources {
		for dst := 0; dst < nN; dst++ {
			if ix.dem[si][dst] == 0 || bd.Rem[si][dst] <= remTol {
				continue
			}
			var terms []lp.Term
			for k := lo; k < hi; k++ {
				if r := w.rvar[si][dst][k]; r != noVar {
					terms = append(terms, lp.Term{Var: lp.VarID(r), Coeff: 1})
				}
			}
			if final {
				// Like buildLP, an empty row (unreachable pair) yields an
				// infeasible problem for the solver to report.
				p.AddRow(terms, lp.EQ, bd.Rem[si][dst])
			} else if len(terms) > 0 {
				p.AddRow(terms, lp.LE, bd.Rem[si][dst])
			}
		}
	}

	// Capacity, windowed per Appendix F, with committed usage inside each
	// sliding span pre-charged against the budget.
	for l := 0; l < nL; l++ {
		kap := in.kappa[l]
		for k := lo; k < hi; k++ {
			var row []lp.Term
			budget := 0.0
			for kk := k - kap + 1; kk <= k; kk++ {
				se := kk
				if se < 0 {
					se = 0
				}
				budget += in.capChunks[l] * in.opt.capScale(topo.LinkID(l), se)
				if kk < 0 {
					continue
				}
				budget -= bd.capUsedAt(l, kk)
				for si := range ix.sources {
					if f := wfAt(si, l, kk); f != noVar {
						row = append(row, lp.Term{Var: lp.VarID(f), Coeff: 1})
					}
				}
			}
			if len(row) == 0 {
				continue
			}
			if budget < 0 {
				budget = 0
			}
			p.AddRow(row, lp.LE, budget)
		}
	}

	// Buffer limits (Appendix B) over the window's epoch boundaries.
	if in.opt.BufferLimitChunks > 0 {
		blo := lo
		if blo < 1 {
			blo = 1
		}
		for n := 0; n < nN; n++ {
			if t.IsSwitch(topo.NodeID(n)) {
				continue
			}
			for k := blo; k <= hi; k++ {
				var row []lp.Term
				for si, s := range ix.sources {
					if s == n {
						continue
					}
					if b := w.bvar[si][n][k]; b != noVar {
						row = append(row, lp.Term{Var: lp.VarID(b), Coeff: 1})
					}
				}
				if len(row) == 0 {
					continue
				}
				p.AddRow(row, lp.LE, float64(in.opt.BufferLimitChunks))
			}
		}
	}

	return w, nil
}

// Flows densifies a window solution into full-horizon flow and read
// arrays ([si][link][epoch] and [si][dst][epoch]); entries outside
// [Lo, Hi) are zero.
func (w *WindowLP) Flows(x []float64) (flows, reads [][][]float64) {
	wi := w.wi
	K := wi.in.K
	nL := wi.t.NumLinks()
	nN := wi.t.NumNodes()
	flows = make([][][]float64, len(wi.ix.sources))
	reads = make([][][]float64, len(wi.ix.sources))
	for si := range wi.ix.sources {
		flows[si] = make([][]float64, nL)
		for l := 0; l < nL; l++ {
			flows[si][l] = make([]float64, K)
			for k := w.Lo; k < w.Hi; k++ {
				if f := w.fvar[si][l][k]; f != noVar {
					flows[si][l][k] = x[f]
				}
			}
		}
		reads[si] = make([][]float64, nN)
		for dst := 0; dst < nN; dst++ {
			reads[si][dst] = make([]float64, K)
			for k := w.Lo; k < w.Hi; k++ {
				if r := w.rvar[si][dst][k]; r != noVar {
					reads[si][dst][k] = x[r]
				}
			}
		}
	}
	return flows, reads
}
