package core

import (
	"testing"

	"teccl/internal/collective"
	"teccl/internal/topo"
)

// TestPriorityFavorsTenant: two tenants contend for one link; the
// prioritized tenant's chunk must ship first (§5 multi-tenant priority).
func TestPriorityFavorsTenant(t *testing.T) {
	tp := topo.Line(2, 1e9, 0)
	d := collective.New(2, 2, 1e6)
	d.Set(0, 0, 1) // tenant A: chunk 0
	d.Set(0, 1, 1) // tenant B: chunk 1

	solveWithPriority := func(favored int) int {
		res, err := SolveMILP(tp, d, Options{
			Epochs:               4,
			NoIncumbentHeuristic: true,
			Priority: func(src, chunk, dst int) float64 {
				if chunk == favored {
					return 10
				}
				return 1
			},
		})
		if err != nil {
			t.Fatalf("SolveMILP: %v", err)
		}
		// Which chunk ships in epoch 0?
		for _, snd := range res.Schedule.Sends {
			if snd.Epoch == 0 {
				return snd.Chunk
			}
		}
		t.Fatal("no epoch-0 send")
		return -1
	}
	if got := solveWithPriority(1); got != 1 {
		t.Fatalf("favoring chunk 1: epoch-0 send is chunk %d", got)
	}
	if got := solveWithPriority(0); got != 0 {
		t.Fatalf("favoring chunk 0: epoch-0 send is chunk %d", got)
	}
}

// TestPriorityInLP: the LP form honors per-pair priority too.
func TestPriorityInLP(t *testing.T) {
	// Two sources push through a shared bottleneck to one destination.
	tp := topo.New("y")
	a := tp.AddNode("a", false)
	b := tp.AddNode("b", false)
	h := tp.AddNode("h", false)
	dn := tp.AddNode("d", false)
	tp.AddLink(a, h, 1e9, 0)
	tp.AddLink(b, h, 1e9, 0)
	tp.AddLink(h, dn, 1e9, 0) // bottleneck
	d := collective.New(4, 1, 1e6)
	d.Set(int(a), 0, int(dn))
	d.Set(int(b), 0, int(dn))

	finishOf := func(favored int) (fa, fb int) {
		res, err := SolveLP(tp, d, Options{
			Epochs: 6,
			Priority: func(src, chunk, dst int) float64 {
				if src == favored {
					return 10
				}
				return 1
			},
		})
		if err != nil {
			t.Fatalf("SolveLP: %v", err)
		}
		fa, fb = -1, -1
		for _, snd := range res.Schedule.Sends {
			if tp.Link(snd.Link).Dst != dn {
				continue
			}
			ae := res.Schedule.ArrivalEpoch(snd)
			if snd.Src == int(a) && (fa < 0 || ae > fa) {
				fa = ae
			}
			if snd.Src == int(b) && (fb < 0 || ae > fb) {
				fb = ae
			}
		}
		return fa, fb
	}
	fa, fb := finishOf(int(a))
	if fa > fb {
		t.Fatalf("favored source a finished at %d after b at %d", fa, fb)
	}
	fa, fb = finishOf(int(b))
	if fb > fa {
		t.Fatalf("favored source b finished at %d after a at %d", fb, fa)
	}
}

// TestVariableBandwidthDelays: halving a link's capacity in early epochs
// (variable bandwidth, §5) must delay the transfer accordingly.
func TestVariableBandwidthDelays(t *testing.T) {
	tp := topo.Line(2, 1e9, 0)
	d := collective.New(2, 2, 1e6)
	d.Set(0, 0, 1)
	d.Set(0, 1, 1)

	base, err := SolveMILP(tp, d, Options{Epochs: 8, NoIncumbentHeuristic: true})
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	// Link dead for the first two epochs.
	throttled, err := SolveMILP(tp, d, Options{
		Epochs: 8, NoIncumbentHeuristic: true,
		LinkCapacity: func(l topo.LinkID, epoch int) float64 {
			if epoch < 2 {
				return 0
			}
			return 1
		},
	})
	if err != nil {
		t.Fatalf("throttled: %v", err)
	}
	bf, tf := base.Schedule.FinishEpoch(), throttled.Schedule.FinishEpoch()
	if tf != bf+2 {
		t.Fatalf("throttling 2 epochs moved finish %d -> %d, want +2", bf, tf)
	}
	// No send may use the dead epochs.
	for _, snd := range throttled.Schedule.Sends {
		if snd.Epoch < 2 {
			t.Fatalf("send scheduled in a zero-capacity epoch: %+v", snd)
		}
	}
}

// TestVariableBandwidthLP: the LP form honors the capacity schedule.
func TestVariableBandwidthLP(t *testing.T) {
	tp := topo.Line(2, 1e9, 0)
	d := collective.New(2, 1, 1e6)
	d.Set(0, 0, 1)
	res, err := SolveLP(tp, d, Options{
		Epochs: 6,
		LinkCapacity: func(l topo.LinkID, epoch int) float64 {
			if epoch == 0 {
				return 0
			}
			return 1
		},
	})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	for _, snd := range res.Schedule.Sends {
		if snd.Epoch == 0 && snd.Fraction > 1e-9 {
			t.Fatalf("LP used a zero-capacity epoch: %+v", snd)
		}
	}
	if fe := res.Schedule.FinishEpoch(); fe != 1 {
		t.Fatalf("finish epoch = %d, want 1", fe)
	}
}

// TestNeutralHooksMatchDefault: nil and identity hooks give identical
// schedules.
func TestNeutralHooksMatchDefault(t *testing.T) {
	tp := topo.Ring(4, 1e9, 0)
	gpus := []int{0, 1, 2, 3}
	d := collective.AllGather(4, gpus, 1, 1e6)
	a, err := SolveMILP(tp, d, Options{Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveMILP(tp, d, Options{
		Epochs:       3,
		Priority:     func(int, int, int) float64 { return 1 },
		LinkCapacity: func(topo.LinkID, int) float64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule.FinishEpoch() != b.Schedule.FinishEpoch() {
		t.Fatal("neutral hooks changed the schedule quality")
	}
}

// TestMinimizeMakespan: the reward-sum objective may trade the last
// arrival for earlier intermediate ones; MinimizeMakespan pins the true
// minimum finish epoch (the paper's binary search on epochs).
func TestMinimizeMakespanNotWorse(t *testing.T) {
	tp := topo.Internal2(2)
	gpus := []int{1, 2, 3, 4}
	d := collective.AllGather(tp.NumNodes(), gpus, 1, 250e3)
	plain, err := SolveMILP(tp, d, Options{EpochMode: FastestLink})
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	tight, err := SolveMILP(tp, d, Options{EpochMode: FastestLink, MinimizeMakespan: true})
	if err != nil {
		t.Fatalf("tight: %v", err)
	}
	if tight.Schedule.FinishEpoch() > plain.Schedule.FinishEpoch() {
		t.Fatalf("makespan mode worsened finish: %d > %d",
			tight.Schedule.FinishEpoch(), plain.Schedule.FinishEpoch())
	}
	if tight.Tau != plain.Tau {
		t.Fatal("makespan refinement changed tau")
	}
}

// TestMinimizeMakespanLP mirrors the check for the LP form.
func TestMinimizeMakespanLP(t *testing.T) {
	tp := topo.Internal2(2)
	gpus := []int{1, 2, 3, 4}
	d := collective.AllToAll(tp.NumNodes(), gpus, 1, 250e3)
	plain, err := SolveLP(tp, d, Options{EpochMode: FastestLink})
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	tight, err := SolveLP(tp, d, Options{EpochMode: FastestLink, MinimizeMakespan: true})
	if err != nil {
		t.Fatalf("tight: %v", err)
	}
	if tight.Schedule.FinishEpoch() > plain.Schedule.FinishEpoch() {
		t.Fatalf("makespan mode worsened finish: %d > %d",
			tight.Schedule.FinishEpoch(), plain.Schedule.FinishEpoch())
	}
}
