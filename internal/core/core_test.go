package core

import (
	"math"
	"testing"

	"teccl/internal/collective"
	"teccl/internal/schedule"
	"teccl/internal/sim"
	"teccl/internal/topo"
)

// Chunk sized to one epoch on a 1 GB/s link.
const chunk1ms = 1e6

func TestDeriveTau(t *testing.T) {
	tp := topo.NDv2(1) // links 25 and 50 GB/s
	slow := DeriveTau(tp, 1e6, SlowestLink, 0)
	fast := DeriveTau(tp, 1e6, FastestLink, 0)
	if math.Abs(slow-1e6/25e9) > 1e-15 {
		t.Fatalf("slow tau = %g", slow)
	}
	if math.Abs(fast-1e6/50e9) > 1e-15 {
		t.Fatalf("fast tau = %g", fast)
	}
	if m := DeriveTau(tp, 1e6, FastestLink, 4); math.Abs(m-4*fast) > 1e-15 {
		t.Fatalf("multiplier tau = %g", m)
	}
	// Alpha-dominated: 100 B chunks make alpha (0.7 us) > 200 tau -> x5.
	tiny := DeriveTau(tp, 100, FastestLink, 0)
	if math.Abs(tiny-5*100/50e9) > 1e-18 {
		t.Fatalf("alpha-inflated tau = %g", tiny)
	}
}

func TestEstimateEpochsSane(t *testing.T) {
	tp := topo.Ring(4, 1e9, 0)
	d := collective.AllGather(4, []int{0, 1, 2, 3}, 1, chunk1ms)
	tau := DeriveTau(tp, chunk1ms, FastestLink, 0)
	k := EstimateEpochs(tp, d, tau)
	// Optimum is 2 epochs; the bound must cover it without being absurd.
	if k < 2 || k > 30 {
		t.Fatalf("estimate = %d", k)
	}
	if EstimateEpochs(tp, d, 0) != 1 {
		t.Fatal("zero tau should return 1")
	}
}

func TestMILPSingleHop(t *testing.T) {
	tp := topo.Line(2, 1e9, 0)
	d := collective.New(2, 1, chunk1ms)
	d.Set(0, 0, 1)
	r, err := SolveMILP(tp, d, Options{Epochs: 3})
	if err != nil {
		t.Fatalf("SolveMILP: %v", err)
	}
	if !r.Optimal {
		t.Fatal("tiny instance should be optimal")
	}
	if fe := r.Schedule.FinishEpoch(); fe != 0 {
		t.Fatalf("finish epoch = %d, want 0", fe)
	}
	if len(r.Schedule.Sends) != 1 {
		t.Fatalf("sends = %d, want 1", len(r.Schedule.Sends))
	}
}

func TestMILPRelayLine(t *testing.T) {
	tp := topo.Line(3, 1e9, 0)
	d := collective.New(3, 1, chunk1ms)
	d.Set(0, 0, 2)
	r, err := SolveMILP(tp, d, Options{Epochs: 4})
	if err != nil {
		t.Fatalf("SolveMILP: %v", err)
	}
	// Two hops pipeline: finish end of epoch 1.
	if fe := r.Schedule.FinishEpoch(); fe != 1 {
		t.Fatalf("finish epoch = %d, want 1", fe)
	}
}

func TestMILPCopyBroadcast(t *testing.T) {
	// Figure 1c: with copy, a source multicasts to 3 destinations through
	// a relay in 2 epochs instead of pushing 3 serial copies.
	tp := topo.New("fig1c")
	s := tp.AddNode("s", false)
	h := tp.AddNode("h", false)
	d1 := tp.AddNode("d1", false)
	d2 := tp.AddNode("d2", false)
	d3 := tp.AddNode("d3", false)
	tp.AddLink(s, h, 1e9, 0)
	tp.AddLink(h, d1, 1e9, 0)
	tp.AddLink(h, d2, 1e9, 0)
	tp.AddLink(h, d3, 1e9, 0)
	d := collective.New(5, 1, chunk1ms)
	d.Set(int(s), 0, int(d1))
	d.Set(int(s), 0, int(d2))
	d.Set(int(s), 0, int(d3))
	r, err := SolveMILP(tp, d, Options{Epochs: 5})
	if err != nil {
		t.Fatalf("SolveMILP: %v", err)
	}
	// Copy at h: send s->h at 0, h->d* all at 1. Finish epoch 1.
	if fe := r.Schedule.FinishEpoch(); fe != 1 {
		t.Fatalf("finish epoch = %d, want 1 (copy)", fe)
	}
	if got := r.Schedule.TotalBytesSent(); got != 4*chunk1ms {
		t.Fatalf("bytes = %g, want 4 chunks", got)
	}
}

func TestMILPThroughSwitch(t *testing.T) {
	tp := topo.Star(3, 1e9, 0)
	g := tp.GPUs()
	d := collective.New(tp.NumNodes(), 1, chunk1ms)
	d.Set(int(g[0]), 0, int(g[1]))
	d.Set(int(g[0]), 0, int(g[2]))
	r, err := SolveMILP(tp, d, Options{Epochs: 5})
	if err != nil {
		t.Fatalf("SolveMILP: %v", err)
	}
	// Through the copy switch: in at 0, out to both at 1 -> finish 1.
	if fe := r.Schedule.FinishEpoch(); fe != 1 {
		t.Fatalf("finish epoch = %d, want 1", fe)
	}
}

func TestMILPLegacySwitchNoCopy(t *testing.T) {
	tp := topo.Star(3, 1e9, 0)
	g := tp.GPUs()
	d := collective.New(tp.NumNodes(), 1, chunk1ms)
	d.Set(int(g[0]), 0, int(g[1]))
	d.Set(int(g[0]), 0, int(g[2]))
	r, err := SolveMILP(tp, d, Options{Epochs: 6, SwitchMode: SwitchNoCopy})
	if err != nil {
		t.Fatalf("SolveMILP: %v", err)
	}
	// Without switch copy the source must push the chunk twice: finish 2
	// (second copy enters at 1, leaves at 2).
	if fe := r.Schedule.FinishEpoch(); fe != 2 {
		t.Fatalf("finish epoch = %d, want 2 (no copy at switch)", fe)
	}
}

func TestMILPRingAllGather(t *testing.T) {
	tp := topo.Ring(4, 1e9, 0)
	d := collective.AllGather(4, []int{0, 1, 2, 3}, 1, chunk1ms)
	r, err := SolveMILP(tp, d, Options{Epochs: 4})
	if err != nil {
		t.Fatalf("SolveMILP: %v", err)
	}
	// Bidirectional ring of 4: all chunks everywhere in 2 epochs.
	if fe := r.Schedule.FinishEpoch(); fe != 1 {
		t.Fatalf("finish epoch = %d, want 1", fe)
	}
	// Cross-check with the continuous simulator.
	res, err := sim.Run(r.Schedule)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if math.Abs(res.FinishTime-2e-3) > 1e-9 {
		t.Fatalf("sim finish = %g, want 2e-3", res.FinishTime)
	}
}

func TestMILPAlphaPipelining(t *testing.T) {
	// Table 3's mechanism: with alpha = 2 epochs, chunks pipeline; the
	// second chunk departs one epoch after the first, not after a barrier.
	tp := topo.Line(2, 1e9, 2e-3)
	d := collective.New(2, 2, chunk1ms)
	d.Set(0, 0, 1)
	d.Set(0, 1, 1)
	r, err := SolveMILP(tp, d, Options{Epochs: 8})
	if err != nil {
		t.Fatalf("SolveMILP: %v", err)
	}
	// Sends at 0 and 1; arrivals end of 2 and 3. Finish epoch 3 (4 ms),
	// not the barrier cost 2*(1+2) = 6 epochs.
	if fe := r.Schedule.FinishEpoch(); fe != 3 {
		t.Fatalf("finish epoch = %d, want 3", fe)
	}
}

func TestMILPInfeasibleHorizon(t *testing.T) {
	tp := topo.Line(3, 1e9, 0)
	d := collective.New(3, 1, chunk1ms)
	d.Set(0, 0, 2)
	// Two hops cannot fit in 1 epoch.
	if _, err := SolveMILP(tp, d, Options{Epochs: 1}); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestMILPEmptyDemand(t *testing.T) {
	tp := topo.Line(2, 1e9, 0)
	d := collective.New(2, 1, chunk1ms)
	r, err := SolveMILP(tp, d, Options{Epochs: 2})
	if err != nil {
		t.Fatalf("SolveMILP: %v", err)
	}
	if len(r.Schedule.Sends) != 0 || !r.Optimal {
		t.Fatal("empty demand should yield an empty optimal schedule")
	}
}

func TestMILPNoBuffers(t *testing.T) {
	// Relay node 1 does not demand the chunk; without buffers it must
	// forward immediately. Still feasible on a line.
	tp := topo.Line(3, 1e9, 0)
	d := collective.New(3, 1, chunk1ms)
	d.Set(0, 0, 2)
	r, err := SolveMILP(tp, d, Options{Epochs: 4, NoBuffers: true, NoIncumbentHeuristic: true})
	if err != nil {
		t.Fatalf("SolveMILP: %v", err)
	}
	if fe := r.Schedule.FinishEpoch(); fe != 1 {
		t.Fatalf("finish epoch = %d, want 1", fe)
	}
}

func TestMILPBufferLimit(t *testing.T) {
	tp := topo.Ring(3, 1e9, 0)
	d := collective.AllGather(3, []int{0, 1, 2}, 1, chunk1ms)
	r, err := SolveMILP(tp, d, Options{Epochs: 4, BufferLimitChunks: 3})
	if err != nil {
		t.Fatalf("SolveMILP: %v", err)
	}
	if fe := r.Schedule.FinishEpoch(); fe < 0 {
		t.Fatal("demand unmet")
	}
}

func TestMILPFastEpochHeterogeneous(t *testing.T) {
	// Two parallel paths 0->1: direct slow link and fast 2-hop via node 2.
	tp := topo.New("hetero")
	a := tp.AddNode("a", false)
	b := tp.AddNode("b", false)
	c := tp.AddNode("c", false)
	tp.AddLink(a, b, 0.5e9, 0) // kappa=2 under fastest-link epochs
	tp.AddLink(a, c, 1e9, 0)
	tp.AddLink(c, b, 1e9, 0)
	d := collective.New(3, 2, chunk1ms)
	d.Set(0, 0, 1)
	d.Set(0, 1, 1)
	r, err := SolveMILP(tp, d, Options{Epochs: 6, EpochMode: FastestLink})
	if err != nil {
		t.Fatalf("SolveMILP: %v", err)
	}
	// Optimal: chunk A via c (epochs 0,1: arrives end 1); chunk B on the
	// slow direct link spanning epochs 0-1 (arrives end 1). Finish 1.
	if fe := r.Schedule.FinishEpoch(); fe != 1 {
		t.Fatalf("finish epoch = %d, want 1", fe)
	}
}

func TestLPAllToAllMesh(t *testing.T) {
	tp := topo.FullMesh(3, 1e9, 0)
	d := collective.AllToAll(3, []int{0, 1, 2}, 1, chunk1ms)
	r, err := SolveLP(tp, d, Options{Epochs: 4})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	// Direct links everywhere: 2 chunks per source over 2 distinct links,
	// all in epoch 0. Finish epoch 0.
	if fe := r.Schedule.FinishEpoch(); fe != 0 {
		t.Fatalf("finish epoch = %d, want 0", fe)
	}
	if !r.Optimal {
		t.Fatal("LP must report optimal")
	}
}

func TestLPRelayAllToAll(t *testing.T) {
	tp := topo.Line(3, 1e9, 0)
	d := collective.AllToAll(3, []int{0, 1, 2}, 1, chunk1ms)
	r, err := SolveLP(tp, d, Options{Epochs: 6})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	// End chunks (0<->2) need 2 hops through node 1; each direction's
	// first link carries 2 chunks. Lower bound: finish epoch 2.
	fe := r.Schedule.FinishEpoch()
	if fe != 2 {
		t.Fatalf("finish epoch = %d, want 2", fe)
	}
	// Simulate for consistency.
	if _, err := sim.Run(r.Schedule); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestLPThroughSwitch(t *testing.T) {
	tp := topo.Star(4, 1e9, 0)
	g := tp.GPUs()
	ids := []int{int(g[0]), int(g[1]), int(g[2]), int(g[3])}
	d := collective.AllToAll(tp.NumNodes(), ids, 1, chunk1ms)
	r, err := SolveLP(tp, d, Options{Epochs: 8})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	// Each GPU pushes 3 chunks up one link (3 epochs serialization), each
	// relayed by the switch one epoch later: finish epoch 3.
	if fe := r.Schedule.FinishEpoch(); fe != 3 {
		t.Fatalf("finish epoch = %d, want 3", fe)
	}
}

func TestLPMatchesMILPOnAllToAll(t *testing.T) {
	// Copy never helps ALLTOALL, so the LP and MILP should agree on the
	// finish epoch (§4.1's optimality claim).
	tp := topo.Ring(3, 1e9, 0)
	d := collective.AllToAll(3, []int{0, 1, 2}, 1, chunk1ms)
	rLP, err := SolveLP(tp, d, Options{Epochs: 5})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	rMILP, err := SolveMILP(tp, d, Options{Epochs: 5})
	if err != nil {
		t.Fatalf("SolveMILP: %v", err)
	}
	if rLP.Schedule.FinishEpoch() != rMILP.Schedule.FinishEpoch() {
		t.Fatalf("LP finish %d != MILP finish %d",
			rLP.Schedule.FinishEpoch(), rMILP.Schedule.FinishEpoch())
	}
}

func TestLPWithAlpha(t *testing.T) {
	tp := topo.Line(2, 1e9, 3e-3) // delta = 3
	d := collective.New(2, 1, chunk1ms)
	d.Set(0, 0, 1)
	r, err := SolveLP(tp, d, Options{Epochs: 8})
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	// Send at 0, land end of epoch 3.
	if fe := r.Schedule.FinishEpoch(); fe != 3 {
		t.Fatalf("finish epoch = %d, want 3", fe)
	}
}

func TestAStarRingAllGather(t *testing.T) {
	tp := topo.Ring(4, 1e9, 0)
	d := collective.AllGather(4, []int{0, 1, 2, 3}, 1, chunk1ms)
	r, err := SolveAStar(tp, d, Options{RoundEpochs: 3})
	if err != nil {
		t.Fatalf("SolveAStar: %v", err)
	}
	if r.Rounds < 1 {
		t.Fatal("expected at least one round")
	}
	fe := r.Schedule.FinishEpoch()
	if fe < 1 {
		t.Fatalf("finish epoch = %d", fe)
	}
	// A* is suboptimal but must stay within a small factor of OPT (1).
	if fe > 4 {
		t.Fatalf("finish epoch = %d, far from optimal 1", fe)
	}
}

func TestAStarThroughSwitch(t *testing.T) {
	tp := topo.Star(4, 1e9, 0)
	g := tp.GPUs()
	ids := []int{int(g[0]), int(g[1]), int(g[2]), int(g[3])}
	d := collective.AllGather(tp.NumNodes(), ids, 1, chunk1ms)
	r, err := SolveAStar(tp, d, Options{RoundEpochs: 3})
	if err != nil {
		t.Fatalf("SolveAStar: %v", err)
	}
	if _, err := sim.Run(r.Schedule); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestAStarWithAlphaCarryover(t *testing.T) {
	// Alpha of 2 epochs with 3-epoch rounds forces in-flight carryover.
	tp := topo.Ring(4, 1e9, 2e-3)
	d := collective.AllGather(4, []int{0, 1, 2, 3}, 1, chunk1ms)
	r, err := SolveAStar(tp, d, Options{RoundEpochs: 4})
	if err != nil {
		t.Fatalf("SolveAStar: %v", err)
	}
	if _, err := sim.Run(r.Schedule); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if r.Rounds < 1 {
		t.Fatal("no rounds")
	}
}

func TestAStarMatchesOptOnEasyInstance(t *testing.T) {
	// §6.3 A* vs OPT: on an easy instance both should satisfy the demand;
	// A* within a modest factor.
	tp := topo.Ring(3, 1e9, 0)
	d := collective.AllGather(3, []int{0, 1, 2}, 1, chunk1ms)
	opt, err := SolveMILP(tp, d, Options{Epochs: 3})
	if err != nil {
		t.Fatalf("SolveMILP: %v", err)
	}
	ast, err := SolveAStar(tp, d, Options{RoundEpochs: 3})
	if err != nil {
		t.Fatalf("SolveAStar: %v", err)
	}
	fo, fa := opt.Schedule.FinishEpoch(), ast.Schedule.FinishEpoch()
	if fa < fo {
		t.Fatalf("A* (%d) beats OPT (%d): impossible", fa, fo)
	}
	if fa > 2*fo+2 {
		t.Fatalf("A* (%d) too far from OPT (%d)", fa, fo)
	}
}

func TestGreedyIncumbentValid(t *testing.T) {
	tp := topo.Ring(4, 1e9, 0)
	d := collective.AllGather(4, []int{0, 1, 2, 3}, 1, chunk1ms)
	in := newInstance(tp, d, Options{Epochs: 4})
	sends := greedyIncumbent(in)
	if sends == nil {
		t.Fatal("greedy failed on an easy instance")
	}
	sch := &schedule.Schedule{
		Topo: tp, Demand: d, Tau: in.tau, NumEpochs: in.K,
		Sends: sends, AllowCopy: true, EpochsPerChunk: in.epochsPerChunk(),
	}
	if err := sch.Validate(); err != nil {
		t.Fatalf("greedy schedule invalid: %v", err)
	}
}

func TestGreedyIncumbentAcceptedByModel(t *testing.T) {
	tp := topo.Ring(4, 1e9, 0)
	d := collective.AllGather(4, []int{0, 1, 2, 3}, 1, chunk1ms)
	in := newInstance(tp, d, Options{Epochs: 4})
	m, err := buildMILP(in)
	if err != nil {
		t.Fatalf("buildMILP: %v", err)
	}
	sends := greedyIncumbent(in)
	if sends == nil {
		t.Fatal("greedy failed")
	}
	if x := m.pointFromSends(sends); x == nil {
		t.Fatal("greedy incumbent rejected by the model converter")
	}
}
