package core

import (
	"math"
	"testing"

	"teccl/internal/collective"
	"teccl/internal/sim"
	"teccl/internal/topo"
)

// sweepDemands builds a proportional ALLTOALL size sweep.
func sweepDemands(t *topo.Topology, sizes []float64) []*collective.Demand {
	gpus := 0
	for range t.GPUs() {
		gpus++
	}
	var out []*collective.Demand
	for _, size := range sizes {
		var g []int
		for _, id := range t.GPUs() {
			g = append(g, int(id))
		}
		out = append(out, collective.AllToAll(t.NumNodes(), g, 1, size/float64(gpus)))
	}
	return out
}

// TestBatchSolveLPMatchesPointSolves: every batched point must agree with
// a fresh standalone solve — same finish epoch, same simulated finish
// time, same objective — whether it was replayed or solved in-chain.
func TestBatchSolveLPMatchesPointSolves(t *testing.T) {
	topol := topo.ZeroAlpha(topo.DGX1())
	sizes := []float64{200e3, 400e3, 800e3}
	demands := sweepDemands(topol, sizes)
	opt := Options{EpochMode: FastestLink}

	batch, errs := BatchSolveLP(topol, demands, opt, BatchOptions{})
	for i := range demands {
		if errs[i] != nil {
			t.Fatalf("point %d: %v", i, errs[i])
		}
		fresh, err := SolveLP(topol, demands[i], opt)
		if err != nil {
			t.Fatalf("fresh point %d: %v", i, err)
		}
		if batch[i].Epochs != fresh.Epochs {
			t.Fatalf("point %d: epochs %d (batch) vs %d (fresh)", i, batch[i].Epochs, fresh.Epochs)
		}
		if math.Abs(batch[i].Objective-fresh.Objective) > 1e-6*(1+math.Abs(fresh.Objective)) {
			t.Fatalf("point %d: objective %v vs %v", i, batch[i].Objective, fresh.Objective)
		}
		bs, err1 := sim.Run(batch[i].Schedule)
		fs, err2 := sim.Run(fresh.Schedule)
		if err1 != nil || err2 != nil {
			t.Fatalf("point %d: sim errors %v / %v", i, err1, err2)
		}
		if math.Abs(bs.FinishTime-fs.FinishTime) > 1e-12+1e-9*fs.FinishTime {
			t.Fatalf("point %d: finish %v (batch) vs %v (fresh)", i, bs.FinishTime, fs.FinishTime)
		}
	}
}

// TestBatchSolveLPReusesIdenticalModels: on an alpha-free topology a
// proportional size sweep reduces to one chunk-unit LP, so every point
// after the first must be a replay, not a re-solve.
func TestBatchSolveLPReusesIdenticalModels(t *testing.T) {
	topol := topo.ZeroAlpha(topo.DGX1())
	demands := sweepDemands(topol, []float64{100e3, 200e3, 400e3, 800e3})
	batch, errs := BatchSolveLP(topol, demands, Options{EpochMode: FastestLink}, BatchOptions{})
	reused := 0
	for i := range batch {
		if errs[i] != nil {
			t.Fatalf("point %d: %v", i, errs[i])
		}
		if batch[i].Reused {
			reused++
			if batch[i].RootIterations != 0 {
				t.Fatalf("point %d: replayed point reports simplex work", i)
			}
		}
	}
	if reused != len(batch)-1 {
		t.Fatalf("reused %d of %d points, want %d", reused, len(batch), len(batch)-1)
	}
}

// TestBatchSolveLPWorkersAgree: the parallel fan-out must return the
// same per-point answers as the serial chain.
func TestBatchSolveLPWorkersAgree(t *testing.T) {
	topol := topo.DGX1() // alpha > 0: models differ per size, full solves chain bases
	demands := sweepDemands(topol, []float64{100e3, 200e3, 400e3})
	opt := Options{EpochMode: FastestLink}
	serial, errsA := BatchSolveLP(topol, demands, opt, BatchOptions{Workers: 1})
	par, errsB := BatchSolveLP(topol, demands, opt, BatchOptions{Workers: 3})
	for i := range demands {
		if errsA[i] != nil || errsB[i] != nil {
			t.Fatalf("point %d: %v / %v", i, errsA[i], errsB[i])
		}
		if serial[i].Epochs != par[i].Epochs {
			t.Fatalf("point %d: epochs %d vs %d", i, serial[i].Epochs, par[i].Epochs)
		}
		if math.Abs(serial[i].Objective-par[i].Objective) > 1e-6*(1+math.Abs(serial[i].Objective)) {
			t.Fatalf("point %d: objective %v vs %v", i, serial[i].Objective, par[i].Objective)
		}
	}
}
