package core

// policy.go makes solver selection an explicit, pluggable decision. The
// historical teccl.Solve auto-pick — LP when copy cannot help, the MILP
// for small copy-friendly instances, A* otherwise — lives on as
// DefaultPolicy; services with better knowledge of their request mix
// substitute their own Policy (or one of the Force* singletons) when
// building a Planner session.

import (
	"teccl/internal/collective"
	"teccl/internal/topo"
)

// Solver identifies one of the three formulations.
type Solver int8

const (
	// SolverAuto defers the choice to the session's Policy.
	SolverAuto Solver = iota
	// SolverLP is the linear-program form (§4.1).
	SolverLP
	// SolverMILP is the general mixed-integer form (§3.1).
	SolverMILP
	// SolverAStar is the round-partitioned approximation (§4.2).
	SolverAStar
	// SolverHorizon is the rolling-horizon LP decomposition: the §4.1
	// formulation sliced into overlapping epoch windows solved in
	// sequence with warm-chained bases (internal/horizon). Registered
	// dynamically; see RegisterSolver.
	SolverHorizon
)

func (s Solver) String() string {
	switch s {
	case SolverAuto:
		return "auto"
	case SolverLP:
		return "lp"
	case SolverMILP:
		return "milp"
	case SolverAStar:
		return "astar"
	case SolverHorizon:
		return "horizon"
	}
	return "unknown"
}

// PolicyInput is everything a Policy sees when choosing a formulation
// for one request.
type PolicyInput struct {
	// Topology is the session topology.
	Topology *topo.Topology
	// Demand is the request's demand matrix.
	Demand *collective.Demand
	// Options are the request's resolved solve options.
	Options Options

	// NumGPUs is the session topology's GPU count (cached by the
	// Planner, so policies need not rescan the node list per request).
	NumGPUs int
	// Multicast reports whether any chunk has more than one destination
	// — the condition under which the LP form loses optimality (§4.1).
	Multicast bool
	// Tau is the epoch duration the request would solve at.
	Tau float64
	// EstimateEpochs returns the horizon estimate for the request at
	// Tau, served from the session's epoch-estimate cache; the first
	// call pays the estimation, repeats are free.
	EstimateEpochs func() int
}

// Policy chooses the formulation for a request. Implementations must be
// safe for concurrent use: a Planner session may serve requests from
// many goroutines.
type Policy interface {
	Choose(in PolicyInput) Solver
}

// DefaultPolicy is the historical teccl.Solve heuristic: the LP whenever
// copy cannot help, the general MILP for instances small enough to solve
// exactly, and A* beyond that. The zero value uses the thresholds Solve
// has always used (10 GPUs, 128 demanded triples).
type DefaultPolicy struct {
	// MaxMILPGPUs is the largest GPU count routed to the MILP;
	// 0 means 10.
	MaxMILPGPUs int
	// MaxMILPDemands is the largest demand Count() routed to the MILP;
	// 0 means 128.
	MaxMILPDemands int
}

// Choose implements Policy.
func (p DefaultPolicy) Choose(in PolicyInput) Solver {
	if !in.Multicast {
		return SolverLP
	}
	gpus := p.MaxMILPGPUs
	if gpus == 0 {
		gpus = 10
	}
	demands := p.MaxMILPDemands
	if demands == 0 {
		demands = 128
	}
	if in.NumGPUs <= gpus && in.Demand.Count() <= demands {
		return SolverMILP
	}
	return SolverAStar
}

// forcePolicy pins one formulation regardless of the request.
type forcePolicy Solver

func (f forcePolicy) Choose(PolicyInput) Solver { return Solver(f) }

// Force policies pin a formulation for every request of a session — the
// Planner equivalent of calling SolveLP/SolveMILP/SolveAStar directly.
var (
	ForceLP      Policy = forcePolicy(SolverLP)
	ForceMILP    Policy = forcePolicy(SolverMILP)
	ForceAStar   Policy = forcePolicy(SolverAStar)
	ForceHorizon Policy = forcePolicy(SolverHorizon)
)

// CostModelPolicy sizes the time-expanded MILP before committing to it:
// instead of DefaultPolicy's fixed GPU/demand thresholds it estimates
// the model's variable count — demanded triples × links × horizon, the
// quantity that actually governs MILP solve time — using the session's
// cached epoch estimates, so repeated shapes price out instantly.
type CostModelPolicy struct {
	// MaxMILPCells is the largest demands×links×epochs product routed
	// to the MILP; 0 means 1<<17 (a laptop-scale exact-solve budget).
	MaxMILPCells int
	// HorizonCells is the demands×links×epochs product above which
	// LP-eligible requests are routed to the rolling-horizon
	// decomposition instead of one monolithic simplex; 0 means 1<<17
	// (roughly where the monolithic LP's solve time leaves interactive
	// range). Negative disables horizon routing. The Planner falls back
	// to SolverLP when no horizon implementation is linked in.
	HorizonCells int
}

// Choose implements Policy.
func (p CostModelPolicy) Choose(in PolicyInput) Solver {
	cells := func() int {
		return in.Demand.Count() * in.Topology.NumLinks() * in.EstimateEpochs()
	}
	if !in.Multicast {
		hlimit := p.HorizonCells
		if hlimit == 0 {
			hlimit = 1 << 17
		}
		if hlimit > 0 && cells() > hlimit {
			return SolverHorizon
		}
		return SolverLP
	}
	limit := p.MaxMILPCells
	if limit == 0 {
		limit = 1 << 17
	}
	if cells() <= limit {
		return SolverMILP
	}
	return SolverAStar
}
