package core

import (
	"sync"

	"teccl/internal/lp"
	"teccl/internal/schedule"
)

// basisHint carries a basis from one solved formulation to a related one
// whose dimensions differ — a shrunken MinimizeMakespan horizon, the
// next A* round, or the next request of a Planner session. Variables are
// matched by their diagnostic names (stable across horizons:
// "f[s3,l7,k2]" names the same flow regardless of K), so the surviving
// structure of the old optimal basis seeds the new solve; rows are left
// to the solver's basis-repair pass, which completes any short basis
// with the slacks of uncovered rows. A session hint may additionally
// carry a basisStore: when the new problem fingerprints to a basis
// solved earlier in the session, that full basis (rows included) is used
// verbatim instead of the name projection.
type basisHint struct {
	vars map[string]lp.BasisStatus
	// srcProb/srcBasis lazily back vars: session hints defer the
	// O(numVars) name-map build to first use, after the fingerprint
	// store has had its (cheaper, often successful) say — and outside
	// the Planner mutex the hint was captured under.
	srcProb  *lp.Problem
	srcBasis *lp.Basis
	store    *basisStore
}

// hintFromSolve captures a solved problem's basis for transfer. Returns
// nil when there is nothing usable.
func hintFromSolve(p *lp.Problem, b *lp.Basis) *basisHint {
	if p == nil || b == nil || len(b.Vars) != p.NumVars() {
		return nil
	}
	return &basisHint{vars: nameMap(p, b)}
}

// nameMap indexes a basis by variable name.
func nameMap(p *lp.Problem, b *lp.Basis) map[string]lp.BasisStatus {
	m := make(map[string]lp.BasisStatus, len(b.Vars))
	for j, st := range b.Vars {
		if name := p.Name(lp.VarID(j)); name != "" {
			m[name] = st
		}
	}
	return m
}

// sessionHint builds a Planner request hint: an exact-fingerprint store
// plus a lazily materialized name map over the session's previous solve
// of the same form. Returns nil when there is nothing to offer.
func sessionHint(prob *lp.Problem, basis *lp.Basis, store *basisStore) *basisHint {
	if prob == nil || basis == nil || len(basis.Vars) != prob.NumVars() {
		prob, basis = nil, nil
	}
	if prob == nil && store == nil {
		return nil
	}
	return &basisHint{srcProb: prob, srcBasis: basis, store: store}
}

// basisFor projects the hint onto a new problem: an exact-fingerprint
// store hit returns the stored basis verbatim; otherwise named variables
// inherit their old status, everything else rests nonbasic, and all rows
// start nonbasic so the solver's repair pass installs slacks exactly
// where the transferred columns leave rows uncovered.
func (h *basisHint) basisFor(p *lp.Problem) *lp.Basis {
	if h == nil {
		return nil
	}
	if h.store != nil {
		if b := h.store.lookup(p); b != nil {
			return b
		}
	}
	if h.vars == nil && h.srcProb != nil {
		h.vars = nameMap(h.srcProb, h.srcBasis)
	}
	if len(h.vars) == 0 {
		return nil
	}
	b := &lp.Basis{
		Vars: make([]lp.BasisStatus, p.NumVars()),
		Rows: make([]lp.BasisStatus, p.NumRows()),
	}
	matched := 0
	for j := range b.Vars {
		if st, ok := h.vars[p.Name(lp.VarID(j))]; ok {
			b.Vars[j] = st
			if st == lp.BasisBasic {
				matched++
			}
		}
	}
	if matched == 0 {
		return nil
	}
	return b
}

// crashBasisLP builds a crash basis for the LP form from the greedy
// schedule's flow support: the flow variables the greedy plan actually
// uses enter the basis, along with each source's inventory chain and one
// read variable per (source, destination) demand, so phase 1 starts from
// a near-feasible flow structure instead of the all-slack identity. The
// guess is purely structural — redundant or dependent columns are
// demoted by the solver's install/repair pass, so any greedy plan is a
// safe seed. Returns nil when there is no usable support.
func crashBasisLP(m *lpModel, sends []schedule.Send) *lp.Basis {
	if m == nil || len(sends) == 0 {
		return nil
	}
	p := m.p
	rows := p.NumRows()
	b := &lp.Basis{
		Vars: make([]lp.BasisStatus, p.NumVars()),
		Rows: make([]lp.BasisStatus, rows),
	}
	srcIdx := make(map[int]int, len(m.sources))
	for si, s := range m.sources {
		srcIdx[s] = si
	}
	marked := 0
	mark := func(v int32) {
		if v != noVar && b.Vars[v] != lp.BasisBasic && marked < rows {
			b.Vars[v] = lp.BasisBasic
			marked++
		}
	}
	for _, snd := range sends {
		si, ok := srcIdx[snd.Src]
		if !ok {
			continue
		}
		l := int(snd.Link)
		if l >= len(m.fvar[si]) || snd.Epoch >= len(m.fvar[si][l]) {
			continue
		}
		mark(m.fvar[si][l][snd.Epoch])
	}
	if marked == 0 {
		return nil
	}
	// Source inventory chains: the buffer variables that carry each
	// source's remaining supply across epochs.
	for si, s := range m.sources {
		for _, v := range m.bvar[si][s] {
			mark(v)
		}
	}
	// One read variable per demand pair (the destination-total rows have
	// equality slacks fixed at zero, so they need a structural basic).
	for si := range m.sources {
		for dst := range m.rvar[si] {
			col := m.rvar[si][dst]
			for k := len(col) - 1; k >= 0; k-- {
				if col[k] != noVar {
					mark(col[k])
					break
				}
			}
		}
	}
	return b
}

// basisStore is a session's warm-basis memory: final bases of solved
// problems keyed by lp.Problem.Fingerprint. A lookup that matches both
// fingerprint and dimensions returns a clone of the stored basis — even
// a hash collision is safe, because a warm start is only ever a hint
// (the solver repairs stale or singular bases). The store is bounded:
// once full, recording evicts an arbitrary entry (map iteration order),
// which is adequate for the sweep- and serving-shaped request streams
// sessions see.
type basisStore struct {
	mu    sync.Mutex
	bases map[uint64]*lp.Basis
	hits  int
	limit int
}

const basisStoreLimit = 256

func newBasisStore() *basisStore {
	return &basisStore{bases: make(map[uint64]*lp.Basis), limit: basisStoreLimit}
}

// lookup returns a clone of the stored basis for p, or nil.
func (s *basisStore) lookup(p *lp.Problem) *lp.Basis {
	fp := p.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.bases[fp]
	if b == nil || len(b.Vars) != p.NumVars() || len(b.Rows) != p.NumRows() {
		return nil
	}
	s.hits++
	return b.Clone()
}

// record stores the final basis of a solved problem.
func (s *basisStore) record(p *lp.Problem, b *lp.Basis) {
	if p == nil || b == nil || len(b.Vars) != p.NumVars() {
		return
	}
	fp := p.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.bases[fp]; !ok && len(s.bases) >= s.limit {
		for k := range s.bases {
			delete(s.bases, k)
			break
		}
	}
	s.bases[fp] = b
}

// hitCount reports how many lookups were served.
func (s *basisStore) hitCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}
