package core

import "teccl/internal/lp"

// basisHint carries a basis from one solved formulation to a related one
// whose dimensions differ — a shrunken MinimizeMakespan horizon, or the
// next A* round. Variables are matched by their diagnostic names (stable
// across horizons: "f[s3,l7,k2]" names the same flow regardless of K), so
// the surviving structure of the old optimal basis seeds the new solve;
// rows are left to the solver's basis-repair pass, which completes any
// short basis with the slacks of uncovered rows.
type basisHint struct {
	vars map[string]lp.BasisStatus
}

// hintFromSolve captures a solved problem's basis for transfer. Returns
// nil when there is nothing usable.
func hintFromSolve(p *lp.Problem, b *lp.Basis) *basisHint {
	if p == nil || b == nil || len(b.Vars) != p.NumVars() {
		return nil
	}
	h := &basisHint{vars: make(map[string]lp.BasisStatus, len(b.Vars))}
	for j, st := range b.Vars {
		if name := p.Name(lp.VarID(j)); name != "" {
			h.vars[name] = st
		}
	}
	return h
}

// basisFor projects the hint onto a new problem: named variables inherit
// their old status, everything else rests nonbasic, and all rows start
// nonbasic so the solver's repair pass installs slacks exactly where the
// transferred columns leave rows uncovered.
func (h *basisHint) basisFor(p *lp.Problem) *lp.Basis {
	if h == nil || len(h.vars) == 0 {
		return nil
	}
	b := &lp.Basis{
		Vars: make([]lp.BasisStatus, p.NumVars()),
		Rows: make([]lp.BasisStatus, p.NumRows()),
	}
	matched := 0
	for j := range b.Vars {
		if st, ok := h.vars[p.Name(lp.VarID(j))]; ok {
			b.Vars[j] = st
			if st == lp.BasisBasic {
				matched++
			}
		}
	}
	if matched == 0 {
		return nil
	}
	return b
}
