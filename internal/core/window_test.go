package core

import (
	"testing"

	"teccl/internal/collective"
	"teccl/internal/topo"
)

// gpuIDs lists a topology's GPUs as ints for the collective builders.
func gpuIDs(t *topo.Topology) []int {
	var out []int
	for _, g := range t.GPUs() {
		out = append(out, int(g))
	}
	return out
}

// TestFullWindowMatchesMonolithic pins the formulation-split invariant
// the rolling-horizon warm path depends on: a single window spanning the
// whole horizon builds the exact problem buildLP builds — same
// variables, names, bounds, rows, and objective, hence the same
// fingerprint — so window bases and monolithic bases live in one
// namespace.
func TestFullWindowMatchesMonolithic(t *testing.T) {
	cases := []struct {
		name string
		topo *topo.Topology
		dem  func(*topo.Topology) *collective.Demand
		opt  Options
	}{
		{
			name: "dgx1-alltoall-fastest",
			topo: topo.DGX1(),
			dem: func(tp *topo.Topology) *collective.Demand {
				return collective.AllToAll(tp.NumNodes(), gpuIDs(tp), 1, 25e3)
			},
		},
		{
			name: "ndv2mini-alltoall-slowest",
			topo: topo.NDv2Mini(2),
			dem: func(tp *topo.Topology) *collective.Demand {
				return collective.AllToAll(tp.NumNodes(), gpuIDs(tp), 1, 25e3)
			},
			opt: Options{EpochMode: SlowestLink},
		},
		{
			name: "dgx1-allgather-bufferlimit",
			topo: topo.DGX1(),
			dem: func(tp *topo.Topology) *collective.Demand {
				return collective.AllGather(tp.NumNodes(), gpuIDs(tp), 1, 25e3)
			},
			opt: Options{BufferLimitChunks: 4},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.dem(tc.topo)
			wi := NewWindowInstance(tc.topo, d, tc.opt)
			if wi.Empty() {
				t.Fatal("unexpected empty instance")
			}
			w, err := wi.BuildWindow(0, wi.Epochs(), true, wi.InitialBoundary())
			if err != nil {
				t.Fatalf("BuildWindow: %v", err)
			}

			// The monolithic model over the same preprocessed instance.
			pr := prepLP(tc.topo, d, tc.opt)
			if pr.m == nil {
				t.Fatal("prepLP returned no model")
			}
			if got, want := wi.Epochs(), pr.in.K; got != want {
				t.Fatalf("window instance K=%d, monolithic K=%d", got, want)
			}
			if !w.P.EqualTo(pr.m.p) {
				t.Errorf("full-window problem differs from monolithic buildLP")
			}
			if got, want := w.P.Fingerprint(), pr.m.p.Fingerprint(); got != want {
				t.Errorf("fingerprint mismatch: window %x, monolithic %x", got, want)
			}
		})
	}
}
