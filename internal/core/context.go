package core

// context.go centralizes how the solvers treat wall-clock budgets and
// cancellation. Every solver entry point derives one context per request:
// the caller's context (cancellation, caller deadlines) with
// Options.TimeLimit layered on as a deadline whose *cause* is the
// sentinel errTimeLimit. All three solvers — the LP simplex loops, the
// branch-and-bound node loop, and the A* round loop — watch only that
// context, which is what makes TimeLimit behave identically across them.
//
// The cause distinguishes the two ways a solve can be stopped:
//
//   - The TimeLimit budget expired (cause == errTimeLimit): the solvers
//     keep their historical budget semantics — the MILP returns its
//     incumbent as a feasible result, the LP and A* report a budget
//     error suggesting a larger TimeLimit — and no context error is
//     surfaced.
//   - The caller cancelled (or the caller's own deadline passed): the
//     solve returns an error wrapping context.Cause, so
//     errors.Is(err, context.Canceled) (or context.DeadlineExceeded)
//     holds, alongside whatever partial result was in hand.

import (
	"context"
	"errors"
	"time"
)

// errTimeLimit is the cancellation cause of deadlines derived from
// Options.TimeLimit, distinguishing an expired solver budget from a
// caller's cancellation.
var errTimeLimit = errors.New("core: solver time limit reached")

// withTimeLimit layers Options.TimeLimit onto ctx as a deadline whose
// cause is errTimeLimit. A nil ctx is promoted to context.Background();
// a zero limit leaves the context as is. The returned cancel func must
// be called to release the timer.
func withTimeLimit(ctx context.Context, limit time.Duration) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if limit <= 0 {
		return ctx, func() {}
	}
	return context.WithDeadlineCause(ctx, time.Now().Add(limit), errTimeLimit)
}

// interrupted returns the caller-facing cancellation cause when ctx was
// cancelled by the caller (context.Canceled, or the caller's own
// deadline), and nil while the context is live or when only the
// TimeLimit-derived deadline expired.
func interrupted(ctx context.Context) error {
	if ctx == nil || ctx.Err() == nil {
		return nil
	}
	if cause := context.Cause(ctx); !errors.Is(cause, errTimeLimit) {
		return cause
	}
	return nil
}

// budgetExpired reports whether ctx is done for any reason — caller
// cancellation or the TimeLimit budget.
func budgetExpired(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}
