package core

// crash_test.go covers the greedy crash bases: a crash-started solve must
// reach exactly the same optimal objective as the historical all-slack
// cold start on every corpus instance (the crash is a phase-1 seed, not a
// different optimization), and the crash must actually engage on the
// instances that have a greedy plan.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"teccl/internal/collective"
	"teccl/internal/topo"
)

// TestQuickCrashMatchesSlackStartLP: crash-start vs all-slack-start
// optimal-objective equality across the random LP-form corpus.
func TestQuickCrashMatchesSlackStartLP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := randTopo(rng)
		d := randDemand(rng, tp.NumNodes())
		crash, err1 := SolveLP(tp, d, Options{})
		slack, err2 := SolveLP(tp, d, Options{Crash: CrashOff})
		if (err1 == nil) != (err2 == nil) {
			t.Logf("seed %d: error mismatch crash=%v slack=%v", seed, err1, err2)
			return false
		}
		if err1 != nil {
			return true // both infeasible/failed identically
		}
		if math.Abs(crash.Objective-slack.Objective) > 1e-6*(1+math.Abs(slack.Objective)) {
			t.Logf("seed %d: crash obj %g != slack obj %g", seed, crash.Objective, slack.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashEngagesOnAllToAll: the canonical LP workload (ALLTOALL at an
// auto horizon) must actually report a crash-started solve, and produce
// the same objective as the slack start on a switch topology too.
func TestCrashEngagesOnAllToAll(t *testing.T) {
	for _, tc := range []struct {
		name string
		tp   *topo.Topology
		opt  Options
	}{
		{"dgx1", topo.DGX1(), Options{}},
		{"ndv2mini", topo.NDv2Mini(2), Options{EpochMode: SlowestLink}},
	} {
		var gpus []int
		for _, g := range tc.tp.GPUs() {
			gpus = append(gpus, int(g))
		}
		d := collective.AllToAll(tc.tp.NumNodes(), gpus, 1, 8e6/float64(len(gpus)))
		crash, err := SolveLP(tc.tp, d, tc.opt)
		if err != nil {
			t.Fatalf("%s: crash solve: %v", tc.name, err)
		}
		if !crash.CrashStarted {
			t.Fatalf("%s: expected a crash-started solve", tc.name)
		}
		slackOpt := tc.opt
		slackOpt.Crash = CrashOff
		slack, err := SolveLP(tc.tp, d, slackOpt)
		if err != nil {
			t.Fatalf("%s: slack solve: %v", tc.name, err)
		}
		if slack.CrashStarted {
			t.Fatalf("%s: CrashOff still reported a crash start", tc.name)
		}
		if math.Abs(crash.Objective-slack.Objective) > 1e-6*(1+math.Abs(slack.Objective)) {
			t.Fatalf("%s: crash obj %g != slack obj %g", tc.name, crash.Objective, slack.Objective)
		}
	}
}

// TestCrashAllMatchesSlackStartMILP: under CrashAll the MILP root
// relaxation crash-starts from the greedy incumbent's support; the
// proven optimal objective must match the slack start exactly (the
// returned schedule may be a different equally-optimal one).
func TestCrashAllMatchesSlackStartMILP(t *testing.T) {
	tp := topo.ZeroAlpha(topo.Internal2(2))
	var gpus []int
	for _, g := range tp.GPUs() {
		gpus = append(gpus, int(g))
	}
	d := collective.AllGather(tp.NumNodes(), gpus, 1, 1e6)
	crash, err := SolveMILP(tp, d, Options{EpochMode: SlowestLink, Crash: CrashAll})
	if err != nil {
		t.Fatalf("crash solve: %v", err)
	}
	if !crash.CrashStarted || !crash.Optimal {
		t.Fatalf("want crash-started optimal solve, got crash=%v optimal=%v",
			crash.CrashStarted, crash.Optimal)
	}
	slack, err := SolveMILP(tp, d, Options{EpochMode: SlowestLink, Crash: CrashOff})
	if err != nil {
		t.Fatalf("slack solve: %v", err)
	}
	if math.Abs(crash.Objective-slack.Objective) > 1e-6*(1+math.Abs(slack.Objective)) {
		t.Fatalf("crash obj %g != slack obj %g", crash.Objective, slack.Objective)
	}
}
