package core

// Regression test for the satellite fix: Options.TimeLimit used to be
// honored only by the MILP (and only per A* round); the LP simplex ran
// to completion regardless. With TimeLimit reimplemented as a derived
// context deadline, all three solvers return promptly on an NDv2-scale
// instance whose unbounded solve takes minutes.

import (
	"context"
	"errors"
	"testing"
	"time"

	"teccl/internal/collective"
	"teccl/internal/topo"
)

func TestTimeLimitHonoredByAllSolvers(t *testing.T) {
	tt, d := hardLPInstance()
	const limit = 150 * time.Millisecond
	opt := Options{TimeLimit: limit}

	for name, solve := range map[string]func() (*Result, error){
		"lp":    func() (*Result, error) { return SolveLP(tt, d, opt) },
		"milp":  func() (*Result, error) { return SolveMILP(tt, d, opt) },
		"astar": func() (*Result, error) { return SolveAStar(tt, d, opt) },
	} {
		start := time.Now()
		res, err := solve()
		elapsed := time.Since(start)
		// Generous bound for shared CI runners; the point is "not
		// minutes". The budget expiring is not a caller cancellation, so
		// the error (if any) must NOT read as context.Canceled.
		if elapsed > 10*time.Second {
			t.Errorf("%s: TimeLimit=%v ignored, solve ran %v", name, limit, elapsed)
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: budget expiry surfaced as context error: %v", name, err)
		}
		if err == nil && res == nil {
			t.Errorf("%s: nil result and nil error", name)
		}
		t.Logf("%s: returned in %v (err=%v)", name, elapsed, err)
	}
}

func TestTimeLimitReturnsPartialMILPIncumbent(t *testing.T) {
	// With the greedy incumbent on, a budget-stopped MILP returns the
	// incumbent as a feasible (non-optimal) result with no error — the
	// historical TimeLimit contract. ALLGATHER, so the greedy heuristic
	// applies (it assumes copy-friendly demands).
	tt := topo.NDv2Mini(2)
	d := collective.AllGather(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	res, err := SolveMILP(tt, d, Options{TimeLimit: 150 * time.Millisecond})
	if err != nil {
		t.Fatalf("budget-stopped MILP with greedy incumbent errored: %v", err)
	}
	if res.Optimal {
		t.Skip("machine solved the instance inside the budget")
	}
	if res.Optimal {
		t.Fatalf("budget-stopped solve claims optimality")
	}
	if verr := res.Schedule.Validate(); verr != nil {
		t.Fatalf("partial incumbent schedule invalid: %v", verr)
	}
}
