package core

// Table-driven tests for the solver-selection policies — the Solve
// auto-pick heuristic, formerly inlined in teccl.go, now DefaultPolicy.

import (
	"testing"

	"teccl/internal/collective"
	"teccl/internal/topo"
)

// policyInputFor builds a PolicyInput the way a Planner session does.
func policyInputFor(t *topo.Topology, d *collective.Demand, opt Options) PolicyInput {
	tau := opt.Tau
	if tau == 0 {
		tau = DeriveTau(t, d.ChunkBytes, opt.EpochMode, opt.EpochMultiplier)
	}
	return PolicyInput{
		Topology:  t,
		Demand:    d,
		Options:   opt,
		NumGPUs:   len(t.GPUs()),
		Multicast: d.HasMulticast(),
		Tau:       tau,
		EstimateEpochs: func() int {
			if opt.Epochs > 0 {
				return opt.Epochs
			}
			return EstimateEpochs(t, d, tau)
		},
	}
}

// demandWithCount builds a multicast demand with exactly n demanded
// triples over the topology's GPUs (chunk 0 of GPU 0, fanned out, then
// chunk 1, ...). n must fit within gpus*(gpus-1) per chunk slot.
func demandWithCount(t *topo.Topology, n int) *collective.Demand {
	gpus := testGPUs(t)
	chunks := (n-1)/(len(gpus)*(len(gpus)-1)) + 1
	d := collective.New(t.NumNodes(), chunks, 25e3)
	left := n
	for c := 0; c < chunks && left > 0; c++ {
		for _, s := range gpus {
			for _, dst := range gpus {
				if s == dst || left == 0 {
					continue
				}
				d.Set(s, c, dst)
				left--
			}
		}
	}
	if d.Count() != n {
		panic("demandWithCount: construction bug")
	}
	return d
}

func TestDefaultPolicyBoundaries(t *testing.T) {
	dgx1 := topo.DGX1()                   // 8 GPUs
	ndv2x2 := topo.NDv2(2)                // 16 GPUs
	mini := topo.NDv2Mini(1)              // 4 GPUs
	ring12 := topo.Ring(12, 25e9, 0.7e-6) // 12 GPUs > MILP threshold

	cases := []struct {
		name string
		topo *topo.Topology
		dem  *collective.Demand
		want Solver
	}{
		// No multicast -> LP, regardless of size.
		{"alltoall-small-lp", dgx1,
			collective.AllToAll(dgx1.NumNodes(), testGPUs(dgx1), 1, 25e3), SolverLP},
		{"alltoall-large-lp", ndv2x2,
			collective.AllToAll(ndv2x2.NumNodes(), testGPUs(ndv2x2), 1, 25e3), SolverLP},
		// Multicast below both thresholds -> MILP.
		{"allgather-dgx1-milp", dgx1,
			collective.AllGather(dgx1.NumNodes(), testGPUs(dgx1), 1, 25e3), SolverMILP},
		// Demand count at the boundary: 128 demands on a small topology
		// stays MILP, 129 tips to A*.
		{"count-128-milp", mini, demandWithCount(mini, 128), SolverMILP},
		{"count-129-astar", mini, demandWithCount(mini, 129), SolverAStar},
		// GPU count above 10 -> A* even for small demands.
		{"gpus-12-astar", ring12,
			collective.Broadcast(ring12.NumNodes(), testGPUs(ring12), 0, 1, 25e3), SolverAStar},
		// 16 GPUs, multicast -> A*.
		{"allgather-ndv2x2-astar", ndv2x2,
			collective.AllGather(ndv2x2.NumNodes(), testGPUs(ndv2x2), 1, 25e3), SolverAStar},
	}
	for _, tc := range cases {
		got := DefaultPolicy{}.Choose(policyInputFor(tc.topo, tc.dem, Options{}))
		if got != tc.want {
			t.Errorf("%s: DefaultPolicy chose %v, want %v (gpus=%d count=%d multicast=%v)",
				tc.name, got, tc.want, len(tc.topo.GPUs()), tc.dem.Count(), tc.dem.HasMulticast())
		}
	}
}

func TestDefaultPolicyCustomThresholds(t *testing.T) {
	ndv2x2 := topo.NDv2(2) // 16 GPUs
	d := collective.AllGather(ndv2x2.NumNodes(), testGPUs(ndv2x2), 1, 25e3)
	in := policyInputFor(ndv2x2, d, Options{})
	if got := (DefaultPolicy{}).Choose(in); got != SolverAStar {
		t.Fatalf("default thresholds: got %v, want astar", got)
	}
	wide := DefaultPolicy{MaxMILPGPUs: 16, MaxMILPDemands: 1 << 20}
	if got := wide.Choose(in); got != SolverMILP {
		t.Fatalf("widened thresholds: got %v, want milp", got)
	}
}

func TestDefaultPolicyMatchesHistoricalHeuristic(t *testing.T) {
	// The exact predicate Solve inlined for three PRs:
	// lp when !HasMulticast, milp when gpus <= 10 && count <= 128, else astar.
	topos := []*topo.Topology{topo.DGX1(), topo.NDv2Mini(2), topo.NDv2(2), topo.Internal2(3)}
	for _, tt := range topos {
		gpus := testGPUs(tt)
		for _, d := range []*collective.Demand{
			collective.AllToAll(tt.NumNodes(), gpus, 1, 25e3),
			collective.AllGather(tt.NumNodes(), gpus, 1, 25e3),
			collective.Broadcast(tt.NumNodes(), gpus, gpus[0], 2, 25e3),
		} {
			var want Solver
			switch {
			case !d.HasMulticast():
				want = SolverLP
			case len(gpus) <= 10 && d.Count() <= 128:
				want = SolverMILP
			default:
				want = SolverAStar
			}
			if got := (DefaultPolicy{}).Choose(policyInputFor(tt, d, Options{})); got != want {
				t.Errorf("%s: got %v, want %v", tt.Name, got, want)
			}
		}
	}
}

func TestForcePolicies(t *testing.T) {
	dgx1 := topo.DGX1()
	d := collective.AllGather(dgx1.NumNodes(), testGPUs(dgx1), 1, 25e3)
	in := policyInputFor(dgx1, d, Options{})
	if got := ForceLP.Choose(in); got != SolverLP {
		t.Errorf("ForceLP chose %v", got)
	}
	if got := ForceMILP.Choose(in); got != SolverMILP {
		t.Errorf("ForceMILP chose %v", got)
	}
	if got := ForceAStar.Choose(in); got != SolverAStar {
		t.Errorf("ForceAStar chose %v", got)
	}
}

func TestCostModelPolicy(t *testing.T) {
	dgx1 := topo.DGX1()
	ag := collective.AllGather(dgx1.NumNodes(), testGPUs(dgx1), 1, 25e3)
	atoa := collective.AllToAll(dgx1.NumNodes(), testGPUs(dgx1), 1, 25e3)

	// No multicast -> LP.
	if got := (CostModelPolicy{}).Choose(policyInputFor(dgx1, atoa, Options{})); got != SolverLP {
		t.Errorf("cost model on alltoall: got %v, want lp", got)
	}
	// Small model -> MILP under the default budget.
	if got := (CostModelPolicy{}).Choose(policyInputFor(dgx1, ag, Options{})); got != SolverMILP {
		t.Errorf("cost model on dgx1 allgather: got %v, want milp", got)
	}
	// A one-cell budget forces everything multicast to A*.
	if got := (CostModelPolicy{MaxMILPCells: 1}).Choose(policyInputFor(dgx1, ag, Options{})); got != SolverAStar {
		t.Errorf("tiny budget: got %v, want astar", got)
	}
}
