package core

// replan.go is the online-replanning layer: Planner.Replan applies
// topology/demand churn (links or nodes lost, bandwidth change,
// straggler slowdown, topology growth, demand add/drop) to a live
// session and re-solves the incumbent request against the churned
// world.
//
// The fast path depends on the incumbent's formulation:
//
//   - LP incumbents reoptimize by dual-feasible perturbation. Churn the
//     LP can absorb reduces to bound and right-hand-side edits of the
//     already-built model: a downed link fixes its flow columns to
//     [0,0] (a column drop), capacity change rewrites the windowed
//     capacity rows' budgets, and a dropped demand pair fixes its read
//     columns to [0,0] and zeroes its destination-total row. None of
//     those edits touch the cost vector or the constraint matrix, so
//     the incumbent optimal basis stays dual feasible and the dual
//     simplex reoptimizes from it in a handful of pivots. New demand is
//     absorbed structurally: lpappend.go prices the new (source,
//     destination) pairs in as appended columns and rows of the
//     incumbent model, and the basis — padded so appended columns
//     enter nonbasic and appended rows enter slack-basic — warm-starts
//     the reoptimization.
//
//   - MILP incumbents re-root branch-and-bound: the root relaxation
//     reoptimizes from the repaired incumbent root basis under the same
//     bound/RHS edits, and the incumbent integer schedule, re-validated
//     against the churned topology, seeds the search as a feasible
//     incumbent when it survives.
//
//   - A* incumbents replay unaffected rounds through the round-state
//     recurrence without solving anything, and resume the round loop at
//     the first round whose sends touch a newly-downed or degraded
//     link.
//
// Every incremental attempt runs under a bounded-regret budget derived
// from an EWMA of observed cold-solve cost (ReplanOptions): the LP path
// gets a pivot budget, the MILP and A* paths a wall-clock deadline. An
// attempt that exhausts its budget — or churn no incumbent can absorb,
// like a scale that changes a live link's δ or κ at the incumbent epoch
// duration, or topology growth — degrades gracefully to a crash-started
// cold solve of the edited request. Sessions additionally track the
// incremental path's advantage over cold solving and proactively
// re-base (crash-started refactorization of the incumbent) when it
// decays. Replan never errors when the cold solve would succeed.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"time"

	"teccl/internal/collective"
	"teccl/internal/lp"
	"teccl/internal/milp"
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// DemandPair names one (source, destination) demand pair for demand
// churn: dropping the pair removes every chunk dst wants from src.
type DemandPair struct {
	Src, Dst int
}

// Delta describes one step of churn for Planner.Replan: topology edits
// (applied immutably to the session's topology snapshot) plus demand
// edits (applied to the incumbent request's demand).
type Delta struct {
	// LinksDown lists links that failed. Downed links keep their IDs
	// (schedules and later deltas stay aligned) but carry no traffic.
	LinksDown []topo.LinkID
	// NodesDown lists nodes that failed: every link touching one goes
	// down, and every demand pair involving it is dropped.
	NodesDown []topo.NodeID
	// Scale lists per-link capacity/α multipliers — bandwidth
	// degradation, capacity restoration, and straggler slowdown. See
	// topo.LinkScale.
	Scale []topo.LinkScale
	// AddNodes appends new nodes and AddLinks new links (structural
	// growth — a scale-up joining the job). Grown topologies replan by
	// cold solve; the incumbent demand follows the session onto the
	// grown node space with the new nodes demandless.
	AddNodes []topo.Node
	AddLinks []topo.Link
	// DropPairs lists demand pairs to remove from the incumbent demand.
	DropPairs []DemandPair
	// AddDemand, when non-nil, is OR-ed into the incumbent demand (same
	// shape as the post-growth demand required). An LP incumbent absorbs
	// it incrementally by appending priced-out columns to the incumbent
	// model; the other forms solve cold.
	AddDemand *collective.Demand
}

// topoDelta extracts the topology part of the churn.
func (d Delta) topoDelta() topo.Delta {
	return topo.Delta{
		LinksDown: d.LinksDown, NodesDown: d.NodesDown, Scale: d.Scale,
		AddNodes: d.AddNodes, AddLinks: d.AddLinks,
	}
}

// ReplanOptions tunes the bounded-regret budget and the adaptive
// re-basing of Planner.Replan. The zero value means defaults; set a
// field negative to disable that mechanism.
type ReplanOptions struct {
	// RegretFraction bounds every incremental replan attempt to this
	// fraction of the session's cold-solve cost estimate (an EWMA of
	// observed cold pivots and wall time): the LP path gets a pivot
	// budget, the MILP and A* paths a wall-clock deadline. An attempt
	// that exhausts its budget aborts to the crash-started cold
	// fallback, so a sour incremental replan can never cost much more
	// than the cold solve it degrades to. Default 0.2; negative
	// disables the budget.
	RegretFraction float64
	// PivotFloor is the minimum LP pivot budget, so small cold-pivot
	// estimates do not starve legitimate incremental replans (on small
	// models a disruptive delta legitimately reoptimizes in a sizable
	// fraction of the cold pivot count; the regret fraction only
	// governs at scale, where it is the binding bound). Default 2048;
	// negative means no floor.
	PivotFloor int
	// RebaseThreshold arms proactive re-basing: when the EWMA of
	// incremental pivots per replan exceeds this fraction of the
	// effective pivot budget (max(PivotFloor, RegretFraction·cold)) —
	// the warm basis has drifted so far from the churned world that
	// reoptimization trends toward the budget-abort region — the next
	// Replan skips the incremental attempt and runs a crash-started
	// cold solve to refresh the incumbent basis (Plan.ReBased,
	// PlannerStats.ReBases). Keep it below 1 so re-basing fires before
	// the budget abort would. Default 0.75; negative disables
	// re-basing.
	RebaseThreshold float64
}

func (o ReplanOptions) regretFraction() float64 {
	if o.RegretFraction < 0 {
		return 0
	}
	if o.RegretFraction == 0 {
		return 0.2
	}
	return o.RegretFraction
}

func (o ReplanOptions) pivotFloor() int {
	if o.PivotFloor < 0 {
		return 0
	}
	if o.PivotFloor == 0 {
		return 2048
	}
	return o.PivotFloor
}

func (o ReplanOptions) rebaseThreshold() float64 {
	if o.RebaseThreshold < 0 {
		return 0
	}
	if o.RebaseThreshold == 0 {
		return 0.75
	}
	return o.RebaseThreshold
}

// fallbackKind classifies why an incremental replan attempt degraded to
// the cold fallback, for PlannerStats' per-kind counters.
type fallbackKind int

const (
	fbNone fallbackKind = iota
	// fbStructural: churn the incumbent model cannot express — δ/κ
	// change, topology growth, demand churn on a MILP/A* incumbent, or
	// new demand the append path cannot price in.
	fbStructural
	// fbBudget: the bounded-regret pivot/deadline budget expired.
	fbBudget
	// fbSour: the incremental solve came back non-optimal, numerically
	// sour, or produced a schedule that failed re-validation.
	fbSour
	// fbNoModel: the incumbent carries no incremental payload (replays,
	// empty solves).
	fbNoModel
)

// replanDebug mirrors the lp package's LP_DEBUG switch for the replan
// layer: incremental aborts print their reason to stderr.
var replanDebug = os.Getenv("LP_DEBUG") != ""

func replanAbortf(format string, args ...any) {
	if replanDebug {
		fmt.Fprintf(os.Stderr, "replan: "+format+"\n", args...)
	}
}

// regretEWMAAlpha is the smoothing factor of the session cost EWMAs: new
// observations count half, so estimates track drift within a few solves.
const regretEWMAAlpha = 0.5

// observeCold folds a genuinely cold solve's observed cost into the
// session's cold-cost estimate. Replays and warm-started solves are
// skipped: the budget must be calibrated against what the crash-started
// fallback would actually cost.
func (pl *Planner) observeCold(res *Result) {
	if res == nil || res.Reused || res.WarmStarted {
		return
	}
	pivots := float64(res.RootIterations + res.NodeIterations)
	wall := res.SolveTime.Seconds()
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.coldPivotEWMA == 0 {
		pl.coldPivotEWMA = pivots
	} else {
		pl.coldPivotEWMA += regretEWMAAlpha * (pivots - pl.coldPivotEWMA)
	}
	if pl.coldWallEWMA == 0 {
		pl.coldWallEWMA = wall
	} else {
		pl.coldWallEWMA += regretEWMAAlpha * (wall - pl.coldWallEWMA)
	}
}

// noteIncremental folds a successful incremental replan's pivot count
// into the advantage EWMA and arms the re-base trigger when the
// incremental advantage over cold solving has decayed — smoothed cost
// trending into the budget-abort region means the warm basis has
// drifted too far from the churned world to stay worth reoptimizing.
func (pl *Planner) noteIncremental(pivots int) {
	thr := pl.opt.Replan.rebaseThreshold()
	budget := pl.pivotBudget()
	v := float64(pivots)
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.incReplans == 0 {
		pl.incPivotEWMA = v
	} else {
		pl.incPivotEWMA += regretEWMAAlpha * (v - pl.incPivotEWMA)
	}
	pl.incReplans++
	if thr > 0 && budget > 0 && pl.incPivotEWMA > thr*float64(budget) {
		pl.rebasePending = true
	}
}

// coldEstimate snapshots the session's cold-cost EWMAs (pivots,
// seconds) under the lock, for budget derivation and debug output.
func (pl *Planner) coldEstimate() (float64, float64) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.coldPivotEWMA, pl.coldWallEWMA
}

// pivotBudget derives the LP incremental attempt's iteration budget
// from the cold-pivot estimate; 0 means unbudgeted (no estimate yet, or
// budgeting disabled).
func (pl *Planner) pivotBudget() int {
	frac := pl.opt.Replan.regretFraction()
	if frac == 0 {
		return 0
	}
	cold, _ := pl.coldEstimate()
	if cold <= 0 {
		return 0
	}
	b := int(frac*cold + 0.5)
	if f := pl.opt.Replan.pivotFloor(); b < f {
		b = f
	}
	if b < 1 {
		b = 1
	}
	return b
}

// minWallBudget keeps the MILP/A* incremental deadline from rounding to
// nothing when the cold estimate is tiny.
const minWallBudget = 100 * time.Millisecond

// wallBudget derives the MILP/A* incremental attempt's deadline from
// the cold wall-time estimate; 0 means unbudgeted.
func (pl *Planner) wallBudget() time.Duration {
	frac := pl.opt.Replan.regretFraction()
	if frac == 0 {
		return 0
	}
	_, wall := pl.coldEstimate()
	if wall <= 0 {
		return 0
	}
	d := time.Duration(frac * wall * float64(time.Second))
	if d < minWallBudget {
		d = minWallBudget
	}
	return d
}

// deltaKappaPreserved is the structural gate every incremental form
// shares: each live link of newTopo must keep the δ/κ it has in the
// incumbent instance at the incumbent τ, or the time discretization of
// the model no longer matches the world. It returns the churned
// per-epoch chunk budgets when the gate passes.
func deltaKappaPreserved(in *instance, newTopo *topo.Topology) ([]float64, bool) {
	nL := newTopo.NumLinks()
	if nL != in.topo.NumLinks() || nL != len(in.kappa) {
		return nil, false
	}
	capChunks := make([]float64, nL)
	for l := 0; l < nL; l++ {
		if newTopo.LinkDown(topo.LinkID(l)) {
			continue
		}
		lk := newTopo.Link(topo.LinkID(l))
		del := 0
		if lk.Alpha > 0 {
			del = int(math.Ceil(lk.Alpha/in.tau - 1e-9))
		}
		per := lk.Capacity * in.tau / in.demand.ChunkBytes
		kap := 1
		if per < 1-1e-9 {
			kap = int(math.Ceil(1/per - 1e-9))
		}
		if del != in.delta[l] || kap != in.kappa[l] {
			return nil, false
		}
		capChunks[l] = per
	}
	return capChunks, true
}

// Replan applies churn to the session and re-solves the incumbent
// request (the session's last successful Plan) against the churned
// topology and demand. The session's topology snapshot is replaced and
// every per-topology cache — tau derivations, epoch estimates,
// fingerprint-keyed schedule replays, and warm bases — is invalidated
// atomically, so requests planned after Replan returns can never replay
// pre-churn state. Concurrent Plan calls are safe: each captures a
// consistent snapshot and in-flight solves against the old topology
// cannot contaminate the new caches.
//
// When the churn is non-structural, the re-solve is incremental per the
// incumbent's formulation (see the file comment) under the
// bounded-regret budget of PlannerOptions.Replan; otherwise, or when
// the incremental path sours or exhausts its budget, Replan degrades to
// a cold solve of the edited request — Plan.ReplanFallback reports
// which happened, and PlannerStats aggregates the session's churn
// history per fallback kind. A session whose incremental advantage has
// decayed re-bases instead: a deliberate crash-started cold solve that
// refreshes the incumbent basis (Plan.ReBased; counted in ReBases, not
// in ReplanFallbacks). An infeasible edited request (e.g. a demand
// whose destination was disconnected without dropping the pair) returns
// the cold solve's error.
//
// Replan requires a prior successful Plan; an invalid delta (unknown
// IDs, negative scales, malformed growth, mismatched AddDemand shape)
// errors without changing any session state.
func (pl *Planner) Replan(ctx context.Context, d Delta) (*Plan, error) {
	pl.replanMu.Lock()
	defer pl.replanMu.Unlock()

	pl.mu.Lock()
	closed := pl.closed
	st := pl.state
	inc := pl.incumbent
	pl.mu.Unlock()
	if closed {
		return nil, ErrPlannerClosed
	}
	if inc == nil {
		return nil, errors.New("core: Replan requires a prior successful Plan")
	}

	newTopo, err := st.t.ApplyDelta(d.topoDelta())
	if err != nil {
		return nil, err
	}
	grew := len(d.AddNodes) > 0 || len(d.AddLinks) > 0
	newDemand := inc.demand.Clone()
	if newTopo.NumNodes() > newDemand.NumNodes() {
		// Structural growth: the incumbent demand follows the session
		// onto the grown node space; the new nodes start demandless.
		newDemand = newDemand.WithNodes(newTopo.NumNodes())
	}
	for _, pr := range d.DropPairs {
		if pr.Src < 0 || pr.Src >= newDemand.NumNodes() || pr.Dst < 0 || pr.Dst >= newDemand.NumNodes() {
			return nil, fmt.Errorf("core: Replan drops unknown demand pair (%d,%d)", pr.Src, pr.Dst)
		}
		newDemand.DropPair(pr.Src, pr.Dst)
	}
	for _, n := range d.NodesDown {
		newDemand.DropNode(int(n))
	}
	if d.AddDemand != nil {
		if d.AddDemand.NumNodes() != newDemand.NumNodes() ||
			d.AddDemand.NumChunks() != newDemand.NumChunks() ||
			d.AddDemand.ChunkBytes != newDemand.ChunkBytes {
			return nil, errors.New("core: Replan AddDemand shape mismatch with incumbent demand")
		}
		newDemand.Or(d.AddDemand)
	}

	// Swap the session onto the churned topology with fresh caches; from
	// here on, every concurrent and future Plan sees post-churn state
	// only. The name-matched basis chains are flushed too — the fallback
	// below must be a genuinely cold (crash-started) solve.
	newState := newSessionState(newTopo)
	pl.mu.Lock()
	if pl.closed {
		// A concurrent Close raced past the entry check; leave the closed
		// (empty) state in place rather than resurrecting the session.
		pl.mu.Unlock()
		return nil, ErrPlannerClosed
	}
	pl.foldStateHitsLocked(pl.state)
	pl.state = newState
	pl.lastLP = sessionBasis{}
	pl.lastMILP = sessionBasis{}
	pl.stats.Replans++
	// Adaptive re-basing: when the incremental advantage has decayed
	// (see noteIncremental), skip the incremental attempt on purpose and
	// let the cold solve below refresh the incumbent basis.
	rebase := pl.rebasePending
	if rebase {
		pl.rebasePending = false
		pl.stats.ReBases++
		pl.incPivotEWMA = 0
		pl.incReplans = 0
	}
	pl.mu.Unlock()

	kind := fbNoModel
	if !rebase {
		demandChurn := d.AddDemand != nil || len(d.DropPairs) > 0 || len(d.NodesDown) > 0
		var plan *Plan
		switch {
		case grew:
			// Growth changes the node space (and usually reachability);
			// every formulation rebuilds cold.
			kind = fbStructural
			replanAbortf("structural fallback: topology growth (+%d nodes, +%d links)",
				len(d.AddNodes), len(d.AddLinks))
		case inc.model != nil && inc.basis != nil:
			plan, kind = pl.replanIncrementalLP(ctx, newState, inc, st.t, newTopo, newDemand, d)
		case inc.mmodel != nil && inc.mbasis != nil:
			if demandChurn {
				kind = fbStructural
				replanAbortf("structural fallback: demand churn on a MILP incumbent")
			} else {
				plan, kind = pl.replanIncrementalMILP(ctx, newState, inc, st.t, newTopo, newDemand)
			}
		case inc.ain != nil && inc.aKr > 0:
			if demandChurn {
				kind = fbStructural
				replanAbortf("structural fallback: demand churn on an A* incumbent")
			} else {
				plan, kind = pl.replanIncrementalAStar(ctx, newState, inc, st.t, newTopo, newDemand)
			}
		}
		if plan != nil {
			return plan, nil
		}
		if ierr := interrupted(ctx); ierr != nil {
			return nil, fmt.Errorf("core: replan interrupted: %w", ierr)
		}
	}

	// Graceful degradation: cold re-solve of the edited request. The
	// fresh session state guarantees no replay or warm start survives
	// from before the churn, so this is exactly the solve a brand-new
	// session would run.
	pl.mu.Lock()
	if !rebase {
		pl.stats.ReplanFallbacks++
		switch kind {
		case fbStructural:
			pl.stats.ReplanFallbackStructural++
		case fbBudget:
			pl.stats.ReplanFallbackBudget++
		case fbSour:
			pl.stats.ReplanFallbackSour++
		default:
			pl.stats.ReplanFallbackNoModel++
		}
	}
	pl.mu.Unlock()
	fopt := inc.opt
	plan, err := pl.Plan(ctx, Request{Demand: newDemand, Options: &fopt, Solver: inc.solver})
	if plan != nil {
		plan.Replanned = true
		if rebase {
			plan.ReBased = true
		} else {
			plan.ReplanFallback = true
		}
	}
	return plan, err
}

// replanIncrementalLP attempts the dual-feasible incremental re-solve
// of the incumbent LP, including column appends for new demand. It
// returns the fallback kind when the churn is structural at the
// incumbent discretization, the bounded-regret pivot budget expires,
// the dual simplex does not reach a verified optimum, or the
// reoptimized rates fail to decompose into a schedule that re-validates
// on the churned topology — the caller then falls back to a cold solve.
func (pl *Planner) replanIncrementalLP(ctx context.Context, newState *sessionState, inc *incumbentState,
	oldTopo, newTopo *topo.Topology, newDemand *collective.Demand, d Delta) (*Plan, fallbackKind) {
	m := inc.model
	in := m.in
	start := time.Now()

	capChunks, ok := deltaKappaPreserved(in, newTopo)
	if !ok {
		replanAbortf("structural fallback: a live link changed δ/κ at the incumbent τ")
		return nil, fbStructural
	}

	// Perturb a clone of the incumbent model. Bound and RHS edits only:
	// the basis stays dual feasible.
	q := m.p.Clone()
	nL := newTopo.NumLinks()
	for l := 0; l < nL; l++ {
		if !newTopo.LinkDown(topo.LinkID(l)) || oldTopo.LinkDown(topo.LinkID(l)) {
			continue
		}
		// Newly-downed link: drop its flow columns.
		for si := range m.fvar {
			for _, v := range m.fvar[si][l] {
				if v != noVar {
					q.SetBounds(lp.VarID(v), 0, 0)
				}
			}
		}
	}
	// Rewrite every live link's windowed capacity budgets with the
	// churned capacities (cheap, and uniform across scaled/unscaled).
	for l := 0; l < nL; l++ {
		if newTopo.LinkDown(topo.LinkID(l)) {
			continue
		}
		kap := in.kappa[l]
		for k, r := range m.capRow[l] {
			if r == noVar {
				continue
			}
			budget := 0.0
			for kk := k - kap + 1; kk <= k; kk++ {
				se := kk
				if se < 0 {
					se = 0
				}
				budget += capChunks[l] * in.opt.capScale(topo.LinkID(l), se)
			}
			q.SetRHS(int(r), budget)
		}
	}
	// Demand drops: fix the pair's read columns at zero and zero its
	// destination-total row. The supply rows are left alone — the
	// source's inventory chain absorbs the now-undelivered chunks.
	expanded := in.demand.Clone()
	dem := make([][]float64, len(m.dem))
	for si := range m.dem {
		dem[si] = append([]float64(nil), m.dem[si]...)
	}
	srcIdx := make(map[int]int, len(m.sources))
	for si, s := range m.sources {
		srcIdx[s] = si
	}
	drop := func(src, dst int) {
		if src < 0 || src >= expanded.NumNodes() || dst < 0 || dst >= expanded.NumNodes() {
			return
		}
		expanded.DropPair(src, dst)
		si, ok := srcIdx[src]
		if !ok || dem[si][dst] == 0 {
			return
		}
		dem[si][dst] = 0
		for _, v := range m.rvar[si][dst] {
			if v != noVar {
				q.SetBounds(lp.VarID(v), 0, 0)
			}
		}
		if r := m.destRow[si][dst]; r != noVar {
			q.SetRHS(int(r), 0)
		}
	}
	for _, pr := range d.DropPairs {
		drop(pr.Src, pr.Dst)
	}
	for _, n := range d.NodesDown {
		for other := 0; other < expanded.NumNodes(); other++ {
			drop(int(n), other)
			drop(other, int(n))
		}
	}

	// The edited instance the schedule decomposition (and its built-in
	// re-validation) runs against: the churned topology and demand, the
	// recomputed per-epoch budgets, the incumbent discretization.
	in2 := *in
	in2.topo = newTopo
	in2.demand = expanded
	in2.capChunks = capChunks
	in2.opt.estimates = nil
	m2 := *m
	m2.p = q
	m2.in = &in2
	m2.dem = dem

	// New demand: price the appended pairs into the incumbent model as
	// appended columns and rows (lpappend.go). The incumbent basis is
	// padded across the append — new columns nonbasic, new rows
	// slack-basic — so the warm start stays structurally valid.
	basis := inc.basis.Clone()
	if d.AddDemand != nil {
		if err := m2.appendDemand(d.AddDemand); err != nil {
			replanAbortf("structural fallback: demand append: %v", err)
			return nil, fbStructural
		}
		if basis = inc.basis.Extended(q.NumVars(), q.NumRows()); basis == nil {
			return nil, fbStructural
		}
	}

	// Reoptimization from the incumbent basis under the bounded-regret
	// pivot budget. MethodDual falls back to the primal internally if
	// the basis turns out not to be dual feasible after repair.
	budget := pl.pivotBudget()
	ctx, cancel := withTimeLimit(ctx, inc.opt.TimeLimit)
	defer cancel()
	sol, err := lp.Solve(q, lp.Options{
		Context: ctx, WarmStart: basis, Method: lp.MethodDual, MaxIter: budget,
	})
	if err != nil {
		return nil, fbSour
	}
	switch sol.Status {
	case lp.StatusOptimal:
	case lp.StatusIterLimit:
		if interrupted(ctx) != nil {
			return nil, fbSour // caller surfaces the cancellation
		}
		coldPivots, _ := pl.coldEstimate()
		replanAbortf("bounded-regret abort: %d pivots exhausted the incremental budget (%d; cold estimate %d); falling back to a cold solve",
			sol.Iterations, budget, int(coldPivots+0.5))
		return nil, fbBudget
	default:
		return nil, fbSour
	}
	sch, err := m2.decompose(sol.X) // re-validates on the churned topology
	if err != nil {
		replanAbortf("sour fallback: %v", err)
		return nil, fbSour
	}

	res := &Result{
		Schedule:         sch,
		Objective:        sol.Objective,
		Optimal:          true,
		SolveTime:        time.Since(start),
		Epochs:           in.K,
		Tau:              in.tau,
		RootIterations:   sol.Iterations,
		Refactorizations: sol.Refactorizations,
		FTUpdates:        sol.FTUpdates,
		UpdateNnz:        sol.UpdateNnz,
		WarmStarted:      true,
	}
	plan := &Plan{Result: res, Solver: SolverLP, WarmStart: true, Replanned: true}

	// The replanned model becomes the incumbent for the next delta, and
	// seeds the fresh session caches.
	pl.mu.Lock()
	pl.stats.ReplanPivots += sol.Iterations
	if pl.state == newState {
		pl.lastLP = sessionBasis{prob: q, basis: sol.Basis}
		pl.incumbent = &incumbentState{
			demand: newDemand.Clone(),
			opt:    inc.opt,
			solver: inc.solver,
			model:  &m2,
			basis:  sol.Basis,
		}
	}
	pl.mu.Unlock()
	pl.noteIncremental(sol.Iterations)
	newState.warmBases.record(q, sol.Basis)
	return plan, fbNone
}

// replanIncrementalMILP re-roots the incumbent branch-and-bound on the
// churned world: the same bound/RHS perturbation as the LP path applied
// to the incumbent MILP relaxation, reoptimized from the repaired root
// basis, with the incumbent integer schedule — re-validated against the
// churned topology — seeding the search when it survives. Runs under
// the bounded-regret wall deadline.
func (pl *Planner) replanIncrementalMILP(ctx context.Context, newState *sessionState, inc *incumbentState,
	oldTopo, newTopo *topo.Topology, newDemand *collective.Demand) (*Plan, fallbackKind) {
	m := inc.mmodel
	in := m.in
	start := time.Now()

	capChunks, ok := deltaKappaPreserved(in, newTopo)
	if !ok {
		replanAbortf("structural fallback: a live link changed δ/κ at the incumbent τ")
		return nil, fbStructural
	}

	q := m.p.Clone()
	nL := newTopo.NumLinks()
	for l := 0; l < nL; l++ {
		if !newTopo.LinkDown(topo.LinkID(l)) || oldTopo.LinkDown(topo.LinkID(l)) {
			continue
		}
		for ci := range m.fvar {
			for _, v := range m.fvar[ci][l] {
				if v != noVar {
					q.SetBounds(lp.VarID(v), 0, 0)
				}
			}
		}
	}
	for l := 0; l < nL; l++ {
		if newTopo.LinkDown(topo.LinkID(l)) {
			continue
		}
		kap := in.kappa[l]
		for k, r := range m.capRow[l] {
			if r == noVar {
				continue
			}
			budget := 0.0
			for kk := k - kap + 1; kk <= k; kk++ {
				se := kk
				if se < 0 {
					se = 0
				}
				budget += capChunks[l] * in.opt.capScale(topo.LinkID(l), se)
			}
			q.SetRHS(int(r), budget)
		}
	}
	in2 := *in
	in2.topo = newTopo
	in2.capChunks = capChunks
	in2.opt.estimates = nil
	m2 := *m
	m2.p = q
	m2.in = &in2

	// Re-validate the integer incumbent against the churned world: a
	// surviving incumbent both bounds the re-rooted search from below
	// and guarantees a feasible answer under the wall budget.
	var incX []float64
	if len(inc.sends) > 0 {
		s := &schedule.Schedule{
			Topo: newTopo, Demand: in2.demand, Tau: in2.tau, NumEpochs: in2.K,
			Sends: inc.sends, AllowCopy: true, EpochsPerChunk: in2.epochsPerChunk(),
		}
		if s.Validate() == nil {
			incX = m2.pointFromSends(inc.sends)
		}
	}

	ctx, cancel := withTimeLimit(ctx, inc.opt.TimeLimit)
	defer cancel()
	if wb := pl.wallBudget(); wb > 0 {
		var c2 context.CancelFunc
		ctx, c2 = withTimeLimit(ctx, wb)
		defer c2()
	}
	mopt := milp.Options{
		Context:       ctx,
		GapLimit:      in2.opt.GapLimit,
		Workers:       in2.opt.Workers,
		RootWarmStart: inc.mbasis.Clone(),
		IncumbentX:    incX,
		Progress:      in2.opt.Progress.milpHook("milp", 0),
	}
	// Re-roots reoptimize the root relaxation with the dual simplex
	// (safe: it falls back to the primal when the transferred basis is
	// not dual feasible).
	mopt.LP.Method = lp.MethodDual
	msol := milp.Solve(&milp.Problem{LP: q, Integer: m.ints}, mopt)
	switch msol.Status {
	case milp.StatusOptimal, milp.StatusFeasible:
	default:
		if interrupted(ctx) != nil {
			return nil, fbSour // caller surfaces the cancellation
		}
		if budgetExpired(ctx) {
			_, coldWall := pl.coldEstimate()
			replanAbortf("bounded-regret abort: MILP re-root exceeded its wall budget (%v, cold estimate %.3fs) without an incumbent; falling back to a cold solve",
				pl.wallBudget(), coldWall)
			return nil, fbBudget
		}
		return nil, fbSour
	}
	sch, err := m2.extractSchedule(msol.X)
	if err != nil {
		replanAbortf("sour fallback: %v", err)
		return nil, fbSour
	}
	pivots := msol.RootIterations + msol.NodeIterations
	res := &Result{
		Schedule:         sch,
		Objective:        msol.Objective,
		Gap:              msol.Gap,
		Optimal:          msol.Status == milp.StatusOptimal,
		SolveTime:        time.Since(start),
		Epochs:           in2.K,
		Tau:              in2.tau,
		Nodes:            msol.Nodes,
		RootIterations:   msol.RootIterations,
		NodeIterations:   msol.NodeIterations,
		Refactorizations: msol.Refactorizations,
		FTUpdates:        msol.FTUpdates,
		UpdateNnz:        msol.UpdateNnz,
		WarmStarted:      true,
	}
	plan := &Plan{Result: res, Solver: SolverMILP, WarmStart: true, Replanned: true}

	pl.mu.Lock()
	pl.stats.ReplanPivots += pivots
	if pl.state == newState {
		if msol.RootBasis != nil {
			pl.lastMILP = sessionBasis{prob: q, basis: msol.RootBasis}
		}
		pl.incumbent = &incumbentState{
			demand: newDemand.Clone(),
			opt:    inc.opt,
			solver: inc.solver,
			mmodel: &m2,
			mbasis: msol.RootBasis,
			sends:  sch.Sends,
		}
	}
	pl.mu.Unlock()
	pl.noteIncremental(pivots)
	if msol.RootBasis != nil {
		newState.warmBases.record(q, msol.RootBasis)
	}
	return plan, fbNone
}

// replanIncrementalAStar replays the incumbent round schedule through
// the A* state recurrence up to the first round whose sends touch a
// newly-downed or capacity-degraded link, then resumes the round loop
// from there on the churned instance. Pure capacity increases replay
// the whole schedule without solving anything. Runs under the
// bounded-regret wall deadline.
func (pl *Planner) replanIncrementalAStar(ctx context.Context, newState *sessionState, inc *incumbentState,
	oldTopo, newTopo *topo.Topology, newDemand *collective.Demand) (*Plan, fallbackKind) {
	ain := inc.ain
	start := time.Now()

	capChunks, ok := deltaKappaPreserved(ain, newTopo)
	if !ok {
		replanAbortf("structural fallback: a live link changed δ/κ at the incumbent τ")
		return nil, fbStructural
	}

	in2 := *ain
	in2.topo = newTopo
	in2.capChunks = capChunks
	in2.opt.estimates = nil
	Kr := inc.aKr

	// Affected horizon: the first round whose sends ride a newly-downed
	// or capacity-degraded link must be re-solved; every round before it
	// replays verbatim (its sends remain feasible — budgets only grew).
	changed := make([]bool, newTopo.NumLinks())
	anyChanged := false
	for l := range changed {
		lid := topo.LinkID(l)
		if newTopo.LinkDown(lid) {
			if !oldTopo.LinkDown(lid) {
				changed[l] = true
				anyChanged = true
			}
			continue
		}
		if oldTopo.LinkDown(lid) {
			continue
		}
		if newTopo.Link(lid).Capacity < oldTopo.Link(lid).Capacity*(1-1e-12) {
			changed[l] = true
			anyChanged = true
		}
	}
	totalRounds := inc.aRounds
	r0 := totalRounds // no affected round: replay everything
	if anyChanged {
		for _, snd := range inc.sends {
			if changed[snd.Link] {
				if r := snd.Epoch / Kr; r < r0 {
					r0 = r
				}
			}
		}
	}

	// Replay rounds [0, r0) through the state recurrence; sends of later
	// rounds are discarded and re-solved below.
	st := newAStarState(&in2)
	byRound := make([][]schedule.Send, r0)
	for _, snd := range inc.sends {
		if r := snd.Epoch / Kr; r < r0 {
			byRound[r] = append(byRound[r], snd)
		}
	}
	var sends []schedule.Send
	for r := 0; r < r0; r++ {
		advanceState(&in2, st, byRound[r], r*Kr, Kr)
		sends = append(sends, byRound[r]...)
	}

	gap := inc.aGap
	var iters iterTotals
	if st.remaining > 0 {
		maxRounds := in2.opt.MaxRounds
		if maxRounds <= 0 {
			maxRounds = 64
		}
		hop := in2.hopDistances()
		ctx, cancel := withTimeLimit(ctx, inc.opt.TimeLimit)
		defer cancel()
		if wb := pl.wallBudget(); wb > 0 {
			var c2 context.CancelFunc
			ctx, c2 = withTimeLimit(ctx, wb)
			defer c2()
		}
		resumed, rounds, rGap, rIters, err := astarLoop(ctx, &in2, st, hop, Kr, maxRounds, r0, nil)
		if err != nil {
			if interrupted(ctx) != nil {
				return nil, fbSour // caller surfaces the cancellation
			}
			if budgetExpired(ctx) {
				_, coldWall := pl.coldEstimate()
				replanAbortf("bounded-regret abort: A* resume exceeded its wall budget (%v, cold estimate %.3fs); falling back to a cold solve",
					pl.wallBudget(), coldWall)
				return nil, fbBudget
			}
			replanAbortf("sour fallback: %v", err)
			return nil, fbSour
		}
		sends = append(sends, resumed...)
		totalRounds = rounds
		if rGap > gap {
			gap = rGap
		}
		iters = rIters
	}

	s := &schedule.Schedule{
		Topo:           newTopo,
		Demand:         in2.demand,
		Tau:            in2.tau,
		NumEpochs:      totalRounds * Kr,
		Sends:          sends,
		AllowCopy:      true,
		EpochsPerChunk: in2.epochsPerChunk(),
	}
	s = s.Prune()
	if err := s.Validate(); err != nil {
		replanAbortf("sour fallback: replayed A* schedule failed re-validation: %v", err)
		return nil, fbSour
	}
	pivots := iters.root + iters.node
	res := &Result{
		Schedule:         s,
		Gap:              gap,
		Optimal:          false,
		SolveTime:        time.Since(start),
		Epochs:           totalRounds * Kr,
		Tau:              in2.tau,
		Rounds:           totalRounds,
		Nodes:            iters.nodes,
		RootIterations:   iters.root,
		NodeIterations:   iters.node,
		Refactorizations: iters.refac,
		FTUpdates:        iters.ft,
		UpdateNnz:        iters.nnz,
		WarmStarted:      true,
	}
	plan := &Plan{Result: res, Solver: SolverAStar, WarmStart: true, Replanned: true}

	pl.mu.Lock()
	pl.stats.ReplanPivots += pivots
	if pl.state == newState {
		pl.incumbent = &incumbentState{
			demand:  newDemand.Clone(),
			opt:     inc.opt,
			solver:  inc.solver,
			ain:     &in2,
			aKr:     Kr,
			aRounds: totalRounds,
			aGap:    gap,
			sends:   s.Sends,
		}
	}
	pl.mu.Unlock()
	pl.noteIncremental(pivots)
	return plan, fbNone
}
