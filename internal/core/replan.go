package core

// replan.go is the online-replanning layer: Planner.Replan applies
// topology/demand churn (links or nodes lost, bandwidth degradation,
// straggler slowdown, demand add/drop) to a live session and re-solves
// the incumbent request against the churned world.
//
// The fast path is a dual-feasible perturbation of the incumbent LP.
// Every churn kind the LP can absorb reduces to bound and right-hand-
// side edits of the already-built model: a downed link fixes its flow
// columns to [0,0] (a column drop), capacity degradation rewrites the
// windowed capacity rows' budgets, and a dropped demand pair fixes its
// read columns to [0,0] and zeroes its destination-total row. None of
// those edits touch the cost vector or the constraint matrix, so the
// incumbent optimal basis stays dual feasible and the dual simplex
// reoptimizes from it in a handful of pivots — the Forrest–Tomlin
// machinery then carries those pivots as cheap eta updates instead of
// refactorizations.
//
// Churn the incumbent model cannot absorb — a new demand, or a scale
// that changes a live link's δ or κ at the incumbent epoch duration
// (the time discretization itself shifts) — and any incremental solve
// that comes back non-optimal, numerically sour, or with a schedule
// that fails re-validation degrades gracefully to a crash-started cold
// solve of the edited request. Replan never errors when that cold solve
// would succeed.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"teccl/internal/collective"
	"teccl/internal/lp"
	"teccl/internal/topo"
)

// DemandPair names one (source, destination) demand pair for demand
// churn: dropping the pair removes every chunk dst wants from src.
type DemandPair struct {
	Src, Dst int
}

// Delta describes one step of churn for Planner.Replan: topology edits
// (applied immutably to the session's topology snapshot) plus demand
// edits (applied to the incumbent request's demand).
type Delta struct {
	// LinksDown lists links that failed. Downed links keep their IDs
	// (schedules and later deltas stay aligned) but carry no traffic.
	LinksDown []topo.LinkID
	// NodesDown lists nodes that failed: every link touching one goes
	// down, and every demand pair involving it is dropped.
	NodesDown []topo.NodeID
	// Scale lists per-link capacity/α multipliers — bandwidth
	// degradation and straggler slowdown. See topo.LinkScale.
	Scale []topo.LinkScale
	// DropPairs lists demand pairs to remove from the incumbent demand.
	DropPairs []DemandPair
	// AddDemand, when non-nil, is OR-ed into the incumbent demand (same
	// shape required). New demand is structural churn: the replan solves
	// cold rather than incrementally.
	AddDemand *collective.Demand
}

// topoDelta extracts the topology part of the churn.
func (d Delta) topoDelta() topo.Delta {
	return topo.Delta{LinksDown: d.LinksDown, NodesDown: d.NodesDown, Scale: d.Scale}
}

// Replan applies churn to the session and re-solves the incumbent
// request (the session's last successful Plan) against the churned
// topology and demand. The session's topology snapshot is replaced and
// every per-topology cache — tau derivations, epoch estimates,
// fingerprint-keyed schedule replays, and warm bases — is invalidated
// atomically, so requests planned after Replan returns can never replay
// pre-churn state. Concurrent Plan calls are safe: each captures a
// consistent snapshot and in-flight solves against the old topology
// cannot contaminate the new caches.
//
// When the incumbent is a genuine LP solve and the churn is
// non-structural, the re-solve is incremental (see the file comment);
// otherwise, or when the incremental path sours, Replan degrades to a
// cold solve of the edited request — Plan.ReplanFallback reports which
// happened, and PlannerStats.Replans/ReplanPivots/ReplanFallbacks
// aggregate the session's churn history. An infeasible edited request
// (e.g. a demand whose destination was disconnected without dropping
// the pair) returns the cold solve's error.
//
// Replan requires a prior successful Plan; an invalid delta (unknown
// IDs, negative scales, mismatched AddDemand shape) errors without
// changing any session state.
func (pl *Planner) Replan(ctx context.Context, d Delta) (*Plan, error) {
	pl.replanMu.Lock()
	defer pl.replanMu.Unlock()

	pl.mu.Lock()
	st := pl.state
	inc := pl.incumbent
	pl.mu.Unlock()
	if inc == nil {
		return nil, errors.New("core: Replan requires a prior successful Plan")
	}

	newTopo, err := st.t.ApplyDelta(d.topoDelta())
	if err != nil {
		return nil, err
	}
	newDemand := inc.demand.Clone()
	for _, pr := range d.DropPairs {
		if pr.Src < 0 || pr.Src >= newDemand.NumNodes() || pr.Dst < 0 || pr.Dst >= newDemand.NumNodes() {
			return nil, fmt.Errorf("core: Replan drops unknown demand pair (%d,%d)", pr.Src, pr.Dst)
		}
		newDemand.DropPair(pr.Src, pr.Dst)
	}
	for _, n := range d.NodesDown {
		newDemand.DropNode(int(n))
	}
	if d.AddDemand != nil {
		if d.AddDemand.NumNodes() != newDemand.NumNodes() ||
			d.AddDemand.NumChunks() != newDemand.NumChunks() ||
			d.AddDemand.ChunkBytes != newDemand.ChunkBytes {
			return nil, errors.New("core: Replan AddDemand shape mismatch with incumbent demand")
		}
		newDemand.Or(d.AddDemand)
	}

	// Swap the session onto the churned topology with fresh caches; from
	// here on, every concurrent and future Plan sees post-churn state
	// only. The name-matched basis chains are flushed too — the fallback
	// below must be a genuinely cold (crash-started) solve.
	newState := newSessionState(newTopo)
	pl.mu.Lock()
	pl.state = newState
	pl.lastLP = sessionBasis{}
	pl.lastMILP = sessionBasis{}
	pl.stats.Replans++
	pl.mu.Unlock()

	if d.AddDemand == nil && inc.model != nil && inc.basis != nil {
		if plan := pl.replanIncremental(ctx, newState, inc, st.t, newTopo, newDemand, d); plan != nil {
			return plan, nil
		}
		if ierr := interrupted(ctx); ierr != nil {
			return nil, fmt.Errorf("core: replan interrupted: %w", ierr)
		}
	}

	// Graceful degradation: cold re-solve of the edited request. The
	// fresh session state guarantees no replay or warm start survives
	// from before the churn, so this is exactly the solve a brand-new
	// session would run.
	pl.mu.Lock()
	pl.stats.ReplanFallbacks++
	pl.mu.Unlock()
	fopt := inc.opt
	plan, err := pl.Plan(ctx, Request{Demand: newDemand, Options: &fopt, Solver: inc.solver})
	if plan != nil {
		plan.Replanned = true
		plan.ReplanFallback = true
	}
	return plan, err
}

// replanIncremental attempts the dual-feasible incremental re-solve of
// the incumbent LP. It returns nil when the churn is structural at the
// incumbent discretization, the dual simplex does not reach a verified
// optimum, or the reoptimized rates fail to decompose into a schedule
// that re-validates on the churned topology — the caller then falls
// back to a cold solve.
func (pl *Planner) replanIncremental(ctx context.Context, newState *sessionState, inc *incumbentState,
	oldTopo, newTopo *topo.Topology, newDemand *collective.Demand, d Delta) *Plan {
	m := inc.model
	in := m.in
	start := time.Now()

	// Structural compatibility: every live link must keep the δ/κ it had
	// at the incumbent tau, or the time discretization of the model no
	// longer matches the world.
	nL := newTopo.NumLinks()
	if nL != oldTopo.NumLinks() || nL != len(in.kappa) {
		return nil
	}
	capChunks := make([]float64, nL)
	for l := 0; l < nL; l++ {
		if newTopo.LinkDown(topo.LinkID(l)) {
			continue
		}
		lk := newTopo.Link(topo.LinkID(l))
		del := 0
		if lk.Alpha > 0 {
			del = int(math.Ceil(lk.Alpha/in.tau - 1e-9))
		}
		per := lk.Capacity * in.tau / in.demand.ChunkBytes
		kap := 1
		if per < 1-1e-9 {
			kap = int(math.Ceil(1/per - 1e-9))
		}
		if del != in.delta[l] || kap != in.kappa[l] {
			return nil
		}
		capChunks[l] = per
	}

	// Perturb a clone of the incumbent model. Bound and RHS edits only:
	// the basis stays dual feasible.
	q := m.p.Clone()
	for l := 0; l < nL; l++ {
		if !newTopo.LinkDown(topo.LinkID(l)) || oldTopo.LinkDown(topo.LinkID(l)) {
			continue
		}
		// Newly-downed link: drop its flow columns.
		for si := range m.fvar {
			for _, v := range m.fvar[si][l] {
				if v != noVar {
					q.SetBounds(lp.VarID(v), 0, 0)
				}
			}
		}
	}
	// Rewrite every live link's windowed capacity budgets with the
	// churned capacities (cheap, and uniform across scaled/unscaled).
	for l := 0; l < nL; l++ {
		if newTopo.LinkDown(topo.LinkID(l)) {
			continue
		}
		kap := in.kappa[l]
		for k, r := range m.capRow[l] {
			if r == noVar {
				continue
			}
			budget := 0.0
			for kk := k - kap + 1; kk <= k; kk++ {
				se := kk
				if se < 0 {
					se = 0
				}
				budget += capChunks[l] * in.opt.capScale(topo.LinkID(l), se)
			}
			q.SetRHS(int(r), budget)
		}
	}
	// Demand drops: fix the pair's read columns at zero and zero its
	// destination-total row. The supply rows are left alone — the
	// source's inventory chain absorbs the now-undelivered chunks.
	expanded := in.demand.Clone()
	dem := make([][]float64, len(m.dem))
	for si := range m.dem {
		dem[si] = append([]float64(nil), m.dem[si]...)
	}
	srcIdx := make(map[int]int, len(m.sources))
	for si, s := range m.sources {
		srcIdx[s] = si
	}
	drop := func(src, dst int) {
		if src < 0 || src >= expanded.NumNodes() || dst < 0 || dst >= expanded.NumNodes() {
			return
		}
		expanded.DropPair(src, dst)
		si, ok := srcIdx[src]
		if !ok || dem[si][dst] == 0 {
			return
		}
		dem[si][dst] = 0
		for _, v := range m.rvar[si][dst] {
			if v != noVar {
				q.SetBounds(lp.VarID(v), 0, 0)
			}
		}
		if r := m.destRow[si][dst]; r != noVar {
			q.SetRHS(int(r), 0)
		}
	}
	for _, pr := range d.DropPairs {
		drop(pr.Src, pr.Dst)
	}
	for _, n := range d.NodesDown {
		for other := 0; other < expanded.NumNodes(); other++ {
			drop(int(n), other)
			drop(other, int(n))
		}
	}

	// The edited instance the schedule decomposition (and its built-in
	// re-validation) runs against: the churned topology and demand, the
	// recomputed per-epoch budgets, the incumbent discretization.
	in2 := *in
	in2.topo = newTopo
	in2.demand = expanded
	in2.capChunks = capChunks
	in2.opt.estimates = nil
	m2 := *m
	m2.p = q
	m2.in = &in2
	m2.dem = dem

	// Dual-simplex reoptimization from the incumbent basis. MethodDual
	// falls back to the primal internally if the basis turns out not to
	// be dual feasible after repair.
	ctx, cancel := withTimeLimit(ctx, inc.opt.TimeLimit)
	defer cancel()
	sol, err := lp.Solve(q, lp.Options{Context: ctx, WarmStart: inc.basis.Clone(), Method: lp.MethodDual})
	if err != nil || sol.Status != lp.StatusOptimal {
		return nil
	}
	sch, err := m2.decompose(sol.X) // re-validates on the churned topology
	if err != nil {
		return nil
	}

	res := &Result{
		Schedule:         sch,
		Objective:        sol.Objective,
		Optimal:          true,
		SolveTime:        time.Since(start),
		Epochs:           in.K,
		Tau:              in.tau,
		RootIterations:   sol.Iterations,
		Refactorizations: sol.Refactorizations,
		FTUpdates:        sol.FTUpdates,
		UpdateNnz:        sol.UpdateNnz,
		WarmStarted:      true,
	}
	plan := &Plan{Result: res, Solver: SolverLP, WarmStart: true, Replanned: true}

	// The replanned model becomes the incumbent for the next delta, and
	// seeds the fresh session caches.
	pl.mu.Lock()
	pl.stats.ReplanPivots += sol.Iterations
	if pl.state == newState {
		pl.lastLP = sessionBasis{prob: q, basis: sol.Basis}
		pl.incumbent = &incumbentState{
			demand: newDemand.Clone(),
			opt:    inc.opt,
			solver: inc.solver,
			model:  &m2,
			basis:  sol.Basis,
		}
	}
	pl.mu.Unlock()
	newState.warmBases.record(q, sol.Basis)
	return plan
}
