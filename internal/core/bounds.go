package core

import (
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// sendsFinishEpoch returns the latest arrival epoch of a send list.
func sendsFinishEpoch(in *instance, sends []schedule.Send) int {
	finish := 0
	for _, snd := range sends {
		l := int(snd.Link)
		if ae := snd.Epoch + in.delta[l] + in.kappa[l] - 1; ae > finish {
			finish = ae
		}
	}
	return finish
}

// lpGreedyBound computes a feasible no-copy completion epoch by routing
// every (source, chunk, destination) triple along its hop-shortest path
// with greedy windowed list scheduling — a quick SPF-style upper bound
// that tightens the LP horizon far below the analytic estimate, and
// returns the planned sends so the flow support can seed a crash basis
// (see crashBasisLP). Returns -1 and nil sends when the greedy fails.
func lpGreedyBound(in *instance) (int, []schedule.Send) {
	t := in.topo
	d := in.demand

	// Next-hop routing toward each destination along δ+κ shortest paths.
	// Precompute per-destination next-hop link from each node.
	nN := t.NumNodes()
	next := make([][]int, nN) // next[dst][node] = link toward dst, -1 none
	dist := in.hopDistances()
	for dst := 0; dst < nN; dst++ {
		next[dst] = make([]int, nN)
		for n := range next[dst] {
			next[dst][n] = -1
		}
		for n := 0; n < nN; n++ {
			if n == dst {
				continue
			}
			bestLink, bestCost := -1, 0.0
			for _, lid := range t.Out(topo.NodeID(n)) {
				l := int(lid)
				lk := t.Link(lid)
				c := float64(in.delta[l]+in.kappa[l]) + dist[lk.Dst][dst]
				if bestLink == -1 || c < bestCost {
					bestLink, bestCost = l, c
				}
			}
			if bestCost < float64(10*in.K+1000) {
				next[dst][n] = bestLink
			}
		}
	}

	linkUsed := map[[2]int]float64{}
	windowFree := func(plan [][2]int, l, k int) bool {
		kap := in.kappa[l]
		used := 0.0
		for kk := k - kap + 1; kk <= k; kk++ {
			if kk < 0 {
				continue
			}
			used += linkUsed[[2]int{l, kk}]
			for _, h := range plan {
				if h[0] == l && h[1] == kk {
					used++
				}
			}
		}
		return used+1 <= in.capChunks[l]*float64(kap)+1e-9
	}

	// Each triple is planned hop-by-hop before anything is reserved:
	// GPU hops can buffer and wait for a free window, but a switch must
	// forward an arrival in the very next epoch, so a busy switch window
	// invalidates the attempt — the whole path retries with a later
	// departure instead of giving up (which previously made the bound
	// unusable on any switch-centric topology).
	horizon := 16*in.K + 64
	finish := 0
	var plan [][2]int
	var sends []schedule.Send
	for s := 0; s < d.NumNodes(); s++ {
		for c := 0; c < d.NumChunks(); c++ {
			for dst := 0; dst < d.NumNodes(); dst++ {
				if !d.Wants(s, c, dst) {
					continue
				}
				routed := false
				for t0 := 0; t0 <= horizon && !routed; t0++ {
					plan = plan[:0]
					at := t0
					node := s
					ok := true
					for node != dst {
						l := next[dst][node]
						if l < 0 {
							return -1, nil // no route at all
						}
						k := at
						if t.IsSwitch(topo.NodeID(node)) {
							if !windowFree(plan, l, k) {
								ok = false
								break
							}
						} else {
							for !windowFree(plan, l, k) {
								k++
								if k > horizon {
									// A GPU hop that exhausts the horizon
									// only starts later for larger t0:
									// retrying departures cannot help.
									return -1, nil
								}
							}
						}
						plan = append(plan, [2]int{l, k})
						arr := k + in.delta[l] + in.kappa[l] - 1
						at = arr + 1
						node = int(t.Link(topo.LinkID(l)).Dst)
					}
					if !ok {
						continue
					}
					for _, h := range plan {
						linkUsed[h]++
						if arr := h[1] + in.delta[h[0]] + in.kappa[h[0]] - 1; arr > finish {
							finish = arr
						}
						sends = append(sends, schedule.Send{
							Src: s, Chunk: c, Link: topo.LinkID(h[0]),
							Epoch: h[1], Fraction: 1,
						})
					}
					routed = true
				}
				if !routed {
					return -1, nil
				}
			}
		}
	}
	return finish, sends
}
