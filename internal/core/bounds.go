package core

import (
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// sendsFinishEpoch returns the latest arrival epoch of a send list.
func sendsFinishEpoch(in *instance, sends []schedule.Send) int {
	finish := 0
	for _, snd := range sends {
		l := int(snd.Link)
		if ae := snd.Epoch + in.delta[l] + in.kappa[l] - 1; ae > finish {
			finish = ae
		}
	}
	return finish
}

// lpGreedyBound computes a feasible no-copy completion epoch by routing
// every (source, chunk, destination) triple along its hop-shortest path
// with greedy windowed list scheduling — a quick SPF-style upper bound
// that tightens the LP horizon far below the analytic estimate. Returns
// -1 when the greedy fails.
func lpGreedyBound(in *instance) int {
	t := in.topo
	d := in.demand
	hop := in.hopDistances()
	_ = hop

	// Next-hop routing toward each destination along δ+κ shortest paths.
	// Precompute per-destination next-hop link from each node.
	nN := t.NumNodes()
	next := make([][]int, nN) // next[dst][node] = link toward dst, -1 none
	dist := in.hopDistances()
	for dst := 0; dst < nN; dst++ {
		next[dst] = make([]int, nN)
		for n := range next[dst] {
			next[dst][n] = -1
		}
		for n := 0; n < nN; n++ {
			if n == dst {
				continue
			}
			bestLink, bestCost := -1, 0.0
			for _, lid := range t.Out(topo.NodeID(n)) {
				l := int(lid)
				lk := t.Link(lid)
				c := float64(in.delta[l]+in.kappa[l]) + dist[lk.Dst][dst]
				if bestLink == -1 || c < bestCost {
					bestLink, bestCost = l, c
				}
			}
			if bestCost < float64(10*in.K+1000) {
				next[dst][n] = bestLink
			}
		}
	}

	linkUsed := map[[2]int]float64{}
	windowFree := func(l, k int) bool {
		kap := in.kappa[l]
		used := 0.0
		for kk := k - kap + 1; kk <= k; kk++ {
			if kk >= 0 {
				used += linkUsed[[2]int{l, kk}]
			}
		}
		return used+1 <= in.capChunks[l]*float64(kap)+1e-9
	}

	horizon := 16*in.K + 64
	finish := 0
	for s := 0; s < d.NumNodes(); s++ {
		for c := 0; c < d.NumChunks(); c++ {
			for dst := 0; dst < d.NumNodes(); dst++ {
				if !d.Wants(s, c, dst) {
					continue
				}
				at := 0
				node := s
				for node != dst {
					l := next[dst][node]
					if l < 0 {
						return -1
					}
					k := at
					if t.IsSwitch(topo.NodeID(node)) {
						if !windowFree(l, k) {
							return -1
						}
					} else {
						for !windowFree(l, k) {
							k++
							if k > horizon {
								return -1
							}
						}
					}
					linkUsed[[2]int{l, k}]++
					arr := k + in.delta[l] + in.kappa[l] - 1
					if arr > finish {
						finish = arr
					}
					at = arr + 1
					node = int(t.Link(topo.LinkID(l)).Dst)
				}
			}
		}
	}
	return finish
}
