package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"teccl/internal/collective"
	"teccl/internal/lp"
	"teccl/internal/milp"
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// astarState carries chunk positions between A* rounds: which GPU holds
// which commodity, which demands remain, and the in-flight arrivals (the
// Q variables of Appendix D) that land in the next round.
type astarState struct {
	holds [][]bool // [node][ci]: resident and forwardable
	needs [][]bool // [node][ci]: still demanded here
	// pending arrivals for the next round: local forwardable epoch.
	pendGPU    []pendingArrival
	pendSwitch []pendingArrival
	remaining  int
	// prevLoad records chunks placed on each link per global epoch in the
	// previous round, so κ-window capacity constraints straddling a round
	// boundary stay honest.
	prevLoad map[[2]int]float64
}

type pendingArrival struct {
	node, ci, localEpoch int
}

// SolveAStar solves the collective with the A*-inspired round partitioning
// of §4.2: a sequence of small MILPs, each rewarded for delivering chunks
// and for moving undelivered chunks closer to their destinations (the
// Floyd-Warshall potential of Appendix D). Rounds continue until every
// demand is met. Sub-optimal but far more scalable than the one-shot MILP,
// and still copy-capable.
func SolveAStar(t *topo.Topology, d *collective.Demand, opt Options) (*Result, error) {
	return SolveAStarContext(context.Background(), t, d, opt)
}

// SolveAStarContext is SolveAStar under a context: the round loop checks
// ctx before every round, and each round's MILP (its node loop, worker
// pool, and LP relaxations) watches the same ctx, so cancellation
// interrupts the solve promptly with an error wrapping
// context.Cause(ctx). Options.TimeLimit is layered onto ctx as a derived
// deadline covering the whole round sequence — not, as before the
// context plumbing, one budget per round.
func SolveAStarContext(ctx context.Context, t *topo.Topology, d *collective.Demand, opt Options) (*Result, error) {
	res, _, err := solveAStar(ctx, t, d, opt)
	return res, err
}

// astarAux is the incremental payload of an A* solve: the instance and
// round length the replanning layer needs to replay unaffected rounds
// and resume the round loop on a churned topology.
type astarAux struct {
	in *instance
	Kr int
}

// astarRoundLength derives the round horizon Kr: long enough that an
// in-flight chunk lands within the following round (§5 "Number of
// epochs in a round").
func astarRoundLength(in *instance) int {
	if in.opt.RoundEpochs > 0 {
		return in.opt.RoundEpochs
	}
	maxHop := 1
	for l := range in.delta {
		if h := in.delta[l] + in.kappa[l]; h > maxHop {
			maxHop = h
		}
	}
	Kr := maxHop + 2
	if Kr < 3 {
		Kr = 3
	}
	return Kr
}

// newAStarState builds the initial chunk-position state of an instance:
// every source holds its chunks, every demand is outstanding.
func newAStarState(in *instance) *astarState {
	nN := in.topo.NumNodes()
	st := &astarState{
		holds: make([][]bool, nN),
		needs: make([][]bool, nN),
	}
	for n := 0; n < nN; n++ {
		st.holds[n] = make([]bool, len(in.comms))
		st.needs[n] = make([]bool, len(in.comms))
	}
	for ci, cm := range in.comms {
		st.holds[cm.src][ci] = true
		for _, dd := range cm.dests {
			st.needs[dd][ci] = true
			st.remaining++
		}
	}
	return st
}

// iterTotals accumulates the per-round MILP solver counters so an A*
// Result reports iteration effort like the other formulations.
type iterTotals struct {
	root, node, nodes, refac, ft, nnz int
}

// astarLoop runs the round loop from startRound (with st describing the
// world at that round's start) until every demand is met. It returns
// the sends of the rounds it solved, the total absolute round count,
// the worst per-round gap, and the summed solver counters. The
// replanning layer re-enters it mid-stream: replayed rounds advance st
// without solving, then the loop resumes here on the churned instance.
func astarLoop(ctx context.Context, in *instance, st *astarState, hop [][]float64, Kr, maxRounds, startRound int, hint *basisHint) ([]schedule.Send, int, float64, iterTotals, error) {
	var sends []schedule.Send
	var totalGap float64
	var iters iterTotals
	rounds := startRound
	for st.remaining > 0 {
		if rounds >= maxRounds {
			return nil, rounds, 0, iters, fmt.Errorf("core: A* did not finish within %d rounds (%d demands left)",
				maxRounds, st.remaining)
		}
		if budgetExpired(ctx) {
			if ierr := interrupted(ctx); ierr != nil {
				return nil, rounds, 0, iters, fmt.Errorf("core: A* cancelled at round %d with %d demands left: %w",
					rounds, st.remaining, ierr)
			}
			return nil, rounds, 0, iters, fmt.Errorf("core: A* hit its time limit at round %d with %d demands left; raise TimeLimit",
				rounds, st.remaining)
		}
		in.opt.Progress.emit(Progress{
			Solver: "astar", Phase: "round", Round: rounds + 1,
			Incumbent: math.NaN(), Bound: math.NaN(), Gap: math.Inf(1),
		})
		off := rounds * Kr
		roundSends, msol, roundHint, err := solveRound(ctx, in, st, hop, Kr, off, hint)
		if err != nil {
			return nil, rounds, 0, iters, err
		}
		iters.root += msol.RootIterations
		iters.node += msol.NodeIterations
		iters.nodes += msol.Nodes
		iters.refac += msol.Refactorizations
		iters.ft += msol.FTUpdates
		iters.nnz += msol.UpdateNnz
		hint = roundHint
		progressed := advanceState(in, st, roundSends, off, Kr)
		if !progressed && len(roundSends) == 0 && st.remaining > 0 {
			return nil, rounds, 0, iters, fmt.Errorf("core: A* stalled at round %d with %d demands left", rounds, st.remaining)
		}
		sends = append(sends, roundSends...)
		if msol.Gap > totalGap {
			totalGap = msol.Gap
		}
		rounds++
	}
	return sends, rounds, totalGap, iters, nil
}

// solveAStar is SolveAStarContext returning the incremental payload the
// session layer records for replanning.
func solveAStar(ctx context.Context, t *topo.Topology, d *collective.Demand, opt Options) (*Result, *astarAux, error) {
	ctx, cancel := withTimeLimit(ctx, opt.TimeLimit)
	defer cancel()
	start := time.Now()
	in := newInstance(t, d, opt)
	if len(in.comms) == 0 {
		return emptyResult(in, start), nil, nil
	}

	Kr := astarRoundLength(in)
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
	}
	st := newAStarState(in)
	hop := in.hopDistances()

	sends, rounds, totalGap, iters, err := astarLoop(ctx, in, st, hop, Kr, maxRounds, 0, nil)
	if err != nil {
		return nil, nil, err
	}

	s := &schedule.Schedule{
		Topo:           t,
		Demand:         d,
		Tau:            in.tau,
		NumEpochs:      rounds * Kr,
		Sends:          sends,
		AllowCopy:      true,
		EpochsPerChunk: in.epochsPerChunk(),
	}
	s = s.Prune()
	if err := s.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: A* produced invalid schedule: %w", err)
	}
	return &Result{
		Schedule:         s,
		Gap:              totalGap,
		Optimal:          false,
		SolveTime:        time.Since(start),
		Epochs:           rounds * Kr,
		Tau:              in.tau,
		Rounds:           rounds,
		Nodes:            iters.nodes,
		RootIterations:   iters.root,
		NodeIterations:   iters.node,
		Refactorizations: iters.refac,
		FTUpdates:        iters.ft,
		UpdateNnz:        iters.nnz,
	}, &astarAux{in: in, Kr: Kr}, nil
}

// solveRound builds and solves one A* round MILP. hint optionally seeds
// the root relaxation from the previous round's basis; the returned hint
// carries this round's basis forward, and the milp.Solution carries the
// round's gap and iteration counters.
func solveRound(ctx context.Context, in *instance, st *astarState, hop [][]float64, Kr, off int, hint *basisHint) ([]schedule.Send, *milp.Solution, *basisHint, error) {
	t := in.topo
	nL := t.NumLinks()
	nN := t.NumNodes()
	p := lp.NewProblem(lp.Maximize)
	var ints []lp.VarID

	// hasOrWill: nodes that hold the chunk or have it in flight; flows
	// into them would double-deliver.
	hasOrWill := make([][]bool, nN)
	for n := range hasOrWill {
		hasOrWill[n] = make([]bool, len(in.comms))
		copy(hasOrWill[n], st.holds[n])
	}
	for _, pa := range st.pendGPU {
		hasOrWill[pa.node][pa.ci] = true
	}

	// Earliest local epoch a commodity can be forwardable at each node.
	earliest := make([][]float64, len(in.comms))
	for ci := range in.comms {
		e := make([]float64, nN)
		for n := range e {
			e[n] = math.Inf(1)
		}
		for n := 0; n < nN; n++ {
			if st.holds[n][ci] {
				for v := 0; v < nN; v++ {
					if dd := hop[n][v]; dd < e[v] {
						e[v] = dd
					}
				}
			}
		}
		for _, pa := range st.pendGPU {
			if pa.ci != ci {
				continue
			}
			for v := 0; v < nN; v++ {
				if dd := float64(pa.localEpoch) + hop[pa.node][v]; dd < e[v] {
					e[v] = dd
				}
			}
			if float64(pa.localEpoch) < e[pa.node] {
				e[pa.node] = float64(pa.localEpoch)
			}
		}
		for _, pa := range st.pendSwitch {
			if pa.ci != ci {
				continue
			}
			for v := 0; v < nN; v++ {
				if dd := float64(pa.localEpoch) + hop[pa.node][v]; dd < e[v] {
					e[v] = dd
				}
			}
			// The switch itself may forward at exactly the arrival epoch.
			if float64(pa.localEpoch) < e[pa.node] {
				e[pa.node] = float64(pa.localEpoch)
			}
		}
		earliest[ci] = e
	}

	// Commodities with no remaining demand need no new flow.
	active := make([]bool, len(in.comms))
	for ci := range in.comms {
		for n := 0; n < nN; n++ {
			if st.needs[n][ci] {
				active[ci] = true
				break
			}
		}
	}

	// Flow variables.
	fvar := make([][][]int32, len(in.comms))
	for ci := range in.comms {
		fvar[ci] = make([][]int32, nL)
		for l := 0; l < nL; l++ {
			col := make([]int32, Kr)
			for k := range col {
				col[k] = noVar
			}
			fvar[ci][l] = col
			if !active[ci] || t.LinkDown(topo.LinkID(l)) {
				continue
			}
			lk := t.Link(topo.LinkID(l))
			if hasOrWill[lk.Dst][ci] && !t.IsSwitch(lk.Dst) {
				continue // would double-deliver
			}
			if int(lk.Dst) == in.comms[ci].src {
				continue
			}
			for k := 0; k < Kr; k++ {
				if float64(k) < earliest[ci][lk.Src] {
					continue
				}
				// Arrival may land in the next round (the Q carryover),
				// but not beyond it.
				if k+in.delta[l]+in.kappa[l] > 2*Kr {
					continue
				}
				v := p.AddVar(fmt.Sprintf("F[c%d,l%d,k%d]", ci, l, k), 0, 1, 0)
				col[k] = int32(v)
				ints = append(ints, v)
			}
		}
	}
	fAt := func(ci, l, k int) int32 {
		if k < 0 || k >= Kr {
			return noVar
		}
		return fvar[ci][l][k]
	}

	// Buffer variables for GPUs (holders fixed at 1; A* always buffers).
	bvar := make([][][]int32, len(in.comms))
	for ci := range in.comms {
		bvar[ci] = make([][]int32, nN)
		for n := 0; n < nN; n++ {
			col := make([]int32, Kr+1)
			for k := range col {
				col[k] = noVar
			}
			bvar[ci][n] = col
			if !active[ci] || t.IsSwitch(topo.NodeID(n)) || st.holds[n][ci] {
				continue
			}
			lo := int(math.Ceil(earliest[ci][n] - 1e-9))
			if lo < 1 {
				lo = 1
			}
			for k := lo; k <= Kr; k++ {
				col[k] = int32(p.AddVar(fmt.Sprintf("B[c%d,n%d,k%d]", ci, n, k), 0, 1, 0))
			}
		}
	}

	// Pending GPU arrivals become constants in the buffer recurrences.
	pendAt := map[[3]int]float64{} // (ci, node, epoch) -> constant arrivals
	for _, pa := range st.pendGPU {
		pendAt[[3]int{pa.ci, pa.node, pa.localEpoch}]++
	}
	pendSwAt := map[[3]int]float64{}
	for _, pa := range st.pendSwitch {
		pendSwAt[[3]int{pa.ci, pa.node, pa.localEpoch}]++
	}

	// Buffer evolution.
	for ci := range in.comms {
		for n := 0; n < nN; n++ {
			if t.IsSwitch(topo.NodeID(n)) || st.holds[n][ci] {
				continue
			}
			for k := 1; k <= Kr; k++ {
				var terms []lp.Term
				rhs := pendAt[[3]int{ci, n, k}]
				if b := bvar[ci][n][k]; b != noVar {
					terms = append(terms, lp.Term{Var: lp.VarID(b), Coeff: 1})
				}
				if b := bvar[ci][n][k-1]; b != noVar {
					terms = append(terms, lp.Term{Var: lp.VarID(b), Coeff: -1})
				}
				has := rhs != 0
				for _, lid := range t.In(topo.NodeID(n)) {
					l := int(lid)
					if f := fAt(ci, l, k-in.delta[l]-in.kappa[l]); f != noVar {
						terms = append(terms, lp.Term{Var: lp.VarID(f), Coeff: -1})
						has = true
					}
				}
				if len(terms) == 0 && !has {
					continue
				}
				if len(terms) == 0 {
					continue
				}
				p.AddRow(terms, lp.EQ, rhs)
			}
		}
	}

	// Flow conservation.
	for ci := range in.comms {
		for n := 0; n < nN; n++ {
			outLinks := t.Out(topo.NodeID(n))
			if len(outLinks) == 0 {
				continue
			}
			if !t.IsSwitch(topo.NodeID(n)) {
				if st.holds[n][ci] {
					continue // holder: B is the constant 1
				}
				for _, lid := range outLinks {
					l := int(lid)
					for k := 0; k < Kr; k++ {
						f := fAt(ci, l, k)
						if f == noVar {
							continue
						}
						b := bvar[ci][n][k]
						if b == noVar {
							p.SetBounds(lp.VarID(f), 0, 0)
							continue
						}
						p.AddRow([]lp.Term{
							{Var: lp.VarID(f), Coeff: 1},
							{Var: lp.VarID(b), Coeff: -1},
						}, lp.LE, 0)
					}
				}
				continue
			}
			// Switch: per-outgoing-link limit against exact arrivals,
			// including carryover constants.
			copyOK := in.opt.SwitchMode == SwitchCopy
			for k := 0; k < Kr; k++ {
				var arrivals []lp.Term
				rhs := pendSwAt[[3]int{ci, n, k}]
				for _, lid := range t.In(topo.NodeID(n)) {
					l := int(lid)
					if f := fAt(ci, l, k-in.delta[l]-in.kappa[l]); f != noVar {
						arrivals = append(arrivals, lp.Term{Var: lp.VarID(f), Coeff: -1})
					}
				}
				if copyOK {
					for _, lid := range outLinks {
						f := fAt(ci, int(lid), k)
						if f == noVar {
							continue
						}
						if len(arrivals) == 0 && rhs == 0 {
							p.SetBounds(lp.VarID(f), 0, 0)
							continue
						}
						row := append([]lp.Term{{Var: lp.VarID(f), Coeff: 1}}, arrivals...)
						p.AddRow(row, lp.LE, rhs)
					}
				} else {
					var row []lp.Term
					for _, lid := range outLinks {
						if f := fAt(ci, int(lid), k); f != noVar {
							row = append(row, lp.Term{Var: lp.VarID(f), Coeff: 1})
						}
					}
					if len(row) == 0 {
						continue
					}
					if len(arrivals) == 0 && rhs == 0 {
						for _, tm := range row {
							p.SetBounds(tm.Var, 0, 0)
						}
						continue
					}
					p.AddRow(append(row, arrivals...), lp.LE, rhs)
				}
			}
		}
	}

	// Cross-round dedup: a GPU may receive each chunk at most once in
	// total — in-round landings (reflected in B at round end) plus
	// carryover sends that land next round.
	for ci := range in.comms {
		for n := 0; n < nN; n++ {
			if t.IsSwitch(topo.NodeID(n)) || st.holds[n][ci] {
				continue
			}
			var row []lp.Term
			if b := bvar[ci][n][Kr]; b != noVar {
				row = append(row, lp.Term{Var: lp.VarID(b), Coeff: 1})
			}
			carried := false
			for _, lid := range t.In(topo.NodeID(n)) {
				l := int(lid)
				for k := 0; k < Kr; k++ {
					if k+in.delta[l]+in.kappa[l] <= Kr {
						continue // lands in-round; already in B
					}
					if f := fAt(ci, l, k); f != noVar {
						row = append(row, lp.Term{Var: lp.VarID(f), Coeff: 1})
						carried = true
					}
				}
			}
			if carried && len(row) > 1 {
				p.AddRow(row, lp.LE, 1)
			}
		}
	}

	// Capacity, with κ-windows that straddle the round boundary charged
	// for the previous round's in-flight transmissions.
	for l := 0; l < nL; l++ {
		kap := in.kappa[l]
		for k := 0; k < Kr; k++ {
			var row []lp.Term
			carry := 0.0
			for kk := k - kap + 1; kk <= k; kk++ {
				if kk < 0 {
					carry += st.prevLoad[[2]int{l, off + kk}]
					continue
				}
				for ci := range in.comms {
					if f := fAt(ci, l, kk); f != noVar {
						row = append(row, lp.Term{Var: lp.VarID(f), Coeff: 1})
					}
				}
			}
			if len(row) == 0 {
				continue
			}
			rhs := in.capChunks[l]*float64(kap) - carry
			if rhs < 0 {
				rhs = 0
			}
			p.AddRow(row, lp.LE, rhs)
		}
	}

	// Objective: delivery reward (1/k on a remaining destination's buffer)
	// plus the distance potential on end-of-round positions (Appendix D's
	// Floyd-Warshall reward) and on in-flight carryover sends.
	gamma := 0.1 / float64(Kr)
	potential := func(ci, n int) float64 {
		best := math.Inf(1)
		for dd := 0; dd < nN; dd++ {
			if st.needs[dd][ci] && hop[n][dd] < best {
				best = hop[n][dd]
			}
		}
		if math.IsInf(best, 1) {
			return 0
		}
		return gamma / (1 + best)
	}
	for ci := range in.comms {
		for n := 0; n < nN; n++ {
			for k := 1; k <= Kr; k++ {
				b := bvar[ci][n][k]
				if b == noVar {
					continue
				}
				w := p.Obj(lp.VarID(b))
				if st.needs[n][ci] {
					w += 1 / float64(k)
				}
				if k == Kr {
					w += potential(ci, n)
				}
				p.SetObj(lp.VarID(b), w)
			}
		}
	}
	for ci := range in.comms {
		for l := 0; l < nL; l++ {
			lk := t.Link(topo.LinkID(l))
			for k := 0; k < Kr; k++ {
				f := fvar[ci][l][k]
				if f == noVar {
					continue
				}
				if k+in.delta[l]+in.kappa[l] > Kr {
					// Lands next round: reward the chunk for being en
					// route toward its destination.
					w := p.Obj(lp.VarID(f)) + 0.9*potential(ci, int(lk.Dst))
					p.SetObj(lp.VarID(f), w)
				}
			}
		}
	}

	aopt := milp.Options{
		Context:       ctx,
		GapLimit:      in.opt.GapLimit,
		Workers:       in.opt.Workers,
		RootWarmStart: hint.basisFor(p),
		Progress:      in.opt.Progress.milpHook("astar", off/Kr+1),
	}
	if aopt.RootWarmStart != nil {
		// Later A* rounds reoptimize from the previous round's basis with
		// the dual simplex (falls back to primal when not dual feasible).
		aopt.LP.Method = lp.MethodDual
	}
	msol := milp.Solve(&milp.Problem{LP: p, Integer: ints}, aopt)
	switch msol.Status {
	case milp.StatusOptimal, milp.StatusFeasible:
	default:
		if ierr := interrupted(ctx); ierr != nil {
			return nil, nil, nil, fmt.Errorf("core: A* round %d interrupted: %w", off/Kr+1, ierr)
		}
		if budgetExpired(ctx) {
			return nil, nil, nil, fmt.Errorf("core: A* hit its time limit in round %d; raise TimeLimit", off/Kr+1)
		}
		return nil, nil, nil, fmt.Errorf("core: A* round failed: %v", msol.Status)
	}

	var out []schedule.Send
	for ci, cm := range in.comms {
		for l := 0; l < nL; l++ {
			for k := 0; k < Kr; k++ {
				v := fvar[ci][l][k]
				if v == noVar || msol.X[v] < 0.5 {
					continue
				}
				out = append(out, schedule.Send{
					Src: cm.src, Chunk: cm.chunk,
					Link: topo.LinkID(l), Epoch: off + k, Fraction: 1,
				})
			}
		}
	}
	return out, msol, hintFromSolve(p, msol.RootBasis), nil
}

// advanceState applies a round's sends to the A* state: materializes
// arrivals, records deliveries, and queues carryovers for the next round.
// Reports whether any demand was newly satisfied or any send was made.
func advanceState(in *instance, st *astarState, roundSends []schedule.Send, off, Kr int) bool {
	t := in.topo
	commIdx := map[[2]int]int{}
	for ci, cm := range in.comms {
		commIdx[[2]int{cm.src, cm.chunk}] = ci
	}
	// Pending GPU arrivals queued at the previous transition have landed
	// during this round: promote them to holds before rebuilding.
	for _, pa := range st.pendGPU {
		st.holds[pa.node][pa.ci] = true
	}
	st.pendGPU = nil
	st.pendSwitch = nil
	st.prevLoad = map[[2]int]float64{}
	progressed := len(roundSends) > 0
	for _, snd := range roundSends {
		ci := commIdx[[2]int{snd.Src, snd.Chunk}]
		l := int(snd.Link)
		st.prevLoad[[2]int{l, snd.Epoch}]++
		fwd := snd.Epoch + in.delta[l] + in.kappa[l] // global forwardable epoch
		dst := t.Link(snd.Link).Dst
		local := fwd - (off + Kr)
		if t.IsSwitch(dst) {
			if local >= 0 {
				st.pendSwitch = append(st.pendSwitch, pendingArrival{int(dst), ci, local})
			}
			continue
		}
		if local <= 0 {
			// Resident by the start of the next round.
			if !st.holds[dst][ci] {
				st.holds[dst][ci] = true
				if st.needs[dst][ci] {
					st.needs[dst][ci] = false
					st.remaining--
				}
			}
		} else {
			st.pendGPU = append(st.pendGPU, pendingArrival{int(dst), ci, local})
			// The arrival is committed: nothing can stop it landing, so
			// the demand no longer steers later rounds.
			if st.needs[dst][ci] {
				st.needs[dst][ci] = false
				st.remaining--
			}
		}
	}
	return progressed
}
