package core

import (
	"context"
	"fmt"

	"time"

	"teccl/internal/collective"
	"teccl/internal/lp"
	"teccl/internal/milp"
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// milpModel holds the variable indexing of one general-form instance.
type milpModel struct {
	in *instance
	p  *lp.Problem

	// fvar[ci][l][k] and bvar[ci][n][k] hold VarIDs, -1 where pruned.
	fvar [][][]int32
	bvar [][][]int32
	ints []lp.VarID
	// capRow[l][k] indexes the windowed capacity row of link l ending at
	// epoch k (-1 when not emitted) — the rows the replanning layer
	// rewrites when a churned MILP incumbent re-roots (replan.go).
	capRow [][]int32
}

const noVar = int32(-1)

// bufferless reports whether node n behaves like a switch for commodity
// ci: real switches always, and under NoBuffers any GPU that is neither
// the commodity's source nor one of its destinations.
func (in *instance) bufferless(ci, n int) bool {
	if in.topo.IsSwitch(topo.NodeID(n)) {
		return true
	}
	if !in.opt.NoBuffers {
		return false
	}
	cm := in.comms[ci]
	if n == cm.src {
		return false
	}
	for _, d := range cm.dests {
		if d == n {
			return false
		}
	}
	return true
}

// buildMILP constructs the general formulation of §3.1 (with the
// Appendix A initialization, Appendix B buffer limits, and Appendix F
// windowed capacity constraints).
func buildMILP(in *instance) (*milpModel, error) {
	t := in.topo
	K := in.K
	nL := t.NumLinks()
	nN := t.NumNodes()
	m := &milpModel{in: in, p: lp.NewProblem(lp.Maximize)}
	p := m.p

	// Flow variables F[ci][l][k], binary, pruned by send windows.
	m.fvar = make([][][]int32, len(in.comms))
	for ci := range in.comms {
		m.fvar[ci] = make([][]int32, nL)
		for l := 0; l < nL; l++ {
			col := make([]int32, K)
			for k := range col {
				col[k] = noVar
			}
			m.fvar[ci][l] = col
			for k := 0; k < K; k++ {
				if !in.sendWindow(ci, l, k) {
					continue
				}
				v := p.AddVar(fmt.Sprintf("F[s%d.c%d,l%d,k%d]",
					in.comms[ci].src, in.comms[ci].chunk, l, k), 0, 1, 0)
				col[k] = int32(v)
				m.ints = append(m.ints, v)
			}
		}
	}

	// Buffer variables B[ci][n][k] for buffered nodes only. The source's
	// buffer is fixed at 1 (it never loses its chunk); other nodes start
	// at 0 and can first hold the chunk at their earliest epoch.
	m.bvar = make([][][]int32, len(in.comms))
	wantsIt := func(ci, n int) bool {
		for _, d := range in.comms[ci].dests {
			if d == n {
				return true
			}
		}
		return false
	}
	for ci, cm := range in.comms {
		m.bvar[ci] = make([][]int32, nN)
		for n := 0; n < nN; n++ {
			col := make([]int32, K+1)
			for k := range col {
				col[k] = noVar
			}
			m.bvar[ci][n] = col
			if in.bufferless(ci, n) {
				continue
			}
			if n == cm.src {
				// Fixed 1 across all epochs; materialized lazily as a
				// fixed variable only if the buffer-limit constraint
				// needs it. Flow conservation treats it as the constant 1.
				continue
			}
			e := in.earliest[ci][n]
			for k := e; k <= K; k++ {
				if k < 1 {
					continue // B_0 is 0 for non-sources
				}
				v := p.AddVar(fmt.Sprintf("B[s%d.c%d,n%d,k%d]", cm.src, cm.chunk, n, k), 0, 1, 0)
				col[k] = int32(v)
				// Objective: a destination holding the chunk at the start
				// of epoch k received it by the end of epoch k-1; the
				// paper's 1/(k+1) reward for delivery by end of epoch k
				// becomes a 1/k weight on B_k.
				if wantsIt(ci, n) {
					p.SetObj(v, in.opt.priorityOf(cm.src, cm.chunk, n)/float64(k))
				}
			}
			// Destination constraint: full demand met by the last epoch.
			if wantsIt(ci, n) {
				if col[K] == noVar {
					return nil, fmt.Errorf("core: destination %d cannot receive chunk (%d,%d) within %d epochs",
						n, cm.src, cm.chunk, K)
				}
				p.SetBounds(lp.VarID(col[K]), 1, 1)
			}
		}
	}

	fAt := func(ci, l, k int) int32 {
		if k < 0 || k >= K {
			return noVar
		}
		return m.fvar[ci][l][k]
	}

	// Removal variables for limited buffers (Appendix B).
	var xvar [][][]int32
	if in.opt.BufferLimitChunks > 0 {
		xvar = make([][][]int32, len(in.comms))
		for ci := range in.comms {
			xvar[ci] = make([][]int32, nN)
			for n := 0; n < nN; n++ {
				col := make([]int32, K+1)
				for k := range col {
					col[k] = noVar
				}
				xvar[ci][n] = col
				for k := 0; k <= K; k++ {
					if m.bvar[ci][n][k] != noVar {
						col[k] = int32(p.AddVar("", 0, 1, 0))
					}
				}
			}
		}
	}

	// Buffer evolution: B_k = B_{k-1} (- X_{k-1}) + arrivals forwardable
	// at k, where arrivals at k were sent at k - δ - κ.
	for ci := range in.comms {
		cm := in.comms[ci]
		for n := 0; n < nN; n++ {
			if in.bufferless(ci, n) || n == cm.src {
				continue
			}
			for k := 1; k <= K; k++ {
				bk := m.bvar[ci][n][k]
				bkPrev := m.bvar[ci][n][k-1]
				var terms []lp.Term
				if bk != noVar {
					terms = append(terms, lp.Term{Var: lp.VarID(bk), Coeff: 1})
				}
				if bkPrev != noVar {
					terms = append(terms, lp.Term{Var: lp.VarID(bkPrev), Coeff: -1})
					if xvar != nil && xvar[ci][n][k-1] != noVar {
						terms = append(terms, lp.Term{Var: lp.VarID(xvar[ci][n][k-1]), Coeff: 1})
					}
				}
				hasArrival := false
				for _, lid := range t.In(topo.NodeID(n)) {
					l := int(lid)
					if f := fAt(ci, l, k-in.delta[l]-in.kappa[l]); f != noVar {
						terms = append(terms, lp.Term{Var: lp.VarID(f), Coeff: -1})
						hasArrival = true
					}
				}
				if bk == noVar && bkPrev == noVar && !hasArrival {
					continue
				}
				p.AddRow(terms, lp.EQ, 0)
			}
		}
	}

	// Flow conservation.
	for ci := range in.comms {
		cm := in.comms[ci]
		for n := 0; n < nN; n++ {
			outLinks := t.Out(topo.NodeID(n))
			if len(outLinks) == 0 {
				continue
			}
			if !in.bufferless(ci, n) {
				// Buffered GPU: each outgoing send needs the chunk in the
				// buffer at the start of the epoch. Sources hold their
				// chunks permanently (constant 1), so no row is needed.
				if n == cm.src {
					continue
				}
				for _, lid := range outLinks {
					l := int(lid)
					for k := 0; k < K; k++ {
						f := fAt(ci, l, k)
						if f == noVar {
							continue
						}
						b := m.bvar[ci][n][k]
						if b == noVar {
							// Can never hold the chunk this early; the
							// send window should have pruned this.
							p.SetBounds(lp.VarID(f), 0, 0)
							continue
						}
						p.AddRow([]lp.Term{
							{Var: lp.VarID(f), Coeff: 1},
							{Var: lp.VarID(b), Coeff: -1},
						}, lp.LE, 0)
					}
				}
				continue
			}
			// Bufferless node (switch, or GPU under NoBuffers): outgoing
			// sends at k draw on arrivals forwardable exactly at k.
			copyOK := in.opt.SwitchMode == SwitchCopy || !t.IsSwitch(topo.NodeID(n))
			for k := 0; k < K; k++ {
				var arrivals []lp.Term
				for _, lid := range t.In(topo.NodeID(n)) {
					l := int(lid)
					if f := fAt(ci, l, k-in.delta[l]-in.kappa[l]); f != noVar {
						arrivals = append(arrivals, lp.Term{Var: lp.VarID(f), Coeff: -1})
					}
				}
				if copyOK {
					// Per outgoing link: F_out <= sum(arrivals).
					for _, lid := range outLinks {
						f := fAt(ci, int(lid), k)
						if f == noVar {
							continue
						}
						if len(arrivals) == 0 {
							p.SetBounds(lp.VarID(f), 0, 0)
							continue
						}
						row := append([]lp.Term{{Var: lp.VarID(f), Coeff: 1}}, arrivals...)
						p.AddRow(row, lp.LE, 0)
					}
				} else {
					// Legacy switch: total out <= total in.
					var row []lp.Term
					for _, lid := range outLinks {
						if f := fAt(ci, int(lid), k); f != noVar {
							row = append(row, lp.Term{Var: lp.VarID(f), Coeff: 1})
						}
					}
					if len(row) == 0 {
						continue
					}
					if len(arrivals) == 0 {
						for _, tm := range row {
							p.SetBounds(tm.Var, 0, 0)
						}
						continue
					}
					p.AddRow(append(row, arrivals...), lp.LE, 0)
				}
			}
		}
	}

	// Capacity (windowed when κ > 1, Appendix F), with per-epoch
	// variable-bandwidth scaling (§5).
	m.capRow = make([][]int32, nL)
	for l := 0; l < nL; l++ {
		m.capRow[l] = make([]int32, K)
		kap := in.kappa[l]
		for k := 0; k < K; k++ {
			m.capRow[l][k] = noVar
			var row []lp.Term
			budget := 0.0
			for kk := k - kap + 1; kk <= k; kk++ {
				// The window budget is κ·T·τ even when truncated at the
				// horizon start; clamp the bandwidth-scale epoch.
				se := kk
				if se < 0 {
					se = 0
				}
				budget += in.capChunks[l] * in.opt.capScale(topo.LinkID(l), se)
				if kk < 0 {
					continue
				}
				for ci := range in.comms {
					if f := fAt(ci, l, kk); f != noVar {
						row = append(row, lp.Term{Var: lp.VarID(f), Coeff: 1})
					}
				}
			}
			if len(row) == 0 {
				continue
			}
			m.capRow[l][k] = int32(p.AddRow(row, lp.LE, budget))
		}
	}

	// Buffer size limit (Appendix B): sum of buffered chunks per node and
	// epoch, counting the source's own resident chunks as constants.
	if in.opt.BufferLimitChunks > 0 {
		for n := 0; n < nN; n++ {
			if t.IsSwitch(topo.NodeID(n)) {
				continue
			}
			resident := 0
			for _, cm := range in.comms {
				if cm.src == n {
					resident++
				}
			}
			for k := 1; k <= K; k++ {
				var row []lp.Term
				for ci := range in.comms {
					if b := m.bvar[ci][n][k]; b != noVar {
						row = append(row, lp.Term{Var: lp.VarID(b), Coeff: 1})
					}
				}
				if len(row) == 0 {
					continue
				}
				rhs := float64(in.opt.BufferLimitChunks - resident)
				if rhs < 0 {
					return nil, fmt.Errorf("core: buffer limit %d below node %d's own %d chunks",
						in.opt.BufferLimitChunks, n, resident)
				}
				p.AddRow(row, lp.LE, rhs)
			}
		}
	}

	return m, nil
}

// extractSchedule converts a MILP point into a pruned, validated schedule.
func (m *milpModel) extractSchedule(x []float64) (*schedule.Schedule, error) {
	in := m.in
	var sends []schedule.Send
	for ci, cm := range in.comms {
		for l := 0; l < in.topo.NumLinks(); l++ {
			for k := 0; k < in.K; k++ {
				v := m.fvar[ci][l][k]
				if v == noVar || x[v] < 0.5 {
					continue
				}
				sends = append(sends, schedule.Send{
					Src: cm.src, Chunk: cm.chunk,
					Link: topo.LinkID(l), Epoch: k, Fraction: 1,
				})
			}
		}
	}
	s := &schedule.Schedule{
		Topo:           in.topo,
		Demand:         in.demand,
		Tau:            in.tau,
		NumEpochs:      in.K,
		Sends:          sends,
		AllowCopy:      true,
		EpochsPerChunk: in.epochsPerChunk(),
	}
	s = s.Prune()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: MILP produced invalid schedule: %w", err)
	}
	return s, nil
}

// SolveMILP solves the general formulation (§3.1): optimal collective
// schedules with copy and store-and-forward support.
func SolveMILP(t *topo.Topology, d *collective.Demand, opt Options) (*Result, error) {
	return SolveMILPContext(context.Background(), t, d, opt)
}

// SolveMILPContext is SolveMILP under a context: the branch-and-bound
// node loop, its worker pool, and every node's LP relaxation watch ctx,
// so cancellation interrupts the search promptly. When the search is
// cancelled with an incumbent in hand the partial result is returned
// alongside an error wrapping context.Cause(ctx); Options.TimeLimit is
// layered onto ctx as a derived deadline and keeps its historical
// budget semantics (incumbent returned as a feasible result, no error).
func SolveMILPContext(ctx context.Context, t *topo.Topology, d *collective.Demand, opt Options) (*Result, error) {
	ctx, cancel := withTimeLimit(ctx, opt.TimeLimit)
	defer cancel()
	res, _, _, err := solveMILP(ctx, t, d, opt, nil)
	return res, err
}

// solveMILP is SolveMILP plus warm-start plumbing: hint seeds the root
// relaxation's basis, and the returned model/root basis let
// MinimizeMakespan's re-solves chain each horizon's basis into the next.
// The caller has already layered Options.TimeLimit onto ctx.
func solveMILP(ctx context.Context, t *topo.Topology, d *collective.Demand, opt Options, hint *basisHint) (*Result, *milpModel, *lp.Basis, error) {
	start := time.Now()
	in := newInstance(t, d, opt)
	if len(in.comms) == 0 {
		return emptyResult(in, start), nil, nil, nil
	}

	// The greedy warm start assumes buffered GPUs and copy-capable
	// switches; skip it for the other models.
	warmStart := !opt.NoIncumbentHeuristic && !opt.NoBuffers &&
		opt.BufferLimitChunks == 0 && opt.SwitchMode == SwitchCopy
	var inc []schedule.Send
	if warmStart {
		inc = greedyIncumbent(in)
		// When the horizon was auto-estimated, tighten it to the greedy
		// schedule's finish: the optimum finishes no later, so variables
		// beyond it are dead weight.
		if inc != nil && opt.Epochs == 0 {
			if tight := sendsFinishEpoch(in, inc) + 1; tight < in.K {
				opt2 := opt
				opt2.Epochs = tight
				in2 := newInstance(t, d, opt2)
				if inc2 := greedyIncumbent(in2); inc2 != nil {
					in, inc = in2, inc2
				}
			}
		}
	}

	m, err := buildMILP(in)
	if err != nil {
		return nil, nil, nil, err
	}

	opt.Progress.emit(Progress{Solver: "milp", Phase: "model"})
	mopt := milp.Options{
		Context:       ctx,
		GapLimit:      opt.GapLimit,
		Workers:       opt.Workers,
		RootWarmStart: hint.basisFor(m.p),
		Progress:      opt.Progress.milpHook("milp", 0),
	}
	if mopt.RootWarmStart != nil {
		// Horizon re-solves reoptimize the root relaxation with the dual
		// simplex (safe: it falls back to the primal when the transferred
		// basis is not dual feasible).
		mopt.LP.Method = lp.MethodDual
	}
	var incX []float64
	if inc != nil {
		if incX = m.pointFromSends(inc); incX != nil {
			mopt.IncumbentX = incX
		}
	}
	if mopt.RootWarmStart == nil && opt.Crash == CrashAll {
		// Cold root relaxation: crash-start from the greedy incumbent's
		// flow support instead of the all-slack basis.
		mopt.LP.Crash = crashBasisMILP(m, incX)
	}

	msol := milp.Solve(&milp.Problem{LP: m.p, Integer: m.ints}, mopt)
	switch msol.Status {
	case milp.StatusOptimal, milp.StatusFeasible:
	case milp.StatusInfeasible:
		return nil, nil, nil, fmt.Errorf("core: infeasible with K=%d epochs (tau=%g); increase Epochs", in.K, in.tau)
	default:
		if ierr := interrupted(ctx); ierr != nil {
			return nil, nil, nil, fmt.Errorf("core: MILP solve interrupted before any incumbent (%v after %d nodes): %w",
				msol.Status, msol.Nodes, ierr)
		}
		if budgetExpired(ctx) {
			return nil, nil, nil, fmt.Errorf("core: MILP hit its time limit before any incumbent (%v after %d nodes); raise TimeLimit",
				msol.Status, msol.Nodes)
		}
		return nil, nil, nil, fmt.Errorf("core: MILP solve failed: %v", msol.Status)
	}

	s, err := m.extractSchedule(msol.X)
	if err != nil {
		return nil, nil, nil, err
	}
	res := &Result{
		Schedule:         s,
		Objective:        msol.Objective,
		Gap:              msol.Gap,
		Optimal:          msol.Status == milp.StatusOptimal,
		SolveTime:        time.Since(start),
		Epochs:           in.K,
		Tau:              in.tau,
		Nodes:            msol.Nodes,
		RootIterations:   msol.RootIterations,
		NodeIterations:   msol.NodeIterations,
		Refactorizations: msol.Refactorizations,
		FTUpdates:        msol.FTUpdates,
		UpdateNnz:        msol.UpdateNnz,
		WarmStarted:      mopt.RootWarmStart != nil,
		CrashStarted:     mopt.LP.Crash != nil,
	}
	basis := msol.RootBasis
	model := m
	if opt.MinimizeMakespan {
		// Shrink the horizon below the current finish until infeasible
		// (the paper's binary search on epochs). Pin tau so quantization
		// stays comparable across horizons, and resume each re-solve from
		// the previous horizon's root basis (matched by variable name).
		// An expired TimeLimit stops the refinement and keeps the last
		// complete schedule; a caller cancellation returns that schedule
		// alongside an error wrapping the cause.
		rootWarm := mopt.RootWarmStart != nil
		rootCrash := mopt.LP.Crash != nil
		cancelled := func() (*Result, *milpModel, *lp.Basis, error) {
			res.WarmStarted = rootWarm
			res.CrashStarted = rootCrash
			return res, model, basis, fmt.Errorf(
				"core: makespan refinement cancelled; returning last complete schedule (finish epoch %d): %w",
				res.Schedule.FinishEpoch(), interrupted(ctx))
		}
		for {
			if interrupted(ctx) != nil {
				return cancelled()
			}
			if budgetExpired(ctx) {
				break // TimeLimit: keep the result, no error
			}
			fe := res.Schedule.FinishEpoch()
			if fe < 1 {
				break
			}
			opt2 := opt
			opt2.MinimizeMakespan = false
			opt2.Epochs = fe // forces completion by epoch fe-1
			opt2.Tau = in.tau
			var h *basisHint
			if model != nil {
				h = hintFromSolve(model.p, basis)
			}
			tighter, m2, b2, err := solveMILP(ctx, t, d, opt2, h)
			if err != nil {
				if interrupted(ctx) != nil {
					return cancelled()
				}
				break // infeasible: current finish is minimal
			}
			if tighter.Schedule.FinishEpoch() >= fe {
				break
			}
			tighter.SolveTime = time.Since(start)
			res, model, basis = tighter, m2, b2
		}
		// WarmStarted/CrashStarted report how THIS REQUEST's root solve
		// started; the re-solves above are always internally warm-started
		// and must not overwrite that.
		res.WarmStarted = rootWarm
		res.CrashStarted = rootCrash
	}
	if !res.Optimal {
		// A cancelled search that still produced an incumbent returns it
		// as a partial result alongside the cancellation cause; a plain
		// TimeLimit expiry keeps the historical no-error budget semantics.
		if ierr := interrupted(ctx); ierr != nil {
			return res, model, basis, fmt.Errorf("core: MILP solve cancelled with incumbent in hand (gap %.1f%%): %w",
				100*res.Gap, ierr)
		}
	}
	return res, model, basis, nil
}

// pointFromSends converts a feasible whole-chunk send list into a variable
// assignment satisfying the model (F set, B propagated). Returns nil if
// any send falls outside the model's variable windows.
func (m *milpModel) pointFromSends(sends []schedule.Send) []float64 {
	in := m.in
	x := make([]float64, m.p.NumVars())
	commIdx := map[[2]int]int{}
	for ci, cm := range in.comms {
		commIdx[[2]int{cm.src, cm.chunk}] = ci
	}
	for _, snd := range sends {
		ci, ok := commIdx[[2]int{snd.Src, snd.Chunk}]
		if !ok {
			return nil
		}
		v := m.fvar[ci][snd.Link][snd.Epoch]
		if v == noVar {
			return nil
		}
		x[v] = 1
	}
	// Propagate buffers: B_k = B_{k-1} + arrivals(k).
	t := in.topo
	for ci, cm := range in.comms {
		for n := 0; n < t.NumNodes(); n++ {
			if in.bufferless(ci, n) || n == cm.src {
				continue
			}
			prev := 0.0
			for k := 1; k <= in.K; k++ {
				cur := prev
				for _, lid := range t.In(topo.NodeID(n)) {
					l := int(lid)
					kk := k - in.delta[l] - in.kappa[l]
					if kk < 0 || kk >= in.K {
						continue
					}
					if f := m.fvar[ci][l][kk]; f != noVar {
						cur += x[f]
					}
				}
				if cur > 1 {
					return nil // duplicate arrival; not model-feasible
				}
				if b := m.bvar[ci][n][k]; b != noVar {
					x[b] = cur
				} else if cur > 0 {
					return nil
				}
				prev = cur
			}
			// Completion check for destinations.
			for _, dd := range cm.dests {
				if dd == n && prev < 1 {
					return nil
				}
			}
		}
	}
	return x
}

// crashBasisMILP builds a crash basis for the general form's root
// relaxation from a model-feasible incumbent point (pointFromSends
// output): every variable the incumbent activates — flows sent, buffers
// held — enters the basis, bounded by the row count. Like the LP-form
// crash this is only a structural phase-1 seed: dependent columns are
// demoted by the solver's install/repair pass. Returns nil when there is
// no incumbent point.
func crashBasisMILP(m *milpModel, x []float64) *lp.Basis {
	if m == nil || x == nil {
		return nil
	}
	p := m.p
	rows := p.NumRows()
	b := &lp.Basis{
		Vars: make([]lp.BasisStatus, p.NumVars()),
		Rows: make([]lp.BasisStatus, rows),
	}
	marked := 0
	for j, v := range x {
		if v > 0 && marked < rows {
			b.Vars[j] = lp.BasisBasic
			marked++
		}
	}
	if marked == 0 {
		return nil
	}
	return b
}

func emptyResult(in *instance, start time.Time) *Result {
	return &Result{
		Schedule: &schedule.Schedule{
			Topo: in.topo, Demand: in.demand, Tau: in.tau,
			NumEpochs: in.K, AllowCopy: true,
			EpochsPerChunk: in.epochsPerChunk(),
		},
		Optimal:   true,
		SolveTime: time.Since(start),
		Epochs:    in.K,
		Tau:       in.tau,
	}
}

// DebugMILPStats reports problem dimensions and root-relaxation effort for
// one instance; used for performance diagnosis during development.
func DebugMILPStats(t *topo.Topology, d *collective.Demand, opt Options) string {
	in := newInstance(t, d, opt)
	inc := greedyIncumbent(in)
	gf := -1
	if inc != nil {
		gf = sendsFinishEpoch(in, inc)
		opt2 := opt
		opt2.Epochs = gf + 1
		if in2 := newInstance(t, d, opt2); greedyIncumbent(in2) != nil {
			in = in2
		}
	}
	m, err := buildMILP(in)
	if err != nil {
		return fmt.Sprintf("build error: %v", err)
	}
	start := time.Now()
	sol, _ := lp.Solve(m.p, lp.Options{})
	return fmt.Sprintf("K=%d greedyFinish=%d vars=%d rows=%d ints=%d rootLP=%v status=%v iters=%d",
		in.K, gf, m.p.NumVars(), m.p.NumRows(), len(m.ints),
		time.Since(start).Round(time.Millisecond), sol.Status, sol.Iterations)
}
