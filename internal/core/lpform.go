package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"teccl/internal/collective"
	"teccl/internal/lp"
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// lpModel holds the per-source variable indexing of the LP form (§4.1):
// copy support removed, chunk indexes dropped, everything continuous.
type lpModel struct {
	in      *instance
	p       *lp.Problem
	sources []int
	// dem[si][d]: chunks destination d wants from source si.
	dem [][]float64
	// earliest[si][n]: epoch windows per source.
	earliest [][]int
	// fvar[si][l][k], bvar[si][n][k] (k in 0..K), rvar[si][d][k].
	fvar [][][]int32
	bvar [][][]int32
	rvar [][][]int32
	// Row indexes the replanning layer edits in place (see replan.go):
	// capRow[l][k] is the windowed capacity row of link l ending at epoch
	// k, destRow[si][dst] the destination-total row of the pair; -1 when
	// the row was not emitted. initRow[si] is source si's supply row and
	// consRow[si][n][k] the conservation row of (source si, node n, epoch
	// k) — the rows the demand-append replan path (lpappend.go) wires new
	// columns into.
	capRow  [][]int32
	destRow [][]int32
	initRow []int32
	consRow [][][]int32
}

// landEpoch is the epoch by whose end a send at epoch e on link l is
// resident at the destination.
func (in *instance) landEpoch(l, e int) int { return e + in.delta[l] + in.kappa[l] - 1 }

// lpIndex is the commodity indexing the LP form (§4.1) is stated over:
// the demanded sources, their per-destination chunk counts, and each
// source's reachability windows. It is shared between the monolithic
// model (buildLP) and the rolling-horizon window builder (window.go) so
// both slice the exact same commodity space.
type lpIndex struct {
	sources []int
	// dem[si][d]: chunks destination d wants from source si.
	dem [][]float64
	// earliest[si][n]: epoch windows per source.
	earliest [][]int
}

func newLPIndex(in *instance) *lpIndex {
	t := in.topo
	d := in.demand
	nN := t.NumNodes()
	ix := &lpIndex{}

	// Sources and per-destination demand counts.
	for s := 0; s < nN; s++ {
		var row []float64
		total := 0.0
		for dst := 0; dst < nN; dst++ {
			cnt := float64(len(d.DestWantsFromSource(s, dst)))
			if row == nil && cnt > 0 {
				row = make([]float64, nN)
			}
			if cnt > 0 {
				row[dst] = cnt
				total += cnt
			}
		}
		if total > 0 {
			ix.sources = append(ix.sources, s)
			ix.dem = append(ix.dem, row)
		}
	}

	// Reachability windows per source.
	hop := in.hopDistances()
	ix.earliest = make([][]int, len(ix.sources))
	for si, s := range ix.sources {
		e := make([]int, nN)
		for n := range e {
			if math.IsInf(hop[s][n], 1) {
				e[n] = in.K + 1
			} else {
				e[n] = int(hop[s][n])
			}
		}
		ix.earliest[si] = e
	}
	return ix
}

// buffered reports whether node n holds inventory for source si's
// commodity: switches never do, the source always does, and under
// NoBuffers only demanders do.
func (ix *lpIndex) buffered(in *instance, si, n int) bool {
	if in.topo.IsSwitch(topo.NodeID(n)) {
		return false
	}
	if n == ix.sources[si] {
		return true
	}
	if in.opt.NoBuffers && ix.dem[si][n] == 0 {
		return false
	}
	return true
}

// lpTailWeights returns the objective's time-discounted tail weights for
// horizon K: the paper's objective sums cumulative reads weighted
// 1/(k+1), so consuming at epoch k earns tail[k] = sum_{j>=k} 1/(j+1).
func lpTailWeights(K int) []float64 {
	tail := make([]float64, K+1)
	for k := K - 1; k >= 0; k-- {
		tail[k] = tail[k+1] + 1/float64(k+1)
	}
	return tail
}

// buildLP constructs the linear program of §4.1 with the Appendix A
// initialization and termination handling.
func buildLP(in *instance) *lpModel {
	t := in.topo
	K := in.K
	nL := t.NumLinks()
	nN := t.NumNodes()

	m := &lpModel{in: in, p: lp.NewProblem(lp.Maximize)}
	p := m.p

	ix := newLPIndex(in)
	m.sources, m.dem, m.earliest = ix.sources, ix.dem, ix.earliest

	isBuffered := func(si, n int) bool { return ix.buffered(in, si, n) }

	// Flow variables.
	m.fvar = make([][][]int32, len(m.sources))
	for si, s := range m.sources {
		m.fvar[si] = make([][]int32, nL)
		for l := 0; l < nL; l++ {
			col := make([]int32, K)
			for k := range col {
				col[k] = noVar
			}
			m.fvar[si][l] = col
			if t.LinkDown(topo.LinkID(l)) {
				continue
			}
			lk := t.Link(topo.LinkID(l))
			for k := 0; k < K; k++ {
				if m.earliest[si][lk.Src] > k {
					continue
				}
				if in.landEpoch(l, k) > K-1 {
					continue
				}
				if int(lk.Dst) == s {
					continue
				}
				col[k] = int32(p.AddVar(fmt.Sprintf("f[s%d,l%d,k%d]", s, l, k), 0, lp.Inf, 0))
			}
		}
	}

	// Buffer variables (inventory semantics: what remains to forward).
	m.bvar = make([][][]int32, len(m.sources))
	for si, s := range m.sources {
		m.bvar[si] = make([][]int32, nN)
		for n := 0; n < nN; n++ {
			col := make([]int32, K+1)
			for k := range col {
				col[k] = noVar
			}
			m.bvar[si][n] = col
			if !isBuffered(si, n) {
				continue
			}
			lo := m.earliest[si][n]
			if n == s {
				lo = 0
			}
			for k := lo; k <= K; k++ {
				col[k] = int32(p.AddVar(fmt.Sprintf("b[s%d,n%d,k%d]", s, n, k), 0, lp.Inf, 0))
			}
		}
	}

	// Read variables with time-discounted rewards (see lpTailWeights).
	tail := lpTailWeights(K)
	m.rvar = make([][][]int32, len(m.sources))
	for si, s := range m.sources {
		m.rvar[si] = make([][]int32, nN)
		for dst := 0; dst < nN; dst++ {
			col := make([]int32, K)
			for k := range col {
				col[k] = noVar
			}
			m.rvar[si][dst] = col
			if m.dem[si][dst] == 0 {
				continue
			}
			// Consumption may happen the epoch an arrival lands, one
			// epoch before the chunk becomes forwardable.
			lo := m.earliest[si][dst] - 1
			if lo < 0 {
				lo = 0
			}
			prio := 1.0
			if in.opt.Priority != nil {
				// The LP aggregates chunks per (source, destination); use
				// the first demanded chunk's priority for the pair.
				if cs := in.demand.DestWantsFromSource(s, dst); len(cs) > 0 {
					prio = in.opt.priorityOf(s, cs[0], dst)
				}
			}
			for k := lo; k < K; k++ {
				col[k] = int32(p.AddVar(fmt.Sprintf("r[s%d,d%d,k%d]", s, dst, k), 0, m.dem[si][dst], prio*tail[k]))
			}
		}
	}

	fAt := func(si, l, k int) int32 {
		if k < 0 || k >= K {
			return noVar
		}
		return m.fvar[si][l][k]
	}

	// Initialization (Appendix A): the source's inventory plus its
	// epoch-0 sends equal its total supply.
	m.initRow = make([]int32, len(m.sources))
	for si, s := range m.sources {
		supply := 0.0
		for dst := 0; dst < nN; dst++ {
			supply += m.dem[si][dst]
		}
		terms := []lp.Term{{Var: lp.VarID(m.bvar[si][s][0]), Coeff: 1}}
		for _, lid := range t.Out(topo.NodeID(s)) {
			if f := m.fvar[si][int(lid)][0]; f != noVar {
				terms = append(terms, lp.Term{Var: lp.VarID(f), Coeff: 1})
			}
		}
		m.initRow[si] = int32(p.AddRow(terms, lp.EQ, supply))
	}

	// Conservation for buffered nodes:
	//   B_k + in(k) = B_{k+1} + R_k + out(k+1)
	// where in(k) are sends landing during epoch k (sent at k-δ-κ+1) and
	// out(k+1) are sends departing at epoch k+1.
	m.consRow = make([][][]int32, len(m.sources))
	for si := range m.sources {
		m.consRow[si] = make([][]int32, nN)
		for n := 0; n < nN; n++ {
			col := make([]int32, K)
			for k := range col {
				col[k] = noVar
			}
			m.consRow[si][n] = col
			if !isBuffered(si, n) {
				continue
			}
			for k := 0; k < K; k++ {
				var terms []lp.Term
				if b := m.bvar[si][n][k]; b != noVar {
					terms = append(terms, lp.Term{Var: lp.VarID(b), Coeff: 1})
				}
				for _, lid := range t.In(topo.NodeID(n)) {
					l := int(lid)
					if f := fAt(si, l, k-in.delta[l]-in.kappa[l]+1); f != noVar {
						terms = append(terms, lp.Term{Var: lp.VarID(f), Coeff: 1})
					}
				}
				if b := m.bvar[si][n][k+1]; b != noVar {
					terms = append(terms, lp.Term{Var: lp.VarID(b), Coeff: -1})
				}
				if r := m.rvar[si][n][k]; r != noVar {
					terms = append(terms, lp.Term{Var: lp.VarID(r), Coeff: -1})
				}
				if k+1 < K {
					for _, lid := range t.Out(topo.NodeID(n)) {
						if f := m.fvar[si][int(lid)][k+1]; f != noVar {
							terms = append(terms, lp.Term{Var: lp.VarID(f), Coeff: -1})
						}
					}
				}
				if len(terms) == 0 {
					continue
				}
				col[k] = int32(p.AddRow(terms, lp.EQ, 0))
			}
		}
	}

	// Bufferless nodes (switches and, under NoBuffers, pass-through
	// GPUs): outgoing flow at k is limited by arrivals forwardable
	// exactly at k (landed during k-1).
	for si := range m.sources {
		for n := 0; n < nN; n++ {
			if isBuffered(si, n) {
				continue
			}
			for k := 0; k < K; k++ {
				var out []lp.Term
				for _, lid := range t.Out(topo.NodeID(n)) {
					if f := m.fvar[si][int(lid)][k]; f != noVar {
						out = append(out, lp.Term{Var: lp.VarID(f), Coeff: 1})
					}
				}
				var inb []lp.Term
				for _, lid := range t.In(topo.NodeID(n)) {
					l := int(lid)
					if f := fAt(si, l, k-in.delta[l]-in.kappa[l]); f != noVar {
						inb = append(inb, lp.Term{Var: lp.VarID(f), Coeff: -1})
					}
				}
				// Demanders always keep buffers for their own demand, so
				// bufferless nodes here never consume — only relay.
				if len(out) == 0 {
					continue
				}
				if len(inb) == 0 {
					for _, tm := range out {
						p.SetBounds(tm.Var, 0, 0)
					}
					continue
				}
				p.AddRow(append(out, inb...), lp.LE, 0)
			}
		}
	}

	// Destination totals: each demander consumes exactly its demand.
	m.destRow = make([][]int32, len(m.sources))
	for si := range m.sources {
		m.destRow[si] = make([]int32, nN)
		for dst := 0; dst < nN; dst++ {
			m.destRow[si][dst] = noVar
			if m.dem[si][dst] == 0 {
				continue
			}
			var terms []lp.Term
			for k := 0; k < K; k++ {
				if r := m.rvar[si][dst][k]; r != noVar {
					terms = append(terms, lp.Term{Var: lp.VarID(r), Coeff: 1})
				}
			}
			m.destRow[si][dst] = int32(p.AddRow(terms, lp.EQ, m.dem[si][dst]))
		}
	}

	// Capacity, windowed per Appendix F, with per-epoch variable
	// bandwidth (§5).
	m.capRow = make([][]int32, nL)
	for l := 0; l < nL; l++ {
		m.capRow[l] = make([]int32, K)
		kap := in.kappa[l]
		for k := 0; k < K; k++ {
			m.capRow[l][k] = noVar
			var row []lp.Term
			budget := 0.0
			for kk := k - kap + 1; kk <= k; kk++ {
				// The window budget is κ·T·τ even when truncated at the
				// horizon start; clamp the bandwidth-scale epoch.
				se := kk
				if se < 0 {
					se = 0
				}
				budget += in.capChunks[l] * in.opt.capScale(topo.LinkID(l), se)
				if kk < 0 {
					continue
				}
				for si := range m.sources {
					if f := fAt(si, l, kk); f != noVar {
						row = append(row, lp.Term{Var: lp.VarID(f), Coeff: 1})
					}
				}
			}
			if len(row) == 0 {
				continue
			}
			m.capRow[l][k] = int32(p.AddRow(row, lp.LE, budget))
		}
	}

	// Buffer limits (Appendix B): the LP only needs an upper bound on
	// buffered inventory, excluding the source's own supply.
	if in.opt.BufferLimitChunks > 0 {
		for n := 0; n < nN; n++ {
			if t.IsSwitch(topo.NodeID(n)) {
				continue
			}
			for k := 1; k <= K; k++ {
				var row []lp.Term
				for si, s := range m.sources {
					if s == n {
						continue
					}
					if b := m.bvar[si][n][k]; b != noVar {
						row = append(row, lp.Term{Var: lp.VarID(b), Coeff: 1})
					}
				}
				if len(row) == 0 {
					continue
				}
				p.AddRow(row, lp.LE, float64(in.opt.BufferLimitChunks))
			}
		}
	}

	return m
}

// SolveLP solves the linear-program form (§4.1): optimal for demands that
// do not benefit from copy (ALLTOALL-like), and far more scalable than
// the MILP. The resulting rate allocation is decomposed into per-chunk
// fractional paths to produce an executable schedule.
func SolveLP(t *topo.Topology, d *collective.Demand, opt Options) (*Result, error) {
	return SolveLPContext(context.Background(), t, d, opt)
}

// SolveLPContext is SolveLP under a context: the simplex checks ctx
// between iterations, so cancellation (or a caller deadline) interrupts
// the solve promptly with an error wrapping context.Cause(ctx).
// Options.TimeLimit is layered onto ctx as a derived deadline covering
// model build, the solve, and any MinimizeMakespan re-solves together.
func SolveLPContext(ctx context.Context, t *topo.Topology, d *collective.Demand, opt Options) (*Result, error) {
	ctx, cancel := withTimeLimit(ctx, opt.TimeLimit)
	defer cancel()
	res, _, _, err := solveLP(ctx, t, d, opt, nil)
	return res, err
}

// lpPrep is a built-but-unsolved LP-form instance: the per-destination
// expanded demand, the preprocessed context (with an auto horizon already
// tightened by the greedy bound), the constructed model, and the greedy
// plan's sends (crash-basis seed; nil when the greedy did not run or
// failed). m is nil when the demand has no commodities.
type lpPrep struct {
	d      *collective.Demand
	in     *instance
	m      *lpModel
	greedy []schedule.Send
}

// prepLP performs everything of an LP solve that precedes the simplex:
// multicast expansion, instance preprocessing, greedy horizon tightening,
// and model construction. Split out so the batch layer can fingerprint
// the built model (and reuse an identical point's solution) before
// paying for a solve.
func prepLP(t *topo.Topology, d *collective.Demand, opt Options) *lpPrep {
	// Without copy, a chunk wanted by several destinations is physically
	// several transfers; give each its own commodity so schedules stay
	// expressible (the result's Schedule.Demand is the expanded form).
	if d.HasMulticast() {
		d = d.ExpandPerDestination()
	}
	in := newInstance(t, d, opt)
	if len(in.comms) == 0 {
		return &lpPrep{d: d, in: in}
	}
	// Tighten an auto-estimated horizon with a quick greedy upper bound:
	// the LP optimum finishes no later than the greedy schedule. The
	// greedy plan's sends are kept as the crash-basis seed.
	var greedy []schedule.Send
	if opt.Epochs == 0 {
		bound, sends := lpGreedyBound(in)
		greedy = sends
		if bound >= 0 && bound+1 < in.K {
			opt2 := opt
			opt2.Epochs = bound + 1
			in = newInstance(t, d, opt2)
		}
	}
	return &lpPrep{d: d, in: in, m: buildLP(in), greedy: greedy}
}

// solveLP is SolveLP plus warm-start plumbing: hint seeds the simplex
// basis, and the returned model/basis let MinimizeMakespan's re-solves
// chain each horizon's basis into the next. The caller has already
// layered Options.TimeLimit onto ctx.
func solveLP(ctx context.Context, t *topo.Topology, d *collective.Demand, opt Options, hint *basisHint) (*Result, *lpModel, *lp.Basis, error) {
	// The clock starts before model construction: SolveTime and the
	// TimeLimit deadline cover the build, as they always have.
	start := time.Now()
	return solvePrepped(ctx, t, prepLP(t, d, opt), opt, hint, start)
}

// solvePrepped runs the simplex (and the MinimizeMakespan refinement) on
// an already-built LP-form instance.
func solvePrepped(ctx context.Context, t *topo.Topology, pr *lpPrep, opt Options, hint *basisHint, start time.Time) (*Result, *lpModel, *lp.Basis, error) {
	d, in, m := pr.d, pr.in, pr.m
	if m == nil {
		r := emptyResult(in, start)
		r.Schedule.AllowCopy = false
		return r, nil, nil, nil
	}
	lpOpt := lp.Options{Context: ctx}
	lpOpt.WarmStart = hint.basisFor(m.p)
	if lpOpt.WarmStart != nil {
		// Re-solves (shrunken MinimizeMakespan horizons) reoptimize with
		// the dual simplex: the transferred basis is near dual feasible
		// under the unchanged cost structure, and the dual falls back to
		// the primal on its own when it is not.
		lpOpt.Method = lp.MethodDual
	} else if opt.Crash != CrashOff {
		// Cold start: seed phase 1 from the greedy schedule's flow
		// support instead of the all-slack basis.
		lpOpt.Crash = crashBasisLP(m, pr.greedy)
	}
	opt.Progress.emit(lpSample("model", 0, 0, false))
	sol, err := lp.Solve(m.p, lpOpt)
	if err != nil {
		return nil, nil, nil, err
	}
	switch sol.Status {
	case lp.StatusOptimal:
	case lp.StatusInfeasible:
		return nil, nil, nil, fmt.Errorf("core: LP infeasible with K=%d epochs (tau=%g); increase Epochs", in.K, in.tau)
	case lp.StatusIterLimit:
		if ierr := interrupted(ctx); ierr != nil {
			return nil, nil, nil, fmt.Errorf("core: LP solve interrupted after %d iterations: %w", sol.Iterations, ierr)
		}
		return nil, nil, nil, fmt.Errorf("core: LP hit its time/iteration budget with K=%d (tau=%g); raise TimeLimit or EpochMultiplier", in.K, in.tau)
	default:
		return nil, nil, nil, fmt.Errorf("core: LP solve failed: %v", sol.Status)
	}
	opt.Progress.emit(lpSample("simplex", sol.Iterations, sol.Objective, true))

	s, err := m.decompose(sol.X)
	if err != nil {
		return nil, nil, nil, err
	}
	res := &Result{
		Schedule:         s,
		Objective:        sol.Objective,
		Optimal:          true,
		SolveTime:        time.Since(start),
		Epochs:           in.K,
		Tau:              in.tau,
		RootIterations:   sol.Iterations,
		Refactorizations: sol.Refactorizations,
		FTUpdates:        sol.FTUpdates,
		UpdateNnz:        sol.UpdateNnz,
		WarmStarted:      lpOpt.WarmStart != nil,
		CrashStarted:     lpOpt.Crash != nil,
	}
	basis := sol.Basis
	model := m
	if opt.MinimizeMakespan {
		// Each shrunken-horizon re-solve resumes from the previous
		// horizon's optimal basis (matched by variable name, since the
		// variable set changes with K). An expired TimeLimit stops the
		// refinement and keeps the last complete schedule (valid, just
		// not proven makespan-minimal); a caller cancellation returns
		// that schedule alongside an error wrapping the cause, honoring
		// the cancellation contract.
		rootWarm := lpOpt.WarmStart != nil
		rootCrash := lpOpt.Crash != nil
		cancelled := func() (*Result, *lpModel, *lp.Basis, error) {
			res.WarmStarted = rootWarm
			res.CrashStarted = rootCrash
			return res, model, basis, fmt.Errorf(
				"core: makespan refinement cancelled; returning last complete schedule (finish epoch %d): %w",
				res.Schedule.FinishEpoch(), interrupted(ctx))
		}
		for {
			if interrupted(ctx) != nil {
				return cancelled()
			}
			if budgetExpired(ctx) {
				break // TimeLimit: keep the result, no error
			}
			fe := res.Schedule.FinishEpoch()
			if fe < 1 {
				break
			}
			opt2 := opt
			opt2.MinimizeMakespan = false
			opt2.Epochs = fe
			opt2.Tau = in.tau
			var h *basisHint
			if model != nil {
				h = hintFromSolve(model.p, basis)
			}
			tighter, m2, b2, err := solveLP(ctx, t, d, opt2, h)
			if err != nil {
				if interrupted(ctx) != nil {
					return cancelled()
				}
				break // infeasible at the tighter horizon: minimal
			}
			if tighter.Schedule.FinishEpoch() >= fe {
				break
			}
			tighter.SolveTime = time.Since(start)
			res, model, basis = tighter, m2, b2
			opt.Progress.emit(lpSample("makespan", tighter.RootIterations, tighter.Objective, true))
		}
		// WarmStarted/CrashStarted report how THIS REQUEST's root solve
		// started; the re-solves above are always internally warm-started
		// and must not overwrite that.
		res.WarmStarted = rootWarm
		res.CrashStarted = rootCrash
	}
	return res, model, basis, nil
}

const flowTol = 1e-7

// decompose peels the LP's rate allocation into per-chunk fractional
// paths — the DFS-like translation from rates to chunk schedules that
// §4.1 describes.
func (m *lpModel) decompose(x []float64) (*schedule.Schedule, error) {
	in := m.in
	t := in.topo
	K := in.K

	// Residual flows and per-pair read rates, densified from the solution
	// vector; the stitched rolling-horizon path hands peelSchedule the
	// same arrays accumulated across windows.
	flows := make([][][]float64, len(m.sources))
	reads := make([][][]float64, len(m.sources))
	for si := range m.sources {
		flows[si] = make([][]float64, t.NumLinks())
		for l := 0; l < t.NumLinks(); l++ {
			flows[si][l] = make([]float64, K)
			for k := 0; k < K; k++ {
				if f := m.fvar[si][l][k]; f != noVar {
					flows[si][l][k] = x[f]
				}
			}
		}
		reads[si] = make([][]float64, t.NumNodes())
		for dst := 0; dst < t.NumNodes(); dst++ {
			reads[si][dst] = make([]float64, K)
			for k := 0; k < K; k++ {
				if r := m.rvar[si][dst][k]; r != noVar {
					reads[si][dst][k] = x[r]
				}
			}
		}
	}
	return peelSchedule(in, m.sources, m.dem, flows, reads)
}

// peelSchedule translates a rate allocation — per-source link flows and
// destination read rates over absolute epochs — into per-chunk
// fractional paths and a validated schedule. flows is consumed (peeled
// to residuals) in place; reads is left untouched.
func peelSchedule(in *instance, sources []int, dem [][]float64, flows, reads [][][]float64) (*schedule.Schedule, error) {
	t := in.topo
	K := in.K
	res := flows

	type hop struct {
		link  int
		epoch int
	}

	// peel finds a backward path from (dst, consumed-by epoch k) to the
	// source through positive residuals and returns the path (forward
	// order) and its bottleneck fraction.
	var peel func(si, node, landBy int, exact bool, want float64) ([]hop, float64)
	peel = func(si, node, landBy int, exact bool, want float64) ([]hop, float64) {
		s := sources[si]
		if node == s {
			return []hop{}, want
		}
		// Candidate incoming sends, preferring the latest landing.
		type cand struct {
			l, e, land int
		}
		var best *cand
		for _, lid := range t.In(topo.NodeID(node)) {
			l := int(lid)
			for e := K - 1; e >= 0; e-- {
				if res[si][l][e] <= flowTol {
					continue
				}
				land := in.landEpoch(l, e)
				if exact {
					if land != landBy {
						continue
					}
				} else if land > landBy {
					continue
				}
				if best == nil || land > best.land {
					best = &cand{l, e, land}
				}
				break // epochs scanned descending; first hit is latest
			}
		}
		if best == nil {
			return nil, 0
		}
		frac := math.Min(want, res[si][best.l][best.e])
		up := int(t.Link(topo.LinkID(best.l)).Src)
		upExact := t.IsSwitch(topo.NodeID(up)) ||
			(in.opt.NoBuffers && up != s && dem[si][up] == 0)
		// The upstream node must hold the fraction when the send departs:
		// forwardable at best.e means landed by best.e-1.
		path, got := peel(si, up, best.e-1, upExact, frac)
		if path == nil {
			// Temporarily exclude this candidate and retry.
			saved := res[si][best.l][best.e]
			res[si][best.l][best.e] = 0
			path2, got2 := peel(si, node, landBy, exact, want)
			res[si][best.l][best.e] = saved
			return path2, got2
		}
		return append(path, hop{best.l, best.e}), got
	}

	var sends []schedule.Send
	d := in.demand
	for si, s := range sources {
		for dst := 0; dst < d.NumNodes(); dst++ {
			if dem[si][dst] == 0 {
				continue
			}
			chunks := d.DestWantsFromSource(s, dst)
			remaining := make([]float64, len(chunks))
			for i := range remaining {
				remaining[i] = 1
			}
			cursor := 0
			for k := 0; k < K; k++ {
				need := reads[si][dst][k]
				for need > flowTol {
					path, got := peel(si, dst, k, false, need)
					if path == nil || got <= flowTol {
						return nil, fmt.Errorf("core: flow decomposition stuck for source %d dst %d epoch %d (%.6g undelivered)",
							s, dst, k, need)
					}
					for _, h := range path {
						res[si][h.link][h.epoch] -= got
					}
					need -= got
					// Assign the peeled fraction to chunk IDs in order,
					// splitting across chunk boundaries.
					left := got
					for left > flowTol && cursor < len(chunks) {
						take := math.Min(left, remaining[cursor])
						for _, h := range path {
							sends = append(sends, schedule.Send{
								Src: s, Chunk: chunks[cursor],
								Link: topo.LinkID(h.link), Epoch: h.epoch,
								Fraction: take,
							})
						}
						remaining[cursor] -= take
						left -= take
						if remaining[cursor] <= flowTol {
							cursor++
						}
					}
				}
			}
			for i, rem := range remaining {
				if rem > 1e-5 {
					return nil, fmt.Errorf("core: chunk %d of source %d not fully routed to %d (%.6g left)",
						chunks[i], s, dst, rem)
				}
			}
		}
	}

	// Merge identical sends.
	merged := map[[4]int]float64{}
	for _, snd := range sends {
		merged[[4]int{snd.Src, snd.Chunk, int(snd.Link), snd.Epoch}] += snd.Fraction
	}
	out := make([]schedule.Send, 0, len(merged))
	for kf, frac := range merged {
		if frac > 1 {
			frac = 1 // clamp accumulated rounding
		}
		out = append(out, schedule.Send{
			Src: kf[0], Chunk: kf[1], Link: topo.LinkID(kf[2]), Epoch: kf[3], Fraction: frac,
		})
	}

	sch := &schedule.Schedule{
		Topo:           t,
		Demand:         d,
		Tau:            in.tau,
		NumEpochs:      K,
		Sends:          out,
		AllowCopy:      false,
		EpochsPerChunk: in.epochsPerChunk(),
	}
	if err := sch.Validate(); err != nil {
		return nil, fmt.Errorf("core: LP decomposition produced invalid schedule: %w", err)
	}
	return sch, nil
}
