package core

// Cancellation property tests: a cancelled context interrupts all three
// solvers promptly — mid-root-LP, deep in the branch-and-bound tree, and
// between A* rounds — the error wraps context.Canceled, and no solver
// goroutines outlive the call. The suite runs under -race in CI (make
// race), which is what makes the worker-pool cancellation trustworthy.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"teccl/internal/collective"
	"teccl/internal/topo"
)

// testGPUs lists a topology's GPUs as ints.
func testGPUs(t *topo.Topology) []int {
	var out []int
	for _, g := range t.GPUs() {
		out = append(out, int(g))
	}
	return out
}

// hardLPInstance is an NDv2-scale ALLTOALL whose fastest-link LP grinds
// for minutes if left alone — the canonical instance a deadline or
// cancellation must be able to interrupt.
func hardLPInstance() (*topo.Topology, *collective.Demand) {
	t := topo.NDv2Mini(2)
	return t, collective.AllToAll(t.NumNodes(), testGPUs(t), 1, 25e3)
}

// promptly asserts the solve returned well before it could have finished
// on its own. The bound is generous (shared CI runners): promptness here
// means "cut a minutes-long solve to seconds", not a scheduling SLA.
func promptly(t *testing.T, start time.Time) {
	t.Helper()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("solve returned only after %v; cancellation not prompt", elapsed)
	}
}

// noGoroutineLeak asserts the goroutine count settles back to the
// baseline (plus slack for runtime helpers).
func noGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestCancelRootLP(t *testing.T) {
	tt, d := hardLPInstance()
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := SolveLPContext(ctx, tt, d, Options{})
	promptly(t, start)
	if res != nil {
		t.Fatalf("cancelled LP returned a result (the simplex cannot have finished)")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrap of context.Canceled", err)
	}
	noGoroutineLeak(t, before)
}

func TestCancelDeepBranchAndBound(t *testing.T) {
	// DGX1 ALLGATHER with 2 chunks per GPU branches long past the root.
	// Cancel from the progress hook once the tree is a few nodes deep, so
	// the test is deterministic about WHERE the cancellation lands. The
	// greedy incumbent is left on: a cancelled search with an incumbent
	// must return it as a partial result alongside the error.
	tt := topo.DGX1()
	d := collective.AllGather(tt.NumNodes(), testGPUs(tt), 2, 25e3)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := Options{
		Workers: 4,
		Progress: func(p Progress) {
			if p.Solver == "milp" && p.Nodes >= 3 {
				cancel()
			}
		},
	}
	start := time.Now()
	res, err := SolveMILPContext(ctx, tt, d, opt)
	promptly(t, start)
	if err == nil {
		// The search may prove optimality before the third node on a fast
		// machine; that is a complete solve, not a failed cancellation.
		if res == nil || !res.Optimal {
			t.Fatalf("nil error without an optimal result (res=%v)", res)
		}
	} else {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want wrap of context.Canceled", err)
		}
		if res != nil {
			// Partial incumbent: must be a valid schedule with a gap.
			if res.Optimal {
				t.Fatalf("cancelled partial result claims optimality")
			}
			if verr := res.Schedule.Validate(); verr != nil {
				t.Fatalf("partial incumbent schedule invalid: %v", verr)
			}
		}
	}
	noGoroutineLeak(t, before)
}

func TestCancelAStarRoundTwo(t *testing.T) {
	// Internal2(4) ALLGATHER takes multiple A* rounds; cancel exactly when
	// round 2 is announced, before its MILP solves.
	tt := topo.Internal2(4)
	d := collective.AllGather(tt.NumNodes(), testGPUs(tt), 1, 1<<20)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := Options{
		EpochMode: SlowestLink,
		Progress: func(p Progress) {
			if p.Solver == "astar" && p.Phase == "round" && p.Round == 2 {
				cancel()
			}
		},
	}
	start := time.Now()
	res, err := SolveAStarContext(ctx, tt, d, opt)
	promptly(t, start)
	if err == nil {
		if res != nil && res.Rounds < 2 {
			t.Skipf("instance solved in %d round(s); round-2 cancellation never armed", res.Rounds)
		}
		t.Fatalf("A* completed (%d rounds) despite the round-2 cancellation", res.Rounds)
	}
	if res != nil {
		t.Fatalf("cancelled A* returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrap of context.Canceled", err)
	}
	noGoroutineLeak(t, before)
}

func TestCancelDuringMakespanRefinement(t *testing.T) {
	// Cancel right after the base LP solves, so the cancellation lands in
	// the MinimizeMakespan re-solve chain: the last complete schedule
	// must come back alongside an error wrapping context.Canceled.
	tt := topo.DGX1()
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := Options{
		MinimizeMakespan: true,
		Progress: func(p Progress) {
			if p.Solver == "lp" && p.Phase == "simplex" {
				cancel()
			}
		},
	}
	start := time.Now()
	res, err := SolveLPContext(ctx, tt, d, opt)
	promptly(t, start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrap of context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled refinement dropped the completed schedule")
	}
	if verr := res.Schedule.Validate(); verr != nil {
		t.Fatalf("returned schedule invalid: %v", verr)
	}
}

func TestCancelBatchSolve(t *testing.T) {
	// A cancelled batch stops picking up points; unsolved points carry
	// the cancellation cause.
	tt, d := hardLPInstance()
	demands := []*collective.Demand{d, d.Clone(), d.Clone()}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, errs := BatchSolveLPContext(ctx, tt, demands, Options{}, BatchOptions{})
	promptly(t, start)
	sawCancel := false
	for _, err := range errs {
		if errors.Is(err, context.Canceled) {
			sawCancel = true
		}
	}
	if !sawCancel {
		t.Fatalf("no point reported context.Canceled: %v", errs)
	}
}

func TestCancelledContextFailsFast(t *testing.T) {
	// An already-cancelled context never starts the simplex.
	tt, d := hardLPInstance()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, solve := range map[string]func() error{
		"lp": func() error {
			_, err := SolveLPContext(ctx, tt, d, Options{})
			return err
		},
		"milp": func() error {
			_, err := SolveMILPContext(ctx, tt, d, Options{})
			return err
		},
		"astar": func() error {
			_, err := SolveAStarContext(ctx, tt, d, Options{})
			return err
		},
	} {
		start := time.Now()
		err := solve()
		// Generous ceiling: it distinguishes "aborted before the solve"
		// from "ran the solve anyway" (minutes), while tolerating the
		// pre-solve estimate work under race-detector + full-suite load.
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("%s: pre-cancelled solve ran %v", name, elapsed)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want wrap of context.Canceled", name, err)
		}
	}
}
