package core

// progress.go is the serving-side observability hook: long-running
// solves report where they are (model build, simplex, branch-and-bound,
// A* rounds, makespan refinement) so a service wrapping the Planner can
// export live metrics, enforce its own pacing, or cancel a request whose
// bound has stalled.

import (
	"math"

	"teccl/internal/milp"
)

// Progress is one observability sample from a running solve.
type Progress struct {
	// Solver identifies the formulation: "lp", "milp", "astar", or
	// "horizon".
	Solver string
	// Phase is where the solve currently is: "model" (instance built,
	// simplex not yet started), "simplex" (LP solved), "branch"
	// (branch-and-bound node evaluated), "round" (an A* round is about
	// to solve), or "makespan" (a MinimizeMakespan re-solve finished).
	// The rolling-horizon solver adds "em" (epoch multiplier chosen),
	// "window" (one window solved), "stitch" (stitched schedule
	// validated), "certify" (monolithic certification re-solve
	// finished), and "fallback" (decomposition abandoned for one
	// monolithic solve).
	Phase string
	// Round is the 1-based A* round or rolling-horizon window index, 0
	// elsewhere.
	Round int
	// Nodes is the number of branch-and-bound nodes evaluated so far.
	Nodes int
	// Iterations counts simplex iterations so far in this phase's solve.
	Iterations int
	// Incumbent is the best integer-feasible objective found so far
	// (NaN while none exists).
	Incumbent float64
	// Bound is the best proven bound on the optimum (NaN while unknown).
	Bound float64
	// Gap is the relative primal-dual gap (+Inf while no incumbent).
	Gap float64
}

// ProgressFunc receives Progress samples during a solve. Implementations
// must be fast and must not call back into the solver; with concurrent
// branch-and-bound workers the callback is serialized by the search lock
// but may run on any worker goroutine.
type ProgressFunc func(Progress)

// emit sends a sample if a hook is installed.
func (f ProgressFunc) emit(p Progress) {
	if f != nil {
		f(p)
	}
}

// milpHook adapts the hook to the branch-and-bound solver's callback,
// tagging samples with the owning solver and A* round.
func (f ProgressFunc) milpHook(solver string, round int) func(milp.ProgressInfo) {
	if f == nil {
		return nil
	}
	return func(pi milp.ProgressInfo) {
		f(Progress{
			Solver:     solver,
			Phase:      "branch",
			Round:      round,
			Nodes:      pi.Nodes,
			Iterations: pi.Iterations,
			Incumbent:  pi.Incumbent,
			Bound:      pi.Bound,
			Gap:        pi.Gap,
		})
	}
}

// lpSample builds a Progress sample for a pure-LP phase.
func lpSample(phase string, iterations int, objective float64, haveObj bool) Progress {
	p := Progress{
		Solver:     "lp",
		Phase:      phase,
		Iterations: iterations,
		Incumbent:  math.NaN(),
		Bound:      math.NaN(),
		Gap:        math.Inf(1),
	}
	if haveObj {
		p.Incumbent, p.Bound, p.Gap = objective, objective, 0
	}
	return p
}
