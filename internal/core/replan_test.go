package core

// Replan tests: incremental dual-simplex reoptimization under churn,
// equivalence with cold solves at the incumbent discretization, graceful
// degradation, atomic cache invalidation (the stale-replay bugfix), and
// race-cleanliness under concurrent sessions.

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"teccl/internal/collective"
	"teccl/internal/topo"
)

// objClose reports relative objective agreement.
func objClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(b))
}

// assertAvoidsDown fails if any send of the plan uses a downed link.
func assertAvoidsDown(t *testing.T, p *Plan) {
	t.Helper()
	for _, snd := range p.Schedule.Sends {
		if p.Schedule.Topo.LinkDown(snd.Link) {
			t.Fatalf("schedule uses downed link %d", snd.Link)
		}
	}
	if err := p.Schedule.Validate(); err != nil {
		t.Fatalf("replanned schedule invalid: %v", err)
	}
}

func TestReplanLinkDownIncremental(t *testing.T) {
	tt := topo.DGX1()
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{})
	base, err := pl.Plan(context.Background(), Request{Demand: d, Solver: SolverLP})
	if err != nil {
		t.Fatal(err)
	}

	down := topo.LinkID(0)
	rp, err := pl.Replan(context.Background(), Delta{LinksDown: []topo.LinkID{down}})
	if err != nil {
		t.Fatalf("Replan: %v", err)
	}
	if !rp.Replanned || rp.ReplanFallback {
		t.Fatalf("want incremental replan, got Replanned=%v fallback=%v", rp.Replanned, rp.ReplanFallback)
	}
	if !rp.WarmStart {
		t.Fatal("incremental replan must warm-start from the incumbent basis")
	}
	assertAvoidsDown(t, rp)

	// The incremental reoptimization must agree with a from-scratch cold
	// solve of the churned world at the incumbent discretization.
	edited, err := tt.ApplyDelta(topo.Delta{LinksDown: []topo.LinkID{down}})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := SolveLP(edited, d, Options{Epochs: rp.Epochs, Tau: rp.Tau})
	if err != nil {
		t.Fatalf("cold reference solve: %v", err)
	}
	if !objClose(rp.Objective, cold.Objective) {
		t.Fatalf("replan objective %g != cold %g", rp.Objective, cold.Objective)
	}
	// And it should be cheap relative to the cold solve.
	if cold.RootIterations > 20 && rp.RootIterations >= cold.RootIterations {
		t.Fatalf("incremental replan took %d iterations, cold %d", rp.RootIterations, cold.RootIterations)
	}

	st := pl.Stats()
	if st.Replans != 1 || st.ReplanFallbacks != 0 {
		t.Fatalf("stats = %+v, want 1 replan / 0 fallbacks", st)
	}
	if st.ReplanPivots != rp.RootIterations {
		t.Fatalf("ReplanPivots = %d, want %d", st.ReplanPivots, rp.RootIterations)
	}

	// Future plans run against the churned topology.
	after, err := pl.Plan(context.Background(), Request{Demand: d.Clone(), Solver: SolverLP})
	if err != nil {
		t.Fatal(err)
	}
	assertAvoidsDown(t, after)
	_ = base
}

// kappaAt replicates the per-link epochs-per-chunk derivation so tests
// can predict whether a capacity scale is structural.
func kappaAt(capacity, tau, chunkBytes float64) int {
	per := capacity * tau / chunkBytes
	if per >= 1-1e-9 {
		return 1
	}
	return int(math.Ceil(1/per - 1e-9))
}

func TestReplanDegradationAndStraggler(t *testing.T) {
	tt := topo.DGX1()
	const chunkBytes = 25e3
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, chunkBytes)
	// The derived tau puts every link's chunks-per-epoch at an exact
	// ceiling boundary (capacities are integer ratios), where any
	// downscale is structural; pad tau so κ-preserving degradation
	// exists, as it does on real fractional-rate hardware.
	tau := 1.1 * chunkBytes / tt.MaxCapacity()
	pl := NewPlanner(tt, PlannerOptions{Defaults: Options{Tau: tau}})
	if _, err := pl.Plan(context.Background(), Request{Demand: d, Solver: SolverLP}); err != nil {
		t.Fatal(err)
	}

	// Find a (link, factor) whose degradation keeps κ intact.
	var scale []topo.LinkScale
	for l := 0; l < tt.NumLinks() && scale == nil; l++ {
		for _, f := range []float64{0.95, 0.9, 0.85} {
			c := tt.Link(topo.LinkID(l)).Capacity
			if kappaAt(f*c, tau, chunkBytes) == kappaAt(c, tau, chunkBytes) {
				scale = []topo.LinkScale{{Link: topo.LinkID(l), Capacity: f}}
				break
			}
		}
	}
	if scale == nil {
		t.Fatal("no κ-preserving degradation exists at padded tau")
	}

	// Mild capacity degradation keeps κ intact → incremental.
	rp, err := pl.Replan(context.Background(), Delta{Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	if rp.ReplanFallback {
		t.Fatalf("κ-preserving degradation %+v should replan incrementally", scale)
	}
	assertAvoidsDown(t, rp)

	// A straggler whose α inflates past the epoch duration changes δ —
	// structural churn → graceful cold fallback, not an error.
	rp2, err := pl.Replan(context.Background(), Delta{
		Scale: []topo.LinkScale{{Link: 2, Alpha: 10000}},
	})
	if err != nil {
		t.Fatalf("structural replan errored: %v", err)
	}
	if !rp2.Replanned || !rp2.ReplanFallback {
		t.Fatalf("want cold fallback, got Replanned=%v fallback=%v", rp2.Replanned, rp2.ReplanFallback)
	}
	if err := rp2.Schedule.Validate(); err != nil {
		t.Fatalf("fallback schedule invalid: %v", err)
	}
	st := pl.Stats()
	if st.Replans != 2 || st.ReplanFallbacks != 1 {
		t.Fatalf("stats = %+v, want 2 replans / 1 fallback", st)
	}
}

func TestReplanNodeLossDropsDemand(t *testing.T) {
	tt := topo.DGX1()
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{})
	if _, err := pl.Plan(context.Background(), Request{Demand: d, Solver: SolverLP}); err != nil {
		t.Fatal(err)
	}
	lost := topo.NodeID(3)
	rp, err := pl.Replan(context.Background(), Delta{NodesDown: []topo.NodeID{lost}})
	if err != nil {
		t.Fatalf("node-loss replan: %v", err)
	}
	assertAvoidsDown(t, rp)
	// No send may target or originate traffic for the lost node.
	dem := rp.Schedule.Demand
	for s := 0; s < dem.NumNodes(); s++ {
		for c := 0; c < dem.NumChunks(); c++ {
			if dem.Wants(s, c, int(lost)) || (s == int(lost) && dem.SourceHasChunk(s, c) && len(dem.DestWantsFromSource(s, int(lost))) > 0) {
				t.Fatal("lost node still present in replanned demand")
			}
		}
	}
	for c := 0; c < dem.NumChunks(); c++ {
		for dst := 0; dst < dem.NumNodes(); dst++ {
			if dem.Wants(int(lost), c, dst) {
				t.Fatal("demand still wants chunks of the lost node")
			}
		}
	}
}

func TestReplanDropPairAndAddDemand(t *testing.T) {
	tt := topo.DGX1()
	gpus := testGPUs(tt)
	d := collective.AllToAll(tt.NumNodes(), gpus, 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{})
	if _, err := pl.Plan(context.Background(), Request{Demand: d, Solver: SolverLP}); err != nil {
		t.Fatal(err)
	}

	// Dropping a pair is a bound/RHS edit → incremental.
	rp, err := pl.Replan(context.Background(), Delta{DropPairs: []DemandPair{{Src: gpus[0], Dst: gpus[1]}}})
	if err != nil {
		t.Fatal(err)
	}
	if rp.ReplanFallback {
		t.Fatal("pair drop should replan incrementally")
	}
	assertAvoidsDown(t, rp)
	if rp.Schedule.Demand.Wants(gpus[0], 0, gpus[1]) {
		t.Fatal("dropped pair still demanded")
	}

	// Re-adding the dropped pair resurrects its columns incrementally:
	// the append path widens the existing read columns and re-raises the
	// destination-total row instead of forcing a cold rebuild.
	add := collective.New(tt.NumNodes(), d.NumChunks(), d.ChunkBytes)
	add.Set(gpus[0], 0, gpus[1])
	rp2, err := pl.Replan(context.Background(), Delta{AddDemand: add})
	if err != nil {
		t.Fatal(err)
	}
	if rp2.ReplanFallback {
		t.Fatal("re-added demand pair should replan incrementally")
	}
	if !rp2.WarmStart {
		t.Fatal("demand append must warm-start from the padded incumbent basis")
	}
	if !rp2.Schedule.Demand.Wants(gpus[0], 0, gpus[1]) {
		t.Fatal("added demand missing from replanned schedule")
	}
	if err := rp2.Schedule.Validate(); err != nil {
		t.Fatalf("appended schedule invalid: %v", err)
	}

	// The incremental append must agree with a cold solve of the union
	// demand at the incumbent discretization.
	cold, err := SolveLP(pl.Topology(), rp2.Schedule.Demand, Options{Tau: rp2.Tau, Epochs: rp2.Epochs})
	if err != nil {
		t.Fatalf("cold union solve: %v", err)
	}
	if !objClose(rp2.Objective, cold.Objective) {
		t.Fatalf("append objective %.9g != cold %.9g", rp2.Objective, cold.Objective)
	}
}

func TestReplanErrors(t *testing.T) {
	tt := topo.DGX1()
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{})

	if _, err := pl.Replan(context.Background(), Delta{LinksDown: []topo.LinkID{0}}); err == nil {
		t.Fatal("Replan before any Plan should error")
	}
	if _, err := pl.Plan(context.Background(), Request{Demand: d}); err != nil {
		t.Fatal(err)
	}
	before := pl.Topology()
	if _, err := pl.Replan(context.Background(), Delta{LinksDown: []topo.LinkID{topo.LinkID(tt.NumLinks())}}); err == nil {
		t.Fatal("invalid delta should error")
	}
	if _, err := pl.Replan(context.Background(), Delta{DropPairs: []DemandPair{{Src: -1, Dst: 0}}}); err == nil {
		t.Fatal("invalid drop pair should error")
	}
	if _, err := pl.Replan(context.Background(), Delta{AddDemand: collective.New(2, 1, 1)}); err == nil {
		t.Fatal("mismatched AddDemand should error")
	}
	if pl.Topology() != before {
		t.Fatal("failed replans must not change session state")
	}
	if st := pl.Stats(); st.Replans != 0 {
		t.Fatalf("failed replans counted: %+v", st)
	}
}

func TestReplanNonLPIncumbentChurn(t *testing.T) {
	tt := topo.DGX1()
	// A broadcast benefits from copy → MILP/A* route; force A* to get a
	// non-LP incumbent.
	d := collective.Broadcast(tt.NumNodes(), testGPUs(tt), testGPUs(tt)[0], 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{})
	if _, err := pl.Plan(context.Background(), Request{Demand: d, Solver: SolverAStar}); err != nil {
		t.Fatal(err)
	}
	// Topology churn on an A* incumbent replans by replay-and-resume.
	rp, err := pl.Replan(context.Background(), Delta{LinksDown: []topo.LinkID{0}})
	if err != nil {
		t.Fatalf("A* replan: %v", err)
	}
	if !rp.Replanned {
		t.Fatal("A* replan must be marked Replanned")
	}
	if rp.Solver != SolverAStar {
		t.Fatalf("replan solver = %v, want the incumbent's forced A*", rp.Solver)
	}
	assertAvoidsDown(t, rp)
	// Every demand of the churned world must still be satisfied.
	if err := rp.Schedule.Validate(); err != nil {
		t.Fatalf("A* replanned schedule invalid: %v", err)
	}

	// Demand churn stays structural for non-LP incumbents → cold
	// fallback classified as such.
	gpus := testGPUs(tt)
	rp2, err := pl.Replan(context.Background(), Delta{DropPairs: []DemandPair{{Src: gpus[0], Dst: gpus[1]}}})
	if err != nil {
		t.Fatalf("fallback replan: %v", err)
	}
	if !rp2.ReplanFallback {
		t.Fatal("demand churn on a non-LP incumbent must fall back to a cold solve")
	}
	if st := pl.Stats(); st.ReplanFallbackStructural == 0 {
		t.Fatalf("structural fallback not counted: %+v", st)
	}
}

// TestReplanEvictsReplayCache pins the cache-invalidation bugfix: a
// schedule replayed by fingerprint for the pre-churn topology would be
// silently infeasible post-churn, so Replan must evict the replay cache
// (and every other per-topology cache) atomically.
func TestReplanEvictsReplayCache(t *testing.T) {
	tt := topo.DGX1()
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{})
	if _, err := pl.Plan(context.Background(), Request{Demand: d}); err != nil {
		t.Fatal(err)
	}
	second, err := pl.Plan(context.Background(), Request{Demand: d.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("identical pre-churn request should replay (sanity)")
	}
	rp, err := pl.Replan(context.Background(), Delta{LinksDown: []topo.LinkID{0}})
	if err != nil {
		t.Fatal(err)
	}
	third, err := pl.Plan(context.Background(), Request{Demand: d.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	// A replay of a *post-churn* entry is fine; what must never happen
	// is serving the pre-churn schedule, whose topology still has link 0
	// up.
	if !third.Schedule.Topo.LinkDown(0) {
		t.Fatal("post-churn request replayed a pre-churn schedule")
	}
	assertAvoidsDown(t, third)
	_ = rp
}

// TestPlannerSnapshotsTopology pins the aliasing bugfix: mutating the
// caller's Topology after NewPlanner must not corrupt the session.
func TestPlannerSnapshotsTopology(t *testing.T) {
	tt := topo.DGX1()
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{})
	ref, err := pl.Plan(context.Background(), Request{Demand: d})
	if err != nil {
		t.Fatal(err)
	}
	// Vandalize the caller's value: new node, new absurd link.
	n := tt.AddNode("rogue", false)
	tt.AddLink(n, 0, 1, 12345)
	tt.AddLink(0, n, 1, 12345)

	again, err := pl.Plan(context.Background(), Request{Demand: d.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if !objClose(again.Objective, ref.Objective) {
		t.Fatalf("session affected by caller mutation: %g vs %g", again.Objective, ref.Objective)
	}
	if pl.Topology().NumNodes() != ref.Schedule.Topo.NumNodes() {
		t.Fatal("session topology aliases the caller's value")
	}
}

// TestReplanVsColdProperty: randomized churn sequences must keep every
// Replan equal in objective to a from-scratch solve of the edited world
// at the incumbent discretization, with schedules re-validating
// throughout. Exercises link loss, degradation, and pair drops in
// sequence on one session.
func TestReplanVsColdProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// NDv2Mini runs at slowest-link τ: its fastest-link horizon (tens of
	// epochs, set by the slow IB hop) makes pinned-K reference solves
	// needlessly expensive for a property test.
	worlds := []struct {
		build func() *topo.Topology
		opts  Options
	}{
		{build: topo.DGX1},
		{build: func() *topo.Topology { return topo.NDv2Mini(2) }, opts: Options{EpochMode: SlowestLink}},
	}
	for trial := 0; trial < 4; trial++ {
		w := worlds[trial%len(worlds)]
		tt := w.build()
		gpus := testGPUs(tt)
		d := collective.AllToAll(tt.NumNodes(), gpus, 1, 25e3)
		pl := NewPlanner(tt, PlannerOptions{Defaults: w.opts})
		if _, err := pl.Plan(context.Background(), Request{Demand: d, Solver: SolverLP}); err != nil {
			t.Fatal(err)
		}
		world := tt.Clone()
		demand := d.Clone()
		for step := 0; step < 3; step++ {
			var delta Delta
			switch rng.Intn(3) {
			case 0:
				// Take down a random still-live link whose loss keeps all
				// GPUs connected (otherwise infeasibility is expected and
				// uninteresting for the equality property).
				live := liveRemovableLinks(world)
				if len(live) == 0 {
					continue
				}
				delta.LinksDown = []topo.LinkID{live[rng.Intn(len(live))]}
			case 1:
				l := topo.LinkID(rng.Intn(world.NumLinks()))
				delta.Scale = []topo.LinkScale{{Link: l, Capacity: 0.75 + 0.2*rng.Float64()}}
			case 2:
				src, dst := gpus[rng.Intn(len(gpus))], gpus[rng.Intn(len(gpus))]
				if src == dst {
					continue
				}
				delta.DropPairs = []DemandPair{{Src: src, Dst: dst}}
			}
			rp, err := pl.Replan(context.Background(), delta)
			if err != nil {
				t.Fatalf("trial %d step %d: replan %v (delta %+v)", trial, step, err, delta)
			}
			assertAvoidsDown(t, rp)

			world, err = world.ApplyDelta(topo.Delta{LinksDown: delta.LinksDown, Scale: delta.Scale})
			if err != nil {
				t.Fatal(err)
			}
			for _, pr := range delta.DropPairs {
				demand.DropPair(pr.Src, pr.Dst)
			}
			// A fallback already is a cold solve of the churned world —
			// re-validated above, nothing further to compare (and its
			// re-derived horizon can be arbitrarily larger than the
			// incumbent's, making a reference solve unboundedly slow).
			// End the trial there; the equality property under test is
			// the incremental path's.
			if rp.ReplanFallback {
				break
			}
			cold, err := SolveLP(world, demand, Options{Epochs: rp.Epochs, Tau: rp.Tau})
			if err != nil {
				t.Fatalf("trial %d step %d: cold reference %v", trial, step, err)
			}
			if !objClose(rp.Objective, cold.Objective) {
				t.Fatalf("trial %d step %d: replan obj %g != cold %g",
					trial, step, rp.Objective, cold.Objective)
			}
		}
	}
}

// liveRemovableLinks lists live links whose individual loss keeps every
// GPU pair mutually reachable.
func liveRemovableLinks(t *topo.Topology) []topo.LinkID {
	var out []topo.LinkID
	for l := 0; l < t.NumLinks(); l++ {
		if t.LinkDown(topo.LinkID(l)) {
			continue
		}
		probe, err := t.ApplyDelta(topo.Delta{LinksDown: []topo.LinkID{topo.LinkID(l)}})
		if err != nil {
			continue
		}
		if probe.Validate() == nil {
			out = append(out, topo.LinkID(l))
		}
	}
	return out
}

// TestReplanConcurrentWithPlans: Replan racing a stream of Plan calls
// must stay consistent — every returned schedule validates against the
// topology it was solved for, and no call panics. Run with -race.
func TestReplanConcurrentWithPlans(t *testing.T) {
	tt := topo.DGX1()
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{})
	if _, err := pl.Plan(context.Background(), Request{Demand: d, Solver: SolverLP}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				dd := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, float64(20e3+1000*w+100*i))
				plan, err := pl.Plan(context.Background(), Request{Demand: dd, Solver: SolverLP})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if err := plan.Schedule.Validate(); err != nil {
					t.Errorf("worker %d: invalid schedule: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := pl.Replan(context.Background(), Delta{
				Scale: []topo.LinkScale{{Link: topo.LinkID(i), Capacity: 0.9}},
			}); err != nil {
				t.Errorf("replan %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	if st := pl.Stats(); st.Replans != 3 {
		t.Fatalf("stats = %+v, want 3 replans", st)
	}
}
