package core

// Churn-stream replan tests: structural growth, incremental demand
// appends (new pairs and new sources), MILP/A* incumbent replanning,
// the bounded-regret budget abort, adaptive re-basing, cancellation
// semantics, and a mixed-kind randomized replan-vs-cold property
// corpus. Complements replan_test.go, which covers the single-delta
// LP paths.

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"teccl/internal/collective"
	"teccl/internal/topo"
)

// kappaPreservingScale finds a (link, factor) pair whose capacity scale
// keeps the link's κ intact at tau, searching the given candidate
// factors in order. Returns nil when none exists.
func kappaPreservingScale(tt *topo.Topology, tau, chunkBytes float64, factors []float64) []topo.LinkScale {
	for l := 0; l < tt.NumLinks(); l++ {
		if tt.LinkDown(topo.LinkID(l)) {
			continue
		}
		c := tt.Link(topo.LinkID(l)).Capacity
		for _, f := range factors {
			if kappaAt(f*c, tau, chunkBytes) == kappaAt(c, tau, chunkBytes) {
				return []topo.LinkScale{{Link: topo.LinkID(l), Capacity: f}}
			}
		}
	}
	return nil
}

// TestReplanCapacityIncreaseIncremental: a κ-preserving capacity
// increase (restoration after degradation, or a provisioned upgrade) is
// a pure RHS relaxation of the incumbent model — it must replan
// incrementally and agree with a cold solve of the upgraded world.
func TestReplanCapacityIncreaseIncremental(t *testing.T) {
	tt := topo.DGX1()
	const chunkBytes = 25e3
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, chunkBytes)
	tau := 1.1 * chunkBytes / tt.MaxCapacity()
	pl := NewPlanner(tt, PlannerOptions{Defaults: Options{Tau: tau}})
	if _, err := pl.Plan(context.Background(), Request{Demand: d, Solver: SolverLP}); err != nil {
		t.Fatal(err)
	}

	scale := kappaPreservingScale(tt, tau, chunkBytes, []float64{1.25, 1.5, 2})
	if scale == nil {
		t.Fatal("no κ-preserving capacity increase exists at padded tau")
	}
	rp, err := pl.Replan(context.Background(), Delta{Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	if rp.ReplanFallback {
		t.Fatalf("κ-preserving capacity increase %+v should replan incrementally", scale)
	}
	if !rp.WarmStart {
		t.Fatal("incremental replan must warm-start from the incumbent basis")
	}
	assertAvoidsDown(t, rp)

	upgraded, err := tt.ApplyDelta(topo.Delta{Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := SolveLP(upgraded, d, Options{Epochs: rp.Epochs, Tau: rp.Tau})
	if err != nil {
		t.Fatalf("cold reference solve: %v", err)
	}
	if !objClose(rp.Objective, cold.Objective) {
		t.Fatalf("capacity-increase replan objective %g != cold %g", rp.Objective, cold.Objective)
	}
}

// TestReplanAddDemandNewPairAndNewSource: Delta.AddDemand pairs that
// never existed in the incumbent model — a new destination for an
// existing source, then an entirely new source — are priced in as
// appended columns/rows of the incumbent LP, not cold rebuilds, and
// each append agrees with a cold solve of the union demand.
func TestReplanAddDemandNewPairAndNewSource(t *testing.T) {
	tt := topo.DGX1()
	gpus := testGPUs(tt)
	// Two chunks per source so each appended pair reads its own chunk:
	// a second destination for the *same* chunk would be multicast,
	// which the LP form (correctly) refuses to absorb incrementally.
	d := collective.New(tt.NumNodes(), 2, 25e3)
	d.Set(gpus[0], 0, gpus[1])
	d.Set(gpus[1], 0, gpus[2])
	// Pin a horizon with headroom: the incumbent K must admit the
	// appended pairs' earliest-arrival windows or the append is
	// (correctly) refused as structural.
	pl := NewPlanner(tt, PlannerOptions{Defaults: Options{Epochs: 12}})
	if _, err := pl.Plan(context.Background(), Request{Demand: d, Solver: SolverLP}); err != nil {
		t.Fatal(err)
	}

	steps := []struct {
		name            string
		src, chunk, dst int
	}{
		{"new pair on existing source", gpus[0], 1, gpus[2]},
		{"new source", gpus[4], 0, gpus[1]},
	}
	for i, stp := range steps {
		add := collective.New(tt.NumNodes(), 2, 25e3)
		add.Set(stp.src, stp.chunk, stp.dst)
		rp, err := pl.Replan(context.Background(), Delta{AddDemand: add})
		if err != nil {
			t.Fatalf("%s: %v", stp.name, err)
		}
		if rp.ReplanFallback {
			t.Fatalf("%s should append incrementally, got cold fallback", stp.name)
		}
		if !rp.WarmStart {
			t.Fatalf("%s must warm-start from the padded incumbent basis", stp.name)
		}
		if !rp.Schedule.Demand.Wants(stp.src, stp.chunk, stp.dst) {
			t.Fatalf("%s: added pair missing from replanned demand", stp.name)
		}
		assertAvoidsDown(t, rp)
		cold, err := SolveLP(tt, rp.Schedule.Demand, Options{Epochs: rp.Epochs, Tau: rp.Tau})
		if err != nil {
			t.Fatalf("%s: cold union solve: %v", stp.name, err)
		}
		if !objClose(rp.Objective, cold.Objective) {
			t.Fatalf("%s: append objective %.9g != cold union %.9g", stp.name, rp.Objective, cold.Objective)
		}
		if st := pl.Stats(); st.Replans != i+1 || st.ReplanFallbacks != 0 {
			t.Fatalf("%s: stats = %+v, want %d incremental replans", stp.name, st, i+1)
		}
	}
}

// TestReplanGrowthFallsBackThenResumesIncremental: structural growth
// (a scale-up joining the job) replans by cold solve with the incumbent
// demand carried onto the grown node space — and the very next
// non-structural delta replans incrementally against the grown
// incumbent.
func TestReplanGrowthFallsBackThenResumesIncremental(t *testing.T) {
	tt := topo.DGX1()
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{})
	if _, err := pl.Plan(context.Background(), Request{Demand: d, Solver: SolverLP}); err != nil {
		t.Fatal(err)
	}

	ref := tt.Link(0)
	n := topo.NodeID(tt.NumNodes())
	grow := Delta{
		AddNodes: []topo.Node{{Name: "joiner"}},
		AddLinks: []topo.Link{
			{Src: n, Dst: 0, Capacity: ref.Capacity, Alpha: ref.Alpha},
			{Src: 0, Dst: n, Capacity: ref.Capacity, Alpha: ref.Alpha},
		},
	}
	rp, err := pl.Replan(context.Background(), grow)
	if err != nil {
		t.Fatalf("growth replan: %v", err)
	}
	if !rp.Replanned || !rp.ReplanFallback {
		t.Fatalf("growth must degrade to a cold solve, got Replanned=%v fallback=%v", rp.Replanned, rp.ReplanFallback)
	}
	if got := rp.Schedule.Demand.NumNodes(); got != tt.NumNodes()+1 {
		t.Fatalf("incumbent demand not carried onto grown node space: %d nodes, want %d", got, tt.NumNodes()+1)
	}
	assertAvoidsDown(t, rp)
	if pl.Topology().NumNodes() != tt.NumNodes()+1 || pl.Topology().NumLinks() != tt.NumLinks()+2 {
		t.Fatal("session topology did not grow")
	}
	st := pl.Stats()
	if st.ReplanFallbackStructural != 1 {
		t.Fatalf("growth fallback not classified structural: %+v", st)
	}

	// The grown world's cold solve becomes the incumbent; churn on the
	// grown topology replans incrementally again.
	rp2, err := pl.Replan(context.Background(), Delta{LinksDown: []topo.LinkID{0}})
	if err != nil {
		t.Fatal(err)
	}
	if rp2.ReplanFallback {
		t.Fatal("post-growth link churn should replan incrementally against the grown incumbent")
	}
	if !rp2.WarmStart {
		t.Fatal("post-growth incremental replan must warm-start")
	}
	assertAvoidsDown(t, rp2)
}

// TestReplanMILPIncumbentIncremental: topology churn on a MILP
// incumbent re-roots branch-and-bound from the repaired root basis and
// must agree with a cold MILP solve of the churned world whenever both
// are proven optimal.
func TestReplanMILPIncumbentIncremental(t *testing.T) {
	tt := topo.DGX1()
	ag := collective.AllGather(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	// This test pins incumbent re-rooting mechanics, not budgeting: the
	// wall deadline is derived from observed cold cost, which the race
	// detector inflates ~10x, so run unbudgeted to stay deterministic.
	pl := NewPlanner(tt, PlannerOptions{Replan: ReplanOptions{RegretFraction: -1}})
	if _, err := pl.Plan(context.Background(), Request{Demand: ag, Solver: SolverMILP}); err != nil {
		t.Fatal(err)
	}

	rp, err := pl.Replan(context.Background(), Delta{LinksDown: []topo.LinkID{0}})
	if err != nil {
		t.Fatalf("MILP replan: %v", err)
	}
	if rp.ReplanFallback {
		t.Fatal("link churn on a MILP incumbent should re-root incrementally")
	}
	if !rp.WarmStart || rp.Solver != SolverMILP {
		t.Fatalf("want warm-started MILP re-root, got warm=%v solver=%v", rp.WarmStart, rp.Solver)
	}
	assertAvoidsDown(t, rp)
	edited, err := tt.ApplyDelta(topo.Delta{LinksDown: []topo.LinkID{0}})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := SolveMILP(edited, ag, Options{Epochs: rp.Epochs, Tau: rp.Tau})
	if err != nil {
		t.Fatalf("cold MILP reference: %v", err)
	}
	if rp.Optimal && cold.Optimal && !objClose(rp.Objective, cold.Objective) {
		t.Fatalf("MILP re-root objective %g != cold %g", rp.Objective, cold.Objective)
	}

	// A capacity increase is also incremental for the MILP incumbent
	// (κ stays 1 when chunks already fit an epoch).
	rp2, err := pl.Replan(context.Background(), Delta{
		Scale: []topo.LinkScale{{Link: 1, Capacity: 1.25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rp2.ReplanFallback {
		t.Fatal("κ-preserving capacity increase on a MILP incumbent should be incremental")
	}
	assertAvoidsDown(t, rp2)
	if st := pl.Stats(); st.Replans != 2 || st.ReplanFallbacks != 0 || st.ReplanPivots == 0 {
		t.Fatalf("stats = %+v, want 2 incremental MILP replans with pivots accounted", st)
	}
}

// TestReplanAStarIncumbentReplayAndResume: a pure capacity increase on
// an A* incumbent replays the whole incumbent schedule without any
// solver work; a link failure resumes the round loop from the first
// affected round.
func TestReplanAStarIncumbentReplayAndResume(t *testing.T) {
	tt := topo.DGX1()
	ag := collective.AllGather(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	// Unbudgeted for the same reason as the MILP incumbent test: the
	// race detector's slowdown would turn the resume into a budget
	// abort, and budget-expiry semantics have their own test.
	pl := NewPlanner(tt, PlannerOptions{Replan: ReplanOptions{RegretFraction: -1}})
	if _, err := pl.Plan(context.Background(), Request{Demand: ag, Solver: SolverAStar}); err != nil {
		t.Fatal(err)
	}

	rp, err := pl.Replan(context.Background(), Delta{
		Scale: []topo.LinkScale{{Link: 0, Capacity: 1.25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rp.ReplanFallback {
		t.Fatal("capacity increase on an A* incumbent should replay incrementally")
	}
	if rp.RootIterations+rp.NodeIterations != 0 {
		t.Fatalf("pure capacity increase must replay without solving, spent %d iterations",
			rp.RootIterations+rp.NodeIterations)
	}
	assertAvoidsDown(t, rp)

	rp2, err := pl.Replan(context.Background(), Delta{LinksDown: []topo.LinkID{0}})
	if err != nil {
		t.Fatal(err)
	}
	if rp2.ReplanFallback {
		t.Fatal("link failure on an A* incumbent should resume the round loop")
	}
	if rp2.Solver != SolverAStar {
		t.Fatalf("resume solver = %v, want A*", rp2.Solver)
	}
	assertAvoidsDown(t, rp2)
	if st := pl.Stats(); st.Replans != 2 || st.ReplanFallbacks != 0 {
		t.Fatalf("stats = %+v, want 2 incremental A* replans", st)
	}
}

// TestReplanBudgetAbortFallsBack pins the bounded-regret budget and its
// expiry semantics: with the pivot budget crushed to one iteration, the
// incremental attempt hits its iteration limit and must degrade to the
// cold fallback — counted as a budget fallback, never surfaced as an
// iteration-limit error.
func TestReplanBudgetAbortFallsBack(t *testing.T) {
	tt := topo.DGX1()
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{
		Replan: ReplanOptions{RegretFraction: 1e-9, PivotFloor: -1},
	})
	if _, err := pl.Plan(context.Background(), Request{Demand: d, Solver: SolverLP}); err != nil {
		t.Fatal(err)
	}

	rp, err := pl.Replan(context.Background(), Delta{LinksDown: []topo.LinkID{0}})
	if err != nil {
		t.Fatalf("budget expiry must degrade to the fallback, not error: %v", err)
	}
	if !rp.ReplanFallback {
		t.Fatal("one-pivot budget should abort the incremental attempt")
	}
	assertAvoidsDown(t, rp)
	st := pl.Stats()
	if st.ReplanFallbackBudget != 1 {
		t.Fatalf("budget abort not classified: %+v", st)
	}
	if st.ReplanFallbacks != 1 || st.ReplanFallbackStructural != 0 || st.ReplanFallbackSour != 0 {
		t.Fatalf("stats = %+v, want exactly one budget fallback", st)
	}
	if st.ColdEstimatePivots == 0 {
		t.Fatal("cold-pivot estimate not primed by the initial cold solve")
	}
}

// TestReplanCancellationSurfacesCleanly: caller cancellation mid-replan
// surfaces as the context error — not an iteration-limit failure — and
// leaves the session serviceable.
func TestReplanCancellationSurfacesCleanly(t *testing.T) {
	tt := topo.DGX1()
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{})
	if _, err := pl.Plan(context.Background(), Request{Demand: d, Solver: SolverLP}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := pl.Replan(ctx, Delta{LinksDown: []topo.LinkID{0}})
	if err == nil {
		t.Fatal("cancelled replan should error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if s := err.Error(); strings.Contains(s, "iteration") || strings.Contains(s, "iter limit") {
		t.Fatalf("cancellation must not masquerade as an iteration limit: %v", err)
	}
	// The session stays serviceable after the interrupted replan.
	after, err := pl.Plan(context.Background(), Request{Demand: d.Clone(), Solver: SolverLP})
	if err != nil {
		t.Fatalf("session unusable after cancelled replan: %v", err)
	}
	assertAvoidsDown(t, after)
}

// TestReplanAdaptiveRebase: when the incremental pivot EWMA exceeds the
// re-base threshold, the next Replan deliberately skips the incremental
// attempt and refreshes the incumbent basis with a crash-started cold
// solve — counted as a ReBase, not a fallback — after which incremental
// replanning resumes.
func TestReplanAdaptiveRebase(t *testing.T) {
	tt := topo.DGX1()
	const chunkBytes = 25e3
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, chunkBytes)
	tau := 1.1 * chunkBytes / tt.MaxCapacity()
	pl := NewPlanner(tt, PlannerOptions{
		Defaults: Options{Tau: tau},
		// Any nonzero incremental EWMA trips the trigger: every second
		// replan re-bases.
		Replan: ReplanOptions{RebaseThreshold: 1e-9},
	})
	if _, err := pl.Plan(context.Background(), Request{Demand: d, Solver: SolverLP}); err != nil {
		t.Fatal(err)
	}
	scale := kappaPreservingScale(tt, tau, chunkBytes, []float64{0.95, 0.9, 0.85})
	if scale == nil {
		t.Fatal("no κ-preserving degradation exists at padded tau")
	}

	rp1, err := pl.Replan(context.Background(), Delta{Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	if rp1.ReplanFallback || rp1.ReBased {
		t.Fatalf("first replan should be incremental, got fallback=%v rebased=%v", rp1.ReplanFallback, rp1.ReBased)
	}

	rp2, err := pl.Replan(context.Background(), Delta{Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	if !rp2.ReBased {
		t.Fatal("decayed incremental advantage should trigger a proactive re-base")
	}
	if rp2.ReplanFallback {
		t.Fatal("a re-base is deliberate maintenance, not a fallback")
	}
	assertAvoidsDown(t, rp2)

	rp3, err := pl.Replan(context.Background(), Delta{Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	if rp3.ReBased || rp3.ReplanFallback {
		t.Fatalf("replanning should resume incrementally after the re-base, got fallback=%v rebased=%v",
			rp3.ReplanFallback, rp3.ReBased)
	}
	st := pl.Stats()
	if st.ReBases != 1 {
		t.Fatalf("ReBases = %d, want 1", st.ReBases)
	}
	if st.ReplanFallbacks != 0 {
		t.Fatalf("re-bases must not count as fallbacks: %+v", st)
	}
	if st.Replans != 3 {
		t.Fatalf("Replans = %d, want 3", st.Replans)
	}
}

// TestReplanStreamMixedProperty: a randomized churn stream over every
// delta kind — link loss, κ-preserving degradation and restoration,
// pair drops, demand re-adds, and structural growth — must keep every
// LP replan (incremental or fallback) equal in objective to a cold
// solve of the churned world at the replan's own discretization, with
// MILP and A* incumbents holding their respective guarantees.
func TestReplanStreamMixedProperty(t *testing.T) {
	const chunkBytes = 25e3
	rng := rand.New(rand.NewSource(7))

	for trial := 0; trial < 2; trial++ {
		tt := topo.DGX1()
		gpus := testGPUs(tt)
		tau := 1.1 * chunkBytes / tt.MaxCapacity()
		d := collective.AllToAll(tt.NumNodes(), gpus, 1, chunkBytes)
		pl := NewPlanner(tt, PlannerOptions{Defaults: Options{Tau: tau}})
		if _, err := pl.Plan(context.Background(), Request{Demand: d, Solver: SolverLP}); err != nil {
			t.Fatal(err)
		}
		world := tt.Clone()
		demand := d.Clone()
		var dropped []DemandPair
		grown := false
		growStep := 1 + rng.Intn(3)

		for step := 0; step < 5; step++ {
			var delta Delta
			kind := rng.Intn(4)
			if step == growStep && !grown {
				kind = 4
			}
			switch kind {
			case 0:
				live := liveRemovableLinks(world)
				if len(live) == 0 {
					continue
				}
				delta.LinksDown = []topo.LinkID{live[rng.Intn(len(live))]}
			case 1:
				f := 0.9
				if rng.Intn(2) == 0 {
					f = 1.25
				}
				l := topo.LinkID(rng.Intn(world.NumLinks()))
				if world.LinkDown(l) {
					continue
				}
				delta.Scale = []topo.LinkScale{{Link: l, Capacity: f}}
			case 2:
				src, dst := gpus[rng.Intn(len(gpus))], gpus[rng.Intn(len(gpus))]
				if src == dst || len(demand.DestWantsFromSource(src, dst)) == 0 {
					continue
				}
				delta.DropPairs = []DemandPair{{Src: src, Dst: dst}}
				dropped = append(dropped, delta.DropPairs[0])
			case 3:
				if len(dropped) == 0 {
					continue
				}
				pr := dropped[len(dropped)-1]
				dropped = dropped[:len(dropped)-1]
				add := collective.New(demand.NumNodes(), demand.NumChunks(), demand.ChunkBytes)
				add.Set(pr.Src, 0, pr.Dst)
				delta.AddDemand = add
			case 4:
				ref := world.Link(0)
				n := topo.NodeID(world.NumNodes())
				delta.AddNodes = []topo.Node{{Name: "joiner"}}
				delta.AddLinks = []topo.Link{
					{Src: n, Dst: 0, Capacity: ref.Capacity, Alpha: ref.Alpha},
					{Src: 0, Dst: n, Capacity: ref.Capacity, Alpha: ref.Alpha},
				}
				grown = true
			}

			rp, err := pl.Replan(context.Background(), delta)
			if err != nil {
				t.Fatalf("trial %d step %d: replan %v (delta %+v)", trial, step, err, delta)
			}
			assertAvoidsDown(t, rp)

			world, err = world.ApplyDelta(topo.Delta{
				LinksDown: delta.LinksDown, Scale: delta.Scale,
				AddNodes: delta.AddNodes, AddLinks: delta.AddLinks,
			})
			if err != nil {
				t.Fatal(err)
			}
			if world.NumNodes() > demand.NumNodes() {
				demand = demand.WithNodes(world.NumNodes())
			}
			for _, pr := range delta.DropPairs {
				demand.DropPair(pr.Src, pr.Dst)
			}
			if delta.AddDemand != nil {
				demand.Or(delta.AddDemand)
			}

			// A fallback that re-derived its own horizon can be compared
			// at its reported discretization only when the incumbent τ
			// survived; growth fallbacks keep τ (it is pinned), so every
			// LP plan in this stream admits a cold reference.
			cold, err := SolveLP(world, demand, Options{Epochs: rp.Epochs, Tau: rp.Tau})
			if err != nil {
				t.Fatalf("trial %d step %d: cold reference %v", trial, step, err)
			}
			if !objClose(rp.Objective, cold.Objective) {
				t.Fatalf("trial %d step %d: replan obj %g != cold %g (fallback=%v delta=%+v)",
					trial, step, rp.Objective, cold.Objective, rp.ReplanFallback, delta)
			}
		}
	}

	// MILP incumbent leg: incremental re-roots must match cold optima.
	tt := topo.DGX1()
	ag := collective.AllGather(tt.NumNodes(), testGPUs(tt), 1, chunkBytes)
	pm := NewPlanner(tt, PlannerOptions{})
	if _, err := pm.Plan(context.Background(), Request{Demand: ag, Solver: SolverMILP}); err != nil {
		t.Fatal(err)
	}
	world := tt.Clone()
	for step := 0; step < 2; step++ {
		var delta Delta
		if step == 0 {
			live := liveRemovableLinks(world)
			delta.LinksDown = []topo.LinkID{live[rng.Intn(len(live))]}
		} else {
			delta.Scale = []topo.LinkScale{{Link: 1, Capacity: 1.25}}
		}
		rp, err := pm.Replan(context.Background(), delta)
		if err != nil {
			t.Fatalf("milp step %d: %v", step, err)
		}
		assertAvoidsDown(t, rp)
		world, err = world.ApplyDelta(topo.Delta{LinksDown: delta.LinksDown, Scale: delta.Scale})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := SolveMILP(world, ag, Options{Epochs: rp.Epochs, Tau: rp.Tau})
		if err != nil {
			t.Fatalf("milp step %d: cold reference %v", step, err)
		}
		if rp.Optimal && cold.Optimal && !objClose(rp.Objective, cold.Objective) {
			t.Fatalf("milp step %d: replan obj %g != cold %g", step, rp.Objective, cold.Objective)
		}
	}

	// A* incumbent leg: replayed/resumed schedules must deliver the full
	// demand on the churned world (objective equality is not an A*
	// guarantee — it is a bounded-gap heuristic).
	pa := NewPlanner(tt, PlannerOptions{})
	if _, err := pa.Plan(context.Background(), Request{Demand: ag.Clone(), Solver: SolverAStar}); err != nil {
		t.Fatal(err)
	}
	aworld := tt.Clone()
	for step := 0; step < 2; step++ {
		var delta Delta
		if step == 0 {
			delta.Scale = []topo.LinkScale{{Link: 2, Capacity: 1.25}}
		} else {
			live := liveRemovableLinks(aworld)
			delta.LinksDown = []topo.LinkID{live[rng.Intn(len(live))]}
		}
		rp, err := pa.Replan(context.Background(), delta)
		if err != nil {
			t.Fatalf("astar step %d: %v", step, err)
		}
		assertAvoidsDown(t, rp)
		var aerr error
		aworld, aerr = aworld.ApplyDelta(topo.Delta{LinksDown: delta.LinksDown, Scale: delta.Scale})
		if aerr != nil {
			t.Fatal(aerr)
		}
	}
}

// TestReplanConcurrentFallbackRebaseStats: Plan, Replan, and Stats
// racing while the replan stream mixes incremental solves, structural
// fallbacks, and proactive re-bases. Run with -race; the assertions
// check the counters stay coherent under contention.
func TestReplanConcurrentFallbackRebaseStats(t *testing.T) {
	tt := topo.DGX1()
	const chunkBytes = 25e3
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, chunkBytes)
	tau := 1.1 * chunkBytes / tt.MaxCapacity()
	pl := NewPlanner(tt, PlannerOptions{
		Defaults: Options{Tau: tau},
		Replan:   ReplanOptions{RebaseThreshold: 1e-9}, // re-base eagerly
	})
	if _, err := pl.Plan(context.Background(), Request{Demand: d, Solver: SolverLP}); err != nil {
		t.Fatal(err)
	}
	scale := kappaPreservingScale(tt, tau, chunkBytes, []float64{0.95, 0.9})
	if scale == nil {
		t.Fatal("no κ-preserving degradation exists at padded tau")
	}

	const replans = 6
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				dd := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, float64(20e3+1000*w+100*i))
				plan, err := pl.Plan(context.Background(), Request{Demand: dd, Solver: SolverLP})
				if err != nil {
					t.Errorf("plan worker %d: %v", w, err)
					return
				}
				if err := plan.Schedule.Validate(); err != nil {
					t.Errorf("plan worker %d: invalid schedule: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			st := pl.Stats()
			if st.ReplanFallbacks+st.ReBases > st.Replans {
				t.Errorf("incoherent stats snapshot: %+v", st)
				return
			}
			runtime.Gosched()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < replans; i++ {
			delta := Delta{Scale: scale}
			if i%3 == 2 {
				// A straggler whose α inflates past the epoch changes δ:
				// structural fallback.
				delta = Delta{Scale: []topo.LinkScale{{Link: 2, Alpha: 10000}}}
			}
			if _, err := pl.Replan(context.Background(), delta); err != nil {
				t.Errorf("replan %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()

	st := pl.Stats()
	if st.Replans != replans {
		t.Fatalf("Replans = %d, want %d", st.Replans, replans)
	}
	if st.ReplanFallbackStructural == 0 {
		t.Fatalf("straggler deltas should have forced structural fallbacks: %+v", st)
	}
	if st.ReplanFallbacks+st.ReBases > st.Replans {
		t.Fatalf("incoherent final stats: %+v", st)
	}
}
