package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"teccl/internal/collective"
	"teccl/internal/schedule"
	"teccl/internal/sim"
	"teccl/internal/topo"
)

// randTopo builds a small random strongly-connected topology.
func randTopo(rng *rand.Rand) *topo.Topology {
	n := 3 + rng.Intn(3)
	t := topo.New("rand")
	nodes := make([]topo.NodeID, n)
	for i := range nodes {
		nodes[i] = t.AddNode("", false)
	}
	// Ring backbone guarantees connectivity.
	for i := range nodes {
		t.AddDuplex(nodes[i], nodes[(i+1)%n], 1e9, float64(rng.Intn(3))*1e-3)
	}
	// Random extra links.
	for e := rng.Intn(4); e > 0; e-- {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			t.AddLink(nodes[a], nodes[b], 1e9, float64(rng.Intn(2))*1e-3)
		}
	}
	return t
}

// randDemand picks a random sparse demand.
func randDemand(rng *rand.Rand, n int) *collective.Demand {
	d := collective.New(n, 1+rng.Intn(2), 1e6)
	triples := 1 + rng.Intn(2*n)
	for i := 0; i < triples; i++ {
		s, dst := rng.Intn(n), rng.Intn(n)
		c := rng.Intn(d.NumChunks())
		if s != dst {
			d.Set(s, c, dst)
		}
	}
	return d
}

// TestQuickMILPSchedulesValid: across random instances, SolveMILP either
// reports infeasibility honestly or produces a schedule that passes the
// independent validator AND the continuous-time simulator.
func TestQuickMILPSchedulesValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := randTopo(rng)
		d := randDemand(rng, tp.NumNodes())
		if d.Count() == 0 {
			return true
		}
		res, err := SolveMILP(tp, d, Options{})
		if err != nil {
			return true // infeasible within estimated horizon: acceptable
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Logf("seed %d: invalid schedule: %v", seed, err)
			return false
		}
		if _, err := sim.Run(res.Schedule); err != nil {
			t.Logf("seed %d: sim failed: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMILPNotWorseThanGreedy: the MILP objective maximizes early
// delivery, so its finish epoch can never exceed the greedy incumbent's.
func TestQuickMILPNotWorseThanGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := randTopo(rng)
		d := randDemand(rng, tp.NumNodes())
		if d.Count() == 0 {
			return true
		}
		in := newInstance(tp, d, Options{})
		inc := greedyIncumbent(in)
		if inc == nil {
			return true
		}
		greedyFinish := sendsFinishEpoch(in, inc)
		res, err := SolveMILP(tp, d, Options{})
		if err != nil {
			t.Logf("seed %d: MILP failed where greedy succeeded: %v", seed, err)
			return false
		}
		if fe := res.Schedule.FinishEpoch(); fe > greedyFinish {
			t.Logf("seed %d: MILP finish %d worse than greedy %d", seed, fe, greedyFinish)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLPSchedulesValid: the LP decomposition must always produce
// validator- and simulator-clean fractional schedules.
func TestQuickLPSchedulesValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := randTopo(rng)
		n := tp.NumNodes()
		gpus := make([]int, n)
		for i := range gpus {
			gpus[i] = i
		}
		d := collective.AllToAll(n, gpus, 1, 1e6)
		res, err := SolveLP(tp, d, Options{})
		if err != nil {
			t.Logf("seed %d: LP failed: %v", seed, err)
			return false
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Logf("seed %d: invalid LP schedule: %v", seed, err)
			return false
		}
		if _, err := sim.Run(res.Schedule); err != nil {
			t.Logf("seed %d: sim failed: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterministicSolves: identical inputs give identical schedules
// (the reliability claim of §1 versus TACCL's run-to-run variance).
func TestQuickDeterministicSolves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := randTopo(rng)
		d := randDemand(rng, tp.NumNodes())
		if d.Count() == 0 {
			return true
		}
		a, errA := SolveMILP(tp, d, Options{})
		b, errB := SolveMILP(tp, d, Options{})
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		if len(a.Schedule.Sends) != len(b.Schedule.Sends) {
			return false
		}
		sortSends(a.Schedule.Sends)
		sortSends(b.Schedule.Sends)
		for i := range a.Schedule.Sends {
			if a.Schedule.Sends[i] != b.Schedule.Sends[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func sortSends(s []schedule.Send) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && lessSend(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func lessSend(a, b schedule.Send) bool {
	if a.Epoch != b.Epoch {
		return a.Epoch < b.Epoch
	}
	if a.Link != b.Link {
		return a.Link < b.Link
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Chunk < b.Chunk
}

// TestLPGreedyBoundIsFeasibleHorizon: solving with the greedy bound's
// horizon must succeed (the bound is an upper bound on the optimum).
func TestLPGreedyBoundIsFeasibleHorizon(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := randTopo(rng)
		n := tp.NumNodes()
		gpus := make([]int, n)
		for i := range gpus {
			gpus[i] = i
		}
		d := collective.AllToAll(n, gpus, 1, 1e6)
		in := newInstance(tp, d, Options{})
		bound, _ := lpGreedyBound(in)
		if bound < 0 {
			return true
		}
		_, err := SolveLP(tp, d, Options{Epochs: bound + 1})
		if err != nil {
			t.Logf("seed %d: bound %d not feasible: %v", seed, bound, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
