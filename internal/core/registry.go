package core

// registry.go lets extension packages plug additional solvers into the
// Planner dispatch without core importing them (which would cycle: the
// extensions are built on core's windowed-formulation API). The only
// registrant today is internal/horizon's rolling-horizon LP
// decomposition; it registers itself from an init, so any package that
// blank-imports it (the root facade, the daemon, the experiments) makes
// SolverHorizon available to Plan and Policy.

import (
	"context"
	"sync"

	"teccl/internal/collective"
	"teccl/internal/lp"
	"teccl/internal/topo"
)

// SessionHooks exposes a Planner session's fingerprint-keyed basis store
// to a registered solver, so per-window bases recorded by one request
// warm-start identical windows of the next. Either func may be nil.
type SessionHooks struct {
	// LookupBasis returns a clone of the stored basis for a problem with
	// this fingerprint, or nil.
	LookupBasis func(p *lp.Problem) *lp.Basis
	// RecordBasis stores the solved basis under the problem's
	// fingerprint.
	RecordBasis func(p *lp.Problem, b *lp.Basis)
}

// SolverFunc is a registered solver implementation. hooks is nil for
// one-shot (non-Planner) solves.
type SolverFunc func(ctx context.Context, t *topo.Topology, d *collective.Demand, opt Options, hooks *SessionHooks) (*Result, error)

var (
	solverRegMu sync.RWMutex
	solverReg   = map[Solver]SolverFunc{}
)

// RegisterSolver installs fn as the implementation of s in the Planner
// dispatch. Intended to be called from an init; later registrations for
// the same Solver replace earlier ones.
func RegisterSolver(s Solver, fn SolverFunc) {
	solverRegMu.Lock()
	defer solverRegMu.Unlock()
	solverReg[s] = fn
}

func registeredSolver(s Solver) SolverFunc {
	solverRegMu.RLock()
	defer solverRegMu.RUnlock()
	return solverReg[s]
}

// TransferBasis projects a solved problem's basis onto a related problem
// by variable name — the same transfer the MinimizeMakespan and batch
// chains use internally, exported for the horizon driver's
// window-to-window basis chaining (overlapping epochs share variable
// names). Returns nil when nothing projects.
func TransferBasis(src *lp.Problem, basis *lp.Basis, dst *lp.Problem) *lp.Basis {
	return hintFromSolve(src, basis).basisFor(dst)
}
