package core

import (
	"math"
	"sort"

	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// greedyIncumbent builds a feasible whole-chunk schedule by greedy
// epoch-by-epoch flooding: each epoch, each link forwards the most useful
// chunk its source holds toward nodes that still miss it. The result
// warm-starts the branch-and-bound (it prunes everything worse), playing
// the role of Gurobi's internal primal heuristics. Returns nil when the
// greedy cannot finish within the horizon.
func greedyIncumbent(in *instance) []schedule.Send {
	t := in.topo
	K := in.K
	nN := t.NumNodes()
	nC := len(in.comms)
	if nC == 0 {
		return nil
	}
	hop := in.hopDistances()

	// State.
	holds := make([][]bool, nN)           // GPU holds chunk (forwardable)
	hasOrWill := make([][]bool, nN)       // held or already in flight to node
	switchAt := make([]map[int][]int, nN) // switch: epoch -> commodity list
	for n := 0; n < nN; n++ {
		holds[n] = make([]bool, nC)
		hasOrWill[n] = make([]bool, nC)
		switchAt[n] = map[int][]int{}
	}
	missing := make([]int, nC) // destinations still missing the chunk
	needs := make([][]bool, nN)
	for n := range needs {
		needs[n] = make([]bool, nC)
	}
	for ci, cm := range in.comms {
		holds[cm.src][ci] = true
		hasOrWill[cm.src][ci] = true
		missing[ci] = len(cm.dests)
		for _, d := range cm.dests {
			needs[d][ci] = true
		}
	}
	totalMissing := 0
	for _, m := range missing {
		totalMissing += m
	}

	type arrival struct {
		node, ci int
	}
	pending := map[int][]arrival{}

	// Per-link windowed budget tracking.
	nL := t.NumLinks()
	sentAt := make([][]float64, nL) // chunks sent per epoch
	for l := range sentAt {
		sentAt[l] = make([]float64, K)
	}
	budgetLeft := func(l, k int) float64 {
		kap := in.kappa[l]
		used := 0.0
		for kk := k - kap + 1; kk <= k; kk++ {
			if kk >= 0 {
				used += sentAt[l][kk]
			}
		}
		return in.capChunks[l]*float64(kap) - used
	}

	// Deterministic link order: by ID.
	var sends []schedule.Send
	for k := 0; k < K && totalMissing > 0; k++ {
		// Materialize arrivals that become forwardable at k.
		for _, a := range pending[k] {
			if t.IsSwitch(topo.NodeID(a.node)) {
				switchAt[a.node][k] = append(switchAt[a.node][k], a.ci)
			} else {
				holds[a.node][a.ci] = true
				if needs[a.node][a.ci] {
					needs[a.node][a.ci] = false
					missing[a.ci]--
					totalMissing--
				}
			}
		}
		delete(pending, k)

		for l := 0; l < nL; l++ {
			lk := t.Link(topo.LinkID(l))
			src, dst := int(lk.Src), int(lk.Dst)
			if k+in.delta[l]+in.kappa[l]-1 > K-1 {
				continue // arrival would miss the horizon
			}
			// Candidate commodities at this link source.
			var cands []int
			if t.IsSwitch(lk.Src) {
				cands = switchAt[src][k]
			} else {
				for ci := 0; ci < nC; ci++ {
					if holds[src][ci] {
						cands = append(cands, ci)
					}
				}
			}
			// Filter: receiver must miss the chunk and the transfer must
			// help some destination still missing it.
			type scored struct {
				ci    int
				score float64
			}
			var useful []scored
			for _, ci := range cands {
				if hasOrWill[dst][ci] && !t.IsSwitch(lk.Dst) {
					continue
				}
				if missing[ci] == 0 {
					continue
				}
				if int(lk.Dst) == in.comms[ci].src {
					continue
				}
				// Score: strongly prefer direct delivery; then prefer
				// moving closer to the nearest missing destination.
				best := math.Inf(1)
				direct := false
				for _, dd := range in.comms[ci].dests {
					if !needs[dd][ci] {
						continue
					}
					if dd == dst {
						direct = true
						best = 0
						break
					}
					if h := hop[dst][dd]; h < best {
						// Only useful if it gets closer.
						if h < hop[src][dd] {
							best = h
						}
					}
				}
				if !direct && math.IsInf(best, 1) {
					continue
				}
				useful = append(useful, scored{ci, best})
			}
			sort.Slice(useful, func(i, j int) bool {
				if useful[i].score != useful[j].score {
					return useful[i].score < useful[j].score
				}
				return useful[i].ci < useful[j].ci
			})
			for _, u := range useful {
				if budgetLeft(l, k) < 1-1e-9 {
					break
				}
				ci := u.ci
				sentAt[l][k]++
				sends = append(sends, schedule.Send{
					Src: in.comms[ci].src, Chunk: in.comms[ci].chunk,
					Link: topo.LinkID(l), Epoch: k, Fraction: 1,
				})
				fwd := k + in.delta[l] + in.kappa[l]
				pending[fwd] = append(pending[fwd], arrival{dst, ci})
				if !t.IsSwitch(lk.Dst) {
					hasOrWill[dst][ci] = true
				}
			}
		}
	}

	// Drain arrivals already in flight.
	for k := K; totalMissing > 0; k++ {
		arr, ok := pending[k]
		if !ok {
			break
		}
		for _, a := range arr {
			if !t.IsSwitch(topo.NodeID(a.node)) && needs[a.node][a.ci] {
				needs[a.node][a.ci] = false
				missing[a.ci]--
				totalMissing--
			}
		}
		delete(pending, k)
	}
	if totalMissing > 0 {
		return nil
	}
	return sends
}
