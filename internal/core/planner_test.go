package core

// Planner session tests: cross-request reuse (schedule replay, warm
// bases, epoch-estimate caching), policy routing, per-request overrides,
// and context handling through the session entry point.

import (
	"context"
	"errors"
	"testing"

	"teccl/internal/collective"
	"teccl/internal/topo"
)

func TestPlannerReplaysIdenticalLPRequest(t *testing.T) {
	tt := topo.DGX1()
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{})

	first, err := pl.Plan(context.Background(), Request{Demand: d})
	if err != nil {
		t.Fatal(err)
	}
	if first.Solver != SolverLP {
		t.Fatalf("solver = %v, want lp", first.Solver)
	}
	if first.CacheHit {
		t.Fatal("first request claims a cache hit")
	}
	second, err := pl.Plan(context.Background(), Request{Demand: d.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("identical second request was not replayed")
	}
	if second.Objective != first.Objective {
		t.Fatalf("replayed objective %g != solved %g", second.Objective, first.Objective)
	}
	if err := second.Schedule.Validate(); err != nil {
		t.Fatalf("replayed schedule invalid: %v", err)
	}
	st := pl.Stats()
	if st.Requests != 2 || st.ScheduleReplays != 1 {
		t.Fatalf("stats = %+v, want 2 requests / 1 replay", st)
	}
	if st.EpochCacheHits == 0 {
		t.Fatalf("stats = %+v, want epoch-estimate cache hits on the repeat", st)
	}
}

func TestPlannerWarmStartsRelatedLPRequests(t *testing.T) {
	// Different chunk counts produce different models (no replay), but
	// the variable names overlap, so the second request must resume from
	// the first's basis.
	tt := topo.DGX1()
	pl := NewPlanner(tt, PlannerOptions{})
	for i, chunks := range []int{1, 2} {
		d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), chunks, 25e3)
		plan, err := pl.Plan(context.Background(), Request{Demand: d})
		if err != nil {
			t.Fatal(err)
		}
		if plan.CacheHit {
			t.Fatalf("request %d replayed despite a different model", i)
		}
		if i == 0 && plan.WarmStart {
			t.Fatal("first request claims a warm start")
		}
		if i == 1 && !plan.WarmStart {
			t.Fatal("second request did not warm-start from the first")
		}
	}
	if st := pl.Stats(); st.WarmStartHits != 1 {
		t.Fatalf("stats = %+v, want 1 warm-start hit", st)
	}
}

func TestPlannerWarmStartsRepeatedMILPRequest(t *testing.T) {
	tt := topo.DGX1()
	d := collective.AllGather(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{})

	first, err := pl.Plan(context.Background(), Request{Demand: d})
	if err != nil {
		t.Fatal(err)
	}
	if first.Solver != SolverMILP {
		t.Fatalf("solver = %v, want milp", first.Solver)
	}
	second, err := pl.Plan(context.Background(), Request{Demand: d.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if !second.WarmStart {
		t.Fatal("repeated MILP request did not warm-start its root")
	}
	if second.Objective != first.Objective {
		t.Fatalf("objectives diverge: %g vs %g", second.Objective, first.Objective)
	}
	if st := pl.Stats(); st.ExactBasisHits == 0 {
		t.Fatalf("stats = %+v, want an exact-fingerprint basis hit", st)
	}
}

func TestPlannerMatchesFreeFunctions(t *testing.T) {
	// The session must change the economics, never the answers.
	tt := topo.DGX1()
	pl := NewPlanner(tt, PlannerOptions{})
	atoa := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	ag := collective.AllGather(tt.NumNodes(), testGPUs(tt), 1, 25e3)

	lpRes, err := SolveLP(tt, atoa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lpPlan, err := pl.Plan(context.Background(), Request{Demand: atoa, Solver: SolverLP})
	if err != nil {
		t.Fatal(err)
	}
	if lpPlan.Objective != lpRes.Objective {
		t.Fatalf("LP objective: planner %g, free %g", lpPlan.Objective, lpRes.Objective)
	}

	milpRes, err := SolveMILP(tt, ag, Options{})
	if err != nil {
		t.Fatal(err)
	}
	milpPlan, err := pl.Plan(context.Background(), Request{Demand: ag, Solver: SolverMILP})
	if err != nil {
		t.Fatal(err)
	}
	if milpPlan.Objective != milpRes.Objective {
		t.Fatalf("MILP objective: planner %g, free %g", milpPlan.Objective, milpRes.Objective)
	}
}

func TestPlannerSolverOverrideAndPolicy(t *testing.T) {
	tt := topo.DGX1()
	ag := collective.AllGather(tt.NumNodes(), testGPUs(tt), 1, 25e3)

	// Session policy pins A*; the request override forces the MILP.
	pl := NewPlanner(tt, PlannerOptions{Policy: ForceAStar})
	plan, err := pl.Plan(context.Background(), Request{Demand: ag})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Solver != SolverAStar {
		t.Fatalf("policy routing: got %v, want astar", plan.Solver)
	}
	plan, err = pl.Plan(context.Background(), Request{Demand: ag, Solver: SolverMILP})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Solver != SolverMILP {
		t.Fatalf("request override: got %v, want milp", plan.Solver)
	}
}

func TestPlannerRequestOptionsOverride(t *testing.T) {
	tt := topo.DGX1()
	d := collective.AllGather(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{Defaults: Options{GapLimit: 0.3}})
	opt := Options{} // exact solve for this one request
	plan, err := pl.Plan(context.Background(), Request{Demand: d, Options: &opt})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Optimal {
		t.Fatalf("per-request exact solve returned gap %g", plan.Gap)
	}
}

func TestPlannerCancelledContext(t *testing.T) {
	tt, d := hardLPInstance()
	pl := NewPlanner(tt, PlannerOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := pl.Plan(ctx, Request{Demand: d})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrap of context.Canceled", err)
	}
}

func TestPlannerReplayRespectsMinimizeMakespan(t *testing.T) {
	// The replay cache keys on the built model, which MinimizeMakespan
	// does not alter — the flag drives post-solve refinement. A request
	// asking for the refinement must not be served an earlier unrefined
	// schedule (and vice versa).
	tt := topo.DGX1()
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{})

	plain, err := pl.Plan(context.Background(), Request{Demand: d})
	if err != nil {
		t.Fatal(err)
	}
	mk := Options{MinimizeMakespan: true}
	refined, err := pl.Plan(context.Background(), Request{Demand: d.Clone(), Options: &mk})
	if err != nil {
		t.Fatal(err)
	}
	if refined.CacheHit {
		t.Fatal("MinimizeMakespan request replayed a non-makespan schedule")
	}
	if refined.Schedule.FinishEpoch() > plain.Schedule.FinishEpoch() {
		t.Fatalf("refined finish %d worse than plain %d",
			refined.Schedule.FinishEpoch(), plain.Schedule.FinishEpoch())
	}
	// A repeat of the refined request may replay — from the refined entry.
	again, err := pl.Plan(context.Background(), Request{Demand: d.Clone(), Options: &mk})
	if err != nil {
		t.Fatal(err)
	}
	if again.Schedule.FinishEpoch() != refined.Schedule.FinishEpoch() {
		t.Fatalf("repeat refined finish %d != %d", again.Schedule.FinishEpoch(), refined.Schedule.FinishEpoch())
	}
}

func TestPlannerRequiresDemand(t *testing.T) {
	pl := NewPlanner(topo.DGX1(), PlannerOptions{})
	if _, err := pl.Plan(context.Background(), Request{}); err == nil {
		t.Fatal("nil demand accepted")
	}
}

func TestPlannerClose(t *testing.T) {
	tt := topo.DGX1()
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{})

	plan, err := pl.Plan(context.Background(), Request{Demand: d})
	if err != nil {
		t.Fatal(err)
	}
	before := pl.Stats()
	if err := pl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := pl.Close(); err != nil {
		t.Fatalf("Close not idempotent: %v", err)
	}
	if _, err := pl.Plan(context.Background(), Request{Demand: d}); !errors.Is(err, ErrPlannerClosed) {
		t.Fatalf("Plan after Close: err = %v, want ErrPlannerClosed", err)
	}
	if _, err := pl.Replan(context.Background(), Delta{}); !errors.Is(err, ErrPlannerClosed) {
		t.Fatalf("Replan after Close: err = %v, want ErrPlannerClosed", err)
	}
	// Stats and Topology survive Close: the eviction path of a serving
	// tier logs both after releasing the caches.
	after := pl.Stats()
	if after.Requests != before.Requests {
		t.Fatalf("stats lost across Close: %+v vs %+v", after, before)
	}
	if pl.Topology() == nil {
		t.Fatal("Topology nil after Close")
	}
	_ = plan
}

func TestPlannerCloseKeepsCacheHitCounters(t *testing.T) {
	// Cache-hit counters live in the per-topology state bundle that
	// Close (and Replan) swap out; folding must preserve them.
	tt := topo.DGX1()
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{})
	for i := 0; i < 2; i++ {
		if _, err := pl.Plan(context.Background(), Request{Demand: d.Clone()}); err != nil {
			t.Fatal(err)
		}
	}
	before := pl.Stats()
	if before.EpochCacheHits == 0 {
		t.Fatalf("stats = %+v, want epoch-estimate cache hits before Close", before)
	}
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	after := pl.Stats()
	if after.EpochCacheHits != before.EpochCacheHits || after.TauCacheHits != before.TauCacheHits {
		t.Fatalf("cache-hit counters dropped across Close: %+v vs %+v", after, before)
	}
}

func TestPlannerCloseConcurrentWithPlan(t *testing.T) {
	// Close racing in-flight Plans must neither panic nor corrupt the
	// closed session; late Plans fail cleanly with ErrPlannerClosed.
	tt := topo.DGX1()
	d := collective.AllToAll(tt.NumNodes(), testGPUs(tt), 1, 25e3)
	pl := NewPlanner(tt, PlannerOptions{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			_, err := pl.Plan(context.Background(), Request{Demand: d.Clone()})
			if err != nil && !errors.Is(err, ErrPlannerClosed) {
				t.Errorf("racing Plan: %v", err)
				return
			}
		}
	}()
	if _, err := pl.Plan(context.Background(), Request{Demand: d}); err != nil {
		t.Fatal(err)
	}
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
}
