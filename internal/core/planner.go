package core

// planner.go is the session layer: a long-lived Planner pinned to one
// topology that answers a stream of solve requests, reusing everything
// expensive that survives from one request to the next — tau
// derivations, epoch estimates (Algorithm 1 runs Floyd–Warshall), solved
// schedules of structurally identical LP models, and warm-start bases
// keyed by problem fingerprint or chained by variable name. The free
// functions (SolveLP and friends) remain as stateless one-shot wrappers;
// a service holding a Planner per topology gets the same answers with
// the cold-start work amortized across its request stream.
//
// # Session lifecycle
//
// A session has three phases:
//
//  1. NewPlanner snapshots the topology (Clone) and allocates empty
//     caches; nothing expensive happens until the first request.
//  2. Plan and Replan calls, freely concurrent, populate the caches
//     (schedule replay, warm bases, estimates) and maintain the replan
//     incumbent. Replan swaps the entire cache bundle atomically onto
//     the churned topology, so cached state can never outlive the
//     topology it was derived from.
//  3. Close marks the session closed and releases the retained state —
//     the schedule-replay cache, the warm-basis store, the name-matched
//     basis chains, and the replan incumbent, each of which pins whole
//     LP models. Subsequent Plan/Replan calls fail with
//     ErrPlannerClosed; calls already in flight finish normally (their
//     results are simply not recorded back into the session). Close is
//     idempotent, and Stats/Topology keep working on a closed session,
//     so a serving tier can still report and log a session it has just
//     evicted.
//
// Long-lived processes that open sessions dynamically (one per served
// topology) must Close evicted sessions: the caches are bounded per
// session, but a session's floor is the retained incumbent model, which
// for large time-expanded LPs is tens of MB.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"teccl/internal/collective"
	"teccl/internal/lp"
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// PlannerOptions configures a session.
type PlannerOptions struct {
	// Defaults are the session's base solve options, used for every
	// request that does not carry its own.
	Defaults Options
	// Policy picks the formulation for requests that do not force one;
	// nil means DefaultPolicy{}.
	Policy Policy
	// Replan tunes the bounded-regret budget and adaptive re-basing of
	// Planner.Replan; the zero value means sensible defaults.
	Replan ReplanOptions
}

// Request is one unit of work for a Planner session.
type Request struct {
	// Demand is the collective demand to schedule. Required.
	Demand *collective.Demand
	// Options, when non-nil, replaces the session defaults for this
	// request (it is a full replacement, not a merge).
	Options *Options
	// Solver forces a formulation for this request; SolverAuto defers
	// to the session policy.
	Solver Solver
	// Progress, when non-nil, overrides the options' progress hook.
	Progress ProgressFunc
}

// Plan is a solved request: the Result plus provenance about how the
// session produced it.
type Plan struct {
	*Result
	// Solver is the formulation that produced the result.
	Solver Solver
	// CacheHit marks a request served by replaying the schedule of a
	// structurally identical earlier request (no simplex ran).
	CacheHit bool
	// WarmStart marks a solve whose main simplex run resumed from a
	// basis of an earlier request instead of starting cold.
	WarmStart bool
	// CrashStart marks a cold solve whose main simplex run was seeded
	// from the greedy schedule's flow support (a crash basis) instead of
	// the all-slack identity; see Options.Crash.
	CrashStart bool
	// Replanned marks a plan produced by Replan: the incumbent request
	// re-solved against the churned topology/demand.
	Replanned bool
	// ReplanFallback marks a replan that could not reoptimize the
	// incumbent incrementally (structural churn, a sour or infeasible
	// incremental solve, a bounded-regret budget abort, or an incumbent
	// with no incremental payload) and degraded to a cold solve of the
	// edited request.
	ReplanFallback bool
	// ReBased marks a replan served by a proactive crash-started re-base:
	// the session detected that the incremental advantage had decayed
	// (see ReplanOptions.RebaseThreshold) and chose a cold solve to
	// refresh the incumbent basis. ReBased plans are not fallbacks — the
	// session skipped the incremental attempt on purpose.
	ReBased bool
}

// PlannerStats are cumulative session counters, retrievable at any time
// via Planner.Stats.
type PlannerStats struct {
	// Requests counts Plan calls that reached a solver.
	Requests int
	// ScheduleReplays counts requests served from the schedule cache
	// (Plan.CacheHit).
	ScheduleReplays int
	// WarmStartHits counts solves that resumed from an earlier
	// request's basis (Plan.WarmStart).
	WarmStartHits int
	// CrashStarts counts cold solves seeded from a greedy crash basis
	// (Plan.CrashStart).
	CrashStarts int
	// ExactBasisHits counts warm starts served verbatim from the
	// fingerprint-keyed basis store (a subset of WarmStartHits).
	ExactBasisHits int
	// TauCacheHits / EpochCacheHits count derived-state cache hits.
	TauCacheHits   int
	EpochCacheHits int
	// Replans counts Replan calls that reached a solve (incremental or
	// fallback).
	Replans int
	// ReplanPivots totals the simplex iterations of incremental replans —
	// the dual-simplex pivots that carried each incumbent basis to the
	// churned optimum.
	ReplanPivots int
	// ReplanIncrementalPivots mirrors ReplanPivots under the name the
	// churn-stream tooling reports it by, next to ColdEstimatePivots.
	ReplanIncrementalPivots int
	// ColdEstimatePivots is the session's current EWMA estimate of one
	// cold solve's pivot count — the baseline the bounded-regret budget
	// and the re-base trigger compare incremental replans against.
	ColdEstimatePivots int
	// ReplanFallbacks counts replans that degraded to a cold solve.
	ReplanFallbacks int
	// Per-kind fallback counters (each fallback increments exactly one):
	// Structural — the churn changed the model's shape (δ/κ at the
	// incumbent τ, topology growth, or demand churn the incumbent form
	// cannot absorb); Budget — the incremental attempt was aborted by the
	// bounded-regret pivot/deadline budget; Sour — the incremental solve
	// came back non-optimal or its schedule failed re-validation; NoModel
	// — the incumbent carried no incremental payload (a replayed schedule
	// or an empty solve).
	ReplanFallbackStructural int
	ReplanFallbackBudget     int
	ReplanFallbackSour       int
	ReplanFallbackNoModel    int
	// ReBases counts replans served by a proactive crash-started re-base
	// (Plan.ReBased); they are not included in ReplanFallbacks.
	ReBases int
}

// Planner is a long-lived solving session pinned to one topology.
// Methods are safe for concurrent use. The session snapshots the
// topology at NewPlanner (and again at every Replan), so the caller may
// keep mutating its own *Topology without corrupting cached state.
type Planner struct {
	opt PlannerOptions

	// replanMu serializes Replan calls (Plan calls keep flowing; they
	// capture a consistent state snapshot under mu).
	replanMu sync.Mutex

	mu        sync.Mutex
	closed    bool
	state     *sessionState
	lastLP    sessionBasis // name-matched warm-start chain, LP form
	lastMILP  sessionBasis // name-matched warm-start chain, MILP form
	incumbent *incumbentState
	stats     PlannerStats

	// Bounded-regret bookkeeping (replan.go, all under mu): EWMAs of
	// observed cold-solve cost seed the incremental pivot/deadline
	// budget; the incremental-pivot EWMA tracks the advantage whose decay
	// triggers a proactive re-base.
	coldPivotEWMA float64
	coldWallEWMA  float64 // seconds
	incPivotEWMA  float64
	incReplans    int
	rebasePending bool
}

// sessionState is everything a session derives from its current
// topology: the snapshot itself plus every per-topology cache. Replan
// swaps the whole bundle atomically, so a cache entry can never outlive
// the topology it was computed against — the replay/basis/estimate
// staleness bugs all reduce to violating that invariant.
type sessionState struct {
	t         *topo.Topology
	numGPU    int
	est       *estimateCache
	lpCache   *batchCache // exact-structure schedule replay
	warmBases *basisStore // exact-fingerprint warm bases
}

func newSessionState(t *topo.Topology) *sessionState {
	return &sessionState{
		t:      t,
		numGPU: len(t.GPUs()),
		est:    newEstimateCache(),
		// Sessions are long-lived: bound the schedule-replay cache (each
		// entry retains a full model) the same way the basis store is.
		lpCache:   &batchCache{limit: basisStoreLimit},
		warmBases: newBasisStore(),
	}
}

// sessionBasis remembers the most recent solved model of one form for
// name-matched basis transfer into the next request.
type sessionBasis struct {
	prob  *lp.Problem
	basis *lp.Basis
}

// incumbentState is the session's memory of the last successful Plan:
// the request (demand snapshot, resolved options, forced solver) for
// fallback re-solves, plus the formulation-specific incremental payload
// Replan perturbs — the LP model and optimal basis, the MILP model with
// its root basis and integer incumbent, or the A* instance with its
// round schedule.
type incumbentState struct {
	demand *collective.Demand // snapshot of the request demand
	opt    Options            // resolved request options (estimates cleared)
	solver Solver             // the request's forced solver (SolverAuto when policy-chosen)

	model *lpModel  // LP incumbents; nil otherwise
	basis *lp.Basis // final simplex basis of model.p

	// MILP incumbents: Replan re-roots branch-and-bound from the repaired
	// root-relaxation basis and re-validates the integer incumbent's
	// sends against the churned topology.
	mmodel *milpModel
	mbasis *lp.Basis

	// A* incumbents: Replan replays unaffected rounds through the state
	// recurrence and re-solves only rounds touching churned links.
	ain     *instance
	aKr     int
	aRounds int
	aGap    float64

	// sends is the incumbent schedule of the MILP and A* forms (the LP
	// form replans from its basis instead).
	sends []schedule.Send
}

// NewPlanner opens a session on a topology. The topology is snapshotted
// (Clone), so the caller's value may be mutated freely afterwards.
func NewPlanner(t *topo.Topology, opt PlannerOptions) *Planner {
	return &Planner{
		opt:   opt,
		state: newSessionState(t.Clone()),
	}
}

// snapshot captures the current session state for one request.
func (pl *Planner) snapshot() *sessionState {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.state
}

// snapshotOpen captures the session state for one solving request,
// refusing closed sessions.
func (pl *Planner) snapshotOpen() (*sessionState, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.closed {
		return nil, ErrPlannerClosed
	}
	return pl.state, nil
}

// ErrPlannerClosed is returned by Plan and Replan on a session that has
// been Closed.
var ErrPlannerClosed = errors.New("core: planner session is closed")

// Close releases the session's retained state — the schedule-replay
// cache, the warm-basis store, the name-matched basis chains, and the
// replan incumbent (each pins whole LP models) — and marks the session
// closed: subsequent Plan and Replan calls return ErrPlannerClosed.
// Calls already in flight finish normally; their results are not
// recorded back into the session. Close is idempotent and safe for
// concurrent use. Stats and Topology keep working after Close (the
// cumulative counters and the final topology snapshot survive), so a
// serving tier can report a session it has just evicted.
func (pl *Planner) Close() error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.closed {
		return nil
	}
	pl.closed = true
	pl.foldStateHitsLocked(pl.state)
	// Swap in a fresh empty state (same topology) rather than nil it
	// out: concurrent Plan/Topology calls hold or take state pointers,
	// and the swap unpins every cached schedule and basis at once.
	pl.state = newSessionState(pl.state.t)
	pl.lastLP, pl.lastMILP = sessionBasis{}, sessionBasis{}
	pl.incumbent = nil
	return nil
}

// foldStateHitsLocked folds the cache-hit counters of a session state
// being retired (by Close or a Replan state swap) into the cumulative
// stats, so hit counts survive the swap. Callers hold pl.mu.
func (pl *Planner) foldStateHitsLocked(st *sessionState) {
	pl.stats.ExactBasisHits += st.warmBases.hitCount()
	tauHits, epochHits := st.est.hitCounts()
	pl.stats.TauCacheHits += tauHits
	pl.stats.EpochCacheHits += epochHits
}

// Topology returns the session's current topology snapshot (the churned
// one after Replan calls). Callers must not mutate it.
func (pl *Planner) Topology() *topo.Topology { return pl.snapshot().t }

// Stats snapshots the session counters.
func (pl *Planner) Stats() PlannerStats {
	pl.mu.Lock()
	st := pl.stats
	st.ReplanIncrementalPivots = st.ReplanPivots
	st.ColdEstimatePivots = int(pl.coldPivotEWMA + 0.5)
	state := pl.state
	pl.mu.Unlock()
	// Cumulative counters plus the live state's hits: Replan and Close
	// fold a retiring state's hit counts into pl.stats, so the totals
	// survive cache-bundle swaps.
	st.ExactBasisHits += state.warmBases.hitCount()
	tauHits, epochHits := state.est.hitCounts()
	st.TauCacheHits += tauHits
	st.EpochCacheHits += epochHits
	return st
}

// Plan solves one request. The context is honored end to end: the
// simplex iteration loops, the branch-and-bound node loop and worker
// pool, and the A* round loop all watch it, so a cancellation (or the
// caller's deadline) interrupts the solve promptly with an error
// wrapping context.Cause(ctx) — alongside a partial Plan when the
// search had an incumbent in hand. Options.TimeLimit is layered onto
// ctx as a derived deadline, so the budget is enforced identically for
// all three formulations.
func (pl *Planner) Plan(ctx context.Context, req Request) (*Plan, error) {
	if req.Demand == nil {
		return nil, errors.New("core: Plan requires a Demand")
	}
	st, err := pl.snapshotOpen()
	if err != nil {
		return nil, err
	}
	opt := pl.opt.Defaults
	if req.Options != nil {
		opt = *req.Options
	}
	if req.Progress != nil {
		opt.Progress = req.Progress
	}
	// incOpt is what Replan's fallback re-solve runs with: the resolved
	// request options, with a fresh TimeLimit budget and without the old
	// state's estimate cache.
	incOpt := opt
	incOpt.estimates = nil
	opt.estimates = st.est

	solver := req.Solver
	if solver == SolverAuto {
		solver = pl.choose(st, req.Demand, opt)
	}
	ctx, cancel := withTimeLimit(ctx, opt.TimeLimit)
	defer cancel()
	opt.TimeLimit = 0 // already layered onto ctx; avoid re-derivation below

	pl.mu.Lock()
	pl.stats.Requests++
	pl.mu.Unlock()

	switch solver {
	case SolverLP:
		plan, m, b, err := pl.planLP(ctx, st, req.Demand, opt)
		if err == nil && plan != nil {
			pl.observeCold(plan.Result)
			pl.recordIncumbent(st, req, incOpt, incumbentState{model: m, basis: b})
		}
		return plan, err
	case SolverMILP:
		plan, m, b, err := pl.planMILP(ctx, st, req.Demand, opt)
		if err == nil && plan != nil {
			pl.observeCold(plan.Result)
			inc := incumbentState{mmodel: m, mbasis: b}
			if m != nil && b != nil && plan.Schedule != nil {
				inc.sends = plan.Schedule.Sends
			}
			pl.recordIncumbent(st, req, incOpt, inc)
		}
		return plan, err
	case SolverAStar:
		res, aux, err := solveAStar(ctx, st.t, req.Demand, opt)
		if res == nil {
			return nil, err
		}
		if err == nil {
			pl.observeCold(res)
			inc := incumbentState{}
			if aux != nil && res.Schedule != nil {
				inc.ain = aux.in
				inc.aKr = aux.Kr
				inc.aRounds = res.Rounds
				inc.aGap = res.Gap
				inc.sends = res.Schedule.Sends
			}
			pl.recordIncumbent(st, req, incOpt, inc)
		}
		return &Plan{Result: res, Solver: SolverAStar}, err
	case SolverHorizon:
		fn := registeredSolver(SolverHorizon)
		if fn == nil {
			return nil, errors.New("core: no rolling-horizon solver registered (import teccl/internal/horizon)")
		}
		// The hooks hand the driver the session's fingerprint-keyed basis
		// store: each window's basis recorded by one request warm-starts
		// the identical window of the next.
		hooks := &SessionHooks{LookupBasis: st.warmBases.lookup, RecordBasis: st.warmBases.record}
		res, err := fn(ctx, st.t, req.Demand, opt, hooks)
		if res == nil {
			return nil, err
		}
		pl.mu.Lock()
		if res.WarmStarted {
			pl.stats.WarmStartHits++
		}
		pl.mu.Unlock()
		if err == nil {
			pl.observeCold(res)
			// No incremental payload: Replan degrades to a cold horizon
			// re-solve of the recorded request.
			pl.recordIncumbent(st, req, incOpt, incumbentState{})
		}
		return &Plan{Result: res, Solver: SolverHorizon, WarmStart: res.WarmStarted}, err
	default:
		return nil, fmt.Errorf("core: policy chose unknown solver %v", solver)
	}
}

// recordIncumbent remembers a successful request as the session's replan
// target. The incremental payload in inc is form-specific and may be
// empty (replays and empty solves replan by cold re-solve). A request
// solved against an already-replaced session state (a Plan racing a
// Replan) is not recorded: its model references the pre-churn topology.
func (pl *Planner) recordIncumbent(st *sessionState, req Request, incOpt Options, inc incumbentState) {
	inc.demand = req.Demand.Clone()
	inc.opt = incOpt
	inc.solver = req.Solver
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.state != st {
		return
	}
	pl.incumbent = &inc
}

// choose resolves the session policy for one request.
func (pl *Planner) choose(st *sessionState, d *collective.Demand, opt Options) Solver {
	tau := opt.Tau
	if tau == 0 {
		tau = st.est.deriveTau(st.t, d.ChunkBytes, opt.EpochMode, opt.EpochMultiplier)
	}
	in := PolicyInput{
		Topology:  st.t,
		Demand:    d,
		Options:   opt,
		NumGPUs:   st.numGPU,
		Multicast: d.HasMulticast(),
		Tau:       tau,
		EstimateEpochs: func() int {
			if opt.Epochs > 0 {
				return opt.Epochs
			}
			return st.est.estimateEpochs(st.t, d, tau)
		},
	}
	p := pl.opt.Policy
	if p == nil {
		p = DefaultPolicy{}
	}
	s := p.Choose(in)
	if s == SolverAuto {
		s = DefaultPolicy{}.Choose(in)
	}
	// A policy may route to the rolling-horizon solver without the
	// implementation linked in; degrade to the monolithic LP rather than
	// failing the request. Explicitly forced SolverHorizon requests skip
	// choose() and do fail, so tests see the missing registration.
	if s == SolverHorizon && registeredSolver(SolverHorizon) == nil {
		s = SolverLP
	}
	return s
}

// planLP serves an LP-form request through the session caches: an
// identical model replays its schedule, anything else warm-starts from
// the fingerprint store or the previous LP's basis by name.
func (pl *Planner) planLP(ctx context.Context, st *sessionState, d *collective.Demand, opt Options) (*Plan, *lpModel, *lp.Basis, error) {
	pl.mu.Lock()
	last := pl.lastLP
	pl.mu.Unlock()
	hint := sessionHint(last.prob, last.basis, st.warmBases)

	res, m, b, err := st.lpCache.solvePoint(ctx, st.t, d, opt, hint)

	pl.mu.Lock()
	// A Replan may have swapped the session state mid-solve; a model
	// built against the old topology must not seed the new chain.
	if err == nil && m != nil && pl.state == st {
		pl.lastLP = sessionBasis{prob: m.p, basis: b}
	}
	if res != nil {
		if res.Reused {
			pl.stats.ScheduleReplays++
		}
		if res.WarmStarted {
			pl.stats.WarmStartHits++
		}
		if res.CrashStarted {
			pl.stats.CrashStarts++
		}
	}
	pl.mu.Unlock()
	if err == nil && m != nil {
		st.warmBases.record(m.p, b)
	}
	if res == nil {
		return nil, nil, nil, err
	}
	// A cancelled makespan refinement returns the last complete schedule
	// alongside the cancellation error; pass both through.
	return &Plan{Result: res, Solver: SolverLP, CacheHit: res.Reused,
		WarmStart: res.WarmStarted, CrashStart: res.CrashStarted}, m, b, err
}

// planMILP serves a MILP-form request, warm-starting the root relaxation
// from the fingerprint store or the previous MILP's root basis by name.
func (pl *Planner) planMILP(ctx context.Context, st *sessionState, d *collective.Demand, opt Options) (*Plan, *milpModel, *lp.Basis, error) {
	pl.mu.Lock()
	last := pl.lastMILP
	pl.mu.Unlock()
	hint := sessionHint(last.prob, last.basis, st.warmBases)

	res, m, b, err := solveMILP(ctx, st.t, d, opt, hint)

	pl.mu.Lock()
	if m != nil && b != nil && pl.state == st {
		pl.lastMILP = sessionBasis{prob: m.p, basis: b}
	}
	if res != nil {
		if res.WarmStarted {
			pl.stats.WarmStartHits++
		}
		if res.CrashStarted {
			pl.stats.CrashStarts++
		}
	}
	pl.mu.Unlock()
	if m != nil && b != nil {
		st.warmBases.record(m.p, b)
	}
	if res == nil {
		return nil, nil, nil, err
	}
	return &Plan{Result: res, Solver: SolverMILP,
		WarmStart: res.WarmStarted, CrashStart: res.CrashStarted}, m, b, err
}

// estimateCache memoizes the per-topology derived quantities of a
// session: tau derivations and epoch estimates (the latter run
// Floyd–Warshall plus per-node load scans). Keys do not include the
// topology — the session pins one.
type estimateCache struct {
	mu        sync.Mutex
	tau       map[tauKey]float64
	epochs    map[epochKey]int
	tauHits   int
	epochHits int
}

type tauKey struct {
	chunkBytes float64
	mode       EpochMode
	multiplier float64
}

type epochKey struct {
	demand uint64 // collective.Demand.Fingerprint
	tau    float64
}

func newEstimateCache() *estimateCache {
	return &estimateCache{
		tau:    make(map[tauKey]float64),
		epochs: make(map[epochKey]int),
	}
}

func (c *estimateCache) deriveTau(t *topo.Topology, chunkBytes float64, mode EpochMode, multiplier float64) float64 {
	k := tauKey{chunkBytes, mode, multiplier}
	c.mu.Lock()
	if v, ok := c.tau[k]; ok {
		c.tauHits++
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	v := DeriveTau(t, chunkBytes, mode, multiplier)
	c.mu.Lock()
	c.tau[k] = v
	c.mu.Unlock()
	return v
}

func (c *estimateCache) estimateEpochs(t *topo.Topology, d *collective.Demand, tau float64) int {
	k := epochKey{d.Fingerprint(), tau}
	c.mu.Lock()
	if v, ok := c.epochs[k]; ok {
		c.epochHits++
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	v := EstimateEpochs(t, d, tau)
	c.mu.Lock()
	c.epochs[k] = v
	c.mu.Unlock()
	return v
}

func (c *estimateCache) hitCounts() (tau, epochs int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tauHits, c.epochHits
}
