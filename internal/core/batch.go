package core

// batch.go is the schedule-layer batching of sweep solves: the
// experiment harness (Fig 5's size sweeps, Table 4's chunk-size
// columns) solves the same topology over and over with demands that
// differ only in scale, and rebuilding the full time-expanded model per
// point throws away everything the previous point learned. BatchSolveLP
// solves such a sweep against shared state instead:
//
//   - Structurally identical points are solved once. Under a
//     proportional epoch mode the LP is stated in chunk units, so a
//     chunk-size sweep whose tau scales with the chunk produces
//     bit-identical models that differ only in the epoch duration; the
//     optimal schedule is replayed with the new tau for free. Identity
//     is established by lp.Problem.Fingerprint plus an exact EqualTo
//     confirmation, and every replayed schedule is re-validated against
//     its own demand before being trusted.
//   - The remaining points chain bases: each worker's chain passes the
//     previous point's optimal basis (matched by variable name, as the
//     MinimizeMakespan loop already does across horizons) into the next
//     solve, which then reoptimizes with the dual simplex instead of
//     starting cold.
//   - Points fan out over a worker pool (BatchOptions.Workers), the
//     same knob that parallelizes branch-and-bound node evaluation.

import (
	"context"
	"sync"
	"time"

	"teccl/internal/collective"
	"teccl/internal/lp"
	"teccl/internal/schedule"
	"teccl/internal/topo"
)

// BatchOptions tunes a batched sweep solve.
type BatchOptions struct {
	// Workers fans the sweep points out over this many goroutines; 0 or
	// 1 solves the whole sweep as one serial chain. Points are assigned
	// to workers in contiguous blocks so neighboring points (the ones
	// most likely to share structure) stay in one basis chain.
	Workers int
}

// batchEntry caches the outcome of one solved sweep point for replay by
// structurally identical later points. The schedule is stored in chunk
// units (sends, epochs), which is exactly the part that coincides; only
// the epoch duration differs between identical points.
type batchEntry struct {
	base      *lp.Problem // the built base model (pre-makespan), for exact identity checks
	sends     []schedule.Send
	numEpochs int
	epc       []int // EpochsPerChunk of the solved schedule
	objective float64
	gap       float64
	optimal   bool
	// makespan records whether the entry was solved with
	// MinimizeMakespan. The flag is consumed after the model is built,
	// so it is invisible to the fingerprint; a Planner session mixing
	// per-request options must not replay an unrefined schedule into a
	// request that asked for the refinement (or vice versa).
	makespan bool
}

// batchCache indexes solved points by model fingerprint. With a zero
// limit it grows with the sweep it serves (one bounded call); a
// long-lived Planner session sets a limit, past which storing evicts an
// arbitrary fingerprint bucket (each retained entry holds a full
// lp.Problem, so an unbounded serving session would otherwise grow
// linearly with distinct request shapes).
type batchCache struct {
	mu      sync.Mutex
	entries map[uint64][]*batchEntry
	limit   int
	size    int
}

func (c *batchCache) lookup(fp uint64, base *lp.Problem, makespan bool) *batchEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries[fp] {
		if e.makespan == makespan && e.base.EqualTo(base) {
			return e
		}
	}
	return nil
}

func (c *batchCache) store(fp uint64, e *batchEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[uint64][]*batchEntry)
	}
	if c.limit > 0 && c.size >= c.limit {
		for k := range c.entries {
			if k == fp {
				continue
			}
			c.size -= len(c.entries[k])
			delete(c.entries, k)
			break
		}
	}
	c.entries[fp] = append(c.entries[fp], e)
	c.size++
}

// BatchSolveLP solves the LP form (§4.1) for every demand in the sweep,
// reusing solver state across points as described at the top of the
// file. Results and errors are returned per point, aligned with demands;
// points fail independently. opt applies to every point (opt.Workers is
// the default pool size when bo.Workers is zero).
func BatchSolveLP(t *topo.Topology, demands []*collective.Demand, opt Options, bo BatchOptions) ([]*Result, []error) {
	return BatchSolveLPContext(context.Background(), t, demands, opt, bo)
}

// BatchSolveLPContext is BatchSolveLP under a context: the fan-out stops
// picking up new points once ctx is done (each unsolved point's error
// wraps context.Cause), and in-flight solves are interrupted through the
// same ctx. Options.TimeLimit remains a per-point budget, as it was when
// each point was a separate SolveLP call.
func BatchSolveLPContext(ctx context.Context, t *topo.Topology, demands []*collective.Demand, opt Options, bo BatchOptions) ([]*Result, []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*Result, len(demands))
	errs := make([]error, len(demands))
	if len(demands) == 0 {
		return results, errs
	}
	workers := bo.Workers
	if workers == 0 {
		workers = opt.Workers
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(demands) {
		workers = len(demands)
	}

	cache := &batchCache{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(demands) / workers
		hi := (w + 1) * len(demands) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var prevModel *lpModel
			var prevBasis *lp.Basis
			for i := lo; i < hi; i++ {
				if err := context.Cause(ctx); err != nil && ctx.Err() != nil {
					errs[i] = err
					continue
				}
				var hint *basisHint
				if prevModel != nil {
					hint = hintFromSolve(prevModel.p, prevBasis)
				}
				res, m, b, err := cache.solvePoint(ctx, t, demands[i], opt, hint)
				results[i], errs[i] = res, err
				if err == nil && m != nil {
					prevModel, prevBasis = m, b
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return results, errs
}

// solvePoint solves one sweep point: replayed from the cache when a
// structurally identical point was already solved, otherwise solved for
// real (warm-started from hint) and cached. Options.TimeLimit is layered
// onto ctx per point.
func (c *batchCache) solvePoint(ctx context.Context, t *topo.Topology, d *collective.Demand, opt Options, hint *basisHint) (*Result, *lpModel, *lp.Basis, error) {
	ctx, cancel := withTimeLimit(ctx, opt.TimeLimit)
	defer cancel()
	start := time.Now()
	pr := prepLP(t, d, opt)
	if pr.m == nil {
		r := emptyResult(pr.in, start)
		r.Schedule.AllowCopy = false
		return r, nil, nil, nil
	}
	fp := pr.m.p.Fingerprint()
	if e := c.lookup(fp, pr.m.p, opt.MinimizeMakespan); e != nil {
		if res := replayEntry(t, pr, e, start); res != nil {
			return res, nil, nil, nil
		}
		// A replay that fails validation (e.g. a demand whose chunk
		// numbering differs despite the identical model) falls through
		// to an honest solve.
	}
	res, m, b, err := solvePrepped(ctx, t, pr, opt, hint, start)
	if err == nil && res != nil && res.Optimal && res.Schedule != nil {
		c.store(fp, &batchEntry{
			base:      pr.m.p,
			sends:     res.Schedule.Sends,
			numEpochs: res.Schedule.NumEpochs,
			epc:       res.Schedule.EpochsPerChunk,
			objective: res.Objective,
			gap:       res.Gap,
			optimal:   res.Optimal,
			makespan:  opt.MinimizeMakespan,
		})
	}
	return res, m, b, err
}

// replayEntry re-issues a cached point's schedule under this point's
// epoch duration and demand. The sweep points coincide in chunk units,
// so only tau (and the demand the schedule serves) changes; a validation
// pass confirms the transplanted schedule really satisfies this demand,
// returning nil (solve for real) if anything disagrees.
func replayEntry(t *topo.Topology, pr *lpPrep, e *batchEntry, start time.Time) *Result {
	sch := &schedule.Schedule{
		Topo:           t,
		Demand:         pr.d,
		Tau:            pr.in.tau,
		NumEpochs:      e.numEpochs,
		Sends:          e.sends,
		AllowCopy:      false,
		EpochsPerChunk: e.epc,
	}
	if err := sch.Validate(); err != nil {
		return nil
	}
	return &Result{
		Schedule:  sch,
		Objective: e.objective,
		Gap:       e.gap,
		Optimal:   e.optimal,
		SolveTime: time.Since(start),
		Epochs:    e.numEpochs,
		Tau:       pr.in.tau,
		Reused:    true,
	}
}
