package core

// lpappend.go is the warm column-append path of the LP replanning
// layer: new demand arriving in a churn delta is priced into the
// incumbent LP model as appended variables and rows instead of forcing
// a cold rebuild. Three shapes arise, in increasing order of surgery:
//
//  1. Count bump / resurrection — the (source, destination) pair
//     already has read columns and a destination-total row (possibly
//     zeroed by an earlier drop). Widening the read columns' upper
//     bounds and raising the row's right-hand side re-admits the pair.
//  2. New pair on an existing source — fresh read columns are appended
//     and wired into the source's existing conservation rows, plus a
//     new destination-total row.
//  3. New source — a full per-source block (flow, buffer, and read
//     columns; supply, conservation, bufferless-relay, and
//     destination-total rows) is appended, mirroring buildLP exactly,
//     and its flow columns are wired into the shared windowed capacity
//     rows (creating rows for windows no existing source populated).
//
// Appends interact with the warm start through lp.Basis.Extended:
// appended columns enter nonbasic at their lower bound and appended
// rows enter with their slack basic, so the incumbent basis matrix
// stays nonsingular and the dual simplex (or the warm-start repair)
// drives out the newly infeasible equality slacks.
//
// The mirror of buildLP's emission rules here is deliberate code
// duplication: buildLP's variable creation order is pinned by the
// pivot-path benchmarks and must not be refactored to share loops with
// this file.

import (
	"errors"
	"fmt"
	"math"

	"teccl/internal/collective"
	"teccl/internal/lp"
	"teccl/internal/topo"
)

// cloneIndexes gives the model private copies of every index structure
// the append path mutates, so the incumbent model shared with the
// session stays untouched if the append (or the solve after it) fails.
// m.p, m.in, and m.dem are the caller's responsibility — the replan
// path has already swapped in clones of those.
func (m *lpModel) cloneIndexes() {
	m.sources = append([]int(nil), m.sources...)
	deep2 := func(s [][]int) [][]int {
		out := make([][]int, len(s))
		for i := range s {
			out[i] = append([]int(nil), s[i]...)
		}
		return out
	}
	deep2i32 := func(s [][]int32) [][]int32 {
		out := make([][]int32, len(s))
		for i := range s {
			out[i] = append([]int32(nil), s[i]...)
		}
		return out
	}
	deep3 := func(s [][][]int32) [][][]int32 {
		out := make([][][]int32, len(s))
		for i := range s {
			out[i] = deep2i32(s[i])
		}
		return out
	}
	m.earliest = deep2(m.earliest)
	m.fvar = deep3(m.fvar)
	m.bvar = deep3(m.bvar)
	m.rvar = deep3(m.rvar)
	m.capRow = deep2i32(m.capRow)
	m.destRow = deep2i32(m.destRow)
	m.initRow = append([]int32(nil), m.initRow...)
	m.consRow = deep3(m.consRow)
}

// tailWeights recomputes the LP objective's time-discount tail sums
// (see buildLP): tail[k] = sum_{j>=k} 1/(j+1).
func tailWeights(K int) []float64 {
	tail := make([]float64, K+1)
	for k := K - 1; k >= 0; k-- {
		tail[k] = tail[k+1] + 1/float64(k+1)
	}
	return tail
}

// appendDemand prices the demand in add that the incumbent model does
// not already carry into the model as appended columns and rows, and
// ORs add into the model's demand. An error means the new demand is
// structural for this model — the caller falls back to a cold rebuild —
// and leaves the model's demand untouched (the model carries private
// index clones, discarded by the caller on failure).
func (m *lpModel) appendDemand(add *collective.Demand) error {
	in := m.in
	t := in.topo
	d := in.demand
	K := in.K
	nN := t.NumNodes()

	// Gates: model shapes the append cannot mirror. NoBuffers prunes
	// buffer columns per demand pattern, buffer-limit rows would need
	// the new buffer columns added to every limit row, and the priority
	// objective weighs pairs by their first demanded chunk — all three
	// change existing rows/objective terms, not just append new ones.
	if in.opt.NoBuffers {
		return errors.New("NoBuffers model prunes buffers per demand; cold rebuild required")
	}
	if in.opt.BufferLimitChunks > 0 {
		return errors.New("buffer-limited model; cold rebuild required")
	}
	if in.opt.Priority != nil {
		return errors.New("prioritized objective re-weighs pairs; cold rebuild required")
	}
	if add.NumNodes() != nN || add.NumNodes() != d.NumNodes() ||
		add.NumChunks() != d.NumChunks() || add.ChunkBytes != d.ChunkBytes {
		return errors.New("demand shape mismatch with incumbent model")
	}
	// The LP form expands multicast demands per destination at build
	// time; an appended multicast (or one created by the union) would
	// need that re-expansion.
	if d.HasMulticast() {
		return errors.New("incumbent demand is multicast-expanded; cold rebuild required")
	}
	union := d.Clone()
	union.Or(add)
	if union.HasMulticast() {
		return errors.New("new demand introduces multicast; cold rebuild required")
	}

	// Diff: per-pair counts of genuinely new chunks.
	type pairAdd struct{ src, dst, extra int }
	var adds []pairAdd
	for src := 0; src < nN; src++ {
		for dst := 0; dst < nN; dst++ {
			if src == dst {
				continue
			}
			extra := 0
			for _, c := range add.DestWantsFromSource(src, dst) {
				if !d.Wants(src, c, dst) {
					extra++
				}
			}
			if extra > 0 {
				adds = append(adds, pairAdd{src, dst, extra})
			}
		}
	}
	if len(adds) == 0 {
		return nil // everything re-added is already modeled
	}

	m.cloneIndexes()
	tail := tailWeights(K)
	srcIdx := make(map[int]int, len(m.sources))
	for si, s := range m.sources {
		srcIdx[s] = si
	}
	touched := map[int]bool{}
	newSrc := map[int][]float64{} // source node -> per-destination new counts
	for _, a := range adds {
		si, ok := srcIdx[a.src]
		if !ok {
			row := newSrc[a.src]
			if row == nil {
				row = make([]float64, nN)
				newSrc[a.src] = row
			}
			row[a.dst] += float64(a.extra)
			continue
		}
		if t.IsSwitch(topo.NodeID(a.dst)) {
			return fmt.Errorf("new demand destination %d is a switch", a.dst)
		}
		if m.destRow[si][a.dst] != noVar {
			// Count bump / resurrection: the pair's columns and total row
			// exist (an earlier drop may have zeroed them); widen and
			// re-admit.
			newCnt := m.dem[si][a.dst] + float64(a.extra)
			for _, v := range m.rvar[si][a.dst] {
				if v != noVar {
					m.p.SetBounds(lp.VarID(v), 0, newCnt)
				}
			}
			m.p.SetRHS(int(m.destRow[si][a.dst]), newCnt)
			m.dem[si][a.dst] = newCnt
		} else if err := m.appendPair(si, a.src, a.dst, float64(a.extra), tail); err != nil {
			return err
		}
		touched[si] = true
	}
	// New sources in ascending node order, for determinism.
	for src := 0; src < nN; src++ {
		if row := newSrc[src]; row != nil {
			if err := m.appendSourceBlock(src, row, tail); err != nil {
				return err
			}
		}
	}
	// Refresh the touched supply rows to the new totals, as a cold build
	// of the union demand would set them. (Appended sources wrote their
	// supply at row creation.)
	for si := range touched {
		supply := 0.0
		for dst := 0; dst < nN; dst++ {
			supply += m.dem[si][dst]
		}
		m.p.SetRHS(int(m.initRow[si]), supply)
	}
	in.demand.Or(add)
	return nil
}

// appendPair appends the read columns and destination-total row of a
// brand-new (source, destination) pair on an existing source, wiring
// the read columns into the source's conservation rows.
func (m *lpModel) appendPair(si, src, dst int, cnt float64, tail []float64) error {
	in := m.in
	K := in.K
	p := m.p
	if m.earliest[si][dst] > K {
		return fmt.Errorf("new demand destination %d unreachable from %d within the incumbent horizon", dst, src)
	}
	// Consumption may happen the epoch an arrival lands, one epoch
	// before the chunk becomes forwardable (mirrors buildLP).
	lo := m.earliest[si][dst] - 1
	if lo < 0 {
		lo = 0
	}
	col := m.rvar[si][dst]
	var destTerms []lp.Term
	for k := lo; k < K; k++ {
		cr := m.consRow[si][dst][k]
		if cr == noVar {
			return fmt.Errorf("no conservation row for destination %d at epoch %d", dst, k)
		}
		v := p.AddVar(fmt.Sprintf("r[s%d,d%d,k%d]", src, dst, k), 0, cnt, tail[k])
		col[k] = int32(v)
		p.AppendToRow(int(cr), []lp.Term{{Var: v, Coeff: -1}})
		destTerms = append(destTerms, lp.Term{Var: v, Coeff: 1})
	}
	if len(destTerms) == 0 {
		return fmt.Errorf("empty read window for pair (%d,%d)", src, dst)
	}
	m.destRow[si][dst] = int32(p.AddRow(destTerms, lp.EQ, cnt))
	m.dem[si][dst] = cnt
	return nil
}

// appendSourceBlock appends the full per-source variable and constraint
// block of a brand-new source, mirroring buildLP's emission rules for
// one source (with NoBuffers and Priority gated off by appendDemand:
// every GPU is buffered). row holds the per-destination chunk counts.
func (m *lpModel) appendSourceBlock(src int, row []float64, tail []float64) error {
	in := m.in
	t := in.topo
	p := m.p
	K := in.K
	nL := t.NumLinks()
	nN := t.NumNodes()
	if t.IsSwitch(topo.NodeID(src)) {
		return fmt.Errorf("new demand source %d is a switch", src)
	}

	// Reachability window from the new source on the current topology.
	hop := in.hopDistances()
	e := make([]int, nN)
	for n := range e {
		if math.IsInf(hop[src][n], 1) {
			e[n] = K + 1
		} else {
			e[n] = int(hop[src][n])
		}
	}
	for dst := range row {
		if row[dst] == 0 {
			continue
		}
		if t.IsSwitch(topo.NodeID(dst)) {
			return fmt.Errorf("new demand destination %d is a switch", dst)
		}
		if e[dst] > K {
			return fmt.Errorf("new demand destination %d unreachable from %d within the incumbent horizon", dst, src)
		}
	}

	// Flow variables.
	fcol := make([][]int32, nL)
	for l := 0; l < nL; l++ {
		col := make([]int32, K)
		for k := range col {
			col[k] = noVar
		}
		fcol[l] = col
		if t.LinkDown(topo.LinkID(l)) {
			continue
		}
		lk := t.Link(topo.LinkID(l))
		for k := 0; k < K; k++ {
			if e[lk.Src] > k {
				continue
			}
			if in.landEpoch(l, k) > K-1 {
				continue
			}
			if int(lk.Dst) == src {
				continue
			}
			col[k] = int32(p.AddVar(fmt.Sprintf("f[s%d,l%d,k%d]", src, l, k), 0, lp.Inf, 0))
		}
	}

	// Buffer variables (every GPU is buffered here; see the doc comment).
	bcol := make([][]int32, nN)
	for n := 0; n < nN; n++ {
		col := make([]int32, K+1)
		for k := range col {
			col[k] = noVar
		}
		bcol[n] = col
		if t.IsSwitch(topo.NodeID(n)) {
			continue
		}
		lo := e[n]
		if n == src {
			lo = 0
		}
		for k := lo; k <= K; k++ {
			col[k] = int32(p.AddVar(fmt.Sprintf("b[s%d,n%d,k%d]", src, n, k), 0, lp.Inf, 0))
		}
	}

	// Read variables.
	rcol := make([][]int32, nN)
	for dst := 0; dst < nN; dst++ {
		col := make([]int32, K)
		for k := range col {
			col[k] = noVar
		}
		rcol[dst] = col
		if row[dst] == 0 {
			continue
		}
		lo := e[dst] - 1
		if lo < 0 {
			lo = 0
		}
		for k := lo; k < K; k++ {
			col[k] = int32(p.AddVar(fmt.Sprintf("r[s%d,d%d,k%d]", src, dst, k), 0, row[dst], tail[k]))
		}
	}

	fAt := func(l, k int) int32 {
		if k < 0 || k >= K {
			return noVar
		}
		return fcol[l][k]
	}

	// Supply row.
	supply := 0.0
	for dst := range row {
		supply += row[dst]
	}
	terms := []lp.Term{{Var: lp.VarID(bcol[src][0]), Coeff: 1}}
	for _, lid := range t.Out(topo.NodeID(src)) {
		if f := fcol[int(lid)][0]; f != noVar {
			terms = append(terms, lp.Term{Var: lp.VarID(f), Coeff: 1})
		}
	}
	initRow := int32(p.AddRow(terms, lp.EQ, supply))

	// Conservation rows for buffered nodes.
	ccol := make([][]int32, nN)
	for n := 0; n < nN; n++ {
		col := make([]int32, K)
		for k := range col {
			col[k] = noVar
		}
		ccol[n] = col
		if t.IsSwitch(topo.NodeID(n)) {
			continue
		}
		for k := 0; k < K; k++ {
			var terms []lp.Term
			if b := bcol[n][k]; b != noVar {
				terms = append(terms, lp.Term{Var: lp.VarID(b), Coeff: 1})
			}
			for _, lid := range t.In(topo.NodeID(n)) {
				l := int(lid)
				if f := fAt(l, k-in.delta[l]-in.kappa[l]+1); f != noVar {
					terms = append(terms, lp.Term{Var: lp.VarID(f), Coeff: 1})
				}
			}
			if b := bcol[n][k+1]; b != noVar {
				terms = append(terms, lp.Term{Var: lp.VarID(b), Coeff: -1})
			}
			if r := rcol[n][k]; r != noVar {
				terms = append(terms, lp.Term{Var: lp.VarID(r), Coeff: -1})
			}
			if k+1 < K {
				for _, lid := range t.Out(topo.NodeID(n)) {
					if f := fcol[int(lid)][k+1]; f != noVar {
						terms = append(terms, lp.Term{Var: lp.VarID(f), Coeff: -1})
					}
				}
			}
			if len(terms) == 0 {
				continue
			}
			ccol[n][k] = int32(p.AddRow(terms, lp.EQ, 0))
		}
	}

	// Bufferless (switch) relay rows.
	for n := 0; n < nN; n++ {
		if !t.IsSwitch(topo.NodeID(n)) {
			continue
		}
		for k := 0; k < K; k++ {
			var out []lp.Term
			for _, lid := range t.Out(topo.NodeID(n)) {
				if f := fcol[int(lid)][k]; f != noVar {
					out = append(out, lp.Term{Var: lp.VarID(f), Coeff: 1})
				}
			}
			var inb []lp.Term
			for _, lid := range t.In(topo.NodeID(n)) {
				l := int(lid)
				if f := fAt(l, k-in.delta[l]-in.kappa[l]); f != noVar {
					inb = append(inb, lp.Term{Var: lp.VarID(f), Coeff: -1})
				}
			}
			if len(out) == 0 {
				continue
			}
			if len(inb) == 0 {
				for _, tm := range out {
					p.SetBounds(tm.Var, 0, 0)
				}
				continue
			}
			p.AddRow(append(out, inb...), lp.LE, 0)
		}
	}

	// Destination totals.
	dcol := make([]int32, nN)
	for dst := 0; dst < nN; dst++ {
		dcol[dst] = noVar
		if row[dst] == 0 {
			continue
		}
		var terms []lp.Term
		for k := 0; k < K; k++ {
			if r := rcol[dst][k]; r != noVar {
				terms = append(terms, lp.Term{Var: lp.VarID(r), Coeff: 1})
			}
		}
		dcol[dst] = int32(p.AddRow(terms, lp.EQ, row[dst]))
	}

	// Capacity: wire the new flow columns into the shared windowed rows,
	// creating rows for windows no existing source populated.
	for l := 0; l < nL; l++ {
		if t.LinkDown(topo.LinkID(l)) {
			continue
		}
		kap := in.kappa[l]
		for k := 0; k < K; k++ {
			var terms []lp.Term
			budget := 0.0
			for kk := k - kap + 1; kk <= k; kk++ {
				se := kk
				if se < 0 {
					se = 0
				}
				budget += in.capChunks[l] * in.opt.capScale(topo.LinkID(l), se)
				if kk < 0 {
					continue
				}
				if f := fcol[l][kk]; f != noVar {
					terms = append(terms, lp.Term{Var: lp.VarID(f), Coeff: 1})
				}
			}
			if len(terms) == 0 {
				continue
			}
			if r := m.capRow[l][k]; r != noVar {
				p.AppendToRow(int(r), terms)
				continue
			}
			m.capRow[l][k] = int32(p.AddRow(terms, lp.LE, budget))
		}
	}

	// Register the block.
	m.sources = append(m.sources, src)
	m.dem = append(m.dem, append([]float64(nil), row...))
	m.earliest = append(m.earliest, e)
	m.fvar = append(m.fvar, fcol)
	m.bvar = append(m.bvar, bcol)
	m.rvar = append(m.rvar, rcol)
	m.destRow = append(m.destRow, dcol)
	m.initRow = append(m.initRow, initRow)
	m.consRow = append(m.consRow, ccol)
	return nil
}
